(* Tests for the serving layer: LRU cache bounds and accounting, sharded
   thread safety under the domain pool, and — the load-bearing one — a
   qcheck differential proving that snapshot answers (cached or not, any
   pool size) are identical to the underlying Cover_store's, query by
   query, over random digraphs. *)

module Cache = Hopi_serve.Label_cache
module Snapshot = Hopi_serve.Snapshot
module Batch = Hopi_serve.Batch
module Pool = Hopi_util.Pool
module Counter = Hopi_obs.Counter
module Gen = QCheck2.Gen
module Digraph = Hopi_graph.Digraph
module Closure = Hopi_graph.Closure
module Builder = Hopi_twohop.Builder
module Dist_builder = Hopi_twohop.Dist_builder
module Pager = Hopi_storage.Pager
module Cover_store = Hopi_storage.Cover_store
module Ihs = Hopi_util.Int_hashset

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* {1 Label cache} *)

let arr n = Bytes.make n '\007'

(* capacity for exactly [n] entries of payload [len] in a 1-shard cache *)
let capacity_for n len = n * Cache.entry_cost (arr len)

let test_cache_basic () =
  let c = Cache.create ~shards:1 ~capacity_bytes:(capacity_for 4 10) () in
  checkb "enabled" true (Cache.enabled c);
  checkb "miss on empty" true (Cache.find c 1 = None);
  Cache.add c 1 (arr 10);
  checkb "hit after add" true (Cache.find c 1 <> None);
  checki "entries" 1 (Cache.entries c);
  checki "bytes" (Cache.entry_cost (arr 10)) (Cache.bytes c)

let test_cache_eviction_bound () =
  let cap = capacity_for 4 10 in
  let c = Cache.create ~shards:1 ~capacity_bytes:cap () in
  for k = 0 to 99 do
    Cache.add c k (arr 10);
    checkb "within budget" true (Cache.bytes c <= cap)
  done;
  checki "entries bounded" 4 (Cache.entries c);
  (* LRU order: the last four inserted survive *)
  for k = 96 to 99 do
    checkb "recent key cached" true (Cache.find c k <> None)
  done;
  checkb "old key evicted" true (Cache.find c 0 = None)

let test_cache_promotion () =
  let c = Cache.create ~shards:1 ~capacity_bytes:(capacity_for 3 10) () in
  Cache.add c 1 (arr 10);
  Cache.add c 2 (arr 10);
  Cache.add c 3 (arr 10);
  (* touch 1 so it is MRU; adding 4 must evict 2, the LRU *)
  ignore (Cache.find c 1);
  Cache.add c 4 (arr 10);
  checkb "promoted key survives" true (Cache.find c 1 <> None);
  checkb "LRU key evicted" true (Cache.find c 2 = None);
  checkb "others survive" true (Cache.find c 3 <> None && Cache.find c 4 <> None)

let test_cache_replace () =
  let c = Cache.create ~shards:1 ~capacity_bytes:(capacity_for 4 20) () in
  Cache.add c 1 (arr 10);
  Cache.add c 1 (arr 20);
  checki "one entry after replace" 1 (Cache.entries c);
  checki "replacement cost accounted" (Cache.entry_cost (arr 20)) (Cache.bytes c);
  match Cache.find c 1 with
  | Some a -> checki "replacement payload" 20 (Bytes.length a)
  | None -> Alcotest.fail "replaced entry missing"

let test_cache_oversize_skipped () =
  let c = Cache.create ~shards:1 ~capacity_bytes:(capacity_for 2 10) () in
  Cache.add c 1 (arr 10);
  Cache.add c 2 (arr 10_000); (* larger than the whole shard: not cached *)
  checkb "oversize not cached" true (Cache.find c 2 = None);
  checkb "small entry untouched" true (Cache.find c 1 <> None)

let test_cache_disabled () =
  let c = Cache.create ~capacity_bytes:0 () in
  checkb "disabled" false (Cache.enabled c);
  let h0 = Counter.get (Cache.hits ()) and m0 = Counter.get (Cache.misses ()) in
  Cache.add c 1 (arr 10);
  checkb "find misses" true (Cache.find c 1 = None);
  checki "entries" 0 (Cache.entries c);
  checki "no hit counted" h0 (Counter.get (Cache.hits ()));
  checki "no miss counted" m0 (Counter.get (Cache.misses ()))

let test_cache_metrics () =
  let c = Cache.create ~shards:1 ~capacity_bytes:(capacity_for 2 10) () in
  let h0 = Counter.get (Cache.hits ())
  and m0 = Counter.get (Cache.misses ())
  and e0 = Counter.get (Cache.evictions ()) in
  ignore (Cache.find c 1); (* miss *)
  Cache.add c 1 (arr 10);
  ignore (Cache.find c 1); (* hit *)
  Cache.add c 2 (arr 10);
  Cache.add c 3 (arr 10); (* evicts 1 *)
  checki "one miss" (m0 + 1) (Counter.get (Cache.misses ()));
  checki "one hit" (h0 + 1) (Counter.get (Cache.hits ()));
  checki "one eviction" (e0 + 1) (Counter.get (Cache.evictions ()))

(* versioned keys: one packed integer per (version, node, direction), no
   collisions across a representative grid, and version 0 is exactly the
   historical un-versioned key *)
let test_cache_key_versioning () =
  checki "default version is 0" (Cache.key Cache.Lout 5)
    (Cache.key ~version:0 Cache.Lout 5);
  checki "default version is 0 (Lin)" (Cache.key Cache.Lin 5)
    (Cache.key ~version:0 Cache.Lin 5);
  let seen = Hashtbl.create 256 in
  List.iter
    (fun version ->
      List.iter
        (fun node ->
          List.iter
            (fun (dname, dir) ->
              let k = Cache.key ~version dir node in
              (match Hashtbl.find_opt seen k with
              | Some other ->
                Alcotest.failf "key collision: (v=%d n=%d %s) vs %s" version
                  node dname other
              | None -> ());
              Hashtbl.replace seen k
                (Printf.sprintf "(v=%d n=%d %s)" version node dname))
            [ ("in", Cache.Lin); ("out", Cache.Lout) ])
        [ 0; 1; 2; 63; 4095; 1_000_000 ])
    [ 0; 1; 2; 3; 17; 1000 ];
  checki "whole grid distinct" (6 * 6 * 2) (Hashtbl.length seen)

(* remove: exact per-entry accounting, counted as an invalidation (not an
   eviction), absent keys report false *)
let test_cache_remove () =
  let c = Cache.create ~shards:1 ~capacity_bytes:(capacity_for 4 10) () in
  let k1 = Cache.key Cache.Lout 1 and k2 = Cache.key ~version:3 Cache.Lin 1 in
  Cache.add c k1 (arr 10);
  Cache.add c k2 (arr 10);
  checki "two entries" 2 (Cache.entries c);
  let i0 = Counter.get (Cache.invalidations ())
  and e0 = Counter.get (Cache.evictions ()) in
  checkb "remove present key" true (Cache.remove c k1);
  checki "one entry left" 1 (Cache.entries c);
  checki "bytes re-accounted exactly" (Cache.entry_cost (arr 10)) (Cache.bytes c);
  checkb "removed key misses" true (Cache.find c k1 = None);
  checkb "other version of the same node survives" true (Cache.find c k2 <> None);
  checkb "remove absent key" false (Cache.remove c k1);
  checki "one invalidation counted" (i0 + 1) (Counter.get (Cache.invalidations ()));
  checki "no eviction counted" e0 (Counter.get (Cache.evictions ()));
  checkb "remove last entry" true (Cache.remove c k2);
  checki "empty" 0 (Cache.entries c);
  checki "accounting back to zero" 0 (Cache.bytes c)

(* worker domains hammer a small sharded cache with overlapping keys; the
   cache must neither crash nor leak past its budget, and every completed
   add of a still-resident key must return the right payload *)
let test_cache_pool_safety () =
  let cap = capacity_for 64 8 in
  let c = Cache.create ~shards:4 ~capacity_bytes:cap () in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  Pool.parallel_iter pool 4_000 (fun i ->
      let key = i mod 97 in
      match Cache.find c key with
      | Some a ->
        if Bytes.length a <> key mod 13 then failwith "payload mixed up between keys"
      | None -> Cache.add c key (Bytes.make (key mod 13) '\000'));
  checkb "bytes within budget" true (Cache.bytes c <= cap);
  (* at rest, the per-entry costs must re-add to the accounted bytes *)
  let accounted = ref 0 in
  for key = 0 to 96 do
    match Cache.find c key with
    | Some a -> accounted := !accounted + Cache.entry_cost a
    | None -> ()
  done;
  checki "cost accounting consistent" (Cache.bytes c) !accounted

(* {1 Snapshot vs Cover_store differential} *)

let gen_digraph =
  let open Gen in
  int_range 2 24 >>= fun n ->
  let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
  list_size (int_bound (3 * n)) edge >|= fun edges ->
  let g = Digraph.create () in
  for v = 0 to n - 1 do
    Digraph.add_node g v
  done;
  List.iter (fun (u, v) -> if u <> v then Digraph.add_edge g u v) edges;
  g

(* persist [load] into a fresh temp page file, hand the path to [f] *)
let with_store_file load f =
  let path = Filename.temp_file "hopi_test_serve" ".db" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ "-journal") then Sys.remove (path ^ "-journal"))
    (fun () ->
      let pager = Pager.create ~pool_pages:64 ~fsync:false (Pager.File path) in
      let store = Cover_store.create pager in
      load store;
      Cover_store.save store;
      Pager.close pager;
      f path)

let sorted_ihs s = List.sort compare (Ihs.to_list s)

(* every (u, v) pair over a node range, plus ids the store never saw *)
let all_pairs n = List.concat_map (fun u -> List.map (fun v -> (u, v)) (List.init (n + 2) Fun.id)) (List.init (n + 2) Fun.id)

let snapshot_matches_store ~cache_mb g ~dist =
  let load store =
    if dist then Cover_store.load_dist_cover store (fst (Dist_builder.build g))
    else Cover_store.load_cover store (fst (Builder.build (Closure.compute g)))
  in
  with_store_file load @@ fun path ->
  let snap = Snapshot.open_file ~pool_pages:64 ~cache_mb path in
  Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
  let pager = Pager.open_existing ~pool_pages:64 path in
  Fun.protect ~finally:(fun () -> Pager.close pager) @@ fun () ->
  let store = Cover_store.open_pager pager in
  checkb "with_dist agrees" true (Snapshot.with_dist snap = Cover_store.with_dist store);
  checki "n_nodes agrees" (Cover_store.n_nodes store) (Snapshot.n_nodes snap);
  let n = Digraph.n_nodes g in
  List.iter
    (fun (u, v) ->
      let ctx = Printf.sprintf "(%d,%d) dist=%b cache=%d" u v dist cache_mb in
      (* twice per pair: the second round hits any cache *)
      for _ = 1 to 2 do
        checkb ("mem " ^ ctx) (Cover_store.mem_node store u) (Snapshot.mem_node snap u);
        checkb ("connected " ^ ctx) (Cover_store.connected store u v)
          (Snapshot.connected snap u v);
        check
          Alcotest.(option int)
          ("min_distance " ^ ctx)
          (Cover_store.min_distance store u v)
          (Snapshot.min_distance snap u v);
        check
          Alcotest.(list int)
          ("descendants " ^ ctx)
          (sorted_ihs (Cover_store.descendants store u))
          (sorted_ihs (Snapshot.descendants snap u));
        check
          Alcotest.(list int)
          ("ancestors " ^ ctx)
          (sorted_ihs (Cover_store.ancestors store v))
          (sorted_ihs (Snapshot.ancestors snap v))
      done)
    (all_pairs n);
  true

let prop_snapshot_differential =
  QCheck2.Test.make
    ~name:"snapshot answers = Cover_store answers (plain + dist, cached + not)"
    ~count:20 gen_digraph (fun g ->
      List.for_all
        (fun (cache_mb, dist) -> snapshot_matches_store ~cache_mb g ~dist)
        [ (0, false); (4, false); (0, true); (4, true) ])

(* cached parallel batch = uncached sequential batch, byte for byte *)
let prop_batch_cached_equals_uncached =
  QCheck2.Test.make
    ~name:"eval_batch: warm cached pool run renders = cold uncached run"
    ~count:15 gen_digraph (fun g ->
      let cover = fst (Builder.build (Closure.compute g)) in
      with_store_file (fun store -> Cover_store.load_cover store cover)
      @@ fun path ->
      let n = Digraph.n_nodes g in
      let queries =
        Array.concat
          [
            Array.init (n * n) (fun i -> Batch.Reach (i / n, i mod n));
            Array.init (n * n) (fun i -> Batch.Dist (i / n, i mod n));
            Array.init n (fun v -> Batch.Desc v);
            Array.init n (fun v -> Batch.Anc v);
          ]
      in
      let run ~cache_mb ~jobs =
        let snap = Snapshot.open_file ~pool_pages:64 ~cache_mb path in
        Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
        Pool.with_pool ~jobs @@ fun pool ->
        (* two passes: the second one serves labels from a warm cache *)
        ignore (Batch.eval_batch ~pool snap queries);
        Array.map Batch.render (Batch.eval_batch ~pool snap queries)
      in
      let cold = run ~cache_mb:0 ~jobs:1 in
      let warm = run ~cache_mb:8 ~jobs:4 in
      if cold <> warm then
        QCheck2.Test.fail_reportf "cached/uncached disagree on %s"
          (Array.to_list queries
          |> List.filteri (fun i _ -> cold.(i) <> warm.(i))
          |> List.map (Format.asprintf "%a" Batch.pp_query)
          |> String.concat "; ");
      true)

(* {1 Batch parsing} *)

let test_batch_parse () =
  let ok line q =
    match Batch.parse line with
    | Ok q' -> check Alcotest.string line (Format.asprintf "%a" Batch.pp_query q)
                 (Format.asprintf "%a" Batch.pp_query q')
    | Error e -> Alcotest.fail (line ^ ": " ^ e)
  in
  ok "reach 1 2" (Batch.Reach (1, 2));
  ok "  dist  3   4 " (Batch.Dist (3, 4));
  ok "desc 5" (Batch.Desc 5);
  ok "anc 6" (Batch.Anc 6);
  ok "path //article//title" (Batch.Path "//article//title");
  List.iter
    (fun line ->
      match Batch.parse line with
      | Ok _ -> Alcotest.fail ("should not parse: " ^ line)
      | Error _ -> ())
    [ ""; "reach 1"; "reach one two"; "dist 1 2 3"; "flip 1 2"; "path" ]

let test_batch_render () =
  List.iter
    (fun (a, s) -> check Alcotest.string s s (Batch.render a))
    [
      (Batch.Bool true, "true");
      (Batch.Bool false, "false");
      (Batch.Distance None, "unreachable");
      (Batch.Distance (Some 3), "3");
      (Batch.Count 7, "7");
      (Batch.Rendered "12 matches", "12 matches");
      (Batch.Failed "nope", "error: nope");
    ]

(* {1 Reqtrace acceptance: a batch run produces per-kind latency
   histograms, live SLO gauges and a populated slowlog} *)

module Registry = Hopi_obs.Registry
module Histogram = Hopi_obs.Histogram
module Gauge = Hopi_obs.Gauge
module Reqtrace = Hopi_obs.Reqtrace
module Slo = Hopi_obs.Slo

let test_batch_reqtrace () =
  let g = Digraph.create () in
  for v = 0 to 9 do
    Digraph.add_node g v
  done;
  for v = 0 to 8 do
    Digraph.add_edge g v (v + 1)
  done;
  let cover = fst (Builder.build (Closure.compute g)) in
  with_store_file (fun store -> Cover_store.load_cover store cover) @@ fun path ->
  let snap = Snapshot.open_file ~cache_mb:4 path in
  Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
  Reqtrace.reset_slowlog ();
  Reqtrace.set_slow_threshold_ns 0;
  Fun.protect
    ~finally:(fun () ->
      Reqtrace.disable_slowlog ();
      Reqtrace.reset_slowlog ();
      Slo.set_targets ~p50_ns:0 ~p95_ns:0 ~p99_ns:0 Reqtrace.slo)
  @@ fun () ->
  let kind_count kind =
    Histogram.count
      (Registry.histogram (Printf.sprintf "hopi_serve_query_kind_%s_duration_ns" kind))
  in
  let kinds = [ "reach"; "dist"; "desc"; "anc" ] in
  let before = List.map kind_count kinds in
  let queries =
    [| Batch.Reach (0, 9); Batch.Dist (0, 5); Batch.Desc 0; Batch.Anc 9 |]
  in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let answers = Batch.eval_batch ~pool snap queries in
  checkb "reach answered" true (answers.(0) = Batch.Bool true);
  (* plain (non-dist) covers answer reachability-backed distances; the
     exact value is the store's business — reqtrace only needs the query
     to have run *)
  checkb "dist answered" true
    (match answers.(1) with Batch.Distance (Some _) -> true | _ -> false);
  checkb "desc answered" true (answers.(2) = Batch.Count 10);
  checkb "anc answered" true (answers.(3) = Batch.Count 10);
  (* every kind fed its own latency histogram exactly once *)
  List.iter2
    (fun kind b -> checki ("kind histogram " ^ kind) (b + 1) (kind_count kind))
    kinds before;
  (* slowlog at threshold 0 records all four, with sane attribution *)
  let entries = Reqtrace.slowlog () in
  checki "slowlog has the whole batch" 4 (List.length entries);
  List.iter
    (fun s ->
      checkb ("latency measured: " ^ s.Reqtrace.query) true (s.Reqtrace.latency_ns >= 0);
      checkb ("labels probed: " ^ s.Reqtrace.query) true (s.Reqtrace.labels_probed >= 1);
      checkb ("answer rendered: " ^ s.Reqtrace.query) true (s.Reqtrace.answer <> ""))
    entries;
  (* a cold store means someone had to touch pages *)
  checkb "pager reads attributed" true
    (List.exists (fun s -> s.Reqtrace.pager_reads > 0) entries);
  (* SLO gauges move with the configured targets *)
  Slo.set_targets ~p50_ns:max_int ~p95_ns:max_int ~p99_ns:max_int Reqtrace.slo;
  checkb "generous serve SLO holds" true (Slo.update Reqtrace.slo);
  checki "ok gauge set" 1 (Gauge.get (Registry.gauge "hopi_slo_serve_query_ok"));
  checkb "observed p95 published" true
    (Gauge.get (Registry.gauge "hopi_slo_serve_query_p95_ns") > 0);
  Slo.set_targets ~p95_ns:1 Reqtrace.slo;
  checkb "1ns p95 target breached" false (Slo.update Reqtrace.slo);
  checki "ok gauge cleared" 0 (Gauge.get (Registry.gauge "hopi_slo_serve_query_ok"))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "serve.cache",
      [
        Alcotest.test_case "basic add/find" `Quick test_cache_basic;
        Alcotest.test_case "eviction keeps bytes under budget" `Quick
          test_cache_eviction_bound;
        Alcotest.test_case "find promotes to MRU" `Quick test_cache_promotion;
        Alcotest.test_case "replace accounts the new cost" `Quick test_cache_replace;
        Alcotest.test_case "oversize entries are skipped" `Quick
          test_cache_oversize_skipped;
        Alcotest.test_case "capacity 0 disables the cache" `Quick test_cache_disabled;
        Alcotest.test_case "hit/miss/eviction metrics" `Quick test_cache_metrics;
        Alcotest.test_case "versioned key packing is injective" `Quick
          test_cache_key_versioning;
        Alcotest.test_case "remove balances the accounting" `Quick test_cache_remove;
        Alcotest.test_case "sharded cache is pool-safe" `Quick test_cache_pool_safety;
      ] );
    ( "serve.batch",
      [
        Alcotest.test_case "query parsing" `Quick test_batch_parse;
        Alcotest.test_case "answer rendering" `Quick test_batch_render;
        Alcotest.test_case "batch run feeds reqtrace/SLO/slowlog" `Quick
          test_batch_reqtrace;
      ] );
    ( "serve.differential",
      qsuite [ prop_snapshot_differential; prop_batch_cached_equals_uncached ] );
  ]
