(* Tests for hopi_storage: Pager, Btree, Table, Cover_store. *)

open Hopi_storage
module Ihs = Hopi_util.Int_hashset
module Splitmix = Hopi_util.Splitmix
module Cover = Hopi_twohop.Cover
module Dist_cover = Hopi_twohop.Dist_cover

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* user data lives above the pager-owned checksum header *)
let po = Page.payload_off

(* {1 Pager} *)

let test_pager_alloc_read () =
  let p = Pager.create Pager.Memory in
  let id = Pager.alloc p in
  check_int "first page" 0 id;
  let page = Pager.read p id in
  Page.set_i32 page po 123456;
  Pager.mark_dirty p id;
  check_int "read back" 123456 (Page.get_i32 (Pager.read p id) po);
  Alcotest.check_raises "oob" (Invalid_argument "Pager.read: page 5 out of [0,1)")
    (fun () -> ignore (Pager.read p 5))

let test_pager_eviction_roundtrip () =
  (* tiny pool forces eviction and re-reads from the store *)
  let p = Pager.create ~pool_pages:8 Pager.Memory in
  let n = 64 in
  for i = 0 to n - 1 do
    let id = Pager.alloc p in
    let page = Pager.read p id in
    Page.set_i32 page po (i * 7);
    Pager.mark_dirty p id
  done;
  for i = 0 to n - 1 do
    check_int (Printf.sprintf "page %d" i) (i * 7) (Page.get_i32 (Pager.read p i) po)
  done;
  let st = Pager.stats p in
  check_bool "evictions happened" true (st.Pager.evictions > 0);
  check_bool "disk traffic" true (st.Pager.disk_writes > 0 && st.Pager.disk_reads > 0)

let test_pager_file_backend () =
  let path = Filename.temp_file "hopi_pager" ".db" in
  let p = Pager.create ~pool_pages:8 (Pager.File path) in
  for i = 0 to 31 do
    let id = Pager.alloc p in
    let page = Pager.read p id in
    Page.set_i32 page 100 (i + 1);
    Pager.mark_dirty p id
  done;
  for i = 0 to 31 do
    check_int "roundtrip" (i + 1) (Page.get_i32 (Pager.read p i) 100)
  done;
  Pager.close p;
  Sys.remove path

let test_pager_pinning () =
  let p = Pager.create ~pool_pages:8 Pager.Memory in
  let id0 = Pager.alloc p in
  let page0 = Pager.pin p id0 in
  Page.set_i32 page0 po 999;
  (* churn through many pages: id0 must not be evicted *)
  for _ = 1 to 50 do
    let id = Pager.alloc p in
    ignore (Pager.read p id)
  done;
  Page.set_i32 page0 (po + 4) 1000;
  Pager.mark_dirty p id0;
  Pager.unpin p id0;
  check_int "value survives" 999 (Page.get_i32 (Pager.read p id0) po)

let test_pager_pin_nesting () =
  (* nested pins: the page stays resident until the LAST unpin, across
     eviction pressure after each level of unpinning *)
  let p = Pager.create ~pool_pages:4 Pager.Memory in
  let id0 = Pager.alloc p in
  let page = Pager.pin p id0 in
  let page' = Pager.pin p id0 in
  check_bool "same buffer" true (page == page');
  Page.set_i32 page po 4242;
  Pager.mark_dirty p id0;
  let churn () =
    for _ = 1 to 20 do
      let id = Pager.alloc p in
      let q = Pager.read p id in
      Page.set_i32 q po 1;
      Pager.mark_dirty p id
    done
  in
  churn ();
  Pager.unpin p id0;
  (* still pinned once: the buffer must survive more churn *)
  churn ();
  Page.set_i32 page (po + 4) 77;
  Pager.mark_dirty p id0;
  Pager.unpin p id0;
  (* now evictable: churn again, then a fresh read must come from the store *)
  churn ();
  let back = Pager.read p id0 in
  check_int "pinned write survives eviction" 4242 (Page.get_i32 back po);
  check_int "second write survives too" 77 (Page.get_i32 back (po + 4))

let test_pager_free_list_reuse () =
  let p = Pager.create Pager.Memory in
  let ids = List.init 6 (fun _ -> Pager.alloc p) in
  check_int "six pages" 6 (Pager.n_pages p);
  List.iter (Pager.free p) [ List.nth ids 2; List.nth ids 4 ];
  check_int "two free" 2 (Pager.stats p).Pager.free_pages;
  let a = Pager.alloc p in
  let b = Pager.alloc p in
  (* freed pages are handed out again (LIFO order not part of the contract) *)
  check_bool "reused freed ids" true
    (List.sort compare [ a; b ] = List.sort compare [ List.nth ids 2; List.nth ids 4 ]);
  check_int "no growth" 6 (Pager.n_pages p);
  check_int "free list drained" 0 (Pager.stats p).Pager.free_pages;
  let c = Pager.alloc p in
  check_int "then fresh pages again" 6 c

let test_pager_freed_pages_after_reopen () =
  (* the free list is not persisted: after save/reopen, freed page ids must
     NOT be recycled (their storage is only reclaimed by a rebuild) *)
  let vfs = Vfs.memory () in
  let pager = Pager.create_vfs ~vfs "free.db" in
  let store = Cover_store.create pager in
  List.iter (fun v -> Cover_store.add_node store v) [ 1; 2; 3 ];
  let freed = Pager.alloc pager in
  Pager.free pager freed;
  check_bool "free before save" true ((Pager.stats pager).Pager.free_pages > 0);
  Cover_store.save store;
  Pager.close pager;
  let pager2 = Pager.open_vfs ~vfs "free.db" in
  check_int "free list empty after reopen" 0 (Pager.stats pager2).Pager.free_pages;
  let n_before = Pager.n_pages pager2 in
  let fresh = Pager.alloc pager2 in
  check_int "alloc extends the file instead" n_before fresh;
  Pager.close pager2

(* qcheck: random page workloads survive flush + open_existing byte-identically
   on the real VFS (satellite: round-trip under eviction and reopen) *)
let prop_pager_roundtrip_real_vfs =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 40)
        (list_size (int_bound 200)
           (triple (int_bound 39) (int_bound 100) (int_range (-0x40000000) 0x3FFFFFFF))))
  in
  QCheck2.Test.make ~name:"pager file roundtrip byte-identical" ~count:30 gen
    (fun (n_pages, writes) ->
      let path = Filename.temp_file "hopi_prop" ".db" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let p = Pager.create ~pool_pages:4 (Pager.File path) in
          for _ = 1 to n_pages do
            ignore (Pager.alloc p)
          done;
          (* the model: what each word of each page should hold *)
          let model = Hashtbl.create 64 in
          List.iter
            (fun (page, word, value) ->
              let page = page mod n_pages in
              let off = po + (word mod ((Page.size - po) / 4)) * 4 in
              let b = Pager.read p page in
              Page.set_i32 b off value;
              Pager.mark_dirty p page;
              Hashtbl.replace model (page, off) value)
            writes;
          Pager.close p;
          let q = Pager.open_existing ~pool_pages:4 path in
          let ok = ref (Pager.n_pages q = n_pages) in
          Hashtbl.iter
            (fun (page, off) value ->
              if Page.get_i32 (Pager.read q page) off <> value then ok := false)
            model;
          (* and a full checksum sweep straight off the file *)
          if Pager.verify_pages q <> [] then ok := false;
          Pager.close q;
          !ok))

(* {1 Btree} *)

let test_btree_basic () =
  let p = Pager.create Pager.Memory in
  let t = Btree.create p in
  check_bool "insert new" true (Btree.insert t (1, 2, 3));
  check_bool "insert dup" false (Btree.insert t (1, 2, 3));
  check_bool "mem" true (Btree.mem t (1, 2, 3));
  check_bool "not mem" false (Btree.mem t (1, 2, 4));
  check_int "length" 1 (Btree.length t);
  check_bool "delete" true (Btree.delete t (1, 2, 3));
  check_bool "delete gone" false (Btree.delete t (1, 2, 3));
  check_int "empty" 0 (Btree.length t)

let test_btree_many_with_splits () =
  let p = Pager.create ~pool_pages:64 Pager.Memory in
  let t = Btree.create p in
  let n = 5000 in
  (* insert in a scrambled deterministic order *)
  let keys = Array.init n (fun i -> ((i * 37) mod n, i mod 13, i mod 7)) in
  Array.iter (fun k -> ignore (Btree.insert t k)) keys;
  check_int "length" n (Btree.length t);
  Array.iter (fun k -> check_bool "mem" true (Btree.mem t k)) keys;
  (* ordered iteration *)
  let prev = ref (Btree.min_i32, Btree.min_i32, Btree.min_i32) in
  let count = ref 0 in
  Btree.iter_all t (fun k ->
      check_bool "sorted" true (compare !prev k < 0);
      prev := k;
      incr count);
  check_int "iterated all" n !count;
  check_bool "splits happened" true (Pager.n_pages p > 2)

let test_btree_prefix_scans () =
  let p = Pager.create Pager.Memory in
  let t = Btree.create p in
  List.iter
    (fun k -> ignore (Btree.insert t k))
    [ (1, 1, 0); (1, 2, 0); (1, 2, 5); (2, 1, 0); (3, 1, 1) ];
  let got = ref [] in
  Btree.iter_prefix1 t 1 (fun k -> got := k :: !got);
  check_int "prefix1" 3 (List.length !got);
  got := [];
  Btree.iter_prefix2 t 1 2 (fun k -> got := k :: !got);
  check_int "prefix2" 2 (List.length !got);
  got := [];
  Btree.iter_prefix1 t 99 (fun k -> got := k :: !got);
  check_int "empty prefix" 0 (List.length !got)

let prop_btree_model =
  (* compare against a reference set-model under random insert/delete *)
  let op_gen =
    QCheck2.Gen.(
      list_size (int_bound 400)
        (pair bool (triple (int_bound 20) (int_bound 20) (int_bound 3))))
  in
  QCheck2.Test.make ~name:"Btree = set model" ~count:100 op_gen (fun ops ->
      let p = Pager.create ~pool_pages:16 Pager.Memory in
      let t = Btree.create p in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (ins, k) ->
          if ins then begin
            let added = Btree.insert t k in
            let fresh = not (Hashtbl.mem model k) in
            Hashtbl.replace model k ();
            if added <> fresh then failwith "insert disagreement"
          end
          else begin
            let removed = Btree.delete t k in
            let present = Hashtbl.mem model k in
            Hashtbl.remove model k;
            if removed <> present then failwith "delete disagreement"
          end)
        ops;
      let ok = ref (Btree.length t = Hashtbl.length model) in
      Hashtbl.iter (fun k () -> if not (Btree.mem t k) then ok := false) model;
      let count = ref 0 in
      Btree.iter_all t (fun k ->
          if not (Hashtbl.mem model k) then ok := false;
          incr count);
      !ok && !count = Hashtbl.length model)

let test_btree_delete_rebalancing () =
  (* grow a multi-level tree, then delete most keys: pages must merge and
     return to the free list while every remaining key stays findable *)
  let p = Pager.create ~pool_pages:128 Pager.Memory in
  let t = Btree.create p in
  let n = 20_000 in
  for i = 0 to n - 1 do
    ignore (Btree.insert t ((i * 13) mod n, i mod 11, 0))
  done;
  check_int "inserted" n (Btree.length t);
  let pages_full = Pager.n_pages p in
  check_bool "deep tree" true (pages_full > 30);
  (* delete everything except multiples of 20, in a scrambled order *)
  for i = 0 to n - 1 do
    let k = ((i * 7) mod n, ((n - 1 - i) * 13 mod n) mod 11, 0) in
    ignore k;
    let key = ((i * 13) mod n, i mod 11, 0) in
    if i mod 20 <> 0 then ignore (Btree.delete t key)
  done;
  check_int "survivors" (n / 20) (Btree.length t);
  for i = 0 to n - 1 do
    let key = ((i * 13) mod n, i mod 11, 0) in
    check_bool "membership" (i mod 20 = 0) (Btree.mem t key)
  done;
  (* ordered scan sees exactly the survivors *)
  let count = ref 0 in
  let prev = ref (Btree.min_i32, Btree.min_i32, Btree.min_i32) in
  Btree.iter_all t (fun k ->
      check_bool "sorted" true (compare !prev k < 0);
      prev := k;
      incr count);
  check_int "scan count" (n / 20) !count;
  let st = Pager.stats p in
  check_bool "pages were freed" true (st.Pager.free_pages > 0);
  (* freed pages are recycled by new inserts *)
  let before = Pager.n_pages p in
  for i = 0 to 2000 do
    ignore (Btree.insert t (100_000 + i, 0, 0))
  done;
  check_bool "growth reuses freed pages" true
    (Pager.n_pages p - before < 2000 / 100)

let test_btree_delete_to_empty_and_reuse () =
  let p = Pager.create Pager.Memory in
  let t = Btree.create p in
  for round = 1 to 3 do
    for i = 0 to 2_000 do
      ignore (Btree.insert t (i, round, 0))
    done;
    for i = 0 to 2_000 do
      check_bool "delete works" true (Btree.delete t (i, round, 0))
    done;
    check_int "empty again" 0 (Btree.length t)
  done;
  check_bool "no runaway growth" true (Pager.n_pages p < 40)

(* {1 Table} *)

let test_table_indexes () =
  let p = Pager.create Pager.Memory in
  let t = Table.create p in
  check_bool "insert" true (Table.insert t ~id:1 ~label:10 ~dist:0);
  check_bool "dup" false (Table.insert t ~id:1 ~label:10 ~dist:0);
  ignore (Table.insert t ~id:1 ~label:11 ~dist:2);
  ignore (Table.insert t ~id:2 ~label:10 ~dist:1);
  check_int "rows" 3 (Table.length t);
  let by_id = ref [] in
  Table.iter_by_id t 1 (fun ~label ~dist -> by_id := (label, dist) :: !by_id);
  Alcotest.(check (list (pair int int))) "forward scan" [ (10, 0); (11, 2) ]
    (List.rev !by_id);
  let by_label = ref [] in
  Table.iter_by_label t 10 (fun ~id ~dist -> by_label := (id, dist) :: !by_label);
  Alcotest.(check (list (pair int int))) "backward scan" [ (1, 0); (2, 1) ]
    (List.rev !by_label);
  check_int "delete_all_of_id" 2 (Table.delete_all_of_id t 1);
  check_int "rows left" 1 (Table.length t);
  (* backward index consistent after delete *)
  let remaining = ref [] in
  Table.iter_by_label t 10 (fun ~id ~dist:_ -> remaining := id :: !remaining);
  Alcotest.(check (list int)) "bwd consistent" [ 2 ] !remaining

let test_table_find_dist () =
  let p = Pager.create Pager.Memory in
  let t = Table.create p in
  ignore (Table.insert t ~id:1 ~label:10 ~dist:5);
  ignore (Table.insert t ~id:1 ~label:10 ~dist:3);
  Alcotest.(check (option int)) "min dist" (Some 3) (Table.find_dist t ~id:1 ~label:10);
  Alcotest.(check (option int)) "missing" None (Table.find_dist t ~id:9 ~label:10)

(* {1 Cover_store} *)

let test_cover_store_roundtrip () =
  (* path cover 1 -> 2 -> 3, center 2 *)
  let cover = Cover.create () in
  List.iter (Cover.add_node cover) [ 1; 2; 3 ];
  Cover.add_out cover ~node:1 ~center:2;
  Cover.add_in cover ~node:3 ~center:2;
  let store = Cover_store.create (Pager.create Pager.Memory) in
  Cover_store.load_cover store cover;
  check_int "entries" 2 (Cover_store.n_entries store);
  check_int "stored ints" 8 (Cover_store.stored_integers store);
  check_bool "1->3" true (Cover_store.connected store 1 3);
  check_bool "1->2" true (Cover_store.connected store 1 2);
  check_bool "3->1" false (Cover_store.connected store 3 1);
  check_bool "reflexive" true (Cover_store.connected store 2 2);
  check_bool "unknown node" false (Cover_store.connected store 1 99);
  let desc = Cover_store.descendants store 1 in
  check_int "descendants" 3 (Ihs.cardinal desc);
  let anc = Cover_store.ancestors store 3 in
  check_int "ancestors" 3 (Ihs.cardinal anc)

let test_cover_store_distance () =
  let dc = Dist_cover.create () in
  List.iter (Dist_cover.add_node dc) [ 1; 2; 3 ];
  Dist_cover.add_out dc ~node:1 ~center:2 ~dist:1;
  Dist_cover.add_in dc ~node:3 ~center:2 ~dist:4;
  let store = Cover_store.create (Pager.create Pager.Memory) in
  Cover_store.load_dist_cover store dc;
  Alcotest.(check (option int)) "1->3 = 5" (Some 5) (Cover_store.min_distance store 1 3);
  Alcotest.(check (option int)) "1->2 = 1" (Some 1) (Cover_store.min_distance store 1 2);
  Alcotest.(check (option int)) "2->3 = 4" (Some 4) (Cover_store.min_distance store 2 3);
  Alcotest.(check (option int)) "self" (Some 0) (Cover_store.min_distance store 2 2);
  Alcotest.(check (option int)) "none" None (Cover_store.min_distance store 3 1);
  check_int "stored ints with dist" 12 (Cover_store.stored_integers store)

let test_cover_store_matches_cover () =
  (* random graph: store answers = in-memory cover answers *)
  let rng = Splitmix.create 99 in
  let g = Hopi_graph.Digraph.create () in
  for v = 0 to 29 do
    Hopi_graph.Digraph.add_node g v
  done;
  for _ = 1 to 60 do
    Hopi_graph.Digraph.add_edge g (Splitmix.int rng 30) (Splitmix.int rng 30)
  done;
  let clo = Hopi_graph.Closure.compute g in
  let cover, _ = Hopi_twohop.Builder.build clo in
  let store = Cover_store.create (Pager.create ~pool_pages:16 Pager.Memory) in
  Cover_store.load_cover store cover;
  for u = 0 to 29 do
    for v = 0 to 29 do
      check_bool
        (Printf.sprintf "%d->%d" u v)
        (Cover.connected cover u v)
        (Cover_store.connected store u v)
    done
  done;
  check_int "entry counts agree" (Cover.size cover) (Cover_store.n_entries store)

let test_cover_store_remove_node () =
  let cover = Cover.create () in
  List.iter (Cover.add_node cover) [ 1; 2; 3 ];
  Cover.add_out cover ~node:1 ~center:2;
  Cover.add_in cover ~node:3 ~center:2;
  let store = Cover_store.create (Pager.create Pager.Memory) in
  Cover_store.load_cover store cover;
  Cover_store.remove_node store 1;
  check_bool "gone" false (Cover_store.mem_node store 1);
  check_bool "no conn" false (Cover_store.connected store 1 3);
  check_int "one entry left" 1 (Cover_store.n_entries store);
  Cover_store.remove_label store 2;
  check_int "label entries dropped" 0 (Cover_store.n_entries store)

let test_cover_store_persistence_roundtrip () =
  let path = Filename.temp_file "hopi_store" ".db" in
  (* build a cover over a random graph, persist, close *)
  let rng = Splitmix.create 31 in
  let g = Hopi_graph.Digraph.create () in
  for v = 0 to 19 do
    Hopi_graph.Digraph.add_node g v
  done;
  for _ = 1 to 40 do
    Hopi_graph.Digraph.add_edge g (Splitmix.int rng 20) (Splitmix.int rng 20)
  done;
  let clo = Hopi_graph.Closure.compute g in
  let cover, _ = Hopi_twohop.Builder.build clo in
  let pager = Pager.create ~pool_pages:16 (Pager.File path) in
  let store = Cover_store.create pager in
  Cover_store.load_cover store cover;
  let entries = Cover_store.n_entries store in
  Cover_store.save store;
  Pager.close pager;
  (* reopen from disk and compare every answer *)
  let pager2 = Pager.open_existing ~pool_pages:16 path in
  let store2 = Cover_store.open_pager pager2 in
  check_int "entries survive" entries (Cover_store.n_entries store2);
  for u = 0 to 19 do
    for v = 0 to 19 do
      check_bool
        (Printf.sprintf "%d->%d" u v)
        (Cover.connected cover u v)
        (Cover_store.connected store2 u v)
    done
  done;
  Pager.close pager2;
  Sys.remove path

let test_cover_store_persistence_distances () =
  let path = Filename.temp_file "hopi_dstore" ".db" in
  let dc = Dist_cover.create () in
  List.iter (Dist_cover.add_node dc) [ 1; 2; 3 ];
  Dist_cover.add_out dc ~node:1 ~center:2 ~dist:3;
  Dist_cover.add_in dc ~node:3 ~center:2 ~dist:4;
  let pager = Pager.create (Pager.File path) in
  let store = Cover_store.create pager in
  Cover_store.load_dist_cover store dc;
  Cover_store.save store;
  Pager.close pager;
  let store2 = Cover_store.open_pager (Pager.open_existing path) in
  Alcotest.(check (option int)) "distance survives" (Some 7)
    (Cover_store.min_distance store2 1 3);
  check_int "dist flag survives (6 ints per entry)" 12
    (Cover_store.stored_integers store2);
  Sys.remove path

let test_catalog_bad_magic () =
  let pager = Pager.create Pager.Memory in
  ignore (Pager.alloc pager);
  Alcotest.check_raises "bad magic"
    (Storage_error.Storage_error
       (Storage_error.Bad_magic { got = 0; expected = Catalog.magic }))
    (fun () -> ignore (Cover_store.open_pager pager))

let test_catalog_bad_version () =
  let pager = Pager.create Pager.Memory in
  ignore (Pager.alloc pager);
  let page = Pager.read pager 0 in
  Page.set_i32 page po Catalog.magic;
  Page.set_i32 page (po + 4) 999;
  Pager.mark_dirty pager 0;
  Alcotest.check_raises "bad version"
    (Storage_error.Storage_error
       (Storage_error.Bad_version { got = 999; expected = Catalog.version }))
    (fun () -> ignore (Cover_store.open_pager pager))

let test_catalog_truncated () =
  (* an empty pager has no page 0 at all *)
  let pager = Pager.create Pager.Memory in
  check_bool "truncated" true
    (match Cover_store.open_pager pager with
    | _ -> false
    | exception Storage_error.Storage_error (Storage_error.Truncated _) -> true)

let test_catalog_wrong_kind () =
  (* a saved closure store must be rejected by Cover_store.open_pager *)
  let vfs = Vfs.memory () in
  let pager = Pager.create_vfs ~vfs "kind.db" in
  let g = Hopi_graph.Digraph.create () in
  Hopi_graph.Digraph.add_edge g 1 2;
  let cs = Closure_store.create pager in
  Closure_store.load cs (Hopi_graph.Closure.compute g);
  Closure_store.save cs;
  Pager.close pager;
  let pager2 = Pager.open_vfs ~vfs "kind.db" in
  check_bool "wrong kind rejected" true
    (match Cover_store.open_pager pager2 with
    | _ -> false
    | exception Storage_error.Storage_error (Storage_error.Bad_catalog _) -> true)

let test_open_missing_file () =
  check_bool "missing file" true
    (match Pager.open_existing "/nonexistent/hopi-no-such-store.db" with
    | _ -> false
    | exception Storage_error.Storage_error (Storage_error.File_not_found _) -> true)

(* {1 Closure_store} *)

let test_closure_store () =
  let g = Hopi_graph.Digraph.create () in
  List.iter (fun (u, v) -> Hopi_graph.Digraph.add_edge g u v)
    [ (1, 2); (2, 3); (1, 4) ];
  let clo = Hopi_graph.Closure.compute g in
  let store = Closure_store.create (Pager.create Pager.Memory) in
  Closure_store.load store clo;
  check_int "connections incl reflexive" 8 (Closure_store.n_connections store);
  check_int "stored ints" 32 (Closure_store.stored_integers store);
  check_bool "1->3" true (Closure_store.connected store 1 3);
  check_bool "reflexive" true (Closure_store.connected store 4 4);
  check_bool "3->1" false (Closure_store.connected store 3 1);
  check_int "descendants of 1" 4 (Ihs.cardinal (Closure_store.descendants store 1));
  check_int "ancestors of 3" 3 (Ihs.cardinal (Closure_store.ancestors store 3))

let prop_dist_store_matches_dist_cover =
  QCheck2.Test.make ~name:"stored MIN(DIST) = Dist_cover.dist" ~count:25
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 14))
    (fun (seed, n) ->
      let rng = Splitmix.create seed in
      let g = Hopi_graph.Digraph.create () in
      for v = 0 to n - 1 do
        Hopi_graph.Digraph.add_node g v
      done;
      for _ = 1 to 2 * n do
        let u = Splitmix.int rng n and v = Splitmix.int rng n in
        if u <> v then Hopi_graph.Digraph.add_edge g u v
      done;
      let dc, _ = Hopi_twohop.Dist_builder.build g in
      let store = Cover_store.create (Pager.create ~pool_pages:16 Pager.Memory) in
      Cover_store.load_dist_cover store dc;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Cover_store.min_distance store u v <> Dist_cover.dist dc u v then ok := false
        done
      done;
      !ok)

let prop_store_anc_desc_match_cover =
  QCheck2.Test.make ~name:"stored ancestors/descendants = cover" ~count:25
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 14))
    (fun (seed, n) ->
      let rng = Splitmix.create seed in
      let g = Hopi_graph.Digraph.create () in
      for v = 0 to n - 1 do
        Hopi_graph.Digraph.add_node g v
      done;
      for _ = 1 to 2 * n do
        let u = Splitmix.int rng n and v = Splitmix.int rng n in
        if u <> v then Hopi_graph.Digraph.add_edge g u v
      done;
      let cover, _ = Hopi_twohop.Builder.build (Hopi_graph.Closure.compute g) in
      let store = Cover_store.create (Pager.create ~pool_pages:16 Pager.Memory) in
      Cover_store.load_cover store cover;
      let same a b =
        Hopi_util.Int_set.equal (Ihs.to_int_set a) (Ihs.to_int_set b)
      in
      let ok = ref true in
      for v = 0 to n - 1 do
        if not (same (Cover_store.descendants store v) (Cover.descendants cover v))
        then ok := false;
        if not (same (Cover_store.ancestors store v) (Cover.ancestors cover v)) then
          ok := false
      done;
      !ok)

(* {1 Btree bulk load} *)

let stream_of_list l =
  let rest = ref l in
  fun () ->
    match !rest with
    | [] -> None
    | k :: tl ->
      rest := tl;
      Some k

let scan_all t =
  let acc = ref [] in
  Btree.iter_all t (fun k -> acc := k :: !acc);
  List.rev !acc

let test_btree_bulk_empty_and_invalid () =
  (* empty stream: a usable empty tree, same as [create] *)
  let t = Btree.bulk_load (Pager.create Pager.Memory) ~next:(stream_of_list []) in
  check_int "empty length" 0 (Btree.length t);
  check_bool "nothing present" false (Btree.mem t (0, 0, 0));
  check_bool "still insertable" true (Btree.insert t (1, 2, 3));
  check_bool "insert landed" true (Btree.mem t (1, 2, 3));
  (* streams that violate the strictly-ascending contract are rejected *)
  let rejects keys =
    match Btree.bulk_load (Pager.create Pager.Memory) ~next:(stream_of_list keys) with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "descending rejected" true (rejects [ (2, 0, 0); (1, 0, 0) ]);
  check_bool "duplicate rejected" true (rejects [ (1, 0, 0); (1, 0, 0) ]);
  check_bool "out-of-range rejected" true (rejects [ (0, Btree.max_i32 + 1, 0) ])

let prop_btree_bulk_matches_inserts =
  (* differential: bulk_load over a sorted stream must be indistinguishable
     from insert-at-a-time — full scan, length, and point lookups (present
     and absent keys alike) *)
  QCheck2.Test.make ~name:"Btree.bulk_load = insert-at-a-time" ~count:40
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 900))
    (fun (seed, n) ->
      let rng = Splitmix.create seed in
      let module Ks = Set.Make (struct
        type t = int * int * int

        let compare = compare
      end) in
      let keys = ref Ks.empty in
      for _ = 1 to n do
        keys :=
          Ks.add (Splitmix.int rng 60, Splitmix.int rng 60, Splitmix.int rng 4) !keys
      done;
      let sorted = Ks.elements !keys in
      let reference = Btree.create (Pager.create ~pool_pages:16 Pager.Memory) in
      List.iter (fun k -> ignore (Btree.insert reference k)) sorted;
      let bulk =
        Btree.bulk_load (Pager.create ~pool_pages:16 Pager.Memory)
          ~next:(stream_of_list sorted)
      in
      if Btree.length bulk <> Btree.length reference then
        QCheck2.Test.fail_reportf "length %d <> %d" (Btree.length bulk)
          (Btree.length reference);
      if scan_all bulk <> sorted then QCheck2.Test.fail_report "full scan differs";
      let ok = ref true in
      for _ = 1 to 300 do
        let k = (Splitmix.int rng 60, Splitmix.int rng 60, Splitmix.int rng 4) in
        if Btree.mem bulk k <> Btree.mem reference k then ok := false
      done;
      !ok)

(* {1 Cover_store bulk load} *)

let random_graph ~seed ~n ~edges =
  let rng = Splitmix.create seed in
  let g = Hopi_graph.Digraph.create () in
  for v = 0 to n - 1 do
    Hopi_graph.Digraph.add_node g v
  done;
  for _ = 1 to edges do
    let u = Splitmix.int rng n and v = Splitmix.int rng n in
    if u <> v then Hopi_graph.Digraph.add_edge g u v
  done;
  g

let prop_bulk_store_matches_rowwise =
  (* the differential promised by cover_store.mli: a bulk-loaded store must
     answer exactly like a row-at-a-time store, including after a
     save/reopen cycle *)
  QCheck2.Test.make ~name:"bulk store = row-at-a-time store" ~count:20
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 2 16))
    (fun (seed, n) ->
      let g = random_graph ~seed ~n ~edges:(2 * n) in
      let cover, _ = Hopi_twohop.Builder.build (Hopi_graph.Closure.compute g) in
      let rowwise = Cover_store.create (Pager.create ~pool_pages:16 Pager.Memory) in
      Cover_store.load_cover rowwise cover;
      let vfs = Vfs.memory () in
      let pager = Pager.create_vfs ~pool_pages:16 ~vfs "bulk.db" in
      let bulk = Cover_store.create pager in
      Cover_store.bulk_load_cover bulk cover;
      Cover_store.save bulk;
      Pager.close pager;
      let bulk = Cover_store.open_pager (Pager.open_vfs ~pool_pages:16 ~vfs "bulk.db") in
      if Cover_store.n_entries bulk <> Cover_store.n_entries rowwise then
        QCheck2.Test.fail_reportf "entries %d <> %d" (Cover_store.n_entries bulk)
          (Cover_store.n_entries rowwise);
      if Cover_store.n_nodes bulk <> Cover_store.n_nodes rowwise then
        QCheck2.Test.fail_report "node counts differ";
      let same a b = Hopi_util.Int_set.equal (Ihs.to_int_set a) (Ihs.to_int_set b) in
      let ok = ref true in
      for u = 0 to n - 1 do
        if not (same (Cover_store.descendants bulk u) (Cover_store.descendants rowwise u))
        then ok := false;
        if not (same (Cover_store.ancestors bulk u) (Cover_store.ancestors rowwise u))
        then ok := false;
        for v = 0 to n - 1 do
          if Cover_store.connected bulk u v <> Cover_store.connected rowwise u v then
            ok := false
        done
      done;
      !ok)

let prop_bulk_dist_store_matches_rowwise =
  QCheck2.Test.make ~name:"bulk distance store = row-at-a-time store" ~count:15
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 2 14))
    (fun (seed, n) ->
      let g = random_graph ~seed ~n ~edges:(2 * n) in
      let dc, _ = Hopi_twohop.Dist_builder.build g in
      let rowwise = Cover_store.create (Pager.create ~pool_pages:16 Pager.Memory) in
      Cover_store.load_dist_cover rowwise dc;
      let bulk = Cover_store.create (Pager.create ~pool_pages:16 Pager.Memory) in
      Cover_store.bulk_load_dist_cover bulk dc;
      if Cover_store.stored_integers bulk <> Cover_store.stored_integers rowwise then
        QCheck2.Test.fail_report "stored integers differ";
      if Cover_store.with_dist bulk <> Cover_store.with_dist rowwise then
        QCheck2.Test.fail_report "dist flags differ";
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Cover_store.min_distance bulk u v <> Cover_store.min_distance rowwise u v
          then ok := false
        done
      done;
      !ok)

let test_bulk_store_requires_fresh () =
  let cover = Cover.create () in
  Cover.add_node cover 1;
  let store = Cover_store.create (Pager.create Pager.Memory) in
  Cover_store.add_node store 5;
  check_bool "non-fresh store rejected" true
    (match Cover_store.bulk_load_cover store cover with
    | () -> false
    | exception Invalid_argument _ -> true)

(* {1 Spill} *)

let spill_dir = "/spill"

let spill_temps vfs =
  List.filter
    (fun f -> String.starts_with ~prefix:Spill.temp_prefix f)
    (vfs.Vfs.list_dir spill_dir)

let prop_spill_merge_oracle =
  (* random entries scattered over random concurrent-style runs under a
     range of budgets (0 = spill everything) must merge back to exactly the
     sorted deduplicated entry set, and close must leave no temp files *)
  QCheck2.Test.make ~name:"Spill merge = sort_uniq oracle" ~count:60
    QCheck2.Gen.(triple (int_range 0 1_000_000) (int_range 0 2_000) (int_range 0 3))
    (fun (seed, n, budget_sel) ->
      let rng = Splitmix.create seed in
      let vfs = Vfs.memory () in
      let budget_bytes =
        match budget_sel with 0 -> 0 | 1 -> 64 | 2 -> 4096 | _ -> max_int
      in
      let sp = Spill.settings ~vfs ~dir:spill_dir ~budget_bytes () in
      let s = Spill.sorter sp ~tag:"prop" in
      let n_runs = 1 + Splitmix.int rng 4 in
      let runs = Array.init n_runs (fun _ -> Spill.run s) in
      let all = ref [] in
      for _ = 1 to n do
        let e = Splitmix.int rng 300 in
        all := e :: !all;
        Spill.add runs.(Splitmix.int rng n_runs) e
      done;
      Array.iter Spill.finish runs;
      let got = ref [] in
      Spill.merged s (fun e -> got := e :: !got);
      let got = List.rev !got in
      let st = Spill.stats s in
      Spill.close s;
      if got <> List.sort_uniq compare !all then
        QCheck2.Test.fail_report "merged stream <> sorted dedup oracle";
      if st.Spill.entries <> n then
        QCheck2.Test.fail_reportf "entries stat %d <> %d" st.Spill.entries n;
      if budget_bytes = 0 && n > 0 && st.Spill.spilled_runs = 0 then
        QCheck2.Test.fail_report "zero budget with entries did not spill";
      if budget_bytes = max_int && st.Spill.spilled_runs <> 0 then
        QCheck2.Test.fail_report "unlimited budget spilled";
      if st.Spill.spilled_runs > 0 && st.Spill.spilled_bytes = 0 then
        QCheck2.Test.fail_report "spilled runs but no spilled bytes";
      if spill_temps vfs <> [] then QCheck2.Test.fail_report "close left temp files";
      true)

let test_spill_bounded_fanin () =
  (* a zero budget over a large feed produces far more spilled runs than
     the merge's fan-in cap; intermediate merge passes must fold them
     without ever opening them all (and without changing the stream) *)
  let vfs = Vfs.memory () in
  let sp = Spill.settings ~vfs ~dir:spill_dir ~budget_bytes:0 () in
  let s = Spill.sorter sp ~tag:"fanin" in
  let rng = Splitmix.create 11 in
  let r = Spill.run s in
  let n = 60_000 in
  let all = Array.init n (fun _ -> Splitmix.int rng 1_000_000) in
  Array.iter (Spill.add r) all;
  Spill.finish r;
  check_bool "spilled far past the fan-in cap" true
    ((Spill.stats s).Spill.spilled_runs > 100);
  let got = ref [] in
  Spill.merged s (fun e -> got := e :: !got);
  let expect = List.sort_uniq compare (Array.to_list all) in
  Alcotest.(check (list int)) "stream survives merge passes" expect (List.rev !got);
  Spill.close s;
  check_int "temps removed (incl. merge-pass outputs)" 0
    (List.length (spill_temps vfs))

let test_spill_close_idempotent () =
  let vfs = Vfs.memory () in
  let sp = Spill.settings ~vfs ~dir:spill_dir ~budget_bytes:0 () in
  let s = Spill.sorter sp ~tag:"close" in
  let r = Spill.run s in
  for i = 0 to 999 do
    Spill.add r (i mod 37)
  done;
  Spill.finish r;
  check_bool "spilled to temp files" true (spill_temps vfs <> []);
  Spill.close s;
  check_int "temps removed" 0 (List.length (spill_temps vfs));
  Spill.close s (* second close is a no-op *)

let test_spill_cleanup_dir () =
  (* a sorter abandoned without close (a crashed build) leaves temps behind;
     cleanup_dir finds and removes exactly the hopi-spill-* files *)
  let vfs = Vfs.memory () in
  let sp = Spill.settings ~vfs ~dir:spill_dir ~budget_bytes:0 () in
  let s = Spill.sorter sp ~tag:"orphan" in
  let r = Spill.run s in
  for i = 0 to 1999 do
    Spill.add r i
  done;
  Spill.finish r;
  let orphans = List.length (spill_temps vfs) in
  check_bool "orphaned temps exist" true (orphans > 0);
  (* an unrelated file in the same directory must survive *)
  let f = vfs.Vfs.open_file (Filename.concat spill_dir "keep.db") ~create:true in
  f.Vfs.close ();
  check_int "cleanup count" orphans (Spill.cleanup_dir ~vfs spill_dir);
  check_int "temps gone" 0 (List.length (spill_temps vfs));
  check_bool "unrelated file kept" true
    (vfs.Vfs.exists (Filename.concat spill_dir "keep.db"));
  check_int "second cleanup finds nothing" 0 (Spill.cleanup_dir ~vfs spill_dir)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "storage.pager",
      [
        Alcotest.test_case "alloc/read" `Quick test_pager_alloc_read;
        Alcotest.test_case "eviction roundtrip" `Quick test_pager_eviction_roundtrip;
        Alcotest.test_case "file backend" `Quick test_pager_file_backend;
        Alcotest.test_case "pinning" `Quick test_pager_pinning;
        Alcotest.test_case "pin nesting across evictions" `Quick test_pager_pin_nesting;
        Alcotest.test_case "free-list reuse" `Quick test_pager_free_list_reuse;
        Alcotest.test_case "freed pages after reopen" `Quick
          test_pager_freed_pages_after_reopen;
        Alcotest.test_case "open missing file" `Quick test_open_missing_file;
      ]
      @ qsuite [ prop_pager_roundtrip_real_vfs ] );
    ( "storage.btree",
      [
        Alcotest.test_case "basic" `Quick test_btree_basic;
        Alcotest.test_case "many keys/splits" `Quick test_btree_many_with_splits;
        Alcotest.test_case "prefix scans" `Quick test_btree_prefix_scans;
        Alcotest.test_case "delete rebalancing" `Quick test_btree_delete_rebalancing;
        Alcotest.test_case "delete to empty + reuse" `Quick test_btree_delete_to_empty_and_reuse;
        Alcotest.test_case "bulk load: empty/invalid streams" `Quick
          test_btree_bulk_empty_and_invalid;
      ]
      @ qsuite [ prop_btree_model; prop_btree_bulk_matches_inserts ] );
    ( "storage.table",
      [
        Alcotest.test_case "indexes" `Quick test_table_indexes;
        Alcotest.test_case "find_dist" `Quick test_table_find_dist;
      ] );
    ( "storage.cover_store",
      [
        Alcotest.test_case "roundtrip" `Quick test_cover_store_roundtrip;
        Alcotest.test_case "distance" `Quick test_cover_store_distance;
        Alcotest.test_case "matches cover" `Quick test_cover_store_matches_cover;
        Alcotest.test_case "remove node" `Quick test_cover_store_remove_node;
        Alcotest.test_case "persistence roundtrip" `Quick
          test_cover_store_persistence_roundtrip;
        Alcotest.test_case "persistence distances" `Quick
          test_cover_store_persistence_distances;
        Alcotest.test_case "bad catalog" `Quick test_catalog_bad_magic;
        Alcotest.test_case "bad version" `Quick test_catalog_bad_version;
        Alcotest.test_case "truncated store" `Quick test_catalog_truncated;
        Alcotest.test_case "wrong store kind" `Quick test_catalog_wrong_kind;
        Alcotest.test_case "bulk load requires a fresh store" `Quick
          test_bulk_store_requires_fresh;
      ] );
    ("storage.closure_store", [ Alcotest.test_case "basic" `Quick test_closure_store ]);
    ( "storage.cover_store_props",
      qsuite
        [
          prop_dist_store_matches_dist_cover;
          prop_store_anc_desc_match_cover;
          prop_bulk_store_matches_rowwise;
          prop_bulk_dist_store_matches_rowwise;
        ] );
    ( "storage.spill",
      [
        Alcotest.test_case "bounded merge fan-in" `Quick test_spill_bounded_fanin;
        Alcotest.test_case "close removes temps, idempotent" `Quick
          test_spill_close_idempotent;
        Alcotest.test_case "cleanup_dir removes orphans only" `Quick
          test_spill_cleanup_dir;
      ]
      @ qsuite [ prop_spill_merge_oracle ] );
  ]
