(* Property-based differential tests: random graphs and random collections
   checked against the exhaustive BFS oracles in [Hopi_twohop.Verify], plus
   the jobs-independence guarantee of the parallel build and a maintenance
   soak over random update traces.

   Seeds come from qcheck's global state; CI pins QCHECK_SEED so failures
   replay.  Counts are modest — every case builds an index and runs an
   O(n²) oracle. *)

module Gen = QCheck2.Gen
module Digraph = Hopi_graph.Digraph
module Closure = Hopi_graph.Closure
module Builder = Hopi_twohop.Builder
module Dist_builder = Hopi_twohop.Dist_builder
module Verify = Hopi_twohop.Verify
module Cover = Hopi_twohop.Cover
module Int_set = Hopi_util.Int_set
module Collection = Hopi_collection.Collection
module Dblp = Hopi_workload.Dblp_gen
module Config = Hopi_core.Config
module Build = Hopi_core.Build
module Hopi = Hopi_core.Hopi

(* {1 Generators} *)

(* arbitrary digraph, cycles and all: n nodes, ~density·n² edges *)
let gen_digraph =
  let open Gen in
  int_range 2 24 >>= fun n ->
  let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
  list_size (int_bound (3 * n)) edge >|= fun edges ->
  let g = Digraph.create () in
  for v = 0 to n - 1 do
    Digraph.add_node g v
  done;
  List.iter (fun (u, v) -> if u <> v then Digraph.add_edge g u v) edges;
  g

(* acyclic digraph: edges only from smaller to larger node ids *)
let gen_dag =
  let open Gen in
  int_range 2 24 >>= fun n ->
  let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
  list_size (int_bound (3 * n)) edge >|= fun edges ->
  let g = Digraph.create () in
  for v = 0 to n - 1 do
    Digraph.add_node g v
  done;
  List.iter
    (fun (u, v) -> if u <> v then Digraph.add_edge g (min u v) (max u v))
    edges;
  g

(* random linked collection: a small DBLP-like corpus with randomised size,
   seed and linkage density (heavier citation tails exercise the join) *)
let gen_collection_cfg =
  let open Gen in
  int_range 4 18 >>= fun n_docs ->
  int_range 0 1_000_000 >>= fun seed ->
  float_range 1.0 6.0 >>= fun avg_citations ->
  float_range 0.0 0.3 >|= fun forward_fraction ->
  { (Dblp.default ~n_docs) with seed; avg_citations; forward_fraction }

let gen_build_config =
  let open Gen in
  oneofl
    [
      Config.Whole;
      Config.Singleton;
      Config.Random_nodes 60;
      Config.Closure_aware 2_000;
    ]
  >>= fun partitioner ->
  oneofl [ Config.Incremental; Config.Psg; Config.Psg_partitioned 500 ]
  >>= fun joiner ->
  oneofl [ true; false ] >>= fun preselect_link_targets ->
  int_range 1 4 >|= fun jobs ->
  { Config.default with partitioner; joiner; preselect_link_targets; jobs }

(* {1 Canonical cover representation} *)

(* node -> (sorted Lin, sorted Lout), sorted by node: two covers are the
   same cover iff their canonical forms are equal, independent of hash
   table layout or insertion order *)
let canonical cover =
  List.sort compare (Cover.nodes cover)
  |> List.map (fun v ->
         (v, Int_set.to_list (Cover.lin cover v), Int_set.to_list (Cover.lout cover v)))

(* {1 Properties} *)

let no_mismatch label = function
  | [] -> true
  | { Verify.u; v; expected; got } :: _ ->
    QCheck2.Test.fail_reportf "%s: pair (%d,%d) expected %b got %b" label u v
      expected got

let prop_cover_exact_on_digraph =
  QCheck2.Test.make ~name:"2-hop cover = BFS on random digraphs" ~count:60
    gen_digraph (fun g ->
      let cover, _ = Builder.build (Closure.compute g) in
      no_mismatch "cover_vs_graph" (Verify.cover_vs_graph cover g))

let prop_cover_exact_on_dag =
  QCheck2.Test.make ~name:"2-hop cover = BFS on random DAGs" ~count:60 gen_dag
    (fun g ->
      let cover, _ = Builder.build (Closure.compute g) in
      no_mismatch "cover_vs_graph" (Verify.cover_vs_graph cover g))

let prop_dist_cover_exact =
  QCheck2.Test.make ~name:"distance cover = BFS distances" ~count:40 gen_digraph
    (fun g ->
      let cover, _ = Dist_builder.build g in
      match Verify.dist_cover_vs_graph cover g with
      | [] -> true
      | { Verify.du; dv; expected_d; got_d } :: _ ->
        let pp = function None -> "none" | Some d -> string_of_int d in
        QCheck2.Test.fail_reportf "distance (%d,%d): expected %s got %s" du dv
          (pp expected_d) (pp got_d))

let prop_build_exact_on_collections =
  QCheck2.Test.make
    ~name:"Build.build = BFS on random collections x random configs" ~count:12
    Gen.(pair gen_collection_cfg gen_build_config)
    (fun (gen_cfg, config) ->
      let c = Dblp.generate gen_cfg in
      let r = Build.build config c in
      no_mismatch "build"
        (Verify.cover_vs_graph r.Build.cover (Collection.element_graph c)))

let prop_jobs_determinism =
  QCheck2.Test.make ~name:"jobs=1 and jobs=4 produce the identical cover"
    ~count:10
    Gen.(pair gen_collection_cfg gen_build_config)
    (fun (gen_cfg, config) ->
      let c = Dblp.generate gen_cfg in
      let r1 = Build.build { config with Config.jobs = 1 } c in
      let r4 = Build.build { config with Config.jobs = 4 } c in
      if Cover.size r1.Build.cover <> Cover.size r4.Build.cover then
        QCheck2.Test.fail_reportf "cover sizes differ: %d vs %d"
          (Cover.size r1.Build.cover) (Cover.size r4.Build.cover);
      if Build.compression r1 <> Build.compression r4 then
        QCheck2.Test.fail_reportf "compression differs: %f vs %f"
          (Build.compression r1) (Build.compression r4);
      canonical r1.Build.cover = canonical r4.Build.cover)

let prop_budget_determinism =
  (* the external-sort pipeline's canonical merged stream makes the cover
     independent of the spill budget: a zero budget (every run spills to
     temp files) must reproduce the unconstrained build exactly, and a
     PSG join that added entries under budget 0 must actually have spilled *)
  QCheck2.Test.make
    ~name:"zero spill budget reproduces the unconstrained cover" ~count:8
    Gen.(pair gen_collection_cfg gen_build_config)
    (fun (gen_cfg, config) ->
      let c = Dblp.generate gen_cfg in
      let free = Build.build config c in
      let tight = Build.build { config with Config.build_mem_mb = Some 0 } c in
      if free.Build.spilled_runs <> 0 then
        QCheck2.Test.fail_reportf "unconstrained build spilled %d runs"
          free.Build.spilled_runs;
      (match config.Config.joiner with
      | Config.Incremental -> ()
      | Config.Psg | Config.Psg_partitioned _ ->
        if tight.Build.join_entries > 0 && tight.Build.spilled_runs = 0 then
          QCheck2.Test.fail_reportf
            "budget 0 added %d join entries without spilling"
            tight.Build.join_entries);
      if Cover.size free.Build.cover <> Cover.size tight.Build.cover then
        QCheck2.Test.fail_reportf "cover sizes differ: %d vs %d"
          (Cover.size free.Build.cover)
          (Cover.size tight.Build.cover);
      canonical free.Build.cover = canonical tight.Build.cover)

let prop_fixed_seed_reproducible =
  QCheck2.Test.make ~name:"same config + seed => reproducible parallel build"
    ~count:8 gen_collection_cfg (fun gen_cfg ->
      let config = { Config.default with Config.jobs = 4 } in
      let build () = Build.build config (Dblp.generate gen_cfg) in
      canonical (build ()).Build.cover = canonical (build ()).Build.cover)

(* {1 Maintenance soak} *)

(* replay a random churn trace through the facade; the index must stay
   query-equivalent to a from-scratch rebuild after every operation (which
   [self_check]'s BFS oracle is).  Returns how often the separating fast
   path (Theorem 2) vs the general path (Theorem 3) ran. *)
let replay_soak ~gen_cfg ~trace_seed ~n_ops =
  let c = Dblp.generate gen_cfg in
  let idx = Hopi.create c in
  let ops =
    Hopi_workload.Update_gen.churn_trace ~seed:trace_seed ~n_ops
      (Dblp.document_xml gen_cfg) (Hopi.collection idx)
  in
  let separating = ref 0 and general = ref 0 in
  List.iter
    (fun op ->
      let c = Hopi.collection idx in
      (match op with
       | Hopi_workload.Update_gen.Delete_doc name -> (
         match Collection.find_doc c name with
         | Some did ->
           let stats = Hopi.remove_document idx did in
           if stats.Hopi_core.Maintenance.separating then incr separating
           else incr general
         | None -> ())
       | Hopi_workload.Update_gen.Reinsert_doc (name, xml) ->
         if Collection.find_doc c name = None then
           (match Hopi.insert_document_xml idx ~name xml with
            | Ok _ -> ()
            | Error _ -> failwith "soak: regenerated XML failed to parse")
       | Hopi_workload.Update_gen.Add_link (src, dst) -> (
         match (Collection.find_doc c src, Collection.find_doc c dst) with
         | Some ds, Some dd ->
           let u = Collection.doc_root_element c ds
           and v = Collection.doc_root_element c dd in
           if u <> v
              && not (Digraph.mem_edge (Collection.element_graph c) u v)
           then ignore (Hopi.insert_link idx u v)
         | _ -> ()));
      if not (Hopi.self_check idx) then
        failwith "soak: index diverged from BFS oracle after an update")
    ops;
  (* final differential check against an actual from-scratch rebuild *)
  let rebuilt = Hopi.create ~config:(Hopi.config idx) (Hopi.collection idx) in
  if canonical (Hopi.cover idx) <> canonical (Hopi.cover rebuilt) then begin
    (* maintained covers may legitimately differ in entries from rebuilt
       ones — but they must answer identically; compare all pairs *)
    let g = Collection.element_graph (Hopi.collection idx) in
    Digraph.iter_nodes g (fun u ->
        Digraph.iter_nodes g (fun v ->
            if Hopi.connected idx u v <> Hopi.connected rebuilt u v then
              failwith
                (Printf.sprintf
                   "soak: maintained and rebuilt indexes disagree on (%d,%d)" u
                   v)))
  end;
  (!separating, !general)

let prop_maintenance_soak =
  QCheck2.Test.make ~name:"maintenance soak: churn keeps the index exact"
    ~count:8
    Gen.(pair gen_collection_cfg (int_range 0 1_000_000))
    (fun (gen_cfg, trace_seed) ->
      ignore (replay_soak ~gen_cfg ~trace_seed ~n_ops:8);
      true)

(* deterministic companion: a trace long enough that both deletion paths
   must occur (DBLP docs with cross citations take the general path, leaf
   documents the separating fast path) *)
let test_soak_covers_both_paths () =
  let seen_sep = ref 0 and seen_gen = ref 0 in
  let trace_seed = ref 11 in
  let gen_seeds = [ 3; 41; 97 ] in
  List.iter
    (fun seed ->
      let gen_cfg = { (Dblp.default ~n_docs:14) with seed } in
      let s, g = replay_soak ~gen_cfg ~trace_seed:!trace_seed ~n_ops:12 in
      incr trace_seed;
      seen_sep := !seen_sep + s;
      seen_gen := !seen_gen + g)
    gen_seeds;
  Alcotest.(check bool) "separating fast path exercised" true (!seen_sep > 0);
  Alcotest.(check bool) "general path exercised" true (!seen_gen > 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "props.cover",
      qsuite
        [
          prop_cover_exact_on_digraph;
          prop_cover_exact_on_dag;
          prop_dist_cover_exact;
        ] );
    ( "props.build",
      qsuite
        [
          prop_build_exact_on_collections;
          prop_jobs_determinism;
          prop_budget_determinism;
          prop_fixed_seed_reproducible;
        ] );
    ( "props.maintenance",
      Alcotest.test_case "soak covers both delete paths" `Quick
        test_soak_covers_both_paths
      :: qsuite [ prop_maintenance_soak ] );
  ]
