(* Tests for hopi_util: Int_set, Int_hashset, Bitset, Dyn_array, Heap,
   Splitmix, Stats. *)

open Hopi_util

let check_list = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Int_set} *)

let test_int_set_of_list () =
  check_list "sorted dedup" [ 1; 2; 3 ] Int_set.(to_list (of_list [ 3; 1; 2; 3; 1 ]));
  check_list "empty" [] Int_set.(to_list (of_list []))

let test_int_set_mem () =
  let s = Int_set.of_list [ 2; 4; 6; 8; 10 ] in
  List.iter (fun x -> check_bool (string_of_int x) true (Int_set.mem x s)) [ 2; 4; 6; 8; 10 ];
  List.iter (fun x -> check_bool (string_of_int x) false (Int_set.mem x s)) [ 1; 3; 5; 7; 9; 11; 0; -1 ]

let test_int_set_add_remove () =
  let s = Int_set.of_list [ 1; 5; 9 ] in
  check_list "add mid" [ 1; 3; 5; 9 ] Int_set.(to_list (add 3 s));
  check_list "add front" [ 0; 1; 5; 9 ] Int_set.(to_list (add 0 s));
  check_list "add back" [ 1; 5; 9; 12 ] Int_set.(to_list (add 12 s));
  check_list "add existing" [ 1; 5; 9 ] Int_set.(to_list (add 5 s));
  check_list "remove mid" [ 1; 9 ] Int_set.(to_list (remove 5 s));
  check_list "remove missing" [ 1; 5; 9 ] Int_set.(to_list (remove 4 s))

let test_int_set_set_ops () =
  let a = Int_set.of_list [ 1; 2; 3; 4 ] and b = Int_set.of_list [ 3; 4; 5; 6 ] in
  check_list "union" [ 1; 2; 3; 4; 5; 6 ] Int_set.(to_list (union a b));
  check_list "inter" [ 3; 4 ] Int_set.(to_list (inter a b));
  check_list "diff" [ 1; 2 ] Int_set.(to_list (diff a b));
  check_bool "inter_is_empty no" false (Int_set.inter_is_empty a b);
  check_bool "inter_is_empty yes" true
    Int_set.(inter_is_empty (of_list [ 1; 2 ]) (of_list [ 3; 4 ]));
  Alcotest.(check (option int)) "choose_inter" (Some 3) (Int_set.choose_inter a b);
  check_bool "subset yes" true Int_set.(subset (of_list [ 2; 3 ]) a);
  check_bool "subset no" false (Int_set.subset a b)

let test_int_set_minmax () =
  let s = Int_set.of_list [ 7; 3; 9 ] in
  check_int "min" 3 (Int_set.min_elt s);
  check_int "max" 9 (Int_set.max_elt s);
  Alcotest.check_raises "min empty" Not_found (fun () ->
      ignore (Int_set.min_elt Int_set.empty))

(* qcheck properties for Int_set *)

let int_list = QCheck2.Gen.(list_size (int_bound 40) (int_bound 100))

let prop_union_is_set_union =
  QCheck2.Test.make ~name:"Int_set.union = List union" ~count:200
    QCheck2.Gen.(pair int_list int_list)
    (fun (xs, ys) ->
      let expected = List.sort_uniq compare (xs @ ys) in
      Int_set.(to_list (union (of_list xs) (of_list ys))) = expected)

let prop_inter_is_set_inter =
  QCheck2.Test.make ~name:"Int_set.inter = List inter" ~count:200
    QCheck2.Gen.(pair int_list int_list)
    (fun (xs, ys) ->
      let expected =
        List.sort_uniq compare (List.filter (fun x -> List.mem x ys) xs)
      in
      Int_set.(to_list (inter (of_list xs) (of_list ys))) = expected)

let prop_diff_is_set_diff =
  QCheck2.Test.make ~name:"Int_set.diff = List diff" ~count:200
    QCheck2.Gen.(pair int_list int_list)
    (fun (xs, ys) ->
      let expected =
        List.sort_uniq compare (List.filter (fun x -> not (List.mem x ys)) xs)
      in
      Int_set.(to_list (diff (of_list xs) (of_list ys))) = expected)

let prop_mem_matches_list =
  QCheck2.Test.make ~name:"Int_set.mem = List.mem" ~count:200
    QCheck2.Gen.(pair int_list (int_bound 100))
    (fun (xs, x) -> Int_set.mem x (Int_set.of_list xs) = List.mem x xs)

(* {1 Int_hashset} *)

let test_hashset_basic () =
  let h = Int_hashset.create () in
  check_bool "empty" true (Int_hashset.is_empty h);
  Int_hashset.add h 5;
  Int_hashset.add h 5;
  Int_hashset.add h 7;
  check_int "cardinal dedups" 2 (Int_hashset.cardinal h);
  check_bool "mem" true (Int_hashset.mem h 5);
  Int_hashset.remove h 5;
  check_bool "removed" false (Int_hashset.mem h 5);
  check_list "to_int_set" [ 7 ] Int_set.(to_list (Int_hashset.to_int_set h))

let test_hashset_roundtrip () =
  let s = Int_set.of_list [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  check_bool "roundtrip" true
    (Int_set.equal s (Int_hashset.to_int_set (Int_hashset.of_int_set s)))

(* {1 Bitset} *)

let test_bitset_basic () =
  let b = Bitset.create 20 in
  check_int "empty cardinal" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 8;
  Bitset.set b 19;
  check_int "cardinal" 4 (Bitset.cardinal b);
  check_bool "get set" true (Bitset.get b 7);
  check_bool "get unset" false (Bitset.get b 6);
  Bitset.unset b 7;
  check_bool "unset" false (Bitset.get b 7);
  check_list "to_int_set" [ 0; 8; 19 ] Int_set.(to_list (Bitset.to_int_set b))

let test_bitset_union () =
  let a = Bitset.create 16 and b = Bitset.create 16 in
  Bitset.set a 1;
  Bitset.set b 2;
  Bitset.set b 1;
  let changed = Bitset.union_into ~dst:a b in
  check_bool "changed" true changed;
  check_list "union" [ 1; 2 ] Int_set.(to_list (Bitset.to_int_set a));
  let changed2 = Bitset.union_into ~dst:a b in
  check_bool "no change" false changed2

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob set" (Invalid_argument "Bitset: index 8 out of [0,8)")
    (fun () -> Bitset.set b 8);
  Alcotest.check_raises "neg get" (Invalid_argument "Bitset: index -1 out of [0,8)")
    (fun () -> ignore (Bitset.get b (-1)))

let test_bitset_inter_cardinal () =
  let a = Bitset.create 32 and b = Bitset.create 32 in
  List.iter (Bitset.set a) [ 1; 2; 3; 30 ];
  List.iter (Bitset.set b) [ 2; 3; 4; 31 ];
  check_int "inter" 2 (Bitset.inter_cardinal a b)

(* {1 Dyn_array} *)

let test_dyn_array () =
  let d = Dyn_array.create () in
  for i = 0 to 99 do
    Dyn_array.push d (i * i)
  done;
  check_int "length" 100 (Dyn_array.length d);
  check_int "get" 81 (Dyn_array.get d 9);
  Dyn_array.set d 9 (-1);
  check_int "set" (-1) (Dyn_array.get d 9);
  check_int "pop" 9801 (Dyn_array.pop d);
  check_int "after pop" 99 (Dyn_array.length d);
  check_int "last" 9604 (Dyn_array.last d);
  Alcotest.check_raises "oob" (Invalid_argument "Dyn_array: index 99 out of [0,99)")
    (fun () -> ignore (Dyn_array.get d 99))

(* {1 Heap} *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (p, x) -> Heap.push h ~prio:p x)
    [ (1.0, "a"); (5.0, "b"); (3.0, "c"); (4.0, "d"); (2.0, "e") ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_max h with
    | Some (_, x) ->
      order := x :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "max first" [ "b"; "d"; "c"; "e"; "a" ]
    (List.rev !order)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"Heap pops in decreasing priority" ~count:200
    QCheck2.Gen.(list_size (int_bound 50) (float_bound_inclusive 100.0))
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~prio:p ()) ps;
      let rec drain acc =
        match Heap.pop_max h with
        | Some (p, ()) -> drain (p :: acc)
        | None -> acc
      in
      let popped = drain [] in
      (* popped is reversed: increasing *)
      popped = List.sort compare popped)

(* {1 Splitmix} *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 7 and b = Splitmix.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Splitmix.next_int64 a = Splitmix.next_int64 b)
  done

let test_splitmix_bounds () =
  let rng = Splitmix.create 1 in
  for _ = 1 to 1000 do
    let x = Splitmix.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    let f = Splitmix.float rng 2.5 in
    check_bool "float range" true (f >= 0.0 && f < 2.5)
  done

let test_splitmix_shuffle_permutes () =
  let rng = Splitmix.create 3 in
  let a = Array.init 50 Fun.id in
  Splitmix.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_list "permutation" (List.init 50 Fun.id) (Array.to_list sorted)

(* {1 Union_find} *)

let test_union_find () =
  let uf = Union_find.create () in
  check_bool "singleton" true (Union_find.find uf 1 = 1);
  Union_find.union uf 1 2;
  Union_find.union uf 3 4;
  check_bool "1~2" true (Union_find.same uf 1 2);
  check_bool "3~4" true (Union_find.same uf 3 4);
  check_bool "1!~3" false (Union_find.same uf 1 3);
  Union_find.union uf 2 3;
  check_bool "transitive" true (Union_find.same uf 1 4);
  let classes = Union_find.classes uf in
  check_int "one class" 1 (Hashtbl.length classes);
  Hashtbl.iter (fun _ members -> check_int "four members" 4 (List.length members)) classes

let prop_union_find_is_partition =
  QCheck2.Test.make ~name:"Union_find classes partition the keys" ~count:100
    QCheck2.Gen.(list_size (int_bound 50) (pair (int_bound 20) (int_bound 20)))
    (fun pairs ->
      let uf = Union_find.create () in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      let classes = Union_find.classes uf in
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      Hashtbl.iter
        (fun repr members ->
          List.iter
            (fun m ->
              if Hashtbl.mem seen m then ok := false;
              Hashtbl.replace seen m ();
              if Union_find.find uf m <> Union_find.find uf repr then ok := false)
            members)
        classes;
      !ok)

(* {1 Stats} *)

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean_stddev () =
  check_float "mean" 3.0 (Stats.mean [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "stddev" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "stddev singleton" 0.0 (Stats.stddev [| 42.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Stats.percentile xs 50.0)

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.5; -1.5; 0.0 |] in
  check_float "min" (-1.5) lo;
  check_float "max" 3.0 hi

let test_stats_summary () =
  let s = Stats.summary [| 40.0; 10.0; 30.0; 20.0 |] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  check_float "mean" 25.0 s.Stats.mean;
  check_float "p50" 25.0 s.Stats.p50;
  check_float "p95" 38.5 s.Stats.p95;
  check_float "max" 40.0 s.Stats.max;
  Alcotest.(check int) "empty n" 0 (Stats.summary [||]).Stats.n;
  check_float "empty mean" 0.0 (Stats.summary [||]).Stats.mean

let test_stats_ci_upper () =
  (* 0 successes -> upper bound still >= 0, p=1 with no samples *)
  check_float "no samples" 1.0 (Stats.proportion_ci_upper ~successes:0 ~samples:0 ~z:2.0);
  let u = Stats.proportion_ci_upper ~successes:50 ~samples:100 ~z:Stats.z_98 in
  check_bool "upper > p" true (u > 0.5);
  check_bool "clamped" true (u <= 1.0);
  check_float "all hits" 1.0 (Stats.proportion_ci_upper ~successes:100 ~samples:100 ~z:2.0)

(* {1 Pool} *)

exception Boom of int

let test_pool_map_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let expected = Array.init 500 (fun i -> i * i) in
      check_bool "jobs" true (Pool.jobs pool = 4);
      Alcotest.(check (array int)) "map"
        expected
        (Pool.parallel_map pool 500 (fun i -> i * i));
      Alcotest.(check (array int)) "map chunk=7"
        expected
        (Pool.parallel_map pool ~chunk:7 500 (fun i -> i * i));
      Alcotest.(check (array int)) "map_array"
        expected
        (Pool.map_array pool (fun i -> i * i) (Array.init 500 Fun.id));
      Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map pool 0 (fun i -> i)))

let test_pool_sequential_fallback () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check_int "clamped" 1 (Pool.jobs pool);
      check_int "map" 42 (Pool.parallel_map pool 10 (fun i -> i + 33)).(9));
  Pool.with_pool ~jobs:0 (fun pool -> check_int "jobs 0 clamps" 1 (Pool.jobs pool))

let test_pool_iter_each_once () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let n = 1000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_iter pool ~chunk:13 n (fun i -> Atomic.incr hits.(i));
      check_bool "each index exactly once" true
        (Array.for_all (fun a -> Atomic.get a = 1) hits))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.parallel_map pool 100 (fun i -> if i = 57 then raise (Boom i) else i) with
       | _ -> Alcotest.fail "expected Boom"
       | exception Boom 57 -> ());
      (* the pool survives a failed submission *)
      check_int "usable after failure" 99 (Pool.parallel_map pool 100 Fun.id).(99))

let test_pool_nested_submission () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let inner_total =
        Pool.parallel_map pool 8 (fun i ->
            (* nested submission must run sequentially, not deadlock *)
            Array.fold_left ( + ) 0 (Pool.parallel_map pool 10 (fun j -> (i * 10) + j)))
      in
      check_int "nested sums" ((80 * 79) / 2) (Array.fold_left ( + ) 0 inner_total))

let test_pool_reuse_across_submissions () =
  Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 50 do
        let r = Pool.parallel_map pool 20 (fun i -> i * round) in
        check_int (Printf.sprintf "round %d" round) (19 * round) r.(19)
      done)

(* {1 Timer.Acc} *)

let test_timer_acc () =
  let acc = Timer.Acc.create () in
  Timer.Acc.add_ns acc 500L;
  Timer.Acc.add_ns acc 1500L;
  check_int "total_ns" 2000 (Timer.Acc.total_ns acc);
  Timer.Acc.add_ns acc (-7L);
  check_int "negative clamps" 2000 (Timer.Acc.total_ns acc);
  Timer.Acc.add_s acc 1e-6;
  check_int "add_s" 3000 (Timer.Acc.total_ns acc);
  check_bool "total_s" true (abs_float (Timer.Acc.total_s acc -. 3e-6) < 1e-12);
  let x = Timer.Acc.timed acc (fun () -> 7) in
  check_int "timed passthrough" 7 x;
  check_bool "timed accumulates" true (Timer.Acc.total_ns acc >= 3000);
  Timer.Acc.reset acc;
  check_int "reset" 0 (Timer.Acc.total_ns acc)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "util.int_set",
      [
        Alcotest.test_case "of_list" `Quick test_int_set_of_list;
        Alcotest.test_case "mem" `Quick test_int_set_mem;
        Alcotest.test_case "add/remove" `Quick test_int_set_add_remove;
        Alcotest.test_case "set ops" `Quick test_int_set_set_ops;
        Alcotest.test_case "min/max" `Quick test_int_set_minmax;
      ]
      @ qsuite
          [
            prop_union_is_set_union;
            prop_inter_is_set_inter;
            prop_diff_is_set_diff;
            prop_mem_matches_list;
          ] );
    ( "util.int_hashset",
      [
        Alcotest.test_case "basic" `Quick test_hashset_basic;
        Alcotest.test_case "roundtrip" `Quick test_hashset_roundtrip;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "basic" `Quick test_bitset_basic;
        Alcotest.test_case "union_into" `Quick test_bitset_union;
        Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "inter_cardinal" `Quick test_bitset_inter_cardinal;
      ] );
    ("util.dyn_array", [ Alcotest.test_case "basic" `Quick test_dyn_array ]);
    ( "util.heap",
      Alcotest.test_case "order" `Quick test_heap_order :: qsuite [ prop_heap_sorts ] );
    ( "util.splitmix",
      [
        Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
        Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
        Alcotest.test_case "shuffle" `Quick test_splitmix_shuffle_permutes;
      ] );
    ( "util.union_find",
      Alcotest.test_case "basic" `Quick test_union_find
      :: qsuite [ prop_union_find_is_partition ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "min/max" `Quick test_stats_min_max;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "ci upper" `Quick test_stats_ci_upper;
      ] );
    ( "util.pool",
      [
        Alcotest.test_case "map matches sequential" `Quick
          test_pool_map_matches_sequential;
        Alcotest.test_case "sequential fallback" `Quick test_pool_sequential_fallback;
        Alcotest.test_case "iter each once" `Quick test_pool_iter_each_once;
        Alcotest.test_case "exception propagates" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "nested submission" `Quick test_pool_nested_submission;
        Alcotest.test_case "reuse across submissions" `Quick
          test_pool_reuse_across_submissions;
      ] );
    ("util.timer", [ Alcotest.test_case "acc" `Quick test_timer_acc ]);
  ]
