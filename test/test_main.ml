let () =
  Alcotest.run "hopi"
    (Test_util.suite @ Test_obs.suite @ Test_graph.suite @ Test_xml.suite
     @ Test_collection.suite @ Test_twohop.suite @ Test_storage.suite
     @ Test_crash.suite @ Test_partition.suite @ Test_core.suite @ Test_query.suite
     @ Test_flix.suite @ Test_props.suite @ Test_serve.suite
     @ Test_coldpath.suite @ Test_live.suite @ Test_server.suite
     @ Test_shard.suite)
