(** A fault-injecting {!Hopi_storage.Vfs} for crash-safety tests.

    Every file is kept as two images: the {e volatile} one (what the OS page
    cache would hold — all writes land here) and the {e durable} one (what
    the platter holds — updated only by [sync]).  A simulated crash decides
    the fate of un-synced data, optionally tears the in-flight write at a
    byte boundary, and raises {!Crash}; after that the surviving state is
    what a fresh process would see when it reopens the files.

    Failure-model assumptions (documented in DESIGN.md): metadata
    operations — [remove] and [truncate] — are atomic and durable; a torn
    write delivers a prefix of the buffer; un-synced writes either all
    survive ([Keep_unsynced]) or all vanish ([Drop_unsynced]) — intermediate
    interleavings are covered by crashing at every operation index.

    Counted operations (the crash clock): write, sync, truncate, remove.
    Reads tick a {e separate} clock ({!read_count}) so read-side fault
    plans ({!arm_fail_read}, {!arm_torn_read}) never shift the
    crash-matrix operation indexes of existing workloads. *)

type t

type mode =
  | Drop_unsynced  (** the crash loses everything after the last [sync] *)
  | Keep_unsynced  (** the page cache happened to reach the platter *)

exception Crash
(** Raised out of the faulted operation; the engine under test is then
    abandoned and the store reopened through {!vfs}. *)

val create : unit -> t

val vfs : t -> Hopi_storage.Vfs.t

val op_count : t -> int
(** Counted operations performed so far (see above).  Probe a workload
    fault-free first to learn its op count [n], then crash at each
    [k < n]. *)

val reset_ops : t -> unit

val arm_crash : t -> op:int -> mode:mode -> ?tear:int -> unit -> unit
(** Crash when the operation counter reaches [op] (before that operation
    takes effect).  If the faulted operation is a write and [tear] is given,
    the first [tear] bytes of it still reach the durable image. *)

val arm_fail_write : t -> n:int -> unit
(** Make the [n]-th write (0-based) raise [Storage_error (Io _)] — a
    reported I/O error, not a crash: no data is lost. *)

val read_count : t -> int
(** Reads performed so far (its own clock — not part of {!op_count}).
    Probe a read workload fault-free first to learn its read count, then
    fault each index. *)

val arm_fail_read : t -> n:int -> unit
(** Make the [n]-th read (0-based) raise [Storage_error (Io _)].  The
    file state is untouched: the very same read succeeds on retry. *)

val arm_torn_read : t -> n:int -> frag:int -> unit
(** Make the [n]-th read (0-based) deliver only its first [frag] bytes;
    the tail of the transfer reads as zeros but the byte count reported
    to the caller is the full one — only checksum verification can tell.
    Keep [frag >= 8] so the page header (and its checksum field) survives
    and verification reports [Corrupt] rather than mistaking the page for
    an all-zero fresh page. *)

val disarm : t -> unit

type snapshot

val snapshot : t -> snapshot
(** Deep copy of all durable images. *)

val restore : t -> snapshot -> unit
(** Reset every file (both images) to the snapshot and disarm faults; the
    operation counter is left untouched (use {!reset_ops}). *)

val corrupt_byte : t -> string -> off:int -> unit
(** Flip one byte of [file] in both images (bit-rot simulation).
    @raise Not_found if the file does not exist or is too short. *)

val durable_size : t -> string -> int
(** Size of the durable image ([0] if absent). *)
