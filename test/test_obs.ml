(* Observability library: metric semantics, bucket boundaries, span trees,
   exporter output, and multi-domain safety. *)

module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Histogram = Hopi_obs.Histogram
module Registry = Hopi_obs.Registry
module Trace = Hopi_obs.Trace
module Export = Hopi_obs.Export

(* {1 A minimal JSON validator} — enough to assert the hand-rolled emitter
   produces well-formed JSON without a JSON library in the toolchain. *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit =
    String.iter expect lit
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail "bad \\u escape"
           done
         | _ -> fail "bad escape");
        go ()
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
     | Some '.' ->
       advance ();
       digits ()
     | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
     | Some '{' ->
       advance ();
       skip_ws ();
       if peek () = Some '}' then advance ()
       else begin
         let rec members () =
           skip_ws ();
           string_ ();
           skip_ws ();
           expect ':';
           value ();
           skip_ws ();
           match peek () with
           | Some ',' ->
             advance ();
             members ()
           | Some '}' -> advance ()
           | _ -> fail "expected , or }"
         in
         members ()
       end
     | Some '[' ->
       advance ();
       skip_ws ();
       if peek () = Some ']' then advance ()
       else begin
         let rec elements () =
           value ();
           skip_ws ();
           match peek () with
           | Some ',' ->
             advance ();
             elements ()
           | Some ']' -> advance ()
           | _ -> fail "expected , or ]"
         in
         elements ()
       end
     | Some '"' -> string_ ()
     | Some 't' -> literal "true"
     | Some 'f' -> literal "false"
     | Some 'n' -> literal "null"
     | Some ('-' | '0' .. '9') -> number ()
     | _ -> fail "expected value");
    skip_ws ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* {1 Counters and gauges} *)

let test_counter () =
  let c = Registry.counter "test_obs_counter_total" ~help:"test" in
  Counter.reset c;
  Alcotest.(check int) "initial" 0 (Counter.get c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 40;
  Alcotest.(check int) "incr+add" 42 (Counter.get c);
  (* factory is idempotent: same name gives the same metric *)
  let c' = Registry.counter "test_obs_counter_total" in
  Counter.incr c';
  Alcotest.(check int) "idempotent registration" 43 (Counter.get c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c);
  Alcotest.(check string) "name" "test_obs_counter_total" (Counter.name c);
  (* re-registering under a different metric type is an error *)
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Hopi_obs.Registry: \"test_obs_counter_total\" already registered with another type")
    (fun () -> ignore (Registry.gauge "test_obs_counter_total"))

let test_gauge () =
  let g = Registry.gauge "test_obs_gauge" ~help:"test" in
  Gauge.reset g;
  Gauge.set g 10;
  Alcotest.(check int) "set" 10 (Gauge.get g);
  Gauge.incr g;
  Gauge.add g 5;
  Gauge.decr g;
  Gauge.sub g 3;
  Alcotest.(check int) "arithmetic" 12 (Gauge.get g)

(* {1 Histogram} *)

let test_histogram_basic () =
  let h = Registry.histogram "test_obs_hist_basic" ~help:"test" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 2; 3; 100; -5 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  (* -5 clamps to 0 *)
  Alcotest.(check int) "sum" 106 (Histogram.sum h);
  Alcotest.(check int) "max" 100 (Histogram.max_value h);
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check int) "reset max" 0 (Histogram.max_value h)

let test_histogram_buckets () =
  (* bucket i holds v with 2^(i-1) < v <= 2^i: exact powers stay in their
     own bucket, the successor of a power spills into the next *)
  Alcotest.(check int) "v=0" 0 (Histogram.bucket_of_value 0);
  Alcotest.(check int) "v=1" 0 (Histogram.bucket_of_value 1);
  Alcotest.(check int) "v=2" 1 (Histogram.bucket_of_value 2);
  Alcotest.(check int) "v=3" 2 (Histogram.bucket_of_value 3);
  Alcotest.(check int) "v=4" 2 (Histogram.bucket_of_value 4);
  Alcotest.(check int) "v=5" 3 (Histogram.bucket_of_value 5);
  for i = 1 to 61 do
    Alcotest.(check int)
      (Printf.sprintf "v=2^%d" i)
      i
      (Histogram.bucket_of_value (1 lsl i));
    if i < 61 then
      Alcotest.(check int)
        (Printf.sprintf "v=2^%d+1" i)
        (i + 1)
        (Histogram.bucket_of_value ((1 lsl i) + 1))
  done;
  Alcotest.(check int) "v=max_int clamps to last bucket"
    (Histogram.n_buckets - 1)
    (Histogram.bucket_of_value max_int);
  let h = Registry.histogram "test_obs_hist_buckets" ~help:"test" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 1; 2; 4; 5; 8; 9 ];
  let counts = Histogram.bucket_counts h in
  Alcotest.(check int) "bucket 0 (<=1)" 2 counts.(0);
  Alcotest.(check int) "bucket 1 (<=2)" 1 counts.(1);
  Alcotest.(check int) "bucket 2 (<=4)" 1 counts.(2);
  Alcotest.(check int) "bucket 3 (<=8)" 2 counts.(3);
  Alcotest.(check int) "bucket 4 (<=16)" 1 counts.(4)

let test_histogram_summary () =
  let h = Registry.histogram "test_obs_hist_summary" ~help:"test" in
  Histogram.reset h;
  for _ = 1 to 10 do
    Histogram.observe h 8
  done;
  let s = Histogram.summary h in
  Alcotest.(check int) "n" 10 s.Hopi_util.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 8.0 s.Hopi_util.Stats.mean;
  (* every percentile resolves within the only populated bucket, capped by
     the exact tracked max *)
  Alcotest.(check (float 1e-9)) "p50" 8.0 s.Hopi_util.Stats.p50;
  Alcotest.(check (float 1e-9)) "p99" 8.0 s.Hopi_util.Stats.p99;
  Alcotest.(check (float 1e-9)) "max" 8.0 s.Hopi_util.Stats.max;
  let empty = Registry.histogram "test_obs_hist_empty" ~help:"test" in
  Histogram.reset empty;
  Alcotest.(check int) "empty n" 0 (Histogram.summary empty).Hopi_util.Stats.n

(* {1 Spans} *)

let test_spans () =
  Trace.reset ();
  Trace.with_span "outer" (fun () ->
      Trace.add "outer_items" 2;
      Trace.with_span "inner" (fun () ->
          Trace.add "inner_items" 3;
          Trace.add "inner_items" 4;
          ignore (Sys.opaque_identity (String.make 1024 'x')));
      Trace.with_span "inner2" (fun () -> ()));
  match Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Trace.name;
    Alcotest.(check (list (pair string int)))
      "root counters" [ ("outer_items", 2) ] (Trace.counters outer);
    (match Trace.children outer with
     | [ inner; inner2 ] ->
       Alcotest.(check string) "child order" "inner" inner.Trace.name;
       Alcotest.(check string) "child order 2" "inner2" inner2.Trace.name;
       Alcotest.(check (list (pair string int)))
         "inner counters accumulate" [ ("inner_items", 7) ] (Trace.counters inner);
       Alcotest.(check bool) "durations nest"
         true
         (outer.Trace.duration_ns
          >= inner.Trace.duration_ns + inner2.Trace.duration_ns);
       Alcotest.(check int) "exclusive = total - children"
         (outer.Trace.duration_ns - inner.Trace.duration_ns
          - inner2.Trace.duration_ns)
         (Trace.exclusive_ns outer)
     | cs -> Alcotest.failf "expected 2 children, got %d" (List.length cs))
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

let test_span_exception () =
  Trace.reset ();
  (try Trace.with_span "boom" (fun () -> failwith "inner failure")
   with Failure _ -> ());
  match Trace.roots () with
  | [ sp ] -> Alcotest.(check string) "span completed despite raise" "boom" sp.Trace.name
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

(* {1 Exporters} *)

let test_json_export () =
  Trace.reset ();
  let c = Registry.counter "test_obs_json_total" ~help:"json test" in
  Counter.reset c;
  Counter.add c 3;
  let h = Registry.histogram "test_obs_json_hist" ~help:"json \"quoted\" help" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 2; 300 ];
  Trace.with_span "export.root" (fun () ->
      Trace.add "entries" 5;
      Trace.with_span "export.child" (fun () -> ()));
  let json = Export.to_json () in
  (match validate_json json with
   | () -> ()
   | exception Bad_json msg -> Alcotest.failf "invalid JSON (%s): %s" msg json);
  Alcotest.(check bool) "counter present" true
    (contains json {|"test_obs_json_total":{"type":"counter","value":3}|});
  Alcotest.(check bool) "histogram count present" true
    (contains json {|"count":3,"sum":303|});
  Alcotest.(check bool) "span present" true (contains json {|"name":"export.root"|});
  Alcotest.(check bool) "span counters present" true (contains json {|"entries":5|});
  Alcotest.(check bool) "child span nested" true
    (contains json {|"children":[{"name":"export.child"|})

let test_prometheus_export () =
  let c = Registry.counter "test_obs_prom_total" ~help:"prom test" in
  Counter.reset c;
  Counter.add c 7;
  let h = Registry.histogram "test_obs_prom_hist" ~help:"prom hist" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 2; 2; 5 ];
  let out = Export.prometheus () in
  Alcotest.(check bool) "TYPE counter" true
    (contains out "# TYPE test_obs_prom_total counter");
  Alcotest.(check bool) "counter sample" true (contains out "test_obs_prom_total 7");
  Alcotest.(check bool) "TYPE histogram" true
    (contains out "# TYPE test_obs_prom_hist histogram");
  (* buckets are cumulative: le=1 -> 1, le=2 -> 3, le=8 -> 4 *)
  Alcotest.(check bool) "bucket le=1" true
    (contains out {|test_obs_prom_hist_bucket{le="1"} 1|});
  Alcotest.(check bool) "bucket le=2" true
    (contains out {|test_obs_prom_hist_bucket{le="2"} 3|});
  Alcotest.(check bool) "bucket le=8" true
    (contains out {|test_obs_prom_hist_bucket{le="8"} 4|});
  Alcotest.(check bool) "bucket +Inf" true
    (contains out {|test_obs_prom_hist_bucket{le="+Inf"} 4|});
  Alcotest.(check bool) "sum" true (contains out "test_obs_prom_hist_sum 10");
  Alcotest.(check bool) "count" true (contains out "test_obs_prom_hist_count 4")

(* {1 Multi-domain stress} — recording from several domains concurrently
   must not lose increments or samples. *)

let test_multi_domain () =
  let c = Registry.counter "test_obs_stress_total" ~help:"stress" in
  let h = Registry.histogram "test_obs_stress_hist" ~help:"stress" in
  Counter.reset c;
  Histogram.reset h;
  let per_domain = 100_000 and n_domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Counter.incr c;
      Histogram.observe h (i land 1023)
    done
  in
  let domains = List.init (n_domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  let total = n_domains * per_domain in
  Alcotest.(check int) "no lost counter increments" total (Counter.get c);
  Alcotest.(check int) "no lost histogram samples" total (Histogram.count h);
  Alcotest.(check int) "bucket counts consistent" total
    (Array.fold_left ( + ) 0 (Histogram.bucket_counts h));
  Alcotest.(check int) "max tracked" 1023 (Histogram.max_value h)

(* Same shape for the timing aggregators fed by pool workers: a plain
   [float ref] would lose updates under this load, Timer.Acc and
   Stats.Recorder must not. *)
let test_multi_domain_timing () =
  let acc = Hopi_util.Timer.Acc.create () in
  let rec_ = Hopi_util.Stats.Recorder.create () in
  let per_domain = 50_000 and n_domains = 4 in
  let work () =
    for _ = 1 to per_domain do
      Hopi_util.Timer.Acc.add_ns acc 3L;
      Hopi_util.Stats.Recorder.record rec_ 2.0
    done
  in
  let domains = List.init (n_domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  let total = n_domains * per_domain in
  Alcotest.(check int) "no lost ns" (3 * total) (Hopi_util.Timer.Acc.total_ns acc);
  Alcotest.(check int) "no lost samples" total (Hopi_util.Stats.Recorder.count rec_);
  let s = Hopi_util.Stats.Recorder.summary rec_ in
  Alcotest.(check int) "summary n" total s.Hopi_util.Stats.n;
  Alcotest.(check (float 1e-9)) "summary mean" 2.0 s.Hopi_util.Stats.mean

(* {1 Exporter hardening} *)

let test_add_float_nonfinite () =
  let render f =
    let b = Buffer.create 16 in
    Export.add_float b f;
    Buffer.contents b
  in
  Alcotest.(check string) "nan" "null" (render Float.nan);
  Alcotest.(check string) "+inf" "null" (render Float.infinity);
  Alcotest.(check string) "-inf" "null" (render Float.neg_infinity);
  Alcotest.(check string) "integer-valued" "2.0" (render 2.0);
  Alcotest.(check string) "fractional" "2.5" (render 2.5);
  (* a span with non-finite derived values must still export as JSON *)
  validate_json (Printf.sprintf "[%s, %s]" (render Float.nan) (render 0.25))

(* {1 Trace retention} *)

let test_trace_retention () =
  Trace.reset ();
  Trace.set_max_roots 4;
  Fun.protect ~finally:(fun () ->
      Trace.set_max_roots Trace.default_max_roots;
      Trace.reset ())
  @@ fun () ->
  for i = 1 to 10 do
    Trace.with_span (Printf.sprintf "retention_%d" i) (fun () -> ())
  done;
  let roots = Trace.roots () in
  Alcotest.(check int) "bounded at cap" 4 (List.length roots);
  (* drop-oldest: the survivors are the newest four, oldest-first *)
  Alcotest.(check (list string))
    "newest roots survive"
    [ "retention_7"; "retention_8"; "retention_9"; "retention_10" ]
    (List.map (fun sp -> sp.Trace.name) roots);
  Alcotest.(check int) "drops counted" 6 (Trace.dropped ());
  Trace.reset ();
  Alcotest.(check int) "reset clears roots" 0 (List.length (Trace.roots ()));
  Alcotest.(check int) "reset clears drop count" 0 (Trace.dropped ())

(* {1 Chrome trace exporter} *)

module Chrome = Hopi_obs.Chrome

let test_chrome_trace_schema () =
  Trace.reset ();
  Trace.with_span "chrome.root" (fun () ->
      Trace.add "items" 3;
      Trace.with_span "chrome.child \"quoted\\path\"" (fun () ->
          Trace.add "nested" 1);
      Trace.with_span "chrome.child2" (fun () -> ()));
  Trace.with_span "chrome.second_root" (fun () -> ());
  let json = Chrome.to_json () in
  validate_json json;
  (* trace-event schema essentials: the traceEvents array, complete
     ("X") events carrying ts/dur in microseconds, and thread metadata
     ("M") naming the domain lanes *)
  Alcotest.(check bool) "traceEvents array" true (contains json {|"traceEvents":[|});
  Alcotest.(check bool) "display unit" true (contains json {|"displayTimeUnit":"ms"|});
  Alcotest.(check bool) "complete events" true (contains json {|"ph":"X"|});
  Alcotest.(check bool) "metadata events" true (contains json {|"ph":"M"|});
  Alcotest.(check bool) "process name" true (contains json {|"process_name"|});
  Alcotest.(check bool) "timestamps" true (contains json {|"ts":|});
  Alcotest.(check bool) "durations" true (contains json {|"dur":|});
  Alcotest.(check bool) "category" true (contains json {|"cat":"hopi"|});
  Alcotest.(check bool) "span names survive escaping" true
    (contains json {|"name":"chrome.child \"quoted\\path\""|});
  Alcotest.(check bool) "counters in args" true (contains json {|"items":3|});
  Alcotest.(check bool) "exclusive time in args" true (contains json {|"exclusive_us":|});
  (* the earliest root anchors the timeline at ts 0 *)
  Alcotest.(check bool) "timeline starts at 0" true (contains json {|"ts":0.000|});
  let occurrences needle =
    let count = ref 0 and i = ref 0 in
    let n = String.length json and nn = String.length needle in
    while !i + nn <= n do
      if String.sub json !i nn = needle then incr count;
      incr i
    done;
    !count
  in
  Alcotest.(check int) "n_events counts the span events" (Chrome.n_events ())
    (occurrences {|"ph":"X"|});
  (* one process_name plus one thread_name per distinct domain lane *)
  Alcotest.(check bool) "metadata lanes" true (occurrences {|"ph":"M"|} >= 2);
  Trace.reset ()

(* {1 Request tracing (Reqtrace)} *)

module Reqtrace = Hopi_obs.Reqtrace
module Slo = Hopi_obs.Slo

(* restores global slowlog state so later suites start clean *)
let with_reqtrace_defaults f =
  Fun.protect
    ~finally:(fun () ->
      Reqtrace.disable_slowlog ();
      Reqtrace.set_slowlog_capacity Reqtrace.default_slowlog_capacity)
    f

let finish_trivial tok i =
  ignore
    (Reqtrace.finish tok ~kind:"reach"
       ~query:(fun () -> Printf.sprintf "reach %d %d" i (i + 1))
       ~answer:(fun () -> "true"))

let test_reqtrace_attribution () =
  with_reqtrace_defaults @@ fun () ->
  Reqtrace.set_slow_threshold_ns 0;
  Reqtrace.reset_slowlog ();
  let tok = Reqtrace.start () in
  Reqtrace.Local.note_cache_hit ();
  Reqtrace.Local.note_cache_miss ();
  Reqtrace.Local.note_cache_miss ();
  Reqtrace.Local.note_label_probe ();
  for _ = 1 to 3 do
    Reqtrace.Local.note_pager_read ()
  done;
  let latency =
    Reqtrace.finish tok ~kind:"dist"
      ~query:(fun () -> "dist 1 2")
      ~answer:(fun () -> "unreachable")
  in
  Alcotest.(check bool) "latency measured" true (latency >= 0);
  match Reqtrace.slowlog () with
  | [] -> Alcotest.fail "slowlog empty at threshold 0"
  | s :: _ ->
    Alcotest.(check string) "kind" "dist" s.Reqtrace.kind;
    Alcotest.(check string) "query" "dist 1 2" s.Reqtrace.query;
    Alcotest.(check string) "answer" "unreachable" s.Reqtrace.answer;
    Alcotest.(check int) "cache hits attributed" 1 s.Reqtrace.cache_hits;
    Alcotest.(check int) "cache misses attributed" 2 s.Reqtrace.cache_misses;
    Alcotest.(check int) "label probes attributed" 1 s.Reqtrace.labels_probed;
    Alcotest.(check int) "pager reads attributed" 3 s.Reqtrace.pager_reads;
    Alcotest.(check bool) "per-kind histogram fed" true
      (Histogram.count
         (Registry.histogram "hopi_serve_query_kind_dist_duration_ns")
       >= 1);
    let dump = Format.asprintf "%a" Reqtrace.pp_slowlog () in
    Alcotest.(check bool) "dump shows the query" true (contains dump "dist 1 2");
    Alcotest.(check bool) "dump shows attribution" true
      (contains dump "2 misses \xc2\xb7 1 label set probed \xc2\xb7 3 page reads")

let test_reqtrace_ring () =
  with_reqtrace_defaults @@ fun () ->
  Reqtrace.set_slow_threshold_ns 0;
  Reqtrace.set_slowlog_capacity 4;
  for i = 1 to 10 do
    finish_trivial (Reqtrace.start ()) i
  done;
  let entries = Reqtrace.slowlog () in
  Alcotest.(check int) "ring bounded" 4 (List.length entries);
  Alcotest.(check int) "all pushes counted" 10 (Reqtrace.slowlog_total ());
  (* drop-oldest: newest-first ids strictly descending, newest on top *)
  let ids = List.map (fun s -> s.Reqtrace.id) entries in
  Alcotest.(check bool) "ids descending" true
    (List.for_all2 ( > ) (List.filteri (fun i _ -> i < 3) ids) (List.tl ids));
  let queries = List.map (fun s -> s.Reqtrace.query) entries in
  Alcotest.(check (list string)) "newest four survive"
    [ "reach 10 11"; "reach 9 10"; "reach 8 9"; "reach 7 8" ]
    queries;
  Reqtrace.reset_slowlog ();
  Alcotest.(check int) "reset empties ring" 0 (List.length (Reqtrace.slowlog ()));
  (* above-threshold requests are the only ones recorded *)
  Reqtrace.set_slow_threshold_ns max_int;
  finish_trivial (Reqtrace.start ()) 99;
  Alcotest.(check int) "fast queries skip the ring" 0
    (List.length (Reqtrace.slowlog ()))

let test_slo () =
  let hist = Registry.histogram "test_obs_slo_hist" ~help:"test" in
  Histogram.reset hist;
  let slo = Slo.create ~name:"test_obs" ~hist in
  Alcotest.(check string) "name" "test_obs" (Slo.name slo);
  (* empty histogram meets every target *)
  Slo.set_targets ~p50_ns:1 ~p95_ns:1 ~p99_ns:1 slo;
  Alcotest.(check bool) "empty histogram ok" true (Slo.update slo);
  (* all observations over a tiny target: breach *)
  for _ = 1 to 100 do
    Histogram.observe hist 1_000_000
  done;
  Alcotest.(check bool) "tiny targets breached" false (Slo.update slo);
  Alcotest.(check bool) "met reflects breach" false (Slo.met slo);
  Alcotest.(check bool) "breach counted" true
    (Counter.get (Registry.counter "hopi_slo_test_obs_breaches_total") >= 1);
  Alcotest.(check bool) "observed p95 published" true
    (Gauge.get (Registry.gauge "hopi_slo_test_obs_p95_ns") >= 1_000_000);
  (* generous targets: ok again *)
  Slo.set_targets ~p50_ns:max_int ~p95_ns:max_int ~p99_ns:max_int slo;
  Alcotest.(check bool) "generous targets hold" true (Slo.update slo);
  Alcotest.(check bool) "met reflects ok" true (Slo.met slo);
  Alcotest.(check int) "ok gauge" 1 (Gauge.get (Registry.gauge "hopi_slo_test_obs_ok"))

(* {1 Prometheus exposition-format lint}

   A sequential pass over [Export.prometheus ()] checking the structure a
   scraper relies on: [# HELP] immediately followed by its [# TYPE], legal
   metric-name charset, known metric kinds, and every sample grouped under
   the [# TYPE] that declared it (histograms may add [_bucket]/[_sum]/
   [_count]). *)

let valid_metric_name s =
  let name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  String.length s > 0
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all name_char s

let lint_prometheus out =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go pending_help current = function
    | [] | [ "" ] -> if pending_help = None then Ok () else Error "dangling # HELP"
    | "" :: _ -> Error "blank line inside exposition"
    | line :: rest when line.[0] = '#' -> (
      match String.split_on_char ' ' line with
      | "#" :: "HELP" :: name :: _ ->
        if pending_help <> None then fail "HELP not followed by TYPE before %s" name
        else if not (valid_metric_name name) then fail "bad HELP name %S" name
        else go (Some name) current rest
      | [ "#"; "TYPE"; name; kind ] ->
        if not (valid_metric_name name) then fail "bad TYPE name %S" name
        else if (match pending_help with Some h -> h <> name | None -> false) then
          fail "HELP/TYPE name mismatch at %s" name
        else if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
          fail "unknown kind %S for %s" kind name
        else go None (Some (name, kind)) rest
      | _ -> fail "malformed comment line %S" line)
    | line :: rest -> (
      if pending_help <> None then fail "sample between HELP and TYPE: %S" line
      else
        match String.index_opt line ' ' with
        | None -> fail "sample without value: %S" line
        | Some sp -> (
          let name_part = String.sub line 0 sp in
          let base =
            match String.index_opt name_part '{' with
            | Some i -> String.sub name_part 0 i
            | None -> name_part
          in
          if not (valid_metric_name base) then fail "bad sample name %S" base
          else
            match current with
            | None -> fail "sample before any TYPE: %S" line
            | Some (tname, kind) ->
              let grouped =
                if kind = "histogram" then
                  base = tname ^ "_bucket" || base = tname ^ "_sum"
                  || base = tname ^ "_count"
                else base = tname
              in
              if grouped then go None current rest
              else fail "sample %s not under its TYPE %s" base tname))
  in
  go None None (String.split_on_char '\n' out)

let check_lint out =
  match lint_prometheus out with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "prometheus lint: %s" msg

let test_prometheus_lint () =
  (* adversarial help text: backslashes and newlines must be escaped such
     that the line structure survives *)
  ignore
    (Registry.counter "test_obs_lint_total"
       ~help:"first line\nsecond \\ line with \"quotes\"");
  ignore (Registry.histogram "test_obs_lint_hist" ~help:"h");
  Histogram.observe (Registry.histogram "test_obs_lint_hist") 5;
  let out = Export.prometheus () in
  Alcotest.(check bool) "escaped newline" true
    (contains out {|# HELP test_obs_lint_total first line\nsecond \\ line with "quotes"|});
  check_lint out

(* {1 Property tests: exporters stay well-formed under arbitrary strings} *)

let qc_count = 100

let prop_json_export_wellformed =
  QCheck2.Test.make ~count:qc_count
    ~name:"Export.to_json / Chrome.to_json well-formed for arbitrary span text"
    QCheck2.Gen.(
      pair (string_size (int_bound 30))
        (small_list (pair (string_size (int_bound 12)) small_nat)))
    (fun (span_name, counters) ->
      Trace.reset ();
      Trace.with_span span_name (fun () ->
          List.iter (fun (k, v) -> Trace.add k v) counters;
          Trace.with_span (span_name ^ "\xff\x00child") (fun () -> ()));
      let ok s = try validate_json s; true with Bad_json _ -> false in
      let json_ok = ok (Export.to_json ()) and chrome_ok = ok (Chrome.to_json ()) in
      Trace.reset ();
      json_ok && chrome_ok)

let qc_help_slot = ref 0

let prop_prometheus_lint_wellformed =
  QCheck2.Test.make ~count:50
    ~name:"Export.prometheus lints clean for arbitrary help text"
    QCheck2.Gen.(string_size (int_bound 40))
    (fun help ->
      (* rotate over a small set of names so the suite doesn't flood the
         registry; the first registration's help wins, which is fine —
         every round still lints the full exposition *)
      incr qc_help_slot;
      ignore
        (Registry.counter
           (Printf.sprintf "test_obs_qc_help_%d_total" (!qc_help_slot land 7))
           ~help);
      match lint_prometheus (Export.prometheus ()) with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_reportf "lint: %s" msg)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
        Alcotest.test_case "span nesting" `Quick test_spans;
        Alcotest.test_case "span exception safety" `Quick test_span_exception;
        Alcotest.test_case "json export" `Quick test_json_export;
        Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
        Alcotest.test_case "multi-domain stress" `Quick test_multi_domain;
        Alcotest.test_case "multi-domain timing aggregators" `Quick
          test_multi_domain_timing;
        Alcotest.test_case "add_float non-finite guard" `Quick
          test_add_float_nonfinite;
        Alcotest.test_case "trace root retention is bounded" `Quick
          test_trace_retention;
        Alcotest.test_case "chrome trace schema" `Quick test_chrome_trace_schema;
        Alcotest.test_case "reqtrace per-request attribution" `Quick
          test_reqtrace_attribution;
        Alcotest.test_case "reqtrace slowlog ring drops oldest" `Quick
          test_reqtrace_ring;
        Alcotest.test_case "slo targets and breach accounting" `Quick test_slo;
        Alcotest.test_case "prometheus exposition lint" `Quick test_prometheus_lint;
      ] );
    ( "obs.properties",
      qsuite [ prop_json_export_wellformed; prop_prometheus_lint_wellformed ] );
  ]
