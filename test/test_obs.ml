(* Observability library: metric semantics, bucket boundaries, span trees,
   exporter output, and multi-domain safety. *)

module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Histogram = Hopi_obs.Histogram
module Registry = Hopi_obs.Registry
module Trace = Hopi_obs.Trace
module Export = Hopi_obs.Export

(* {1 A minimal JSON validator} — enough to assert the hand-rolled emitter
   produces well-formed JSON without a JSON library in the toolchain. *)

exception Bad_json of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit =
    String.iter expect lit
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail "bad \\u escape"
           done
         | _ -> fail "bad escape");
        go ()
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
     | Some '.' ->
       advance ();
       digits ()
     | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
     | Some '{' ->
       advance ();
       skip_ws ();
       if peek () = Some '}' then advance ()
       else begin
         let rec members () =
           skip_ws ();
           string_ ();
           skip_ws ();
           expect ':';
           value ();
           skip_ws ();
           match peek () with
           | Some ',' ->
             advance ();
             members ()
           | Some '}' -> advance ()
           | _ -> fail "expected , or }"
         in
         members ()
       end
     | Some '[' ->
       advance ();
       skip_ws ();
       if peek () = Some ']' then advance ()
       else begin
         let rec elements () =
           value ();
           skip_ws ();
           match peek () with
           | Some ',' ->
             advance ();
             elements ()
           | Some ']' -> advance ()
           | _ -> fail "expected , or ]"
         in
         elements ()
       end
     | Some '"' -> string_ ()
     | Some 't' -> literal "true"
     | Some 'f' -> literal "false"
     | Some 'n' -> literal "null"
     | Some ('-' | '0' .. '9') -> number ()
     | _ -> fail "expected value");
    skip_ws ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* {1 Counters and gauges} *)

let test_counter () =
  let c = Registry.counter "test_obs_counter_total" ~help:"test" in
  Counter.reset c;
  Alcotest.(check int) "initial" 0 (Counter.get c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 40;
  Alcotest.(check int) "incr+add" 42 (Counter.get c);
  (* factory is idempotent: same name gives the same metric *)
  let c' = Registry.counter "test_obs_counter_total" in
  Counter.incr c';
  Alcotest.(check int) "idempotent registration" 43 (Counter.get c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c);
  Alcotest.(check string) "name" "test_obs_counter_total" (Counter.name c);
  (* re-registering under a different metric type is an error *)
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Hopi_obs.Registry: \"test_obs_counter_total\" already registered with another type")
    (fun () -> ignore (Registry.gauge "test_obs_counter_total"))

let test_gauge () =
  let g = Registry.gauge "test_obs_gauge" ~help:"test" in
  Gauge.reset g;
  Gauge.set g 10;
  Alcotest.(check int) "set" 10 (Gauge.get g);
  Gauge.incr g;
  Gauge.add g 5;
  Gauge.decr g;
  Gauge.sub g 3;
  Alcotest.(check int) "arithmetic" 12 (Gauge.get g)

(* {1 Histogram} *)

let test_histogram_basic () =
  let h = Registry.histogram "test_obs_hist_basic" ~help:"test" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 2; 3; 100; -5 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  (* -5 clamps to 0 *)
  Alcotest.(check int) "sum" 106 (Histogram.sum h);
  Alcotest.(check int) "max" 100 (Histogram.max_value h);
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check int) "reset max" 0 (Histogram.max_value h)

let test_histogram_buckets () =
  (* bucket i holds v with 2^(i-1) < v <= 2^i: exact powers stay in their
     own bucket, the successor of a power spills into the next *)
  Alcotest.(check int) "v=0" 0 (Histogram.bucket_of_value 0);
  Alcotest.(check int) "v=1" 0 (Histogram.bucket_of_value 1);
  Alcotest.(check int) "v=2" 1 (Histogram.bucket_of_value 2);
  Alcotest.(check int) "v=3" 2 (Histogram.bucket_of_value 3);
  Alcotest.(check int) "v=4" 2 (Histogram.bucket_of_value 4);
  Alcotest.(check int) "v=5" 3 (Histogram.bucket_of_value 5);
  for i = 1 to 61 do
    Alcotest.(check int)
      (Printf.sprintf "v=2^%d" i)
      i
      (Histogram.bucket_of_value (1 lsl i));
    if i < 61 then
      Alcotest.(check int)
        (Printf.sprintf "v=2^%d+1" i)
        (i + 1)
        (Histogram.bucket_of_value ((1 lsl i) + 1))
  done;
  Alcotest.(check int) "v=max_int clamps to last bucket"
    (Histogram.n_buckets - 1)
    (Histogram.bucket_of_value max_int);
  let h = Registry.histogram "test_obs_hist_buckets" ~help:"test" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 1; 2; 4; 5; 8; 9 ];
  let counts = Histogram.bucket_counts h in
  Alcotest.(check int) "bucket 0 (<=1)" 2 counts.(0);
  Alcotest.(check int) "bucket 1 (<=2)" 1 counts.(1);
  Alcotest.(check int) "bucket 2 (<=4)" 1 counts.(2);
  Alcotest.(check int) "bucket 3 (<=8)" 2 counts.(3);
  Alcotest.(check int) "bucket 4 (<=16)" 1 counts.(4)

let test_histogram_summary () =
  let h = Registry.histogram "test_obs_hist_summary" ~help:"test" in
  Histogram.reset h;
  for _ = 1 to 10 do
    Histogram.observe h 8
  done;
  let s = Histogram.summary h in
  Alcotest.(check int) "n" 10 s.Hopi_util.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 8.0 s.Hopi_util.Stats.mean;
  (* every percentile resolves within the only populated bucket, capped by
     the exact tracked max *)
  Alcotest.(check (float 1e-9)) "p50" 8.0 s.Hopi_util.Stats.p50;
  Alcotest.(check (float 1e-9)) "p99" 8.0 s.Hopi_util.Stats.p99;
  Alcotest.(check (float 1e-9)) "max" 8.0 s.Hopi_util.Stats.max;
  let empty = Registry.histogram "test_obs_hist_empty" ~help:"test" in
  Histogram.reset empty;
  Alcotest.(check int) "empty n" 0 (Histogram.summary empty).Hopi_util.Stats.n

(* {1 Spans} *)

let test_spans () =
  Trace.reset ();
  Trace.with_span "outer" (fun () ->
      Trace.add "outer_items" 2;
      Trace.with_span "inner" (fun () ->
          Trace.add "inner_items" 3;
          Trace.add "inner_items" 4;
          ignore (Sys.opaque_identity (String.make 1024 'x')));
      Trace.with_span "inner2" (fun () -> ()));
  match Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Trace.name;
    Alcotest.(check (list (pair string int)))
      "root counters" [ ("outer_items", 2) ] (Trace.counters outer);
    (match Trace.children outer with
     | [ inner; inner2 ] ->
       Alcotest.(check string) "child order" "inner" inner.Trace.name;
       Alcotest.(check string) "child order 2" "inner2" inner2.Trace.name;
       Alcotest.(check (list (pair string int)))
         "inner counters accumulate" [ ("inner_items", 7) ] (Trace.counters inner);
       Alcotest.(check bool) "durations nest"
         true
         (outer.Trace.duration_ns
          >= inner.Trace.duration_ns + inner2.Trace.duration_ns);
       Alcotest.(check int) "exclusive = total - children"
         (outer.Trace.duration_ns - inner.Trace.duration_ns
          - inner2.Trace.duration_ns)
         (Trace.exclusive_ns outer)
     | cs -> Alcotest.failf "expected 2 children, got %d" (List.length cs))
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

let test_span_exception () =
  Trace.reset ();
  (try Trace.with_span "boom" (fun () -> failwith "inner failure")
   with Failure _ -> ());
  match Trace.roots () with
  | [ sp ] -> Alcotest.(check string) "span completed despite raise" "boom" sp.Trace.name
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

(* {1 Exporters} *)

let test_json_export () =
  Trace.reset ();
  let c = Registry.counter "test_obs_json_total" ~help:"json test" in
  Counter.reset c;
  Counter.add c 3;
  let h = Registry.histogram "test_obs_json_hist" ~help:"json \"quoted\" help" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 2; 300 ];
  Trace.with_span "export.root" (fun () ->
      Trace.add "entries" 5;
      Trace.with_span "export.child" (fun () -> ()));
  let json = Export.to_json () in
  (match validate_json json with
   | () -> ()
   | exception Bad_json msg -> Alcotest.failf "invalid JSON (%s): %s" msg json);
  Alcotest.(check bool) "counter present" true
    (contains json {|"test_obs_json_total":{"type":"counter","value":3}|});
  Alcotest.(check bool) "histogram count present" true
    (contains json {|"count":3,"sum":303|});
  Alcotest.(check bool) "span present" true (contains json {|"name":"export.root"|});
  Alcotest.(check bool) "span counters present" true (contains json {|"entries":5|});
  Alcotest.(check bool) "child span nested" true
    (contains json {|"children":[{"name":"export.child"|})

let test_prometheus_export () =
  let c = Registry.counter "test_obs_prom_total" ~help:"prom test" in
  Counter.reset c;
  Counter.add c 7;
  let h = Registry.histogram "test_obs_prom_hist" ~help:"prom hist" in
  Histogram.reset h;
  List.iter (Histogram.observe h) [ 1; 2; 2; 5 ];
  let out = Export.prometheus () in
  Alcotest.(check bool) "TYPE counter" true
    (contains out "# TYPE test_obs_prom_total counter");
  Alcotest.(check bool) "counter sample" true (contains out "test_obs_prom_total 7");
  Alcotest.(check bool) "TYPE histogram" true
    (contains out "# TYPE test_obs_prom_hist histogram");
  (* buckets are cumulative: le=1 -> 1, le=2 -> 3, le=8 -> 4 *)
  Alcotest.(check bool) "bucket le=1" true
    (contains out {|test_obs_prom_hist_bucket{le="1"} 1|});
  Alcotest.(check bool) "bucket le=2" true
    (contains out {|test_obs_prom_hist_bucket{le="2"} 3|});
  Alcotest.(check bool) "bucket le=8" true
    (contains out {|test_obs_prom_hist_bucket{le="8"} 4|});
  Alcotest.(check bool) "bucket +Inf" true
    (contains out {|test_obs_prom_hist_bucket{le="+Inf"} 4|});
  Alcotest.(check bool) "sum" true (contains out "test_obs_prom_hist_sum 10");
  Alcotest.(check bool) "count" true (contains out "test_obs_prom_hist_count 4")

(* {1 Multi-domain stress} — recording from several domains concurrently
   must not lose increments or samples. *)

let test_multi_domain () =
  let c = Registry.counter "test_obs_stress_total" ~help:"stress" in
  let h = Registry.histogram "test_obs_stress_hist" ~help:"stress" in
  Counter.reset c;
  Histogram.reset h;
  let per_domain = 100_000 and n_domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Counter.incr c;
      Histogram.observe h (i land 1023)
    done
  in
  let domains = List.init (n_domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  let total = n_domains * per_domain in
  Alcotest.(check int) "no lost counter increments" total (Counter.get c);
  Alcotest.(check int) "no lost histogram samples" total (Histogram.count h);
  Alcotest.(check int) "bucket counts consistent" total
    (Array.fold_left ( + ) 0 (Histogram.bucket_counts h));
  Alcotest.(check int) "max tracked" 1023 (Histogram.max_value h)

(* Same shape for the timing aggregators fed by pool workers: a plain
   [float ref] would lose updates under this load, Timer.Acc and
   Stats.Recorder must not. *)
let test_multi_domain_timing () =
  let acc = Hopi_util.Timer.Acc.create () in
  let rec_ = Hopi_util.Stats.Recorder.create () in
  let per_domain = 50_000 and n_domains = 4 in
  let work () =
    for _ = 1 to per_domain do
      Hopi_util.Timer.Acc.add_ns acc 3L;
      Hopi_util.Stats.Recorder.record rec_ 2.0
    done
  in
  let domains = List.init (n_domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  let total = n_domains * per_domain in
  Alcotest.(check int) "no lost ns" (3 * total) (Hopi_util.Timer.Acc.total_ns acc);
  Alcotest.(check int) "no lost samples" total (Hopi_util.Stats.Recorder.count rec_);
  let s = Hopi_util.Stats.Recorder.summary rec_ in
  Alcotest.(check int) "summary n" total s.Hopi_util.Stats.n;
  Alcotest.(check (float 1e-9)) "summary mean" 2.0 s.Hopi_util.Stats.mean

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
        Alcotest.test_case "span nesting" `Quick test_spans;
        Alcotest.test_case "span exception safety" `Quick test_span_exception;
        Alcotest.test_case "json export" `Quick test_json_export;
        Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
        Alcotest.test_case "multi-domain stress" `Quick test_multi_domain;
        Alcotest.test_case "multi-domain timing aggregators" `Quick
          test_multi_domain_timing;
      ] );
  ]
