(* Tests for hopi_query: path parsing, ontology, index-backed evaluation vs
   the naive BFS oracle. *)

open Hopi_query
module Collection = Hopi_collection.Collection
module Hopi = Hopi_core.Hopi
module Dblp = Hopi_workload.Dblp_gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* {1 Path_expr} *)

let test_parse_basic () =
  let open Path_expr in
  (match parse "//book//author" with
   | Ok [ { axis = Descendant; test = Tag "book" }; { axis = Descendant; test = Tag "author" } ] -> ()
   | _ -> Alcotest.fail "//book//author");
  (match parse "/bib/book" with
   | Ok [ { axis = Child; test = Tag "bib" }; { axis = Child; test = Tag "book" } ] -> ()
   | _ -> Alcotest.fail "/bib/book");
  (match parse "//~book//*" with
   | Ok [ { axis = Descendant; test = Similar "book" }; { axis = Descendant; test = Any } ] -> ()
   | _ -> Alcotest.fail "//~book//*")

let test_parse_predicates () =
  let open Path_expr in
  (match parse "//article[//cite]//author" with
   | Ok
       [ { axis = Descendant; test = Tag "article";
           predicates =
             [ Path [ { axis = Descendant; test = Tag "cite"; predicates = [] } ] ] };
         { axis = Descendant; test = Tag "author"; predicates = [] } ] -> ()
   | Ok other -> Alcotest.failf "unexpected AST: %s" (to_string other)
   | Error e -> Alcotest.fail e);
  (match parse {|//title["xml"]|} with
   | Ok [ { test = Tag "title"; predicates = [ Contains "xml" ]; _ } ] -> ()
   | _ -> Alcotest.fail "content predicate");
  (* nested and multiple predicates *)
  (match parse "//a[/b[//c]][/d]" with
   | Ok [ { predicates = [ _; _ ]; _ } ] -> ()
   | _ -> Alcotest.fail "//a[/b[//c]][/d]");
  (match parse "//a[" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unterminated bracket accepted");
  (match parse "//a[]" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty predicate accepted")

let test_parse_errors () =
  let bad s =
    match Path_expr.parse s with
    | Ok _ -> Alcotest.failf "expected error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "book";
  bad "//";
  bad "//book/";
  bad "//~*";
  bad "//bo ok"

let test_roundtrip () =
  List.iter
    (fun s -> check_string s s (Path_expr.to_string (Path_expr.parse_exn s)))
    [ "//book//author"; "/bib/book/title"; "//~article//cite"; "//*";
      "//article[//cite]//author"; "//a[/b[//c]][/d]"; {|//article[//title["xml"]]|} ]

(* {1 Ontology} *)

let test_ontology () =
  let ont = Ontology.publications in
  Alcotest.(check (float 1e-9)) "self" 1.0 (Ontology.similarity ont "book" "book");
  Alcotest.(check (float 1e-9)) "sym" (Ontology.similarity ont "book" "monography")
    (Ontology.similarity ont "monography" "book");
  Alcotest.(check (float 1e-9)) "unrelated" 0.0 (Ontology.similarity ont "book" "year");
  let exp = Ontology.expand ont "book" ~threshold:0.6 in
  check_bool "includes self" true (List.mem_assoc "book" exp);
  check_bool "includes monography" true (List.mem_assoc "monography" exp);
  check_bool "threshold excludes editor" true
    (not (List.mem_assoc "editor" (Ontology.expand ont "author" ~threshold:0.6)))

(* {1 Ranking} *)

let test_ranking () =
  Alcotest.(check (float 1e-9)) "d0" 1.0 (Ranking.distance_score 0);
  Alcotest.(check (float 1e-9)) "d3" 0.25 (Ranking.distance_score 3);
  let ranked =
    Ranking.top_k 2
      [ { Ranking.item = "a"; score = 0.1 }; { item = "b"; score = 0.9 };
        { item = "c"; score = 0.5 } ]
  in
  Alcotest.(check (list string)) "top2" [ "b"; "c" ]
    (List.map (fun r -> r.Ranking.item) ranked)

(* {1 Eval} *)

let make_idx () =
  let c = Dblp.generate (Dblp.default ~n_docs:20) in
  Hopi.create c

let paths_of ms = List.map (fun m -> m.Eval.path) ms

let big_opts = { Eval.default_options with max_results = max_int }

let test_eval_matches_naive () =
  let idx = make_idx () in
  List.iter
    (fun q ->
      let expr = Path_expr.parse_exn q in
      let fast = List.sort compare (paths_of (Eval.eval ~options:big_opts idx expr)) in
      let slow = List.sort compare (paths_of (Eval.eval_naive ~options:big_opts idx expr)) in
      check_bool (q ^ " same matches") true (fast = slow);
      check_bool (q ^ " nonempty") true (fast <> []))
    [ "//article//author"; "//article//cite"; "/article/authors/author"; "//citations//title" ]

let test_eval_cross_document () =
  (* //cite//author requires following an inter-document link *)
  let idx = make_idx () in
  let expr = Path_expr.parse_exn "//cite//author" in
  let ms = Eval.eval ~options:big_opts idx expr in
  check_bool "cross-document matches exist" true (ms <> []);
  let c = Hopi.collection idx in
  List.iter
    (fun m ->
      match m.Eval.path with
      | [ cite; author ] ->
        check_bool "different docs or same" true
          (Hopi.connected idx cite author);
        check_string "cite tag" "cite" (Collection.tag_of c cite);
        check_string "author tag" "author" (Collection.tag_of c author)
      | _ -> Alcotest.fail "binary path expected")
    ms

let test_eval_similarity () =
  let idx = make_idx () in
  (* ti is similar to title (0.8): ~title should not error and must include
     plain title matches *)
  let plain = Eval.eval ~options:big_opts idx (Path_expr.parse_exn "//article//title") in
  let sim = Eval.eval ~options:big_opts idx (Path_expr.parse_exn "//article//~title") in
  check_bool "similar superset" true (List.length sim >= List.length plain)

let test_eval_distance_ranking () =
  let idx = make_idx () in
  let options = { big_opts with use_distance = true } in
  let ms = Eval.eval ~options idx (Path_expr.parse_exn "//article//author") in
  check_bool "nonempty" true (ms <> []);
  (* scores decrease along the ranked list and direct children score higher
     than link-distant matches *)
  let scores = List.map (fun m -> m.Eval.score) ms in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  check_bool "ranked" true (decreasing scores);
  check_bool "all scores in (0,1]" true
    (List.for_all (fun s -> s > 0.0 && s <= 1.0) scores)

let test_eval_predicates () =
  let idx = make_idx () in
  let c = Hopi.collection idx in
  (* articles WITH at least one citation vs all articles *)
  let all = Eval.eval ~options:big_opts idx (Path_expr.parse_exn "//article") in
  let citing =
    Eval.eval ~options:big_opts idx (Path_expr.parse_exn "//article[/citations]")
  in
  check_bool "some articles cite" true (citing <> []);
  check_bool "not all articles cite" true (List.length citing < List.length all);
  (* the predicate holds for every returned match *)
  List.iter
    (fun m ->
      match m.Eval.path with
      | [ a ] ->
        let has_citations =
          List.exists
            (fun ch -> Collection.tag_of c ch = "citations")
            (Collection.children c a)
        in
        check_bool "predicate satisfied" true has_citations
      | _ -> Alcotest.fail "unary path")
    citing;
  (* agreement with the naive evaluator, including a descendant predicate
     that crosses document boundaries *)
  List.iter
    (fun q ->
      let expr = Path_expr.parse_exn q in
      let fast = List.sort compare (paths_of (Eval.eval ~options:big_opts idx expr)) in
      let slow =
        List.sort compare (paths_of (Eval.eval_naive ~options:big_opts idx expr))
      in
      check_bool (q ^ " fast = naive") true (fast = slow))
    [ "//article[/citations]//author"; "//article[//cite[//author]]/title";
      "//cite[//year]//author" ]

let test_eval_content_predicate () =
  let idx = make_idx () in
  let c = Hopi.collection idx in
  (* every generated title contains words from a fixed vocabulary; "index"
     is one of them *)
  let with_term =
    Eval.eval ~options:big_opts idx (Path_expr.parse_exn {|//article[//title["index"]]|})
  in
  let all = Eval.eval ~options:big_opts idx (Path_expr.parse_exn "//article") in
  check_bool "some titles mention index" true (with_term <> []);
  check_bool "not all do" true (List.length with_term < List.length all);
  (* verify against the raw text: //title follows links, so the matching
     title may live in a cited document — check all reachable titles *)
  List.iter
    (fun m ->
      match m.Eval.path with
      | [ a ] ->
        let has =
          List.exists
            (fun t ->
              List.exists
                (fun e ->
                  List.mem "index"
                    (Hopi_collection.Text_index.tokenize (Collection.text_of c e)))
                (Collection.subtree_elements c t))
            (Hopi_core.Hopi.descendants_with_tag idx a "title")
        in
        check_bool "term really present" true has
      | _ -> Alcotest.fail "unary")
    with_term;
  (* unknown terms match nothing *)
  check_int "no zebra" 0
    (List.length
       (Eval.eval ~options:big_opts idx (Path_expr.parse_exn {|//article["zebra42"]|})))

let test_eval_max_distance () =
  let idx = make_idx () in
  let q = Path_expr.parse_exn "//article//author" in
  (* bound 2 keeps only the article's own authors (root -> authors -> author);
     the unbounded query also reaches authors of cited papers *)
  let near = Eval.eval ~options:{ big_opts with max_distance = Some 2 } idx q in
  let all = Eval.eval ~options:big_opts idx q in
  check_bool "nonempty" true (near <> []);
  check_bool "bounded is a strict subset" true (List.length near < List.length all);
  (* agreement with the naive evaluator under the same bound *)
  let naive =
    Eval.eval_naive ~options:{ big_opts with max_distance = Some 2 } idx q
  in
  check_bool "same as naive" true
    (List.sort compare (paths_of near) = List.sort compare (paths_of naive));
  (* every kept match really is within 2 edges *)
  let d = Hopi_core.Hopi.distance_index idx in
  List.iter
    (fun m ->
      match m.Eval.path with
      | [ a; b ] ->
        check_bool "within bound" true
          (match Hopi_twohop.Dist_cover.dist d a b with
           | Some x -> x <= 2
           | None -> false)
      | _ -> Alcotest.fail "binary path")
    near

let test_eval_max_results () =
  let idx = make_idx () in
  let options = { Eval.default_options with max_results = 3 } in
  let ms = Eval.eval ~options idx (Path_expr.parse_exn "//article//*") in
  check_int "capped" 3 (List.length ms)

let suite =
  [
    ( "query.path_expr",
      [
        Alcotest.test_case "parse" `Quick test_parse_basic;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "predicates" `Quick test_parse_predicates;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      ] );
    ("query.ontology", [ Alcotest.test_case "similarity" `Quick test_ontology ]);
    ("query.ranking", [ Alcotest.test_case "scores" `Quick test_ranking ]);
    ( "query.eval",
      [
        Alcotest.test_case "matches naive" `Quick test_eval_matches_naive;
        Alcotest.test_case "cross document" `Quick test_eval_cross_document;
        Alcotest.test_case "similarity" `Quick test_eval_similarity;
        Alcotest.test_case "distance ranking" `Quick test_eval_distance_ranking;
        Alcotest.test_case "predicates" `Quick test_eval_predicates;
        Alcotest.test_case "content predicate" `Quick test_eval_content_predicate;
        Alcotest.test_case "max distance" `Quick test_eval_max_distance;
        Alcotest.test_case "max results" `Quick test_eval_max_results;
      ] );
  ]
