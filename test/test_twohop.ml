(* Tests for hopi_twohop: Cover, Uncovered, Densest, Builder, Dist_builder,
   Verify. *)

open Hopi_twohop
open Hopi_graph
module Ihs = Hopi_util.Int_hashset
module Int_set = Hopi_util.Int_set
module Splitmix = Hopi_util.Splitmix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

let of_edges edges =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

let diamond () = of_edges [ (0, 1); (1, 3); (0, 2); (2, 3); (3, 4); (4, 3) ]

(* {1 Cover} *)

let test_cover_manual () =
  (* cover of path 1 -> 2 -> 3 with center 2 *)
  let c = Cover.create () in
  List.iter (Cover.add_node c) [ 1; 2; 3 ];
  Cover.add_out c ~node:1 ~center:2;
  Cover.add_in c ~node:3 ~center:2;
  check_bool "1->2 (implicit self in Lin 2)" true (Cover.connected c 1 2);
  check_bool "2->3" true (Cover.connected c 2 3);
  check_bool "1->3 via 2" true (Cover.connected c 1 3);
  check_bool "reflexive" true (Cover.connected c 2 2);
  check_bool "3->1 no" false (Cover.connected c 3 1);
  check_int "size" 2 (Cover.size c)

let test_cover_self_entries_skipped () =
  let c = Cover.create () in
  Cover.add_node c 7;
  Cover.add_in c ~node:7 ~center:7;
  Cover.add_out c ~node:7 ~center:7;
  check_int "implicit self not stored" 0 (Cover.size c);
  check_bool "still reflexive" true (Cover.connected c 7 7)

let test_cover_ancestors_descendants () =
  let c = Cover.create () in
  List.iter (Cover.add_node c) [ 1; 2; 3 ];
  Cover.add_out c ~node:1 ~center:2;
  Cover.add_in c ~node:3 ~center:2;
  let desc = Cover.descendants c 1 in
  check_list "desc 1" [ 1; 2; 3 ] (List.sort compare (Ihs.to_list desc));
  let anc = Cover.ancestors c 3 in
  check_list "anc 3" [ 1; 2; 3 ] (List.sort compare (Ihs.to_list anc));
  check_list "anc 1" [ 1 ] (Ihs.to_list (Cover.ancestors c 1))

let test_cover_hop_center () =
  let c = Cover.create () in
  List.iter (Cover.add_node c) [ 1; 2; 3 ];
  Cover.add_out c ~node:1 ~center:2;
  Cover.add_in c ~node:3 ~center:2;
  Alcotest.(check (option int)) "witness" (Some 2) (Cover.hop_center c 1 3);
  Alcotest.(check (option int)) "none" None (Cover.hop_center c 3 1);
  Alcotest.(check (option int)) "self" (Some 1) (Cover.hop_center c 1 1)

let test_cover_set_labels () =
  let c = Cover.create () in
  List.iter (Cover.add_node c) [ 1; 2; 3; 4 ];
  Cover.add_out c ~node:1 ~center:2;
  Cover.add_out c ~node:1 ~center:3;
  check_int "size 2" 2 (Cover.size c);
  Cover.set_lout c 1 (Int_set.of_list [ 3; 4 ]);
  check_int "size stays 2" 2 (Cover.size c);
  check_list "lout" [ 3; 4 ] (Int_set.to_list (Cover.lout c 1));
  (* backward index consistency *)
  check_bool "2 inv dropped" false (Ihs.mem (Cover.out_labelled_with c 2) 1);
  check_bool "4 inv added" true (Ihs.mem (Cover.out_labelled_with c 4) 1)

let test_cover_remove_node () =
  let c = Cover.create () in
  List.iter (Cover.add_node c) [ 1; 2; 3 ];
  Cover.add_out c ~node:1 ~center:2;
  Cover.add_in c ~node:3 ~center:2;
  Cover.add_out c ~node:1 ~center:3;
  Cover.remove_node c 2;
  check_bool "node gone" false (Cover.mem_node c 2);
  check_list "lout 1 keeps 3" [ 3 ] (Int_set.to_list (Cover.lout c 1));
  check_int "size" 1 (Cover.size c)

let test_cover_union_into () =
  let a = Cover.create () and b = Cover.create () in
  List.iter (Cover.add_node a) [ 1; 2 ];
  Cover.add_out a ~node:1 ~center:2;
  List.iter (Cover.add_node b) [ 2; 3 ];
  Cover.add_in b ~node:3 ~center:2;
  Cover.union_into ~dst:a b;
  check_bool "1->3" true (Cover.connected a 1 3);
  check_int "size" 2 (Cover.size a)

(* {1 Uncovered} *)

let test_uncovered_basics () =
  let clo = Closure.compute (diamond ()) in
  let u = Uncovered.of_closure clo in
  (* diamond closure has 15 connections for nodes 0-4 incl reflexive(5);
     non-reflexive = 15 - 5 = 10 *)
  check_int "count" 10 (Uncovered.count u);
  check_bool "mem" true (Uncovered.mem u 0 4);
  check_bool "no reflexive" false (Uncovered.mem u 0 0);
  Uncovered.remove u 0 4;
  check_bool "removed" false (Uncovered.mem u 0 4);
  check_int "count after" 9 (Uncovered.count u);
  Uncovered.remove u 0 4;
  check_int "idempotent" 9 (Uncovered.count u)

(* {1 Densest} *)

let test_densest_complete_bipartite () =
  (* K_{2,3}: density = 6/5 *)
  let edges_of u = if u = 1 || u = 2 then [ 10; 11; 12 ] else [] in
  match Densest.run ~ins:[| 1; 2 |] ~edges_of with
  | None -> Alcotest.fail "expected a subgraph"
  | Some r ->
    Alcotest.(check (float 1e-9)) "density" (6.0 /. 5.0) r.Densest.density;
    check_int "edges" 6 r.Densest.n_edges;
    check_list "c_in" [ 1; 2 ] (List.sort compare r.Densest.c_in);
    check_list "c_out" [ 10; 11; 12 ] (List.sort compare r.Densest.c_out)

let test_densest_picks_dense_part () =
  (* node 1..3 fully connected to 10..12 (9 edges), node 4 with single edge
     to 20: densest subgraph should be the K_{3,3} part *)
  let edges_of = function
    | 1 | 2 | 3 -> [ 10; 11; 12 ]
    | 4 -> [ 20 ]
    | _ -> []
  in
  match Densest.run ~ins:[| 1; 2; 3; 4 |] ~edges_of with
  | None -> Alcotest.fail "expected a subgraph"
  | Some r ->
    check_list "c_in" [ 1; 2; 3 ] (List.sort compare r.Densest.c_in);
    check_list "c_out" [ 10; 11; 12 ] (List.sort compare r.Densest.c_out);
    Alcotest.(check (float 1e-9)) "density" 1.5 r.Densest.density

let test_densest_no_edges () =
  check_bool "none" true (Densest.run ~ins:[| 1; 2 |] ~edges_of:(fun _ -> []) = None)

let test_densest_shared_node_both_sides () =
  (* the same id may appear as in-node and out-node (cycles) *)
  let edges_of = function 1 -> [ 1; 2 ] | 2 -> [ 1 ] | _ -> [] in
  match Densest.run ~ins:[| 1; 2 |] ~edges_of with
  | None -> Alcotest.fail "expected a subgraph"
  | Some r -> check_int "3 edges" 3 r.Densest.n_edges

(* {1 Builder} *)

let random_graph seed n p =
  let rng = Splitmix.create seed in
  let g = Digraph.create () in
  for v = 0 to n - 1 do
    Digraph.add_node g v
  done;
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Splitmix.float rng 1.0 < p then Digraph.add_edge g u v
    done
  done;
  g

let build_and_verify g =
  let clo = Closure.compute g in
  let cover, _ = Builder.build clo in
  Verify.cover_vs_graph cover g

let test_builder_diamond () =
  check_int "no mismatches" 0 (List.length (build_and_verify (diamond ())))

let test_builder_empty_graph () =
  let g = Digraph.create () in
  Digraph.add_node g 1;
  Digraph.add_node g 2;
  check_int "isolated nodes" 0 (List.length (build_and_verify g))

let test_builder_chain () =
  let g = of_edges (List.init 20 (fun i -> (i, i + 1))) in
  check_int "chain" 0 (List.length (build_and_verify g))

let test_builder_cycle () =
  let g = of_edges (List.init 10 (fun i -> (i, (i + 1) mod 10))) in
  check_int "cycle" 0 (List.length (build_and_verify g))

let test_builder_dense_bipartite () =
  let edges = List.concat_map (fun u -> List.map (fun v -> (u, 100 + v)) (List.init 8 Fun.id)) (List.init 8 Fun.id) in
  let g = of_edges edges in
  check_int "bipartite" 0 (List.length (build_and_verify g))

let test_builder_hub_compression () =
  (* 8 sources -> hub -> 8 sinks: 80 transitive connections, but the greedy
     builder should find the hub center and need ~16 label entries *)
  let edges =
    List.init 8 (fun i -> (i, 100)) @ List.init 8 (fun j -> (100, 200 + j))
  in
  let g = of_edges edges in
  check_int "exact" 0 (List.length (build_and_verify g));
  let clo = Closure.compute g in
  check_int "closure size" 97 (Closure.n_connections clo);
  let cover, _ = Builder.build clo in
  check_bool "compresses" true (Cover.size cover <= 20)

let test_builder_self_loop () =
  let g = of_edges [ (1, 1); (1, 2) ] in
  check_int "self loop" 0 (List.length (build_and_verify g))

let test_builder_preselect_correct () =
  let g = diamond () in
  let clo = Closure.compute g in
  let cover, _ = Builder.build ~preselect_centers:[ 3; 0 ] clo in
  check_int "still exact" 0 (List.length (Verify.cover_vs_graph cover g))

let test_builder_preselect_unknown_center () =
  let g = diamond () in
  let clo = Closure.compute g in
  let cover, _ = Builder.build ~preselect_centers:[ 999 ] clo in
  check_int "ignored" 0 (List.length (Verify.cover_vs_graph cover g))

let test_builder_eager_matches_lazy () =
  let g = random_graph 77 14 0.2 in
  let clo = Closure.compute g in
  let lazy_cover, lazy_stats = Builder.build clo in
  let eager_cover, eager_stats = Builder.build_eager clo in
  check_int "both exact (lazy)" 0 (List.length (Verify.cover_vs_graph lazy_cover g));
  check_int "both exact (eager)" 0 (List.length (Verify.cover_vs_graph eager_cover g));
  check_bool "lazy recomputes less" true
    (lazy_stats.Builder.recomputations < eager_stats.Builder.recomputations)

let test_builder_only_pairs () =
  let g = of_edges [ (0, 1); (1, 2); (2, 3); (10, 11) ] in
  let clo = Closure.compute g in
  (* only require 0 ⇝ 3: the cover must answer it, and must stay sound
     (never claim 10 ⇝ 0 etc.) *)
  let cover, _ = Builder.build ~only_pairs:[ (0, 3); (10, 0) (* not connected *) ] clo in
  check_bool "required pair" true (Cover.connected cover 0 3);
  check_bool "sound" false (Cover.connected cover 10 0);
  check_bool "sound2" false (Cover.connected cover 3 0);
  (* pairs not required may be unanswered, but any true answer is correct *)
  let g_check u v got = if got then Alcotest.(check bool) "no false positive" true
      (Hopi_graph.Traversal.is_reachable g u v) in
  Digraph.iter_nodes g (fun u ->
      Digraph.iter_nodes g (fun v -> g_check u v (Cover.connected cover u v)))

let prop_builder_exact =
  QCheck2.Test.make ~name:"Builder covers exactly the closure" ~count:50
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 16))
    (fun (seed, n) ->
      let g = random_graph seed n 0.18 in
      build_and_verify g = [])

let prop_builder_not_larger_than_closure =
  QCheck2.Test.make ~name:"cover size <= closure connections" ~count:30
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 14))
    (fun (seed, n) ->
      let g = random_graph seed n 0.25 in
      let clo = Closure.compute g in
      let cover, _ = Builder.build clo in
      (* each closure connection adds at most 2 label entries; greedy covers
         should do no worse than the trivial labelling *)
      Cover.size cover <= 2 * Closure.n_connections clo)

(* {1 Dist_builder} *)

let test_dist_builder_diamond () =
  let g = diamond () in
  let cover, _ = Dist_builder.build g in
  check_int "distances exact" 0 (List.length (Verify.dist_cover_vs_graph cover g))

let test_dist_builder_chain () =
  let g = of_edges (List.init 12 (fun i -> (i, i + 1))) in
  let cover, _ = Dist_builder.build g in
  check_int "chain distances" 0 (List.length (Verify.dist_cover_vs_graph cover g));
  Alcotest.(check (option int)) "end to end" (Some 12) (Dist_cover.dist cover 0 12)

let test_dist_builder_two_paths () =
  (* short path 0->1->5 and long path 0->2->3->4->5: distance must be 2 *)
  let g = of_edges [ (0, 1); (1, 5); (0, 2); (2, 3); (3, 4); (4, 5) ] in
  let cover, _ = Dist_builder.build g in
  Alcotest.(check (option int)) "min path" (Some 2) (Dist_cover.dist cover 0 5);
  check_int "all exact" 0 (List.length (Verify.dist_cover_vs_graph cover g))

let test_dist_builder_sampling_mode () =
  (* exact_threshold 0 forces the sampling estimator everywhere *)
  let g = random_graph 7 14 0.2 in
  let cover, stats = Dist_builder.build ~exact_threshold:0 g in
  check_int "exact with sampling" 0 (List.length (Verify.dist_cover_vs_graph cover g));
  check_bool "sampling used" true (stats.Dist_builder.sampled_nodes > 0)

let prop_dist_builder_exact =
  QCheck2.Test.make ~name:"Dist_builder returns exact distances" ~count:30
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 12))
    (fun (seed, n) ->
      let g = random_graph seed n 0.2 in
      let cover, _ = Dist_builder.build g in
      Verify.dist_cover_vs_graph cover g = [])

(* {1 Label_codec}

   Differentials for the delta-encoded label layout the serving layer
   caches and probes: encoding must round-trip exactly, and every
   streamwise probe must agree with a naive reference over the decoded
   rows — including multi-distance runs of one center, where the probes
   skip within the run. *)

(* rows sorted by (center, dist), duplicates allowed; centers span
   several varint byte widths *)
let gen_rows =
  let open QCheck2.Gen in
  let center = oneof [ int_bound 30; int_bound 5_000; int_bound 3_000_000 ] in
  let dist = int_bound 300 in
  list_size (int_bound 40) (pair center dist) >|= fun l ->
  Array.of_list (List.sort compare l)

let flatten_rows rows =
  Array.concat (Array.to_list (Array.map (fun (c, d) -> [| c; d |]) rows))

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec: encode_pairs round-trips exactly" ~count:200
    gen_rows (fun rows ->
      let enc = Label_codec.encode_pairs rows in
      if Label_codec.to_array enc <> flatten_rows rows then
        QCheck2.Test.fail_report "decoded rows differ from input";
      if Label_codec.n_rows enc <> Array.length rows then
        QCheck2.Test.fail_report "row count differs";
      (* canonicity: re-encoding the decoded rows is byte-identical *)
      let rows' =
        Array.init (Array.length rows) (fun i ->
            let a = Label_codec.to_array enc in
            (a.(2 * i), a.((2 * i) + 1)))
      in
      if Label_codec.encode_pairs rows' <> enc then
        QCheck2.Test.fail_report "re-encoding is not byte-identical";
      (* iteration order is the sort order *)
      let seen = ref [] in
      Label_codec.iter enc (fun ~center ~dist -> seen := (center, dist) :: !seen);
      Array.of_list (List.rev !seen) = rows)

(* naive reference probes over a row array *)
let ref_find_min_dist rows center =
  Array.fold_left
    (fun acc (c, d) -> if c = center && (acc < 0 || d < acc) then d else acc)
    (-1) rows

let ref_centers rows =
  List.sort_uniq compare (Array.to_list (Array.map fst rows))

let ref_merge_min a b =
  List.fold_left
    (fun acc c ->
      let da = ref_find_min_dist a c and db = ref_find_min_dist b c in
      if da >= 0 && db >= 0 && (acc < 0 || da + db < acc) then da + db else acc)
    (-1)
    (ref_centers a)

let prop_codec_probes =
  QCheck2.Test.make ~name:"codec: streamwise probes = naive reference"
    ~count:200
    QCheck2.Gen.(pair gen_rows gen_rows)
    (fun (ra, rb) ->
      let a = Label_codec.encode_pairs ra and b = Label_codec.encode_pairs rb in
      let centers = ref_centers ra @ ref_centers rb @ [ 0; 1; 31; 5_001 ] in
      List.iter
        (fun c ->
          if Label_codec.find_min_dist a c <> ref_find_min_dist ra c then
            QCheck2.Test.fail_reportf "find_min_dist diverges on center %d" c;
          if Label_codec.mem a c <> (ref_find_min_dist ra c >= 0) then
            QCheck2.Test.fail_reportf "mem diverges on center %d" c)
        centers;
      let seen = ref [] in
      Label_codec.iter_centers a (fun c -> seen := c :: !seen);
      if List.rev !seen <> ref_centers ra then
        QCheck2.Test.fail_report "iter_centers diverges from sorted uniq";
      let inter_ref =
        List.exists (fun c -> ref_find_min_dist rb c >= 0) (ref_centers ra)
      in
      if Label_codec.intersects a b <> inter_ref then
        QCheck2.Test.fail_report "intersects diverges";
      if Label_codec.merge_min a b <> ref_merge_min ra rb then
        QCheck2.Test.fail_report "merge_min diverges";
      true)

(* the layout the snapshot caches: a built cover's label sets, flattened
   through [Cover.encoded_lin]/[encoded_lout], decode back to exactly the
   uncompressed label sets *)
let prop_codec_cover_roundtrip =
  QCheck2.Test.make
    ~name:"codec: encoded cover labels decode to the uncompressed cover"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 14))
    (fun (seed, n) ->
      let g = random_graph seed n 0.22 in
      let cover, _ = Builder.build (Closure.compute g) in
      Cover.iter_nodes cover (fun v ->
          let expect set =
            flatten_rows
              (Array.of_list
                 (List.map (fun c -> (c, 0)) (Int_set.to_list set)))
          in
          let got_in = Label_codec.to_array (Cover.encoded_lin cover v) in
          if got_in <> expect (Cover.lin cover v) then
            QCheck2.Test.fail_reportf "Lin(%d) decodes wrong" v;
          let got_out = Label_codec.to_array (Cover.encoded_lout cover v) in
          if got_out <> expect (Cover.lout cover v) then
            QCheck2.Test.fail_reportf "Lout(%d) decodes wrong" v);
      true)

let test_codec_enc_rejects_unsorted () =
  let enc_of rows = ignore (Label_codec.encode_pairs rows) in
  Alcotest.check_raises "unsorted centers"
    (Invalid_argument "Label_codec.Enc.row: rows not sorted by (center, dist)")
    (fun () -> enc_of [| (5, 0); (3, 0) |]);
  Alcotest.check_raises "unsorted dists within a run"
    (Invalid_argument "Label_codec.Enc.row: rows not sorted by (center, dist)")
    (fun () -> enc_of [| (5, 2); (5, 1) |]);
  Alcotest.check_raises "negative field"
    (Invalid_argument "Label_codec.Enc.row: negative field") (fun () ->
      enc_of [| (-1, 0) |])

let test_codec_empty () =
  check_int "no rows" 0 (Label_codec.n_rows Label_codec.empty);
  check_int "no bytes" 0 (Label_codec.size_bytes Label_codec.empty);
  check_bool "mem on empty" false (Label_codec.mem Label_codec.empty 0);
  check_int "find on empty" (-1) (Label_codec.find_min_dist Label_codec.empty 0);
  check_bool "intersects empty" false
    (Label_codec.intersects Label_codec.empty Label_codec.empty);
  check_int "merge empty" (-1)
    (Label_codec.merge_min Label_codec.empty Label_codec.empty)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "twohop.cover",
      [
        Alcotest.test_case "manual cover" `Quick test_cover_manual;
        Alcotest.test_case "self entries" `Quick test_cover_self_entries_skipped;
        Alcotest.test_case "ancestors/descendants" `Quick test_cover_ancestors_descendants;
        Alcotest.test_case "hop center" `Quick test_cover_hop_center;
        Alcotest.test_case "set labels" `Quick test_cover_set_labels;
        Alcotest.test_case "remove node" `Quick test_cover_remove_node;
        Alcotest.test_case "union_into" `Quick test_cover_union_into;
      ] );
    ("twohop.uncovered", [ Alcotest.test_case "basics" `Quick test_uncovered_basics ]);
    ( "twohop.densest",
      [
        Alcotest.test_case "complete bipartite" `Quick test_densest_complete_bipartite;
        Alcotest.test_case "picks dense part" `Quick test_densest_picks_dense_part;
        Alcotest.test_case "no edges" `Quick test_densest_no_edges;
        Alcotest.test_case "node on both sides" `Quick test_densest_shared_node_both_sides;
      ] );
    ( "twohop.builder",
      [
        Alcotest.test_case "diamond" `Quick test_builder_diamond;
        Alcotest.test_case "isolated" `Quick test_builder_empty_graph;
        Alcotest.test_case "chain" `Quick test_builder_chain;
        Alcotest.test_case "cycle" `Quick test_builder_cycle;
        Alcotest.test_case "dense bipartite" `Quick test_builder_dense_bipartite;
        Alcotest.test_case "hub compression" `Quick test_builder_hub_compression;
        Alcotest.test_case "self loop" `Quick test_builder_self_loop;
        Alcotest.test_case "preselect" `Quick test_builder_preselect_correct;
        Alcotest.test_case "preselect unknown" `Quick test_builder_preselect_unknown_center;
        Alcotest.test_case "eager = lazy" `Quick test_builder_eager_matches_lazy;
        Alcotest.test_case "only_pairs" `Quick test_builder_only_pairs;
      ]
      @ qsuite [ prop_builder_exact; prop_builder_not_larger_than_closure ] );
    ( "twohop.dist",
      [
        Alcotest.test_case "diamond" `Quick test_dist_builder_diamond;
        Alcotest.test_case "chain" `Quick test_dist_builder_chain;
        Alcotest.test_case "two paths" `Quick test_dist_builder_two_paths;
        Alcotest.test_case "sampling mode" `Quick test_dist_builder_sampling_mode;
      ]
      @ qsuite [ prop_dist_builder_exact ] );
    ( "twohop.codec",
      [
        Alcotest.test_case "empty label set" `Quick test_codec_empty;
        Alcotest.test_case "encoder rejects unsorted rows" `Quick
          test_codec_enc_rejects_unsorted;
      ]
      @ qsuite
          [ prop_codec_roundtrip; prop_codec_probes; prop_codec_cover_roundtrip ]
    );
  ]
