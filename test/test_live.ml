(* Zero-downtime serving tests: the generational store swap of
   Hopi_serve.Generation.  Lifecycle (apply/flip/rollback, refcounted
   retention, file cleanup), flip-time label-cache invalidation, the op
   protocol, a qcheck differential proving live churn equals an offline
   replay + rebuild, and — the load-bearing one — a churn-under-load soak:
   reader domains hammer snapshots while a writer flips generations, and
   every answer must match the BFS oracle of the generation the snapshot
   was acquired against.

   HOPI_SOAK_ITERS (flips, default 12) and HOPI_SOAK_READERS (reader
   domains, default 3) scale the soak; CI runs it much larger. *)

module G = Hopi_serve.Generation
module Snapshot = Hopi_serve.Snapshot
module Cache = Hopi_serve.Label_cache
module Manifest = Hopi_storage.Manifest
module Collection = Hopi_collection.Collection
module Dblp = Hopi_workload.Dblp_gen
module Splitmix = Hopi_util.Splitmix
module Ihs = Hopi_util.Int_hashset
module Counter = Hopi_obs.Counter
module Hopi = Hopi_core.Hopi
module Gen = QCheck2.Gen

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let soak_iters =
  match Sys.getenv_opt "HOPI_SOAK_ITERS" with
  | Some s -> (try max 10 (int_of_string s) with _ -> 12)
  | None -> 12

let soak_readers =
  match Sys.getenv_opt "HOPI_SOAK_READERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 3)
  | None -> 3

(* A fresh family base in the temp dir.  [Generation.create] adopts an
   existing file at [base] as generation 0, so the empty file
   [Filename.temp_file] makes must go before the family opens. *)
let with_gen_base f =
  let base = Filename.temp_file "hopi_test_live" ".db" in
  Sys.remove base;
  Fun.protect
    ~finally:(fun () ->
      let rm p = if Sys.file_exists p then Sys.remove p in
      let m = Manifest.path ~base in
      rm m;
      rm (m ^ "-journal");
      for k = 0 to 64 do
        let p = Manifest.gen_path ~base k in
        rm p;
        rm (p ^ "-journal")
      done)
    (fun () -> f base)

let small_collection ?(n = 6) seed =
  Dblp.generate { (Dblp.default ~n_docs:n) with seed }

let elements c =
  let acc = ref [] in
  Collection.iter_elements c (fun e -> acc := e :: !acc);
  Array.of_list (List.sort compare !acc)

(* an ordered pair of doc roots the index does not connect (yet) *)
let unconnected_pair idx =
  let c = Hopi.collection idx in
  let roots = List.map (Collection.doc_root_element c) (Collection.doc_ids c) in
  let pairs =
    List.concat_map (fun u -> List.map (fun v -> (u, v)) roots) roots
  in
  match
    List.find_opt (fun (u, v) -> u <> v && not (Hopi.connected idx u v)) pairs
  with
  | Some p -> p
  | None -> Alcotest.fail "no unconnected doc-root pair left"

let apply_ok gen op =
  match G.apply gen op with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s" (Format.asprintf "%a" G.pp_op op) e

(* {1 Lifecycle} *)

let test_lifecycle () =
  with_gen_base @@ fun base ->
  let idx = Hopi.create (small_collection 31) in
  let gen = G.create ~fsync:false ~cache_mb:4 ~base idx in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  checki "live starts at 0" 0 (G.live gen);
  checki "tip starts at 0" 0 (G.tip gen);
  checki "one retained generation" 1 (G.retained gen);
  checki "no pending ops" 0 (G.pending_ops gen);
  let u, v = unconnected_pair idx in
  apply_ok gen (G.Add_link (u, v));
  checki "one pending op" 1 (G.pending_ops gen);
  (* churn lives in the writer index; serving is pinned to generation 0 *)
  G.with_snapshot gen (fun snap ->
      checki "epoch 0 before flip" 0 (Snapshot.epoch snap);
      checkb "pre-flip snapshot blind to churn" false (Snapshot.connected snap u v));
  let st = G.flip gen in
  checki "flip publishes generation 1" 1 st.G.generation;
  checkb "per-node invalidation, not a floor raise" false st.G.full_invalidation;
  checkb "churn dirtied nodes" true (st.G.dirtied > 0);
  checki "live is 1" 1 (G.live gen);
  checki "previous is 0" 0 (G.previous gen);
  checki "tip is 1" 1 (G.tip gen);
  checki "pending drained by the flip" 0 (G.pending_ops gen);
  G.with_snapshot gen (fun snap ->
      checki "epoch 1 after flip" 1 (Snapshot.epoch snap);
      checkb "post-flip snapshot serves the link" true (Snapshot.connected snap u v));
  (* rollback swaps serving only; the writer index keeps its state *)
  checki "rollback serves generation 0" 0 (G.rollback gen);
  G.with_snapshot gen (fun snap ->
      checki "rolled-back epoch" 0 (Snapshot.epoch snap);
      checkb "rolled-back serving predates the link" false
        (Snapshot.connected snap u v));
  checki "a second rollback swaps forward" 1 (G.rollback gen);
  (* generation numbers never rewind: the next flip writes tip + 1 *)
  let u2, v2 = unconnected_pair idx in
  apply_ok gen (G.Add_link (u2, v2));
  let st2 = G.flip gen in
  checki "next flip publishes tip+1" 2 st2.G.generation;
  G.with_snapshot gen (fun snap ->
      checkb "both rounds of churn served" true
        (Snapshot.connected snap u v && Snapshot.connected snap u2 v2))

let test_reader_pins_generation () =
  with_gen_base @@ fun base ->
  let c = small_collection 32 in
  let idx = Hopi.create c in
  let gen = G.create ~fsync:false ~cache_mb:2 ~retain:0 ~base idx in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  let pinned = G.acquire gen in
  checki "pinned epoch" 0 (Snapshot.epoch pinned);
  let some_root = Collection.doc_root_element c (List.hd (Collection.doc_ids c)) in
  for _ = 1 to 4 do
    let u, v = unconnected_pair idx in
    apply_ok gen (G.Add_link (u, v));
    ignore (G.flip gen)
  done;
  (* open: live 4, previous 3, and generation 0 pinned by the reader *)
  checki "live advanced" 4 (G.live gen);
  checki "retained = live + rollback + pinned" 3 (G.retained gen);
  checkb "pinned snapshot still answers" true (Snapshot.mem_node pinned some_root);
  checki "pinned snapshot kept its epoch" 0 (Snapshot.epoch pinned);
  (* retain 0: drained generations out of the live/rollback pair lose
     their store files; the base file (generation 0) is never deleted *)
  checkb "gen 1 file deleted" false (Sys.file_exists (Manifest.gen_path ~base 1));
  checkb "gen 2 file deleted" false (Sys.file_exists (Manifest.gen_path ~base 2));
  checkb "rollback target kept" true (Sys.file_exists (Manifest.gen_path ~base 3));
  checkb "live file kept" true (Sys.file_exists (Manifest.gen_path ~base 4));
  checkb "generation 0 file never deleted" true (Sys.file_exists base);
  G.release gen pinned;
  checki "release closes the drained generation" 2 (G.retained gen)

(* {1 Flip-time cache invalidation} *)

let test_flip_cache_invalidation () =
  with_gen_base @@ fun base ->
  let c = Collection.create () in
  let add name xml =
    match Collection.add_document_xml c ~name xml with
    | Ok id -> id
    | Error _ -> Alcotest.fail ("cannot parse " ^ name)
  in
  (* two disconnected documents: churn in the first cannot touch labels of
     the second *)
  let d1 = add "a.xml" "<r><x/><y/></r>" in
  let d2 = add "b.xml" "<s><t/></s>" in
  let idx = Hopi.create c in
  let gen = G.create ~fsync:false ~cache_mb:4 ~base idx in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  let r1 = Collection.doc_root_element c d1 in
  let x, y =
    match Collection.children c r1 with
    | [ x; y ] -> (x, y)
    | _ -> Alcotest.fail "unexpected shape of a.xml"
  in
  let r2 = Collection.doc_root_element c d2 in
  let t2 = List.hd (Collection.children c r2) in
  let cache = G.cache gen in
  (* warm label entries for nodes of both documents (version 0 keys) *)
  G.with_snapshot gen (fun snap ->
      checkb "x !-> y yet" false (Snapshot.connected snap x y);
      checkb "r2 -> t2" true (Snapshot.connected snap r2 t2));
  let key dir n = Cache.key ~version:0 dir n in
  checkb "Lout x warmed" true (Cache.find cache (key Cache.Lout x) <> None);
  checkb "Lin y warmed" true (Cache.find cache (key Cache.Lin y) <> None);
  checkb "Lout r2 warmed" true (Cache.find cache (key Cache.Lout r2) <> None);
  checkb "Lin t2 warmed" true (Cache.find cache (key Cache.Lin t2) <> None);
  let entries_before = Cache.entries cache in
  let i0 = Counter.get (Cache.invalidations ()) in
  apply_ok gen (G.Add_link (x, y));
  let st = G.flip gen in
  checkb "attributed invalidation, no floor raise" false st.G.full_invalidation;
  checkb "touched entries evicted" true (st.G.invalidated > 0);
  checki "invalidation counter moved with the flip" (i0 + st.G.invalidated)
    (Counter.get (Cache.invalidations ()));
  (* exactly the invalidated entries disappeared — no full flush, and the
     cost accounting stayed balanced entry by entry *)
  checki "only touched entries dropped" (entries_before - st.G.invalidated)
    (Cache.entries cache);
  checkb "untouched Lout r2 survives" true (Cache.find cache (key Cache.Lout r2) <> None);
  checkb "untouched Lin t2 survives" true (Cache.find cache (key Cache.Lin t2) <> None);
  (* the new generation answers correctly, twice (second pass is the warm
     path through freshly versioned keys) *)
  G.with_snapshot gen (fun snap ->
      checkb "x -> y served cold" true (Snapshot.connected snap x y);
      checkb "x -> y served warm" true (Snapshot.connected snap x y);
      checkb "r2 -> t2 still served" true (Snapshot.connected snap r2 t2))

let test_flip_full_invalidation () =
  with_gen_base @@ fun base ->
  let c = small_collection ~n:3 33 in
  let idx = Hopi.create c in
  let gen = G.create ~fsync:false ~cache_mb:4 ~base idx in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  let dom = elements c in
  let probe snap = Array.map (fun u -> Snapshot.connected snap u dom.(0)) dom in
  G.with_snapshot gen (fun snap -> ignore (probe snap));
  (* a wholesale rebuild swaps the cover object: the flip cannot attribute
     label changes to nodes and must raise the version floor *)
  G.apply_with gen (fun idx -> ignore (Hopi.rebuild idx));
  let st = G.flip gen in
  checkb "floor raised" true st.G.full_invalidation;
  checki "no per-node eviction" 0 st.G.invalidated;
  (* every answer of the new generation equals the writer index *)
  G.with_snapshot gen (fun snap ->
      Array.iter
        (fun u ->
          Array.iter
            (fun v ->
              checkb
                (Printf.sprintf "post-rebuild %d -> %d" u v)
                (Hopi.connected idx u v)
                (Snapshot.connected snap u v))
            dom)
        dom)

(* {1 The op protocol} *)

let test_parse_op () =
  let ok line =
    match G.parse_op line with
    | Ok op -> Format.asprintf "%a" G.pp_op op
    | Error e -> Alcotest.fail (line ^ ": " ^ e)
  in
  check Alcotest.string "add-link" "add-link 1 2" (ok "add-link 1 2");
  check Alcotest.string "spacing normalised" "del-link 3 4" (ok "  del-link   3   4 ");
  check Alcotest.string "add-doc keeps the raw XML remainder"
    "add-doc a.xml <r><x/> <y/></r>"
    (ok "add-doc a.xml <r><x/> <y/></r>");
  check Alcotest.string "del-doc" "del-doc a.xml" (ok "del-doc a.xml");
  check Alcotest.string "add-element" "add-element 0 3 sec" (ok "add-element 0 3 sec");
  check Alcotest.string "del-subtree" "del-subtree 9" (ok "del-subtree 9");
  List.iter
    (fun line ->
      match G.parse_op line with
      | Ok op ->
        Alcotest.failf "should not parse %S (got %s)" line
          (Format.asprintf "%a" G.pp_op op)
      | Error _ -> ())
    [
      ""; "   "; "add-link 1"; "add-link one two"; "del-link 1 2 3";
      "add-doc"; "add-doc a.xml"; "del-doc"; "add-element 0 x t";
      "del-subtree"; "flip"; "nonsense 1";
    ]

let test_apply_errors () =
  with_gen_base @@ fun base ->
  let c = Collection.create () in
  (match Collection.add_document_xml c ~name:"a.xml" "<r><x/></r>" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "cannot parse a.xml");
  let idx = Hopi.create c in
  let gen = G.create ~fsync:false ~cache_mb:1 ~base idx in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  let rejected op =
    match G.apply gen op with
    | Ok msg ->
      Alcotest.failf "%s: accepted (%s)" (Format.asprintf "%a" G.pp_op op) msg
    | Error e -> checkb "error message not empty" true (String.length e > 0)
  in
  rejected (G.Del_doc "missing.xml");
  rejected (G.Add_doc { name = "a.xml"; xml = "<z/>" });
  rejected (G.Add_doc { name = "bad.xml"; xml = "<r><unclosed>" });
  (* regression: del-subtree of a document root must be rejected *before*
     any cover surgery — it used to gut the labels and then fail the
     collection-side validation, leaving the index silently corrupt *)
  let root_a =
    Collection.doc_root_element c (Option.get (Collection.find_doc c "a.xml"))
  in
  rejected (G.Del_subtree root_a);
  rejected (G.Del_subtree 999_999);
  checkb "rejected root deletion left the index exact" true
    (Hopi.self_check idx);
  checkb "root still answers self-reachability" true
    (Hopi.connected idx root_a root_a);
  checki "failed ops leave no lag" 0 (G.pending_ops gen);
  apply_ok gen (G.Add_doc { name = "b.xml"; xml = "<b><c/></b>" });
  checki "successful op counts" 1 (G.pending_ops gen);
  ignore (G.flip gen);
  let rb =
    Collection.doc_root_element c (Option.get (Collection.find_doc c "b.xml"))
  in
  G.with_snapshot gen (fun snap ->
      checkb "new document served after the flip" true (Snapshot.mem_node snap rb))

(* {1 Differential: live churn = offline replay + rebuild}

   The same deterministic base collection twice: one copy churned live
   (interleaved with flips), a twin replaying exactly the accepted ops
   cold, then rebuilt from scratch.  Final served answers must be
   identical over every element pair. *)

let prop_live_equals_offline =
  QCheck2.Test.make ~name:"live churn = offline replay + rebuild" ~count:8
    (Gen.int_range 0 1_000_000) (fun seed ->
      with_gen_base @@ fun base ->
      let mk () = Hopi.create (small_collection ~n:4 1234) in
      let idx = mk () in
      let gen = G.create ~fsync:false ~cache_mb:4 ~base idx in
      Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
      let c = Hopi.collection idx in
      let rng = Splitmix.create seed in
      let fresh = ref 0 in
      let applied = ref [] in
      for step = 1 to 24 do
        let es = elements c in
        let pick () = es.(Splitmix.int rng (Array.length es)) in
        let op =
          match Splitmix.int rng 8 with
          | 0 | 1 | 2 -> G.Add_link (pick (), pick ())
          | 3 -> G.Del_link (pick (), pick ())
          | 4 ->
            incr fresh;
            G.Add_doc
              {
                name = Printf.sprintf "live_%d.xml" !fresh;
                xml = "<doc><sec><p/></sec><sec/></doc>";
              }
          | 5 | 6 ->
            let e = pick () in
            G.Add_element
              { doc = Collection.doc_of_element c e; parent = e; tag = "z" }
          | _ -> G.Del_subtree (pick ())
        in
        (match G.apply gen op with
        | Ok _ -> applied := op :: !applied
        | Error _ -> ());
        if step mod 9 = 0 then ignore (G.flip gen)
      done;
      ignore (G.flip gen);
      let twin = mk () in
      List.iter
        (fun op ->
          match G.apply_to_index twin op with
          | Ok _ -> ()
          | Error e ->
            QCheck2.Test.fail_reportf "twin rejected %s: %s"
              (Format.asprintf "%a" G.pp_op op) e)
        (List.rev !applied);
      ignore (Hopi.rebuild twin);
      if not (Hopi.self_check twin) then
        QCheck2.Test.fail_report "twin cover fails its BFS self-check";
      let tc = Hopi.collection twin in
      if Collection.n_elements tc <> Collection.n_elements c then
        QCheck2.Test.fail_reportf "element counts diverged: live %d, twin %d"
          (Collection.n_elements c) (Collection.n_elements tc);
      let dom = elements tc in
      G.with_snapshot gen (fun snap ->
          Array.iter
            (fun u ->
              Array.iter
                (fun v ->
                  if Snapshot.connected snap u v <> Hopi.connected twin u v then
                    QCheck2.Test.fail_reportf
                      "live generation %d and offline twin disagree on %d -> %d"
                      (Snapshot.epoch snap) u v)
                dom)
            dom);
      true)

(* {1 Churn under load}

   [soak_readers] domains query continuously through acquire/release while
   the writer applies link churn and flips at least [soak_iters] times
   (with periodic rollbacks).  Before each flip the writer publishes the
   BFS-oracle answer matrix of the generation it is about to serve;
   readers check every answer against the oracle of the epoch their
   snapshot reports.  Zero mismatches, zero failed queries, and the flip
   count are the acceptance criteria. *)

let test_churn_soak () =
  with_gen_base @@ fun base ->
  let c = small_collection ~n:8 4242 in
  let idx = Hopi.create c in
  let gen = G.create ~fsync:false ~cache_mb:8 ~base idx in
  let dom = elements c in
  let n = Array.length dom in
  let matrix () =
    Array.map (fun u -> Array.map (fun v -> Hopi.connected idx u v) dom) dom
  in
  let max_gens = (2 * soak_iters) + 8 in
  (* oracle publication order: the writer stores the matrix for generation
     [g] before the flip that makes [g] acquirable; the flip's own lock
     hand-off is the happens-before edge to every reader *)
  let oracles = Array.make max_gens None in
  oracles.(0) <- Some (matrix ());
  let stop = Atomic.make false in
  let total_queries = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let err_mu = Mutex.create () in
  let errs = ref [] in
  let record_err msg =
    Atomic.incr failures;
    Mutex.lock err_mu;
    if List.length !errs < 5 then errs := msg :: !errs;
    Mutex.unlock err_mu
  in
  let epochs_seen = Array.init soak_readers (fun _ -> Ihs.create ()) in
  let reader k =
    Domain.spawn (fun () ->
        let rng = Splitmix.create (0xBEEF + (k * 7919)) in
        let seen = epochs_seen.(k) in
        try
          while not (Atomic.get stop) do
            G.with_snapshot gen (fun snap ->
                let e = Snapshot.epoch snap in
                Ihs.add seen e;
                match oracles.(e) with
                | None ->
                  record_err
                    (Printf.sprintf "reader %d: no oracle for epoch %d" k e)
                | Some m ->
                  for _ = 1 to 64 do
                    let i = Splitmix.int rng n and j = Splitmix.int rng n in
                    let got = Snapshot.connected snap dom.(i) dom.(j) in
                    if got <> m.(i).(j) then
                      record_err
                        (Printf.sprintf
                           "reader %d: epoch %d answers %d -> %d as %b, oracle \
                            says %b"
                           k e dom.(i) dom.(j) got m.(i).(j));
                    Atomic.incr total_queries
                  done)
          done
        with exn ->
          record_err
            (Printf.sprintf "reader %d died: %s" k (Printexc.to_string exn)))
  in
  let readers = List.init soak_readers reader in
  (* wait until the given total query count has been served, so every
     inter-flip window sees real read traffic; bail out if readers died *)
  let wait_queries target =
    while Atomic.get total_queries < target && Atomic.get failures = 0 do
      Domain.cpu_relax ()
    done
  in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      Atomic.set stop true;
      List.iter Domain.join readers
    end
  in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  Fun.protect ~finally:finish @@ fun () ->
  wait_queries (64 * soak_readers);
  let rng = Splitmix.create 77 in
  let links = ref [] in
  let flips = ref 0 in
  while !flips < soak_iters && Atomic.get failures = 0 do
    (* a burst of link churn: mostly inserts, some deletes of links we
       added earlier (tree edges are never deleted) *)
    for _ = 1 to 6 do
      match !links with
      | (u, v) :: rest when Splitmix.int rng 4 = 0 ->
        links := rest;
        ignore (G.apply gen (G.Del_link (u, v)))
      | _ ->
        let u = dom.(Splitmix.int rng n) and v = dom.(Splitmix.int rng n) in
        (match G.apply gen (G.Add_link (u, v)) with
        | Ok _ -> links := (u, v) :: !links
        | Error _ -> ())
    done;
    let g_next = G.tip gen + 1 in
    oracles.(g_next) <- Some (matrix ());
    let st = G.flip gen in
    checki "flip publishes the announced generation" g_next st.G.generation;
    incr flips;
    (* exercise the rollback path under load: serve the previous
       generation briefly, then swap forward again *)
    if !flips mod 5 = 0 then begin
      ignore (G.rollback gen);
      wait_queries (Atomic.get total_queries + (256 * soak_readers));
      ignore (G.rollback gen)
    end;
    wait_queries (Atomic.get total_queries + (256 * soak_readers))
  done;
  finish ();
  (match !errs with
  | [] -> ()
  | msgs ->
    Alcotest.failf "%d soak failures, e.g.:\n  %s" (Atomic.get failures)
      (String.concat "\n  " (List.rev msgs)));
  checkb "at least 10 flips" true (!flips >= 10);
  checki "zero failed or inconsistent queries" 0 (Atomic.get failures);
  checkb "readers made progress" true (Atomic.get total_queries > 0);
  let distinct_epochs =
    let u = Ihs.create () in
    Array.iter (fun s -> List.iter (Ihs.add u) (Ihs.to_list s)) epochs_seen;
    List.length (Ihs.to_list u)
  in
  checkb "reads spanned multiple generations" true (distinct_epochs >= 2);
  checki "served generation is the tip" (G.tip gen) (G.live gen)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "serve.generation",
      [
        Alcotest.test_case "apply/flip/rollback lifecycle" `Quick test_lifecycle;
        Alcotest.test_case "readers pin generations; files swept" `Quick
          test_reader_pins_generation;
        Alcotest.test_case "flip invalidates touched cache entries only" `Quick
          test_flip_cache_invalidation;
        Alcotest.test_case "wholesale rebuild raises the version floor" `Quick
          test_flip_full_invalidation;
        Alcotest.test_case "op protocol parsing" `Quick test_parse_op;
        Alcotest.test_case "failed ops are reported and leave no state" `Quick
          test_apply_errors;
      ]
      @ qsuite [ prop_live_equals_offline ] );
    ( "serve.soak",
      [ Alcotest.test_case "churn under load" `Slow test_churn_soak ] );
  ]
