module Vfs = Hopi_storage.Vfs
module E = Hopi_storage.Storage_error

type mode = Drop_unsynced | Keep_unsynced

exception Crash

type image = { mutable data : Bytes.t; mutable len : int }

type file_state = { durable : image; volatile : image }

type plan =
  | No_fault
  | Crash_at of { op : int; mode : mode; tear : int option }
  | Fail_write of { n : int }
  | Fail_read of { n : int }
  | Torn_read of { n : int; frag : int }

type t = {
  files : (string, file_state) Hashtbl.t;
  mutable ops : int;
  mutable writes : int;
  mutable reads : int;
      (* separate clock: reads are NOT counted ops, so arming read faults
         never shifts the crash-matrix operation indexes *)
  mutable plan : plan;
}

let create () =
  { files = Hashtbl.create 8; ops = 0; writes = 0; reads = 0; plan = No_fault }

let op_count t = t.ops

let read_count t = t.reads

let reset_ops t =
  t.ops <- 0;
  t.writes <- 0;
  t.reads <- 0

let arm_crash t ~op ~mode ?tear () = t.plan <- Crash_at { op; mode; tear }

let arm_fail_write t ~n = t.plan <- Fail_write { n }

let arm_fail_read t ~n = t.plan <- Fail_read { n }

let arm_torn_read t ~n ~frag = t.plan <- Torn_read { n; frag }

let disarm t = t.plan <- No_fault

(* {1 Images} *)

let empty_image () = { data = Bytes.create 0; len = 0 }

let img_assign dst src =
  dst.data <- Bytes.copy src.data;
  dst.len <- src.len

let img_reserve img n =
  if Bytes.length img.data < n then begin
    let cap = max 1024 (max n (2 * Bytes.length img.data)) in
    let d = Bytes.make cap '\000' in
    Bytes.blit img.data 0 d 0 img.len;
    img.data <- d
  end

let img_write img buf ~off ~pos ~len =
  img_reserve img (off + len);
  (* a hole between the old end and [off] reads as zeros: the backing
     buffer is zero-initialised and truncation re-zeroes *)
  Bytes.blit buf pos img.data off len;
  if off + len > img.len then img.len <- off + len

let img_truncate img n =
  img_reserve img n;
  if n < img.len then Bytes.fill img.data n (img.len - n) '\000';
  img.len <- n

(* {1 The crash clock} *)

(* resolve the fate of all un-synced data process-wide *)
let survive t mode =
  Hashtbl.iter
    (fun _ st ->
      match mode with
      | Drop_unsynced -> img_assign st.volatile st.durable
      | Keep_unsynced -> img_assign st.durable st.volatile)
    t.files

let crash t mode =
  survive t mode;
  t.plan <- No_fault;
  raise Crash

(* count one non-write operation, crashing first when armed for this index *)
let check_op t =
  (match t.plan with
  | Crash_at { op; mode; _ } when t.ops = op -> crash t mode
  | _ -> ());
  t.ops <- t.ops + 1

(* {1 The Vfs} *)

let file_ops t path st =
  let read buf ~off ~pos ~len =
    (match t.plan with
    | Fail_read { n } when t.reads = n ->
      t.plan <- No_fault;
      t.reads <- t.reads + 1;
      E.raise_error (Io (Printf.sprintf "injected failure on read #%d of %s" n path))
    | _ -> ());
    let torn_frag =
      match t.plan with
      | Torn_read { n; frag } when t.reads = n ->
        t.plan <- No_fault;
        Some frag
      | _ -> None
    in
    t.reads <- t.reads + 1;
    let img = st.volatile in
    if off >= img.len then 0
    else begin
      let n = min len (img.len - off) in
      Bytes.blit img.data off buf pos n;
      (match torn_frag with
      | Some frag when frag < n ->
        (* a torn read: the tail of the transfer never made it out of the
           device — the caller sees stale zeros there.  The byte count is
           still [n]: only checksum verification can tell. *)
        Bytes.fill buf (pos + frag) (n - frag) '\000'
      | _ -> ());
      n
    end
  in
  let write buf ~off ~pos ~len =
    (match t.plan with
    | Fail_write { n } when t.writes = n ->
      t.plan <- No_fault;
      t.writes <- t.writes + 1;
      t.ops <- t.ops + 1;
      E.raise_error (Io (Printf.sprintf "injected failure on write #%d to %s" n path))
    | Crash_at { op; mode; tear } when t.ops = op ->
      survive t mode;
      (match tear with
      | Some k ->
        (* the torn prefix physically reached the platter *)
        let frag = min k len in
        if frag > 0 then begin
          img_write st.durable buf ~off ~pos ~len:frag;
          img_write st.volatile buf ~off ~pos ~len:frag
        end
      | None -> ());
      t.plan <- No_fault;
      raise Crash
    | _ -> ());
    t.writes <- t.writes + 1;
    t.ops <- t.ops + 1;
    img_write st.volatile buf ~off ~pos ~len
  in
  let sync () =
    check_op t;
    img_assign st.durable st.volatile
  in
  let truncate n =
    (* metadata: modelled as atomic and durable (see DESIGN.md) *)
    check_op t;
    img_truncate st.volatile n;
    img_truncate st.durable n
  in
  let size () = st.volatile.len in
  let close () = () in
  { Vfs.read; write; sync; truncate; size; close }

let vfs t =
  let open_file path ~create =
    match Hashtbl.find_opt t.files path with
    | Some st ->
      if create then begin
        (* open-truncate: metadata, atomic and durable *)
        img_truncate st.volatile 0;
        img_truncate st.durable 0
      end;
      file_ops t path st
    | None ->
      if not create then E.raise_error (File_not_found path);
      let st = { durable = empty_image (); volatile = empty_image () } in
      Hashtbl.replace t.files path st;
      file_ops t path st
  in
  let exists path = Hashtbl.mem t.files path in
  let remove path =
    check_op t;
    if not (Hashtbl.mem t.files path) then E.raise_error (File_not_found path);
    Hashtbl.remove t.files path
  in
  let list_dir dir =
    Hashtbl.fold
      (fun path _ acc ->
        if Filename.dirname path = dir then Filename.basename path :: acc else acc)
      t.files []
    |> List.sort compare
  in
  { Vfs.open_file; exists; remove; list_dir }

(* {1 Snapshots and corruption} *)

type snapshot = (string * (Bytes.t * int)) list

let snapshot t =
  Hashtbl.fold
    (fun path st acc -> (path, (Bytes.copy st.durable.data, st.durable.len)) :: acc)
    t.files []

let restore t snap =
  Hashtbl.reset t.files;
  List.iter
    (fun (path, (data, len)) ->
      let st =
        {
          durable = { data = Bytes.copy data; len };
          volatile = { data = Bytes.copy data; len };
        }
      in
      Hashtbl.replace t.files path st)
    snap;
  t.plan <- No_fault

let corrupt_byte t path ~off =
  match Hashtbl.find_opt t.files path with
  | None -> raise Not_found
  | Some st ->
    if off >= st.durable.len || off >= st.volatile.len then raise Not_found;
    let flip img =
      Bytes.set img.data off (Char.chr (Char.code (Bytes.get img.data off) lxor 0x42))
    in
    flip st.durable;
    flip st.volatile

let durable_size t path =
  match Hashtbl.find_opt t.files path with None -> 0 | Some st -> st.durable.len
