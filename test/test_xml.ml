(* Tests for hopi_xml: parser, tree utilities, link extraction. *)

open Hopi_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse = Xml_parser.parse_string_exn

(* {1 Parser} *)

let test_parse_simple () =
  let t = parse "<a><b/><c>text</c></a>" in
  check_string "root tag" "a" t.Xml_tree.tag;
  check_int "children" 2 (List.length (Xml_tree.child_elements t));
  check_int "elements" 3 (Xml_tree.count_elements t)

let test_parse_attributes () =
  let t = parse {|<a x="1" y='two' z="a&amp;b"/>|} in
  Alcotest.(check (option string)) "x" (Some "1") (Xml_tree.attr t "x");
  Alcotest.(check (option string)) "y" (Some "two") (Xml_tree.attr t "y");
  Alcotest.(check (option string)) "z" (Some "a&b") (Xml_tree.attr t "z");
  Alcotest.(check (option string)) "missing" None (Xml_tree.attr t "w")

let test_parse_entities () =
  let t = parse "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>" in
  check_string "decoded" "<>&\"'AB" (Xml_tree.text_content t)

let test_parse_prolog_comment_cdata () =
  let src =
    {|<?xml version="1.0"?>
<!DOCTYPE a [ <!ELEMENT a ANY> ]>
<!-- a comment -->
<a><!-- inner --><![CDATA[<raw>&stuff;]]></a>|}
  in
  let t = parse src in
  check_string "cdata raw" "<raw>&stuff;" (Xml_tree.text_content t)

let test_parse_nested_same_tag () =
  let t = parse "<a><a><a/></a></a>" in
  check_int "depth" 3 (Xml_tree.depth t)

let expect_error src =
  match Xml_parser.parse_string src with
  | Ok _ -> Alcotest.failf "expected parse error for %S" src
  | Error _ -> ()

let test_parse_errors () =
  expect_error "";
  expect_error "<a>";
  expect_error "<a></b>";
  expect_error "<a><b></a></b>";
  expect_error "no markup";
  expect_error "<a/><b/>";
  expect_error "<a x=1/>";
  expect_error "<a>&unknown;</a>";
  expect_error "<a>&#xZZ;</a>";
  expect_error "<1tag/>"

let test_parse_error_position () =
  match Xml_parser.parse_string "<a>\n<b></c>\n</a>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
    check_int "line" 2 e.Xml_parser.line;
    check_bool "message mentions tags" true
      (String.length e.Xml_parser.msg > 0)

let test_roundtrip () =
  let src = {|<article id="a1"><title>On &amp; Off</title><sec n="1"><p>hi</p></sec></article>|} in
  let t = parse src in
  let printed = Xml_tree.to_string t in
  let t2 = parse printed in
  check_bool "stable" true (t = t2);
  check_string "idempotent print" printed (Xml_tree.to_string t2)

let prop_generated_roundtrip =
  (* generate random trees, print, reparse, compare *)
  let gen_tree =
    QCheck2.Gen.(
      sized_size (int_bound 5)
      @@ fix (fun self n ->
             let tag = oneofl [ "a"; "b"; "sec"; "p" ] in
             let attr = pair (oneofl [ "id"; "x" ]) (oneofl [ "v"; "w&<>\"" ]) in
             let attrs = map (fun l -> List.sort_uniq (fun (a,_) (b,_) -> compare a b) l)
                 (list_size (int_bound 2) attr) in
             if n = 0 then
               map2 (fun t a -> Hopi_xml.Xml_tree.element ~attrs:a t) tag attrs
             else
               map3
                 (fun t a cs ->
                   Hopi_xml.Xml_tree.element ~attrs:a
                     ~children:(List.map (fun c -> Hopi_xml.Xml_tree.Element c) cs)
                     t)
                 tag attrs
                 (list_size (int_bound 3) (self (n / 2)))))
  in
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:200 gen_tree (fun t ->
      parse (Xml_tree.to_string t) = t)

let prop_parser_never_crashes =
  (* arbitrary bytes must yield Ok or Error, never an exception *)
  QCheck2.Test.make ~name:"parser is total on arbitrary input" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 80))
    (fun s ->
      match Xml_parser.parse_string s with
      | Ok _ | Error _ -> true)

let prop_parser_never_crashes_markup =
  (* markup-flavoured fuzz: higher chance of hitting parser branches *)
  QCheck2.Test.make ~name:"parser is total on markup soup" ~count:500
    QCheck2.Gen.(
      map (String.concat "")
        (list_size (int_bound 20)
           (oneofl
              [ "<"; ">"; "</"; "/>"; "a"; "b"; "="; "\""; "'"; "&"; ";"; "&amp;";
                "<!--"; "-->"; "<![CDATA["; "]]>"; "<?"; "?>"; " "; "<a"; "</a>";
                "id"; "#x"; "&#"; "<!DOCTYPE"; "["; "]" ])))
    (fun s ->
      match Xml_parser.parse_string s with
      | Ok _ | Error _ -> true)

(* {1 Tree utilities} *)

let test_find_by_id () =
  let t = parse {|<a><b id="x"/><c><d id="y"/></c></a>|} in
  (match Xml_tree.find_by_id t "y" with
   | Some e -> check_string "tag" "d" e.Xml_tree.tag
   | None -> Alcotest.fail "id y not found");
  check_bool "missing" true (Xml_tree.find_by_id t "zzz" = None)

let test_iter_preorder () =
  let t = parse "<a><b><c/></b><d/></a>" in
  let tags = ref [] in
  Xml_tree.iter_elements (fun e -> tags := e.Xml_tree.tag :: !tags) t;
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "c"; "d" ] (List.rev !tags)

(* {1 Xlink} *)

let test_parse_href () =
  let open Xlink in
  Alcotest.(check bool) "doc+frag" true
    (parse_href "d.xml#e5" = { doc = Some "d.xml"; fragment = "e5" });
  Alcotest.(check bool) "frag only" true
    (parse_href "#e5" = { doc = None; fragment = "e5" });
  Alcotest.(check bool) "doc only" true
    (parse_href "d.xml" = { doc = Some "d.xml"; fragment = "" });
  Alcotest.(check bool) "empty" true (parse_href "" = { doc = None; fragment = "" })

let test_targets_of_element () =
  let t = parse {|<cite xlink:href="p2.xml#e1" idref="a" idrefs="b c"/>|} in
  let ts = Xlink.targets_of_element t in
  check_int "count" 4 (List.length ts);
  check_bool "xlink first" true
    (List.hd ts = { Xlink.doc = Some "p2.xml"; fragment = "e1" })

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "xml.parser",
      [
        Alcotest.test_case "simple" `Quick test_parse_simple;
        Alcotest.test_case "attributes" `Quick test_parse_attributes;
        Alcotest.test_case "entities" `Quick test_parse_entities;
        Alcotest.test_case "prolog/comment/cdata" `Quick test_parse_prolog_comment_cdata;
        Alcotest.test_case "nested same tag" `Quick test_parse_nested_same_tag;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "error position" `Quick test_parse_error_position;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      ]
      @ qsuite
          [
            prop_generated_roundtrip;
            prop_parser_never_crashes;
            prop_parser_never_crashes_markup;
          ] );
    ( "xml.tree",
      [
        Alcotest.test_case "find_by_id" `Quick test_find_by_id;
        Alcotest.test_case "preorder" `Quick test_iter_preorder;
      ] );
    ( "xml.xlink",
      [
        Alcotest.test_case "parse_href" `Quick test_parse_href;
        Alcotest.test_case "targets" `Quick test_targets_of_element;
      ] );
  ]
