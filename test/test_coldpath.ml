(* Cold-read concurrency tests for the shared read path.

   The tentpole claim under test: one snapshot handle over the shared
   read-only page pool serves every reader domain, cold (label cache
   disabled), without wrong answers and without per-domain state.  The
   soak opens a snapshot with a deliberately tiny pool so eviction churn
   happens mid-flight, hammers it from [HOPI_SOAK_READERS] domains for
   [HOPI_SOAK_ITERS] rounds, and verifies every reach/dist/desc/anc
   answer against oracle matrices computed up front from a sequential
   private-pager Cover_store — the code path the differential suite has
   already proven against the in-memory index.

   Also here: pool sharing across snapshot opens (closing one handle must
   not poison another's pages — per-open tags), and shared-pool metric
   attribution (the shared series moves, the private-pager series does
   not). *)

module Snapshot = Hopi_serve.Snapshot
module Pool = Hopi_util.Pool
module Digraph = Hopi_graph.Digraph
module Closure = Hopi_graph.Closure
module Builder = Hopi_twohop.Builder
module Dist_builder = Hopi_twohop.Dist_builder
module Pager = Hopi_storage.Pager
module Cover_store = Hopi_storage.Cover_store
module Splitmix = Hopi_util.Splitmix
module Ihs = Hopi_util.Int_hashset

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let soak_iters =
  match Sys.getenv_opt "HOPI_SOAK_ITERS" with
  | Some s -> (try max 10 (int_of_string s) with _ -> 12)
  | None -> 12

let soak_readers =
  match Sys.getenv_opt "HOPI_SOAK_READERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* a deterministic digraph with enough nodes that its cover spans many
   pages: layered DAG plus random skip links and a few back edges *)
let soak_graph ~n seed =
  let g = Digraph.create () in
  for v = 0 to n - 1 do
    Digraph.add_node g v
  done;
  let rng = Splitmix.create seed in
  for v = 1 to n - 1 do
    Digraph.add_edge g (Splitmix.int rng v) v
  done;
  for _ = 1 to 3 * n do
    let u = Splitmix.int rng n and v = Splitmix.int rng n in
    if u <> v then Digraph.add_edge g u v
  done;
  g

let with_store_file load f =
  let path = Filename.temp_file "hopi_test_coldpath" ".db" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ "-journal") then Sys.remove (path ^ "-journal"))
    (fun () ->
      let pager = Pager.create ~pool_pages:64 ~fsync:false (Pager.File path) in
      let store = Cover_store.create pager in
      load store;
      Cover_store.save store;
      Pager.close pager;
      f path)

let sorted_ihs s = List.sort compare (Ihs.to_list s)

(* the sequential oracle: every answer the soak will check, computed once
   through a private read-only pager before any domain is spawned *)
type oracle = {
  reach : bool array array;
  dist : int array array; (* -1 = unreachable *)
  desc : int list array;
  anc : int list array;
}

let oracle_of_store path n =
  let pager = Pager.open_existing ~pool_pages:64 path in
  Fun.protect ~finally:(fun () -> Pager.close pager) @@ fun () ->
  let store = Cover_store.open_pager pager in
  {
    reach =
      Array.init n (fun u -> Array.init n (fun v -> Cover_store.connected store u v));
    dist =
      Array.init n (fun u ->
          Array.init n (fun v ->
              match Cover_store.min_distance store u v with
              | Some d -> d
              | None -> -1));
    desc = Array.init n (fun u -> sorted_ihs (Cover_store.descendants store u));
    anc = Array.init n (fun v -> sorted_ihs (Cover_store.ancestors store v));
  }

(* {1 The soak} *)

let run_soak ~dist () =
  let n = 96 in
  let g = soak_graph ~n 0xC01D in
  let load store =
    if dist then Cover_store.load_dist_cover store (fst (Dist_builder.build g))
    else Cover_store.load_cover store (fst (Builder.build (Closure.compute g)))
  in
  with_store_file load @@ fun path ->
  let oracle = oracle_of_store path n in
  (* pool far smaller than the store's working set: misses and evictions
     mid-soak are the point — a page answers for one domain, gets
     evicted, and must read back verified for the next.  One shard and a
     2-page budget so even a compact plain cover (whose whole read path
     touches only a handful of pages) churns. *)
  let pool = Pager.Read_pool.create ~shards:1 ~pages:2 () in
  let snap = Snapshot.open_file ~pool ~cache_mb:0 path in
  Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
  let total = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let err_mu = Mutex.create () in
  let errs = ref [] in
  let record_err msg =
    Atomic.incr failures;
    Mutex.lock err_mu;
    if List.length !errs < 5 then errs := msg :: !errs;
    Mutex.unlock err_mu
  in
  let reader k =
    Domain.spawn (fun () ->
        let rng = Splitmix.create (0xC0FFEE + (k * 7919)) in
        try
          for _round = 1 to soak_iters do
            for _ = 1 to 128 do
              let u = Splitmix.int rng n and v = Splitmix.int rng n in
              let got = Snapshot.connected snap u v in
              if got <> oracle.reach.(u).(v) then
                record_err
                  (Printf.sprintf "reader %d: reach %d -> %d got %b oracle %b"
                     k u v got oracle.reach.(u).(v));
              let gd =
                match Snapshot.min_distance snap u v with Some d -> d | None -> -1
              in
              if gd <> oracle.dist.(u).(v) then
                record_err
                  (Printf.sprintf "reader %d: dist %d -> %d got %d oracle %d"
                     k u v gd oracle.dist.(u).(v));
              Atomic.incr total
            done;
            (* result-set scans exercise the backward indexes cold too *)
            let u = Splitmix.int rng n in
            if sorted_ihs (Snapshot.descendants snap u) <> oracle.desc.(u) then
              record_err (Printf.sprintf "reader %d: descendants %d diverged" k u);
            if sorted_ihs (Snapshot.ancestors snap u) <> oracle.anc.(u) then
              record_err (Printf.sprintf "reader %d: ancestors %d diverged" k u);
            Atomic.incr total
          done
        with exn ->
          record_err
            (Printf.sprintf "reader %d died: %s" k (Printexc.to_string exn)))
  in
  let readers = List.init soak_readers reader in
  List.iter Domain.join readers;
  (match !errs with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "%d cold-read failures, e.g.: %s" (Atomic.get failures) e);
  checkb "soak served queries" true (Atomic.get total > 0);
  let stats = Pager.Read_pool.stats (Snapshot.read_pool snap) in
  checkb "pool saw misses (cold path exercised)" true (stats.misses > 0);
  checkb "pool saw hits (pages shared between probes)" true (stats.hits > 0);
  checkb "pool evicted (churn exercised)" true (stats.evictions > 0);
  checkb "resident within budget" true (stats.resident <= stats.capacity)

let test_soak_plain () = run_soak ~dist:false ()

let test_soak_dist () = run_soak ~dist:true ()

(* {1 Pool sharing across opens} *)

(* two snapshots of the same store share one externally owned pool; pages
   are keyed per open (tags), so closing one handle drops only its own
   pages and the survivor keeps answering correctly *)
let test_pool_shared_across_opens () =
  let n = 16 in
  let g = soak_graph ~n 0x5EED in
  let load store =
    Cover_store.load_cover store (fst (Builder.build (Closure.compute g)))
  in
  with_store_file load @@ fun path ->
  let oracle = oracle_of_store path n in
  let pool = Pager.Read_pool.create ~pages:64 () in
  let a = Snapshot.open_file ~pool ~cache_mb:0 path in
  let b = Snapshot.open_file ~pool ~cache_mb:0 path in
  checkb "both handles share the pool" true
    (Snapshot.read_pool a == pool && Snapshot.read_pool b == pool);
  let verify snap =
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if Snapshot.connected snap u v <> oracle.reach.(u).(v) then
          Alcotest.failf "shared-pool snapshot wrong on %d -> %d" u v
      done
    done
  in
  verify a;
  verify b;
  Snapshot.close a;
  (* a's pages are dropped by tag; b must re-fault its own pages, never
     see a stale or foreign one *)
  verify b;
  Snapshot.close b

(* {1 Metric attribution} *)

(* cold reads through the shared path move only the shared-pool metric
   series; a concurrently open private pager's per-pager counters (and
   the private-pool global series) are untouched by them *)
let test_metric_attribution () =
  let n = 12 in
  let g = soak_graph ~n 0xA77B in
  let load store =
    Cover_store.load_cover store (fst (Builder.build (Closure.compute g)))
  in
  with_store_file load @@ fun path ->
  let counter name =
    Hopi_obs.Counter.get (Hopi_obs.Registry.counter name)
  in
  let priv = Pager.open_existing ~pool_pages:64 path in
  Fun.protect ~finally:(fun () -> Pager.close priv) @@ fun () ->
  let priv0 = Pager.stats priv in
  let private_hits0 = counter "hopi_storage_cache_hits_total"
  and private_misses0 = counter "hopi_storage_cache_misses_total"
  and shared_hits0 = counter "hopi_storage_shared_pool_hits_total"
  and shared_misses0 = counter "hopi_storage_shared_pool_misses_total" in
  let snap = Snapshot.open_file ~pool_pages:8 ~cache_mb:0 path in
  Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      ignore (Snapshot.connected snap u v)
    done
  done;
  (* shared series moved... *)
  checkb "shared-pool misses attributed" true
    (counter "hopi_storage_shared_pool_misses_total" > shared_misses0);
  checkb "shared-pool hits attributed" true
    (counter "hopi_storage_shared_pool_hits_total" > shared_hits0);
  (* ...the private series did not *)
  checki "private-pool hit counter untouched by shared reads" private_hits0
    (counter "hopi_storage_cache_hits_total");
  checki "private-pool miss counter untouched by shared reads" private_misses0
    (counter "hopi_storage_cache_misses_total");
  let priv1 = Pager.stats priv in
  checki "private pager saw no hits" priv0.Pager.cache_hits priv1.Pager.cache_hits;
  checki "private pager saw no misses" priv0.Pager.cache_misses
    priv1.Pager.cache_misses;
  (* and the shared pager's own stats view reports pool-wide series with
     the write-side fields pinned to zero *)
  let pool = Pager.Read_pool.stats (Snapshot.read_pool snap) in
  checkb "pool stats coherent" true (pool.misses > 0 && pool.resident <= pool.capacity)

(* shared handles are read-only: every mutating pager entry point must
   refuse, so a bug cannot silently write through the shared pool *)
let test_shared_pager_rejects_writes () =
  let g = soak_graph ~n:8 0xBAD in
  let load store =
    Cover_store.load_cover store (fst (Builder.build (Closure.compute g)))
  in
  with_store_file load @@ fun path ->
  let pool = Pager.Read_pool.create ~pages:16 () in
  let pgr = Pager.open_shared ~pool path in
  Fun.protect ~finally:(fun () -> Pager.close pgr) @@ fun () ->
  checkb "shared pager reports read-only" true (Pager.read_only pgr);
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "shared pager accepted %s" name
  in
  rejects "alloc" (fun () -> Pager.alloc pgr);
  rejects "mark_dirty" (fun () -> Pager.mark_dirty pgr 1);
  rejects "commit" (fun () -> Pager.commit pgr)

let suite =
  [
    ( "coldpath.soak",
      [
        Alcotest.test_case "multi-domain cold soak, plain cover" `Slow
          test_soak_plain;
        Alcotest.test_case "multi-domain cold soak, distance cover" `Slow
          test_soak_dist;
      ] );
    ( "coldpath.pool",
      [
        Alcotest.test_case "one pool shared across opens; close drops by tag"
          `Quick test_pool_shared_across_opens;
        Alcotest.test_case "shared vs private metric attribution" `Quick
          test_metric_attribution;
        Alcotest.test_case "shared pager rejects every write entry point"
          `Quick test_shared_pager_rejects_writes;
      ] );
  ]
