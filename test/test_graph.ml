(* Tests for hopi_graph: Digraph, Traversal, Scc, Closure, Shortest. *)

open Hopi_graph
module Ihs = Hopi_util.Int_hashset
module Int_set = Hopi_util.Int_set
module Splitmix = Hopi_util.Splitmix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

let of_edges edges =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

(* A small diamond with a cycle on top:
   0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4, 4 -> 3 (cycle), 5 isolated *)
let diamond () =
  let g = of_edges [ (0, 1); (1, 3); (0, 2); (2, 3); (3, 4); (4, 3) ] in
  Digraph.add_node g 5;
  g

(* {1 Digraph} *)

let test_digraph_basics () =
  let g = diamond () in
  check_int "nodes" 6 (Digraph.n_nodes g);
  check_int "edges" 6 (Digraph.n_edges g);
  check_bool "mem_edge" true (Digraph.mem_edge g 0 1);
  check_bool "no reverse" false (Digraph.mem_edge g 1 0);
  check_list "succ 0" [ 1; 2 ] (List.sort compare (Digraph.succ g 0));
  check_list "pred 3" [ 1; 2; 4 ] (List.sort compare (Digraph.pred g 3));
  check_int "out_degree" 2 (Digraph.out_degree g 0);
  check_int "in_degree 3" 3 (Digraph.in_degree g 3)

let test_digraph_idempotent_edges () =
  let g = of_edges [ (1, 2); (1, 2); (1, 2) ] in
  check_int "edges collapse" 1 (Digraph.n_edges g)

let test_digraph_remove_edge () =
  let g = diamond () in
  Digraph.remove_edge g 0 1;
  check_int "edges" 5 (Digraph.n_edges g);
  check_bool "gone" false (Digraph.mem_edge g 0 1);
  Digraph.remove_edge g 0 1;
  check_int "idempotent" 5 (Digraph.n_edges g)

let test_digraph_remove_node () =
  let g = diamond () in
  Digraph.remove_node g 3;
  check_int "nodes" 5 (Digraph.n_nodes g);
  check_int "edges" 2 (Digraph.n_edges g);
  check_list "succ 1 empty" [] (Digraph.succ g 1);
  check_list "succ 4 empty" [] (Digraph.succ g 4)

let test_digraph_transpose () =
  let g = of_edges [ (1, 2); (2, 3) ] in
  let gt = Digraph.transpose g in
  check_bool "reversed" true (Digraph.mem_edge gt 2 1);
  check_bool "reversed2" true (Digraph.mem_edge gt 3 2);
  check_int "same nodes" 3 (Digraph.n_nodes gt)

let test_digraph_induced () =
  let g = diamond () in
  let keep = Ihs.create () in
  List.iter (Ihs.add keep) [ 0; 1; 3 ];
  let sub = Digraph.induced_subgraph g keep in
  check_int "nodes" 3 (Digraph.n_nodes sub);
  check_int "edges" 2 (Digraph.n_edges sub);
  check_bool "kept" true (Digraph.mem_edge sub 0 1);
  check_bool "dropped" false (Digraph.mem_edge sub 0 2)

(* {1 Traversal} *)

let test_reachable () =
  let g = diamond () in
  let r = Traversal.reachable g [ 0 ] in
  check_int "count" 5 (Ihs.cardinal r);
  check_bool "5 not reached" false (Ihs.mem r 5);
  let rb = Traversal.reachable_backward g [ 3 ] in
  check_int "backward count" 5 (Ihs.cardinal rb);
  check_bool "4 reaches 3" true (Ihs.mem rb 4)

let test_reachable_avoiding () =
  let g = of_edges [ (0, 1); (1, 2); (0, 3); (3, 2) ] in
  let r = Traversal.reachable_avoiding g ~avoid:(fun v -> v = 1) [ 0 ] in
  check_bool "2 via 3" true (Ihs.mem r 2);
  let r2 = Traversal.reachable_avoiding g ~avoid:(fun v -> v = 1 || v = 3) [ 0 ] in
  check_bool "2 blocked" false (Ihs.mem r2 2)

let test_bfs_distances () =
  let g = diamond () in
  let d = Traversal.bfs_distances g 0 in
  check_int "d(0,0)" 0 (Hashtbl.find d 0);
  check_int "d(0,3)" 2 (Hashtbl.find d 3);
  check_int "d(0,4)" 3 (Hashtbl.find d 4);
  check_bool "unreachable" true (Hashtbl.find_opt d 5 = None)

let test_bfs_bounded () =
  let g = of_edges [ (0, 1); (1, 2); (2, 3) ] in
  let d = Traversal.bfs_distances_bounded g 0 ~max_depth:2 in
  check_bool "depth 2 in" true (Hashtbl.mem d 2);
  check_bool "depth 3 out" false (Hashtbl.mem d 3)

let test_is_reachable () =
  let g = diamond () in
  check_bool "0->4" true (Traversal.is_reachable g 0 4);
  check_bool "4->3 cycle" true (Traversal.is_reachable g 4 3);
  check_bool "3->4 " true (Traversal.is_reachable g 3 4);
  check_bool "1->2 no" false (Traversal.is_reachable g 1 2);
  check_bool "self" true (Traversal.is_reachable g 5 5);
  check_bool "unknown" false (Traversal.is_reachable g 99 0)

let test_topological_order () =
  let g = of_edges [ (1, 2); (2, 3); (1, 3) ] in
  (match Traversal.topological_order g with
   | Some [ 1; 2; 3 ] -> ()
   | Some o -> Alcotest.failf "bad order %s" (String.concat "," (List.map string_of_int o))
   | None -> Alcotest.fail "expected DAG");
  let cyc = of_edges [ (1, 2); (2, 1) ] in
  check_bool "cycle -> None" true (Traversal.topological_order cyc = None)

(* {1 Scc / Condensation} *)

let test_scc_diamond () =
  let g = diamond () in
  let scc = Scc.compute g in
  check_int "count" 5 scc.Scc.count;
  check_bool "3,4 same" true (Scc.component_of scc 3 = Scc.component_of scc 4);
  check_bool "0,1 diff" false (Scc.component_of scc 0 = Scc.component_of scc 1)

let test_scc_big_cycle () =
  let n = 50 in
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  let scc = Scc.compute (of_edges edges) in
  check_int "one component" 1 scc.Scc.count

let test_condensation_is_dag () =
  let g = of_edges [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let cond = Condensation.compute g in
  check_bool "dag" true (Traversal.topological_order cond.Condensation.dag <> None);
  check_int "two non-trivial sccs + none" 2 (Digraph.n_nodes cond.Condensation.dag)

(* {1 Closure} *)

let test_closure_diamond () =
  let g = diamond () in
  let c = Closure.compute g in
  (* 0:{0,1,2,3,4} 1:{1,3,4} 2:{2,3,4} 3:{3,4} 4:{3,4} 5:{5} = 5+3+3+2+2+1 *)
  check_int "connections" 16 (Closure.n_connections c);
  check_int "count matches" 16 (Closure.count_connections g);
  check_bool "0->4" true (Closure.mem c 0 4);
  check_bool "4->3" true (Closure.mem c 4 3);
  check_bool "reflexive" true (Closure.mem c 5 5);
  check_bool "1->2 no" false (Closure.mem c 1 2);
  check_list "succs 1" [ 1; 3; 4 ] (Int_set.to_list (Closure.succs c 1));
  check_list "preds 4" [ 0; 1; 2; 3; 4 ] (Int_set.to_list (Closure.preds c 4))

let test_closure_bounded () =
  let g = diamond () in
  check_bool "within budget" true (Closure.compute_bounded g ~max_connections:16 <> None);
  check_bool "over budget" true (Closure.compute_bounded g ~max_connections:15 = None)

let random_graph seed n p =
  let rng = Splitmix.create seed in
  let g = Digraph.create () in
  for v = 0 to n - 1 do
    Digraph.add_node g v
  done;
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Splitmix.float rng 1.0 < p then Digraph.add_edge g u v
    done
  done;
  g

let prop_closure_matches_bfs =
  QCheck2.Test.make ~name:"Closure.mem = BFS reachability" ~count:60
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 18))
    (fun (seed, n) ->
      let g = random_graph seed n 0.15 in
      let c = Closure.compute g in
      let ok = ref true in
      Digraph.iter_nodes g (fun u ->
          let reach = Traversal.reachable g [ u ] in
          Digraph.iter_nodes g (fun v ->
              if Closure.mem c u v <> Ihs.mem reach v then ok := false));
      !ok)

let prop_closure_count_consistent =
  QCheck2.Test.make ~name:"count_connections = n_connections" ~count:60
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 18))
    (fun (seed, n) ->
      let g = random_graph seed n 0.2 in
      Closure.count_connections g = Closure.n_connections (Closure.compute g))

(* {1 Shortest} *)

let test_shortest_diamond () =
  let g = diamond () in
  let sp = Shortest.all_pairs g in
  Alcotest.(check (option int)) "0->3" (Some 2) (Shortest.dist sp 0 3);
  Alcotest.(check (option int)) "0->0" (Some 0) (Shortest.dist sp 0 0);
  Alcotest.(check (option int)) "4->4" (Some 0) (Shortest.dist sp 4 4);
  Alcotest.(check (option int)) "3->4" (Some 1) (Shortest.dist sp 3 4);
  Alcotest.(check (option int)) "1->2" None (Shortest.dist sp 1 2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "graph.digraph",
      [
        Alcotest.test_case "basics" `Quick test_digraph_basics;
        Alcotest.test_case "idempotent edges" `Quick test_digraph_idempotent_edges;
        Alcotest.test_case "remove edge" `Quick test_digraph_remove_edge;
        Alcotest.test_case "remove node" `Quick test_digraph_remove_node;
        Alcotest.test_case "transpose" `Quick test_digraph_transpose;
        Alcotest.test_case "induced subgraph" `Quick test_digraph_induced;
      ] );
    ( "graph.traversal",
      [
        Alcotest.test_case "reachable" `Quick test_reachable;
        Alcotest.test_case "reachable_avoiding" `Quick test_reachable_avoiding;
        Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
        Alcotest.test_case "bfs bounded" `Quick test_bfs_bounded;
        Alcotest.test_case "is_reachable" `Quick test_is_reachable;
        Alcotest.test_case "topological order" `Quick test_topological_order;
      ] );
    ( "graph.scc",
      [
        Alcotest.test_case "diamond" `Quick test_scc_diamond;
        Alcotest.test_case "big cycle" `Quick test_scc_big_cycle;
        Alcotest.test_case "condensation dag" `Quick test_condensation_is_dag;
      ] );
    ( "graph.closure",
      [
        Alcotest.test_case "diamond" `Quick test_closure_diamond;
        Alcotest.test_case "bounded" `Quick test_closure_bounded;
      ]
      @ qsuite [ prop_closure_matches_bfs; prop_closure_count_consistent ] );
    ("graph.shortest", [ Alcotest.test_case "diamond" `Quick test_shortest_diamond ]);
  ]
