(* End-to-end tests for hopi_core: all build configurations, both join
   algorithms, and every maintenance operation must keep the cover exactly
   equal to BFS reachability over the element graph. *)

open Hopi_core
module Collection = Hopi_collection.Collection
module Cover = Hopi_twohop.Cover
module Verify = Hopi_twohop.Verify
module Weights = Hopi_partition.Weights
module Dblp = Hopi_workload.Dblp_gen
module Inex = Hopi_workload.Inex_gen
module Ihs = Hopi_util.Int_hashset
module Splitmix = Hopi_util.Splitmix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_dblp ?(n = 30) ?(seed = 20050405) () =
  Dblp.generate { (Dblp.default ~n_docs:n) with seed }

let exact c cover =
  Verify.cover_vs_graph cover (Collection.element_graph c) = []

let config_cases =
  [
    ("whole", { Config.default with partitioner = Config.Whole });
    ("singleton+psg", { Config.default with partitioner = Config.Singleton });
    ( "singleton+incremental",
      { Config.default with partitioner = Config.Singleton; joiner = Config.Incremental }
    );
    ( "random+incremental (edbt04)",
      {
        Config.baseline_edbt04 with
        partitioner = Config.Random_nodes 120;
      } );
    ( "random+psg",
      { Config.default with partitioner = Config.Random_nodes 120 } );
    ( "closure+psg",
      { Config.default with partitioner = Config.Closure_aware 3000 } );
    ( "closure+incremental",
      {
        Config.default with
        partitioner = Config.Closure_aware 3000;
        joiner = Config.Incremental;
      } );
    ( "closure+psg+links-weights",
      {
        Config.default with
        partitioner = Config.Closure_aware 3000;
        weight_scheme = Weights.Links;
      } );
    ( "closure+psg+A+D",
      {
        Config.default with
        partitioner = Config.Closure_aware 3000;
        weight_scheme = Weights.A_plus_D;
      } );
    ( "no preselection",
      { Config.default with preselect_link_targets = false } );
    ( "parallel (2 jobs)",
      { Config.default with partitioner = Config.Closure_aware 3000; jobs = 2 } );
    ( "parallel (4 jobs)",
      { Config.default with partitioner = Config.Random_nodes 100; jobs = 4 } );
  ]

let test_build_config (name, config) () =
  let c = small_dblp () in
  let r = Build.build config c in
  check_bool (name ^ " exact") true (exact c r.Build.cover);
  check_bool (name ^ " partitions cover all docs") true
    (Array.fold_left (fun acc l -> acc + List.length l) 0
       r.Build.partitioning.Hopi_collection.Partitioning.docs_of_part
    = Collection.n_docs c)

let test_inex_build () =
  let c = Inex.generate { (Inex.default ~n_docs:6) with avg_elements = 40 } in
  check_int "no links at all" 0 (Collection.n_links c);
  let r = Build.build Config.default c in
  check_bool "exact" true (exact c r.Build.cover);
  (* tree-only: the joiner must add nothing *)
  check_int "no join entries" 0 r.Build.join_entries

let test_psg_vs_incremental_same_relation () =
  let c = small_dblp ~n:40 () in
  let cfg p = { Config.default with partitioner = Config.Random_nodes 150; joiner = p } in
  let a = Build.build (cfg Config.Psg) c in
  let b = Build.build (cfg Config.Incremental) c in
  check_bool "psg exact" true (exact c a.Build.cover);
  check_bool "incremental exact" true (exact c b.Build.cover)

let test_psg_partitioned_strategies () =
  let c = small_dblp ~n:40 () in
  (* budgets from "everything in one PSG chunk" down to "every component is
     its own chunk": all must produce an exact cover and the same H̄ *)
  List.iter
    (fun budget ->
      let config =
        {
          Config.default with
          partitioner = Config.Random_nodes 120;
          joiner = Config.Psg_partitioned budget;
        }
      in
      let r = Build.build config c in
      check_bool (Printf.sprintf "budget %d exact" budget) true (exact c r.Build.cover))
    [ 1; 100; 5_000; max_int ];
  (* identical size to the BFS strategy under an unbounded budget *)
  let bfs =
    Build.build { Config.default with partitioner = Config.Random_nodes 120 } c
  in
  let part =
    Build.build
      {
        Config.default with
        partitioner = Config.Random_nodes 120;
        joiner = Config.Psg_partitioned max_int;
      }
      c
  in
  check_int "same cover size as BFS H̄" (Cover.size bfs.Build.cover)
    (Cover.size part.Build.cover)

(* {1 Hopi facade} *)

let test_hopi_queries () =
  let c = small_dblp () in
  let idx = Hopi.create c in
  check_bool "self check" true (Hopi.self_check idx);
  (* descendants of a root must include all its document's elements *)
  let did = List.hd (List.sort compare (Collection.doc_ids c)) in
  let root = Collection.doc_root_element c did in
  let desc = Hopi.descendants idx root in
  List.iter
    (fun e -> check_bool "doc element reachable from root" true (Ihs.mem desc e))
    (Collection.elements_of_doc c did);
  (* tag-filtered queries agree with tag_of *)
  List.iter
    (fun e -> check_bool "is author" true (Collection.tag_of c e = "author"))
    (Hopi.descendants_with_tag idx root "author")

let test_hopi_store_matches () =
  let c = small_dblp ~n:15 () in
  let idx = Hopi.create c in
  let store = Hopi.to_store idx (Hopi_storage.Pager.create Hopi_storage.Pager.Memory) in
  check_int "entries" (Hopi.size idx) (Hopi_storage.Cover_store.n_entries store);
  let els = ref [] in
  Collection.iter_elements c (fun e -> els := e :: !els);
  let els = Array.of_list !els in
  let rng = Splitmix.create 5 in
  for _ = 1 to 500 do
    let u = Splitmix.pick rng els and v = Splitmix.pick rng els in
    check_bool "store agrees" (Hopi.connected idx u v)
      (Hopi_storage.Cover_store.connected store u v)
  done

let test_hopi_distance_index () =
  let c = small_dblp ~n:10 () in
  let idx = Hopi.create c in
  let d = Hopi.distance_index idx in
  check_int "distance cover exact" 0
    (List.length (Verify.dist_cover_vs_graph d (Collection.element_graph c)))

(* {1 Maintenance} *)

let test_insert_document_incremental () =
  let cfg = Dblp.default ~n_docs:25 in
  let c = Collection.create () in
  (* start with the first 20 documents *)
  for i = 0 to 19 do
    match Collection.add_document_xml c ~name:(Dblp.doc_name i) (Dblp.document_xml cfg i) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "gen"
  done;
  let idx = Hopi.create c in
  (* insert the remaining 5 one by one; index must stay exact throughout *)
  for i = 20 to 24 do
    (match Hopi.insert_document_xml idx ~name:(Dblp.doc_name i) (Dblp.document_xml cfg i) with
     | Ok _ -> ()
     | Error _ -> Alcotest.fail "gen");
    check_bool (Printf.sprintf "exact after insert %d" i) true (Hopi.self_check idx)
  done

let test_insert_element_and_link () =
  let c = small_dblp ~n:8 () in
  let idx = Hopi.create c in
  let docs = List.sort compare (Collection.doc_ids c) in
  let d0 = List.nth docs 0 and d1 = List.nth docs 1 in
  let e = Hopi.insert_element idx ~doc:d0 ~parent:(Collection.doc_root_element c d0) ~tag:"note" in
  check_bool "exact after element insert" true (Hopi.self_check idx);
  (* link the new element to another document's root *)
  let r1 = Collection.doc_root_element c d1 in
  (match Hopi.insert_link idx e r1 with
   | Collection.Inter -> ()
   | _ -> Alcotest.fail "expected inter link");
  check_bool "exact after link insert" true (Hopi.self_check idx);
  check_bool "new connection" true (Hopi.connected idx e r1);
  (* and remove it again *)
  Hopi.remove_link idx e r1;
  check_bool "exact after link removal" true (Hopi.self_check idx)

let test_delete_documents_all_paths () =
  let c = small_dblp ~n:20 () in
  let idx = Hopi.create c in
  let rng = Splitmix.create 11 in
  let seen_fast = ref false and seen_general = ref false in
  for _ = 1 to 10 do
    let docs = Array.of_list (List.sort compare (Collection.doc_ids (Hopi.collection idx))) in
    let victim = Splitmix.pick rng docs in
    let stats = Hopi.remove_document idx victim in
    if stats.Maintenance.separating then seen_fast := true else seen_general := true;
    check_bool "exact after delete" true (Hopi.self_check idx)
  done;
  check_bool "exercised the fast path" true !seen_fast

let test_delete_nonseparating_document () =
  (* chain a -> b -> c plus bypass a -> c: b never separates *)
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  let _ =
    Collection.add_document c ~name:"a.xml"
      (parse
         {|<a id="r"><x xlink:href="b.xml#r"/><y xlink:href="c.xml#r"/></a>|})
  in
  let b =
    Collection.add_document c ~name:"b.xml"
      (parse {|<b id="r"><x xlink:href="c.xml#r"/></b>|})
  in
  let _ = Collection.add_document c ~name:"c.xml" (parse {|<c id="r"><p/></c>|}) in
  let idx = Hopi.create c in
  check_bool "b does not separate" false (Maintenance.separates c b);
  let stats = Hopi.remove_document idx b in
  check_bool "general path taken" false stats.Maintenance.separating;
  check_bool "still exact" true (Hopi.self_check idx);
  (* a must still reach c through the bypass *)
  let a_root = Collection.doc_root_element c (Option.get (Collection.find_doc c "a.xml")) in
  let c_root = Collection.doc_root_element c (Option.get (Collection.find_doc c "c.xml")) in
  check_bool "bypass survives" true (Hopi.connected idx a_root c_root)

let test_delete_separating_document () =
  (* pure chain a -> b -> c: b separates; after deletion a cannot reach c *)
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  let _ =
    Collection.add_document c ~name:"a.xml"
      (parse {|<a id="r"><x xlink:href="b.xml#r"/></a>|})
  in
  let b =
    Collection.add_document c ~name:"b.xml"
      (parse {|<b id="r"><x xlink:href="c.xml#r"/></b>|})
  in
  let _ = Collection.add_document c ~name:"c.xml" (parse {|<c id="r"><p/></c>|}) in
  let idx = Hopi.create c in
  check_bool "b separates" true (Maintenance.separates c b);
  let stats = Hopi.remove_document idx b in
  check_bool "fast path taken" true stats.Maintenance.separating;
  check_bool "still exact" true (Hopi.self_check idx);
  let a_root = Collection.doc_root_element c (Option.get (Collection.find_doc c "a.xml")) in
  let c_root = Collection.doc_root_element c (Option.get (Collection.find_doc c "c.xml")) in
  check_bool "disconnected" false (Hopi.connected idx a_root c_root)

let test_modify_document () =
  let c = small_dblp ~n:10 () in
  let idx = Hopi.create c in
  let docs = List.sort compare (Collection.doc_ids c) in
  let victim = List.nth docs 3 in
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let new_doc = parse {|<article id="r"><title id="t">replaced</title></article>|} in
  let did = Hopi.modify_document idx victim new_doc in
  check_bool "exact after modify" true (Hopi.self_check idx);
  check_int "replaced doc has 2 elements" 2
    (Collection.n_elements_of_doc (Hopi.collection idx) did)

let test_delete_then_reinsert_roundtrip () =
  let cfg = Dblp.default ~n_docs:12 in
  let c = Dblp.generate cfg in
  let idx = Hopi.create c in
  let docs = List.sort compare (Collection.doc_ids c) in
  let victim = List.nth docs 5 in
  let name = Collection.doc_name c victim in
  ignore (Hopi.remove_document idx victim);
  check_bool "exact after delete" true (Hopi.self_check idx);
  (match Hopi.insert_document_xml idx ~name (Dblp.document_xml cfg 5) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "reinsert failed");
  check_bool "exact after reinsert" true (Hopi.self_check idx);
  (* pending links into the document were restored *)
  check_int "no pending" 0 (Collection.pending_links (Hopi.collection idx))

let test_subtree_insert_delete () =
  let c = small_dblp ~n:10 () in
  let idx = Hopi.create c in
  let docs = List.sort compare (Collection.doc_ids c) in
  let d0 = List.nth docs 0 and d5 = List.nth docs 5 in
  let r0 = Collection.doc_root_element c d0 in
  (* graft a fragment that links to another document *)
  let fragment =
    Hopi_xml.Xml_parser.parse_string_exn
      (Printf.sprintf
         {|<appendix><note id="n1"/><cite xlink:href="%s#r"/></appendix>|}
         (Collection.doc_name c d5))
  in
  let created = Hopi.insert_subtree idx ~doc:d0 ~parent:r0 fragment in
  check_int "three elements" 3 (List.length created);
  check_bool "exact after graft" true (Hopi.self_check idx);
  let r5 = Collection.doc_root_element c d5 in
  check_bool "new cross link indexed" true (Hopi.connected idx r0 r5);
  (* delete the fragment again: the cross connection must disappear unless
     another citation provides it *)
  let recomputed = Hopi.remove_subtree idx (List.hd created) in
  ignore recomputed;
  check_bool "exact after prune" true (Hopi.self_check idx);
  let still_alive e =
    match Collection.element_info c e with
    | (_ : Collection.element_info) -> true
    | exception Invalid_argument _ -> false
  in
  check_int "grafted elements gone" 0 (List.length (List.filter still_alive created))

let test_subtree_delete_fast_path () =
  (* a subtree without outgoing links takes the pruning fast path *)
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  let d = Collection.add_document c ~name:"a.xml" (parse "<a><b><c/><d/></b><e/></a>") in
  let idx = Hopi.create c in
  let b = List.hd (Collection.elements_with_tag c "b") in
  let recomputed = Hopi.remove_subtree idx b in
  check_int "fast path" 0 recomputed;
  check_bool "exact" true (Hopi.self_check idx);
  check_int "two elements left" 2 (Collection.n_elements_of_doc c d)

let test_modify_document_diff () =
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  let _ =
    Collection.add_document c ~name:"x.xml"
      (parse {|<article id="r"><title id="t">old</title>
               <sec id="s1"><cite xlink:href="y.xml#r"/></sec>
               <sec id="s2"><p/></sec></article>|})
  in
  let y = Collection.add_document c ~name:"y.xml" (parse {|<article id="r"><p/></article>|}) in
  let idx = Hopi.create c in
  let x = Option.get (Collection.find_doc c "x.xml") in
  (* edit: drop s2, add s3 citing y, keep s1 *)
  let stats =
    Hopi.modify_document_diff idx x
      (parse {|<article id="r"><title id="t">new</title>
               <sec id="s1"><cite xlink:href="y.xml#r"/></sec>
               <sec id="s3"><cite xlink:href="y.xml#r"/></sec></article>|})
  in
  check_bool "no fallback" false stats.Maintenance.fell_back;
  check_bool "something deleted" true (stats.Maintenance.subtrees_deleted >= 1);
  check_bool "something inserted" true (stats.Maintenance.subtrees_inserted >= 1);
  check_bool "exact after diff modify" true (Hopi.self_check idx);
  (* the document id is preserved and both citations work *)
  let xr = Collection.doc_root_element c x in
  let yr = Collection.doc_root_element c y in
  check_bool "still linked" true (Hopi.connected idx xr yr)

let test_modify_document_diff_root_change_falls_back () =
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = small_dblp ~n:6 () in
  let idx = Hopi.create c in
  let victim = List.nth (List.sort compare (Collection.doc_ids c)) 2 in
  let stats = Hopi.modify_document_diff idx victim (parse "<totally-new/>") in
  check_bool "fell back" true stats.Maintenance.fell_back;
  check_bool "exact" true (Hopi.self_check idx)

let prop_diff_modify_equals_full_modify =
  QCheck2.Test.make ~name:"diff modify keeps the index exact" ~count:10
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let cfg = { (Dblp.default ~n_docs:10) with seed = seed land 0xfffff } in
      let idx = Hopi.create (Dblp.generate cfg) in
      let c = Hopi.collection idx in
      let docs = List.sort compare (Collection.doc_ids c) in
      let victim = List.nth docs (seed mod List.length docs) in
      (* re-generate the same document under a different generator seed:
         same root tag, different citations/sections *)
      let replacement =
        Hopi_xml.Xml_parser.parse_string_exn
          (Dblp.document_xml { cfg with seed = cfg.Hopi_workload.Dblp_gen.seed + 1 }
             (victim * 31 mod cfg.Hopi_workload.Dblp_gen.n_docs))
      in
      let _ = Hopi.modify_document_diff idx victim replacement in
      Hopi.self_check idx)

let test_background_rebuild () =
  let c = small_dblp ~n:20 () in
  let idx = Hopi.create c in
  (* churn the index so a rebuild has something to re-optimise *)
  let docs = List.sort compare (Collection.doc_ids c) in
  ignore (Hopi.remove_document idx (List.nth docs 3));
  ignore (Hopi.remove_document idx (List.nth docs 7));
  let size_before = Hopi.size idx in
  let h = Hopi.start_rebuild idx in
  (* queries keep being answered from the old cover while the build runs *)
  check_bool "old cover still exact" true (Hopi.self_check idx);
  check_int "cover untouched" size_before (Hopi.size idx);
  let r = Hopi.finish_rebuild idx h in
  check_bool "ready after join" true (Hopi.rebuild_ready h);
  check_int "new cover installed" (Cover.size r.Build.cover) (Hopi.size idx);
  check_bool "new cover exact" true (Hopi.self_check idx)

let test_rebuild () =
  let c = small_dblp ~n:10 () in
  let idx = Hopi.create c in
  ignore (Hopi.remove_document idx (List.hd (List.sort compare (Collection.doc_ids c))));
  let r = Hopi.rebuild idx in
  check_bool "exact after rebuild" true (Hopi.self_check idx);
  check_bool "rebuild result is current" true (Hopi.size idx = Cover.size r.Build.cover)

let prop_maintenance_random_ops =
  QCheck2.Test.make ~name:"random op sequences keep the index exact" ~count:12
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Splitmix.create seed in
      let cfg = { (Dblp.default ~n_docs:14) with seed = seed land 0xffff } in
      let idx = Hopi.create (Dblp.generate cfg) in
      let next_doc = ref cfg.Dblp.n_docs in
      let ok = ref true in
      for _ = 1 to 6 do
        let c = Hopi.collection idx in
        let docs = Array.of_list (List.sort compare (Collection.doc_ids c)) in
        (match Splitmix.int rng 4 with
         | 0 ->
           (* delete a random document *)
           if Array.length docs > 2 then
             ignore (Hopi.remove_document idx (Splitmix.pick rng docs))
         | 1 ->
           (* insert a brand-new document *)
           let i = !next_doc in
           incr next_doc;
           (match
              Hopi.insert_document_xml idx ~name:(Dblp.doc_name i)
                (Dblp.document_xml cfg i)
            with
            | Ok _ -> ()
            | Error _ -> ok := false)
         | 2 ->
           (* add a link between two random roots *)
           let d1 = Splitmix.pick rng docs and d2 = Splitmix.pick rng docs in
           let u = Collection.doc_root_element c d1
           and v = Collection.doc_root_element c d2 in
           if u <> v && not (Hopi_graph.Digraph.mem_edge (Collection.element_graph c) u v)
           then ignore (Hopi.insert_link idx u v)
         | _ ->
           (* grow a random document by one element *)
           let d = Splitmix.pick rng docs in
           ignore
             (Hopi.insert_element idx ~doc:d
                ~parent:(Collection.doc_root_element c d)
                ~tag:"extra"));
        if not (Hopi.self_check idx) then ok := false
      done;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let base_suite =
  [
    ( "core.build",
      List.map
        (fun (name, config) ->
          Alcotest.test_case name `Quick (test_build_config (name, config)))
        config_cases
      @ [
          Alcotest.test_case "inex (tree only)" `Quick test_inex_build;
          Alcotest.test_case "psg vs incremental" `Quick test_psg_vs_incremental_same_relation;
          Alcotest.test_case "psg partitioned strategies" `Quick test_psg_partitioned_strategies;
        ] );
    ( "core.hopi",
      [
        Alcotest.test_case "queries" `Quick test_hopi_queries;
        Alcotest.test_case "store agrees" `Quick test_hopi_store_matches;
        Alcotest.test_case "distance index" `Quick test_hopi_distance_index;
      ] );
    ( "core.maintenance",
      [
        Alcotest.test_case "insert documents" `Quick test_insert_document_incremental;
        Alcotest.test_case "insert element+link" `Quick test_insert_element_and_link;
        Alcotest.test_case "delete (random docs)" `Quick test_delete_documents_all_paths;
        Alcotest.test_case "delete non-separating" `Quick test_delete_nonseparating_document;
        Alcotest.test_case "delete separating" `Quick test_delete_separating_document;
        Alcotest.test_case "modify" `Quick test_modify_document;
        Alcotest.test_case "delete+reinsert" `Quick test_delete_then_reinsert_roundtrip;
        Alcotest.test_case "subtree insert/delete" `Quick test_subtree_insert_delete;
        Alcotest.test_case "subtree fast path" `Quick test_subtree_delete_fast_path;
        Alcotest.test_case "diff modify" `Quick test_modify_document_diff;
        Alcotest.test_case "diff modify fallback" `Quick
          test_modify_document_diff_root_change_falls_back;
        Alcotest.test_case "rebuild" `Quick test_rebuild;
        Alcotest.test_case "background rebuild" `Quick test_background_rebuild;
      ]
      @ qsuite [ prop_maintenance_random_ops; prop_diff_modify_equals_full_modify ] );
  ]

(* {1 Distance-aware maintenance} *)

let dist_exact c dc =
  Verify.dist_cover_vs_graph dc (Collection.element_graph c) = []

let test_dist_insert_edge () =
  let c = small_dblp ~n:8 () in
  let g = Collection.element_graph c in
  let dc, _ = Hopi_twohop.Dist_builder.build g in
  check_bool "exact initially" true (dist_exact c dc);
  (* add a shortcut link and update the distance cover incrementally *)
  let docs = List.sort compare (Collection.doc_ids c) in
  let u = Collection.doc_root_element c (List.nth docs 0) in
  let v = Collection.doc_root_element c (List.nth docs 7) in
  if not (Hopi_graph.Digraph.mem_edge g u v) then begin
    ignore (Collection.add_link c u v);
    Hopi_core.Dist_maintenance.insert_edge dc u v;
    check_bool "exact after shortcut" true (dist_exact c dc)
  end

let test_dist_insert_edge_shortens_path () =
  (* chain 0 -> 1 -> 2 -> 3; adding 0 -> 3 must drop d(0,3) from 3 to 1 and
     leave other distances intact *)
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  let _ = Collection.add_document c ~name:"a.xml"
      (parse {|<a id="r"><x xlink:href="b.xml#r"/></a>|}) in
  let _ = Collection.add_document c ~name:"b.xml"
      (parse {|<b id="r"><x xlink:href="c.xml#r"/></b>|}) in
  let _ = Collection.add_document c ~name:"c.xml" (parse {|<c id="r"/>|}) in
  let g = Collection.element_graph c in
  let dc, _ = Hopi_twohop.Dist_builder.build g in
  let ra = Collection.doc_root_element c (Option.get (Collection.find_doc c "a.xml")) in
  let rc = Collection.doc_root_element c (Option.get (Collection.find_doc c "c.xml")) in
  Alcotest.(check (option int)) "before" (Some 4) (Hopi_twohop.Dist_cover.dist dc ra rc);
  ignore (Collection.add_link c ra rc);
  Hopi_core.Dist_maintenance.insert_edge dc ra rc;
  Alcotest.(check (option int)) "after" (Some 1) (Hopi_twohop.Dist_cover.dist dc ra rc);
  check_bool "all distances exact" true (dist_exact c dc)

let test_dist_insert_document () =
  let cfg = Dblp.default ~n_docs:10 in
  let c = Collection.create () in
  for i = 0 to 7 do
    ignore (Collection.add_document_xml c ~name:(Dblp.doc_name i) (Dblp.document_xml cfg i))
  done;
  let dc, _ = Hopi_twohop.Dist_builder.build (Collection.element_graph c) in
  for i = 8 to 9 do
    let root = Hopi_xml.Xml_parser.parse_string_exn (Dblp.document_xml cfg i) in
    ignore (Hopi_core.Dist_maintenance.insert_document c dc ~name:(Dblp.doc_name i) root);
    check_bool (Printf.sprintf "exact after doc %d" i) true (dist_exact c dc)
  done

let test_dist_delete_document () =
  let c = small_dblp ~n:12 () in
  let dc, _ = Hopi_twohop.Dist_builder.build (Collection.element_graph c) in
  let rng = Splitmix.create 21 in
  let seen_fast = ref false and seen_general = ref false in
  for _ = 1 to 6 do
    let docs = Array.of_list (List.sort compare (Collection.doc_ids c)) in
    let victim = Splitmix.pick rng docs in
    let st = Hopi_core.Dist_maintenance.delete_document c dc victim in
    if st.Maintenance.separating then seen_fast := true else seen_general := true;
    check_bool "exact after dist delete" true (dist_exact c dc)
  done;
  check_bool "both paths exercised" true (!seen_fast || !seen_general)

let dist_suite =
  [
    ( "core.dist_maintenance",
      [
        Alcotest.test_case "insert edge" `Quick test_dist_insert_edge;
        Alcotest.test_case "shortcut shortens" `Quick test_dist_insert_edge_shortens_path;
        Alcotest.test_case "insert document" `Quick test_dist_insert_document;
        Alcotest.test_case "delete document" `Quick test_dist_delete_document;
      ] );
  ]



(* {1 Update traces (workload generator)} *)

let test_update_trace_replay () =
  let cfg = Dblp.default ~n_docs:15 in
  let c = Dblp.generate cfg in
  let idx = Hopi.create c in
  let ops =
    Hopi_workload.Update_gen.churn_trace ~seed:5 ~n_ops:8 (Dblp.document_xml cfg)
      (Hopi.collection idx)
  in
  check_bool "trace nonempty" true (ops <> []);
  List.iter
    (fun op ->
      let c = Hopi.collection idx in
      (match op with
       | Hopi_workload.Update_gen.Delete_doc name -> (
         match Collection.find_doc c name with
         | Some did -> ignore (Hopi.remove_document idx did)
         | None -> ())
       | Hopi_workload.Update_gen.Reinsert_doc (name, xml) ->
         if Collection.find_doc c name = None then
           (match Hopi.insert_document_xml idx ~name xml with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "bad regenerated xml")
       | Hopi_workload.Update_gen.Add_link (src, dst) -> (
         match (Collection.find_doc c src, Collection.find_doc c dst) with
         | Some ds, Some dd ->
           let u = Collection.doc_root_element c ds
           and v = Collection.doc_root_element c dd in
           if u <> v
              && not (Hopi_graph.Digraph.mem_edge (Collection.element_graph c) u v)
           then ignore (Hopi.insert_link idx u v)
         | _ -> ()));
      check_bool "exact after op" true (Hopi.self_check idx))
    ops

let deletion_trace_suite =
  [
    ( "core.update_trace",
      [ Alcotest.test_case "churn replay" `Quick test_update_trace_replay ] );
  ]


(* {1 Cyclic document-level graphs} *)

(* a citation cycle a -> b -> c -> a: every doc is both ancestor and
   descendant of every other, exercising the general deletion path and the
   distance fast-path guard *)
let cyclic_collection () =
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  let add name next =
    Collection.add_document c ~name
      (parse (Printf.sprintf {|<d id="r"><x xlink:href="%s#r"/><p/></d>|} next))
  in
  let a = add "a.xml" "b.xml" in
  let b = add "b.xml" "c.xml" in
  let cc = add "c.xml" "a.xml" in
  (c, a, b, cc)

let test_cycle_build_and_queries () =
  let c, a, _, cc = cyclic_collection () in
  let idx = Hopi.create c in
  check_bool "exact" true (Hopi.self_check idx);
  let ra = Collection.doc_root_element c a in
  let rc = Collection.doc_root_element c cc in
  check_bool "a -> c" true (Hopi.connected idx ra rc);
  check_bool "c -> a" true (Hopi.connected idx rc ra)

let test_cycle_delete_document () =
  let c, a, b, cc = cyclic_collection () in
  let idx = Hopi.create c in
  check_bool "cycle members do not separate" false (Maintenance.separates c b);
  let stats = Hopi.remove_document idx b in
  check_bool "general path" false stats.Maintenance.separating;
  check_bool "exact" true (Hopi.self_check idx);
  let ra = Collection.doc_root_element c a in
  let rc = Collection.doc_root_element c cc in
  check_bool "a no longer reaches c" false (Hopi.connected idx ra rc);
  check_bool "c still reaches a" true (Hopi.connected idx rc ra)

let test_cycle_distance_maintenance () =
  let c, _, b, _ = cyclic_collection () in
  let dc, _ = Hopi_twohop.Dist_builder.build (Collection.element_graph c) in
  (* the Anc ∩ Desc overlap must force the general path in the distance
     variant even though connectivity-wise the structure is symmetric *)
  let st = Hopi_core.Dist_maintenance.delete_document c dc b in
  check_bool "distance general path" false st.Maintenance.separating;
  check_bool "distances exact" true
    (Hopi_twohop.Verify.dist_cover_vs_graph dc (Collection.element_graph c) = [])

let test_cycle_flix () =
  let c, a, _, cc = cyclic_collection () in
  let flix = Hopi_flix.Flix.build c in
  let ra = Collection.doc_root_element c a in
  let rc = Collection.doc_root_element c cc in
  check_bool "a -> c via flix" true (Hopi_flix.Flix.connected flix ra rc);
  check_bool "c -> a via flix" true (Hopi_flix.Flix.connected flix rc ra)

let cycle_suite =
  [
    ( "core.cycles",
      [
        Alcotest.test_case "build" `Quick test_cycle_build_and_queries;
        Alcotest.test_case "delete" `Quick test_cycle_delete_document;
        Alcotest.test_case "distance delete" `Quick test_cycle_distance_maintenance;
        Alcotest.test_case "flix" `Quick test_cycle_flix;
      ] );
  ]


let test_facade_keeps_distance_index_fresh () =
  let c = small_dblp ~n:8 () in
  let idx = Hopi.create c in
  (* force the distance index into the cache *)
  let _ = Hopi.distance_index idx in
  let docs = List.sort compare (Collection.doc_ids c) in
  let u = Collection.doc_root_element c (List.nth docs 0) in
  let v = Collection.doc_root_element c (List.nth docs 6) in
  if not (Hopi_graph.Digraph.mem_edge (Collection.element_graph c) u v) then begin
    ignore (Hopi.insert_link idx u v);
    (* the cached index must have been updated in place, not rebuilt *)
    let d = Hopi.distance_index idx in
    check_int "incrementally exact" 0
      (List.length (Verify.dist_cover_vs_graph d (Collection.element_graph c)))
  end

let facade_dist_suite =
  [
    ( "core.facade_dist",
      [ Alcotest.test_case "insert keeps dist fresh" `Quick
          test_facade_keeps_distance_index_fresh ] );
  ]

let suite =
  base_suite @ dist_suite @ deletion_trace_suite @ cycle_suite @ facade_dist_suite
