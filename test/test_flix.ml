(* Tests for the FliX-style hybrid index: it must agree with BFS
   reachability over the full element graph while indexing only the
   skeleton. *)

module Collection = Hopi_collection.Collection
module Traversal = Hopi_graph.Traversal
module Flix = Hopi_flix.Flix
module Dblp = Hopi_workload.Dblp_gen
module Inex = Hopi_workload.Inex_gen
module Ihs = Hopi_util.Int_hashset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let exhaustive_check c flix =
  let g = Collection.element_graph c in
  let mismatches = ref 0 in
  Collection.iter_elements c (fun u ->
      let reach = Traversal.reachable g [ u ] in
      Collection.iter_elements c (fun v ->
          if Flix.connected flix u v <> Ihs.mem reach v then incr mismatches));
  !mismatches

let test_flix_exact_dblp () =
  let c = Dblp.generate (Dblp.default ~n_docs:25) in
  let flix = Flix.build c in
  check_int "no mismatches" 0 (exhaustive_check c flix)

let test_flix_exact_inex () =
  let c = Inex.generate { (Inex.default ~n_docs:5) with avg_elements = 40 } in
  let flix = Flix.build c in
  check_int "tree-only exact" 0 (exhaustive_check c flix);
  (* no links: skeleton cover is empty *)
  check_int "empty skeleton cover" 0 (Flix.size flix)

let test_flix_much_smaller_than_hopi () =
  let c = Dblp.generate (Dblp.default ~n_docs:40) in
  let flix = Flix.build c in
  let hopi = Hopi_core.Hopi.create c in
  check_bool "skeleton cover is smaller" true
    (Flix.size flix < Hopi_core.Hopi.size hopi);
  let st = Flix.stats flix in
  check_bool "skeleton nodes < elements" true
    (st.Flix.skeleton_nodes < Collection.n_elements c)

let test_flix_unknown_elements () =
  let c = Dblp.generate (Dblp.default ~n_docs:5) in
  let flix = Flix.build c in
  check_bool "unknown" false (Flix.connected flix 999999 0);
  check_bool "unknown2" false (Flix.connected flix 0 999999)

let prop_flix_matches_bfs =
  QCheck2.Test.make ~name:"FliX = BFS on random collections" ~count:10
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let c = Dblp.generate { (Dblp.default ~n_docs:15) with seed } in
      let flix = Flix.build c in
      exhaustive_check c flix = 0)

let suite =
  [
    ( "flix",
      [
        Alcotest.test_case "exact on dblp" `Quick test_flix_exact_dblp;
        Alcotest.test_case "exact on inex" `Quick test_flix_exact_inex;
        Alcotest.test_case "smaller than hopi" `Quick test_flix_much_smaller_than_hopi;
        Alcotest.test_case "unknown elements" `Quick test_flix_unknown_elements;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_flix_matches_bfs ] );
  ]
