(* Crash-safety tests: drive the storage engine through a fault-injecting
   Vfs and check the atomic-save contract — after a crash at ANY point of a
   save, the store reopens to either the previous committed state or the
   completed save, never to silent corruption.

   HOPI_FAULT_ITERS scales the qcheck soak (CI runs it much larger than the
   default `dune runtest`). *)

open Hopi_storage
module Fv = Hopi_fault_vfs.Fault_vfs
module Splitmix = Hopi_util.Splitmix
module Digraph = Hopi_graph.Digraph
module Closure = Hopi_graph.Closure
module Cover = Hopi_twohop.Cover

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iters =
  match Sys.getenv_opt "HOPI_FAULT_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 30)
  | None -> 30

let path = "crash.db"

(* the base index: a deterministic random DAG-ish graph over 16 nodes *)
let base_graph () =
  let rng = Splitmix.create 7 in
  let g = Digraph.create () in
  for v = 0 to 15 do
    Digraph.add_node g v
  done;
  for _ = 1 to 30 do
    let u = Splitmix.int rng 16 and v = Splitmix.int rng 16 in
    if u <> v then Digraph.add_edge g u v
  done;
  g

(* nodes 100..119 are added by phase B below; query the union domain so the
   answer matrix distinguishes pre- from post-save states *)
let domain = List.init 16 Fun.id @ List.init 20 (fun i -> 100 + i)

let matrix store =
  List.map (fun u -> List.map (fun v -> Cover_store.connected store u v) domain) domain

let reopen_matrix vfs =
  let pgr = Pager.open_vfs ~pool_pages:8 ~vfs path in
  let store = Cover_store.open_pager pgr in
  let m = matrix store in
  check_int "reopened store verifies clean" 0 (List.length (Pager.verify_pages pgr));
  m

(* Phase A: build and save the base store (fault-free). *)
let phase_a vfs =
  let cover, _ = Hopi_twohop.Builder.build (Closure.compute (base_graph ())) in
  let pgr = Pager.create_vfs ~pool_pages:8 ~vfs path in
  let store = Cover_store.create pgr in
  Cover_store.load_cover store cover;
  Cover_store.save store;
  Pager.close pgr;
  cover

(* Phase B: reopen, grow the index (small pool => mid-transaction evictions
   that overwrite committed pages), save, close.  Deterministic. *)
let phase_b vfs =
  let pgr = Pager.open_vfs ~pool_pages:8 ~vfs path in
  let store = Cover_store.open_pager pgr in
  for i = 0 to 19 do
    let v = 100 + i in
    Cover_store.add_node store v;
    Cover_store.insert_in store ~node:v ~center:(i mod 16) ~dist:0;
    Cover_store.insert_out store ~node:(i mod 16) ~center:v ~dist:0
  done;
  Cover_store.save store;
  Pager.close pgr

let setup () =
  let fv = Fv.create () in
  let vfs = Fv.vfs fv in
  let cover = phase_a vfs in
  let s1 = Fv.snapshot fv in
  (fv, vfs, cover, s1)

let test_crash_matrix () =
  let fv, vfs, cover, s1 = setup () in
  let a1 = reopen_matrix vfs in
  (* the recovered base answers = the in-memory cover (rebuild equivalence) *)
  List.iteri
    (fun i u ->
      List.iteri
        (fun j v ->
          check_bool
            (Printf.sprintf "base %d->%d = cover" u v)
            (Cover.connected cover u v)
            (List.nth (List.nth a1 i) j))
        domain)
    domain;
  (* probe the op count of a fault-free phase B *)
  Fv.restore fv s1;
  Fv.reset_ops fv;
  phase_b vfs;
  let n_ops = Fv.op_count fv in
  check_bool "phase B does real I/O" true (n_ops > 10);
  let a2 = reopen_matrix vfs in
  check_bool "phase B changes the answers" true (a1 <> a2);
  (* crash at every op index, under every crash mode, with and without a
     torn in-flight write *)
  (* the last counted op of phase B is the journal removal — the commit
     point itself — so k ranges over [0, n_ops]: every proper prefix of the
     save, plus the boundary case where the armed crash never fires *)
  let outcomes = ref (0, 0) in
  List.iter
    (fun (mode, tear) ->
      for k = 0 to n_ops do
        Fv.restore fv s1;
        Fv.reset_ops fv;
        Fv.arm_crash fv ~op:k ~mode ?tear ();
        (match phase_b vfs with
        | () ->
          if k < n_ops then Alcotest.failf "crash at op %d did not fire" k;
          Fv.disarm fv
        | exception Fv.Crash ->
          if k = n_ops then Alcotest.failf "spurious crash beyond op %d" k);
        let m = reopen_matrix vfs in
        if m = a1 then outcomes := (fst !outcomes + 1, snd !outcomes)
        else if m = a2 then outcomes := (fst !outcomes, snd !outcomes + 1)
        else Alcotest.failf "crash at op %d recovered to a third state" k
      done)
    [
      (Fv.Drop_unsynced, None);
      (Fv.Keep_unsynced, None);
      (Fv.Drop_unsynced, Some 37);  (* tear in-flight writes at a byte boundary *)
    ];
  let pre, post = !outcomes in
  check_int "matrix size" (3 * (n_ops + 1)) (pre + post);
  (* interrupted prefixes roll back; the completed save (and only it) keeps
     the new state — the commit point is the journal removal *)
  check_bool "interrupted saves roll back" true (pre > 0);
  check_int "completed saves keep the new state" 3 post

let test_fail_nth_write () =
  let fv, vfs, _, s1 = setup () in
  let a1 = reopen_matrix vfs in
  (* probe how many writes a phase B performs *)
  Fv.restore fv s1;
  Fv.reset_ops fv;
  phase_b vfs;
  (* a reported I/O error (no crash): typed Storage_error, and the store
     recovers to the pre-save state on reopen *)
  List.iter
    (fun n ->
      Fv.restore fv s1;
      Fv.reset_ops fv;
      Fv.arm_fail_write fv ~n;
      (match phase_b vfs with
      | () -> Alcotest.fail "injected write failure did not surface"
      | exception Storage_error.Storage_error (Storage_error.Io _) -> ()
      | exception e ->
        Alcotest.failf "expected Storage_error (Io _), got %s" (Printexc.to_string e));
      check_bool "recovers to pre-save state" true (reopen_matrix vfs = a1))
    [ 0; 3; 11 ]

let test_byte_flip_detected () =
  let fv, vfs, _, s1 = setup () in
  ignore s1;
  let n_bytes = Fv.durable_size fv path in
  let n_pages = n_bytes / Page.size in
  check_bool "store has pages" true (n_pages > 1);
  for id = 0 to n_pages - 1 do
    (* hit a different in-page offset each time: CRC field, flag byte and
       sliding payload positions are all covered across pages *)
    let in_page = id * 131 mod Page.size in
    Fv.restore fv s1;
    Fv.corrupt_byte fv path ~off:((id * Page.size) + in_page);
    let pgr = Pager.open_vfs ~pool_pages:8 ~vfs path in
    check_int
      (Printf.sprintf "flip in page %d at +%d detected" id in_page)
      1
      (List.length (Pager.verify_pages pgr));
    check_bool "the right page is reported" true (Pager.verify_pages pgr = [ id ])
  done;
  (* a flipped catalog byte is also rejected on the normal open path *)
  Fv.restore fv s1;
  Fv.corrupt_byte fv path ~off:(Page.payload_off + 1);
  let pgr = Pager.open_vfs ~pool_pages:8 ~vfs path in
  check_bool "catalog checksum failure raised" true
    (match Cover_store.open_pager pgr with
    | _ -> false
    | exception Storage_error.Storage_error (Storage_error.Checksum { page = 0 }) -> true)

(* qcheck soak: random store, random mutation, crash at a random op under a
   random mode/tear — recovery must equal pre- or post-save, and the base
   answers must equal an in-memory rebuild *)
let prop_crash_soak =
  let gen =
    QCheck2.Gen.(
      quad (int_range 0 1_000_000) (int_range 0 100_000) bool (int_bound (Page.size - 1)))
  in
  QCheck2.Test.make ~name:"crash soak: recovery is pre- or post-save" ~count:iters gen
    (fun (seed, kpick, drop, tear_at) ->
      let fv = Fv.create () in
      let vfs = Fv.vfs fv in
      let rng = Splitmix.create seed in
      let n = 4 + Splitmix.int rng 8 in
      let g = Digraph.create () in
      for v = 0 to n - 1 do
        Digraph.add_node g v
      done;
      for _ = 1 to 2 * n do
        let u = Splitmix.int rng n and v = Splitmix.int rng n in
        if u <> v then Digraph.add_edge g u v
      done;
      let cover, _ = Hopi_twohop.Builder.build (Closure.compute g) in
      let pgr = Pager.create_vfs ~pool_pages:8 ~vfs "soak.db" in
      let store = Cover_store.create pgr in
      Cover_store.load_cover store cover;
      Cover_store.save store;
      Pager.close pgr;
      let dom = List.init n Fun.id @ [ 200; 201; 202 ] in
      let mat st = List.map (fun u -> List.map (Cover_store.connected st u) dom) dom in
      let reopen_mat () =
        let pgr = Pager.open_vfs ~pool_pages:8 ~vfs "soak.db" in
        let st = Cover_store.open_pager pgr in
        let m = mat st in
        if Pager.verify_pages pgr <> [] then failwith "corruption after recovery";
        m
      in
      let s1 = Fv.snapshot fv in
      let mutate () =
        let r = Splitmix.create (seed lxor 0x5EED) in
        let pgr = Pager.open_vfs ~pool_pages:8 ~vfs "soak.db" in
        let st = Cover_store.open_pager pgr in
        for _ = 0 to 7 do
          let v = 200 + Splitmix.int r 3 in
          let c = Splitmix.int r n in
          Cover_store.insert_in st ~node:v ~center:c ~dist:0;
          Cover_store.insert_out st ~node:c ~center:v ~dist:0
        done;
        Cover_store.save st;
        Pager.close pgr
      in
      let a1 = reopen_mat () in
      (* rebuild equivalence of the recovered base *)
      let rebuilt =
        List.map (fun u -> List.map (fun v -> Cover.connected cover u v) dom) dom
      in
      if a1 <> rebuilt then failwith "recovered base differs from rebuild";
      Fv.restore fv s1;
      Fv.reset_ops fv;
      mutate ();
      let n_ops = Fv.op_count fv in
      let a2 = reopen_mat () in
      Fv.restore fv s1;
      Fv.reset_ops fv;
      let mode = if drop then Fv.Drop_unsynced else Fv.Keep_unsynced in
      let tear = if seed mod 3 = 0 then Some tear_at else None in
      Fv.arm_crash fv ~op:(kpick mod n_ops) ~mode ?tear ();
      (match mutate () with
      | () -> failwith "crash did not fire"
      | exception Fv.Crash -> ());
      let m = reopen_mat () in
      m = a1 || m = a2)

(* {1 Generation-flip crash matrix}

   The zero-downtime flip publishes a new generation store and commits a
   one-page manifest naming it; the manifest commit is the only atomic
   point.  Crash at every I/O op of [Manifest.publish] and
   [Manifest.rollback]: recovery must yield a manifest naming either the
   old or the new generation in full, with the named store file intact —
   never a mixture, never a stray half-written sibling. *)

let gen_base = "live.db"

let gen_dom = List.init 16 Fun.id

(* generation 0 is a 16-node chain; the churned generation closes it into
   a cycle — guaranteed to answer every (v, u<v) pair differently *)
let chain_graph () =
  let g = Digraph.create () in
  for v = 0 to 15 do
    Digraph.add_node g v
  done;
  for v = 0 to 14 do
    Digraph.add_edge g v (v + 1)
  done;
  g

let churned_graph () =
  let g = chain_graph () in
  Digraph.add_edge g 15 0;
  g

let gen_matrix vfs live =
  let pgr = Pager.open_vfs ~pool_pages:8 ~vfs (Manifest.gen_path ~base:gen_base live) in
  Fun.protect ~finally:(fun () -> Pager.close pgr) @@ fun () ->
  let st = Cover_store.open_pager pgr in
  let m = List.map (fun u -> List.map (Cover_store.connected st u) gen_dom) gen_dom in
  check_int "generation store verifies clean" 0 (List.length (Pager.verify_pages pgr));
  m

let publish_churned vfs =
  let cover, _ = Hopi_twohop.Builder.build (Closure.compute (churned_graph ())) in
  Manifest.publish ~vfs ~pool_pages:8 ~base:gen_base
    ~load:(fun pgr ->
      let st = Cover_store.create pgr in
      Cover_store.load_cover st cover;
      Cover_store.save st)
    ()

(* a crash may fire inside a [Fun.protect] finally (pager close), where the
   stdlib wraps it — both shapes are the same simulated power cut *)
let run_crashing f =
  match f () with
  | _ -> `Completed
  | exception Fv.Crash -> `Crashed
  | exception Fun.Finally_raised Fv.Crash -> `Crashed

let setup_family () =
  let fv = Fv.create () in
  let vfs = Fv.vfs fv in
  check_bool "no manifest on a fresh volume" true
    (Manifest.recover ~vfs ~base:gen_base () = None);
  let cover, _ = Hopi_twohop.Builder.build (Closure.compute (chain_graph ())) in
  let pgr = Pager.create_vfs ~pool_pages:8 ~vfs gen_base in
  let st = Cover_store.create pgr in
  Cover_store.load_cover st cover;
  Cover_store.save st;
  Pager.close pgr;
  Manifest.commit ~vfs ~base:gen_base { Manifest.live = 0; previous = 0; tip = 0 };
  (fv, vfs)

let test_flip_crash_matrix () =
  let fv, vfs = setup_family () in
  let s0 = Fv.snapshot fv in
  let a0 = gen_matrix vfs 0 in
  (* probe a fault-free publish for its op count and the new answers *)
  Fv.reset_ops fv;
  let m1 = publish_churned vfs in
  let n_ops = Fv.op_count fv in
  check_bool "publish does real I/O" true (n_ops > 10);
  check_int "publish serves the new generation" 1 m1.Manifest.live;
  check_int "old generation is the rollback target" 0 m1.Manifest.previous;
  check_int "tip advanced" 1 m1.Manifest.tip;
  let a1 = gen_matrix vfs 1 in
  check_bool "churn changes the answers" true (a0 <> a1);
  let old_new = ref (0, 0) in
  List.iter
    (fun (mode, tear) ->
      for k = 0 to n_ops do
        Fv.restore fv s0;
        Fv.reset_ops fv;
        Fv.arm_crash fv ~op:k ~mode ?tear ();
        (match run_crashing (fun () -> publish_churned vfs) with
        | `Completed ->
          if k < n_ops then Alcotest.failf "crash at op %d did not fire" k;
          Fv.disarm fv
        | `Crashed ->
          if k = n_ops then Alcotest.failf "spurious crash beyond op %d" k);
        match Manifest.recover ~vfs ~base:gen_base () with
        | None -> Alcotest.failf "manifest lost after a crash at op %d" k
        | Some m ->
          (* the manifest is all-old or all-new — and the generation it
             names answers exactly like that side of the flip *)
          (match (m.Manifest.live, m.Manifest.previous, m.Manifest.tip) with
          | 0, 0, 0 ->
            old_new := (fst !old_new + 1, snd !old_new);
            if gen_matrix vfs 0 <> a0 then
              Alcotest.failf "crash at op %d corrupted the old generation" k;
            (* an interrupted publish may leave a stray tip+1 file; recovery
               must have deleted it *)
            check_bool
              (Printf.sprintf "stray gen file removed (op %d)" k)
              false
              (vfs.Vfs.exists (Manifest.gen_path ~base:gen_base 1))
          | 1, 0, 1 ->
            old_new := (fst !old_new, snd !old_new + 1);
            if gen_matrix vfs 1 <> a1 then
              Alcotest.failf "crash at op %d corrupted the new generation" k
          | l, p, t ->
            Alcotest.failf "crash at op %d recovered to a mixed manifest {%d;%d;%d}"
              k l p t)
      done)
    [
      (Fv.Drop_unsynced, None);
      (Fv.Keep_unsynced, None);
      (Fv.Drop_unsynced, Some 37);
    ];
  let old_side, new_side = !old_new in
  check_int "matrix size" (3 * (n_ops + 1)) (old_side + new_side);
  check_bool "interrupted flips stay on the old generation" true (old_side > 0);
  check_bool "completed flips serve the new generation" true (new_side >= 3)

let test_rollback_crash_matrix () =
  let fv, vfs = setup_family () in
  ignore (publish_churned vfs);
  let a0 = gen_matrix vfs 0 and a1 = gen_matrix vfs 1 in
  let s1 = Fv.snapshot fv in
  (* probe a fault-free rollback *)
  Fv.reset_ops fv;
  let mr = Manifest.rollback ~vfs ~base:gen_base () in
  let n_ops = Fv.op_count fv in
  check_int "rollback serves the previous generation" 0 mr.Manifest.live;
  check_int "rollback keeps the flipped store" 1 mr.Manifest.previous;
  check_int "tip never rewinds" 1 mr.Manifest.tip;
  List.iter
    (fun mode ->
      for k = 0 to n_ops do
        Fv.restore fv s1;
        Fv.reset_ops fv;
        Fv.arm_crash fv ~op:k ~mode ();
        (match run_crashing (fun () -> Manifest.rollback ~vfs ~base:gen_base ()) with
        | `Completed ->
          if k < n_ops then Alcotest.failf "crash at op %d did not fire" k;
          Fv.disarm fv
        | `Crashed ->
          if k = n_ops then Alcotest.failf "spurious crash beyond op %d" k);
        match Manifest.recover ~vfs ~base:gen_base () with
        | None -> Alcotest.failf "manifest lost after a crash at op %d" k
        | Some m ->
          let expect =
            match (m.Manifest.live, m.Manifest.previous, m.Manifest.tip) with
            | 1, 0, 1 -> a1 (* rollback did not commit *)
            | 0, 1, 1 -> a0 (* rollback committed *)
            | l, p, t ->
              Alcotest.failf
                "crash at op %d recovered to a mixed manifest {%d;%d;%d}" k l p t
          in
          if gen_matrix vfs m.Manifest.live <> expect then
            Alcotest.failf "crash at op %d: generation %d answers wrong" k
              m.Manifest.live
      done)
    [ Fv.Drop_unsynced; Fv.Keep_unsynced ]

(* {1 Read-side faults}

   The shared read path (Snapshot over Pager's shared read-only pool)
   must surface injected read faults as typed [Storage_error]s — never as
   wrong answers — and a failed read must leave nothing poisoned in the
   pool: the same snapshot answers correctly once the fault clears. *)

module Snapshot = Hopi_serve.Snapshot

let snap_matrix snap =
  List.map (fun u -> List.map (fun v -> Snapshot.connected snap u v) domain) domain

let test_read_fault_matrix () =
  let fv, vfs, cover, _ = setup () in
  (* a fresh tiny single-shard pool per run: the cold workload is
     deterministic, so its read count is too *)
  let open_snap () =
    Snapshot.open_file
      ~pool:(Pager.Read_pool.create ~shards:1 ~pages:2 ())
      ~vfs ~cache_mb:0 path
  in
  let workload () =
    let snap = open_snap () in
    Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
    snap_matrix snap
  in
  let oracle = workload () in
  List.iteri
    (fun i u ->
      List.iteri
        (fun j v ->
          check_bool
            (Printf.sprintf "cold snapshot %d->%d = cover" u v)
            (Cover.connected cover u v)
            (List.nth (List.nth oracle i) j))
        domain)
    domain;
  (* probe the read count of one fault-free cold workload *)
  Fv.reset_ops fv;
  ignore (workload ());
  let n_reads = Fv.read_count fv in
  check_bool "cold workload reads pages" true (n_reads > 0);
  (* fail-read at every index: the typed Io error always surfaces — the
     deterministic workload performs exactly [n_reads] reads, so a
     swallowed fault (reaching the value branch) is a test failure *)
  for k = 0 to n_reads - 1 do
    Fv.reset_ops fv;
    Fv.arm_fail_read fv ~n:k;
    match workload () with
    | _ -> Alcotest.failf "injected failure on read %d did not surface" k
    | exception Storage_error.Storage_error (Storage_error.Io _) -> ()
    | exception e ->
      Alcotest.failf "read %d: expected Storage_error (Io _), got %s" k
        (Printexc.to_string e)
  done;
  (* torn reads (header survives, payload tail zeroed): the page checksum
     rejects the transfer — or, when the zeroed tail happens to be
     byte-identical to the stored page, the run completes and must answer
     exactly like the oracle.  Wrong answers are the one forbidden
     outcome. *)
  for k = 0 to n_reads - 1 do
    Fv.reset_ops fv;
    Fv.arm_torn_read fv ~n:k ~frag:37;
    match workload () with
    | m ->
      check_bool
        (Printf.sprintf "torn read %d never yields wrong answers" k)
        true (m = oracle)
    | exception Storage_error.Storage_error (Storage_error.Checksum _) -> ()
    | exception e ->
      Alcotest.failf "torn read %d: expected Storage_error (Checksum _), got %s"
        k (Printexc.to_string e)
  done;
  (* no pool poisoning: fault one read mid-query on a live snapshot, then
     re-ask everything on the same handle — the failed page was never
     admitted to the pool, so the retry re-reads it cleanly *)
  let snap = open_snap () in
  Fun.protect ~finally:(fun () -> Snapshot.close snap) @@ fun () ->
  Fv.reset_ops fv;
  Fv.arm_fail_read fv ~n:0;
  (match snap_matrix snap with
  | _ -> Alcotest.fail "armed read fault did not surface on the live snapshot"
  | exception Storage_error.Storage_error (Storage_error.Io _) -> ());
  check_bool "same snapshot recovers once the fault clears" true
    (snap_matrix snap = oracle)

(* {1 Spill temp files under crashes} *)

(* the build pipeline's external sorter writes hopi-spill-* temp files; a
   crash at ANY write/remove during a spilling build may orphan some of
   them (a file created but not yet recorded is invisible to [Spill.close]).
   Recovery is [Spill.cleanup_dir]: after a crash at every op index, one
   cleanup pass must leave the spill directory free of temps. *)
let spill_dir = "/spill"

let spill_temps vfs =
  List.filter
    (fun f -> String.starts_with ~prefix:Spill.temp_prefix f)
    (vfs.Vfs.list_dir spill_dir)

(* a deterministic budget-0 sorter workload: every finished run spills, the
   merge streams everything back from temp files, close removes them *)
let spill_feed vfs =
  let sp = Spill.settings ~vfs ~dir:spill_dir ~budget_bytes:0 () in
  let s = Spill.sorter sp ~tag:"crash" in
  Fun.protect ~finally:(fun () -> Spill.close s) @@ fun () ->
  let rng = Splitmix.create 3 in
  let r = Spill.run s in
  for _ = 1 to 2000 do
    Spill.add r (Splitmix.int rng 1_000)
  done;
  Spill.finish r;
  let count = ref 0 in
  Spill.merged s (fun _ -> incr count);
  (!count, Spill.stats s)

let test_spill_crash_cleanup () =
  let fv = Fv.create () in
  let vfs = Fv.vfs fv in
  (* fault-free baseline: the workload spills, merges correctly, and a clean
     close leaves no temps *)
  let merged, st = spill_feed vfs in
  check_bool "baseline merged entries" true (merged > 0);
  check_bool "baseline spilled runs" true (st.Spill.spilled_runs > 1);
  check_int "clean close leaves no temps" 0 (List.length (spill_temps vfs));
  let n_ops = Fv.op_count fv in
  check_bool "workload does real I/O" true (n_ops > 4);
  (* crash at every op index (the boundary index n_ops never fires); the
     cleanup pass must always leave the directory temp-free *)
  for k = 0 to n_ops do
    Fv.reset_ops fv;
    Fv.arm_crash fv ~op:k ~mode:Fv.Drop_unsynced ();
    (match spill_feed vfs with
    | m, _ ->
      if k < n_ops then Alcotest.failf "crash at op %d did not fire" k;
      check_int "boundary run merges the full stream" merged m;
      Fv.disarm fv
    | exception Fv.Crash -> ()
    | exception Fun.Finally_raised Fv.Crash -> ());
    ignore (Spill.cleanup_dir ~vfs spill_dir);
    (match spill_temps vfs with
    | [] -> ()
    | temps ->
      Alcotest.failf "crash at op %d orphaned %d temp(s) past cleanup" k
        (List.length temps))
  done;
  check_int "final cleanup finds nothing" 0 (Spill.cleanup_dir ~vfs spill_dir)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "storage.crash",
      [
        Alcotest.test_case "crash-at-every-step matrix" `Quick test_crash_matrix;
        Alcotest.test_case "injected write failure" `Quick test_fail_nth_write;
        Alcotest.test_case "flipped byte is detected" `Quick test_byte_flip_detected;
        Alcotest.test_case "read-fault matrix on the shared read path" `Quick
          test_read_fault_matrix;
        Alcotest.test_case "generation flip crash matrix" `Quick test_flip_crash_matrix;
        Alcotest.test_case "generation rollback crash matrix" `Quick
          test_rollback_crash_matrix;
        Alcotest.test_case "spill temp cleanup after crash" `Quick
          test_spill_crash_cleanup;
      ]
      @ qsuite [ prop_crash_soak ] );
  ]
