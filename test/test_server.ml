(* Socket front-end tests: Hopi_serve.{Repl,Frame,Server,Client}.

   Four layers:

   - Repl unit tests (the stdin/stdout loop extracted from the CLI): EOF
     and [quit] drain pending queries and end cleanly, a dead writer is a
     clean [Output_closed] outcome, control commands observe a drained
     queue, and nothing escapes as an exception;
   - deterministic protocol tests over a real Unix-socket server:
     request/control round-trips, typed error frames for malformed input,
     admission-control busy frames, request-context (connection id,
     queue wait) attribution into Reqtrace samples;
   - a qcheck protocol fuzz: random malformed/truncated/oversized frames
     and mid-frame disconnects never crash the server or poison other
     connections — a valid request on a fresh connection always still
     answers;
   - the concurrent soak: client domains hammer the socket while live
     churn flips generations underneath; every answer must match the
     oracle matrix of the generation (epoch) that served it.

   HOPI_SOAK_ITERS (flips, default 8) and HOPI_SOAK_CLIENTS (client
   domains, default 3) scale the soak; CI runs it larger. *)

module Frame = Hopi_serve.Frame
module Server = Hopi_serve.Server
module Client = Hopi_serve.Client
module Repl = Hopi_serve.Repl
module Batch = Hopi_serve.Batch
module G = Hopi_serve.Generation
module Snapshot = Hopi_serve.Snapshot
module Manifest = Hopi_storage.Manifest
module Collection = Hopi_collection.Collection
module Dblp = Hopi_workload.Dblp_gen
module Splitmix = Hopi_util.Splitmix
module Ihs = Hopi_util.Int_hashset
module Pool = Hopi_util.Pool
module Rt = Hopi_obs.Reqtrace
module Hopi = Hopi_core.Hopi
module Gen = QCheck2.Gen

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let soak_iters =
  match Sys.getenv_opt "HOPI_SOAK_ITERS" with
  | Some s -> (try max 3 (int_of_string s) with _ -> 8)
  | None -> 8

let soak_clients =
  match Sys.getenv_opt "HOPI_SOAK_CLIENTS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 3)
  | None -> 3

(* {1 Repl: the serve loop in isolation} *)

let scripted lines =
  let rem = ref lines in
  fun () ->
    match !rem with
    | [] -> None
    | x :: tl ->
      rem := tl;
      Some x

let collecting () =
  let buf = ref [] in
  ((fun line -> buf := line :: !buf), fun () -> List.rev !buf)

let echo_eval batches queries =
  batches := Array.length queries :: !batches;
  Array.map (fun _ -> Batch.Bool true) queries

let no_control _ = None

let run_repl ?(batch_size = 1) ?(control = no_control) lines =
  let write, written = collecting () in
  let batches = ref [] in
  let st =
    Repl.run ~batch_size ~read_line:(scripted lines) ~write_line:write
      ~eval:(echo_eval batches) ~control ()
  in
  (st, written (), List.rev !batches)

let test_repl_eof_drains () =
  (* EOF mid-batch: both queued queries are still answered *)
  let st, out, batches = run_repl ~batch_size:10 [ "reach 0 1"; "reach 1 2" ] in
  checki "served" 2 st.Repl.served;
  checkb "outcome is Eof" true (st.Repl.outcome = Repl.Eof);
  check Alcotest.(list string) "answers written" [ "true"; "true" ] out;
  check Alcotest.(list int) "one drained batch" [ 2 ] batches

let test_repl_quit_drains () =
  let st, out, _ =
    run_repl ~batch_size:10 [ "reach 0 1"; "quit"; "reach 9 9" ] in
  checkb "outcome is Quit" true (st.Repl.outcome = Repl.Quit);
  checki "pending answered, post-quit line unread" 1 st.Repl.served;
  check Alcotest.(list string) "answer before quit" [ "true" ] out

let test_repl_reader_error_is_eof () =
  let reads = ref 0 in
  let read_line () =
    incr reads;
    if !reads = 1 then Some "reach 0 1" else raise (Sys_error "bad read")
  in
  let write, written = collecting () in
  let batches = ref [] in
  let st =
    Repl.run ~batch_size:5 ~read_line ~write_line:write
      ~eval:(echo_eval batches) ~control:no_control ()
  in
  checkb "a broken input stream is EOF" true (st.Repl.outcome = Repl.Eof);
  check Alcotest.(list string) "pending drained" [ "true" ] (written ())

let test_repl_output_closed () =
  let write _ = raise (Sys_error "Broken pipe") in
  let batches = ref [] in
  let st =
    Repl.run ~read_line:(scripted [ "reach 0 1"; "reach 1 2" ])
      ~write_line:write ~eval:(echo_eval batches) ~control:no_control ()
  in
  (match st.Repl.outcome with
  | Repl.Output_closed reason -> check Alcotest.string "reason" "Broken pipe" reason
  | _ -> Alcotest.fail "expected Output_closed");
  checki "nothing served through a dead pipe" 0 st.Repl.served

let test_repl_control_sees_drained_queue () =
  let served_at_ctrl = ref (-1) in
  let batches = ref [] in
  let control = function
    | "probe" ->
      Some
        (fun () ->
          served_at_ctrl := List.fold_left ( + ) 0 !batches;
          "probed")
    | _ -> None
  in
  let st, out, batches' =
    let write, written = collecting () in
    let st =
      Repl.run ~batch_size:10
        ~read_line:(scripted [ "reach 0 1"; "reach 1 2"; "probe"; "reach 2 3" ])
        ~write_line:write ~eval:(echo_eval batches) ~control ()
    in
    (st, written (), List.rev !batches)
  in
  checkb "ended at EOF" true (st.Repl.outcome = Repl.Eof);
  check Alcotest.(list string) "control reply lands in input order"
    [ "true"; "true"; "probed"; "true" ]
    out;
  check Alcotest.(list int) "queue drained before the thunk ran, then again at EOF"
    [ 2; 1 ] batches';
  checki "thunk observed both earlier queries evaluated" 2 !served_at_ctrl

let test_repl_control_raising_answers_error () =
  let control = function
    | "boom" -> Some (fun () -> failwith "kaput")
    | _ -> None
  in
  let st, out, _ = run_repl ~control [ "boom"; "reach 0 1" ] in
  checkb "loop survives the thunk" true (st.Repl.outcome = Repl.Eof);
  (match out with
  | [ err; "true" ] ->
    checkb "error line" true (String.length err > 6 && String.sub err 0 6 = "error:")
  | _ -> Alcotest.failf "unexpected output: %s" (String.concat " | " out))

let test_repl_parse_error_and_comments () =
  let st, out, _ =
    run_repl [ ""; "   "; "# comment"; "bogus stuff"; "reach 0 1" ]
  in
  checki "only the valid query served" 1 st.Repl.served;
  (match out with
  | [ err; "true" ] ->
    checkb "parse failure answers error:" true
      (String.length err > 6 && String.sub err 0 6 = "error:")
  | _ -> Alcotest.failf "unexpected output: %s" (String.concat " | " out))

(* {1 A real server over a Unix socket} *)

let with_temp_dir f =
  let dir = Filename.temp_file "hopi_server" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name ->
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
    (fun () -> f dir)

let with_server ?max_inflight ?queue_depth ?max_frame_bytes handler f =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "s.sock" in
  let srv = Server.create ?max_inflight ?queue_depth ?max_frame_bytes handler in
  ignore (Server.add_listener srv (Server.Unix_socket path) : Unix.sockaddr);
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f path srv)

(* answers [true] per query line at epoch 7; control knows [ping] *)
let echo_handler =
  {
    Server.eval =
      (fun ~ctx:_ queries -> (7, Array.map (fun _ -> Batch.Bool true) queries));
    control =
      (fun cmd ->
        if String.trim cmd = "ping" then Ok "pong"
        else Error ("unknown control " ^ cmd));
  }

let expect_answers what = function
  | Ok (Client.Answers (epoch, lines)) -> (epoch, lines)
  | Ok (Client.Busy msg) -> Alcotest.failf "%s: busy (%s)" what msg
  | Ok (Client.Refused msg) -> Alcotest.failf "%s: refused (%s)" what msg
  | Error e -> Alcotest.failf "%s: %s" what e

let raw_frame ~len ~kind ~id payload =
  let b = Buffer.create (9 + String.length payload) in
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_char b kind;
  Buffer.add_int32_be b (Int32.of_int id);
  Buffer.add_string b payload;
  Buffer.to_bytes b

let test_server_roundtrip () =
  with_server echo_handler @@ fun path srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  let epoch, lines =
    expect_answers "request" (Client.request cl [ "reach 0 1"; "reach 1 2" ])
  in
  checki "handler epoch echoed" 7 epoch;
  check Alcotest.(list string) "one line per query" [ "true"; "true" ] lines;
  (* blank and comment lines inside the frame are skipped, like stdin *)
  let _, lines2 =
    expect_answers "request with comments"
      (Client.request cl [ ""; "# hi"; "reach 3 4" ])
  in
  check Alcotest.(list string) "comments skipped" [ "true" ] lines2;
  (* a parse failure answers in its slot; valid queries still evaluate *)
  let _, lines3 =
    expect_answers "mixed batch" (Client.request cl [ "bogus"; "reach 0 1" ])
  in
  (match lines3 with
  | [ err; "true" ] ->
    checkb "slot error" true (String.length err > 6 && String.sub err 0 6 = "error:")
  | _ -> Alcotest.failf "unexpected: %s" (String.concat " | " lines3));
  (* control plane *)
  (match Client.control cl "ping" with
  | Ok (Client.Answers (0, [ "pong" ])) -> ()
  | r ->
    Alcotest.failf "ping: %s"
      (match r with
      | Ok (Client.Answers (e, l)) ->
        Printf.sprintf "epoch %d: %s" e (String.concat "|" l)
      | Ok (Client.Busy m) | Ok (Client.Refused m) -> m
      | Error e -> e));
  (match Client.control cl "nope" with
  | Ok (Client.Refused _) -> ()
  | _ -> Alcotest.fail "unknown control must answer an error frame");
  (* [served] increments after the reply bytes go out, so the last
     reply can be observed before its own tick — all *earlier* requests
     are guaranteed counted *)
  checkb "requests counted" true (Server.requests_served srv >= 4)

let test_server_unknown_kind_recoverable () =
  with_server echo_handler @@ fun path _srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  Client.send_raw cl (raw_frame ~len:8 ~kind:'Z' ~id:9 "abc");
  (match Client.read_reply cl with
  | Ok (Client.Refused msg) ->
    checkb "names the kind" true
      (String.length msg > 0 && String.lowercase_ascii msg <> "")
  | r ->
    Alcotest.failf "expected an error frame, got %s"
      (match r with Ok _ -> "another reply" | Error e -> e));
  (* the stream stayed in sync: the same connection still serves *)
  let _, lines = expect_answers "after unknown kind" (Client.request cl [ "reach 0 1" ]) in
  check Alcotest.(list string) "served" [ "true" ] lines

let test_server_client_kind_frames_survive () =
  with_server echo_handler @@ fun path _srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  Client.send_raw cl (Frame.busy ~id:3 "i am not a server");
  (match Client.read_reply cl with
  | Ok (Client.Refused _) -> ()
  | _ -> Alcotest.fail "client-kind frame must answer an error frame");
  let _, lines = expect_answers "after busy frame" (Client.request cl [ "reach 0 1" ]) in
  check Alcotest.(list string) "served" [ "true" ] lines

let test_server_bad_length_closes () =
  with_server echo_handler @@ fun path _srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  Client.send_raw cl (raw_frame ~len:2 ~kind:'Q' ~id:1 "");
  (match Client.read_reply cl with
  | Ok (Client.Refused _) -> ()
  | r ->
    Alcotest.failf "expected an error frame, got %s"
      (match r with Ok _ -> "another reply" | Error e -> e));
  (match Client.read_reply cl with
  | Error _ -> () (* resync impossible: server closed the stream *)
  | Ok _ -> Alcotest.fail "expected the connection to close")

let test_server_oversized_frame_closes () =
  with_server ~max_frame_bytes:1024 echo_handler @@ fun path _srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  Client.send_raw cl (raw_frame ~len:1_000_000 ~kind:'Q' ~id:1 "");
  (match Client.read_reply cl with
  | Ok (Client.Refused _) -> ()
  | r ->
    Alcotest.failf "expected an error frame, got %s"
      (match r with Ok _ -> "another reply" | Error e -> e));
  (match Client.read_reply cl with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the connection to close")

let test_server_admission_busy () =
  let slow =
    {
      echo_handler with
      Server.eval =
        (fun ~ctx:_ queries ->
          Unix.sleepf 0.15;
          (7, Array.map (fun _ -> Batch.Bool true) queries));
    }
  in
  with_server ~max_inflight:1 ~queue_depth:4 slow @@ fun path _srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  (* two back-to-back requests: the first is admitted and evaluating, the
     second must bounce off max-inflight with a busy frame *)
  Client.send_raw cl (Frame.request ~id:1 [ "reach 0 1" ]);
  Client.send_raw cl (Frame.request ~id:2 [ "reach 0 1" ]);
  let r1 = Client.read_reply cl in
  let r2 = Client.read_reply cl in
  let classify = function
    | Ok (Client.Answers _) -> `A
    | Ok (Client.Busy _) -> `B
    | Ok (Client.Refused m) -> Alcotest.failf "refused: %s" m
    | Error e -> Alcotest.failf "conversation broke: %s" e
  in
  (match (classify r1, classify r2) with
  | `B, `A | `A, `B -> ()
  | `A, `A -> Alcotest.fail "second request should have been rejected busy"
  | `B, `B -> Alcotest.fail "at least one request should have been served");
  (* the rejected frame was not dropped silently and the connection is
     healthy: the next request serves normally *)
  let _, lines = expect_answers "after busy" (Client.request cl [ "reach 0 1" ]) in
  check Alcotest.(list string) "served" [ "true" ] lines

let test_server_ctx_reaches_reqtrace () =
  (* the socket path must attribute connection id and queue wait into
     Reqtrace samples end to end *)
  Rt.reset_slowlog ();
  Rt.set_slow_threshold_ns 0;
  Fun.protect ~finally:(fun () -> Rt.disable_slowlog ()) @@ fun () ->
  let eval ~ctx queries =
    (7, Array.map (fun q -> Batch.eval_engine ~ctx
                     {
                       Batch.connected = (fun _ _ -> true);
                       min_distance = (fun _ _ -> Some 0);
                       descendants = (fun _ -> Ihs.create ());
                       ancestors = (fun _ -> Ihs.create ());
                       path_eval = None;
                     }
                     q) queries)
  in
  with_server { echo_handler with Server.eval } @@ fun path _srv ->
  let cl = Client.connect_unix path in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  let _, _ = expect_answers "traced" (Client.request cl [ "reach 1 2" ]) in
  let samples = Rt.slowlog () in
  checkb "a sample was captured" true (samples <> []);
  checkb "sample carries the connection id" true
    (List.exists (fun s -> s.Rt.conn > 0 && s.Rt.queue_wait_ns >= 0) samples)

(* {1 Protocol fuzz}

   Random hostile byte streams.  The server may answer a typed error
   frame and may close the hostile connection — but must never crash,
   hang, or poison an innocent connection opened right after. *)

type attack =
  | Garbage of string
  | Bad_length of int
  | Oversized of int
  | Unknown_kind of char * string
  | Truncated of int * string
  | Client_kind of int

let pp_attack = function
  | Garbage s -> Printf.sprintf "garbage(%d bytes)" (String.length s)
  | Bad_length n -> Printf.sprintf "bad-length(%d)" n
  | Oversized n -> Printf.sprintf "oversized(%d)" n
  | Unknown_kind (c, _) -> Printf.sprintf "unknown-kind(%C)" c
  | Truncated (claim, s) -> Printf.sprintf "truncated(%d of %d)" (String.length s) claim
  | Client_kind id -> Printf.sprintf "client-kind(id %d)" id

let gen_attack =
  let open Gen in
  oneof
    [
      (string_size ~gen:(char_range '\000' '\255') (int_range 0 48) >|= fun s -> Garbage s);
      (int_range 0 4 >|= fun n -> Bad_length n);
      (int_range 5_000 100_000 >|= fun n -> Oversized n);
      ( pair (char_range 'a' 'z') (string_size (int_range 0 20)) >|= fun (c, s) ->
        Unknown_kind (c, s) );
      ( pair (int_range 20 200) (string_size (int_range 0 10)) >|= fun (claim, s) ->
        Truncated (claim, s) );
      (int_range 0 1000 >|= fun id -> Client_kind id);
    ]

let attack_bytes = function
  | Garbage s -> Bytes.of_string s
  | Bad_length n -> raw_frame ~len:n ~kind:'Q' ~id:1 ""
  | Oversized n -> raw_frame ~len:n ~kind:'Q' ~id:1 ""
  | Unknown_kind (c, payload) ->
    raw_frame ~len:(5 + String.length payload) ~kind:c ~id:2 payload
  | Truncated (claim, partial) -> raw_frame ~len:claim ~kind:'Q' ~id:3 partial
  | Client_kind id -> Frame.error ~id "spoofed"

let prop_fuzz_never_poisons =
  QCheck2.Test.make ~name:"hostile frames never crash or poison the server"
    ~count:8
    Gen.(list_size (int_range 1 10) gen_attack)
    (fun attacks ->
      with_server ~max_frame_bytes:4096 echo_handler @@ fun path _srv ->
      List.iter
        (fun attack ->
          let hostile = Client.connect_unix path in
          (try Client.send_raw hostile (attack_bytes attack)
           with Unix.Unix_error _ -> () (* server already hung up: fine *));
          (* an innocent connection opened while the hostile one is still
             open must serve normally *)
          let innocent = Client.connect_unix path in
          (match Client.request innocent [ "reach 0 1" ] with
          | Ok (Client.Answers (7, [ "true" ])) -> ()
          | Ok (Client.Answers _) ->
            QCheck2.Test.fail_reportf "%s: wrong answer on innocent connection"
              (pp_attack attack)
          | Ok (Client.Busy m) | Ok (Client.Refused m) ->
            QCheck2.Test.fail_reportf "%s: innocent connection got %s"
              (pp_attack attack) m
          | Error e ->
            QCheck2.Test.fail_reportf "%s: innocent connection broke: %s"
              (pp_attack attack) e);
          Client.close innocent;
          (* mid-frame disconnect for Truncated and friends *)
          Client.close hostile)
        attacks;
      true)

(* {1 The concurrent soak}

   A generation family serves over the socket; [soak_clients] domains
   hammer it with reach batches while the main thread applies link churn
   and flips.  The epoch in each response frame selects the oracle matrix
   the answers must match — a response computed on generation [g] must be
   exactly generation [g]'s truth, no matter when the flip landed. *)

let with_gen_base f =
  let base = Filename.temp_file "hopi_test_server" ".db" in
  Sys.remove base;
  Fun.protect
    ~finally:(fun () ->
      let rm p = if Sys.file_exists p then Sys.remove p in
      let m = Manifest.path ~base in
      rm m;
      rm (m ^ "-journal");
      for k = 0 to 64 do
        let p = Manifest.gen_path ~base k in
        rm p;
        rm (p ^ "-journal")
      done)
    (fun () -> f base)

let elements c =
  let acc = ref [] in
  Collection.iter_elements c (fun e -> acc := e :: !acc);
  Array.of_list (List.sort compare !acc)

let test_socket_soak () =
  with_gen_base @@ fun base ->
  let c = Dblp.generate (Dblp.default ~n_docs:6) in
  let idx = Hopi.create c in
  let gen = G.create ~fsync:false ~cache_mb:8 ~base idx in
  let dom = elements c in
  let n = Array.length dom in
  let matrix () =
    Array.map (fun u -> Array.map (fun v -> Hopi.connected idx u v) dom) dom
  in
  let max_gens = (2 * soak_iters) + 8 in
  let oracles = Array.make max_gens None in
  oracles.(0) <- Some (matrix ());
  let stop = Atomic.make false in
  let total = Atomic.make 0 in
  let busy = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let err_mu = Mutex.create () in
  let errs = ref [] in
  let record_err msg =
    Atomic.incr failures;
    Mutex.lock err_mu;
    if List.length !errs < 5 then errs := msg :: !errs;
    Mutex.unlock err_mu
  in
  let epochs = Array.init soak_clients (fun _ -> Ihs.create ()) in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let eval ~ctx queries =
    G.with_snapshot gen (fun snap ->
        ( Snapshot.epoch snap,
          Batch.eval_batch_engine ~ctx ~pool (Batch.engine_of_snapshot snap)
            queries ))
  in
  let handler = { Server.eval; control = (fun _ -> Error "no control") } in
  with_server ~max_inflight:256 ~queue_depth:64 handler @@ fun path srv ->
  let client k =
    Domain.spawn (fun () ->
        let rng = Splitmix.create (0x50AB0 lxor (k * 7919)) in
        let seen = epochs.(k) in
        try
          let cl = Client.connect_unix path in
          Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
          while not (Atomic.get stop) do
            let pairs =
              List.init 12 (fun _ ->
                  (Splitmix.int rng n, Splitmix.int rng n))
            in
            let lines =
              List.map
                (fun (i, j) -> Printf.sprintf "reach %d %d" dom.(i) dom.(j))
                pairs
            in
            match Client.request cl lines with
            | Ok (Client.Answers (epoch, answers)) -> (
              Ihs.add seen epoch;
              if List.length answers <> List.length pairs then
                record_err
                  (Printf.sprintf "client %d: %d answers to %d queries" k
                     (List.length answers) (List.length pairs))
              else
                match
                  if epoch < 0 || epoch >= max_gens then None
                  else oracles.(epoch)
                with
                | None ->
                  record_err
                    (Printf.sprintf "client %d: no oracle for epoch %d" k epoch)
                | Some m ->
                  List.iter2
                    (fun (i, j) got ->
                      let want = string_of_bool m.(i).(j) in
                      if got <> want then
                        record_err
                          (Printf.sprintf
                             "client %d: epoch %d answers %d -> %d as %s, \
                              oracle says %s"
                             k epoch dom.(i) dom.(j) got want);
                      Atomic.incr total)
                    pairs answers)
            | Ok (Client.Busy _) ->
              Atomic.incr busy;
              Unix.sleepf 0.002
            | Ok (Client.Refused msg) ->
              record_err (Printf.sprintf "client %d: refused: %s" k msg)
            | Error e ->
              if not (Atomic.get stop) then
                record_err (Printf.sprintf "client %d: %s" k e)
          done
        with exn ->
          record_err
            (Printf.sprintf "client %d died: %s" k (Printexc.to_string exn)))
  in
  let clients = List.init soak_clients client in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      Atomic.set stop true;
      List.iter Domain.join clients
    end
  in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  Fun.protect ~finally:finish @@ fun () ->
  let wait_queries target =
    while Atomic.get total < target && Atomic.get failures = 0 do
      Domain.cpu_relax ()
    done
  in
  wait_queries (24 * soak_clients);
  let rng = Splitmix.create 99 in
  let links = ref [] in
  let flips = ref 0 in
  while !flips < soak_iters && Atomic.get failures = 0 do
    for _ = 1 to 5 do
      match !links with
      | (u, v) :: rest when Splitmix.int rng 4 = 0 ->
        links := rest;
        ignore (G.apply gen (G.Del_link (u, v)))
      | _ ->
        let u = dom.(Splitmix.int rng n) and v = dom.(Splitmix.int rng n) in
        (match G.apply gen (G.Add_link (u, v)) with
        | Ok _ -> links := (u, v) :: !links
        | Error _ -> ())
    done;
    let g_next = G.tip gen + 1 in
    oracles.(g_next) <- Some (matrix ());
    let st = G.flip gen in
    checki "flip publishes the announced generation" g_next st.G.generation;
    incr flips;
    wait_queries (Atomic.get total + (96 * soak_clients))
  done;
  finish ();
  (match !errs with
  | [] -> ()
  | msgs ->
    Alcotest.failf "%d soak failures, e.g.:\n  %s" (Atomic.get failures)
      (String.concat "\n  " (List.rev msgs)));
  checki "zero inconsistent answers" 0 (Atomic.get failures);
  checkb "flips happened" true (!flips >= 3);
  checkb "clients made progress" true (Atomic.get total > 0);
  checkb "server served the load" true (Server.requests_served srv > 0);
  let distinct =
    let u = Ihs.create () in
    Array.iter (fun s -> List.iter (Ihs.add u) (Ihs.to_list s)) epochs;
    List.length (Ihs.to_list u)
  in
  checkb "responses spanned multiple generations" true (distinct >= 2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "serve.repl",
      [
        Alcotest.test_case "EOF drains pending queries" `Quick test_repl_eof_drains;
        Alcotest.test_case "quit drains and stops" `Quick test_repl_quit_drains;
        Alcotest.test_case "broken input stream is EOF" `Quick
          test_repl_reader_error_is_eof;
        Alcotest.test_case "dead writer is a clean Output_closed" `Quick
          test_repl_output_closed;
        Alcotest.test_case "control commands observe a drained queue" `Quick
          test_repl_control_sees_drained_queue;
        Alcotest.test_case "a raising control thunk answers error:" `Quick
          test_repl_control_raising_answers_error;
        Alcotest.test_case "parse errors, blanks and comments" `Quick
          test_repl_parse_error_and_comments;
      ] );
    ( "serve.socket",
      [
        Alcotest.test_case "request/control round-trip" `Quick test_server_roundtrip;
        Alcotest.test_case "unknown frame kind is recoverable" `Quick
          test_server_unknown_kind_recoverable;
        Alcotest.test_case "client-kind frames answer errors, stream survives"
          `Quick test_server_client_kind_frames_survive;
        Alcotest.test_case "unbelievable length closes the stream" `Quick
          test_server_bad_length_closes;
        Alcotest.test_case "oversized frame closes the stream" `Quick
          test_server_oversized_frame_closes;
        Alcotest.test_case "admission control answers busy" `Quick
          test_server_admission_busy;
        Alcotest.test_case "connection id and queue wait reach Reqtrace" `Quick
          test_server_ctx_reaches_reqtrace;
      ]
      @ qsuite [ prop_fuzz_never_poisons ] );
    ( "serve.socket-soak",
      [ Alcotest.test_case "churn under socket load" `Slow test_socket_soak ] );
  ]
