(* K-shard scatter-gather routing tests: Hopi_serve.Router.

   The load-bearing one is the qcheck differential: random collections
   split at K ∈ 1..4 (plain and distance-aware) must answer every
   reach/dist/desc/anc query byte-identically to the unsharded oracle —
   the reflexive-transitive closure (and all-pairs BFS distances) of the
   whole element graph, i.e. exactly what one Cover_store over the whole
   collection serves.  Cross-shard pairs go through the replicated PSG
   closure; the differential covers that path by construction (DBLP
   citations cross documents, documents are spread over shards). *)

module Router = Hopi_serve.Router
module Batch = Hopi_serve.Batch
module Collection = Hopi_collection.Collection
module Closure = Hopi_graph.Closure
module Shortest = Hopi_graph.Shortest
module Dblp = Hopi_workload.Dblp_gen
module Splitmix = Hopi_util.Splitmix
module Ihs = Hopi_util.Int_hashset
module Int_set = Hopi_util.Int_set
module Gen = QCheck2.Gen

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_temp_dir f =
  let dir = Filename.temp_file "hopi_shard" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name ->
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
    (fun () -> f dir)

let elements c =
  let acc = ref [] in
  Collection.iter_elements c (fun e -> acc := e :: !acc);
  Array.of_list (List.sort compare !acc)

let sorted_of_ihs s = List.sort compare (Ihs.to_list s)

(* {1 Deterministic shape checks} *)

let test_split_layout () =
  with_temp_dir @@ fun dir ->
  let c = Dblp.generate (Dblp.default ~n_docs:9) in
  let st = Router.split ~k:3 ~dir c in
  checki "k shards" 3 st.Router.shards;
  checki "every element assigned" (Collection.n_elements c) st.Router.elements;
  checkb "routing index written" true (Sys.file_exists (Router.routing_path ~dir));
  for s = 0 to 2 do
    checkb
      (Printf.sprintf "shard %d store written" s)
      true
      (Sys.file_exists (Router.shard_path ~dir s))
  done;
  let r = Router.open_dir dir in
  Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
  checki "n_shards round-trips" 3 (Router.n_shards r);
  checkb "plain split" false (Router.with_dist r);
  checki "n_nodes round-trips" st.Router.elements (Router.n_nodes r);
  checki "n_entries round-trips" st.Router.entries (Router.n_entries r);
  let dom = elements c in
  Array.iter
    (fun e ->
      match Router.shard_of r e with
      | Some s -> checkb "shard id in range" true (s >= 0 && s < 3)
      | None -> Alcotest.failf "element %d lost its shard" e)
    dom;
  check
    Alcotest.(option int)
    "unknown id has no shard" None
    (Router.shard_of r (Array.fold_left max 0 dom + 17))

let test_split_clamps_k () =
  with_temp_dir @@ fun dir ->
  let c = Dblp.generate (Dblp.default ~n_docs:2) in
  let st = Router.split ~k:8 ~dir c in
  checki "k clamped to the document count" 2 st.Router.shards;
  let r = Router.open_dir dir in
  Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
  checki "opened with the clamped count" 2 (Router.n_shards r)

let test_unknown_ids_mirror_store () =
  with_temp_dir @@ fun dir ->
  let c = Dblp.generate (Dblp.default ~n_docs:4) in
  ignore (Router.split ~k:2 ~dir c : Router.split_stats);
  let r = Router.open_dir dir in
  Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
  let dom = elements c in
  let ghost = Array.fold_left max 0 dom + 23 in
  checkb "ghost -> known unreachable" false (Router.connected r ghost dom.(0));
  checkb "known -> ghost unreachable" false (Router.connected r dom.(0) ghost);
  checkb "ghost not self-reachable" false (Router.connected r ghost ghost);
  check Alcotest.(option int) "ghost distance" None (Router.min_distance r ghost dom.(0));
  checkb "ghost descendants empty" true (Ihs.is_empty (Router.descendants r ghost));
  checkb "ghost ancestors empty" true (Ihs.is_empty (Router.ancestors r ghost))

(* The Batch engine over the router renders exactly like direct calls. *)
let test_engine_rendering () =
  with_temp_dir @@ fun dir ->
  let c = Dblp.generate (Dblp.default ~n_docs:6) in
  ignore (Router.split ~dist:true ~k:3 ~dir c : Router.split_stats);
  let r = Router.open_dir dir in
  Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
  let eng = Router.engine r in
  let dom = elements c in
  Array.iter
    (fun u ->
      let v = dom.(0) in
      check Alcotest.string "reach renders"
        (string_of_bool (Router.connected r u v))
        (Batch.render (Batch.eval_engine eng (Batch.Reach (u, v))));
      check Alcotest.string "dist renders"
        (match Router.min_distance r u v with
        | Some d -> string_of_int d
        | None -> "unreachable")
        (Batch.render (Batch.eval_engine eng (Batch.Dist (u, v))));
      check Alcotest.string "desc renders"
        (string_of_int (Ihs.cardinal (Router.descendants r u)))
        (Batch.render (Batch.eval_engine eng (Batch.Desc u)));
      check Alcotest.string "path needs an evaluator"
        "error: path queries need a corpus (serve --corpus DIR)"
        (Batch.render (Batch.eval_engine eng (Batch.Path "//a"))))
    (Array.sub dom 0 (min 8 (Array.length dom)))

(* {1 The differential}

   Oracle: closure + all-pairs BFS of the whole element graph.  A plain
   unsharded Cover_store answers [connected] by closure membership and
   [min_distance] as [Some 0] for reachable pairs; a distance-aware one
   answers true shortest distances.  The router must match for any K. *)

let gen_case =
  let open Gen in
  int_range 4 14 >>= fun n_docs ->
  int_range 0 1_000_000 >>= fun seed ->
  float_range 1.0 6.0 >>= fun avg_citations ->
  float_range 0.0 0.3 >>= fun forward_fraction ->
  int_range 1 4 >>= fun k ->
  bool >|= fun dist ->
  ({ (Dblp.default ~n_docs) with seed; avg_citations; forward_fraction }, k, dist)

let prop_differential =
  QCheck2.Test.make ~name:"K-shard routing = unsharded oracle" ~count:8 gen_case
    (fun (cfg, k, dist) ->
      with_temp_dir @@ fun dir ->
      let c = Dblp.generate cfg in
      ignore (Router.split ~dist ~k ~dir c : Router.split_stats);
      let r = Router.open_dir ~cache_mb:4 dir in
      Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
      let g = Collection.element_graph c in
      let clo = Closure.compute g in
      let sp = if dist then Some (Shortest.all_pairs g) else None in
      let dom = elements c in
      let n = Array.length dom in
      let ghost = Array.fold_left max 0 dom + 31 in
      let check_pair u v =
        let want_reach = u <> ghost && v <> ghost && Closure.mem clo u v in
        if Router.connected r u v <> want_reach then
          QCheck2.Test.fail_reportf "k=%d dist=%b: reach %d -> %d should be %b"
            k dist u v want_reach;
        let want_dist =
          if not want_reach then None
          else
            match sp with None -> Some 0 | Some sp -> Shortest.dist sp u v
        in
        let got_dist = Router.min_distance r u v in
        if got_dist <> want_dist then
          QCheck2.Test.fail_reportf
            "k=%d dist=%b: dist %d -> %d is %s, oracle says %s" k dist u v
            (match got_dist with Some d -> string_of_int d | None -> "unreachable")
            (match want_dist with Some d -> string_of_int d | None -> "unreachable")
      in
      (* all pairs on small domains, a seeded sample on large ones *)
      if n <= 70 then
        Array.iter (fun u -> Array.iter (fun v -> check_pair u v) dom) dom
      else begin
        let rng = Splitmix.create (cfg.Dblp.seed + (k * 131)) in
        for _ = 1 to 4000 do
          check_pair dom.(Splitmix.int rng n) dom.(Splitmix.int rng n)
        done
      end;
      Array.iter (fun u -> check_pair u ghost) (Array.sub dom 0 (min 5 n));
      check_pair ghost dom.(0);
      check_pair ghost ghost;
      (* full descendant/ancestor sets, element by element *)
      Array.iter
        (fun u ->
          let want_desc = Int_set.to_list (Closure.succs clo u) in
          let got_desc = sorted_of_ihs (Router.descendants r u) in
          if got_desc <> want_desc then
            QCheck2.Test.fail_reportf
              "k=%d dist=%b: desc %d has %d members, oracle %d" k dist u
              (List.length got_desc) (List.length want_desc);
          let want_anc = Int_set.to_list (Closure.preds clo u) in
          let got_anc = sorted_of_ihs (Router.ancestors r u) in
          if got_anc <> want_anc then
            QCheck2.Test.fail_reportf
              "k=%d dist=%b: anc %d has %d members, oracle %d" k dist u
              (List.length got_anc) (List.length want_anc))
        dom;
      true)

(* Reopening the directory serves identical answers: the routing index
   and shard stores round-trip through disk, nothing lives only in the
   splitting process's memory. *)
let prop_reopen_stable =
  QCheck2.Test.make ~name:"shard dir round-trips through disk" ~count:4
    Gen.(pair (int_range 0 1_000_000) (int_range 1 3))
    (fun (seed, k) ->
      with_temp_dir @@ fun dir ->
      let c = Dblp.generate { (Dblp.default ~n_docs:6) with seed } in
      ignore (Router.split ~dist:true ~k ~dir c : Router.split_stats);
      let dom = elements c in
      let sample r =
        Array.map
          (fun u ->
            ( Router.min_distance r u dom.(0),
              Ihs.cardinal (Router.descendants r u) ))
          dom
      in
      let r1 = Router.open_dir dir in
      let s1 = sample r1 in
      Router.close r1;
      let r2 = Router.open_dir dir in
      let s2 = sample r2 in
      Router.close r2;
      if s1 <> s2 then QCheck2.Test.fail_report "answers changed across reopen";
      true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "serve.router",
      [
        Alcotest.test_case "split writes the layout; open round-trips" `Quick
          test_split_layout;
        Alcotest.test_case "k clamps to the document count" `Quick
          test_split_clamps_k;
        Alcotest.test_case "unknown ids answer like a store" `Quick
          test_unknown_ids_mirror_store;
        Alcotest.test_case "batch engine over the router" `Quick
          test_engine_rendering;
      ]
      @ qsuite [ prop_differential; prop_reopen_stable ] );
  ]
