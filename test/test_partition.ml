(* Tests for hopi_partition: weights and the two partitioners. *)

open Hopi_partition
module Collection = Hopi_collection.Collection
module Partitioning = Hopi_collection.Partitioning
module Closure = Hopi_graph.Closure
module Dblp = Hopi_workload.Dblp_gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let dblp n = Dblp.generate (Dblp.default ~n_docs:n)

let test_weights_schemes () =
  let c = dblp 20 in
  List.iter
    (fun scheme ->
      let dg = Weights.doc_graph c scheme in
      (* every inter-document link contributes positive weight *)
      List.iter
        (fun (u, v) ->
          let du = Collection.doc_of_element c u
          and dv = Collection.doc_of_element c v in
          check_bool
            (Printf.sprintf "%s weight > 0" (Weights.scheme_name scheme))
            true
            (Hopi_collection.Doc_graph.edge_weight dg du dv > 0.0))
        (Collection.inter_links c))
    Weights.all_schemes

let test_weights_ad_exceeds_links () =
  let c = dblp 20 in
  let links = Weights.doc_graph c Weights.Links in
  let ad = Weights.doc_graph c Weights.A_times_D in
  (* A*D counts connections, never less than the plain link count *)
  Hashtbl.iter
    (fun (u, v) w ->
      check_bool "A*D >= links" true
        (Hopi_collection.Doc_graph.edge_weight ad u v >= w))
    links.Hopi_collection.Doc_graph.edge_weight

let test_random_partitioner_limit () =
  let c = dblp 40 in
  let dg = Weights.doc_graph c Weights.Links in
  let limit = 60 in
  let p = Random_partitioner.partition ~seed:7 ~max_elements:limit c dg in
  Partitioning.check p c;
  Array.iter
    (fun docs ->
      let elements =
        List.fold_left (fun acc d -> acc + Collection.n_elements_of_doc c d) 0 docs
      in
      (* a single oversized document may exceed the limit; groups of two or
         more must respect it *)
      if List.length docs > 1 then
        check_bool "within element limit" true (elements <= limit))
    p.Partitioning.docs_of_part

let test_random_partitioner_deterministic () =
  let c = dblp 30 in
  let dg = Weights.doc_graph c Weights.Links in
  let p1 = Random_partitioner.partition ~seed:3 ~max_elements:100 c dg in
  let p2 = Random_partitioner.partition ~seed:3 ~max_elements:100 c dg in
  check_int "same partition count" p1.Partitioning.n p2.Partitioning.n;
  check_int "same crossing links"
    (List.length p1.Partitioning.cross_links)
    (List.length p2.Partitioning.cross_links)

let test_closure_partitioner_limit () =
  let c = dblp 40 in
  let dg = Weights.doc_graph c Weights.A_times_D in
  let limit = 2000 in
  let p = Closure_partitioner.partition ~seed:7 ~max_connections:limit c dg in
  Partitioning.check p c;
  Array.iter
    (fun docs ->
      if List.length docs > 1 then begin
        let keep = Hopi_util.Int_hashset.create () in
        List.iter
          (fun d -> List.iter (Hopi_util.Int_hashset.add keep) (Collection.elements_of_doc c d))
          docs;
        let g = Hopi_graph.Digraph.induced_subgraph (Collection.element_graph c) keep in
        check_bool "within connection limit" true
          (Closure.count_connections g <= limit)
      end)
    p.Partitioning.docs_of_part

let test_closure_partitioner_packs_more () =
  (* with a generous budget the closure-aware partitioner should produce
     fewer partitions than a conservative node-count limit *)
  let c = dblp 40 in
  let dg = Weights.doc_graph c Weights.Links in
  let pr = Random_partitioner.partition ~seed:7 ~max_elements:60 c dg in
  let pc = Closure_partitioner.partition ~seed:7 ~max_connections:20_000 c dg in
  check_bool "fewer partitions" true (pc.Partitioning.n <= pr.Partitioning.n)

let suite =
  [
    ( "partition.weights",
      [
        Alcotest.test_case "schemes positive" `Quick test_weights_schemes;
        Alcotest.test_case "A*D >= links" `Quick test_weights_ad_exceeds_links;
      ] );
    ( "partition.random",
      [
        Alcotest.test_case "limit" `Quick test_random_partitioner_limit;
        Alcotest.test_case "deterministic" `Quick test_random_partitioner_deterministic;
      ] );
    ( "partition.closure",
      [
        Alcotest.test_case "limit" `Quick test_closure_partitioner_limit;
        Alcotest.test_case "packs more" `Quick test_closure_partitioner_packs_more;
      ] );
  ]
