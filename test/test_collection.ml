(* Tests for hopi_collection: Collection, Doc_graph, Skeleton, Partitioning,
   Psg. *)

open Hopi_collection
module Digraph = Hopi_graph.Digraph
module Traversal = Hopi_graph.Traversal
module Ihs = Hopi_util.Int_hashset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Hopi_xml.Xml_parser.parse_string_exn

(* Three documents as in the paper's Figure 1 spirit: d1 cites d2 and d3,
   d2 cites d3, plus an intra-document link in d1. *)
let doc1 =
  {|<article id="r"><title id="t"/><sec><cite xlink:href="d2.xml#r"/></sec>
    <sec><cite xlink:href="d3.xml"/><back idref="t"/></sec></article>|}

let doc2 = {|<article id="r"><body><cite xlink:href="d3.xml"/></body></article>|}

let doc3 = {|<article id="r"><body><p/><p/></body></article>|}

let make_collection () =
  let c = Collection.create () in
  let d1 = Collection.add_document c ~name:"d1.xml" (parse doc1) in
  let d2 = Collection.add_document c ~name:"d2.xml" (parse doc2) in
  let d3 = Collection.add_document c ~name:"d3.xml" (parse doc3) in
  (c, d1, d2, d3)

(* {1 Collection basics} *)

let test_counts () =
  let c, d1, d2, d3 = make_collection () in
  check_int "docs" 3 (Collection.n_docs c);
  check_int "d1 elements" 7 (Collection.n_elements_of_doc c d1);
  check_int "d2 elements" 3 (Collection.n_elements_of_doc c d2);
  check_int "d3 elements" 4 (Collection.n_elements_of_doc c d3);
  check_int "total" 14 (Collection.n_elements c);
  check_int "inter links" 3 (Collection.n_inter_links c);
  check_int "all links" 4 (Collection.n_links c);
  check_int "intra of d1" 1 (List.length (Collection.intra_links_of_doc c d1));
  check_int "no pending" 0 (Collection.pending_links c);
  ignore (d2, d3)

let test_forward_references () =
  (* d1 references d2 before d2 exists: pending, then resolved *)
  let c = Collection.create () in
  ignore (Collection.add_document c ~name:"d1.xml" (parse doc1));
  check_int "pending until targets exist" 2 (Collection.pending_links c);
  ignore (Collection.add_document c ~name:"d2.xml" (parse doc2));
  (* d1 -> d2 resolved, but d2 brings its own reference to d3 *)
  check_int "two pending left" 2 (Collection.pending_links c);
  ignore (Collection.add_document c ~name:"d3.xml" (parse doc3));
  check_int "all resolved" 0 (Collection.pending_links c);
  check_int "links" 3 (Collection.n_inter_links c)

let test_element_graph_reachability () =
  let c, d1, _, d3 = make_collection () in
  let g = Collection.element_graph c in
  let r1 = Collection.doc_root_element c d1 in
  let r3 = Collection.doc_root_element c d3 in
  check_bool "d1 root reaches d3 root via links" true (Traversal.is_reachable g r1 r3);
  check_bool "no back edge" false (Traversal.is_reachable g r3 r1)

let test_element_info () =
  let c, d1, _, _ = make_collection () in
  let r = Collection.doc_root_element c d1 in
  let info = Collection.element_info c r in
  check_int "root anc" 1 info.Collection.el_anc;
  check_int "root desc = all elements" 7 info.Collection.el_desc;
  check_int "root pre" 0 info.Collection.el_pre;
  check_bool "root parent" true (info.Collection.el_parent = None);
  Alcotest.(check string) "tag" "article" (Collection.tag_of c r)

let test_tag_index () =
  let c, _, _, _ = make_collection () in
  check_int "three articles" 3 (List.length (Collection.elements_with_tag c "article"));
  check_int "two cites in d1 + one in d2" 3
    (List.length (Collection.elements_with_tag c "cite"));
  check_int "unknown" 0 (List.length (Collection.elements_with_tag c "zzz"))

let test_remove_document_restores_pending () =
  let c, _, d2, _ = make_collection () in
  let n_els = Collection.n_elements c in
  Collection.remove_document c d2;
  check_int "docs" 2 (Collection.n_docs c);
  check_int "elements dropped" (n_els - 3) (Collection.n_elements c);
  (* d1 -> d2 link becomes pending again; d2 -> d3 link dropped *)
  check_int "pending restored" 1 (Collection.pending_links c);
  check_int "links left" 1 (Collection.n_inter_links c);
  (* re-adding d2 restores both its own link and the pending one *)
  ignore (Collection.add_document c ~name:"d2.xml" (parse doc2));
  check_int "relinked" 3 (Collection.n_inter_links c);
  check_int "no pending" 0 (Collection.pending_links c)

let test_duplicate_name_rejected () =
  let c, _, _, _ = make_collection () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Collection.add_document: duplicate name \"d1.xml\"") (fun () ->
      ignore (Collection.add_document c ~name:"d1.xml" (parse doc3)))

let test_add_element_renumbers () =
  let c, d1, _, _ = make_collection () in
  let r = Collection.doc_root_element c d1 in
  let e = Collection.add_element c ~doc:d1 ~parent:r ~tag:"extra" in
  check_int "count" 8 (Collection.n_elements_of_doc c d1);
  let ri = Collection.element_info c r in
  check_int "root desc grew" 8 ri.Collection.el_desc;
  let ei = Collection.element_info c e in
  check_int "child anc" 2 ei.Collection.el_anc;
  check_bool "tree edge" true (Digraph.mem_edge (Collection.element_graph c) r e)

let test_add_remove_link () =
  let c, d1, _, d3 = make_collection () in
  let r1 = Collection.doc_root_element c d1 in
  let r3 = Collection.doc_root_element c d3 in
  let kind = Collection.add_link c r3 r1 in
  check_bool "inter" true (kind = Collection.Inter);
  check_bool "edge" true (Digraph.mem_edge (Collection.element_graph c) r3 r1);
  Collection.remove_link c r3 r1;
  check_bool "edge gone" false (Digraph.mem_edge (Collection.element_graph c) r3 r1);
  Alcotest.check_raises "double remove"
    (Invalid_argument "Collection.remove_link: not an inter-document link") (fun () ->
      Collection.remove_link c r3 r1)

let test_dangling_fragment_stays_pending () =
  let c = Collection.create () in
  ignore
    (Collection.add_document c ~name:"a.xml"
       (parse {|<a><cite xlink:href="b.xml#nonexistent"/></a>|}));
  ignore (Collection.add_document c ~name:"b.xml" (parse "<b><c id=\"other\"/></b>"));
  check_int "unresolvable fragment pending" 1 (Collection.pending_links c);
  check_int "no link" 0 (Collection.n_inter_links c)

(* {1 Doc_graph} *)

let test_doc_graph () =
  let c, d1, d2, d3 = make_collection () in
  let dg = Doc_graph.of_collection c in
  check_int "nodes" 3 (Digraph.n_nodes dg.Doc_graph.graph);
  check_int "edges" 3 (Digraph.n_edges dg.Doc_graph.graph);
  check_bool "d1->d2" true (Digraph.mem_edge dg.Doc_graph.graph d1 d2);
  Alcotest.(check (float 1e-9)) "weight d1->d2" 1.0 (Doc_graph.edge_weight dg d1 d2);
  check_int "node weight" 7 (Doc_graph.node_weight dg d1);
  check_int "total weight" 14 (Doc_graph.total_node_weight dg);
  ignore d3

(* {1 Skeleton} *)

let test_skeleton () =
  let c, _, _, _ = make_collection () in
  let s = Skeleton.of_collection c in
  (* link sources: 2 cites in d1, 1 cite in d2, 1 back in d1 = 4
     link targets: d2 root(frag r), d3 root (x2 targets same), t in d1 *)
  check_int "sources" 4 (Ihs.cardinal s.Skeleton.sources);
  check_int "targets" 3 (Ihs.cardinal s.Skeleton.targets);
  check_int "links" 4 (List.length s.Skeleton.links);
  (* d2's root is a link target and an ancestor of d2's cite (a source):
     the skeleton must contain that intra-document edge *)
  let r2 = Collection.doc_root_element c (Option.get (Collection.find_doc c "d2.xml")) in
  let cite2 =
    List.find
      (fun e -> Collection.doc_of_element c e = Collection.doc_of_element c r2)
      (Collection.elements_with_tag c "cite")
  in
  check_bool "target->source edge" true (Digraph.mem_edge s.Skeleton.graph r2 cite2)

let test_skeleton_annotation () =
  let c, _, _, _ = make_collection () in
  let s = Skeleton.of_collection c in
  let ann = Skeleton.annotate c s ~max_depth:8 in
  (* D of d1's first cite >= its own desc (1) + d2 root's desc (3) *)
  Hashtbl.iter
    (fun x a ->
      check_bool "A >= anc" true (a.Skeleton.a >= 1);
      check_bool "D >= desc" true (a.Skeleton.d >= 1);
      ignore x)
    ann;
  check_int "every node annotated" (Digraph.n_nodes s.Skeleton.graph) (Hashtbl.length ann)

let test_skeleton_depth_bound () =
  (* a longer chain of documents: with max_depth 1 the approximation stops
     after one hop, so D(x) must be smaller than with a generous bound *)
  let parse = Hopi_xml.Xml_parser.parse_string_exn in
  let c = Collection.create () in
  for i = 0 to 4 do
    let next = Printf.sprintf "chain%d.xml" (i + 1) in
    ignore
      (Collection.add_document c
         ~name:(Printf.sprintf "chain%d.xml" i)
         (parse
            (if i < 4 then
               Printf.sprintf {|<d id="r"><x xlink:href="%s#r"/><p/><p/></d>|} next
             else {|<d id="r"><p/><p/></d>|})))
  done;
  let s = Skeleton.of_collection c in
  let shallow = Skeleton.annotate c s ~max_depth:1 in
  let deep = Skeleton.annotate c s ~max_depth:16 in
  (* the first link source reaches the whole chain at depth 16 *)
  let src =
    List.find
      (fun e -> Collection.doc_of_element c e = Option.get (Collection.find_doc c "chain0.xml"))
      (Collection.elements_with_tag c "x")
  in
  let d_shallow = (Hashtbl.find shallow src).Skeleton.d in
  let d_deep = (Hashtbl.find deep src).Skeleton.d in
  check_bool "deep sees more descendants" true (d_deep > d_shallow)

let test_is_tree_ancestor () =
  let c, d1, _, _ = make_collection () in
  let r = Collection.doc_root_element c d1 in
  List.iter
    (fun e -> check_bool "root is ancestor of all" true (Skeleton.is_tree_ancestor c r e))
    (Collection.elements_of_doc c d1);
  let c2root = Collection.doc_root_element c (Option.get (Collection.find_doc c "d2.xml")) in
  check_bool "cross-doc" false (Skeleton.is_tree_ancestor c r c2root)

(* {1 Partitioning / Psg} *)

let test_partitioning_singleton () =
  let c, _, _, _ = make_collection () in
  let p = Partitioning.singleton_per_doc c in
  Partitioning.check p c;
  check_int "n" 3 p.Partitioning.n;
  check_int "all links cross" 3 (List.length p.Partitioning.cross_links)

let test_partitioning_whole () =
  let c, _, _, _ = make_collection () in
  let p = Partitioning.whole_collection c in
  Partitioning.check p c;
  check_int "no cross links" 0 (List.length p.Partitioning.cross_links)

let test_partition_subgraph () =
  let c, d1, d2, _ = make_collection () in
  (* put d1+d2 together, d3 alone *)
  let part_of_doc = Hashtbl.create 3 in
  List.iter
    (fun did -> Hashtbl.replace part_of_doc did (if did = d1 || did = d2 then 0 else 1))
    (Collection.doc_ids c);
  let p = Partitioning.make c ~part_of_doc ~n:2 in
  Partitioning.check p c;
  check_int "cross = links into d3" 2 (List.length p.Partitioning.cross_links);
  let g0 = Partitioning.element_subgraph p c 0 in
  check_int "partition 0 elements" 10 (Digraph.n_nodes g0);
  (* contains the d1->d2 link but not links into d3 *)
  check_int "edges: 6 tree(d1) + 2 tree(d2) + 1 intra + 1 link" 10 (Digraph.n_edges g0)

let test_psg () =
  let c, d1, d2, _ = make_collection () in
  let part_of_doc = Hashtbl.create 3 in
  List.iter
    (fun did -> Hashtbl.replace part_of_doc did (if did = d1 || did = d2 then 0 else 1))
    (Collection.doc_ids c);
  let p = Partitioning.make c ~part_of_doc ~n:2 in
  let g = Collection.element_graph c in
  let psg = Psg.build c p ~reaches_within_partition:(fun t s ->
      (* oracle: plain BFS restricted to the common partition *)
      let part = Partitioning.part_of_element p c t in
      let ok v = Partitioning.part_of_element p c v = part in
      let seen = Traversal.reachable_avoiding g ~avoid:(fun v -> not (ok v)) [ t ] in
      Ihs.mem seen s)
  in
  check_int "sources: d1 cite + d2 cite" 2 (Ihs.cardinal psg.Psg.sources);
  check_int "targets: d3 root" 1 (Ihs.cardinal psg.Psg.targets);
  (* cross links: both into d3 root; no target->source edges possible in
     partition 1 (d3 has no sources) *)
  check_int "edges" 2 (Digraph.n_edges psg.Psg.graph)

let suite =
  [
    ( "collection.basics",
      [
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "forward refs" `Quick test_forward_references;
        Alcotest.test_case "element graph" `Quick test_element_graph_reachability;
        Alcotest.test_case "element info" `Quick test_element_info;
        Alcotest.test_case "tag index" `Quick test_tag_index;
        Alcotest.test_case "remove doc" `Quick test_remove_document_restores_pending;
        Alcotest.test_case "duplicate name" `Quick test_duplicate_name_rejected;
        Alcotest.test_case "add element" `Quick test_add_element_renumbers;
        Alcotest.test_case "add/remove link" `Quick test_add_remove_link;
        Alcotest.test_case "dangling fragment" `Quick test_dangling_fragment_stays_pending;
      ] );
    ("collection.doc_graph", [ Alcotest.test_case "basic" `Quick test_doc_graph ]);
    ( "collection.skeleton",
      [
        Alcotest.test_case "structure" `Quick test_skeleton;
        Alcotest.test_case "annotation" `Quick test_skeleton_annotation;
        Alcotest.test_case "depth bound" `Quick test_skeleton_depth_bound;
        Alcotest.test_case "tree ancestor" `Quick test_is_tree_ancestor;
      ] );
    ( "collection.partitioning",
      [
        Alcotest.test_case "singleton" `Quick test_partitioning_singleton;
        Alcotest.test_case "whole" `Quick test_partitioning_whole;
        Alcotest.test_case "subgraph" `Quick test_partition_subgraph;
        Alcotest.test_case "psg" `Quick test_psg;
      ] );
  ]
