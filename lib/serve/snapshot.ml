(* Read-only snapshot over a persisted store: one shared store handle for
   all domains, served through a shared read-only page pool (see the
   interface for the concurrency model).

   Label sets travel in the delta-encoded Label_codec layout — rows
   sorted by (center, dist), exactly the order of a forward-index range
   scan — so the cover queries below are codec stream merges mirroring
   Cover_store's B+-tree merges row for row.  Keeping the two
   implementations answer-identical is load-bearing: the differential
   tests compare them pairwise. *)

module S = Hopi_storage
module Ihs = Hopi_util.Int_hashset
module Codec = Hopi_twohop.Label_codec

type handle = Cover of S.Cover_store.t | Closure of S.Closure_store.t

type t = {
  path : string;
  pool : S.Pager.Read_pool.t;
  pgr : S.Pager.t;
  handle : handle;
  cache : Label_cache.t;
  epoch : int;
  node_version : int -> int; (* frozen at open: cache-key version per node *)
  kind : [ `Cover | `Closure ];
  with_dist : bool;
  nodes : Ihs.t; (* cover: registry frozen at open; closure: unused *)
  n_nodes : int;
  n_entries : int;
  mu : Mutex.t; (* close idempotency *)
  mutable closed : bool;
}

let default_version _ = 0

let open_file ?(pool_pages = 4096) ?pool ?vfs ?(cache_mb = 64) ?shards ?cache
    ?(epoch = 0) ?(node_version = default_version) path =
  let vfs = match vfs with Some v -> v | None -> S.Vfs.real in
  let pool =
    match pool with
    | Some p -> p
    | None -> S.Pager.Read_pool.create ~pages:pool_pages ()
  in
  let pgr = S.Pager.open_shared_vfs ~vfs ~pool path in
  let cache =
    match cache with
    | Some c -> c
    | None -> Label_cache.create ?shards ~capacity_bytes:(cache_mb * 1024 * 1024) ()
  in
  let cat = S.Catalog.read pgr in
  let handle, kind, with_dist, nodes, n_nodes, n_entries =
    match cat.S.Catalog.kind with
    | S.Catalog.Cover ->
      let st = S.Cover_store.open_pager pgr in
      let nodes = Ihs.create () in
      S.Cover_store.iter_nodes st (Ihs.add nodes);
      (Cover st, `Cover, S.Cover_store.with_dist st, nodes,
       S.Cover_store.n_nodes st, S.Cover_store.n_entries st)
    | S.Catalog.Closure ->
      let st = S.Closure_store.open_pager pgr in
      (Closure st, `Closure, false, Ihs.create (), 0,
       S.Closure_store.n_connections st)
  in
  { path; pool; pgr; handle; cache; epoch; node_version; kind; with_dist;
    nodes; n_nodes; n_entries; mu = Mutex.create (); closed = false }

(* The pager is a shared read-only view: the B+-tree read path touches no
   mutable pager state, page lookups go through the sharded pool, and
   miss I/O serialises inside the pager — so one handle serves every
   domain without a per-query lock. *)
let handle t =
  if t.closed then invalid_arg "Hopi_serve.Snapshot: closed";
  t.handle

let close t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    S.Pager.close t.pgr
  end

let kind t = t.kind

let with_dist t = t.with_dist

let n_nodes t = t.n_nodes

let n_entries t = t.n_entries

let cache t = t.cache

let path t = t.path

let epoch t = t.epoch

let read_pool t = t.pool

(* {1 Label fetch} *)

type dir = Lin | Lout

let cache_key t dir v =
  Label_cache.key ~version:(t.node_version v)
    (match dir with Lout -> Label_cache.Lout | Lin -> Label_cache.Lin)
    v

let labels t st dir v =
  Hopi_obs.Reqtrace.Local.note_label_probe ();
  let key = cache_key t dir v in
  match Label_cache.find t.cache key with
  | Some enc -> enc
  | None ->
    (* the range scan visits rows ascending by (center, dist): exactly
       the encoder's input order, so encoding streams with no staging *)
    let e = Codec.Enc.create () in
    let add ~center ~dist = Codec.Enc.row e ~center ~dist in
    (match dir with
     | Lin -> S.Cover_store.iter_lin st v add
     | Lout -> S.Cover_store.iter_lout st v add);
    let enc = Codec.Enc.finish e in
    Label_cache.add t.cache key enc;
    enc

(* {1 Cover queries} *)

let connected_cover t st u v =
  if u = v then Ihs.mem t.nodes u
  else if not (Ihs.mem t.nodes u && Ihs.mem t.nodes v) then false
  else begin
    let lout = labels t st Lout u and lin = labels t st Lin v in
    (* compensating probes for the implicit self-entries, then the merge *)
    Codec.mem lout v || Codec.mem lin u || Codec.intersects lout lin
  end

let min_distance_cover t st u v =
  if not (Ihs.mem t.nodes u && Ihs.mem t.nodes v) then None
  else if u = v then Some 0
  else begin
    let lout = labels t st Lout u and lin = labels t st Lin v in
    let best = ref (-1) in
    let note d = if d >= 0 && (!best < 0 || d < !best) then best := d in
    note (Codec.find_min_dist lout v);
    note (Codec.find_min_dist lin u);
    note (Codec.merge_min lout lin);
    if !best < 0 then None else Some !best
  end

(* mirror of [Cover_store.descendants]/[ancestors], with the center list
   taken from the cached labels and the per-center fan-out from the
   backward indexes (uncached scans — these enumerate result sets, not
   hot label fetches) *)
let reach_set t st ~labels_dir ~scan u =
  let acc = Ihs.create () in
  if Ihs.mem t.nodes u then begin
    Ihs.add acc u;
    let via_center w =
      Ihs.add acc w;
      scan st w (fun ~node ~dist:_ -> Ihs.add acc node)
    in
    via_center u;
    Codec.iter_centers (labels t st labels_dir u) via_center
  end;
  acc

(* {1 Public queries} *)

let mem_node t v =
  match handle t with
  | Cover _ -> Ihs.mem t.nodes v
  | Closure st -> S.Closure_store.connected st v v

let connected t u v =
  match handle t with
  | Cover st -> connected_cover t st u v
  | Closure st -> S.Closure_store.connected st u v

let min_distance t u v =
  match handle t with
  | Cover st -> min_distance_cover t st u v
  | Closure st -> if S.Closure_store.connected st u v then Some 0 else None

let descendants t u =
  match handle t with
  | Cover st -> reach_set t st ~labels_dir:Lout ~scan:S.Cover_store.iter_in_by_center u
  | Closure st -> S.Closure_store.descendants st u

let ancestors t v =
  match handle t with
  | Cover st -> reach_set t st ~labels_dir:Lin ~scan:S.Cover_store.iter_out_by_center v
  | Closure st -> S.Closure_store.ancestors st v
