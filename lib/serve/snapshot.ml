(* Read-only snapshot over a persisted store with per-domain pagers and a
   shared label cache (see the interface for the concurrency model).

   Label sets are materialised as flattened [| center0; dist0; center1;
   dist1; ... |] arrays sorted by (center, dist) — exactly the order of a
   forward-index range scan — so the cover queries below are array merges
   mirroring Cover_store's B+-tree merges row for row.  Keeping the two
   implementations answer-identical is load-bearing: the differential
   tests compare them pairwise. *)

module S = Hopi_storage
module Ihs = Hopi_util.Int_hashset

type handle = Cover of S.Cover_store.t | Closure of S.Closure_store.t

type t = {
  path : string;
  pool_pages : int;
  cache : Label_cache.t;
  epoch : int;
  node_version : int -> int; (* frozen at open: cache-key version per node *)
  kind : [ `Cover | `Closure ];
  with_dist : bool;
  nodes : Ihs.t; (* cover: registry frozen at open; closure: unused *)
  n_nodes : int;
  n_entries : int;
  mu : Mutex.t; (* guards handles/pagers/closed *)
  handles : (int, handle) Hashtbl.t; (* domain id -> private store handle *)
  mutable pagers : S.Pager.t list;
  mutable closed : bool;
}

let domain_key () = (Domain.self () :> int)

let default_version _ = 0

let open_file ?(pool_pages = 256) ?(cache_mb = 64) ?shards ?cache ?(epoch = 0)
    ?(node_version = default_version) path =
  let pgr = S.Pager.open_existing ~pool_pages path in
  let cache =
    match cache with
    | Some c -> c
    | None -> Label_cache.create ?shards ~capacity_bytes:(cache_mb * 1024 * 1024) ()
  in
  let handles = Hashtbl.create 8 in
  let cat = S.Catalog.read pgr in
  let kind, with_dist, nodes, n_nodes, n_entries =
    match cat.S.Catalog.kind with
    | S.Catalog.Cover ->
      let st = S.Cover_store.open_pager pgr in
      let nodes = Ihs.create () in
      S.Cover_store.iter_nodes st (Ihs.add nodes);
      Hashtbl.add handles (domain_key ()) (Cover st);
      (`Cover, S.Cover_store.with_dist st, nodes, S.Cover_store.n_nodes st,
       S.Cover_store.n_entries st)
    | S.Catalog.Closure ->
      let st = S.Closure_store.open_pager pgr in
      Hashtbl.add handles (domain_key ()) (Closure st);
      (`Closure, false, Ihs.create (), 0, S.Closure_store.n_connections st)
  in
  { path; pool_pages; cache; epoch; node_version; kind; with_dist; nodes;
    n_nodes; n_entries; mu = Mutex.create (); handles; pagers = [ pgr ];
    closed = false }

(* The pager/btree stack is single-domain, so each worker domain gets a
   private handle onto the same committed file, opened lazily on first
   use.  The file is never written through these, so the handles cannot
   diverge. *)
let handle t =
  let id = domain_key () in
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if t.closed then invalid_arg "Hopi_serve.Snapshot: closed";
  match Hashtbl.find_opt t.handles id with
  | Some h -> h
  | None ->
    let pgr = S.Pager.open_existing ~pool_pages:t.pool_pages t.path in
    let h =
      match t.kind with
      | `Cover -> Cover (S.Cover_store.open_pager pgr)
      | `Closure -> Closure (S.Closure_store.open_pager pgr)
    in
    Hashtbl.add t.handles id h;
    t.pagers <- pgr :: t.pagers;
    h

let close t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    List.iter S.Pager.close t.pagers;
    t.pagers <- [];
    Hashtbl.reset t.handles
  end

let kind t = t.kind

let with_dist t = t.with_dist

let n_nodes t = t.n_nodes

let n_entries t = t.n_entries

let cache t = t.cache

let path t = t.path

let epoch t = t.epoch

(* {1 Label fetch} *)

type dir = Lin | Lout

let cache_key t dir v =
  Label_cache.key ~version:(t.node_version v)
    (match dir with Lout -> Label_cache.Lout | Lin -> Label_cache.Lin)
    v

let labels t st dir v =
  Hopi_obs.Reqtrace.Local.note_label_probe ();
  let key = cache_key t dir v in
  match Label_cache.find t.cache key with
  | Some arr -> arr
  | None ->
    let acc = ref [] and n = ref 0 in
    let add ~center ~dist =
      acc := (center, dist) :: !acc;
      incr n
    in
    (match dir with
     | Lin -> S.Cover_store.iter_lin st v add
     | Lout -> S.Cover_store.iter_lout st v add);
    let arr = Array.make (2 * !n) 0 in
    (* the scan visited rows ascending, so !acc is descending: fill backwards *)
    let i = ref (2 * !n - 2) in
    List.iter
      (fun (c, d) ->
        arr.(!i) <- c;
        arr.(!i + 1) <- d;
        i := !i - 2)
      !acc;
    Label_cache.add t.cache key arr;
    arr

(* {1 Flattened-array probes}

   Rows are sorted by (center, dist), so the first row of a center run
   carries that center's minimum distance. *)

(* Index of the first row with this center, or -1. *)
let find_center arr center =
  let n = Array.length arr / 2 in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(2 * mid) < center then lo := mid + 1 else hi := mid
  done;
  if !lo < n && arr.(2 * !lo) = center then !lo else -1

let intersects a b =
  let na = Array.length a / 2 and nb = Array.length b / 2 in
  let rec go i j =
    if i >= na || j >= nb then false
    else begin
      let ca = a.(2 * i) and cb = b.(2 * j) in
      if ca < cb then go (i + 1) j else if cb < ca then go i (j + 1) else true
    end
  in
  go 0 0

(* min over common centers of (min dist in a's run + min dist in b's run) *)
let merge_min a b =
  let na = Array.length a / 2 and nb = Array.length b / 2 in
  let skip_run arr n i =
    let c = arr.(2 * i) in
    let j = ref (i + 1) in
    while !j < n && arr.(2 * !j) = c do
      incr j
    done;
    !j
  in
  let rec go best i j =
    if i >= na || j >= nb then best
    else begin
      let ca = a.(2 * i) and cb = b.(2 * j) in
      if ca < cb then go best (skip_run a na i) j
      else if cb < ca then go best i (skip_run b nb j)
      else begin
        let d = a.(2 * i + 1) + b.(2 * j + 1) in
        let best = match best with Some x when x <= d -> Some x | _ -> Some d in
        go best (skip_run a na i) (skip_run b nb j)
      end
    end
  in
  go None 0 0

(* {1 Cover queries} *)

let connected_cover t st u v =
  if u = v then Ihs.mem t.nodes u
  else if not (Ihs.mem t.nodes u && Ihs.mem t.nodes v) then false
  else begin
    let lout = labels t st Lout u and lin = labels t st Lin v in
    (* compensating probes for the implicit self-entries, then the merge *)
    find_center lout v >= 0 || find_center lin u >= 0 || intersects lout lin
  end

let min_distance_cover t st u v =
  if not (Ihs.mem t.nodes u && Ihs.mem t.nodes v) then None
  else if u = v then Some 0
  else begin
    let lout = labels t st Lout u and lin = labels t st Lin v in
    let candidates =
      List.filter_map Fun.id
        [
          (match find_center lout v with -1 -> None | i -> Some lout.((2 * i) + 1));
          (match find_center lin u with -1 -> None | i -> Some lin.((2 * i) + 1));
          merge_min lout lin;
        ]
    in
    match candidates with
    | [] -> None
    | ds -> Some (List.fold_left min max_int ds)
  end

(* mirror of [Cover_store.descendants]/[ancestors], with the center list
   taken from the cached labels and the per-center fan-out from the
   backward indexes (uncached scans — these enumerate result sets, not
   hot label fetches) *)
let reach_set t st ~labels_dir ~scan u =
  let acc = Ihs.create () in
  if Ihs.mem t.nodes u then begin
    Ihs.add acc u;
    let via_center w =
      Ihs.add acc w;
      scan st w (fun ~node ~dist:_ -> Ihs.add acc node)
    in
    via_center u;
    let lbls = labels t st labels_dir u in
    let n = Array.length lbls / 2 in
    let i = ref 0 in
    while !i < n do
      let c = lbls.(2 * !i) in
      via_center c;
      (* skip the rest of this center's run (multi-distance rows) *)
      while !i < n && lbls.(2 * !i) = c do
        incr i
      done
    done
  end;
  acc

(* {1 Public queries} *)

let mem_node t v =
  match handle t with
  | Cover _ -> Ihs.mem t.nodes v
  | Closure st -> S.Closure_store.connected st v v

let connected t u v =
  match handle t with
  | Cover st -> connected_cover t st u v
  | Closure st -> S.Closure_store.connected st u v

let min_distance t u v =
  match handle t with
  | Cover st -> min_distance_cover t st u v
  | Closure st -> if S.Closure_store.connected st u v then Some 0 else None

let descendants t u =
  match handle t with
  | Cover st -> reach_set t st ~labels_dir:Lout ~scan:S.Cover_store.iter_in_by_center u
  | Closure st -> S.Closure_store.descendants st u

let ancestors t v =
  match handle t with
  | Cover st -> reach_set t st ~labels_dir:Lin ~scan:S.Cover_store.iter_out_by_center v
  | Closure st -> S.Closure_store.ancestors st v
