(** The line-oriented serve loop ([hopi serve]'s stdin/stdout protocol),
    extracted from the CLI so its shutdown behaviour is unit-testable.

    Input lines are trimmed; blank lines and [#] comments are skipped;
    [quit] ends the loop.  A line the [control] callback claims is a
    control command: queued queries are drained first (out-of-band
    replies keep input order) and the reply — or [error: ...] — is
    written.  Every other line parses as a {!Batch} query and queues;
    queues drain at [batch_size] via [eval], one output line per query in
    input order.  Lines that fail to parse answer [error: ...]
    immediately.

    Shutdown is always clean, never an escaping exception:

    - end of input (EOF, including mid-batch: pending queries drain
      first) returns {!constructor:Eof};
    - [quit] drains and returns {!constructor:Quit};
    - a writer failure ([Sys_error] from a closed or full output pipe,
      [EPIPE]-style; the reader going away) returns
      {!constructor:Output_closed} with the reason — the caller logs it
      and exits 0, because a consumer hanging up mid-stream is a normal
      way for a pipe session to end.  The CLI additionally ignores
      [SIGPIPE] so the write surfaces as [Sys_error]/[EPIPE] here
      instead of killing the process. *)

type outcome =
  | Eof
  | Quit
  | Output_closed of string  (** the writer failed; payload is the reason *)

type stats = { served : int; outcome : outcome }

val run :
  ?batch_size:int ->
  read_line:(unit -> string option) ->
  write_line:(string -> unit) ->
  eval:(Batch.query array -> Batch.answer array) ->
  control:(string -> (unit -> string) option) ->
  unit ->
  stats
(** [read_line] returns [None] at end of input and may raise [Sys_error]
    (treated as EOF).  [write_line] writes one output line and may raise
    [Sys_error] or [Unix.Unix_error] (treated as {!constructor:
    Output_closed}).  [eval] evaluates a drained batch in input order.
    [control line] recognises control commands: [Some thunk] makes the
    loop drain queued queries and then run the thunk for the reply —
    recognition is pure, execution observes a drained queue ([flip]
    cannot reorder around queries that arrived first).  A thunk that
    raises answers [error: ...] instead of killing the loop.
    [batch_size] (default 1) matches [serve --batch]. *)

val stdin_reader : unit -> unit -> string option
(** Read trimmed lines off this process's stdin.  Clean EOF and a broken
    input stream both end the stream ([None]). *)

val stdout_writer : unit -> string -> unit
(** [print_endline] + flush, surfacing write failures as [Sys_error]. *)
