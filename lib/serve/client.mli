(** A blocking client for the {!Frame} protocol — one connection, one
    request in flight at a time (ids are still checked, so a server bug
    that answers out of order is caught, not silently accepted).  Used by
    [hopi client], the socket soak/fuzz tests, and the socket bench. *)

type t

type reply =
  | Answers of int * string list
      (** epoch, one rendered answer line per query, in request order *)
  | Busy of string  (** admission control said back off *)
  | Refused of string  (** an ['E'] frame: the request was not served *)

val connect_unix : string -> t
(** @raise Unix.Unix_error when nothing listens on the path. *)

val connect_tcp : string -> int -> t
(** [connect_tcp host port]; [host] is a dotted address. *)

val close : t -> unit

val request : ?max_bytes:int -> t -> string list -> (reply, string) result
(** Send the query lines as one ['Q'] frame and read the reply.  [Error]
    means the conversation itself broke: closed connection, truncated or
    malformed reply, id mismatch. *)

val control : ?max_bytes:int -> t -> string -> (reply, string) result
(** Send one control command as a ['C'] frame. *)

val send_raw : t -> Bytes.t -> unit
(** Write arbitrary bytes (the fuzz suite's malformed frames).
    @raise Unix.Unix_error when the peer already closed. *)

val read_reply : ?max_bytes:int -> t -> (reply, string) result
(** Read one reply frame without sending anything first. *)

val fd : t -> Unix.file_descr
