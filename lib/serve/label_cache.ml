(* Sharded LRU label cache (see the interface for the design contract).

   Each shard is a Hashtbl from key to an intrusive doubly-linked-list
   entry; the list order is recency (head = MRU).  All shard state is
   guarded by the shard mutex — the fast path (find hit) is one lock, one
   hash probe and two pointer splices. *)

module Registry = Hopi_obs.Registry
module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Label_codec = Hopi_twohop.Label_codec

let m_hits =
  Registry.counter "hopi_serve_cache_hits_total"
    ~help:"Label-cache lookups answered from memory"

let m_misses =
  Registry.counter "hopi_serve_cache_misses_total"
    ~help:"Label-cache lookups that fell through to the store"

let m_evictions =
  Registry.counter "hopi_serve_cache_evictions_total"
    ~help:"Label-cache entries evicted to stay under the size budget"

let m_invalidations =
  Registry.counter "hopi_serve_cache_invalidations_total"
    ~help:"Label-cache entries evicted because a generation flip dirtied them"

let g_bytes =
  Registry.gauge "hopi_serve_cache_bytes" ~help:"Accounted label-cache size"

let g_entries =
  Registry.gauge "hopi_serve_cache_entries" ~help:"Live label-cache entries"

type dir = Lin | Lout

(* Key layout: [version | node | dir-bit].  Injective as long as node ids
   stay below 2^43 and versions below 2^19 — both far beyond anything the
   element-id allocator or the generation counter can reach in practice.
   Version 0 reproduces the historical un-versioned key, so standalone
   snapshots keep byte-identical cache behaviour. *)
let key ?(version = 0) dir node =
  (version lsl 44) lor (node lsl 1) lor (match dir with Lout -> 0 | Lin -> 1)

type entry = {
  key : int;
  value : Label_codec.t;
  cost : int;
  mutable prev : entry option; (* towards MRU *)
  mutable next : entry option; (* towards LRU *)
}

type shard = {
  mu : Mutex.t;
  tbl : (int, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable bytes : int;
  capacity : int;
}

type t = { shards : shard array; mask : int }

(* Payload bytes + fixed bookkeeping overhead (hash slot, list entry,
   buffer header), in bytes. *)
let entry_cost value = Bytes.length value + 96

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(shards = 16) ~capacity_bytes () =
  if capacity_bytes <= 0 then { shards = [||]; mask = 0 }
  else begin
    let n = next_pow2 (max 1 shards) 1 in
    let per_shard = max 1 (capacity_bytes / n) in
    {
      shards =
        Array.init n (fun _ ->
            { mu = Mutex.create (); tbl = Hashtbl.create 256; mru = None;
              lru = None; bytes = 0; capacity = per_shard });
      mask = n - 1;
    }
  end

let enabled t = Array.length t.shards > 0

let capacity_bytes t =
  Array.fold_left (fun acc s -> acc + s.capacity) 0 t.shards

(* splitmix-style finaliser so consecutive node ids spread across shards *)
let mix k =
  let h = k lxor (k lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let shard_of t key = t.shards.(mix key land t.mask)

let with_shard s f =
  Mutex.lock s.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

(* list surgery — caller holds the shard mutex *)

let unlink s e =
  (match e.prev with Some p -> p.next <- e.next | None -> s.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> s.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front s e =
  e.prev <- None;
  e.next <- s.mru;
  (match s.mru with Some m -> m.prev <- Some e | None -> s.lru <- Some e);
  s.mru <- Some e

let drop s e =
  unlink s e;
  Hashtbl.remove s.tbl e.key;
  s.bytes <- s.bytes - e.cost;
  Gauge.sub g_bytes e.cost;
  Gauge.decr g_entries

let rec evict_over_budget s =
  if s.bytes > s.capacity then
    match s.lru with
    | None -> ()
    | Some victim ->
      drop s victim;
      Counter.incr m_evictions;
      evict_over_budget s

let find t key =
  if not (enabled t) then None
  else begin
    let s = shard_of t key in
    with_shard s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some e ->
          Counter.incr m_hits;
          Hopi_obs.Reqtrace.Local.note_cache_hit ();
          unlink s e;
          push_front s e;
          Some e.value
        | None ->
          Counter.incr m_misses;
          Hopi_obs.Reqtrace.Local.note_cache_miss ();
          None)
  end

let add t key value =
  if enabled t then begin
    let s = shard_of t key in
    let cost = entry_cost value in
    if cost <= s.capacity then
      with_shard s (fun () ->
          (match Hashtbl.find_opt s.tbl key with
           | Some old -> drop s old (* racing domains computed the same value *)
           | None -> ());
          let e = { key; value; cost; prev = None; next = None } in
          Hashtbl.add s.tbl key e;
          push_front s e;
          s.bytes <- s.bytes + cost;
          Gauge.add g_bytes cost;
          Gauge.incr g_entries;
          evict_over_budget s)
  end

let remove t key =
  if not (enabled t) then false
  else begin
    let s = shard_of t key in
    with_shard s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some e ->
          drop s e;
          Counter.incr m_invalidations;
          true
        | None -> false)
  end

let hits () = m_hits

let misses () = m_misses

let evictions () = m_evictions

let invalidations () = m_invalidations

let bytes t = Array.fold_left (fun acc s -> acc + with_shard s (fun () -> s.bytes)) 0 t.shards

let entries t =
  Array.fold_left (fun acc s -> acc + with_shard s (fun () -> Hashtbl.length s.tbl)) 0 t.shards
