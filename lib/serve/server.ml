(* Socket front-end (model in the interface).

   Invariants:
   - every admitted request is answered exactly once ('R' or 'E'), every
     rejected request answers 'B' — frames are never silently dropped;
   - [handler.eval]/[handler.control] run under [eval_mu]: one pool
     submission at a time process-wide;
   - a connection's fd is written only under its write mutex (the reader
     thread writes rejections and protocol errors, the worker thread
     writes answers) and closed exactly once, by the worker, after the
     reader has pushed [Close] and the queue has drained. *)

module Registry = Hopi_obs.Registry
module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Histogram = Hopi_obs.Histogram
module Timer = Hopi_util.Timer

let m_conns =
  Registry.counter "hopi_server_connections_total" ~help:"Connections ever accepted"

let g_open = Registry.gauge "hopi_server_connections_open" ~help:"Connections currently open"

let m_requests =
  Registry.counter "hopi_server_requests_total" ~help:"Request frames admitted"

let m_rejected =
  Registry.counter "hopi_server_rejected_total"
    ~help:"Request frames rejected with a busy frame (admission control)"

let m_protocol_errors =
  Registry.counter "hopi_server_protocol_errors_total"
    ~help:"Malformed or unexpected frames received"

let g_inflight =
  Registry.gauge "hopi_server_inflight" ~help:"Requests admitted but not yet answered"

let h_queue_wait =
  Registry.histogram "hopi_server_queue_wait_ns"
    ~help:"Time a request spent in its connection queue before evaluation"

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

type handler = {
  eval : ctx:Batch.ctx -> Batch.query array -> int * Batch.answer array;
  control : string -> (string, string) result;
}

type work =
  | Req of { id : int; payload : string; control : bool; t_enq : Timer.t }
  | Close

type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  queue : work Queue.t;
  q_mu : Mutex.t;
  q_cond : Condition.t;
  mutable q_len : int;  (* queued requests, Close excluded *)
  w_mu : Mutex.t;
  mutable alive : bool;  (* cleared when a write fails: peer is gone *)
}

type t = {
  handler : handler;
  max_inflight : int;
  queue_depth : int;
  max_frame_bytes : int;
  inflight : int Atomic.t;
  eval_mu : Mutex.t;
  mutable listeners : (Unix.file_descr * endpoint) list;
  mutable accept_threads : Thread.t list;
  conns : (int, conn * Thread.t * Thread.t) Hashtbl.t;
  conns_mu : Mutex.t;
  next_conn : int Atomic.t;
  stopping : bool Atomic.t;
  sd_mu : Mutex.t;
  sd_cond : Condition.t;
  mutable sd_requested : bool;
  served : int Atomic.t;
}

let create ?(max_inflight = 64) ?(queue_depth = 16) ?(max_frame_bytes = Frame.default_max_bytes)
    handler =
  {
    handler;
    max_inflight = max 1 max_inflight;
    queue_depth = max 1 queue_depth;
    max_frame_bytes;
    inflight = Atomic.make 0;
    eval_mu = Mutex.create ();
    listeners = [];
    accept_threads = [];
    conns = Hashtbl.create 16;
    conns_mu = Mutex.create ();
    next_conn = Atomic.make 0;
    stopping = Atomic.make false;
    sd_mu = Mutex.create ();
    sd_cond = Condition.create ();
    sd_requested = false;
    served = Atomic.make 0;
  }

(* {1 Per-connection writes} *)

let send conn frame =
  Mutex.protect conn.w_mu (fun () ->
      if conn.alive then
        try Frame.write conn.fd frame
        with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false)

(* {1 Worker thread} *)

let split_lines payload =
  String.split_on_char '\n' payload
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" || l.[0] = '#' then None else Some l)

let answer_query t conn ~id ~payload ~queue_wait_ns =
  let slots = List.map Batch.parse (split_lines payload) in
  let queries =
    Array.of_list (List.filter_map (function Ok q -> Some q | Error _ -> None) slots)
  in
  let ctx = { Batch.conn = conn.conn_id; queue_wait_ns } in
  match Mutex.protect t.eval_mu (fun () -> t.handler.eval ~ctx queries) with
  | epoch, answers ->
    (* merge evaluated answers back into their input slots; parse
       failures answer in place, exactly like the stdin loop *)
    let next = ref 0 in
    let lines =
      List.map
        (fun slot ->
          Batch.render
            (match slot with
            | Ok _ ->
              let a = answers.(!next) in
              incr next;
              a
            | Error e -> Batch.Failed e))
        slots
    in
    send conn (Frame.response ~id ~epoch lines)
  | exception e -> send conn (Frame.error ~id ("evaluation failed: " ^ Printexc.to_string e))

let answer_control t conn ~id ~payload =
  match Mutex.protect t.eval_mu (fun () -> t.handler.control payload) with
  | Ok body -> send conn (Frame.response ~id ~epoch:0 [ body ])
  | Error e -> send conn (Frame.error ~id e)
  | exception e -> send conn (Frame.error ~id (Printexc.to_string e))

let worker t conn () =
  let rec loop () =
    let w =
      Mutex.protect conn.q_mu (fun () ->
          while Queue.is_empty conn.queue do
            Condition.wait conn.q_cond conn.q_mu
          done;
          let w = Queue.pop conn.queue in
          (match w with Close -> () | Req _ -> conn.q_len <- conn.q_len - 1);
          w)
    in
    match w with
    | Close -> ()
    | Req { id; payload; control; t_enq } ->
      let queue_wait_ns = Int64.to_int (Timer.elapsed_ns t_enq) in
      Histogram.observe h_queue_wait queue_wait_ns;
      (try
         if control then answer_control t conn ~id ~payload
         else answer_query t conn ~id ~payload ~queue_wait_ns
       with e ->
         send conn (Frame.error ~id ("internal error: " ^ Printexc.to_string e)));
      Atomic.incr t.served;
      Atomic.decr t.inflight;
      Gauge.set g_inflight (Atomic.get t.inflight);
      loop ()
  in
  loop ();
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.conns_mu (fun () -> Hashtbl.remove t.conns conn.conn_id);
  Gauge.set g_open (Mutex.protect t.conns_mu (fun () -> Hashtbl.length t.conns))

(* {1 Reader thread} *)

let enqueue conn w =
  Mutex.protect conn.q_mu (fun () ->
      Queue.push w conn.queue;
      (match w with Close -> () | Req _ -> conn.q_len <- conn.q_len + 1);
      Condition.signal conn.q_cond)

let reader t conn () =
  let reject id reason =
    Counter.incr m_rejected;
    send conn (Frame.busy ~id reason)
  in
  let admit id payload control =
    (* exact global cap: claim a slot, hand it back if over *)
    let claimed = Atomic.fetch_and_add t.inflight 1 in
    if claimed >= t.max_inflight then begin
      Atomic.decr t.inflight;
      reject id (Printf.sprintf "server at max-inflight (%d)" t.max_inflight)
    end
    else if Mutex.protect conn.q_mu (fun () -> conn.q_len) >= t.queue_depth then begin
      Atomic.decr t.inflight;
      reject id (Printf.sprintf "connection queue full (%d)" t.queue_depth)
    end
    else begin
      Counter.incr m_requests;
      Gauge.set g_inflight (Atomic.get t.inflight);
      enqueue conn (Req { id; payload; control; t_enq = Timer.start () })
    end
  in
  let rec loop () =
    match Frame.read ~max_bytes:t.max_frame_bytes conn.fd with
    | None -> () (* clean close *)
    | exception End_of_file -> () (* mid-frame disconnect: clean close *)
    | exception Frame.Protocol_error msg ->
      (* stream out of sync: report and close *)
      Counter.incr m_protocol_errors;
      send conn (Frame.error ~id:0 msg)
    | exception Unix.Unix_error _ -> ()
    | exception Sys_error _ -> ()
    | Some { Frame.kind = Request; id; payload } ->
      admit id payload false;
      loop ()
    | Some { Frame.kind = Control; id; payload } ->
      admit id payload true;
      loop ()
    | Some { Frame.kind = Unknown c; id; _ } ->
      (* length was believable, payload consumed: recoverable *)
      Counter.incr m_protocol_errors;
      send conn (Frame.error ~id (Printf.sprintf "unknown frame kind %C" c));
      loop ()
    | Some { Frame.kind = (Response | Error | Busy) as k; id; _ } ->
      Counter.incr m_protocol_errors;
      send conn
        (Frame.error ~id (Format.asprintf "unexpected %a frame from a client" Frame.pp_kind k));
      loop ()
  in
  loop ();
  enqueue conn Close

(* {1 Accepting} *)

let spawn_conn t cfd =
  let conn =
    {
      conn_id = 1 + Atomic.fetch_and_add t.next_conn 1;
      fd = cfd;
      queue = Queue.create ();
      q_mu = Mutex.create ();
      q_cond = Condition.create ();
      q_len = 0;
      w_mu = Mutex.create ();
      alive = true;
    }
  in
  Counter.incr m_conns;
  Mutex.protect t.conns_mu (fun () ->
      if Atomic.get t.stopping then begin
        (try Unix.close cfd with Unix.Unix_error _ -> ())
      end
      else begin
        let wt = Thread.create (worker t conn) () in
        let rt = Thread.create (reader t conn) () in
        Hashtbl.replace t.conns conn.conn_id (conn, rt, wt);
        Gauge.set g_open (Hashtbl.length t.conns)
      end)

(* Poll with a timeout instead of blocking in [accept]: closing an fd
   does not wake a thread blocked in [accept] on Linux, so a blocking
   loop could never be joined.  [stop] flips [stopping] and joins within
   one poll interval. *)
let accept_loop t fd () =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true fd with
        | cfd, _ ->
          spawn_conn t cfd;
          loop ()
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
        | exception Sys_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | exception Sys_error _ -> ()
  in
  loop ()

let add_listener t ep =
  let fd, addr =
    match ep with
    | Unix_socket path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let addr = Unix.ADDR_UNIX path in
      Unix.bind fd addr;
      (fd, addr)
    | Tcp (host, port) ->
      let inet = Unix.inet_addr_of_string host in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      (fd, Unix.getsockname fd)
  in
  Unix.listen fd 64;
  t.listeners <- (fd, ep) :: t.listeners;
  t.accept_threads <- Thread.create (accept_loop t fd) () :: t.accept_threads;
  addr

(* {1 Shutdown} *)

let request_shutdown t =
  Mutex.protect t.sd_mu (fun () ->
      t.sd_requested <- true;
      Condition.broadcast t.sd_cond)

let wait t =
  Mutex.protect t.sd_mu (fun () ->
      while not t.sd_requested do
        Condition.wait t.sd_cond t.sd_mu
      done)

let stop t =
  Atomic.set t.stopping true;
  (* join before closing: accept threads exit within one poll interval,
     and the fds are guaranteed unused (no close/reuse race) *)
  List.iter Thread.join t.accept_threads;
  t.accept_threads <- [];
  List.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (* wake every reader: reads return 0, readers push Close, workers drain
     their queues (still answering what was admitted) and exit *)
  let live = Mutex.protect t.conns_mu (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []) in
  List.iter
    (fun (conn, _, _) ->
      try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    live;
  List.iter
    (fun (_, rt, wt) ->
      Thread.join rt;
      Thread.join wt)
    live;
  List.iter
    (fun (_, ep) -> match ep with
      | Unix_socket path -> (try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ())
    t.listeners;
  t.listeners <- [];
  request_shutdown t

let connections_seen t = Atomic.get t.next_conn

let requests_served t = Atomic.get t.served
