(** The socket front-end: {!Frame}-framed request serving over
    Unix-domain and TCP listeners, with bounded per-connection queues and
    admission control.

    Threading model: one accept thread per listener; per connection, a
    {e reader} thread (decode, admission check, enqueue) and a {e worker}
    thread (dequeue, evaluate, reply).  Threads — not domains — because
    connection I/O is blocking; evaluation itself happens inside the
    [eval] callback, which typically fans a batch out on the domain pool.
    All [eval] calls are serialised on an internal mutex, upholding the
    one-submission-at-a-time discipline of {!Hopi_util.Pool} no matter
    how many connections are live.

    Admission control: a request frame is rejected with a ['B'] (busy)
    frame — never silently dropped — when its connection already has
    [queue_depth] requests waiting, or the server as a whole has
    [max_inflight] requests admitted but unanswered.  Malformed frames
    answer ['E'] and (when the stream cannot be resynchronised) close the
    connection; a mid-frame disconnect is a clean close.  Nothing a
    client sends can take the server down, and connections never share
    queues, so one misbehaving peer cannot poison another — the protocol
    fuzz suite in [test/test_server.ml] drives exactly this.

    Observability: [hopi_server_connections_total] / [_open],
    [hopi_server_requests_total], [hopi_server_rejected_total],
    [hopi_server_protocol_errors_total], [hopi_server_inflight], and the
    [hopi_server_queue_wait_ns] histogram.  Per-request queue wait and
    connection ids additionally flow into {!Hopi_obs.Reqtrace} samples
    through the {!Batch.ctx} handed to [eval]. *)

type endpoint =
  | Unix_socket of string  (** path; unlinked on [bind] and on {!stop} *)
  | Tcp of string * int  (** bind address and port; port 0 = ephemeral *)

type handler = {
  eval : ctx:Batch.ctx -> Batch.query array -> int * Batch.answer array;
      (** Evaluate one request batch; returns the serving snapshot's
          epoch and the answers in input order.  Called with the server's
          eval mutex held (safe to submit to a shared {!Hopi_util.Pool});
          an exception answers the whole request with an ['E'] frame. *)
  control : string -> (string, string) result;
      (** Serve one control command; [Ok] text answers as ['R'] (epoch
          0), [Error] as ['E'].  Also serialised under the eval mutex. *)
}

type t

val create :
  ?max_inflight:int ->
  ?queue_depth:int ->
  ?max_frame_bytes:int ->
  handler ->
  t
(** [max_inflight] (default 64) caps admitted-but-unanswered requests
    across all connections; [queue_depth] (default 16) caps one
    connection's wait queue; [max_frame_bytes] (default
    {!Frame.default_max_bytes}) bounds a single frame. *)

val add_listener : t -> endpoint -> Unix.sockaddr
(** Bind, listen, and start accepting.  Returns the bound address — for
    [Tcp (_, 0)] the kernel-chosen port.
    @raise Unix.Unix_error when binding fails. *)

val request_shutdown : t -> unit
(** Make {!wait} return.  Idempotent; safe from any thread (the control
    handler calls this on [quit]). *)

val wait : t -> unit
(** Block until {!request_shutdown}. *)

val stop : t -> unit
(** Close listeners, shut down every connection, join all threads.
    In-queue requests admitted before [stop] are still answered. *)

val connections_seen : t -> int

val requests_served : t -> int
