(* K-shard split + scatter-gather routing (contract in the interface).

   Correctness rests on the paper's path decomposition: any path between
   elements of different partitions factors at its cross-partition link
   edges into within-partition segments glued by links.  The routing
   index therefore needs exactly (a) per-shard covers for the
   within-partition segments and (b) the transitive closure of the PSG —
   whose nodes are the cross-link endpoints, whose link edges are the
   cross links themselves, and whose within edges connect a link target
   to every link source it reaches inside its own partition.  A query
   crossing shards resolves as

     u ==within==> s  --PSG closure-->  t  ==within==> v

   minimised (for distances) over every source [s] of shard(u) and
   target [t] of shard(v); the closure is multi-hop, so paths that
   traverse — or re-enter — any number of shards are covered. *)

module Collection = Hopi_collection.Collection
module Partitioning = Hopi_collection.Partitioning
module Psg = Hopi_collection.Psg
module Digraph = Hopi_graph.Digraph
module Closure = Hopi_graph.Closure
module Builder = Hopi_twohop.Builder
module Dist_builder = Hopi_twohop.Dist_builder
module Cover = Hopi_twohop.Cover
module Dist_cover = Hopi_twohop.Dist_cover
module S = Hopi_storage
module Ihs = Hopi_util.Int_hashset
module Registry = Hopi_obs.Registry
module Counter = Hopi_obs.Counter

let m_single =
  Registry.counter "hopi_router_single_shard_total"
    ~help:"Queries answered by one shard without consulting the PSG closure"

let m_scatter =
  Registry.counter "hopi_router_scatter_total"
    ~help:"Queries resolved through the PSG closure across shards"

type split_stats = {
  shards : int;
  elements : int;
  cross_links : int;
  psg_closure : int;
  entries : int;
}

let shard_path ~dir k = Filename.concat dir (Printf.sprintf "shard-%03d.db" k)

let routing_path ~dir = Filename.concat dir "routing.idx"

let magic = "hopi-shard-routing 1"

(* {1 Split} *)

(* deterministic greedy balance: heaviest documents first, each to the
   currently lightest shard (ties: lowest shard index) *)
let assign_docs c k =
  let docs =
    Collection.doc_ids c
    |> List.map (fun d -> (d, Collection.n_elements_of_doc c d))
    |> List.sort (fun (d1, w1) (d2, w2) ->
           if w1 <> w2 then compare w2 w1 else compare d1 d2)
  in
  let load = Array.make k 0 in
  let part_of_doc = Hashtbl.create 64 in
  List.iter
    (fun (d, w) ->
      let best = ref 0 in
      for p = 1 to k - 1 do
        if load.(p) < load.(!best) then best := p
      done;
      load.(!best) <- load.(!best) + w;
      Hashtbl.replace part_of_doc d !best)
    docs;
  part_of_doc

(* weighted single-source shortest paths over the (tiny) PSG, starting
   from [s]'s out-edges so a cycle back to [s] is found at its real
   positive distance; [weight u v] may answer [None] for an edge that
   should not be crossed (never happens for well-formed PSGs). *)
let psg_from graph ~weight s =
  let dist = Hashtbl.create 16 in
  (* unvisited frontier as a simple priority list — PSGs are small *)
  let module Pq = Set.Make (struct
    type t = int * int (* distance, node *)

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  let relax d v =
    match Hashtbl.find_opt dist v with
    | Some d' when d' <= d -> ()
    | _ ->
      Hashtbl.replace dist v d;
      pq := Pq.add (d, v) !pq
  in
  Digraph.iter_succ graph s (fun v ->
      match weight s v with None -> () | Some w -> relax w v);
  let rec drain () =
    match Pq.min_elt_opt !pq with
    | None -> ()
    | Some ((d, u) as el) ->
      pq := Pq.remove el !pq;
      if Hashtbl.find_opt dist u = Some d then
        Digraph.iter_succ graph u (fun v ->
            match weight u v with None -> () | Some w -> relax (d + w) v);
      drain ()
  in
  drain ();
  dist

let split ?(dist = false) ?(fsync = true) ~k ~dir c =
  if k < 1 then invalid_arg "Router.split: k < 1";
  let k = max 1 (min k (max 1 (Collection.n_docs c))) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let part = Partitioning.make c ~part_of_doc:(assign_docs c k) ~n:k in
  (* per-shard: build the within-partition cover, persist it, and keep an
     in-memory reachability/distance oracle for the PSG edges *)
  let entries = ref 0 in
  let oracles =
    Array.init k (fun p ->
        let sub = Partitioning.element_subgraph part c p in
        let reach, pdist, load =
          if dist then begin
            let dc, _ = Dist_builder.build sub in
            ( Dist_cover.connected dc,
              Dist_cover.dist dc,
              fun store -> S.Cover_store.bulk_load_dist_cover store dc )
          end
          else begin
            let cover, _ = Builder.build (Closure.compute sub) in
            ( Cover.connected cover,
              (fun u v -> if Cover.connected cover u v then Some 0 else None),
              fun store -> S.Cover_store.bulk_load_cover store cover )
          end
        in
        let pager =
          S.Pager.create ~pool_pages:512 ~fsync (S.Pager.File (shard_path ~dir p))
        in
        let store = S.Cover_store.create pager in
        load store;
        S.Cover_store.save store;
        entries := !entries + S.Cover_store.n_entries store;
        S.Pager.close pager;
        (reach, pdist))
  in
  let reach_within t s =
    let p = Partitioning.part_of_element part c t in
    fst oracles.(p) t s
  in
  let psg = Psg.build c part ~reaches_within_partition:reach_within in
  let link_set = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace link_set e ()) psg.Psg.link_edges;
  (* PSG edge weights: a cross link is one real edge; a within edge costs
     the partition's stored distance (0 on plain covers, where only
     reachability matters) *)
  let weight u v =
    if Hashtbl.mem link_set (u, v) then Some 1
    else begin
      let p = Partitioning.part_of_element part c u in
      snd oracles.(p) u v
    end
  in
  let closure = ref [] and n_closure = ref 0 in
  Ihs.iter
    (fun s ->
      let d = psg_from psg.Psg.graph ~weight s in
      Hashtbl.iter
        (fun t dt ->
          if Ihs.mem psg.Psg.targets t then begin
            closure := (s, t, dt) :: !closure;
            incr n_closure
          end)
        d)
    psg.Psg.sources;
  (* the routing index: element map, cross links, PSG closure *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "shards %d\n" k);
  Buffer.add_string buf (Printf.sprintf "dist %d\n" (if dist then 1 else 0));
  let elems = ref [] and n_elems = ref 0 in
  Collection.iter_elements c (fun e ->
      elems := e :: !elems;
      incr n_elems);
  Buffer.add_string buf (Printf.sprintf "elements %d\n" !n_elems);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "e %d %d\n" e (Partitioning.part_of_element part c e)))
    (List.sort compare !elems);
  let links = List.sort compare psg.Psg.link_edges in
  Buffer.add_string buf (Printf.sprintf "links %d\n" (List.length links));
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "l %d %d\n" u v)) links;
  Buffer.add_string buf (Printf.sprintf "closure %d\n" !n_closure);
  List.iter
    (fun (s, t, d) -> Buffer.add_string buf (Printf.sprintf "c %d %d %d\n" s t d))
    (List.sort compare !closure);
  Buffer.add_string buf "end\n";
  let path = routing_path ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc buf;
  if fsync then flush oc;
  close_out oc;
  Sys.rename tmp path;
  {
    shards = k;
    elements = !n_elems;
    cross_links = List.length links;
    psg_closure = !n_closure;
    entries = !entries;
  }

(* {1 Loading} *)

type t = {
  k : int;
  with_dist : bool;
  snaps : Snapshot.t array;
  elem_shard : (int, int) Hashtbl.t;
  sources_of : int array array;  (* per shard, sorted cross-link sources *)
  targets_of : int array array;
  fwd : (int, (int * int) array) Hashtbl.t;  (* source -> (target, d) *)
  rev : (int, (int * int) array) Hashtbl.t;  (* target -> (source, d) *)
  entries : int;
}

let parse_error path line msg =
  raise (Sys_error (Printf.sprintf "%s: bad routing index (line %d): %s" path line msg))

let open_dir ?(pool_pages = 4096) ?(cache_mb = 64) dir =
  let path = routing_path ~dir in
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let lineno = ref 0 in
  let line () =
    incr lineno;
    match input_line ic with
    | l -> l
    | exception End_of_file -> parse_error path !lineno "truncated"
  in
  let fail msg = parse_error path !lineno msg in
  let counted prefix =
    match String.split_on_char ' ' (line ()) with
    | [ p; n ] when p = prefix -> (
      match int_of_string_opt n with Some n when n >= 0 -> n | _ -> fail (prefix ^ " count"))
    | _ -> fail ("expected \"" ^ prefix ^ " N\"")
  in
  if line () <> magic then fail "magic mismatch";
  let k = counted "shards" in
  if k < 1 then fail "no shards";
  let with_dist = counted "dist" <> 0 in
  let n_elems = counted "elements" in
  let elem_shard = Hashtbl.create (max 16 n_elems) in
  for _ = 1 to n_elems do
    match String.split_on_char ' ' (line ()) with
    | [ "e"; e; s ] -> (
      match (int_of_string_opt e, int_of_string_opt s) with
      | Some e, Some s when s >= 0 && s < k -> Hashtbl.replace elem_shard e s
      | _ -> fail "element line")
    | _ -> fail "element line"
  done;
  let n_links = counted "links" in
  let srcs = Array.make k [] and tgts = Array.make k [] in
  let shard_of_exn e =
    match Hashtbl.find_opt elem_shard e with
    | Some s -> s
    | None -> fail (Printf.sprintf "link endpoint %d not in the element map" e)
  in
  let src_seen = Ihs.create () and tgt_seen = Ihs.create () in
  for _ = 1 to n_links do
    match String.split_on_char ' ' (line ()) with
    | [ "l"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v ->
        if not (Ihs.mem src_seen u) then begin
          Ihs.add src_seen u;
          let s = shard_of_exn u in
          srcs.(s) <- u :: srcs.(s)
        end;
        if not (Ihs.mem tgt_seen v) then begin
          Ihs.add tgt_seen v;
          let s = shard_of_exn v in
          tgts.(s) <- v :: tgts.(s)
        end
      | _ -> fail "link line")
    | _ -> fail "link line"
  done;
  let n_closure = counted "closure" in
  let fwd_l = Hashtbl.create 64 and rev_l = Hashtbl.create 64 in
  let push h key x =
    Hashtbl.replace h key (x :: Option.value ~default:[] (Hashtbl.find_opt h key))
  in
  for _ = 1 to n_closure do
    match String.split_on_char ' ' (line ()) with
    | [ "c"; s; t; d ] -> (
      match (int_of_string_opt s, int_of_string_opt t, int_of_string_opt d) with
      | Some s, Some t, Some d when d >= 0 ->
        push fwd_l s (t, d);
        push rev_l t (s, d)
      | _ -> fail "closure line")
    | _ -> fail "closure line"
  done;
  if line () <> "end" then fail "missing end marker";
  let freeze h =
    let out = Hashtbl.create (Hashtbl.length h) in
    Hashtbl.iter
      (fun key l ->
        let a = Array.of_list l in
        Array.sort compare a;
        Hashtbl.replace out key a)
      h;
    out
  in
  (* one shared page pool and label cache across all shard snapshots *)
  let pool = S.Pager.Read_pool.create ~pages:pool_pages () in
  let cache = Label_cache.create ~capacity_bytes:(cache_mb * 1024 * 1024) () in
  let snaps = Array.init k (fun p -> Snapshot.open_file ~pool ~cache (shard_path ~dir p)) in
  let entries = Array.fold_left (fun acc s -> acc + Snapshot.n_entries s) 0 snaps in
  {
    k;
    with_dist;
    snaps;
    elem_shard;
    sources_of = Array.map (fun l -> Array.of_list (List.sort compare l)) srcs;
    targets_of = Array.map (fun l -> Array.of_list (List.sort compare l)) tgts;
    fwd = freeze fwd_l;
    rev = freeze rev_l;
    entries;
  }

let close t = Array.iter Snapshot.close t.snaps

let n_shards t = t.k

let with_dist t = t.with_dist

let n_nodes t = Hashtbl.length t.elem_shard

let n_entries t = t.entries

let shard_of t e = Hashtbl.find_opt t.elem_shard e

let fwd_of t s = Option.value ~default:[||] (Hashtbl.find_opt t.fwd s)

let rev_of t tg = Option.value ~default:[||] (Hashtbl.find_opt t.rev tg)

(* {1 Queries} *)

(* is there a cross path u ==> v (shards [a] and [b] may be equal: a path
   can leave shard [a] and come back)? *)
let cross_connected t a u b v =
  let tset = Ihs.create () in
  Array.iter
    (fun tg -> if Snapshot.connected t.snaps.(b) tg v then Ihs.add tset tg)
    t.targets_of.(b);
  (not (Ihs.is_empty tset))
  && Array.exists
       (fun s ->
         Snapshot.connected t.snaps.(a) u s
         && Array.exists (fun (tg, _) -> Ihs.mem tset tg) (fwd_of t s))
       t.sources_of.(a)

let connected t u v =
  match (shard_of t u, shard_of t v) with
  | Some a, Some b ->
    if a = b && Snapshot.connected t.snaps.(a) u v then begin
      Counter.incr m_single;
      true
    end
    else begin
      Counter.incr m_scatter;
      cross_connected t a u b v
    end
  | _ ->
    Counter.incr m_single;
    false

let min_distance t u v =
  match (shard_of t u, shard_of t v) with
  | None, _ | _, None ->
    Counter.incr m_single;
    None
  | Some a, Some b ->
    let direct = if a = b then Snapshot.min_distance t.snaps.(a) u v else None in
    if not t.with_dist then begin
      (* plain covers store every reachable pair at distance 0, exactly
         like an unsharded plain Cover_store *)
      match direct with
      | Some _ ->
        Counter.incr m_single;
        direct
      | None ->
        Counter.incr m_scatter;
        if cross_connected t a u b v then Some 0 else None
    end
    else begin
      Counter.incr (if a = b then m_single else m_scatter);
      (* even a same-shard pair may be closer through other shards *)
      let dv = Hashtbl.create 16 in
      Array.iter
        (fun tg ->
          match Snapshot.min_distance t.snaps.(b) tg v with
          | Some d -> Hashtbl.replace dv tg d
          | None -> ())
        t.targets_of.(b);
      let best = ref direct in
      let consider d = match !best with Some b when b <= d -> () | _ -> best := Some d in
      if Hashtbl.length dv > 0 then
        Array.iter
          (fun s ->
            match Snapshot.min_distance t.snaps.(a) u s with
            | None -> ()
            | Some du ->
              Array.iter
                (fun (tg, dpsg) ->
                  match Hashtbl.find_opt dv tg with
                  | Some dvv -> consider (du + dpsg + dvv)
                  | None -> ())
                (fwd_of t s))
          t.sources_of.(a);
      !best
    end

let descendants t u =
  match shard_of t u with
  | None ->
    Counter.incr m_single;
    Ihs.create ()
  | Some a ->
    let acc = Snapshot.descendants t.snaps.(a) u in
    let tset = Ihs.create () in
    Array.iter
      (fun s ->
        if Ihs.mem acc s then
          Array.iter (fun (tg, _) -> Ihs.add tset tg) (fwd_of t s))
      t.sources_of.(a);
    Counter.incr (if Ihs.is_empty tset then m_single else m_scatter);
    Ihs.iter
      (fun tg ->
        match shard_of t tg with
        | Some b -> Ihs.iter (fun w -> Ihs.add acc w) (Snapshot.descendants t.snaps.(b) tg)
        | None -> ())
      tset;
    acc

let ancestors t v =
  match shard_of t v with
  | None ->
    Counter.incr m_single;
    Ihs.create ()
  | Some b ->
    let acc = Snapshot.ancestors t.snaps.(b) v in
    let sset = Ihs.create () in
    Array.iter
      (fun tg ->
        if Ihs.mem acc tg then
          Array.iter (fun (s, _) -> Ihs.add sset s) (rev_of t tg))
      t.targets_of.(b);
    Counter.incr (if Ihs.is_empty sset then m_single else m_scatter);
    Ihs.iter
      (fun s ->
        match shard_of t s with
        | Some a -> Ihs.iter (fun w -> Ihs.add acc w) (Snapshot.ancestors t.snaps.(a) s)
        | None -> ())
      sset;
    acc

let engine t =
  {
    Batch.connected = connected t;
    min_distance = min_distance t;
    descendants = descendants t;
    ancestors = ancestors t;
    path_eval = None;
  }
