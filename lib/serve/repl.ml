(* The serve REPL (contract in the interface).  The CLI owns what the
   commands *do* (snapshot vs generation family vs shard router) through
   the [eval]/[control] callbacks; this module owns the line protocol and
   the shutdown discipline. *)

type outcome =
  | Eof
  | Quit
  | Output_closed of string

type stats = { served : int; outcome : outcome }

let run ?(batch_size = 1) ~read_line ~write_line ~eval ~control () =
  let served = ref 0 in
  let pending = ref [] and n_pending = ref 0 in
  let drain () =
    if !n_pending > 0 then begin
      let queries = Array.of_list (List.rev !pending) in
      pending := [];
      n_pending := 0;
      let answers = eval queries in
      Array.iter (fun a -> write_line (Batch.render a)) answers;
      served := !served + Array.length answers
    end
  in
  let write_now line =
    (* out-of-band lines keep input order: drain queued queries first *)
    drain ();
    write_line line
  in
  let finish outcome =
    (* drain what's queued, but a dead writer can't take the answers *)
    (try drain () with Sys_error _ | Unix.Unix_error _ -> ());
    { served = !served; outcome }
  in
  let rec loop () =
    match read_line () with
    | None | (exception Sys_error _) | (exception End_of_file) -> finish Eof
    | Some line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop ()
      else if line = "quit" then finish Quit
      else begin
        (match control line with
         | Some thunk ->
           (* recognition is pure; the thunk runs over a drained queue *)
           drain ();
           write_line
             (match thunk () with
              | reply -> reply
              | exception e -> "error: " ^ Printexc.to_string e)
         | None -> (
           match Batch.parse line with
           | Error e -> write_now ("error: " ^ e)
           | Ok q ->
             pending := q :: !pending;
             incr n_pending;
             if !n_pending >= batch_size then drain ()));
        loop ()
      end
  in
  try loop () with
  | Sys_error reason -> { served = !served; outcome = Output_closed reason }
  | Unix.Unix_error (err, fn, _) ->
    { served = !served; outcome = Output_closed (fn ^ ": " ^ Unix.error_message err) }

let stdin_reader () () =
  match input_line stdin with
  | line -> Some line
  | exception End_of_file -> None
  | exception Sys_error _ -> None

let stdout_writer () line =
  print_endline line;
  flush stdout
