(* Blocking frame-protocol client (contract in the interface). *)

type t = { fd : Unix.file_descr; mutable next_id : int }

type reply =
  | Answers of int * string list
  | Busy of string
  | Refused of string

let connect fd_domain addr =
  let fd = Unix.socket ~cloexec:true fd_domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; next_id = 1 }

let connect_unix path = connect Unix.PF_UNIX (Unix.ADDR_UNIX path)

let connect_tcp host port =
  connect Unix.PF_INET (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fd t = t.fd

let send_raw t b = Frame.write t.fd b

let read_reply_checked ?max_bytes ?expect_id t =
  match Frame.read ?max_bytes t.fd with
  | None -> Error "connection closed by the server"
  | exception End_of_file -> Error "reply truncated"
  | exception Frame.Protocol_error msg -> Error ("malformed reply: " ^ msg)
  | exception Unix.Unix_error (err, fn, _) -> Error (fn ^ ": " ^ Unix.error_message err)
  | Some { Frame.kind; id; payload } -> (
    match expect_id with
    | Some want when id <> want land 0xffffffff ->
      Error (Printf.sprintf "reply id %d does not match request id %d" id want)
    | _ -> (
      match kind with
      | Frame.Response -> (
        match Frame.response_payload payload with
        | Ok (epoch, lines) -> Ok (Answers (epoch, lines))
        | Error e -> Error e)
      | Frame.Busy -> Ok (Busy payload)
      | Frame.Error -> Ok (Refused payload)
      | k -> Error (Format.asprintf "unexpected %a frame from the server" Frame.pp_kind k)))

let read_reply ?max_bytes t = read_reply_checked ?max_bytes t

let roundtrip ?max_bytes t ~id frame =
  match Frame.write t.fd frame with
  | () -> read_reply_checked ?max_bytes ~expect_id:id t
  | exception Unix.Unix_error (err, fn, _) -> Error (fn ^ ": " ^ Unix.error_message err)

let request ?max_bytes t lines =
  let id = t.next_id in
  t.next_id <- id + 1;
  roundtrip ?max_bytes t ~id (Frame.request ~id lines)

let control ?max_bytes t cmd =
  let id = t.next_id in
  t.next_id <- id + 1;
  roundtrip ?max_bytes t ~id (Frame.control ~id cmd)
