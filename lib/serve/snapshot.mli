(** A read-only, multi-domain view of a persisted index file.

    [open_file] attaches to a page file written by [hopi build --store]
    (either a {!Hopi_storage.Cover_store} or the materialised-closure
    baseline, {!Hopi_storage.Closure_store}) and serves reachability and
    distance queries from it without ever writing a page.

    Concurrency model: the snapshot opens the store {e once}, as a shared
    read-only pager view ({!Hopi_storage.Pager.open_shared}) over a
    sharded read-only page pool, and every worker domain probes that one
    handle.  The B+-tree read path touches no mutable storage state; page
    lookups go through the pool's sharded locks, miss I/O serialises
    inside the pager, and a page any domain faulted in is warm for all of
    them — which is what keeps cold throughput from collapsing as reader
    domains are added (per-domain private pools thrashed and duplicated
    every read).  What domains additionally share is the immutable node
    registry (frozen into memory at open time) and the {!Label_cache},
    whose sharded entries are write-once encoded label sets.  This is
    what makes batch evaluation on a {!Hopi_util.Pool} safe without a
    global lock.

    Query semantics are identical to the underlying store's — the 2-hop
    test [(Lout(u) ∪ {u}) ∩ (Lin(v) ∪ {v}) ≠ ∅] with the paper's
    compensating probes for the implicit self-entries, and
    [min(dout(u,w) + din(w,v))] for distances — but label sets are
    fetched through the cache in their delta-encoded
    {!Hopi_twohop.Label_codec} form, so a warm probe is two codec stream
    merges instead of two B+-tree range scans. *)

type t

val open_file :
  ?pool_pages:int ->
  ?pool:Hopi_storage.Pager.Read_pool.t ->
  ?vfs:Hopi_storage.Vfs.t ->
  ?cache_mb:int ->
  ?shards:int ->
  ?cache:Label_cache.t ->
  ?epoch:int ->
  ?node_version:(int -> int) ->
  string ->
  t
(** Attach to a committed page file.  [pool_pages] (default 4096 pages =
    16 MiB) sizes the shared read-only page pool created for this
    snapshot; [pool] plugs in an externally owned
    {!Hopi_storage.Pager.Read_pool} instead (ignoring [pool_pages]) — the
    generational serving layer shares one pool across generations this
    way.  [vfs] (default the real file system) is the backing
    {!Hopi_storage.Vfs}, used by the fault-injection tests to exercise
    torn and failing reads through the shared read path.

    [cache_mb] (default 64) is the label-cache budget, 0 disables
    caching; [shards] is passed to {!Label_cache.create}.  [cache] plugs
    in an externally owned {!Label_cache} instead of creating a private
    one (ignoring [cache_mb]/[shards]).  [epoch] (default 0) tags the
    snapshot with the generation it was opened against; it is purely
    descriptive here and reported by {!epoch}.  [node_version] (default:
    constant 0) supplies the cache-key version of each node's labels
    ({!Label_cache.key}); it is captured at open time and must be
    immutable — a frozen map, not a view of live writer state — so every
    label fetched through this snapshot resolves to the same versioned
    key for its whole lifetime.
    @raise Hopi_storage.Storage_error.Storage_error on a missing file, a
    corrupt catalog, or an unrecoverable journal. *)

val close : t -> unit
(** Release the shared pager (dropping this snapshot's pages from the
    read pool).  Call after all in-flight batches have drained. *)

val kind : t -> [ `Cover | `Closure ]

val with_dist : t -> bool
(** Do stored labels carry distances (so {!min_distance} can answer more
    than 0/1-hop)? Always [false] for closure stores. *)

val n_nodes : t -> int
(** Registered nodes (cover stores); 0 for closure stores, which keep no
    node registry. *)

val n_entries : t -> int
(** Label entries (cover) or connections (closure). *)

val cache : t -> Label_cache.t

val read_pool : t -> Hopi_storage.Pager.Read_pool.t
(** The shared page pool this snapshot serves from (its own, or the one
    passed as [pool]). *)

val path : t -> string

val epoch : t -> int
(** The generation this snapshot was opened against (0 for standalone
    snapshots).  An in-flight batch holds one snapshot for all of its
    queries, so the epoch of every answer in a batch is the same — a batch
    never straddles a generation flip. *)

(** {1 Queries}

    All query functions may be called concurrently from any domain. *)

val mem_node : t -> int -> bool

val connected : t -> int -> int -> bool
(** [connected t u v]: does the stored index contain the connection
    [u ⇝ v]?  Reflexive ([u = v] answers [true] for any known node). *)

val min_distance : t -> int -> int -> int option
(** Shortest stored distance.  On a plain (distance-free) cover every
    reachable pair reports the stored distance 0; on a closure store
    reachable pairs report 0 as well — only a distance-aware cover
    ({!with_dist}) carries real path lengths. *)

val descendants : t -> int -> Hopi_util.Int_hashset.t
(** Every node reachable from the argument (including itself).  Backward
    index scans; not served from the label cache. *)

val ancestors : t -> int -> Hopi_util.Int_hashset.t
