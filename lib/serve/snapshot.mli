(** A read-only, multi-domain view of a persisted index file.

    [open_file] attaches to a page file written by [hopi build --store]
    (either a {!Hopi_storage.Cover_store} or the materialised-closure
    baseline, {!Hopi_storage.Closure_store}) and serves reachability and
    distance queries from it without ever writing a page.

    Concurrency model: the pager and B+-tree layers are single-domain
    structures, so the snapshot opens one private pager (and store handle)
    {e per worker domain}, lazily, keyed by [Domain.self ()].  Domains
    therefore never share mutable storage state; what they do share is the
    immutable node registry (frozen into memory at open time) and the
    {!Label_cache}, whose sharded entries are write-once arrays.  This is
    what makes batch evaluation on a {!Hopi_util.Pool} safe without a
    global lock.

    Query semantics are identical to the underlying store's — the 2-hop
    test [(Lout(u) ∪ {u}) ∩ (Lin(v) ∪ {v}) ≠ ∅] with the paper's
    compensating probes for the implicit self-entries, and
    [min(dout(u,w) + din(w,v))] for distances — but label sets are fetched
    through the cache as sorted arrays, so a warm probe is two array
    merges instead of two B+-tree range scans. *)

type t

val open_file :
  ?pool_pages:int ->
  ?cache_mb:int ->
  ?shards:int ->
  ?cache:Label_cache.t ->
  ?epoch:int ->
  ?node_version:(int -> int) ->
  string ->
  t
(** Attach to a committed page file.  [pool_pages] (default 256) sizes
    each per-domain pager's buffer pool; [cache_mb] (default 64) is the
    label-cache budget, 0 disables caching; [shards] is passed to
    {!Label_cache.create}.

    [cache] plugs in an externally owned {!Label_cache} instead of
    creating a private one (ignoring [cache_mb]/[shards]) — the
    generational serving layer shares one cache across generations this
    way.  [epoch] (default 0) tags the snapshot with the generation it was
    opened against; it is purely descriptive here and reported by
    {!epoch}.  [node_version] (default: constant 0) supplies the
    cache-key version of each node's labels ({!Label_cache.key}); it is
    captured at open time and must be immutable — a frozen map, not a view
    of live writer state — so every label fetched through this snapshot
    resolves to the same versioned key for its whole lifetime.
    @raise Hopi_storage.Storage_error.Storage_error on a missing file, a
    corrupt catalog, or an unrecoverable journal. *)

val close : t -> unit
(** Release every per-domain pager.  Call from the domain that owns the
    pool after all in-flight batches have drained. *)

val kind : t -> [ `Cover | `Closure ]

val with_dist : t -> bool
(** Do stored labels carry distances (so {!min_distance} can answer more
    than 0/1-hop)? Always [false] for closure stores. *)

val n_nodes : t -> int
(** Registered nodes (cover stores); 0 for closure stores, which keep no
    node registry. *)

val n_entries : t -> int
(** Label entries (cover) or connections (closure). *)

val cache : t -> Label_cache.t

val path : t -> string

val epoch : t -> int
(** The generation this snapshot was opened against (0 for standalone
    snapshots).  An in-flight batch holds one snapshot for all of its
    queries, so the epoch of every answer in a batch is the same — a batch
    never straddles a generation flip. *)

(** {1 Queries}

    All query functions may be called concurrently from any domain. *)

val mem_node : t -> int -> bool

val connected : t -> int -> int -> bool
(** [connected t u v]: does the stored index contain the connection
    [u ⇝ v]?  Reflexive ([u = v] answers [true] for any known node). *)

val min_distance : t -> int -> int -> int option
(** Shortest stored distance.  On a plain (distance-free) cover every
    reachable pair reports the stored distance 0; on a closure store
    reachable pairs report 0 as well — only a distance-aware cover
    ({!with_dist}) carries real path lengths. *)

val descendants : t -> int -> Hopi_util.Int_hashset.t
(** Every node reachable from the argument (including itself).  Backward
    index scans; not served from the label cache. *)

val ancestors : t -> int -> Hopi_util.Int_hashset.t
