(** The wire protocol of the socket front-end: length-prefixed binary
    frames carrying {!Batch} request/response lines.

    Layout (all integers big-endian):

    {v
    +-------------+----------+-----------+------------------+
    | len : u32   | kind: u8 | id : u32  | payload          |
    +-------------+----------+-----------+------------------+
    v}

    [len] counts every byte after the length field itself, so
    [len = 5 + |payload|] and a whole frame is [4 + len] bytes.  [id] is
    chosen by the client and echoed verbatim in the reply, which is what
    lets a client pipeline requests over one connection.

    Frame kinds:

    - ['Q'] request — payload is one or more {!Batch} query lines joined
      by ['\n'];
    - ['C'] control — payload is one serve control command
      ([stats], [metrics], [slowlog], [gens], [flip], [rollback],
      [apply OP], [quit]);
    - ['R'] response — payload is a [u32] snapshot epoch followed by one
      rendered answer line per query, joined by ['\n'], in request order;
    - ['E'] error — the request could not be served as a whole (protocol
      violation, control failure); payload is the reason.  Per-line query
      parse failures are {e not} errors: they answer [error: ...] in
      their slot of an ['R'] frame;
    - ['B'] busy — admission control rejected the request (queue full or
      too many requests in flight); payload is the reason.  The client
      should back off and retry.

    A frame whose [len] is below 5 or above the receiver's limit is
    unrecoverable (the stream cannot be resynchronised) and raises
    {!Protocol_error}; the server answers with an ['E'] frame and closes
    the connection.  An unknown kind byte with a believable length is
    recoverable: the payload is consumed and the frame is returned as
    {!constructor:Unknown}, so the server can answer ['E'] and keep the
    connection. *)

type kind =
  | Request
  | Control
  | Response
  | Error
  | Busy
  | Unknown of char

type t = { kind : kind; id : int; payload : string }

exception Protocol_error of string
(** The byte stream is not a frame stream (bad magic length, oversized
    declaration).  The connection must be closed. *)

val header_bytes : int
(** 9: the length field plus kind and id. *)

val default_max_bytes : int
(** Default cap on [len] (4 MiB): bounds the memory one connection can
    demand before any validation. *)

val pp_kind : Format.formatter -> kind -> unit

(** {1 Encoding} *)

val encode : kind -> id:int -> string -> Bytes.t
(** [encode kind ~id payload] is the whole frame, header included.
    @raise Invalid_argument on {!constructor:Unknown}. *)

val request : id:int -> string list -> Bytes.t
(** Query lines, joined by ['\n']. *)

val control : id:int -> string -> Bytes.t

val response : id:int -> epoch:int -> string list -> Bytes.t

val error : id:int -> string -> Bytes.t

val busy : id:int -> string -> Bytes.t

val response_payload : string -> (int * string list, string) result
(** Split an ['R'] payload into (epoch, answer lines). *)

(** {1 I/O}

    Blocking reads and writes on a connected socket (or any file
    descriptor).  Writes always write the whole frame; short writes are
    retried. *)

val read : ?max_bytes:int -> Unix.file_descr -> t option
(** Read one frame.  [None] on a clean end-of-stream at a frame
    boundary.
    @raise End_of_file when the stream ends inside a frame (truncation,
    mid-frame disconnect);
    @raise Protocol_error on an unrecoverable length;
    @raise Unix.Unix_error as the underlying reads do. *)

val write : Unix.file_descr -> Bytes.t -> unit
(** @raise Unix.Unix_error when the peer is gone ([EPIPE],
    [ECONNRESET]). *)
