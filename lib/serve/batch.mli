(** Batched query evaluation over a {!Snapshot} on a domain pool.

    The line-oriented query language served by [hopi serve]:

    - [reach U V] — is element [V] reachable from [U]? answers
      [true]/[false];
    - [dist U V] — shortest stored distance; answers an integer or
      [unreachable];
    - [desc U] / [anc U] — size of the descendant / ancestor set
      (including the node itself); answers an integer;
    - [path EXPR] — a path expression, delegated to the [path_eval]
      callback (the CLI wires {!Hopi_query.Eval} over a corpus in; a
      snapshot alone stores no tags, so without the callback this answers
      an error).

    [eval_batch] evaluates a whole array concurrently on a
    {!Hopi_util.Pool} and returns answers in input order — slot [i] always
    answers query [i], independent of which domain ran it (deterministic
    result ordering, the same discipline as the parallel build).  A query
    that raises is answered as {!constructor:Failed}, never by killing the
    batch.

    Metrics: [hopi_serve_queries_total], [hopi_serve_batches_total],
    [hopi_serve_query_duration_ns], [hopi_serve_batch_duration_ns] and the
    [hopi_serve_throughput_qps] gauge (queries per second of the last
    batch).  Every query additionally runs under a
    {!Hopi_obs.Reqtrace} request: per-kind latency histograms
    ([hopi_serve_query_kind_<kind>_duration_ns]), the [serve_query] SLO
    gauges, and — when a slow-query threshold is configured — a
    ring-buffered slow-query log attributing label-cache hits/misses,
    label probes and pager reads to the individual request. *)

type query =
  | Reach of int * int
  | Dist of int * int
  | Desc of int
  | Anc of int
  | Path of string

type answer =
  | Bool of bool
  | Distance of int option
  | Count of int
  | Rendered of string  (** a [path] result rendered by the evaluator *)
  | Failed of string

val parse : string -> (query, string) result
(** Parse one input line.  Leading/trailing blanks are ignored; the caller
    filters empty and [#]-comment lines. *)

val render : answer -> string
(** One output line per answer: [true]/[false], an integer, [unreachable],
    or [error: ...]. *)

val pp_query : Format.formatter -> query -> unit

type path_eval = string -> (string, string) result
(** Evaluate a path expression and render its result as one line; [Error]
    becomes {!constructor:Failed}.  Must be safe to call from any domain of
    the pool. *)

type ctx = { conn : int; queue_wait_ns : int }
(** Request context threaded into {!Hopi_obs.Reqtrace} samples by the
    socket server: the connection the batch arrived on and how long it
    waited in the admission queue.  Locally evaluated queries use no
    context (both report 0). *)

type engine = {
  connected : int -> int -> bool;
  min_distance : int -> int -> int option;
  descendants : int -> Hopi_util.Int_hashset.t;
  ancestors : int -> Hopi_util.Int_hashset.t;
  path_eval : path_eval option;
}
(** What evaluation needs from an index: the four query callbacks (with
    {!Snapshot}'s semantics — reflexive reachability for known nodes,
    [desc]/[anc] including the node itself, unknown ids unreachable and
    empty) plus the optional path evaluator.  All callbacks must be safe
    from any pool domain.  {!Router.engine} routes these over K shards;
    {!engine_of_snapshot} binds them to one store. *)

val engine_of_snapshot : ?path_eval:path_eval -> Snapshot.t -> engine

val eval : ?path_eval:path_eval -> Snapshot.t -> query -> answer
(** Evaluate one query (counted and timed). *)

val eval_engine : ?ctx:ctx -> engine -> query -> answer

val eval_batch :
  ?path_eval:path_eval -> pool:Hopi_util.Pool.t -> Snapshot.t -> query array -> answer array
(** Evaluate a batch on the pool; answers land at their query's index. *)

val eval_batch_engine :
  ?ctx:ctx -> pool:Hopi_util.Pool.t -> engine -> query array -> answer array
(** {!eval_batch} over an arbitrary {!engine}, tagging every sample with
    the request context. *)
