(* Generational store swap — see the interface for the serving model.

   Locking: [wmu] serialises the writer side (apply/flip/rollback) and is
   never held while answering queries; [mu] guards the slot table and is
   held only for pointer swaps and refcount arithmetic, so acquiring a
   snapshot costs one short critical section even while a flip is busy
   persisting megabytes.  Lock order is wmu -> mu; no query path takes
   wmu, which is what "serving never pauses" rests on.

   Cache versioning: [versions] maps a node to the generation of its last
   label change, [floor] is the global lower bound raised on wholesale
   rebuilds.  Each snapshot freezes a copy at open time, so the key a
   reader computes for a node can never drift while its batch runs; an
   entry cached under an old version is never *wrong*, merely unreachable
   once every snapshot of that vintage is gone — flip-time eviction is
   space reclamation, not a correctness mechanism. *)

module S = Hopi_storage
module Hopi = Hopi_core.Hopi
module Collection = Hopi_collection.Collection
module Cover = Hopi_twohop.Cover
module Dist_cover = Hopi_twohop.Dist_cover
module Ihs = Hopi_util.Int_hashset
module Timer = Hopi_util.Timer
module Registry = Hopi_obs.Registry
module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Histogram = Hopi_obs.Histogram

let g_live =
  Registry.gauge "hopi_serve_generation_live"
    ~help:"Generation currently being served"

let g_lag =
  Registry.gauge "hopi_serve_generation_lag_ops"
    ~help:"Applied maintenance operations not yet flipped into a served generation"

let g_retained =
  Registry.gauge "hopi_serve_generations_retained"
    ~help:"Generations currently open (live, rollback target, reader-pinned)"

let g_flip_last =
  Registry.gauge "hopi_serve_generation_flip_last_ns"
    ~help:"Duration of the most recent generation flip"

let h_flip =
  Registry.histogram "hopi_serve_generation_flip_duration_ns"
    ~help:"Generation flip durations (persist + manifest commit + swap)"

let c_flips =
  Registry.counter "hopi_serve_generation_flips_total"
    ~help:"Generation flips completed"

let c_rollbacks =
  Registry.counter "hopi_serve_generation_rollbacks_total"
    ~help:"Serving rollbacks to the previous generation"

let c_invalidated =
  Registry.counter "hopi_serve_generation_invalidated_total"
    ~help:"Label-cache entries evicted by flips because churn dirtied their node"

type slot = { id : int; snap : Snapshot.t; mutable refs : int }

type t = {
  base : string;
  index : Hopi.t;
  cache : Label_cache.t;
  page_pool : S.Pager.Read_pool.t; (* one read pool across all generations *)
  pool_pages : int;
  retain : int;
  fsync : bool;
  with_dist : bool;
  wmu : Mutex.t; (* writer side: apply/flip/rollback *)
  mu : Mutex.t; (* slot table, live pointer, manifest mirror *)
  dirty : Ihs.t; (* nodes whose labels changed since the last flip *)
  versions : (int, int) Hashtbl.t; (* node -> generation of last label change *)
  mutable floor : int;
  mutable need_floor : bool; (* next flip must invalidate wholesale *)
  mutable tracked_cover : Cover.t;
  mutable tracked_dist : Dist_cover.t option;
  mutable manifest : S.Manifest.t;
  mutable live_slot : slot;
  mutable slots : slot list;
  mutable pending : int;
  mutable closed : bool;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* {1 Persistence} *)

let persist_store ~with_dist idx pager =
  let st = S.Cover_store.create pager in
  if with_dist then S.Cover_store.bulk_load_dist_cover st (Hopi.distance_index idx)
  else S.Cover_store.bulk_load_cover st (Hopi.cover idx);
  S.Cover_store.save st

(* {1 Dirty tracking}

   The hooks land on whatever cover/dist objects the index currently
   holds.  [Hopi.rebuild] (through [apply_with]) and the post-delete
   distance-index recomputation replace those objects wholesale; when a
   refresh notices the swap it cannot attribute the differences to nodes,
   so it schedules a version-floor raise instead. *)

let refresh_cover_tracker t =
  let cov = Hopi.cover t.index in
  if not (cov == t.tracked_cover) then begin
    Cover.set_on_label_change t.tracked_cover None;
    Cover.set_on_label_change cov (Some (fun v -> Ihs.add t.dirty v));
    t.tracked_cover <- cov;
    t.need_floor <- true
  end

(* Only called from [flip]: forcing [distance_index] rebuilds it when a
   deletion invalidated it, which is exactly the work the flip must do to
   persist anyway — doing it per-[apply] would rebuild once per op. *)
let refresh_dist_tracker t =
  let dc = Hopi.distance_index t.index in
  let same = match t.tracked_dist with Some old -> old == dc | None -> false in
  if not same then begin
    (match t.tracked_dist with
     | Some old -> Dist_cover.set_on_label_change old None
     | None -> ());
    Dist_cover.set_on_label_change dc (Some (fun v -> Ihs.add t.dirty v));
    t.tracked_dist <- Some dc;
    t.need_floor <- true
  end

(* {1 Slots} *)

let node_version_fn t =
  let tbl = Hashtbl.copy t.versions in
  let floor = t.floor in
  fun v ->
    match Hashtbl.find_opt tbl v with Some k when k > floor -> k | _ -> floor

let open_slot t g =
  let snap =
    Snapshot.open_file ~pool:t.page_pool ~cache:t.cache ~epoch:g
      ~node_version:(node_version_fn t)
      (S.Manifest.gen_path ~base:t.base g)
  in
  { id = g; snap; refs = 0 }

let protected t id =
  id = t.manifest.S.Manifest.live || id = t.manifest.S.Manifest.previous

(* Close drained, unprotected generations; delete files that fell out of
   the retain window.  Caller holds [mu]. *)
let sweep_locked t =
  let drop, keep =
    List.partition
      (fun s -> s.refs = 0 && not (s == t.live_slot) && not (protected t s.id))
      t.slots
  in
  List.iter
    (fun s ->
      Snapshot.close s.snap;
      if s.id >= 1 && s.id <= t.manifest.S.Manifest.tip - t.retain then begin
        let p = S.Manifest.gen_path ~base:t.base s.id in
        (try Sys.remove p with Sys_error _ -> ());
        (try Sys.remove (p ^ "-journal") with Sys_error _ -> ())
      end)
    drop;
  t.slots <- keep;
  Gauge.set g_retained (List.length keep)

(* {1 Lifecycle} *)

let create ?(pool_pages = 4096) ?(cache_mb = 64) ?shards ?(retain = 2)
    ?(fsync = true) ?(with_dist = false) ~base index =
  let cache =
    Label_cache.create ?shards ~capacity_bytes:(cache_mb * 1024 * 1024) ()
  in
  (* one shared read pool for every generation this family will serve:
     pages untouched by a flip stay warm across the swap *)
  let page_pool = S.Pager.Read_pool.create ~pages:pool_pages () in
  let manifest =
    match S.Manifest.recover ~base () with
    | Some m -> m
    | None ->
      (* First open of this family: adopt an existing store file as
         generation 0, or persist the index as one. *)
      if not (Sys.file_exists base) then begin
        let pager =
          S.Pager.create ~pool_pages:(max pool_pages 512) ~fsync (S.Pager.File base)
        in
        persist_store ~with_dist index pager;
        S.Pager.close pager
      end;
      let m = { S.Manifest.live = 0; previous = 0; tip = 0 } in
      S.Manifest.commit ~fsync ~base m;
      m
  in
  let snap =
    Snapshot.open_file ~pool:page_pool ~cache ~epoch:manifest.S.Manifest.live
      (S.Manifest.gen_path ~base manifest.S.Manifest.live)
  in
  let slot = { id = manifest.S.Manifest.live; snap; refs = 0 } in
  let t =
    { base; index; cache; page_pool; pool_pages; retain; fsync; with_dist;
      wmu = Mutex.create (); mu = Mutex.create (); dirty = Ihs.create ();
      versions = Hashtbl.create 256; floor = 0; need_floor = false;
      tracked_cover = Hopi.cover index; tracked_dist = None; manifest;
      live_slot = slot; slots = [ slot ]; pending = 0; closed = false }
  in
  Cover.set_on_label_change t.tracked_cover (Some (fun v -> Ihs.add t.dirty v));
  if with_dist then begin
    let dc = Hopi.distance_index index in
    Dist_cover.set_on_label_change dc (Some (fun v -> Ihs.add t.dirty v));
    t.tracked_dist <- Some dc
  end;
  Gauge.set g_live manifest.S.Manifest.live;
  Gauge.set g_lag 0;
  Gauge.set g_retained 1;
  t

let close t =
  with_lock t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        List.iter (fun s -> Snapshot.close s.snap) t.slots;
        t.slots <- [];
        Gauge.set g_retained 0
      end);
  Cover.set_on_label_change t.tracked_cover None;
  match t.tracked_dist with
  | Some dc -> Dist_cover.set_on_label_change dc None
  | None -> ()

(* {1 Reader side} *)

let acquire t =
  with_lock t.mu (fun () ->
      if t.closed then invalid_arg "Hopi_serve.Generation: closed";
      let s = t.live_slot in
      s.refs <- s.refs + 1;
      s.snap)

let release t snap =
  with_lock t.mu (fun () ->
      match List.find_opt (fun s -> s.snap == snap) t.slots with
      | None -> invalid_arg "Hopi_serve.Generation.release: unknown snapshot"
      | Some s ->
        if s.refs <= 0 then invalid_arg "Hopi_serve.Generation.release: not acquired";
        s.refs <- s.refs - 1;
        sweep_locked t)

let with_snapshot t f =
  let snap = acquire t in
  Fun.protect ~finally:(fun () -> release t snap) (fun () -> f snap)

(* {1 Operations} *)

type op =
  | Add_link of int * int
  | Del_link of int * int
  | Add_doc of { name : string; xml : string }
  | Del_doc of string
  | Add_element of { doc : int; parent : int; tag : string }
  | Del_subtree of int

let pp_op ppf = function
  | Add_link (u, v) -> Format.fprintf ppf "add-link %d %d" u v
  | Del_link (u, v) -> Format.fprintf ppf "del-link %d %d" u v
  | Add_doc { name; xml } -> Format.fprintf ppf "add-doc %s %s" name xml
  | Del_doc name -> Format.fprintf ppf "del-doc %s" name
  | Add_element { doc; parent; tag } ->
    Format.fprintf ppf "add-element %d %d %s" doc parent tag
  | Del_subtree e -> Format.fprintf ppf "del-subtree %d" e

let int_arg what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" what s)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* [add-doc NAME XML...] keeps the raw remainder of the line as the XML
   source (it may contain any spacing), so parsing is positional. *)
let split_token s pos =
  let n = String.length s in
  let i = ref pos in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  if !i >= n then None
  else begin
    let j = ref !i in
    while !j < n && s.[!j] <> ' ' && s.[!j] <> '\t' do incr j done;
    Some (String.sub s !i (!j - !i), !j)
  end

let parse_op line =
  match split_token line 0 with
  | None -> Error "empty operation"
  | Some (cmd, after_cmd) ->
    let rest =
      String.trim (String.sub line after_cmd (String.length line - after_cmd))
    in
    let toks = String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") in
    (match cmd, toks with
     | "add-link", [ u; v ] ->
       let* u = int_arg "source" u in
       let* v = int_arg "target" v in
       Ok (Add_link (u, v))
     | "del-link", [ u; v ] ->
       let* u = int_arg "source" u in
       let* v = int_arg "target" v in
       Ok (Del_link (u, v))
     | "add-doc", _ ->
       (match split_token line after_cmd with
        | None -> Error "add-doc: missing document name"
        | Some (name, after_name) ->
          let xml =
            String.trim
              (String.sub line after_name (String.length line - after_name))
          in
          if xml = "" then Error "add-doc: missing XML source"
          else Ok (Add_doc { name; xml }))
     | "del-doc", [ name ] -> Ok (Del_doc name)
     | "add-element", [ doc; parent; tag ] ->
       let* doc = int_arg "doc" doc in
       let* parent = int_arg "parent" parent in
       Ok (Add_element { doc; parent; tag })
     | "del-subtree", [ e ] ->
       let* e = int_arg "element" e in
       Ok (Del_subtree e)
     | ("add-link" | "del-link" | "del-doc" | "add-element" | "del-subtree"), _ ->
       Error (Printf.sprintf "%s: wrong number of arguments" cmd)
     | _ ->
       Error
         (Printf.sprintf
            "unknown operation %S (expected add-link | del-link | add-doc | \
             del-doc | add-element | del-subtree)"
            cmd))

let guard f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument m -> Error m
  | exception Failure m -> Error m
  | exception Not_found -> Error "target not found"

let apply_to_index idx op =
  let c = Hopi.collection idx in
  match op with
  | Add_link (u, v) ->
    guard (fun () ->
        let kind =
          match Hopi.insert_link idx u v with
          | Collection.Tree -> "tree"
          | Collection.Intra -> "intra"
          | Collection.Inter -> "inter"
        in
        Printf.sprintf "linked %d -> %d (%s)" u v kind)
  | Del_link (u, v) ->
    guard (fun () ->
        Hopi.remove_link idx u v;
        Printf.sprintf "unlinked %d -> %d" u v)
  | Add_doc { name; xml } ->
    (match Collection.find_doc c name with
     | Some _ -> Error (Printf.sprintf "document %S already exists" name)
     | None ->
       (match guard (fun () -> Hopi.insert_document_xml idx ~name xml) with
        | Error _ as e -> e
        | Ok (Error e) ->
          Error (Format.asprintf "%s: %a" name Hopi_xml.Xml_parser.pp_error e)
        | Ok (Ok did) ->
          Ok (Printf.sprintf "document %S inserted as doc %d" name did)))
  | Del_doc name ->
    (match Collection.find_doc c name with
     | None -> Error (Printf.sprintf "no document named %S" name)
     | Some did ->
       guard (fun () ->
           let st = Hopi.remove_document idx did in
           Printf.sprintf "document %S deleted (%s, %d nodes recomputed)" name
             (if st.Hopi_core.Maintenance.separating then
                "separating fast path"
              else "general path")
             st.Hopi_core.Maintenance.recomputed_nodes))
  | Add_element { doc; parent; tag } ->
    guard (fun () ->
        let e = Hopi.insert_element idx ~doc ~parent ~tag in
        Printf.sprintf "element %d (<%s>) inserted under %d" e tag parent)
  | Del_subtree e ->
    guard (fun () ->
        let recomputed = Hopi.remove_subtree idx e in
        Printf.sprintf "subtree %d removed (%d nodes recomputed)" e recomputed)

let bump_pending t =
  with_lock t.mu (fun () ->
      t.pending <- t.pending + 1;
      Gauge.set g_lag t.pending)

let apply t op =
  with_lock t.wmu (fun () ->
      refresh_cover_tracker t;
      let r = apply_to_index t.index op in
      (match r with Ok _ -> bump_pending t | Error _ -> ());
      r)

let apply_with t f =
  with_lock t.wmu (fun () ->
      refresh_cover_tracker t;
      let r = f t.index in
      bump_pending t;
      r)

(* {1 Generation control} *)

type flip_stats = {
  generation : int;
  duration_ns : int;
  dirtied : int;
  invalidated : int;
  full_invalidation : bool;
}

let flip t =
  with_lock t.wmu (fun () ->
      let timer = Timer.start () in
      refresh_cover_tracker t;
      if t.with_dist then refresh_dist_tracker t;
      let m' =
        S.Manifest.publish ~fsync:t.fsync ~pool_pages:(max t.pool_pages 512)
          ~base:t.base
          ~load:(fun pgr -> persist_store ~with_dist:t.with_dist t.index pgr)
          ()
      in
      let g = m'.S.Manifest.live in
      let full = t.need_floor in
      let dirty_nodes = Ihs.to_list t.dirty in
      let dirtied = List.length dirty_nodes in
      let invalidated =
        if full then begin
          (* per-node attribution is meaningless after a wholesale rebuild:
             raise the floor so every pre-flip key becomes unreachable *)
          t.floor <- g;
          t.need_floor <- false;
          Hashtbl.reset t.versions;
          0
        end
        else
          List.fold_left
            (fun acc v ->
              let ov =
                match Hashtbl.find_opt t.versions v with
                | Some k when k > t.floor -> k
                | _ -> t.floor
              in
              let evict dir =
                if Label_cache.remove t.cache (Label_cache.key ~version:ov dir v)
                then 1
                else 0
              in
              let acc = acc + evict Label_cache.Lin + evict Label_cache.Lout in
              Hashtbl.replace t.versions v g;
              acc)
            0 dirty_nodes
      in
      Ihs.clear t.dirty;
      let slot = open_slot t g in
      with_lock t.mu (fun () ->
          t.manifest <- m';
          t.slots <- slot :: t.slots;
          t.live_slot <- slot;
          t.pending <- 0;
          sweep_locked t);
      let ns = Int64.to_int (Timer.elapsed_ns timer) in
      Counter.incr c_flips;
      Counter.add c_invalidated invalidated;
      Histogram.observe h_flip ns;
      Gauge.set g_flip_last ns;
      Gauge.set g_live g;
      Gauge.set g_lag 0;
      { generation = g; duration_ns = ns; dirtied; invalidated;
        full_invalidation = full })

let rollback t =
  with_lock t.wmu (fun () ->
      let m' = S.Manifest.rollback ~fsync:t.fsync ~base:t.base () in
      with_lock t.mu (fun () ->
          if m'.S.Manifest.live <> t.live_slot.id then begin
            match
              List.find_opt (fun s -> s.id = m'.S.Manifest.live) t.slots
            with
            | Some s ->
              t.manifest <- m';
              t.live_slot <- s;
              Counter.incr c_rollbacks;
              Gauge.set g_live s.id;
              sweep_locked t
            | None ->
              (* unreachable through this module's own retention rules:
                 [previous] is never swept *)
              invalid_arg
                "Hopi_serve.Generation.rollback: target generation not retained"
          end
          else t.manifest <- m');
      m'.S.Manifest.live)

(* {1 Introspection} *)

let live t = with_lock t.mu (fun () -> t.live_slot.id)

let previous t = with_lock t.mu (fun () -> t.manifest.S.Manifest.previous)

let tip t = with_lock t.mu (fun () -> t.manifest.S.Manifest.tip)

let pending_ops t = with_lock t.mu (fun () -> t.pending)

let retained t = with_lock t.mu (fun () -> List.length t.slots)

let index t = t.index

let cache t = t.cache
