(** Zero-downtime serving over a mutating index: generational store swap.

    The paper's incremental maintenance (Section 6) mutates an in-memory
    index, while {!Snapshot} serves a frozen store file — this module
    closes the gap.  A [Generation.t] owns both sides:

    - the {e writer side}: the live {!Hopi_core.Hopi.t}, mutated through
      {!apply} (single-writer; every mutation is tracked node-by-node via
      [Cover.set_on_label_change]);
    - the {e serving side}: a family of immutable store files named by a
      {!Hopi_storage.Manifest}, each wrapped in a refcounted {!Snapshot}.

    Readers call {!acquire}/{!release} (or {!with_snapshot}) around each
    batch; {!flip} persists the accumulated churn as generation [N+1],
    commits the manifest, and atomically redirects subsequent acquisitions
    — in-flight batches keep their generation-[N] snapshot and drain
    undisturbed, and [N] stays open as the {!rollback} target.  Serving
    never pauses: the heavy store write happens before the swap, and the
    swap itself is a pointer update under a mutex held for nanoseconds.

    One {!Label_cache} is shared across all generations.  Entry keys carry
    the {e version} of the node's labels ({!Label_cache.key}): a flip
    bumps the version of exactly the nodes the churn dirtied, evicts their
    old entries, and leaves every untouched entry shared between the old
    and new snapshots — no full-cache flush, warm hit rates across flips.
    When a flip cannot attribute changes to specific nodes (the cover was
    wholesale rebuilt, or the distance index was recomputed after a
    delete), it raises a global version floor instead: all prior entries
    become unreachable and age out; correctness never depends on eviction
    because stale versions are simply never requested.

    Metrics: [hopi_serve_generation_live], [hopi_serve_generation_lag_ops],
    [hopi_serve_generations_retained], [hopi_serve_generation_flip_last_ns],
    [hopi_serve_generation_flip_duration_ns],
    [hopi_serve_generation_flips_total],
    [hopi_serve_generation_rollbacks_total],
    [hopi_serve_generation_invalidated_total]. *)

type t

val create :
  ?pool_pages:int ->
  ?cache_mb:int ->
  ?shards:int ->
  ?retain:int ->
  ?fsync:bool ->
  ?with_dist:bool ->
  base:string ->
  Hopi_core.Hopi.t ->
  t
(** Open (or found) the generation family rooted at the store path
    [base].  If a manifest exists it is crash-recovered and serving starts
    from its live generation; otherwise generation 0 is the existing store
    file at [base], or — when no file exists — the given index persisted
    there, and a fresh manifest is committed.  [retain] (default 2) is how
    many generations beyond the live/rollback pair keep their store files
    on disk; [with_dist] selects distance-aware stores
    ({!Hopi_core.Hopi.distance_index}) over plain covers.  [pool_pages]
    (default 4096) sizes the {e one} shared read-only page pool every
    generation's snapshot serves from — pages of store regions a flip did
    not rewrite stay warm across the swap.  The caller must
    not mutate the index except through {!apply}/{!apply_with}. *)

(** {1 Reader side} *)

val acquire : t -> Snapshot.t
(** Pin and return the live generation's snapshot.  The returned snapshot
    stays valid — and its store file open — until the matching
    {!release}, regardless of intervening flips.  Safe from any domain. *)

val release : t -> Snapshot.t -> unit
(** Unpin a snapshot obtained from {!acquire}.  A drained, unprotected
    old generation is closed here (and its file deleted once it falls out
    of the retain window). *)

val with_snapshot : t -> (Snapshot.t -> 'a) -> 'a
(** [acquire]/[release] around [f], exception-safe. *)

(** {1 Writer side} *)

type op =
  | Add_link of int * int
  | Del_link of int * int
  | Add_doc of { name : string; xml : string }
  | Del_doc of string
  | Add_element of { doc : int; parent : int; tag : string }
  | Del_subtree of int
      (** The churn vocabulary of the serve protocol — the maintenance
          entry points of Section 6 (insertions, separating and general
          deletions) addressable from a text line. *)

val parse_op : string -> (op, string) result
(** Parse one protocol line: [add-link U V], [del-link U V],
    [add-doc NAME XML...], [del-doc NAME], [add-element DOC PARENT TAG],
    [del-subtree E]. *)

val pp_op : Format.formatter -> op -> unit
(** Prints the {!parse_op} syntax back. *)

val apply_to_index : Hopi_core.Hopi.t -> op -> (string, string) result
(** Apply one operation to a bare index — the exact semantics {!apply}
    uses, exposed so a differential harness can replay a recorded
    sequence against an offline twin.  [Ok] carries a human-readable
    description (e.g. which delete path Theorem 2/3 chose), [Error] a
    reason (unknown target, duplicate name, XML parse failure); failed
    operations leave the index unchanged. *)

val apply : t -> op -> (string, string) result
(** Apply churn to the writer index for the {e next} generation.  Serving
    is unaffected until {!flip}.  Serialised with other writers and with
    {!flip}/{!rollback}. *)

val apply_with : t -> (Hopi_core.Hopi.t -> 'a) -> 'a
(** Run an arbitrary mutation under the writer lock (tests and embedders;
    counts as one pending operation).  If the function swaps whole index
    structures (e.g. [Hopi.rebuild]) the next flip detects it and falls
    back to full cache invalidation. *)

(** {1 Generation control} *)

type flip_stats = {
  generation : int;  (** the generation now live *)
  duration_ns : int;
  dirtied : int;  (** distinct nodes whose labels the churn touched *)
  invalidated : int;  (** label-cache entries evicted for those nodes *)
  full_invalidation : bool;
      (** the version floor was raised instead of per-node eviction *)
}

val flip : t -> flip_stats
(** Persist the writer index as generation [tip + 1], commit the
    manifest, bump the dirtied nodes' cache versions (evicting their old
    entries), and swap the live snapshot.  Readers already inside a batch
    finish on the old generation; new acquisitions get the new one.  The
    previous live generation is retained open for {!rollback}. *)

val rollback : t -> int
(** Swap serving back to the pre-flip generation (manifest [previous]);
    returns the now-live generation.  Serving-side only: the writer index
    keeps its churn, and the next {!flip} publishes it as a fresh
    generation.  A second rollback swaps forward again.
    @raise Invalid_argument if the target generation is no longer open
    (cannot happen through this module's own retention rules). *)

(** {1 Introspection} *)

val live : t -> int

val previous : t -> int

val tip : t -> int

val pending_ops : t -> int
(** Successfully applied operations not yet flipped — the generation lag,
    also exported as [hopi_serve_generation_lag_ops]. *)

val retained : t -> int
(** Generations currently open (live, rollback target, and any still
    pinned by in-flight readers). *)

val index : t -> Hopi_core.Hopi.t
(** The writer index.  Do not mutate it directly — use {!apply}. *)

val cache : t -> Label_cache.t

val close : t -> unit
(** Close every retained snapshot.  Callers must have drained readers. *)
