(* Length-prefixed binary framing (layout in the interface). *)

type kind =
  | Request
  | Control
  | Response
  | Error
  | Busy
  | Unknown of char

type t = { kind : kind; id : int; payload : string }

exception Protocol_error of string

let header_bytes = 9

let default_max_bytes = 4 * 1024 * 1024

let byte_of_kind = function
  | Request -> 'Q'
  | Control -> 'C'
  | Response -> 'R'
  | Error -> 'E'
  | Busy -> 'B'
  | Unknown c -> invalid_arg (Printf.sprintf "Frame.encode: unknown kind %C" c)

let kind_of_byte = function
  | 'Q' -> Request
  | 'C' -> Control
  | 'R' -> Response
  | 'E' -> Error
  | 'B' -> Busy
  | c -> Unknown c

let pp_kind ppf = function
  | Request -> Format.pp_print_string ppf "request"
  | Control -> Format.pp_print_string ppf "control"
  | Response -> Format.pp_print_string ppf "response"
  | Error -> Format.pp_print_string ppf "error"
  | Busy -> Format.pp_print_string ppf "busy"
  | Unknown c -> Format.fprintf ppf "unknown(%C)" c

let set_u32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let get_u32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let encode kind ~id payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  set_u32 b 0 (5 + n);
  Bytes.set b 4 (byte_of_kind kind);
  set_u32 b 5 (id land 0xffffffff);
  Bytes.blit_string payload 0 b header_bytes n;
  b

let request ~id lines = encode Request ~id (String.concat "\n" lines)

let control ~id cmd = encode Control ~id cmd

let response ~id ~epoch lines =
  let body = String.concat "\n" lines in
  let payload = Bytes.create (4 + String.length body) in
  set_u32 payload 0 (epoch land 0xffffffff);
  Bytes.blit_string body 0 payload 4 (String.length body);
  encode Response ~id (Bytes.unsafe_to_string payload)

let error ~id msg = encode Error ~id msg

let busy ~id msg = encode Busy ~id msg

let response_payload payload =
  (* [Error]/[Ok] here are Stdlib.result's — the frame-kind constructors
     shadow them in this module *)
  if String.length payload < 4 then
    Stdlib.Error "response payload shorter than its epoch"
  else begin
    let b = Bytes.unsafe_of_string payload in
    let epoch = get_u32 b 0 in
    let body = String.sub payload 4 (String.length payload - 4) in
    Stdlib.Ok (epoch, if body = "" then [] else String.split_on_char '\n' body)
  end

(* {1 I/O} *)

let rec read_exact fd b off len =
  if len > 0 then begin
    let n =
      try Unix.read fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b off len
    in
    if n = 0 then raise End_of_file;
    read_exact fd b (off + n) (len - n)
  end

and read_retry fd b off len =
  try Unix.read fd b off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b off len

(* the length field alone, distinguishing clean EOF (nothing read) from a
   truncated header *)
let read_len fd =
  let b = Bytes.create 4 in
  let n =
    try Unix.read fd b 0 4 with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b 0 4
  in
  if n = 0 then None
  else begin
    read_exact fd b n (4 - n);
    Some (get_u32 b 0)
  end

let read ?(max_bytes = default_max_bytes) fd =
  match read_len fd with
  | None -> None
  | Some len ->
    if len < 5 then
      raise (Protocol_error (Printf.sprintf "frame length %d below the 5-byte minimum" len));
    if len > max_bytes then
      raise
        (Protocol_error (Printf.sprintf "frame length %d over the %d-byte limit" len max_bytes));
    let b = Bytes.create len in
    read_exact fd b 0 len;
    let kind = kind_of_byte (Bytes.get b 0) in
    let id = get_u32 b 1 in
    let payload = Bytes.sub_string b 5 (len - 5) in
    Some { kind; id; payload }

let write fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
