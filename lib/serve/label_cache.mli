(** A sharded, size-bounded LRU cache for label sets.

    The serving layer's hot path is fetching [Lin]/[Lout] label sets of the
    same nodes over and over (real query workloads are heavily skewed), and
    every uncached fetch is a B+-tree range scan through the pager — page
    cache probes, CRC verification on misses, per-row closure calls.  This
    cache keeps the materialised label sets in memory — in their
    delta-encoded {!Hopi_twohop.Label_codec} form, a few bytes per row —
    so a hot fetch is one hash probe.

    Concurrency: the key space is split across [shards] independent
    sub-caches, each protected by its own mutex, so worker domains serving
    disjoint keys rarely contend.  Entries are immutable once inserted —
    callers must treat the returned array as read-only (it is shared with
    every other reader of that key).

    Size accounting: each entry is charged its payload bytes plus a fixed
    bookkeeping overhead ({!entry_cost}); a shard evicts from its LRU end
    until it is back under its slice of [capacity_bytes].  An entry larger
    than a whole shard slice is not cached at all (caching it would evict
    everything else and still overflow).

    Metrics (registered in [Hopi_obs.Registry]):
    [hopi_serve_cache_hits_total], [hopi_serve_cache_misses_total],
    [hopi_serve_cache_evictions_total], [hopi_serve_cache_bytes],
    [hopi_serve_cache_entries]. *)

type t

type dir = Lin | Lout

val key : ?version:int -> dir -> int -> int
(** [key ?version dir node] packs a label-set identity into the integer
    key space: direction in the low bit, node id next, [version] (default
    0) in the high bits.  Versions let several generations of the same
    node's labels coexist in one shared cache — a snapshot opened against
    generation [g] asks for the key of the version its store file actually
    holds, so an entry cached by an older generation is simply never
    requested again once the node's labels change (see
    [Hopi_serve.Generation]).  With the default version this is exactly
    the key {!Snapshot} has always used. *)

val create : ?shards:int -> capacity_bytes:int -> unit -> t
(** [shards] (default 16) is rounded up to a power of two;
    [capacity_bytes] is the total budget across all shards.
    [capacity_bytes <= 0] creates a disabled cache: {!find} always misses
    (without counting metrics) and {!add} is a no-op — the cold-path
    configuration used by benchmarks and by [--cache-mb 0]. *)

val enabled : t -> bool

val find : t -> int -> Hopi_twohop.Label_codec.t option
(** [find t key] returns the cached encoded label set and promotes the
    entry to most-recently-used.  Counts a hit or a miss. *)

val add : t -> int -> Hopi_twohop.Label_codec.t -> unit
(** Insert (or replace) the entry, evicting least-recently-used entries of
    the same shard as needed.  The cache takes ownership of nothing: the
    caller must not mutate [value] afterwards. *)

val remove : t -> int -> bool
(** [remove t key] evicts one entry, returning whether it was present.
    Size accounting is adjusted exactly as for an LRU eviction, and the
    [hopi_serve_cache_invalidations_total] counter (not the eviction
    counter) records it.  Used by the generational serving layer to
    reclaim entries whose node was dirtied by churn; untouched entries are
    never scanned, so invalidation cost is proportional to the churn, not
    the cache. *)

val bytes : t -> int
(** Current accounted size across all shards. *)

val entries : t -> int

val capacity_bytes : t -> int

val entry_cost : Hopi_twohop.Label_codec.t -> int
(** The bytes an entry with this payload is charged — exposed so tests can
    account for the eviction bound exactly. *)

(** {1 Metric handles}

    The process-wide cache counters (all caches share them), exposed so
    benchmarks and tests can read deltas without going through
    {!Hopi_obs.Registry.find}. *)

val hits : unit -> Hopi_obs.Counter.t

val misses : unit -> Hopi_obs.Counter.t

val evictions : unit -> Hopi_obs.Counter.t

val invalidations : unit -> Hopi_obs.Counter.t
