(* Query parsing and pool-parallel batch evaluation (contract in the
   interface).  Answers are computed into their query's slot by
   Pool.map_array, which is what makes batch output deterministic. *)

module Pool = Hopi_util.Pool
module Timer = Hopi_util.Timer
module Ihs = Hopi_util.Int_hashset
module Registry = Hopi_obs.Registry
module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Histogram = Hopi_obs.Histogram

let m_queries =
  Registry.counter "hopi_serve_queries_total" ~help:"Queries served from snapshots"

let m_batches =
  Registry.counter "hopi_serve_batches_total" ~help:"Query batches evaluated"

let m_failed =
  Registry.counter "hopi_serve_query_failures_total"
    ~help:"Queries answered with an error"

(* the per-query histogram [hopi_serve_query_duration_ns] is owned by
   [Hopi_obs.Reqtrace], which observes it from [finish] *)

let h_batch_ns =
  Registry.histogram "hopi_serve_batch_duration_ns" ~help:"Per-batch service time"

let g_throughput =
  Registry.gauge "hopi_serve_throughput_qps"
    ~help:"Queries per second of the last evaluated batch"

type query =
  | Reach of int * int
  | Dist of int * int
  | Desc of int
  | Anc of int
  | Path of string

type answer =
  | Bool of bool
  | Distance of int option
  | Count of int
  | Rendered of string
  | Failed of string

let pp_query ppf = function
  | Reach (u, v) -> Format.fprintf ppf "reach %d %d" u v
  | Dist (u, v) -> Format.fprintf ppf "dist %d %d" u v
  | Desc u -> Format.fprintf ppf "desc %d" u
  | Anc u -> Format.fprintf ppf "anc %d" u
  | Path e -> Format.fprintf ppf "path %s" e

let parse line =
  let line = String.trim line in
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  let int w =
    match int_of_string_opt w with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "not a node id: %S" w)
  in
  match words with
  | [ "reach"; u; v ] ->
    Result.bind (int u) (fun u -> Result.map (fun v -> Reach (u, v)) (int v))
  | [ "dist"; u; v ] ->
    Result.bind (int u) (fun u -> Result.map (fun v -> Dist (u, v)) (int v))
  | [ "desc"; u ] -> Result.map (fun u -> Desc u) (int u)
  | [ "anc"; u ] -> Result.map (fun u -> Anc u) (int u)
  | "path" :: (_ :: _ as rest) -> Ok (Path (String.concat " " rest))
  | [] -> Error "empty query"
  | cmd :: _ ->
    Error
      (Printf.sprintf
         "unknown query %S (expected: reach U V | dist U V | desc U | anc U | path EXPR)"
         cmd)

let render = function
  | Bool b -> string_of_bool b
  | Distance None -> "unreachable"
  | Distance (Some d) -> string_of_int d
  | Count n -> string_of_int n
  | Rendered s -> s
  | Failed e -> "error: " ^ e

type path_eval = string -> (string, string) result

type ctx = { conn : int; queue_wait_ns : int }

(* An engine abstracts "something that answers the four index queries":
   a single snapshot, or a Router scatter-gathering over K shards.  All
   callbacks must be safe from any pool domain. *)
type engine = {
  connected : int -> int -> bool;
  min_distance : int -> int -> int option;
  descendants : int -> Ihs.t;
  ancestors : int -> Ihs.t;
  path_eval : path_eval option;
}

let engine_of_snapshot ?path_eval snap =
  {
    connected = Snapshot.connected snap;
    min_distance = Snapshot.min_distance snap;
    descendants = Snapshot.descendants snap;
    ancestors = Snapshot.ancestors snap;
    path_eval;
  }

let eval_unmetered eng q =
  match q with
  | Reach (u, v) -> Bool (eng.connected u v)
  | Dist (u, v) -> Distance (eng.min_distance u v)
  | Desc u -> Count (Ihs.cardinal (eng.descendants u))
  | Anc u -> Count (Ihs.cardinal (eng.ancestors u))
  | Path expr -> (
    match eng.path_eval with
    | None -> Failed "path queries need a corpus (serve --corpus DIR)"
    | Some f -> ( match f expr with Ok s -> Rendered s | Error e -> Failed e))

let kind_of = function
  | Reach _ -> "reach"
  | Dist _ -> "dist"
  | Desc _ -> "desc"
  | Anc _ -> "anc"
  | Path _ -> "path"

(* Reqtrace assigns the request id, computes the latency, attributes the
   domain-local cache/label/pager deltas, feeds the per-kind histograms
   and the overall [h_query_ns] (same registry instance), and records a
   slowlog sample when the request is at or over the threshold.  The
   query/answer thunks only run for slowlogged requests. *)
let eval_engine ?ctx eng q =
  Counter.incr m_queries;
  let tok = Hopi_obs.Reqtrace.start () in
  let a =
    match eval_unmetered eng q with
    | a -> a
    | exception e -> Failed (Printexc.to_string e)
  in
  let conn, queue_wait_ns =
    match ctx with None -> (0, 0) | Some c -> (c.conn, c.queue_wait_ns)
  in
  ignore
    (Hopi_obs.Reqtrace.finish ~conn ~queue_wait_ns tok ~kind:(kind_of q)
       ~query:(fun () -> Format.asprintf "%a" pp_query q)
       ~answer:(fun () -> render a));
  (match a with Failed _ -> Counter.incr m_failed | _ -> ());
  a

let eval ?path_eval snap q = eval_engine (engine_of_snapshot ?path_eval snap) q

let eval_batch_engine ?ctx ~pool eng queries =
  Counter.incr m_batches;
  let n = Array.length queries in
  if n = 0 then [||]
  else begin
    (* big batches of tiny queries: hand out contiguous chunks so the
       atomic cursor is not the bottleneck *)
    let chunk = max 1 (n / (Pool.jobs pool * 8)) in
    let t0 = Timer.start () in
    let answers = Pool.map_array pool ~chunk (eval_engine ?ctx eng) queries in
    let elapsed = Int64.to_int (Timer.elapsed_ns t0) in
    Histogram.observe h_batch_ns elapsed;
    Gauge.set g_throughput
      (int_of_float (float_of_int n *. 1e9 /. float_of_int (max 1 elapsed)));
    answers
  end

let eval_batch ?path_eval ~pool snap queries =
  eval_batch_engine ~pool (engine_of_snapshot ?path_eval snap) queries
