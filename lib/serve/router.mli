(** K-shard scatter-gather routing over the paper's partition-cover
    structure (Section 4.1).

    {!split} partitions a collection document-by-document into [k]
    balanced shards, builds one independent 2-hop cover store per shard
    (covering only within-shard connections), and writes a small
    {e routing index} next to them: the element→shard map, the
    cross-shard links [L_P], and the {e transitive closure of the
    partition skeleton graph} (PSG, {!Hopi_collection.Psg}) over the
    cross-link endpoints — the replicated structure every router instance
    can hold in memory.

    {!open_dir} serves the shard directory as one logical index with
    exactly {!Hopi_storage.Cover_store} semantics:

    - a query whose endpoints miss the element map is answered like an
      unknown node (unreachable / empty set);
    - [reach u v]: within-shard answers come straight from the shard's
      snapshot; cross answers (including paths that leave and re-enter a
      shard) resolve as [u ⇝ s] within shard(u), [s ⇝ t] through the PSG
      closure, [t ⇝ v] within shard(v);
    - [desc]/[anc] scatter to every shard a PSG-reachable entry point
      lands in and merge the within-shard sets (deterministically — pure
      set union, identical for any evaluation order);
    - [dist] on distance-aware shards minimises
      [d_a(u,s) + d_psg(s,t) + d_b(t,v)] over all source/target pairs,
      where the PSG closure stores weighted distances (link edges cost 1,
      within-partition connections cost their shard's stored distance);
      on plain shards every reachable pair answers 0, like a plain
      {!Hopi_storage.Cover_store}. *)

type t

type split_stats = {
  shards : int;
  elements : int;
  cross_links : int;  (** cross-shard link edges replicated in the routing index *)
  psg_closure : int;  (** source→target pairs in the stored PSG closure *)
  entries : int;  (** label entries summed over the shard stores *)
}

val shard_path : dir:string -> int -> string
(** [dir/shard-NNN.db] *)

val routing_path : dir:string -> string
(** [dir/routing.idx] *)

val split :
  ?dist:bool ->
  ?fsync:bool ->
  k:int ->
  dir:string ->
  Hopi_collection.Collection.t ->
  split_stats
(** Partition [c] into [k] shards under [dir] (created if missing).
    Documents are balanced greedily by element count, deterministically;
    [k] is clamped to the document count.  [dist] (default [false])
    builds distance-aware shard covers.
    @raise Invalid_argument when [k < 1]. *)

(** {1 Serving} *)

val open_dir : ?pool_pages:int -> ?cache_mb:int -> string -> t
(** Open every shard store (one shared read-only page pool across all of
    them) and load the routing index.
    @raise Sys_error / Hopi_storage.Storage_error.Storage_error on a
    missing or damaged layout. *)

val close : t -> unit

val n_shards : t -> int

val with_dist : t -> bool

val n_nodes : t -> int
(** Elements in the routing map = registered nodes over all shards. *)

val n_entries : t -> int

val shard_of : t -> int -> int option
(** Which shard an element id lives in; [None] for unknown ids. *)

(** {1 Queries}

    Safe from any domain, like {!Snapshot}'s.  Answers are byte-identical
    to an unsharded {!Hopi_storage.Cover_store} built over the whole
    collection (the qcheck differential in [test/test_shard.ml] holds
    exactly this). *)

val connected : t -> int -> int -> bool

val min_distance : t -> int -> int -> int option

val descendants : t -> int -> Hopi_util.Int_hashset.t

val ancestors : t -> int -> Hopi_util.Int_hashset.t

val engine : t -> Batch.engine
(** The scatter-gather {!Batch.engine} ([path_eval] unset). *)
