(** The HOPI index facade: a connection index over a collection of linked
    XML documents, backed by a 2-hop cover.

    Typical use:
    {[
      let c = Collection.create () in
      ignore (Collection.add_document c ~name:"a.xml" (parse "..."));
      let idx = Hopi.create c in
      Hopi.connected idx u v          (* ancestor/descendant/link axis test *)
    ]}

    The index stays consistent across {!insert_document}, {!remove_document},
    {!insert_link} and the other maintenance entry points. *)

type t

val create : ?config:Config.t -> Hopi_collection.Collection.t -> t
(** Builds the index for the current collection contents. *)

val collection : t -> Hopi_collection.Collection.t

val cover : t -> Hopi_twohop.Cover.t

val config : t -> Config.t

val last_build : t -> Build.result
(** Statistics of the most recent (re)build. *)

(** {1 Queries} *)

val connected : t -> int -> int -> bool
(** [connected t u v]: is element [v] reachable from element [u] along
    parent/child edges and links (the descendant-or-self axis over the
    element graph)? *)

val descendants : t -> int -> Hopi_util.Int_hashset.t

val ancestors : t -> int -> Hopi_util.Int_hashset.t

val descendants_with_tag : t -> int -> string -> int list

val ancestors_with_tag : t -> int -> string -> int list

(** {1 Maintenance} *)

val insert_document : t -> name:string -> Hopi_xml.Xml_tree.t -> int

val insert_document_xml :
  t -> name:string -> string -> (int, Hopi_xml.Xml_parser.error) result

val remove_document : t -> int -> Maintenance.delete_stats

val modify_document : t -> int -> Hopi_xml.Xml_tree.t -> int

val modify_document_diff : t -> int -> Hopi_xml.Xml_tree.t -> Maintenance.diff_stats
(** Diff-based modification (Section 6.3): subtree-level edits instead of
    delete + reinsert. *)

val insert_subtree : t -> doc:int -> parent:int -> Hopi_xml.Xml_tree.t -> int list

val remove_subtree : t -> int -> int
(** Returns the number of partially recomputed nodes (0 on the fast path). *)

val insert_element : t -> doc:int -> parent:int -> tag:string -> int

val insert_link : t -> int -> int -> Hopi_collection.Collection.link_kind

val remove_link : t -> int -> int -> unit

val rebuild : t -> Build.result
(** Rebuild from scratch with the configured algorithms (the paper's
    occasional re-optimisation after many updates). *)

(** {2 Background rebuilds}

    The paper's 24×7 motivation (Section 1.1): indexes must be rebuildable
    "in a background process ... with little interference with concurrent
    queries".  [start_rebuild] computes a fresh cover on a separate domain
    while queries keep being answered from the current one; [finish_rebuild]
    swaps it in.  No maintenance operation may run between the two calls
    (single-writer discipline). *)

type rebuild_handle

val start_rebuild : t -> rebuild_handle

val rebuild_ready : rebuild_handle -> bool
(** Has the background build finished (so [finish_rebuild] won't block)? *)

val finish_rebuild : t -> rebuild_handle -> Build.result
(** Waits for the background build, installs the new cover, and returns its
    statistics. *)

(** {1 Storage and statistics} *)

val size : t -> int
(** Cover entries |L|. *)

val to_store : t -> Hopi_storage.Pager.t -> Hopi_storage.Cover_store.t
(** Persist the cover into LIN/LOUT tables on the given pager. *)

val distance_index : t -> Hopi_twohop.Dist_cover.t
(** Build the distance-aware cover for the current element graph
    (Section 5).  Computed on demand and cached until the next update. *)

val text_index : t -> Hopi_collection.Text_index.t
(** Inverted index over element text for IR-style content conditions
    (Section 1.1).  Computed on demand and cached until the next update. *)

val self_check : t -> bool
(** Exhaustive oracle: does the cover agree with BFS reachability?
    O(n²) — for tests and small collections only. *)
