module Cover = Hopi_twohop.Cover
module Builder = Hopi_twohop.Builder
module Closure = Hopi_graph.Closure
module Digraph = Hopi_graph.Digraph
module Traversal = Hopi_graph.Traversal
module Collection = Hopi_collection.Collection
module Doc_graph = Hopi_collection.Doc_graph
module Ihs = Hopi_util.Int_hashset
module Int_set = Hopi_util.Int_set
module Timer = Hopi_util.Timer

let log = Logs.Src.create "hopi.maintenance" ~doc:"HOPI incremental maintenance"

module Log = (val Logs.src_log log : Logs.LOG)

(* {1 Metrics} *)

module Counter = Hopi_obs.Counter
module Histogram = Hopi_obs.Histogram
module Trace = Hopi_obs.Trace
module Registry = Hopi_obs.Registry

let m_insert_edges =
  Registry.counter "hopi_maint_insert_edges_total" ~help:"Edge insertions"

let m_insert_documents =
  Registry.counter "hopi_maint_insert_documents_total" ~help:"Document insertions"

let m_insert_subtrees =
  Registry.counter "hopi_maint_insert_subtrees_total" ~help:"Subtree insertions"

let m_delete_documents =
  Registry.counter "hopi_maint_delete_documents_total" ~help:"Document deletions"

let m_delete_links =
  Registry.counter "hopi_maint_delete_links_total" ~help:"Link deletions"

let m_delete_subtrees =
  Registry.counter "hopi_maint_delete_subtrees_total" ~help:"Subtree deletions"

let m_delete_separating =
  Registry.counter "hopi_maint_delete_separating_total"
    ~help:"Deletions taking the Theorem-2 separating fast path"

let m_delete_general =
  Registry.counter "hopi_maint_delete_general_total"
    ~help:"Deletions taking the Theorem-3 partial-recomputation path"

let m_recomputed_nodes =
  Registry.counter "hopi_maint_recomputed_nodes_total"
    ~help:"Nodes whose closure was recomputed by general deletions"

let h_separation_test_ns =
  Registry.histogram "hopi_maint_separation_test_duration_ns"
    ~help:"Document-level separation test time"

let h_delete_ns =
  Registry.histogram "hopi_maint_delete_duration_ns"
    ~help:"Document deletion time (either path)"

let h_insert_doc_ns =
  Registry.histogram "hopi_maint_insert_doc_duration_ns"
    ~help:"Document insertion time"

type delete_stats = {
  separating : bool;
  test_seconds : float;
  delete_seconds : float;
  recomputed_nodes : int;
}

(* {1 Insertions} *)

let insert_edge cover u v =
  Counter.incr m_insert_edges;
  ignore (Join_incremental.join cover [ (u, v) ])

let insert_element c cover ~doc ~parent ~tag =
  let e = Collection.add_element c ~doc ~parent ~tag in
  Cover.add_node cover e;
  insert_edge cover parent e;
  e

let insert_link c cover u v =
  let kind = Collection.add_link c u v in
  insert_edge cover u v;
  kind

let insert_document c cover ~name root =
  Counter.incr m_insert_documents;
  Trace.with_span "maint.insert_doc" @@ fun () ->
  let t0 = Timer.start () in
  Log.info (fun m -> m "inserting document %s" name);
  let links_before = Hashtbl.create 64 in
  List.iter
    (fun l -> Hashtbl.replace links_before l ())
    (Collection.inter_links c);
  let did = Collection.add_document c ~name root in
  (* the new document alone is a partition: cover its internal connections
     (tree edges + intra-document links) *)
  let members = Ihs.create () in
  List.iter (fun e -> Ihs.add members e) (Collection.elements_of_doc c did);
  let sub = Digraph.induced_subgraph (Collection.element_graph c) members in
  (* the induced subgraph contains exactly the internal edges, because all
     links incident to other documents leave the member set *)
  let clo = Closure.compute sub in
  let doc_cover, _ = Builder.build clo in
  Cover.union_into ~dst:cover doc_cover;
  (* merge with the existing cover: every new inter-document link (outgoing
     references plus restored pending links from older documents) is a
     cross-partition link, handled by the incremental join *)
  let new_links =
    List.filter (fun l -> not (Hashtbl.mem links_before l)) (Collection.inter_links c)
  in
  ignore (Join_incremental.join cover new_links);
  Trace.add "new_links" (List.length new_links);
  Histogram.observe h_insert_doc_ns (Int64.to_int (Timer.elapsed_ns t0));
  did

(* {1 Deletions} *)

let anc_desc_docs c did =
  let dg = (Doc_graph.of_collection c).Doc_graph.graph in
  let anc = Traversal.reachable_backward dg [ did ] in
  let desc = Traversal.reachable dg [ did ] in
  Ihs.remove anc did;
  Ihs.remove desc did;
  (dg, anc, desc)

let separates_with c did =
  let dg, anc, desc = anc_desc_docs c did in
  if Ihs.is_empty anc || Ihs.is_empty desc then (true, anc, desc)
  else begin
    (* reachability from all ancestors with the document removed: the
       document separates iff no descendant is reached *)
    let reached =
      Traversal.reachable_avoiding dg ~avoid:(fun d -> d = did) (Ihs.to_list anc)
    in
    let hit = ref false in
    Ihs.iter (fun d -> if Ihs.mem reached d then hit := true) desc;
    (not !hit, anc, desc)
  end

let separates c did =
  let s, _, _ = separates_with c did in
  s

(* Theorem 2: when [did] separates the document-level graph, it suffices to
   prune V_di ∪ V_D from the Lout labels of ancestor-document elements and
   V_di ∪ V_A from the Lin labels of descendant-document elements. *)
let delete_separating c cover did anc_docs desc_docs =
  let v_di = Ihs.create () in
  List.iter (fun e -> Ihs.add v_di e) (Collection.elements_of_doc c did);
  let elements_of_docs docs =
    let s = Ihs.create () in
    Ihs.iter
      (fun d -> List.iter (fun e -> Ihs.add s e) (Collection.elements_of_doc c d))
      docs;
    s
  in
  let va = elements_of_docs anc_docs in
  let vd = elements_of_docs desc_docs in
  let keep_out w = not (Ihs.mem v_di w || Ihs.mem vd w) in
  let keep_in w = not (Ihs.mem v_di w || Ihs.mem va w) in
  Ihs.iter
    (fun a -> Cover.set_lout cover a (Int_set.filter keep_out (Cover.lout cover a)))
    va;
  Ihs.iter
    (fun d -> Cover.set_lin cover d (Int_set.filter keep_in (Cover.lin cover d)))
    vd;
  Ihs.iter (fun v -> Cover.remove_node cover v) v_di

(* Theorem 3: general deletion of an arbitrary element set.  The closure is
   partially recomputed from the (old) element-level ancestors A_di of the
   removed elements; the new partial cover L̂ replaces the Lout labels of
   A_di and is unioned into everything else, while descendants D_di drop
   Lin entries from A_di.  The theorem's proof only uses that V_di is the
   removed node set, so the same algorithm serves document deletion and
   subtree deletion (Section 6.3). *)
let delete_nodes_general c cover v_di =
  let g = Collection.element_graph c in
  let v_di_list = Ihs.to_list v_di in
  let a_di = Traversal.reachable_backward g v_di_list in
  let d_di = Traversal.reachable g v_di_list in
  (* nodes reachable from the surviving ancestors once [did] is gone *)
  let seeds =
    Ihs.fold (fun x acc -> if Ihs.mem v_di x then acc else x :: acc) a_di []
  in
  let avoid x = Ihs.mem v_di x in
  let r = Traversal.reachable_avoiding g ~avoid seeds in
  let sub = Digraph.induced_subgraph g r in
  let clo = Closure.compute sub in
  let hat, _ = Builder.build clo in
  (* overrides first, then the component-wise union with L̂ *)
  Ihs.iter
    (fun a -> if not (Ihs.mem v_di a) then Cover.set_lout cover a Int_set.empty)
    a_di;
  Ihs.iter
    (fun d ->
      if not (Ihs.mem v_di d) then begin
        let keep w = not (Ihs.mem a_di w) in
        Cover.set_lin cover d (Int_set.filter keep (Cover.lin cover d))
      end)
    d_di;
  Cover.union_into ~dst:cover hat;
  Ihs.iter (fun v -> Cover.remove_node cover v) v_di;
  Ihs.cardinal r

let delete_general c cover did =
  let v_di = Ihs.create () in
  List.iter (fun e -> Ihs.add v_di e) (Collection.elements_of_doc c did);
  delete_nodes_general c cover v_di

let delete_document c cover did =
  Counter.incr m_delete_documents;
  Trace.with_span "maint.delete_doc" @@ fun () ->
  let (sep, anc, desc), test_seconds = Timer.time (fun () -> separates_with c did) in
  Histogram.observe h_separation_test_ns (Timer.ns_of_s test_seconds);
  Counter.incr (if sep then m_delete_separating else m_delete_general);
  Log.info (fun m ->
      m "deleting document %s: %s path (test %.2fms)" (Collection.doc_name c did)
        (if sep then "separating/fast" else "general")
        (1000.0 *. test_seconds));
  let recomputed = ref 0 in
  let (), delete_seconds =
    Timer.time (fun () ->
        if sep then delete_separating c cover did anc desc
        else recomputed := delete_general c cover did;
        Collection.remove_document c did)
  in
  Histogram.observe h_delete_ns (Timer.ns_of_s delete_seconds);
  Counter.add m_recomputed_nodes !recomputed;
  Trace.add (if sep then "separating" else "general") 1;
  Trace.add "recomputed_nodes" !recomputed;
  { separating = sep; test_seconds; delete_seconds; recomputed_nodes = !recomputed }

let delete_link c cover u v =
  Counter.incr m_delete_links;
  let g = Collection.element_graph c in
  let a = Traversal.reachable_backward g [ u ] in
  let d = Traversal.reachable g [ v ] in
  Collection.remove_link c u v;
  (* partial closure recomputation from the (old) ancestors of u *)
  let seeds = Ihs.to_list a in
  let r = Traversal.reachable g seeds in
  let sub = Digraph.induced_subgraph g r in
  let clo = Closure.compute sub in
  let hat, _ = Builder.build clo in
  Ihs.iter (fun x -> Cover.set_lout cover x Int_set.empty) a;
  Ihs.iter
    (fun x ->
      let keep w = not (Ihs.mem a w) in
      Cover.set_lin cover x (Int_set.filter keep (Cover.lin cover x)))
    d;
  Cover.union_into ~dst:cover hat

(* {1 Modifications} *)

let modify_document c cover did root =
  let name = Collection.doc_name c did in
  ignore (delete_document c cover did);
  insert_document c cover ~name root

(* {1 Subtree-level updates and diff-based modification (Section 6.3)} *)

let insert_subtree c cover ~doc ~parent fragment =
  Counter.incr m_insert_subtrees;
  let created = Collection.add_subtree c ~doc ~parent fragment in
  List.iter (fun e -> Cover.add_node cover e) created;
  (* tree edges: each element hangs under an existing node, so the plain
     edge-insertion algorithm applies in creation (preorder) order *)
  let g = Collection.element_graph c in
  List.iter
    (fun e ->
      match (Collection.element_info c e).Collection.el_parent with
      | Some p -> insert_edge cover p e
      | None -> assert false)
    created;
  (* links resolved during grafting (from or into the new elements) *)
  let created_set = Ihs.create () in
  List.iter (fun e -> Ihs.add created_set e) created;
  List.iter
    (fun e ->
      Digraph.iter_succ g e (fun v ->
          let is_tree_child =
            (Collection.element_info c v).Collection.el_parent = Some e
          in
          if not is_tree_child then insert_edge cover e v);
      Digraph.iter_pred g e (fun u ->
          if not (Ihs.mem created_set u) then begin
            let is_tree_parent =
              (Collection.element_info c e).Collection.el_parent = Some u
            in
            if not is_tree_parent then insert_edge cover u e
          end))
    created;
  created

let delete_subtree c cover eid =
  Counter.incr m_delete_subtrees;
  (* [Collection.remove_subtree] rejects document roots, but it only runs
     after the cover surgery below — validate up front so a rejected
     deletion leaves the cover untouched *)
  if (Collection.element_info c eid).Collection.el_parent = None then
    invalid_arg "Collection.remove_subtree: cannot remove a document root";
  let removed = Collection.subtree_elements c eid in
  let v_di = Ihs.create () in
  List.iter (fun e -> Ihs.add v_di e) removed;
  (* fast path: if no path can leave the subtree (no outgoing non-tree
     edge), removing it cannot disconnect any surviving pair — dropping the
     nodes' labels suffices *)
  let g = Collection.element_graph c in
  let has_exit = ref false in
  Ihs.iter
    (fun e -> Digraph.iter_succ g e (fun v -> if not (Ihs.mem v_di v) then has_exit := true))
    v_di;
  let recomputed = if !has_exit then delete_nodes_general c cover v_di else 0 in
  if not !has_exit then Ihs.iter (fun v -> Cover.remove_node cover v) v_di;
  ignore (Collection.remove_subtree c eid);
  recomputed

(* Diff-driven modification: instead of dropping and re-inserting the whole
   document, align the old and new trees and apply subtree-level inserts
   and deletes (the X-Diff/XYDiff approach the paper sketches).  Children
   are matched by id attribute when present, otherwise by tag and position
   among same-tag siblings; matched elements whose link-relevant attributes
   changed are replaced wholesale. *)

type diff_stats = {
  subtrees_deleted : int;
  subtrees_inserted : int;
  fell_back : bool;  (** root mismatch: full delete + reinsert was used *)
}

let link_relevant_attrs attrs =
  List.filter
    (fun (k, _) ->
      match k with
      | "xlink:href" | "href" | "idref" | "idrefs" | "id" -> true
      | _ -> false)
    attrs

let match_key ~id_attr ~tag ~same_tag_index =
  match id_attr with
  | Some id -> `Id (tag, id)
  | None -> `Pos (tag, same_tag_index)

let keys_of_list tag_of id_of l =
  let seen = Hashtbl.create 8 in
  List.map
    (fun x ->
      let tag = tag_of x in
      let idx = Option.value ~default:0 (Hashtbl.find_opt seen tag) in
      Hashtbl.replace seen tag (idx + 1);
      (match_key ~id_attr:(id_of x) ~tag ~same_tag_index:idx, x))
    l

let modify_document_diff c cover did (new_root : Hopi_xml.Xml_tree.t) =
  let old_root = Collection.doc_root_element c did in
  if Collection.tag_of c old_root <> new_root.Hopi_xml.Xml_tree.tag then begin
    (* structural rewrite of the root: fall back to delete + reinsert *)
    let name = Collection.doc_name c did in
    ignore (delete_document c cover did);
    let did' = insert_document c cover ~name new_root in
    { subtrees_deleted = 0; subtrees_inserted = 0; fell_back = did' >= 0 }
  end
  else begin
    let deleted = ref 0 and inserted = ref 0 in
    (* collect operations by aligning the trees; deletions are applied
       immediately (they never invalidate other element ids), insertions
       are deferred so they see the final surroundings *)
    let pending_inserts = ref [] in
    let rec align old_el (nw : Hopi_xml.Xml_tree.t) =
      let old_children =
        keys_of_list
          (fun e -> Collection.tag_of c e)
          (fun e -> List.assoc_opt "id" (Collection.attrs_of c e))
          (Collection.children c old_el)
      in
      let new_children =
        keys_of_list
          (fun (x : Hopi_xml.Xml_tree.t) -> x.Hopi_xml.Xml_tree.tag)
          (fun x -> Hopi_xml.Xml_tree.attr x "id")
          (List.filter_map
             (function Hopi_xml.Xml_tree.Element x -> Some x | Hopi_xml.Xml_tree.Text _ -> None)
             nw.Hopi_xml.Xml_tree.children)
      in
      let new_tbl = Hashtbl.create 8 in
      List.iter (fun (k, x) -> Hashtbl.replace new_tbl k x) new_children;
      let matched_new = Hashtbl.create 8 in
      (* old children: matched -> recurse or replace; unmatched -> delete *)
      List.iter
        (fun (k, old_child) ->
          match Hashtbl.find_opt new_tbl k with
          | Some new_child when not (Hashtbl.mem matched_new k) ->
            Hashtbl.replace matched_new k ();
            let old_links = link_relevant_attrs (Collection.attrs_of c old_child) in
            let new_links = link_relevant_attrs new_child.Hopi_xml.Xml_tree.attrs in
            if List.sort compare old_links = List.sort compare new_links then
              align old_child new_child
            else begin
              (* link structure changed: replace the subtree *)
              incr deleted;
              incr inserted;
              ignore (delete_subtree c cover old_child);
              pending_inserts := (old_el, new_child) :: !pending_inserts
            end
          | _ ->
            incr deleted;
            ignore (delete_subtree c cover old_child))
        old_children;
      (* new children without a match -> insert *)
      List.iter
        (fun (k, new_child) ->
          if not (Hashtbl.mem matched_new k) && List.mem_assoc k old_children = false
          then begin
            incr inserted;
            pending_inserts := (old_el, new_child) :: !pending_inserts
          end)
        new_children
    in
    align old_root new_root;
    List.iter
      (fun (parent, fragment) -> ignore (insert_subtree c cover ~doc:did ~parent fragment))
      (List.rev !pending_inserts);
    { subtrees_deleted = !deleted; subtrees_inserted = !inserted; fell_back = false }
  end
