(** Build configuration: which partitioner, which join algorithm, which edge
    weights — the knobs varied across the paper's Table 2. *)

type partitioner =
  | Whole  (** no partitioning; build one cover for the full graph *)
  | Singleton  (** one document per partition — Table 2 row [single] *)
  | Random_nodes of int
      (** EDBT'04 partitioner with an element-count limit — rows P5..P50
          (limit [x·10^4] elements in the paper) *)
  | Closure_aware of int
      (** new partitioner with a closure-connection limit — rows N10..N100
          (limit [x·10^5] connections) *)

type joiner =
  | Incremental  (** EDBT'04 link-by-link join (Section 3.3) — Table 2 baseline *)
  | Psg  (** new PSG join, H̄ by per-source traversal (Section 4.1) *)
  | Psg_partitioned of int
      (** PSG join with the recursive PSG partitioning, per-PSG-partition
          closure budget (Section 4.1, "if the PSG is too large") *)

type t = {
  partitioner : partitioner;
  joiner : joiner;
  weight_scheme : Hopi_partition.Weights.scheme;
  preselect_link_targets : bool;  (** Section 4.2 center preselection *)
  seed : int;  (** seed for the (randomized) partitioners *)
  jobs : int;
      (** per-partition covers are independent, so they "can be done
          concurrently" (Section 4.1) — total worker-domain parallelism of
          the build's {!Hopi_util.Pool} (1 = sequential).  The cover is
          identical for any [jobs]: results merge in partition order. *)
  build_mem_mb : int option;
      (** Memory budget for the join pipeline's external sort
          ([--build-mem-mb]): sorted runs past the budget spill to temp
          files and are merged back streamingly.  [None] never spills.
          The built cover is identical for every budget. *)
  spill_dir : string option;
      (** Directory for spill temp files ([--spill-dir]); defaults to the
          system temp directory. *)
}

val default : t
(** Closure-aware partitioning ([Closure_aware 100_000]), PSG join, [A*D]
    weights, preselection on. *)

val baseline_edbt04 : t
(** Random partitioner + incremental join + link-count weights — the paper's
    Table 2 baseline configuration. *)

val pp : Format.formatter -> t -> unit
