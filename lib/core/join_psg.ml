module Cover = Hopi_twohop.Cover
module Ihs = Hopi_util.Int_hashset
module Union_find = Hopi_util.Union_find
module Digraph = Hopi_graph.Digraph
module Traversal = Hopi_graph.Traversal
module Closure = Hopi_graph.Closure
module Int_set = Hopi_util.Int_set
module Partitioning = Hopi_collection.Partitioning
module Psg = Hopi_collection.Psg
module Pool = Hopi_util.Pool
module Timer = Hopi_util.Timer
module Spill = Hopi_storage.Spill

let log = Logs.Src.create "hopi.join.psg" ~doc:"PSG-based cross-partition join"

module Log = (val Logs.src_log log : Logs.LOG)

module Counter = Hopi_obs.Counter
module Histogram = Hopi_obs.Histogram
module Trace = Hopi_obs.Trace
module Registry = Hopi_obs.Registry

let m_joins = Registry.counter "hopi_join_psg_total" ~help:"PSG joins run"

let m_entries =
  Registry.counter "hopi_join_psg_entries_total"
    ~help:"Cover entries added by PSG joins"

let m_fixpoint_rounds =
  Registry.counter "hopi_join_psg_fixpoint_rounds_total"
    ~help:"H-bar fixpoint propagation rounds (partitioned strategy)"

let h_psg_nodes =
  Registry.histogram "hopi_join_psg_nodes" ~help:"PSG nodes per join"

let h_psg_edges =
  Registry.histogram "hopi_join_psg_edges" ~help:"PSG edges per join"

let h_psg_chunks =
  Registry.histogram "hopi_join_psg_partitions"
    ~help:"PSG partitions (chunks) per join"

let h_hbar_targets =
  Registry.histogram "hopi_join_psg_hbar_targets"
    ~help:"H-bar target-set size per link source"

let h_task_ns =
  Registry.histogram "hopi_join_psg_task_duration_ns"
    ~help:"Per-item time of parallelisable join work (H-bar traversals, \
           chunk closures, ancestor/descendant expansions)"

type strategy = Bfs | Partitioned of int

type stats = {
  psg_nodes : int;
  psg_edges : int;
  psg_partitions : int;
  entries_added : int;
  spilled_runs : int;
  spilled_bytes : int;
  peak_sort_bytes : int;
  cpu_seconds : float;
}

(* The parallel sections below run read-only item functions on the pool
   (BFS over the frozen PSG, closure of a chunk subgraph, label expansion
   against the frozen partition covers) and collect results into per-index
   slots; all writes to shared structures happen afterwards on the calling
   domain, iterating the slots in sorted order.  That split is what keeps
   the join deterministic — and hence the final cover bit-identical — for
   every [jobs] value. *)

type par_clock = { items : Timer.Acc.t; wall : Timer.Acc.t }

(* [pmap] also clocks the region: the join's CPU time is its own wall time
   with each parallel region's wall replaced by the summed item times —
   the sequential sections count once, the fanned-out work per domain. *)
let pmap pool pc n f =
  let t0 = Timer.start () in
  let r =
    match pool with
    | None -> Array.init n f
    | Some pool -> Pool.parallel_map pool n f
  in
  Timer.Acc.add_ns pc.wall (Timer.elapsed_ns t0);
  r

(* Run [f i], record its duration into [cpu] and the task histogram. *)
let task pc f i =
  let t0 = Timer.start () in
  let r = f i in
  let ns = Timer.elapsed_ns t0 in
  Timer.Acc.add_ns pc.items ns;
  Histogram.observe h_task_ns (Int64.to_int ns);
  r

let sorted_array ihs =
  let a = Array.make (Ihs.cardinal ihs) 0 in
  let i = ref 0 in
  Ihs.iter
    (fun x ->
      a.(!i) <- x;
      incr i)
    ihs;
  Array.sort compare a;
  a

(* H̄out as a table: link source -> set of link targets it reaches in the
   PSG (the source itself excluded; self-entries are implicit).  One
   traversal per source, independent of all others — the per-source work
   fans out over the pool; the table is assembled sequentially in sorted
   source order. *)
let hbar_bfs ?pool ~pc (psg : Psg.t) =
  let sources = sorted_array psg.Psg.sources in
  let per_source =
    pmap pool pc (Array.length sources)
      (task pc (fun i ->
           let s = sources.(i) in
           let reached = Traversal.reachable psg.Psg.graph [ s ] in
           let targets = Ihs.create () in
           Ihs.iter
             (fun x -> if Ihs.mem psg.Psg.targets x && x <> s then Ihs.add targets x)
             reached;
           targets))
  in
  let hbar = Hashtbl.create (Ihs.cardinal psg.Psg.sources) in
  Array.iteri
    (fun i targets ->
      if not (Ihs.is_empty targets) then Hashtbl.replace hbar sources.(i) targets)
    per_source;
  (hbar, 1)

(* The paper's recursion: partition the PSG so that no link edge crosses
   partitions (grouping link edges with union-find guarantees the required
   property: every cross-partition PSG edge is a within-element-partition
   connection, i.e. goes from a link target to a link source), compute
   partial H̄ covers per PSG partition from materialised closures, and
   propagate along cross edges until a fixpoint. *)
let hbar_partitioned ?pool ~pc (psg : Psg.t) ~max_connections =
  let uf = Union_find.create () in
  Digraph.iter_nodes psg.Psg.graph (fun v -> ignore (Union_find.find uf v));
  List.iter (fun (s, t) -> Union_find.union uf s t) psg.Psg.link_edges;
  (* greedily pack link-edge components into chunks within the closure
     budget; a component is atomic *)
  let components =
    Hashtbl.fold (fun _ members acc -> members :: acc) (Union_find.classes uf) []
    |> List.map (List.sort compare)
    |> List.sort compare
  in
  let chunk_of = Hashtbl.create 64 in
  let n_chunks = ref 0 in
  let current = ref [] and current_graph = ref (Digraph.create ()) in
  let flush_chunk () =
    if !current <> [] then begin
      List.iter (fun v -> Hashtbl.replace chunk_of v !n_chunks) !current;
      incr n_chunks;
      current := [];
      current_graph := Digraph.create ()
    end
  in
  let add_members g members =
    List.iter
      (fun v ->
        Digraph.add_node g v;
        Digraph.iter_succ psg.Psg.graph v (fun w ->
            if Digraph.mem_node g w then Digraph.add_edge g v w);
        Digraph.iter_pred psg.Psg.graph v (fun u ->
            if Digraph.mem_node g u then Digraph.add_edge g u v))
      members
  in
  List.iter
    (fun members ->
      add_members !current_graph members;
      if
        !current <> []
        && Closure.count_connections !current_graph > max_connections
      then begin
        (* roll back, close the chunk, start fresh with this component *)
        List.iter (fun v -> Digraph.remove_node !current_graph v) members;
        flush_chunk ();
        add_members !current_graph members
      end;
      current := members @ !current)
    components;
  flush_chunk ();
  (* per-chunk closures: chunks are disjoint subgraphs, so their closures
     compute independently on the pool *)
  let chunk_members = Array.make (max !n_chunks 1) [] in
  Hashtbl.iter
    (fun v ch -> chunk_members.(ch) <- v :: chunk_members.(ch))
    chunk_of;
  let chunk_closure =
    pmap pool pc
      (Array.length chunk_members)
      (task pc (fun ch ->
           let keep = Ihs.create () in
           List.iter (fun v -> Ihs.add keep v) chunk_members.(ch);
           Closure.compute (Digraph.induced_subgraph psg.Psg.graph keep)))
  in
  (* initial H̄ within chunks *)
  let hbar = Hashtbl.create (Ihs.cardinal psg.Psg.sources) in
  let hbar_of s =
    match Hashtbl.find_opt hbar s with
    | Some set -> set
    | None ->
      let set = Ihs.create () in
      Hashtbl.add hbar s set;
      set
  in
  Ihs.iter
    (fun s ->
      let clo = chunk_closure.(Hashtbl.find chunk_of s) in
      let set = hbar_of s in
      Int_set.iter
        (fun x -> if x <> s && Ihs.mem psg.Psg.targets x then Ihs.add set x)
        (Closure.succs clo s))
    psg.Psg.sources;
  (* cross-chunk edges: all go target -> source by construction *)
  let cross = ref [] in
  Digraph.iter_edges psg.Psg.graph (fun x y ->
      if Hashtbl.find chunk_of x <> Hashtbl.find chunk_of y then begin
        assert (Ihs.mem psg.Psg.targets x && Ihs.mem psg.Psg.sources y);
        cross := (x, y) :: !cross
      end);
  (* link-source ancestors of a target within its chunk *)
  let chunk_source_ancestors t =
    let clo = chunk_closure.(Hashtbl.find chunk_of t) in
    Int_set.filter (fun a -> Ihs.mem psg.Psg.sources a) (Closure.preds clo t)
  in
  let anc_cache = Hashtbl.create 64 in
  let ancestors_of t =
    match Hashtbl.find_opt anc_cache t with
    | Some a -> a
    | None ->
      let a = chunk_source_ancestors t in
      Hashtbl.add anc_cache t a;
      a
  in
  (* fixpoint propagation: H̄out(a) ∪= H̄out(s) ∪ ({s} ∩ targets) for each
     cross edge (t, s) and each source ancestor a of t (cycles across chunks
     make a single topological pass insufficient) *)
  let changed = ref true in
  while !changed do
    Counter.incr m_fixpoint_rounds;
    changed := false;
    List.iter
      (fun (t, s) ->
        let from_s = Hashtbl.find_opt hbar s in
        let s_is_target = Ihs.mem psg.Psg.targets s in
        Int_set.iter
          (fun a ->
            let set = hbar_of a in
            let before = Ihs.cardinal set in
            (match from_s with
             | Some src -> Ihs.iter (fun x -> if x <> a then Ihs.add set x) src
             | None -> ());
            if s_is_target && s <> a then Ihs.add set s;
            if Ihs.cardinal set > before then changed := true)
          (ancestors_of t))
      !cross
  done;
  (hbar, !n_chunks)

(* {1 The apply pipeline}

   Applying H̄/Ĥ to [final] is external-memory sort-then-bulk-load: pool
   tasks emit join entries as packed (node, center) ints into per-task
   sorted runs, spilling runs to VFS temp files when they exceed the
   sorter's memory budget (stage [join.psg.sort]); the runs are k-way
   merged into one globally sorted, deduplicated stream per direction
   (stage [join.psg.merge]); and the streams are applied to the cover in
   grouped passes (stage [join.psg.bulk]).  The merged stream is the
   canonical sorted entry set — independent of job count, budget, or
   where run boundaries fell — which is what keeps stores byte-identical
   for every [--jobs]/[--build-mem-mb] combination. *)

(* drain a merged sorter into one sorted array *)
let collect_merged sorter =
  let buf = ref (Array.make 1024 0) and n = ref 0 in
  Spill.merged sorter (fun v ->
      if !n = Array.length !buf then begin
        let nb = Array.make (2 * !n) 0 in
        Array.blit !buf 0 nb 0 !n;
        buf := nb
      end;
      !buf.(!n) <- v;
      incr n);
  if !n = Array.length !buf then !buf else Array.sub !buf 0 !n

let join ?(strategy = Bfs) ?pool ?spill c (p : Partitioning.t) ~partition_cover
    ~final =
  Counter.incr m_joins;
  let t_all = Timer.start () in
  let pc = { items = Timer.Acc.create (); wall = Timer.Acc.create () } in
  let before = Cover.size final in
  let cover_of_element e = partition_cover (Partitioning.part_of_element p c e) in
  let reaches t s =
    Partitioning.part_of_element p c t = Partitioning.part_of_element p c s
    && Cover.connected (cover_of_element t) t s
  in
  let psg =
    Trace.with_span "join.psg.build_psg" (fun () ->
        Psg.build c p ~reaches_within_partition:reaches)
  in
  Histogram.observe h_psg_nodes (Digraph.n_nodes psg.Psg.graph);
  Histogram.observe h_psg_edges (Digraph.n_edges psg.Psg.graph);
  let hbar, psg_partitions =
    Trace.with_span "join.psg.hbar" (fun () ->
        match strategy with
        | Bfs -> hbar_bfs ?pool ~pc psg
        | Partitioned max_connections ->
          hbar_partitioned ?pool ~pc psg ~max_connections)
  in
  Histogram.observe h_psg_chunks psg_partitions;
  Hashtbl.iter (fun _ targets -> Histogram.observe h_hbar_targets (Ihs.cardinal targets)) hbar;
  let spill_stats =
    Trace.with_span "join.psg.apply" (fun () ->
        let sp = match spill with Some s -> s | None -> Spill.settings () in
        let out_sorter = Spill.sorter sp ~tag:"lout" in
        let in_sorter = Spill.sorter sp ~tag:"lin" in
        Fun.protect
          ~finally:(fun () ->
            Spill.close out_sorter;
            Spill.close in_sorter)
        @@ fun () ->
        (* stage 1 — emit.  Ĥ out-side: H̄out(s) is copied to every ancestor
           of s in s's element partition (the ancestors include s itself,
           which realises H̄ proper).  Ĥ in-side: every partition-level
           descendant of a link target t gets t in its Lin (H̄in(t) = {t} is
           implicit on t itself).  Expanding the ancestor/descendant sets
           only reads the (frozen) partition covers, so each source/target
           fans out as a pool task building its own sorted run. *)
        (* items are sliced into a few contiguous chunks per pool domain;
           each chunk task owns ONE run for all its items, so run count —
           and with it allocation, sorter-mutex traffic, and merge fan-in —
           scales with the pool, not with the item count.  Chunk boundaries
           move with [jobs], but the merge canonicalises the stream, so the
           cover does not. *)
        let chunked sorter items emit =
          let n = Array.length items in
          let jobs = match pool with Some p -> Pool.jobs p | None -> 1 in
          let n_chunks = max 1 (min n (8 * jobs)) in
          let per = (n + n_chunks - 1) / n_chunks in
          ignore
            (pmap pool pc n_chunks
               (task pc (fun ci ->
                    let lo = ci * per and hi = min n ((ci + 1) * per) in
                    if lo < hi then begin
                      let run = Spill.run sorter in
                      for i = lo to hi - 1 do
                        emit run items.(i)
                      done;
                      Spill.finish run
                    end)))
        in
        Trace.with_span "join.psg.sort" (fun () ->
            let sources =
              Array.of_list
                (List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) hbar []))
            in
            chunked out_sorter sources (fun run s ->
                let targets = sorted_array (Hashtbl.find hbar s) in
                Ihs.iter
                  (fun a ->
                    Array.iter
                      (fun t ->
                        if a <> t then
                          Spill.add run (Cover.pack_entry ~node:a ~center:t))
                      targets)
                  (Cover.ancestors (cover_of_element s) s));
            chunked in_sorter (sorted_array psg.Psg.targets) (fun run t ->
                Ihs.iter
                  (fun d ->
                    if d <> t then
                      Spill.add run (Cover.pack_entry ~node:d ~center:t))
                  (Cover.descendants (cover_of_element t) t)));
        (* stage 2 — k-way merge each direction's runs into one globally
           sorted, deduplicated entry stream *)
        let out_entries = ref [||] and in_entries = ref [||] in
        Trace.with_span "join.psg.merge" (fun () ->
            out_entries := collect_merged out_sorter;
            in_entries := collect_merged in_sorter);
        (* stage 3 — grouped bulk application to the final cover *)
        Trace.with_span "join.psg.bulk" (fun () ->
            ignore (Cover.add_out_packed final !out_entries);
            ignore (Cover.add_in_packed final !in_entries));
        let so = Spill.stats out_sorter and si = Spill.stats in_sorter in
        ( so.Spill.spilled_runs + si.Spill.spilled_runs,
          so.Spill.spilled_bytes + si.Spill.spilled_bytes,
          so.Spill.peak_resident_bytes + si.Spill.peak_resident_bytes ))
  in
  let spilled_runs, spilled_bytes, peak_sort_bytes = spill_stats in
  let entries_added = Cover.size final - before in
  Counter.add m_entries entries_added;
  Log.info (fun m ->
      m "PSG join: %d nodes / %d edges / %d chunks -> %d entries"
        (Digraph.n_nodes psg.Psg.graph) (Digraph.n_edges psg.Psg.graph)
        psg_partitions entries_added);
  {
    psg_nodes = Digraph.n_nodes psg.Psg.graph;
    psg_edges = Digraph.n_edges psg.Psg.graph;
    psg_partitions;
    entries_added;
    spilled_runs;
    spilled_bytes;
    peak_sort_bytes;
    cpu_seconds =
      Timer.elapsed_s t_all -. Timer.Acc.total_s pc.wall
      +. Timer.Acc.total_s pc.items;
  }
