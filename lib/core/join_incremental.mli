(** The EDBT'04 incremental algorithm for joining partition covers
    (Section 3.3): process cross-partition links one by one, using each link
    target as the center of all connections the link creates.  Also reused
    verbatim for single-edge insertion during maintenance (Section 6.1). *)

type stats = { links_processed : int; entries_added : int }

val join : Hopi_twohop.Cover.t -> (int * int) list -> stats
(** Mutates the cover (the component-wise union of all partition covers)
    in place. *)
