(** The new, structurally recursive algorithm for joining partition covers
    (Section 4.1, Theorem 1 / Corollary 1).

    It builds the partition-level skeleton graph (PSG), computes the compact
    cover [H̄] that uses cross-link *targets* as centers
    ([H̄out(s) = {t | t link target, s ⇝ t in the PSG}], [H̄in(t) = {t}],
    which is implicit), and then copies entries to partition-level ancestors
    of link sources and descendants of link targets (the supplementary cover
    [Ĥ]).  The union of the partition covers, [H̄] and [Ĥ] is a 2-hop cover
    for the whole element graph.

    Two strategies compute [H̄]:

    - [Bfs] (default): one traversal per link source — the "adapted
      transitive closure algorithm" of the paper, memory-light.
    - [Partitioned]: the paper's recursion for PSGs whose transitive closure
      exceeds memory — the PSG is split so that every cross-partition PSG
      edge starts at a link target and ends at a link source (link edges are
      grouped by union-find, so they can never cross), partial [H̄] covers
      are computed per PSG-partition from materialised closures, and
      connected by propagating [H̄out] along the cross edges to the
      link-source ancestors of their targets. *)

type strategy =
  | Bfs
  | Partitioned of int  (** closure-connection budget per PSG partition *)

type stats = {
  psg_nodes : int;
  psg_edges : int;
  psg_partitions : int;  (** 1 for [Bfs] *)
  entries_added : int;
  spilled_runs : int;
      (** Sorted runs the apply pipeline spilled to temp files. *)
  spilled_bytes : int;
  peak_sort_bytes : int;
      (** High-water mark of the pipeline's resident sort memory. *)
  cpu_seconds : float;
      (** CPU time summed across domains (equals wall time when no pool is
          given); [cpu_seconds /. join wall time] is the join speedup. *)
}

val join :
  ?strategy:strategy ->
  ?pool:Hopi_util.Pool.t ->
  ?spill:Hopi_storage.Spill.settings ->
  Hopi_collection.Collection.t ->
  Hopi_collection.Partitioning.t ->
  partition_cover:(int -> Hopi_twohop.Cover.t) ->
  final:Hopi_twohop.Cover.t ->
  stats
(** [partition_cover p] must be the 2-hop cover of partition [p]; [final]
    (already containing the union of the partition covers) receives the
    [H̄]/[Ĥ] entries through a three-stage external-memory pipeline:
    chunked sorted runs ([join.psg.sort], fanned out over the pool), a
    k-way deduplicating merge into one globally sorted stream per
    direction ([join.psg.merge]), and a grouped bulk application to
    [final] ([join.psg.bulk] — {!Hopi_twohop.Cover.add_out_packed}).

    With [pool], the read-only bulk work — H̄ traversals ([Bfs]), per-chunk
    closures ([Partitioned]), and the partition-level ancestor/descendant
    expansions of [Ĥ] that feed the runs — fans out over the pool's
    domains.  [spill] bounds the pipeline's resident sort memory: runs
    over budget are spilled to temp files through
    {!Hopi_storage.Spill} and merged back streamingly.  The merged
    stream is the canonical sorted entry set whatever the job count,
    budget, or run boundaries, so the resulting cover is identical
    (entry-for-entry and in stored order) for every [pool]/[spill]
    combination — including none. *)
