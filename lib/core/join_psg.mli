(** The new, structurally recursive algorithm for joining partition covers
    (Section 4.1, Theorem 1 / Corollary 1).

    It builds the partition-level skeleton graph (PSG), computes the compact
    cover [H̄] that uses cross-link *targets* as centers
    ([H̄out(s) = {t | t link target, s ⇝ t in the PSG}], [H̄in(t) = {t}],
    which is implicit), and then copies entries to partition-level ancestors
    of link sources and descendants of link targets (the supplementary cover
    [Ĥ]).  The union of the partition covers, [H̄] and [Ĥ] is a 2-hop cover
    for the whole element graph.

    Two strategies compute [H̄]:

    - [Bfs] (default): one traversal per link source — the "adapted
      transitive closure algorithm" of the paper, memory-light.
    - [Partitioned]: the paper's recursion for PSGs whose transitive closure
      exceeds memory — the PSG is split so that every cross-partition PSG
      edge starts at a link target and ends at a link source (link edges are
      grouped by union-find, so they can never cross), partial [H̄] covers
      are computed per PSG-partition from materialised closures, and
      connected by propagating [H̄out] along the cross edges to the
      link-source ancestors of their targets. *)

type strategy =
  | Bfs
  | Partitioned of int  (** closure-connection budget per PSG partition *)

type stats = {
  psg_nodes : int;
  psg_edges : int;
  psg_partitions : int;  (** 1 for [Bfs] *)
  entries_added : int;
  cpu_seconds : float;
      (** CPU time summed across domains (equals wall time when no pool is
          given); [cpu_seconds /. join wall time] is the join speedup. *)
}

val join :
  ?strategy:strategy ->
  ?pool:Hopi_util.Pool.t ->
  Hopi_collection.Collection.t ->
  Hopi_collection.Partitioning.t ->
  partition_cover:(int -> Hopi_twohop.Cover.t) ->
  final:Hopi_twohop.Cover.t ->
  stats
(** [partition_cover p] must be the 2-hop cover of partition [p]; [final]
    (already containing the union of the partition covers) receives the
    [H̄]/[Ĥ] entries.

    With [pool], the read-only bulk work — H̄ traversals ([Bfs]), per-chunk
    closures ([Partitioned]), and the partition-level ancestor/descendant
    expansions of [Ĥ] — fans out over the pool's domains.  All writes to
    [final] happen on the calling domain in sorted node order, so the
    resulting cover is identical (entry-for-entry and in stored order) with
    and without a pool. *)
