module Dist_cover = Hopi_twohop.Dist_cover
module Dist_builder = Hopi_twohop.Dist_builder
module Digraph = Hopi_graph.Digraph
module Traversal = Hopi_graph.Traversal
module Collection = Hopi_collection.Collection
module Doc_graph = Hopi_collection.Doc_graph
module Ihs = Hopi_util.Int_hashset
module Timer = Hopi_util.Timer
module Counter = Hopi_obs.Counter
module Histogram = Hopi_obs.Histogram
module Registry = Hopi_obs.Registry

let m_insert_edges =
  Registry.counter "hopi_dist_maint_insert_edges_total"
    ~help:"Edge insertions into the distance-aware cover"

let m_insert_documents =
  Registry.counter "hopi_dist_maint_insert_documents_total"
    ~help:"Document insertions into the distance-aware cover"

let m_delete_documents =
  Registry.counter "hopi_dist_maint_delete_documents_total"
    ~help:"Document deletions from the distance-aware cover"

let m_delete_separating =
  Registry.counter "hopi_dist_maint_delete_separating_total"
    ~help:"Distance-aware deletions taking the strict separating fast path"

let m_delete_general =
  Registry.counter "hopi_dist_maint_delete_general_total"
    ~help:"Distance-aware deletions taking the general recomputation path"

let h_delete_ns =
  Registry.histogram "hopi_dist_maint_delete_duration_ns"
    ~help:"Distance-aware document deletion time"

(* d_new(a,y) = min(d_old(a,y), d_old(a,u) + 1 + d_old(v,y)): the target [v]
   becomes the center of all shortened connections, carrying exact new
   distances. *)
let insert_edge dc u v =
  Counter.incr m_insert_edges;
  Dist_cover.add_node dc u;
  Dist_cover.add_node dc v;
  let d_av a =
    match Dist_cover.dist dc a v with
    | Some d -> d
    | None -> max_int
  in
  let ancestors = ref [] in
  Dist_cover.iter_nodes dc (fun a ->
      match Dist_cover.dist dc a u with
      | Some dau -> ancestors := (a, dau) :: !ancestors
      | None -> ());
  let descendants = ref [] in
  Dist_cover.iter_nodes dc (fun y ->
      match Dist_cover.dist dc v y with
      | Some dvy -> descendants := (y, dvy) :: !descendants
      | None -> ());
  List.iter
    (fun (a, dau) ->
      let dist = min (dau + 1) (d_av a) in
      Dist_cover.add_out dc ~node:a ~center:v ~dist)
    !ancestors;
  List.iter
    (fun (y, dvy) -> Dist_cover.add_in dc ~node:y ~center:v ~dist:dvy)
    !descendants

let insert_document c dc ~name root =
  Counter.incr m_insert_documents;
  let links_before = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace links_before l ()) (Collection.inter_links c);
  let did = Collection.add_document c ~name root in
  let members = Ihs.create () in
  List.iter (fun e -> Ihs.add members e) (Collection.elements_of_doc c did);
  let sub = Digraph.induced_subgraph (Collection.element_graph c) members in
  let doc_cover, _ = Dist_builder.build sub in
  Dist_cover.union_into ~dst:dc doc_cover;
  let new_links =
    List.filter (fun l -> not (Hashtbl.mem links_before l)) (Collection.inter_links c)
  in
  List.iter (fun (u, v) -> insert_edge dc u v) new_links;
  did

(* The distance fast path needs the stronger precondition that no document
   is simultaneously ancestor and descendant of [did] — otherwise a pair of
   surviving elements could keep its connection but lose its shortest path. *)
let separates_strictly c did =
  let dg = (Doc_graph.of_collection c).Doc_graph.graph in
  let anc = Traversal.reachable_backward dg [ did ] in
  let desc = Traversal.reachable dg [ did ] in
  Ihs.remove anc did;
  Ihs.remove desc did;
  let overlap = ref false in
  Ihs.iter (fun d -> if Ihs.mem desc d then overlap := true) anc;
  if !overlap then (false, anc, desc)
  else if Ihs.is_empty anc || Ihs.is_empty desc then (true, anc, desc)
  else begin
    let reached =
      Traversal.reachable_avoiding dg ~avoid:(fun d -> d = did) (Ihs.to_list anc)
    in
    let hit = ref false in
    Ihs.iter (fun d -> if Ihs.mem reached d then hit := true) desc;
    (not !hit, anc, desc)
  end

let delete_separating c dc did anc_docs desc_docs =
  let v_di = Ihs.create () in
  List.iter (fun e -> Ihs.add v_di e) (Collection.elements_of_doc c did);
  let elements_of_docs docs =
    let s = Ihs.create () in
    Ihs.iter
      (fun d -> List.iter (fun e -> Ihs.add s e) (Collection.elements_of_doc c d))
      docs;
    s
  in
  let va = elements_of_docs anc_docs in
  let vd = elements_of_docs desc_docs in
  let keep_out w = not (Ihs.mem v_di w || Ihs.mem vd w) in
  let keep_in w = not (Ihs.mem v_di w || Ihs.mem va w) in
  Ihs.iter (fun a -> Dist_cover.filter_lout dc a ~keep:keep_out) va;
  Ihs.iter (fun d -> Dist_cover.filter_lin dc d ~keep:keep_in) vd;
  Ihs.iter (fun v -> Dist_cover.remove_node dc v) v_di

let delete_general c dc did =
  let g = Collection.element_graph c in
  let v_di = Ihs.create () in
  List.iter (fun e -> Ihs.add v_di e) (Collection.elements_of_doc c did);
  let v_di_list = Ihs.to_list v_di in
  let a_di = Traversal.reachable_backward g v_di_list in
  let d_di = Traversal.reachable g v_di_list in
  let seeds = Ihs.fold (fun x acc -> if Ihs.mem v_di x then acc else x :: acc) a_di [] in
  let avoid x = Ihs.mem v_di x in
  let r = Traversal.reachable_avoiding g ~avoid seeds in
  let sub = Digraph.induced_subgraph g r in
  let hat, _ = Dist_builder.build sub in
  Ihs.iter (fun a -> if not (Ihs.mem v_di a) then Dist_cover.clear_lout dc a) a_di;
  Ihs.iter
    (fun d ->
      if not (Ihs.mem v_di d) then
        Dist_cover.filter_lin dc d ~keep:(fun w -> not (Ihs.mem a_di w)))
    d_di;
  Dist_cover.union_into ~dst:dc hat;
  Ihs.iter (fun v -> Dist_cover.remove_node dc v) v_di;
  Ihs.cardinal r

let delete_document c dc did =
  Counter.incr m_delete_documents;
  let (sep, anc, desc), test_seconds =
    Timer.time (fun () -> separates_strictly c did)
  in
  Counter.incr (if sep then m_delete_separating else m_delete_general);
  let recomputed = ref 0 in
  let (), delete_seconds =
    Timer.time (fun () ->
        if sep then delete_separating c dc did anc desc
        else recomputed := delete_general c dc did;
        Collection.remove_document c did)
  in
  Histogram.observe h_delete_ns (Timer.ns_of_s delete_seconds);
  {
    Maintenance.separating = sep;
    test_seconds;
    delete_seconds;
    recomputed_nodes = !recomputed;
  }
