type partitioner =
  | Whole
  | Singleton
  | Random_nodes of int
  | Closure_aware of int

type joiner = Incremental | Psg | Psg_partitioned of int

type t = {
  partitioner : partitioner;
  joiner : joiner;
  weight_scheme : Hopi_partition.Weights.scheme;
  preselect_link_targets : bool;
  seed : int;
  jobs : int;
  build_mem_mb : int option;
  spill_dir : string option;
}

let default =
  {
    partitioner = Closure_aware 100_000;
    joiner = Psg;
    weight_scheme = Hopi_partition.Weights.A_times_D;
    preselect_link_targets = true;
    seed = 17;
    jobs = 1;
    build_mem_mb = None;
    spill_dir = None;
  }

let baseline_edbt04 =
  {
    partitioner = Random_nodes 50_000;
    joiner = Incremental;
    weight_scheme = Hopi_partition.Weights.Links;
    preselect_link_targets = false;
    seed = 17;
    jobs = 1;
    build_mem_mb = None;
    spill_dir = None;
  }

let pp ppf t =
  let part =
    match t.partitioner with
    | Whole -> "whole"
    | Singleton -> "singleton"
    | Random_nodes n -> Printf.sprintf "random(max_elements=%d)" n
    | Closure_aware n -> Printf.sprintf "closure(max_connections=%d)" n
  in
  Format.fprintf ppf
    "partitioner=%s joiner=%s weights=%s preselect=%b seed=%d jobs=%d%s" part
    (match t.joiner with
    | Incremental -> "incremental"
    | Psg -> "psg"
    | Psg_partitioned n -> Printf.sprintf "psg-partitioned(%d)" n)
    (Hopi_partition.Weights.scheme_name t.weight_scheme)
    t.preselect_link_targets t.seed t.jobs
    (match t.build_mem_mb with
    | None -> ""
    | Some mb -> Printf.sprintf " build-mem-mb=%d" mb)
