(* The EDBT'04 algorithm for connecting partition covers (Section 3.3,
   Fig. 2): iterate over the cross-partition links; for a link u -> v, the
   target v becomes the center of all newly created connections, so v is
   added to Lout of u and all current ancestors of u, and to Lin of all
   current descendants of v.  Ancestors/descendants are computed against the
   cover built so far, so later links see the connections added by earlier
   ones. *)

module Cover = Hopi_twohop.Cover
module Ihs = Hopi_util.Int_hashset
module Counter = Hopi_obs.Counter
module Registry = Hopi_obs.Registry
module Trace = Hopi_obs.Trace

let m_joins =
  Registry.counter "hopi_join_incremental_total" ~help:"Incremental joins run"

let m_links =
  Registry.counter "hopi_join_incremental_links_total"
    ~help:"Cross-partition links processed by incremental joins"

let m_entries =
  Registry.counter "hopi_join_incremental_entries_total"
    ~help:"Cover entries added by incremental joins"

type stats = { links_processed : int; entries_added : int }

let join cover (links : (int * int) list) =
  Counter.incr m_joins;
  let before = Cover.size cover in
  let n = ref 0 in
  List.iter
    (fun (u, v) ->
      incr n;
      Cover.add_node cover u;
      Cover.add_node cover v;
      let ancestors = Cover.ancestors cover u in
      let descendants = Cover.descendants cover v in
      Ihs.iter (fun a -> Cover.add_out cover ~node:a ~center:v) ancestors;
      Ihs.iter (fun d -> Cover.add_in cover ~node:d ~center:v) descendants)
    links;
  let entries_added = Cover.size cover - before in
  Counter.add m_links !n;
  Counter.add m_entries entries_added;
  Trace.add "links_processed" !n;
  Trace.add "join_entries" entries_added;
  { links_processed = !n; entries_added }
