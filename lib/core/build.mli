(** Divide-and-conquer index construction (Sections 3.3 and 4):
    partition the document-level graph, build one 2-hop cover per partition
    (optionally preselecting cross-link targets as centers), and join the
    covers with either the incremental or the PSG algorithm. *)

type result = {
  cover : Hopi_twohop.Cover.t;
  partitioning : Hopi_collection.Partitioning.t;
  partition_covers : Hopi_twohop.Cover.t array;
  partition_entries : int;  (** Σ sizes of the partition covers *)
  join_entries : int;  (** entries added by the join phase *)
  closure_connections : int;  (** Σ per-partition closure sizes *)
  build_seconds : float;
  partition_seconds : float;
  cover_seconds : float;
  join_seconds : float;
  jobs : int;  (** size of the domain pool the build ran on *)
  cover_cpu_seconds : float;
      (** cover-phase CPU time summed across pool domains;
          [cover_cpu_seconds /. cover_seconds] is the cover speedup *)
  join_cpu_seconds : float;  (** likewise for the join phase *)
  spilled_runs : int;
      (** sorted runs the join's external-sort pipeline spilled to temp
          files (0 unless [config.build_mem_mb] forced spilling) *)
  spilled_bytes : int;
}

val build : Config.t -> Hopi_collection.Collection.t -> result
(** Builds on a {!Hopi_util.Pool} of [config.jobs] domains.  The resulting
    cover is identical — entry-for-entry and in stored order — for every
    [jobs] value: per-partition results land in partition-indexed slots and
    all merging happens on the calling domain in deterministic order. *)

val compression : result -> float
(** Transitive-closure connections divided by cover entries — the paper's
    "compression" column (with the closure measured per partition plus
    cross-partition connections uncounted, the paper reports it against the
    full closure; use {!full_compression} for that). *)

val full_compression : total_closure:int -> result -> float
(** [total_closure / cover size], Table 2's compression. *)
