module Cover = Hopi_twohop.Cover
module Collection = Hopi_collection.Collection
module Ihs = Hopi_util.Int_hashset

type t = {
  collection : Collection.t;
  config : Config.t;
  mutable cover : Cover.t;
  mutable last_build : Build.result;
  mutable dist : Hopi_twohop.Dist_cover.t option;
  mutable text : Hopi_collection.Text_index.t option;
}

let create ?(config = Config.default) collection =
  let result = Build.build config collection in
  { collection; config; cover = result.Build.cover; last_build = result; dist = None;
    text = None }

let collection t = t.collection

let cover t = t.cover

let config t = t.config

let last_build t = t.last_build

let invalidate t =
  t.dist <- None;
  t.text <- None

(* insertions can keep a cached distance index current incrementally
   (Dist_maintenance); deletions invalidate it *)
let dist_edge_inserted t u v =
  match t.dist with
  | Some dc -> Dist_maintenance.insert_edge dc u v
  | None -> ()

(* {1 Queries} *)

let connected t u v = Cover.connected t.cover u v

let descendants t u = Cover.descendants t.cover u

let ancestors t v = Cover.ancestors t.cover v

let filter_tag t tag s =
  Ihs.fold
    (fun e acc -> if Collection.tag_of t.collection e = tag then e :: acc else acc)
    s []

let descendants_with_tag t u tag = filter_tag t tag (descendants t u)

let ancestors_with_tag t v tag = filter_tag t tag (ancestors t v)

(* {1 Maintenance} *)

let insert_document t ~name root =
  invalidate t;
  Maintenance.insert_document t.collection t.cover ~name root

let insert_document_xml t ~name src =
  match Hopi_xml.Xml_parser.parse_string src with
  | Error e -> Error e
  | Ok root -> Ok (insert_document t ~name root)

let remove_document t did =
  invalidate t;
  Maintenance.delete_document t.collection t.cover did

let modify_document t did root =
  invalidate t;
  Maintenance.modify_document t.collection t.cover did root

let modify_document_diff t did root =
  invalidate t;
  Maintenance.modify_document_diff t.collection t.cover did root

let insert_subtree t ~doc ~parent fragment =
  invalidate t;
  Maintenance.insert_subtree t.collection t.cover ~doc ~parent fragment

let remove_subtree t eid =
  invalidate t;
  Maintenance.delete_subtree t.collection t.cover eid

let insert_element t ~doc ~parent ~tag =
  let e = Maintenance.insert_element t.collection t.cover ~doc ~parent ~tag in
  (match t.dist with
   | Some dc ->
     Hopi_twohop.Dist_cover.add_node dc e;
     dist_edge_inserted t parent e
   | None -> ());
  e

let insert_link t u v =
  let kind = Maintenance.insert_link t.collection t.cover u v in
  dist_edge_inserted t u v;
  kind

let remove_link t u v =
  invalidate t;
  Maintenance.delete_link t.collection t.cover u v

let rebuild t =
  invalidate t;
  let result = Build.build t.config t.collection in
  t.cover <- result.Build.cover;
  t.last_build <- result;
  result

type rebuild_handle = {
  domain : Build.result Domain.t;
  ready : bool Atomic.t;
}

let start_rebuild t =
  let ready = Atomic.make false in
  let config = t.config and collection = t.collection in
  let domain =
    Domain.spawn (fun () ->
        let r = Build.build config collection in
        Atomic.set ready true;
        r)
  in
  { domain; ready }

let rebuild_ready h = Atomic.get h.ready

let finish_rebuild t h =
  let result = Domain.join h.domain in
  invalidate t;
  t.cover <- result.Build.cover;
  t.last_build <- result;
  result

(* {1 Storage and statistics} *)

let size t = Cover.size t.cover

let to_store t pager =
  let store = Hopi_storage.Cover_store.create pager in
  Hopi_storage.Cover_store.bulk_load_cover store t.cover;
  store

let distance_index t =
  match t.dist with
  | Some d -> d
  | None ->
    let d, _ = Hopi_twohop.Dist_builder.build (Collection.element_graph t.collection) in
    t.dist <- Some d;
    d

let text_index t =
  match t.text with
  | Some ti -> ti
  | None ->
    let ti = Hopi_collection.Text_index.build t.collection in
    t.text <- Some ti;
    ti

let self_check t =
  Hopi_twohop.Verify.cover_vs_graph t.cover (Collection.element_graph t.collection) = []
