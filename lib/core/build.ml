module Cover = Hopi_twohop.Cover
module Builder = Hopi_twohop.Builder
module Closure = Hopi_graph.Closure
module Collection = Hopi_collection.Collection
module Partitioning = Hopi_collection.Partitioning
module Weights = Hopi_partition.Weights
module Timer = Hopi_util.Timer
module Stats = Hopi_util.Stats
module Pool = Hopi_util.Pool

let log = Logs.Src.create "hopi.build" ~doc:"HOPI index construction"

module Log = (val Logs.src_log log : Logs.LOG)

(* {1 Metrics} — created once at module init; recording is atomic and
   allocation-free, so the multi-domain cover workers report safely. *)

module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Histogram = Hopi_obs.Histogram
module Trace = Hopi_obs.Trace
module Registry = Hopi_obs.Registry

let m_builds = Registry.counter "hopi_build_total" ~help:"Index builds started"

let m_partition_entries =
  Registry.counter "hopi_build_partition_entries_total"
    ~help:"Cover entries produced by per-partition covers"

let m_join_entries =
  Registry.counter "hopi_build_join_entries_total"
    ~help:"Cover entries added by the cross-partition join"

let m_cover_entries =
  Registry.counter "hopi_build_cover_entries_total"
    ~help:"Total cover entries of finished builds"

let m_closure_connections =
  Registry.counter "hopi_build_closure_connections_total"
    ~help:"Transitive-closure connections materialised across partitions"

let h_partitions =
  Registry.histogram "hopi_build_partitions"
    ~help:"Partitions per build"

let h_build_ns =
  Registry.histogram "hopi_build_duration_ns" ~help:"End-to-end build time"

let h_partition_ns =
  Registry.histogram "hopi_build_partition_duration_ns"
    ~help:"Partitioning-phase time"

let h_cover_ns =
  Registry.histogram "hopi_build_cover_duration_ns"
    ~help:"Per-partition cover phase time"

let h_join_ns =
  Registry.histogram "hopi_build_join_duration_ns" ~help:"Join-phase time"

let h_cover_task_ns =
  Registry.histogram "hopi_build_cover_task_duration_ns"
    ~help:"Per-partition cover task time (closure + greedy cover), as run \
           on pool domains"

let g_cover_speedup_pct =
  Registry.gauge "hopi_build_cover_speedup_pct"
    ~help:"Cover-phase parallel speedup of the last build, percent \
           (CPU time across domains / wall time * 100)"

let g_join_speedup_pct =
  Registry.gauge "hopi_build_join_speedup_pct"
    ~help:"Join-phase parallel speedup of the last build, percent"

(* build-resource gauges: set from [Gc]/[Spill] statistics, independent of
   any benchmark harness, so `hopi build --metrics` and the bench gate can
   both watch them *)

let g_peak_heap_bytes =
  Registry.gauge "hopi_build_peak_heap_bytes"
    ~help:"Peak major-heap size observed at the end of the last build \
           (Gc top_heap_words, bytes)"

let g_spilled_runs =
  Registry.gauge "hopi_build_spilled_runs"
    ~help:"Sorted runs the last build's join pipeline spilled to temp files"

let g_spilled_bytes =
  Registry.gauge "hopi_build_spilled_bytes"
    ~help:"Bytes the last build's join pipeline spilled to temp files"

let g_peak_sort_bytes =
  Registry.gauge "hopi_build_peak_sort_bytes"
    ~help:"High-water mark of the last build's resident external-sort \
           memory (bounded by --build-mem-mb)"

type result = {
  cover : Cover.t;
  partitioning : Partitioning.t;
  partition_covers : Cover.t array;
  partition_entries : int;
  join_entries : int;
  closure_connections : int;
  build_seconds : float;
  partition_seconds : float;
  cover_seconds : float;
  join_seconds : float;
  jobs : int;
  cover_cpu_seconds : float;
  join_cpu_seconds : float;
  spilled_runs : int;
  spilled_bytes : int;
}

let make_partitioning (config : Config.t) c =
  match config.Config.partitioner with
  | Config.Whole -> Partitioning.whole_collection c
  | Config.Singleton -> Partitioning.singleton_per_doc c
  | Config.Random_nodes max_elements ->
    let dg = Weights.doc_graph c config.Config.weight_scheme in
    Hopi_partition.Random_partitioner.partition ~seed:config.Config.seed ~max_elements c dg
  | Config.Closure_aware max_connections ->
    let dg = Weights.doc_graph c config.Config.weight_scheme in
    Hopi_partition.Closure_partitioner.partition ~seed:config.Config.seed
      ~max_connections c dg

let run_build pool (config : Config.t) c =
  let t0 = Timer.start () in
  Log.info (fun m ->
      m "building index for %d documents / %d elements (%a)" (Collection.n_docs c)
        (Collection.n_elements c) Config.pp config);
  let partitioning, partition_seconds =
    Trace.with_span "build.partition" (fun () ->
        Timer.time (fun () -> make_partitioning config c))
  in
  Histogram.observe h_partition_ns (Timer.ns_of_s partition_seconds);
  Histogram.observe h_partitions partitioning.Partitioning.n;
  Trace.add "partitions" partitioning.Partitioning.n;
  Trace.add "cross_links" (List.length partitioning.Partitioning.cross_links);
  Log.info (fun m ->
      m "partitioned into %d partitions (%d cross links) in %.2fs"
        partitioning.Partitioning.n
        (List.length partitioning.Partitioning.cross_links)
        partition_seconds);
  (* preselected centers: targets of cross-partition links, grouped by the
     partition that contains them (Section 4.2) *)
  let preselect = Hashtbl.create 16 in
  if config.Config.preselect_link_targets then
    List.iter
      (fun (_, v) ->
        let p = Partitioning.part_of_element partitioning c v in
        let old = Option.value ~default:[] (Hashtbl.find_opt preselect p) in
        Hashtbl.replace preselect p (v :: old))
      partitioning.Partitioning.cross_links;
  let closure_connections = ref 0 in
  (* per-partition covers are independent of each other; with [jobs > 1]
     they are computed concurrently on the build's domain pool (the paper:
     "all these computations can be done concurrently", enabling a speedup
     close to the CPU count with the evenly-sized partitions of the
     closure-aware partitioner).  [parallel_map] stores partition [p]'s
     cover in slot [p] regardless of which domain ran it, so the merge
     below always proceeds in partition order and the final cover is
     bit-identical for every [jobs] value. *)
  let cover_cpu = Timer.Acc.create () in
  let cover_task_s = Stats.Recorder.create () in
  let cover_one p =
    Timer.Acc.timed cover_cpu (fun () ->
        let t0 = Timer.start () in
        let g = Partitioning.element_subgraph partitioning c p in
        let clo = Closure.compute g in
        let preselect_centers =
          Option.value ~default:[] (Hashtbl.find_opt preselect p)
        in
        let cover, _ = Builder.build ~preselect_centers clo in
        let ns = Timer.elapsed_ns t0 in
        Histogram.observe h_cover_task_ns (Int64.to_int ns);
        Stats.Recorder.record cover_task_s (Int64.to_float ns /. 1e9);
        (cover, Closure.n_connections clo))
  in
  let n_partitions = partitioning.Partitioning.n in
  let jobs = Pool.jobs pool in
  let results, cover_seconds =
    Trace.with_span "build.cover" (fun () ->
        Timer.time (fun () ->
            Pool.parallel_map pool n_partitions cover_one))
  in
  Histogram.observe h_cover_ns (Timer.ns_of_s cover_seconds);
  let cover_cpu_seconds = Timer.Acc.total_s cover_cpu in
  let speedup_pct wall cpu =
    if wall <= 0.0 then 100 else int_of_float (cpu /. wall *. 100.0)
  in
  Gauge.set g_cover_speedup_pct (speedup_pct cover_seconds cover_cpu_seconds);
  Trace.add "cover_speedup_pct" (speedup_pct cover_seconds cover_cpu_seconds);
  Log.debug (fun m ->
      let s = Stats.Recorder.summary cover_task_s in
      m "cover tasks: n=%d mean=%.4fs p95=%.4fs max=%.4fs (cpu %.2fs / wall %.2fs)"
        s.Stats.n s.Stats.mean s.Stats.p95 s.Stats.max cover_cpu_seconds
        cover_seconds);
  let partition_covers = Array.map fst results in
  Array.iter (fun (_, n) -> closure_connections := !closure_connections + n) results;
  let partition_entries =
    Array.fold_left (fun acc cov -> acc + Cover.size cov) 0 partition_covers
  in
  Log.info (fun m ->
      m "partition covers: %d entries over %d closure connections in %.2fs"
        partition_entries !closure_connections cover_seconds);
  Counter.add m_partition_entries partition_entries;
  Counter.add m_closure_connections !closure_connections;
  Trace.add "partition_entries" partition_entries;
  Trace.add "closure_connections" !closure_connections;
  let final = Cover.create ~initial:(Collection.n_elements c) () in
  Array.iter (fun cov -> Cover.union_into ~dst:final cov) partition_covers;
  let spill =
    match config.Config.build_mem_mb with
    | None -> None
    | Some mb ->
      Some
        (Hopi_storage.Spill.settings ?dir:config.Config.spill_dir
           ~budget_bytes:(mb * 1024 * 1024) ())
  in
  let psg_join ?strategy () =
    let s =
      Join_psg.join ?strategy ~pool ?spill c partitioning
        ~partition_cover:(fun p -> partition_covers.(p))
        ~final
    in
    ( s.Join_psg.entries_added,
      s.Join_psg.cpu_seconds,
      (s.Join_psg.spilled_runs, s.Join_psg.spilled_bytes, s.Join_psg.peak_sort_bytes)
    )
  in
  let (join_entries, join_cpu_seconds, (spilled_runs, spilled_bytes, peak_sort)),
      join_seconds =
    Trace.with_span "build.join" (fun () ->
        Timer.time (fun () ->
            match config.Config.joiner with
            | Config.Incremental ->
              let s =
                Join_incremental.join final partitioning.Partitioning.cross_links
              in
              (s.Join_incremental.entries_added, 0.0, (0, 0, 0))
            | Config.Psg -> psg_join ()
            | Config.Psg_partitioned budget ->
              psg_join ~strategy:(Join_psg.Partitioned budget) ()))
  in
  Gauge.set g_spilled_runs spilled_runs;
  Gauge.set g_spilled_bytes spilled_bytes;
  Gauge.set g_peak_sort_bytes peak_sort;
  Trace.add "spilled_runs" spilled_runs;
  Trace.add "spilled_bytes" spilled_bytes;
  Histogram.observe h_join_ns (Timer.ns_of_s join_seconds);
  (* the incremental joiner is sequential and reports no CPU time: its CPU
     time is its wall time *)
  let join_cpu_seconds =
    if join_cpu_seconds = 0.0 then join_seconds else join_cpu_seconds
  in
  Gauge.set g_join_speedup_pct (speedup_pct join_seconds join_cpu_seconds);
  Trace.add "join_speedup_pct" (speedup_pct join_seconds join_cpu_seconds);
  Counter.add m_join_entries join_entries;
  Counter.add m_cover_entries (Cover.size final);
  Trace.add "join_entries" join_entries;
  Trace.add "cover_entries" (Cover.size final);
  Histogram.observe h_build_ns (Int64.to_int (Timer.elapsed_ns t0));
  Gauge.set g_peak_heap_bytes
    ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8));
  Log.info (fun m ->
      m "join added %d entries in %.2fs; total %d entries in %.2fs" join_entries
        join_seconds (Cover.size final) (Timer.elapsed_s t0));
  {
    cover = final;
    partitioning;
    partition_covers;
    partition_entries;
    join_entries;
    closure_connections = !closure_connections;
    build_seconds = Timer.elapsed_s t0;
    partition_seconds;
    cover_seconds;
    join_seconds;
    jobs;
    cover_cpu_seconds;
    join_cpu_seconds;
    spilled_runs;
    spilled_bytes;
  }

(* One pool spans the whole build: the cover phase maps partitions over it
   and the PSG join reuses the same domains for its traversals and
   expansions, so a build spawns at most [jobs - 1] domains total. *)
let build (config : Config.t) c =
  Counter.incr m_builds;
  Pool.with_pool ~jobs:config.Config.jobs (fun pool ->
      Trace.with_span "build" (fun () -> run_build pool config c))

let compression r =
  if Cover.size r.cover = 0 then 1.0
  else float_of_int r.closure_connections /. float_of_int (Cover.size r.cover)

let full_compression ~total_closure r =
  if Cover.size r.cover = 0 then 1.0
  else float_of_int total_closure /. float_of_int (Cover.size r.cover)
