(** Incremental index maintenance (Section 6): insertions and deletions of
    nodes, edges and whole documents without rebuilding the index.

    All operations mutate both the collection and the cover, keeping them
    consistent; deletions implement the paper's two algorithms — the fast
    label-pruning path when the document *separates* the document-level
    graph (Theorem 2) and the general partial-recomputation path
    (Theorem 3). *)

type delete_stats = {
  separating : bool;
  test_seconds : float;  (** time of the separation test *)
  delete_seconds : float;
  recomputed_nodes : int;  (** size of the partially recomputed closure's
                               node set (0 on the fast path) *)
}

(** {1 Insertions (Section 6.1)} *)

val insert_element :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Cover.t ->
  doc:int ->
  parent:int ->
  tag:string ->
  int
(** New element under [parent]; the tree edge is reflected in the cover. *)

val insert_edge : Hopi_twohop.Cover.t -> int -> int -> unit
(** Cover-only update for an edge that was already added to the element
    graph: the target becomes the center of all new connections. *)

val insert_link :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Cover.t ->
  int ->
  int ->
  Hopi_collection.Collection.link_kind
(** Adds the link to the collection and updates the cover. *)

val insert_document :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Cover.t ->
  name:string ->
  Hopi_xml.Xml_tree.t ->
  int
(** The new document is treated as a partition of its own: a cover is built
    for it and merged, then every link between it and the existing
    collection is inserted with the incremental algorithm. *)

(** {1 Deletions (Section 6.2)} *)

val separates : Hopi_collection.Collection.t -> int -> bool
(** Does this document separate the document-level graph — i.e. is every
    ancestor document connected to every descendant document only through
    it? *)

val delete_document :
  Hopi_collection.Collection.t -> Hopi_twohop.Cover.t -> int -> delete_stats

val delete_link :
  Hopi_collection.Collection.t -> Hopi_twohop.Cover.t -> int -> int -> unit
(** Deletes a single intra- or inter-document link, partially recomputing
    the closure from the source's ancestors. *)

(** {1 Subtree-level updates (Section 6.3)} *)

val insert_subtree :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Cover.t ->
  doc:int ->
  parent:int ->
  Hopi_xml.Xml_tree.t ->
  int list
(** Graft a parsed fragment under an existing element; returns the created
    element ids (preorder). *)

val delete_subtree :
  Hopi_collection.Collection.t -> Hopi_twohop.Cover.t -> int -> int
(** Remove an element and its tree descendants.  When no edge leaves the
    subtree, label pruning suffices; otherwise the general partial
    recomputation of Theorem 3 runs (its proof applies to any removed node
    set).  Returns the number of partially recomputed nodes (0 on the fast
    path). *)

(** {1 Modifications (Section 6.3)} *)

val modify_document :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Cover.t ->
  int ->
  Hopi_xml.Xml_tree.t ->
  int
(** Drop and re-insert under the same name; returns the new document id. *)

type diff_stats = {
  subtrees_deleted : int;
  subtrees_inserted : int;
  fell_back : bool;  (** the root changed: full delete + reinsert was used *)
}

val modify_document_diff :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Cover.t ->
  int ->
  Hopi_xml.Xml_tree.t ->
  diff_stats
(** The alternative the paper sketches: align the old and the new version
    (X-Diff/XYDiff style — children matched by id attribute, else by tag
    and position) and apply subtree-level deletions and insertions, instead
    of dropping the whole document.  Elements whose link-relevant
    attributes changed are replaced wholesale.  The document id is
    preserved unless the root element itself changed. *)
