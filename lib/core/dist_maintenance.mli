(** Incremental maintenance of distance-aware covers.

    Section 6 of the paper notes that its maintenance algorithms "can be
    applied also for distance-aware covers"; this module carries that out.
    The differences to the boolean case:

    - edge insertion [(u,v)] must record *exact* new distances: every
      ancestor [a] of [u] gets the entry [(v, min(d(a,v), d(a,u)+1))] and
      every descendant [d] of [v] the entry [(v, d(v,d))], which realises
      [d_new(a,d) = min(d_old(a,d), d_old(a,u) + 1 + d_old(v,d))];
    - the separating fast path for deletion additionally requires that no
      document is both ancestor and descendant of the deleted one
      (otherwise a surviving pair could lose a shortest path through the
      deleted document while staying connected);
    - the partial recomputation uses the distance-aware builder. *)

val insert_edge : Hopi_twohop.Dist_cover.t -> int -> int -> unit
(** Cover-only update for an edge already added to the element graph. *)

val insert_document :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Dist_cover.t ->
  name:string ->
  Hopi_xml.Xml_tree.t ->
  int

val delete_document :
  Hopi_collection.Collection.t ->
  Hopi_twohop.Dist_cover.t ->
  int ->
  Maintenance.delete_stats
