(** Delta-encoded 2-hop label sets: the serving layer's wire format.

    A label set is the sorted row sequence [(center, dist), ...] of a
    forward-index range scan — ascending by [(center, dist)], one row per
    stored label entry, so one center may span several rows (a
    distance-aware cover keeps multiple distances per center).  The
    encoding is a byte stream of LEB128 varints: per row the center's
    delta against the previous row, then the distance.  Typical covers
    label nodes with near-consecutive center ids at single-digit
    distances, so most rows cost two bytes instead of the sixteen of a
    boxed pair — the point is to shrink bytes touched per probe so the
    shared page pool and label cache go further.

    All probes decode streamwise without materialising arrays, and every
    probe is a pure function of the bytes: encoded label sets are safe to
    share across domains. *)

type t = bytes

val empty : t

(** Streaming encoder.  Feed rows in [(center, dist)] order — exactly the
    order [Cover_store.iter_lin]/[iter_lout] visit them. *)
module Enc : sig
  type e

  val create : unit -> e

  val row : e -> center:int -> dist:int -> unit
  (** @raise Invalid_argument on a negative field or an out-of-order
      row. *)

  val finish : e -> t
end

val encode_pairs : (int * int) array -> t
(** Encode rows already materialised (tests; must be sorted). *)

val to_array : t -> int array
(** Decode to the flattened [|c0; d0; c1; d1; ...|] layout. *)

val n_rows : t -> int

val size_bytes : t -> int

val iter : t -> (center:int -> dist:int -> unit) -> unit

val iter_centers : t -> (int -> unit) -> unit
(** Distinct centers, ascending (one call per run). *)

val mem : t -> int -> bool

val find_min_dist : t -> int -> int
(** Minimum stored distance of this center's run, or [-1] when the center
    is not in the set.  Early-exits on the sort order. *)

val intersects : t -> t -> bool
(** Do the two sets share a center?  A linear merge of both streams. *)

val merge_min : t -> t -> int
(** [min (da + db)] over common centers — the 2-hop distance combine — or
    [-1] when the sets are disjoint.  Skips within-run duplicates: the
    first row of a run already carries its minimum distance. *)
