module Ihs = Hopi_util.Int_hashset
module Int_set = Hopi_util.Int_set

type t = {
  lin : (int, Ihs.t) Hashtbl.t;
  lout : (int, Ihs.t) Hashtbl.t;
  (* backward indexes: center -> nodes labelled with it *)
  lin_inv : (int, Ihs.t) Hashtbl.t;
  lout_inv : (int, Ihs.t) Hashtbl.t;
  mutable size : int;
  mutable on_change : (int -> unit) option;
}

let create ?(initial = 64) () =
  {
    lin = Hashtbl.create initial;
    lout = Hashtbl.create initial;
    lin_inv = Hashtbl.create initial;
    lout_inv = Hashtbl.create initial;
    size = 0;
    on_change = None;
  }

let set_on_label_change t f = t.on_change <- f

let notify t v = match t.on_change with Some f -> f v | None -> ()

let bucket h k =
  match Hashtbl.find_opt h k with
  | Some s -> s
  | None ->
    let s = Ihs.create ~initial:4 () in
    Hashtbl.add h k s;
    s

let add_node t v =
  ignore (bucket t.lin v);
  ignore (bucket t.lout v)

let mem_node t v = Hashtbl.mem t.lin v

let n_nodes t = Hashtbl.length t.lin

let iter_nodes t f = Hashtbl.iter (fun v _ -> f v) t.lin

let nodes t = Hashtbl.fold (fun v _ acc -> v :: acc) t.lin []

let add_in t ~node ~center =
  if node <> center then begin
    add_node t node;
    let s = bucket t.lin node in
    if not (Ihs.mem s center) then begin
      Ihs.add s center;
      Ihs.add (bucket t.lin_inv center) node;
      t.size <- t.size + 1;
      notify t node
    end
  end

let add_out t ~node ~center =
  if node <> center then begin
    add_node t node;
    let s = bucket t.lout node in
    if not (Ihs.mem s center) then begin
      Ihs.add s center;
      Ihs.add (bucket t.lout_inv center) node;
      t.size <- t.size + 1;
      notify t node
    end
  end

(* {1 Packed batch additions}

   The build pipeline's bulk path: entries arrive as one sorted array of
   packed (node, center) pairs, so both directions of the index update in
   grouped passes — one bucket lookup per node group instead of five hash
   probes per entry.  The backward index is maintained internally: only
   the entries that were actually new are repacked (center, node), sorted,
   and applied in a second grouped pass. *)

let pack_bits = 31

let pack_mask = (1 lsl pack_bits) - 1

let pack_entry ~node ~center =
  if node < 0 || node > pack_mask || center < 0 || center > pack_mask then
    invalid_arg (Printf.sprintf "Cover.pack_entry: (%d, %d) out of range" node center);
  (node lsl pack_bits) lor center

let add_packed t fwd inv entries =
  let n = Array.length entries in
  (* entries actually added, repacked (center, node) for the inverse pass *)
  let kept = Array.make n 0 in
  let k = ref 0 in
  let i = ref 0 in
  while !i < n do
    let node = entries.(!i) lsr pack_bits in
    let j = ref !i in
    while !j < n && entries.(!j) lsr pack_bits = node do
      incr j
    done;
    add_node t node;
    let s = bucket fwd node in
    let before = !k in
    for e = !i to !j - 1 do
      let center = entries.(e) land pack_mask in
      if center <> node && not (Ihs.mem s center) then begin
        Ihs.add s center;
        kept.(!k) <- (center lsl pack_bits) lor node;
        incr k
      end
    done;
    if !k > before then notify t node;
    i := !j
  done;
  let added = !k in
  Hopi_util.Radix_sort.sort_prefix kept added;
  let kept = if added = n then kept else Array.sub kept 0 added in
  let i = ref 0 in
  while !i < added do
    let center = kept.(!i) lsr pack_bits in
    let s = bucket inv center in
    let j = ref !i in
    while !j < added && kept.(!j) lsr pack_bits = center do
      Ihs.add s (kept.(!j) land pack_mask);
      incr j
    done;
    i := !j
  done;
  t.size <- t.size + added;
  added

let add_in_packed t entries = add_packed t t.lin t.lin_inv entries

let add_out_packed t entries = add_packed t t.lout t.lout_inv entries

let get h v =
  match Hashtbl.find_opt h v with
  | Some s -> s
  | None -> Ihs.create ~initial:1 ()

let lin t v = Ihs.to_int_set (get t.lin v)

let lout t v = Ihs.to_int_set (get t.lout v)

let lin_cardinal t v = Ihs.cardinal (get t.lin v)

let lout_cardinal t v = Ihs.cardinal (get t.lout v)

let iter_lin t v f = match Hashtbl.find_opt t.lin v with
  | Some s -> Ihs.iter f s
  | None -> ()

let iter_lout t v f = match Hashtbl.find_opt t.lout v with
  | Some s -> Ihs.iter f s
  | None -> ()

(* the serving layer's delta-encoded layout: sorted distinct centers, all
   at distance 0 (a plain cover stores no distances) *)
let encoded_of set =
  let e = Label_codec.Enc.create () in
  Int_set.iter (fun center -> Label_codec.Enc.row e ~center ~dist:0) set;
  Label_codec.Enc.finish e

let encoded_lin t v = encoded_of (lin t v)

let encoded_lout t v = encoded_of (lout t v)

let in_labelled_with t w = get t.lin_inv w

let out_labelled_with t w = get t.lout_inv w

let inter_nonempty a b =
  let small, large = if Ihs.cardinal a <= Ihs.cardinal b then (a, b) else (b, a) in
  try
    Ihs.iter (fun x -> if Ihs.mem large x then raise Exit) small;
    false
  with Exit -> true

let connected t u v =
  if not (mem_node t u && mem_node t v) then false
  else if u = v then true
  else begin
    let ou = get t.lout u and iv = get t.lin v in
    (* implicit self entries: u ∈ Lout(u), v ∈ Lin(v) *)
    Ihs.mem ou v || Ihs.mem iv u || inter_nonempty ou iv
  end

let hop_center t u v =
  if not (mem_node t u && mem_node t v) then None
  else if u = v then Some u
  else begin
    let ou = get t.lout u and iv = get t.lin v in
    if Ihs.mem ou v then Some v
    else if Ihs.mem iv u then Some u
    else begin
      let small, large =
        if Ihs.cardinal ou <= Ihs.cardinal iv then (ou, iv) else (iv, ou)
      in
      let found = ref None in
      (try
         Ihs.iter
           (fun x ->
             if Ihs.mem large x then begin
               found := Some x;
               raise Exit
             end)
           small
       with Exit -> ());
      !found
    end
  end

let descendants t u =
  let acc = Ihs.create () in
  if mem_node t u then begin
    Ihs.add acc u;
    let via_center w =
      (* center w itself is a descendant of u, plus all nodes carrying w in Lin *)
      Ihs.add acc w;
      Ihs.iter (fun v -> Ihs.add acc v) (get t.lin_inv w)
    in
    via_center u;
    Ihs.iter via_center (get t.lout u)
  end;
  acc

let ancestors t v =
  let acc = Ihs.create () in
  if mem_node t v then begin
    Ihs.add acc v;
    let via_center w =
      Ihs.add acc w;
      Ihs.iter (fun u -> Ihs.add acc u) (get t.lout_inv w)
    in
    via_center v;
    Ihs.iter via_center (get t.lin v)
  end;
  acc

let size t = t.size

let union_into ~dst src =
  Hashtbl.iter (fun v _ -> add_node dst v) src.lin;
  Hashtbl.iter (fun v s -> Ihs.iter (fun w -> add_in dst ~node:v ~center:w) s) src.lin;
  Hashtbl.iter (fun v s -> Ihs.iter (fun w -> add_out dst ~node:v ~center:w) s) src.lout

let set_labels t fwd inv node set =
  add_node t node;
  let old = get fwd node in
  let changed = ref false in
  Ihs.iter
    (fun w ->
      if not (Int_set.mem w set) then begin
        Ihs.remove (bucket inv w) node;
        t.size <- t.size - 1;
        changed := true
      end)
    old;
  Int_set.iter
    (fun w ->
      if w <> node && not (Ihs.mem old w) then begin
        Ihs.add (bucket inv w) node;
        t.size <- t.size + 1;
        changed := true
      end)
    set;
  let fresh = Ihs.create ~initial:(Int_set.cardinal set) () in
  Int_set.iter (fun w -> if w <> node then Ihs.add fresh w) set;
  Hashtbl.replace fwd node fresh;
  if !changed then notify t node

let set_lin t node set = set_labels t t.lin t.lin_inv node set

let set_lout t node set = set_labels t t.lout t.lout_inv node set

let remove_node t v =
  if mem_node t v then begin
    set_lin t v Int_set.empty;
    set_lout t v Int_set.empty;
    (* entries naming v as a center *)
    Ihs.iter
      (fun n ->
        let s = get t.lin n in
        if Ihs.mem s v then begin
          Ihs.remove s v;
          t.size <- t.size - 1;
          notify t n
        end)
      (get t.lin_inv v);
    Ihs.iter
      (fun n ->
        let s = get t.lout n in
        if Ihs.mem s v then begin
          Ihs.remove s v;
          t.size <- t.size - 1;
          notify t n
        end)
      (get t.lout_inv v);
    Hashtbl.remove t.lin_inv v;
    Hashtbl.remove t.lout_inv v;
    Hashtbl.remove t.lin v;
    Hashtbl.remove t.lout v;
    notify t v
  end

let copy t =
  let c = create ~initial:(n_nodes t) () in
  iter_nodes t (fun v -> add_node c v);
  Hashtbl.iter (fun v s -> Ihs.iter (fun w -> add_in c ~node:v ~center:w) s) t.lin;
  Hashtbl.iter (fun v s -> Ihs.iter (fun w -> add_out c ~node:v ~center:w) s) t.lout;
  c
