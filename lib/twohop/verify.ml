module Digraph = Hopi_graph.Digraph
module Traversal = Hopi_graph.Traversal
module Closure = Hopi_graph.Closure
module Ihs = Hopi_util.Int_hashset

type mismatch = { u : int; v : int; expected : bool; got : bool }

let cover_vs_graph cover g =
  let mismatches = ref [] in
  let nodes = List.sort compare (Digraph.nodes g) in
  List.iter
    (fun u ->
      let reach = Traversal.reachable g [ u ] in
      List.iter
        (fun v ->
          let expected = Ihs.mem reach v in
          let got = Cover.connected cover u v in
          if expected <> got then mismatches := { u; v; expected; got } :: !mismatches)
        nodes)
    nodes;
  List.rev !mismatches

let cover_vs_closure cover clo =
  let mismatches = ref [] in
  let nodes = List.sort compare (Closure.nodes clo) in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          let expected = Closure.mem clo u v in
          let got = Cover.connected cover u v in
          if expected <> got then mismatches := { u; v; expected; got } :: !mismatches)
        nodes)
    nodes;
  List.rev !mismatches

type dist_mismatch = { du : int; dv : int; expected_d : int option; got_d : int option }

let dist_cover_vs_graph cover g =
  let mismatches = ref [] in
  let nodes = List.sort compare (Digraph.nodes g) in
  List.iter
    (fun u ->
      let dists = Traversal.bfs_distances g u in
      List.iter
        (fun v ->
          let expected_d = Hashtbl.find_opt dists v in
          let got_d = Dist_cover.dist cover u v in
          if expected_d <> got_d then
            mismatches := { du = u; dv = v; expected_d; got_d } :: !mismatches)
        nodes)
    nodes;
  List.rev !mismatches
