module Ihs = Hopi_util.Int_hashset
module Closure = Hopi_graph.Closure

type t = { succ : (int, Ihs.t) Hashtbl.t; mutable count : int }

let create () = { succ = Hashtbl.create 64; count = 0 }

let add t u v =
  if u <> v then begin
    let s =
      match Hashtbl.find_opt t.succ u with
      | Some s -> s
      | None ->
        let s = Ihs.create () in
        Hashtbl.add t.succ u s;
        s
    in
    if not (Ihs.mem s v) then begin
      Ihs.add s v;
      t.count <- t.count + 1
    end
  end

let of_closure c =
  let t = create () in
  Closure.iter_pairs c (fun u v -> add t u v);
  t

let of_pairs pairs =
  let t = create () in
  List.iter (fun (u, v) -> add t u v) pairs;
  t

let count t = t.count

let is_empty t = t.count = 0

let mem t u v =
  match Hashtbl.find_opt t.succ u with
  | Some s -> Ihs.mem s v
  | None -> false

let remove t u v =
  match Hashtbl.find_opt t.succ u with
  | None -> ()
  | Some s ->
    if Ihs.mem s v then begin
      Ihs.remove s v;
      t.count <- t.count - 1;
      if Ihs.is_empty s then Hashtbl.remove t.succ u
    end

let iter_succ t u f =
  match Hashtbl.find_opt t.succ u with
  | Some s -> Ihs.iter f s
  | None -> ()

let succ_count t u =
  match Hashtbl.find_opt t.succ u with
  | Some s -> Ihs.cardinal s
  | None -> 0

let iter_sources t f = Hashtbl.iter (fun u _ -> f u) t.succ

let source_count t = Hashtbl.length t.succ

let choose t =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun u s ->
         Ihs.iter
           (fun v ->
             found := Some (u, v);
             raise Exit)
           s)
       t.succ
   with Exit -> ());
  !found

let iter t f = Hashtbl.iter (fun u s -> Ihs.iter (fun v -> f u v) s) t.succ
