module Int_set = Hopi_util.Int_set
module Ihs = Hopi_util.Int_hashset
module Heap = Hopi_util.Heap
module Stats = Hopi_util.Stats
module Splitmix = Hopi_util.Splitmix
module Digraph = Hopi_graph.Digraph
module Shortest = Hopi_graph.Shortest

type stats = {
  iterations : int;
  recomputations : int;
  reinserts : int;
  sampled_nodes : int;
}

let max_samples = 13_600

type ctx = {
  apsp : Shortest.t;
  succs : (int, Int_set.t) Hashtbl.t;  (* descendants incl self *)
  preds : (int, Int_set.t) Hashtbl.t;  (* ancestors incl self *)
}

let make_ctx g =
  let apsp = Shortest.all_pairs g in
  let succs = Hashtbl.create (Digraph.n_nodes g) in
  let preds_acc = Hashtbl.create (Digraph.n_nodes g) in
  Digraph.iter_nodes g (fun v -> Hashtbl.replace preds_acc v (ref []));
  Digraph.iter_nodes g (fun u ->
      let vs = ref [] in
      Shortest.iter_from apsp u (fun v _ ->
          vs := v :: !vs;
          let r = Hashtbl.find preds_acc v in
          r := u :: !r);
      Hashtbl.replace succs u (Int_set.of_list !vs));
  let preds = Hashtbl.create (Digraph.n_nodes g) in
  Hashtbl.iter (fun v r -> Hashtbl.replace preds v (Int_set.of_list !r)) preds_acc;
  { apsp; succs; preds }

let d ctx u v = Shortest.dist ctx.apsp u v

(* Is w on a shortest path from u to v? *)
let on_shortest ctx u w v =
  match (d ctx u w, d ctx w v, d ctx u v) with
  | Some a, Some b, Some c -> a + b = c
  | _ -> false

(* Upper-bound estimate √E/2 for the maximal density of a center graph with
   E edges; E is counted exactly or sampled with a 98% CI upper bound. *)
let initial_priority rng ~exact_threshold ctx sampled w =
  let cin = Hashtbl.find ctx.preds w and cout = Hashtbl.find ctx.succs w in
  let a = Int_set.cardinal cin and b = Int_set.cardinal cout in
  let candidates = a * b in
  if candidates = 0 then 0.0
  else if candidates <= exact_threshold then begin
    let e = ref 0 in
    Int_set.iter
      (fun u ->
        Int_set.iter (fun v -> if u <> v && on_shortest ctx u w v then incr e) cout)
      cin;
    sqrt (float_of_int !e) /. 2.0
  end
  else begin
    incr sampled;
    let cin_arr = Int_set.to_array cin and cout_arr = Int_set.to_array cout in
    let n = min max_samples candidates in
    let hits = ref 0 in
    for _ = 1 to n do
      let u = cin_arr.(Splitmix.int rng a) and v = cout_arr.(Splitmix.int rng b) in
      if u <> v && on_shortest ctx u w v then incr hits
    done;
    let frac = Stats.proportion_ci_upper ~successes:!hits ~samples:n ~z:Stats.z_98 in
    sqrt (frac *. float_of_int candidates) /. 2.0
  end

let densest_for ctx uncov w =
  let cin = Hashtbl.find ctx.preds w and cout = Hashtbl.find ctx.succs w in
  let edges_of u =
    let vs = ref [] in
    if Uncovered.succ_count uncov u <= Int_set.cardinal cout then
      Uncovered.iter_succ uncov u (fun v ->
          if Int_set.mem v cout && on_shortest ctx u w v then vs := v :: !vs)
    else
      Int_set.iter
        (fun v -> if Uncovered.mem uncov u v && on_shortest ctx u w v then vs := v :: !vs)
        cout;
    !vs
  in
  Densest.run ~ins:(Int_set.to_array cin) ~edges_of

let apply_choice ctx cover uncov w (r : Densest.result) =
  let c_out_set = Ihs.create ~initial:(List.length r.Densest.c_out) () in
  List.iter (fun v -> Ihs.add c_out_set v) r.Densest.c_out;
  List.iter
    (fun u ->
      (match d ctx u w with
       | Some du -> Dist_cover.add_out cover ~node:u ~center:w ~dist:du
       | None -> assert false);
      let vs = ref [] in
      if Uncovered.succ_count uncov u <= Ihs.cardinal c_out_set then
        Uncovered.iter_succ uncov u (fun v ->
            if Ihs.mem c_out_set v && on_shortest ctx u w v then vs := v :: !vs)
      else
        Ihs.iter
          (fun v -> if Uncovered.mem uncov u v && on_shortest ctx u w v then vs := v :: !vs)
          c_out_set;
      List.iter (fun v -> Uncovered.remove uncov u v) !vs)
    r.Densest.c_in;
  List.iter
    (fun v ->
      match d ctx w v with
      | Some dv -> Dist_cover.add_in cover ~node:v ~center:w ~dist:dv
      | None -> assert false)
    r.Densest.c_out

let build ?(seed = 42) ?(exact_threshold = max_samples) g =
  let ctx = make_ctx g in
  let rng = Splitmix.create seed in
  let cover = Dist_cover.create ~initial:(Digraph.n_nodes g) () in
  Digraph.iter_nodes g (fun v -> Dist_cover.add_node cover v);
  let pairs = ref [] in
  Hashtbl.iter
    (fun u s -> Int_set.iter (fun v -> if u <> v then pairs := (u, v) :: !pairs) s)
    ctx.succs;
  let uncov = Uncovered.of_pairs !pairs in
  let iterations = ref 0 and recomputations = ref 0 and reinserts = ref 0 in
  let sampled = ref 0 in
  let queue = Heap.create () in
  Digraph.iter_nodes g (fun w ->
      let p = initial_priority rng ~exact_threshold ctx sampled w in
      if p > 0.0 then Heap.push queue ~prio:p w);
  while not (Uncovered.is_empty uncov) do
    match Heap.pop_max queue with
    | None -> (
      (* exhausted estimates (possible when all initial priorities were 0 for
         isolated nodes): cover any leftover pair directly *)
      match Uncovered.choose uncov with
      | Some (u, v) ->
        (match d ctx u v with
         | Some duv -> Dist_cover.add_out cover ~node:u ~center:v ~dist:duv
         | None -> assert false);
        Uncovered.remove uncov u v
      | None -> ())
    | Some (_, w) -> (
      incr recomputations;
      match densest_for ctx uncov w with
      | None -> ()
      | Some r ->
        let next_best =
          match Heap.peek_max queue with
          | Some (p, _) -> p
          | None -> neg_infinity
        in
        if r.Densest.density >= next_best then begin
          apply_choice ctx cover uncov w r;
          incr iterations;
          Heap.push queue ~prio:r.Densest.density w
        end
        else begin
          incr reinserts;
          Heap.push queue ~prio:r.Densest.density w
        end)
  done;
  ( cover,
    {
      iterations = !iterations;
      recomputations = !recomputations;
      reinserts = !reinserts;
      sampled_nodes = !sampled;
    } )
