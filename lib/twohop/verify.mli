(** Correctness oracles: exhaustively compare a cover against BFS ground
    truth.  Used by the test suite and by `bench/main.exe --selfcheck`. *)

type mismatch = { u : int; v : int; expected : bool; got : bool }

val cover_vs_graph : Cover.t -> Hopi_graph.Digraph.t -> mismatch list
(** All node pairs of the graph; empty list = the cover is exact. *)

val cover_vs_closure : Cover.t -> Hopi_graph.Closure.t -> mismatch list

type dist_mismatch = { du : int; dv : int; expected_d : int option; got_d : int option }

val dist_cover_vs_graph : Dist_cover.t -> Hopi_graph.Digraph.t -> dist_mismatch list
(** Compares shortest distances for all pairs. *)
