type result = {
  density : float;
  c_in : int list;
  c_out : int list;
  n_edges : int;
}

let run ~ins ~edges_of =
  (* Index left nodes 0..ni-1 (only those with edges), right nodes after. *)
  let left = ref [] and n_edges = ref 0 in
  let right_index = Hashtbl.create 64 in
  let right = ref [] in
  let edges =
    Array.to_list ins
    |> List.filter_map (fun u ->
           match edges_of u with
           | [] -> None
           | vs ->
             left := u :: !left;
             n_edges := !n_edges + List.length vs;
             List.iter
               (fun v ->
                 if not (Hashtbl.mem right_index v) then begin
                   Hashtbl.add right_index v (List.length !right);
                   right := v :: !right
                 end)
               vs;
             Some (u, vs))
  in
  if !n_edges = 0 then None
  else begin
    let left_arr = Array.of_list (List.rev !left) in
    let right_arr = Array.of_list (List.rev !right) in
    let ni = Array.length left_arr and no = Array.length right_arr in
    let n = ni + no in
    (* adjacency over combined indices: left i, right ni+j *)
    let adj = Array.make n [] in
    let deg = Array.make n 0 in
    List.iteri
      (fun i (_, vs) ->
        List.iter
          (fun v ->
            let j = ni + Hashtbl.find right_index v in
            adj.(i) <- j :: adj.(i);
            adj.(j) <- i :: adj.(j);
            deg.(i) <- deg.(i) + 1;
            deg.(j) <- deg.(j) + 1)
          vs)
      edges;
    (* min-degree peeling with a bucket queue (lazy entries) *)
    let max_deg = Array.fold_left max 0 deg in
    let buckets = Array.make (max_deg + 1) [] in
    Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
    let removed = Array.make n false in
    let removal_order = Array.make n (-1) in
    let cur_edges = ref !n_edges and cur_nodes = ref n in
    let best_density = ref (float_of_int !n_edges /. float_of_int n) in
    let best_k = ref 0 in
    let min_bucket = ref 0 in
    for k = 0 to n - 1 do
      (* find a live min-degree node *)
      let v = ref (-1) in
      while !v = -1 do
        (match buckets.(!min_bucket) with
         | [] -> incr min_bucket
         | x :: rest ->
           buckets.(!min_bucket) <- rest;
           if (not removed.(x)) && deg.(x) = !min_bucket then v := x);
      done;
      let v = !v in
      removed.(v) <- true;
      removal_order.(k) <- v;
      cur_edges := !cur_edges - deg.(v);
      decr cur_nodes;
      List.iter
        (fun w ->
          if not removed.(w) then begin
            deg.(w) <- deg.(w) - 1;
            buckets.(deg.(w)) <- w :: buckets.(deg.(w));
            if deg.(w) < !min_bucket then min_bucket := deg.(w)
          end)
        adj.(v);
      if !cur_nodes > 0 then begin
        let d = float_of_int !cur_edges /. float_of_int !cur_nodes in
        if d > !best_density then begin
          best_density := d;
          best_k := k + 1
        end
      end
    done;
    (* the densest intermediate subgraph = nodes not among the first best_k
       removals; recount its edges *)
    let kept = Array.make n true in
    for k = 0 to !best_k - 1 do
      kept.(removal_order.(k)) <- false
    done;
    let c_in = ref [] and c_out = ref [] in
    for i = 0 to ni - 1 do
      if kept.(i) then c_in := left_arr.(i) :: !c_in
    done;
    for j = 0 to no - 1 do
      if kept.(ni + j) then c_out := right_arr.(j) :: !c_out
    done;
    let kept_edges = ref 0 in
    List.iteri
      (fun i (_, vs) ->
        if kept.(i) then
          List.iter
            (fun v -> if kept.(ni + Hashtbl.find right_index v) then incr kept_edges)
            vs)
      edges;
    Some
      {
        density = !best_density;
        c_in = !c_in;
        c_out = !c_out;
        n_edges = !kept_edges;
      }
  end
