(** Construction of distance-aware 2-hop covers (Section 5.2).

    Two changes versus the plain builder: a center [w] may only cover a
    connection [(u,v)] when it lies on a shortest path
    ([d(u,w) + d(w,v) = d(u,v)]), and — because initial center graphs are no
    longer complete — the initial maximal density of a center graph with [E]
    edges is estimated as [√E / 2], with [E] obtained exactly for small
    candidate sets and otherwise by sampling at most [13,600] candidate
    pairs and taking the upper bound of the 98% confidence interval. *)

type stats = {
  iterations : int;
  recomputations : int;
  reinserts : int;
  sampled_nodes : int;  (** center candidates whose E was sampled, not exact *)
}

val max_samples : int
(** = 13,600, as in the paper. *)

val build :
  ?seed:int ->
  ?exact_threshold:int ->
  Hopi_graph.Digraph.t ->
  Dist_cover.t * stats
(** [exact_threshold] (default [max_samples]): candidate-pair counts up to
    this bound are counted exactly instead of sampled.  Pass [0] to force
    sampling everywhere, or [max_int] to force exact counting (the ablation
    of Section 5.2). *)
