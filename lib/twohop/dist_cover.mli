(** Distance-aware 2-hop covers (Section 5): label entries carry the
    shortest distance to/from their center, so that
    [d(u,v) = min over common centers w of dout(u,w) + din(w,v)]
    — the SQL [MIN(LOUT.DIST + LIN.DIST)] of the paper.

    Self-entries (distance 0) are implicit, exactly as in {!Cover}. *)

type t

val create : ?initial:int -> unit -> t

val add_node : t -> int -> unit

val mem_node : t -> int -> bool

val n_nodes : t -> int

val iter_nodes : t -> (int -> unit) -> unit

val add_in : t -> node:int -> center:int -> dist:int -> unit
(** Keeps the minimum if an entry for this center already exists. *)

val add_out : t -> node:int -> center:int -> dist:int -> unit

val dist : t -> int -> int -> int option
(** Length of a shortest path, [None] when unconnected, [Some 0] iff equal
    registered nodes. *)

val connected : t -> int -> int -> bool

val iter_lin : t -> int -> (int -> int -> unit) -> unit
(** [iter_lin t v f] calls [f center dist] for each explicit entry. *)

val iter_lout : t -> int -> (int -> int -> unit) -> unit

val size : t -> int
(** Number of explicit label entries. *)

(** {1 Mutation (incremental maintenance, Section 6)} *)

val union_into : dst:t -> t -> unit
(** Component-wise union keeping minimum distances. *)

val clear_lout : t -> int -> unit

val clear_lin : t -> int -> unit

val filter_lin : t -> int -> keep:(int -> bool) -> unit
(** Drop Lin entries whose center fails [keep]. *)

val filter_lout : t -> int -> keep:(int -> bool) -> unit

val remove_node : t -> int -> unit
(** Drop the node's labels and every entry naming it as a center. *)

val set_on_label_change : t -> (int -> unit) option -> unit
(** Install (or clear) a hook called with a node id whenever that node's
    label tables change (entry added, distance lowered, entries cleared,
    filtered, or stripped by {!remove_node}) — the distance-cover analogue
    of {!Cover.set_on_label_change}.  Runs synchronously under the
    mutation; must not call back into the cover. *)
