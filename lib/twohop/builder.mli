(** Approximate 2-hop-cover construction (Cohen et al.'s greedy algorithm
    with the paper's lazy priority queue, Section 3.2, plus the link-target
    center preselection of Section 4.2).

    The input is the reflexive-transitive closure of (a partition of) the
    element graph; the output cover answers exactly the connections of that
    closure. *)

type stats = {
  iterations : int;  (** centers applied (including preselected ones) *)
  recomputations : int;  (** densest-subgraph evaluations *)
  reinserts : int;  (** stale queue entries pushed back *)
}

val build :
  ?preselect_centers:int list ->
  ?only_pairs:(int * int) list ->
  Hopi_graph.Closure.t ->
  Cover.t * stats
(** [preselect_centers] are used as centers first (in the given order),
    covering every connection they lie on, before the greedy loop runs —
    the paper preselects targets of cross-partition links.

    [only_pairs] restricts the set of connections the cover must answer
    [true] for (it remains sound for all queries: labels never assert
    non-connections).  The paper uses this for the PSG cover [H̄], which
    only needs the connections from link sources to link targets
    (Section 4.1); pairs not in the closure are ignored. *)

val cover_via_center :
  Cover.t -> Uncovered.t -> Hopi_graph.Closure.t -> int -> int
(** Use one node as center for every still-uncovered connection through it;
    updates cover and uncovered set, returns the number of connections
    covered.  Exposed for the preselection ablation bench. *)

val build_eager : Hopi_graph.Closure.t -> Cover.t * stats
(** Ablation baseline for the lazy priority queue (Section 3.2): recompute
    the densest subgraph of {e every} candidate center in every round and
    pick the true maximum.  Same covers as {!build}, far more densest-
    subgraph computations — only usable on small inputs. *)
