(** Mutable 2-hop covers: per-node label sets [Lin]/[Lout] plus the inverted
    (backward) indexes needed to enumerate ancestors and descendants — the
    in-memory equivalent of the paper's LIN/LOUT tables with forward and
    backward indexes (Section 3.4).

    Following the paper, a node is {e never} stored in its own labels; the
    query operations account for the implicit self-entries. *)

type t

val create : ?initial:int -> unit -> t

val add_node : t -> int -> unit
(** Register a node with empty labels (idempotent). *)

val mem_node : t -> int -> bool

val n_nodes : t -> int

val iter_nodes : t -> (int -> unit) -> unit

val nodes : t -> int list

val add_in : t -> node:int -> center:int -> unit
(** Add [center] to [Lin(node)]; self-entries are silently skipped. *)

val add_out : t -> node:int -> center:int -> unit

(** {2 Packed batch additions}

    The build pipeline's bulk path (see [Join_psg]): entries packed with
    {!pack_entry} arrive as one array sorted ascending, so both label
    directions update in grouped passes — one bucket lookup per node group
    instead of several hash probes per entry.  Semantically each entry is
    exactly an {!add_in}/{!add_out} (self-entries and duplicates are
    skipped, the backward index stays consistent, the change hook fires
    once per node whose set changed). *)

val pack_entry : node:int -> center:int -> int
(** [(node lsl 31) lor center].  Both components must be in [0, 2^31) —
    the id range the storage layer accepts anyway.
    @raise Invalid_argument otherwise. *)

val add_in_packed : t -> int array -> int
(** [add_in_packed t entries] adds every packed entry to the cover's [Lin]
    tables; [entries] must be sorted ascending.  Returns the number of
    entries that were new. *)

val add_out_packed : t -> int array -> int

val lin : t -> int -> Hopi_util.Int_set.t
(** Snapshot of [Lin(node)] (without the implicit self-entry). *)

val lout : t -> int -> Hopi_util.Int_set.t

val lin_cardinal : t -> int -> int
(** [|Lin(v)|] without snapshotting the set (allocation-free). *)

val lout_cardinal : t -> int -> int

val iter_lin : t -> int -> (int -> unit) -> unit

val iter_lout : t -> int -> (int -> unit) -> unit

val encoded_lin : t -> int -> Label_codec.t
(** [Lin(node)] in the serving layer's {!Label_codec} layout: sorted
    distinct centers, each as a distance-0 row (plain covers store no
    distances).  Decoding it recovers exactly {!lin}. *)

val encoded_lout : t -> int -> Label_codec.t

val in_labelled_with : t -> int -> Hopi_util.Int_hashset.t
(** [in_labelled_with t w] = nodes [v] with [w ∈ Lin(v)] — the backward
    index on LIN.  The result must not be mutated by the caller. *)

val out_labelled_with : t -> int -> Hopi_util.Int_hashset.t

val connected : t -> int -> int -> bool
(** [connected t u v] iff [(Lout(u) ∪ {u}) ∩ (Lin(v) ∪ {v}) ≠ ∅].
    Reflexive: [connected t v v = true] for registered [v]. *)

val hop_center : t -> int -> int -> int option
(** A witness center for [connected], if any. *)

val descendants : t -> int -> Hopi_util.Int_hashset.t
(** All [v] with [connected t u v], including [u] itself.  Fresh set. *)

val ancestors : t -> int -> Hopi_util.Int_hashset.t

val size : t -> int
(** Cover size |L| = Σ (|Lin(v)| + |Lout(v)|) — the paper's "entries". *)

val union_into : dst:t -> t -> unit
(** Component-wise union of label sets (used when joining partition covers). *)

val set_lin : t -> int -> Hopi_util.Int_set.t -> unit
(** Replace [Lin(node)] wholesale (deletion maintenance); keeps the backward
    index consistent. *)

val set_lout : t -> int -> Hopi_util.Int_set.t -> unit

val remove_node : t -> int -> unit
(** Drop the node's labels and all label entries naming it as a center. *)

val copy : t -> t
(** Deep copy of the label tables.  The change hook is {e not} copied. *)

val set_on_label_change : t -> (int -> unit) option -> unit
(** Install (or clear) a hook called with a node id whenever that node's
    [Lin] or [Lout] set actually changes — label additions, wholesale
    replacement, and the backward-index fan-out of {!remove_node} all
    report every affected node.  Pure registration churn ({!add_node})
    does not fire.  The generational serving layer uses this to track
    which cached label arrays a maintenance batch dirtied.  The hook runs
    synchronously under the mutation and must not call back into the
    cover. *)
