type t = {
  lin : (int, (int, int) Hashtbl.t) Hashtbl.t;
  lout : (int, (int, int) Hashtbl.t) Hashtbl.t;
  mutable size : int;
  mutable on_change : (int -> unit) option;
}

let create ?(initial = 64) () =
  { lin = Hashtbl.create initial; lout = Hashtbl.create initial; size = 0;
    on_change = None }

let set_on_label_change t f = t.on_change <- f

let notify t v = match t.on_change with Some f -> f v | None -> ()

let bucket h v =
  match Hashtbl.find_opt h v with
  | Some m -> m
  | None ->
    let m = Hashtbl.create 4 in
    Hashtbl.add h v m;
    m

let add_node t v =
  ignore (bucket t.lin v);
  ignore (bucket t.lout v)

let mem_node t v = Hashtbl.mem t.lin v

let n_nodes t = Hashtbl.length t.lin

let iter_nodes t f = Hashtbl.iter (fun v _ -> f v) t.lin

let add_entry t h ~node ~center ~dist =
  if node <> center then begin
    add_node t node;
    let m = bucket h node in
    match Hashtbl.find_opt m center with
    | Some d when d <= dist -> ()
    | Some _ ->
      Hashtbl.replace m center dist;
      notify t node
    | None ->
      Hashtbl.add m center dist;
      t.size <- t.size + 1;
      notify t node
  end

let add_in t ~node ~center ~dist = add_entry t t.lin ~node ~center ~dist

let add_out t ~node ~center ~dist = add_entry t t.lout ~node ~center ~dist

let get h v =
  match Hashtbl.find_opt h v with
  | Some m -> m
  | None -> Hashtbl.create 1

let dist t u v =
  if not (mem_node t u && mem_node t v) then None
  else if u = v then Some 0
  else begin
    let ou = get t.lout u and iv = get t.lin v in
    let best = ref max_int in
    (* implicit centers: w = u (dout 0) and w = v (din 0) *)
    (match Hashtbl.find_opt iv u with
     | Some d -> if d < !best then best := d
     | None -> ());
    (match Hashtbl.find_opt ou v with
     | Some d -> if d < !best then best := d
     | None -> ());
    (* the sum dout + din is symmetric, so iterate the smaller table *)
    let small, large =
      if Hashtbl.length ou <= Hashtbl.length iv then (ou, iv) else (iv, ou)
    in
    Hashtbl.iter
      (fun w d1 ->
        match Hashtbl.find_opt large w with
        | Some d2 -> if d1 + d2 < !best then best := d1 + d2
        | None -> ())
      small;
    if !best = max_int then None else Some !best
  end

let connected t u v = dist t u v <> None

let iter_lin t v f = Hashtbl.iter f (get t.lin v)

let iter_lout t v f = Hashtbl.iter f (get t.lout v)

let size t = t.size

let union_into ~dst src =
  iter_nodes src (fun v ->
      add_node dst v;
      iter_lin src v (fun w d -> add_in dst ~node:v ~center:w ~dist:d);
      iter_lout src v (fun w d -> add_out dst ~node:v ~center:w ~dist:d))

let clear_side t h v =
  match Hashtbl.find_opt h v with
  | None -> ()
  | Some m ->
    if Hashtbl.length m > 0 then begin
      t.size <- t.size - Hashtbl.length m;
      Hashtbl.replace h v (Hashtbl.create 4);
      notify t v
    end

let clear_lout t v = clear_side t t.lout v

let clear_lin t v = clear_side t t.lin v

let filter_side t h v ~keep =
  match Hashtbl.find_opt h v with
  | None -> ()
  | Some m ->
    let dead = Hashtbl.fold (fun w _ acc -> if keep w then acc else w :: acc) m [] in
    List.iter
      (fun w ->
        Hashtbl.remove m w;
        t.size <- t.size - 1)
      dead;
    if dead <> [] then notify t v

let filter_lin t v ~keep = filter_side t t.lin v ~keep

let filter_lout t v ~keep = filter_side t t.lout v ~keep

let remove_node t v =
  if mem_node t v then begin
    clear_lin t v;
    clear_lout t v;
    Hashtbl.remove t.lin v;
    Hashtbl.remove t.lout v;
    (* entries naming v as a center *)
    let strip h =
      Hashtbl.iter
        (fun n m ->
          if Hashtbl.mem m v then begin
            Hashtbl.remove m v;
            t.size <- t.size - 1;
            notify t n
          end)
        h
    in
    strip t.lin;
    strip t.lout;
    notify t v
  end
