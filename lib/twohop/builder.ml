module Int_set = Hopi_util.Int_set
module Ihs = Hopi_util.Int_hashset
module Heap = Hopi_util.Heap
module Closure = Hopi_graph.Closure
module Counter = Hopi_obs.Counter
module Histogram = Hopi_obs.Histogram
module Registry = Hopi_obs.Registry

(* Metrics only — no spans here: [build] runs concurrently on worker
   domains during the per-partition cover phase, and counters/histograms
   are the only recorders that are domain-safe and allocation-free. *)

let m_builds =
  Registry.counter "hopi_twohop_builds_total" ~help:"2-hop cover builds run"

let m_center_picks =
  Registry.counter "hopi_twohop_center_picks_total"
    ~help:"Centers applied by the greedy densest-subgraph loop"

let m_recomputations =
  Registry.counter "hopi_twohop_densest_recomputations_total"
    ~help:"Densest-subgraph recomputations (lazy priority refreshes)"

let m_reinserts =
  Registry.counter "hopi_twohop_reinserts_total"
    ~help:"Heap reinserts after a stale priority lost to the next-best"

let h_uncovered_initial =
  Registry.histogram "hopi_twohop_uncovered_initial"
    ~help:"Uncovered connections at the start of a build"

let h_covered_per_pick =
  Registry.histogram "hopi_twohop_covered_per_pick"
    ~help:"Connections covered by a single center application"

type stats = {
  iterations : int;
  recomputations : int;
  reinserts : int;
}

(* Uncovered connections from [u] into [cout], iterating whichever side is
   smaller: the uncovered successors of [u] (hash set) or [cout] itself
   (sorted array with O(1)-amortised membership via the uncovered set). *)
let uncovered_into uncov cout u =
  let vs = ref [] in
  if Uncovered.succ_count uncov u <= Int_set.cardinal cout then
    Uncovered.iter_succ uncov u (fun v -> if Int_set.mem v cout then vs := v :: !vs)
  else
    Int_set.iter (fun v -> if Uncovered.mem uncov u v then vs := v :: !vs) cout;
  !vs

(* Left side of [w]'s center graph: ancestors of [w] that still have
   uncovered connections — iterate whichever is smaller, the ancestor set or
   the set of nodes with uncovered out-edges. *)
let live_ins uncov cin =
  if Uncovered.source_count uncov <= Int_set.cardinal cin then begin
    let ins = ref [] in
    Uncovered.iter_sources uncov (fun u -> if Int_set.mem u cin then ins := u :: !ins);
    Array.of_list !ins
  end
  else Int_set.to_array cin

(* Cover every uncovered connection running through [w] (used for center
   preselection): C'_in/C'_out are the ancestors/descendants of [w] that
   actually have an uncovered connection through it. *)
let cover_via_center cover uncov clo w =
  let cin = Closure.preds clo w and cout = Closure.succs clo w in
  let touched_targets = Ihs.create () in
  let covered = ref 0 in
  Array.iter
    (fun u ->
      let vs = ref (uncovered_into uncov cout u) in
      if !vs <> [] then begin
        Cover.add_out cover ~node:u ~center:w;
        List.iter
          (fun v ->
            Uncovered.remove uncov u v;
            incr covered;
            Ihs.add touched_targets v)
          !vs
      end)
    (live_ins uncov cin);
  Ihs.iter (fun v -> Cover.add_in cover ~node:v ~center:w) touched_targets;
  !covered

(* Current densest subgraph of [w]'s center graph under the uncovered set. *)
let densest_for uncov clo w =
  let cin = Closure.preds clo w and cout = Closure.succs clo w in
  Densest.run ~ins:(live_ins uncov cin) ~edges_of:(uncovered_into uncov cout)

let apply_choice cover uncov w (r : Densest.result) =
  let before = Uncovered.count uncov in
  let n_out = List.length r.Densest.c_out in
  let c_out_set = Ihs.create ~initial:n_out () in
  List.iter (fun v -> Ihs.add c_out_set v) r.Densest.c_out;
  List.iter
    (fun u ->
      Cover.add_out cover ~node:u ~center:w;
      let vs = ref [] in
      if Uncovered.succ_count uncov u <= n_out then
        Uncovered.iter_succ uncov u (fun v -> if Ihs.mem c_out_set v then vs := v :: !vs)
      else
        List.iter (fun v -> if Uncovered.mem uncov u v then vs := v :: !vs) r.Densest.c_out;
      List.iter (fun v -> Uncovered.remove uncov u v) !vs)
    r.Densest.c_in;
  List.iter (fun v -> Cover.add_in cover ~node:v ~center:w) r.Densest.c_out;
  Histogram.observe h_covered_per_pick (before - Uncovered.count uncov)

let build ?(preselect_centers = []) ?only_pairs clo =
  Counter.incr m_builds;
  let cover = Cover.create ~initial:(Closure.n_nodes clo) () in
  Closure.iter_nodes clo (fun v -> Cover.add_node cover v);
  let uncov =
    match only_pairs with
    | None -> Uncovered.of_closure clo
    | Some pairs -> Uncovered.of_pairs (List.filter (fun (u, v) -> Closure.mem clo u v) pairs)
  in
  Histogram.observe h_uncovered_initial (Uncovered.count uncov);
  let iterations = ref 0 and recomputations = ref 0 and reinserts = ref 0 in
  (* Phase 1: preselected centers (cross-partition link targets). *)
  let seen = Ihs.create () in
  List.iter
    (fun w ->
      if Closure.mem clo w w && not (Ihs.mem seen w) then begin
        Ihs.add seen w;
        let covered = cover_via_center cover uncov clo w in
        if covered > 0 then begin
          incr iterations;
          Histogram.observe h_covered_per_pick covered
        end
      end)
    preselect_centers;
  (* Phase 2: greedy loop with lazily updated priorities.  Without a pair
     restriction the initial priority of a node is the density of its
     initial center graph — a complete bipartite graph, hence its own
     densest subgraph.  With [only_pairs] the initial center graphs are
     sparse, so the complete-bipartite formula overestimates wildly and
     would make the lazy queue churn; compute the exact initial densities
     instead. *)
  let queue = Heap.create () in
  Closure.iter_nodes clo (fun w ->
      match only_pairs with
      | None ->
        let a = Int_set.cardinal (Closure.preds clo w) in
        let d = Int_set.cardinal (Closure.succs clo w) in
        if a + d > 0 then
          Heap.push queue ~prio:(float_of_int (a * d) /. float_of_int (a + d)) w
      | Some _ -> (
        match densest_for uncov clo w with
        | Some r -> Heap.push queue ~prio:r.Densest.density w
        | None -> ()));
  while not (Uncovered.is_empty uncov) do
    match Heap.pop_max queue with
    | None ->
      (* Cannot happen: any uncovered (u,v) keeps v's center graph non-empty
         and v is re-pushed after every use.  Guard anyway. *)
      (match Uncovered.choose uncov with
       | Some (u, v) ->
         Cover.add_out cover ~node:u ~center:v;
         Uncovered.remove uncov u v
       | None -> ())
    | Some (_, w) -> (
      incr recomputations;
      match densest_for uncov clo w with
      | None -> () (* nothing uncovered through w anymore: drop it *)
      | Some r ->
        let next_best =
          match Heap.peek_max queue with
          | Some (p, _) -> p
          | None -> neg_infinity
        in
        if r.Densest.density >= next_best then begin
          apply_choice cover uncov w r;
          incr iterations;
          (* w may still cover more connections later *)
          Heap.push queue ~prio:r.Densest.density w
        end
        else begin
          incr reinserts;
          Heap.push queue ~prio:r.Densest.density w
        end)
  done;
  Counter.add m_center_picks !iterations;
  Counter.add m_recomputations !recomputations;
  Counter.add m_reinserts !reinserts;
  ( cover,
    {
      iterations = !iterations;
      recomputations = !recomputations;
      reinserts = !reinserts;
    } )

let build_eager clo =
  let cover = Cover.create ~initial:(Closure.n_nodes clo) () in
  Closure.iter_nodes clo (fun v -> Cover.add_node cover v);
  let uncov = Uncovered.of_closure clo in
  let iterations = ref 0 and recomputations = ref 0 in
  while not (Uncovered.is_empty uncov) do
    (* scan every node for its current densest subgraph *)
    let best = ref None in
    Closure.iter_nodes clo (fun w ->
        incr recomputations;
        match densest_for uncov clo w with
        | None -> ()
        | Some r -> (
          match !best with
          | Some (_, r') when r'.Densest.density >= r.Densest.density -> ()
          | _ -> best := Some (w, r)));
    match !best with
    | None -> assert false (* uncovered non-empty implies a non-empty center graph *)
    | Some (w, r) ->
      apply_choice cover uncov w r;
      incr iterations
  done;
  (cover, { iterations = !iterations; recomputations = !recomputations; reinserts = 0 })
