(** The set [T'] of not-yet-covered connections maintained by the cover
    builder (Section 3.2).  Reflexive pairs are excluded from the start:
    they are covered for free by the implicit self-labels. *)

type t

val of_closure : Hopi_graph.Closure.t -> t
(** Start from a full transitive closure: every non-reflexive connection
    is initially uncovered. *)

val of_pairs : (int * int) list -> t
(** Non-reflexive pairs only; reflexive input pairs are dropped. *)

val count : t -> int

val is_empty : t -> bool

val mem : t -> int -> int -> bool

val remove : t -> int -> int -> unit
(** Mark one connection as covered (idempotent). *)

val iter_succ : t -> int -> (int -> unit) -> unit
(** Uncovered connections leaving a node. *)

val succ_count : t -> int -> int

val iter_sources : t -> (int -> unit) -> unit
(** Nodes that still have at least one uncovered outgoing connection. *)

val source_count : t -> int

val choose : t -> (int * int) option
(** Any uncovered pair. *)

val iter : t -> (int -> int -> unit) -> unit
