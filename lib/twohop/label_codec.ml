(* Delta-encoded label sets (see the interface for the format contract).

   Encoding: rows sorted by (center, dist); per row a varint center delta
   against the previous row's center, then a varint distance.  Probes
   decode streamwise — no intermediate arrays — and exploit the sort
   order: runs of one center are contiguous, and the first row of a run
   carries that center's minimum distance. *)

type t = bytes

let empty = Bytes.create 0

(* {1 Varints} *)

(* LEB128: 7 payload bits per byte, little-endian, high bit = continue *)

let add_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !v)

(* {1 Encoding} *)

module Enc = struct
  type e = {
    buf : Buffer.t;
    mutable prev_center : int;
    mutable prev_dist : int;
    mutable rows : int;
  }

  let create () = { buf = Buffer.create 32; prev_center = 0; prev_dist = 0; rows = 0 }

  let row e ~center ~dist =
    if center < 0 || dist < 0 then invalid_arg "Label_codec.Enc.row: negative field";
    if e.rows > 0
       && (center < e.prev_center || (center = e.prev_center && dist < e.prev_dist))
    then invalid_arg "Label_codec.Enc.row: rows not sorted by (center, dist)";
    add_varint e.buf (center - e.prev_center);
    add_varint e.buf dist;
    e.prev_center <- center;
    e.prev_dist <- dist;
    e.rows <- e.rows + 1

  let finish e = Buffer.to_bytes e.buf
end

let encode_pairs rows =
  let e = Enc.create () in
  Array.iter (fun (center, dist) -> Enc.row e ~center ~dist) rows;
  Enc.finish e

(* {1 Decoding cursors} *)

type cur = {
  b : bytes;
  len : int;
  mutable pos : int;
  mutable center : int;
  mutable dist : int;
}

let cur b = { b; len = Bytes.length b; pos = 0; center = 0; dist = 0 }

let at_end c = c.pos >= c.len

let varint c =
  let v = ref 0 and shift = ref 0 and cont = ref true in
  while !cont do
    if c.pos >= c.len then invalid_arg "Label_codec: truncated varint";
    let k = Char.code (Bytes.unsafe_get c.b c.pos) in
    c.pos <- c.pos + 1;
    v := !v lor ((k land 0x7f) lsl !shift);
    shift := !shift + 7;
    cont := k land 0x80 <> 0
  done;
  !v

(* decode the row at the cursor into [center]/[dist] *)
let next c =
  c.center <- c.center + varint c;
  c.dist <- varint c

(* position on the first row; false when the label set is empty *)
let start c =
  if at_end c then false
  else begin
    next c;
    true
  end

(* advance to the first row of the next (strictly greater) center;
   false when the current run was the last *)
let next_center c =
  let here = c.center in
  let rec go () =
    if at_end c then false
    else begin
      next c;
      if c.center = here then go () else true
    end
  in
  go ()

(* {1 Probes} *)

let iter b f =
  let c = cur b in
  while not (at_end c) do
    next c;
    f ~center:c.center ~dist:c.dist
  done

let iter_centers b f =
  let c = cur b in
  if start c then begin
    f c.center;
    while next_center c do
      f c.center
    done
  end

let n_rows b =
  let c = cur b and n = ref 0 in
  while not (at_end c) do
    next c;
    incr n
  done;
  !n

let to_array b =
  let n = n_rows b in
  let arr = Array.make (2 * n) 0 in
  let c = cur b and i = ref 0 in
  while not (at_end c) do
    next c;
    arr.(!i) <- c.center;
    arr.(!i + 1) <- c.dist;
    i := !i + 2
  done;
  arr

(* min distance of [center]'s run, or -1: rows are sorted, so the first
   row at the center carries the minimum and the scan bails as soon as
   the centers pass it *)
let find_min_dist b center =
  let c = cur b in
  let rec go () =
    if at_end c then -1
    else begin
      next c;
      if c.center > center then -1
      else if c.center = center then c.dist
      else go ()
    end
  in
  go ()

let mem b center = find_min_dist b center >= 0

let intersects a b =
  let ca = cur a and cb = cur b in
  if not (start ca) || not (start cb) then false
  else begin
    let rec go () =
      if ca.center = cb.center then true
      else if ca.center < cb.center then if next_center ca then go () else false
      else if next_center cb then go ()
      else false
    in
    go ()
  end

(* min over common centers of (min dist in a's run + min dist in b's run) *)
let merge_min a b =
  let ca = cur a and cb = cur b in
  if not (start ca) || not (start cb) then -1
  else begin
    let best = ref (-1) in
    let note d = if !best < 0 || d < !best then best := d in
    let rec go () =
      if ca.center = cb.center then begin
        note (ca.dist + cb.dist);
        if next_center ca && next_center cb then go ()
      end
      else if ca.center < cb.center then begin
        if next_center ca then go ()
      end
      else if next_center cb then go ()
    in
    go ();
    !best
  end

let size_bytes b = Bytes.length b
