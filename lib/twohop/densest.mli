(** Densest-subgraph 2-approximation on a center graph (Section 3.2).

    The center graph of a node [w] is the undirected bipartite graph with a
    left node for every ancestor [u ∈ Cin(w)], a right node for every
    descendant [v ∈ Cout(w)], and an edge per uncovered connection [(u,v)].
    The classic linear-time 2-approximation peels a minimum-degree node per
    step and returns the densest intermediate subgraph. *)

type result = {
  density : float;  (** |E'| / |V'| of the returned subgraph *)
  c_in : int list;  (** chosen subset [C'_in] *)
  c_out : int list;  (** chosen subset [C'_out] *)
  n_edges : int;  (** number of (uncovered) connections the choice covers *)
}

val run : ins:int array -> edges_of:(int -> int list) -> result option
(** [run ~ins ~edges_of]: [edges_of u] lists the right endpoints of [u]'s
    edges (with multiplicity ignored; duplicates must not occur).  Isolated
    left nodes are allowed and skipped.  [None] iff there are no edges. *)
