type t = {
  tag : string;
  attrs : (string * string) list;
  children : child list;
}

and child = Element of t | Text of string

let element ?(attrs = []) ?(children = []) tag = { tag; attrs; children }

let attr t name = List.assoc_opt name t.attrs

let child_elements t =
  List.filter_map (function Element e -> Some e | Text _ -> None) t.children

let rec iter_elements f t =
  f t;
  List.iter (function Element e -> iter_elements f e | Text _ -> ()) t.children

let rec fold_elements f acc t =
  let acc = f acc t in
  List.fold_left
    (fun acc -> function Element e -> fold_elements f acc e | Text _ -> acc)
    acc t.children

let count_elements t = fold_elements (fun n _ -> n + 1) 0 t

let text_content t =
  let buf = Buffer.create 64 in
  let rec go t =
    List.iter
      (function Element e -> go e | Text s -> Buffer.add_string buf s)
      t.children
  in
  go t;
  Buffer.contents buf

let find_by_id t id =
  let found = ref None in
  (try
     iter_elements
       (fun e ->
         if !found = None && attr e "id" = Some id then begin
           found := Some e;
           raise Exit
         end)
       t
   with Exit -> ());
  !found

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  let rec go level t =
    let pad = if indent then String.make (2 * level) ' ' else "" in
    Buffer.add_string buf pad;
    Buffer.add_char buf '<';
    Buffer.add_string buf t.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr v);
        Buffer.add_char buf '"')
      t.attrs;
    if t.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      let only_text =
        List.for_all (function Text _ -> true | Element _ -> false) t.children
      in
      if indent && not only_text then Buffer.add_char buf '\n';
      List.iter
        (function
          | Text s -> Buffer.add_string buf (escape_text s)
          | Element e ->
            go (level + 1) e;
            if indent then Buffer.add_char buf '\n')
        t.children;
      if indent && not only_text then Buffer.add_string buf pad;
      Buffer.add_string buf "</";
      Buffer.add_string buf t.tag;
      Buffer.add_char buf '>'
    end
  in
  go 0 t;
  Buffer.contents buf

let rec depth t =
  match child_elements t with
  | [] -> 1
  | es -> 1 + List.fold_left (fun m e -> max m (depth e)) 0 es
