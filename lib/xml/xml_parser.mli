(** Recursive-descent parser for the XML subset needed by the index:
    elements, attributes, text, comments, CDATA, processing instructions,
    DOCTYPE (skipped), and the predefined + numeric character entities.

    This is a from-scratch substrate: the sealed environment has no XML
    library (see DESIGN.md). *)

type error = { line : int; col : int; msg : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Xml_tree.t, error) result
(** Parses exactly one root element (after optional prolog/misc). *)

val parse_string_exn : string -> Xml_tree.t
(** @raise Failure with a formatted error message. *)
