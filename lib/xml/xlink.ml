type target = { doc : string option; fragment : string }

let parse_href s =
  match String.index_opt s '#' with
  | None -> { doc = (if s = "" then None else Some s); fragment = "" }
  | Some i ->
    let doc = String.sub s 0 i in
    let fragment = String.sub s (i + 1) (String.length s - i - 1) in
    { doc = (if doc = "" then None else Some doc); fragment }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun x -> x <> "")

let targets_of_element (e : Xml_tree.t) =
  List.concat_map
    (fun (name, value) ->
      match name with
      | "xlink:href" | "href" -> [ parse_href value ]
      | "idref" -> [ { doc = None; fragment = value } ]
      | "idrefs" -> List.map (fun f -> { doc = None; fragment = f }) (split_ws value)
      | _ -> [])
    e.Xml_tree.attrs

let pp_target ppf t =
  Format.fprintf ppf "%s#%s" (Option.value ~default:"" t.doc) t.fragment
