(** Parsed XML documents as element trees.

    The model deliberately ignores document order beyond the tree structure
    (Section 2 of the paper: child order is irrelevant for schema-less
    collections), but children are kept in parse order for printing. *)

type t = {
  tag : string;
  attrs : (string * string) list;
  children : child list;
}

and child = Element of t | Text of string

val element : ?attrs:(string * string) list -> ?children:child list -> string -> t

val attr : t -> string -> string option

val child_elements : t -> t list

val iter_elements : (t -> unit) -> t -> unit
(** Preorder over all elements including the root. *)

val fold_elements : ('a -> t -> 'a) -> 'a -> t -> 'a

val count_elements : t -> int

val text_content : t -> string
(** Concatenation of all descendant text nodes. *)

val find_by_id : t -> string -> t option
(** First element (preorder) whose [id] attribute equals the argument. *)

val to_string : ?indent:bool -> t -> string
(** Serialise, escaping text and attribute values. *)

val depth : t -> int
(** Height of the element tree; a single element has depth 1. *)
