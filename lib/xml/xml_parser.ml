type error = { line : int; col : int; msg : string }

let pp_error ppf e = Format.fprintf ppf "XML parse error at %d:%d: %s" e.line e.col e.msg

exception Err of error

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let fail st msg = raise (Err { line = st.line; col = st.col; msg })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let next st =
  let c = peek st in
  advance st;
  c

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect_string st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else fail st (Printf.sprintf "expected %S" s)

let skip_until st stop =
  let n = String.length stop in
  let rec go () =
    if eof st then fail st (Printf.sprintf "unterminated construct, expected %S" stop)
    else if st.pos + n <= String.length st.src && String.sub st.src st.pos n = stop
    then
      for _ = 1 to n do
        advance st
      done
    else begin
      advance st;
      go ()
    end
  in
  go ()

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_entity st =
  (* called after '&' was consumed *)
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' && st.pos - start < 16 do
    advance st
  done;
  if peek st <> ';' then fail st "unterminated entity reference";
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let code =
        try
          if String.length name > 2 && (name.[1] = 'x' || name.[1] = 'X') then
            int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string (String.sub name 1 (String.length name - 1))
        with _ -> fail st (Printf.sprintf "bad character reference &%s;" name)
      in
      if code < 0x80 then String.make 1 (Char.chr code)
      else begin
        (* UTF-8 encode *)
        let buf = Buffer.create 4 in
        if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents buf
      end
    end
    else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else begin
      let c = next st in
      if c = quote then ()
      else if c = '&' then begin
        Buffer.add_string buf (parse_entity st);
        go ()
      end
      else if c = '<' then fail st "'<' in attribute value"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    end
  in
  go ();
  Buffer.contents buf

let parse_attrs st =
  let rec go acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_space st;
      if peek st <> '=' then fail st "expected '=' after attribute name";
      advance st;
      skip_space st;
      let value = parse_attr_value st in
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

(* Skip comments, PIs, doctype between markup. *)
let rec skip_misc st =
  skip_space st;
  if looking_at st "<!--" then begin
    expect_string st "<!--";
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<?" then begin
    expect_string st "<?";
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    expect_string st "<!DOCTYPE";
    (* skip to matching '>' allowing one level of [ ... ] *)
    let depth = ref 0 in
    let rec go () =
      if eof st then fail st "unterminated DOCTYPE"
      else
        match next st with
        | '[' ->
          incr depth;
          go ()
        | ']' ->
          decr depth;
          go ()
        | '>' when !depth = 0 -> ()
        | _ -> go ()
    in
    go ();
    skip_misc st
  end

let rec parse_element st =
  if peek st <> '<' then fail st "expected '<'";
  advance st;
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_space st;
  if looking_at st "/>" then begin
    expect_string st "/>";
    { Xml_tree.tag; attrs; children = [] }
  end
  else if peek st = '>' then begin
    advance st;
    let children = parse_content st tag in
    { Xml_tree.tag; attrs; children }
  end
  else fail st "malformed start tag"

and parse_content st tag =
  let children = ref [] in
  let text = Buffer.create 16 in
  let flush_text () =
    if Buffer.length text > 0 then begin
      children := Xml_tree.Text (Buffer.contents text) :: !children;
      Buffer.clear text
    end
  in
  let rec go () =
    if eof st then fail st (Printf.sprintf "unterminated element <%s>" tag)
    else if looking_at st "</" then begin
      flush_text ();
      expect_string st "</";
      let close = parse_name st in
      skip_space st;
      if peek st <> '>' then fail st "malformed end tag";
      advance st;
      if close <> tag then
        fail st (Printf.sprintf "mismatched end tag </%s>, expected </%s>" close tag)
    end
    else if looking_at st "<!--" then begin
      expect_string st "<!--";
      skip_until st "-->";
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      expect_string st "<![CDATA[";
      let start = st.pos in
      let rec find () =
        if eof st then fail st "unterminated CDATA"
        else if looking_at st "]]>" then begin
          Buffer.add_string text (String.sub st.src start (st.pos - start));
          expect_string st "]]>"
        end
        else begin
          advance st;
          find ()
        end
      in
      find ();
      go ()
    end
    else if looking_at st "<?" then begin
      expect_string st "<?";
      skip_until st "?>";
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      let child = parse_element st in
      children := Xml_tree.Element child :: !children;
      go ()
    end
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string text (parse_entity st);
      go ()
    end
    else begin
      Buffer.add_char text (next st);
      go ()
    end
  in
  go ();
  List.rev !children

let parse_string src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  try
    skip_misc st;
    if eof st then Error { line = st.line; col = st.col; msg = "empty document" }
    else begin
      let root = parse_element st in
      skip_misc st;
      if not (eof st) then
        Error { line = st.line; col = st.col; msg = "trailing content after root element" }
      else Ok root
    end
  with Err e -> Error e

let parse_string_exn src =
  match parse_string src with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "%a" pp_error e)
