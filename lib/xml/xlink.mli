(** Extraction of link targets from XML elements.

    HOPI indexes arbitrary links: XLink ([xlink:href]), plain [href]
    fragments, and ID/IDREF(S).  This module only *recognises* link syntax;
    resolution to element ids happens in the collection builder, which knows
    the document universe. *)

type target = {
  doc : string option;  (** referenced document name; [None] = same document *)
  fragment : string;  (** element [id] within the target document; [""] = root *)
}

val targets_of_element : Xml_tree.t -> target list
(** Targets referenced by this element's attributes, in attribute order.
    Recognised attributes: [xlink:href], [href] (value [doc][#frag]),
    [idref] (one id), [idrefs] (whitespace-separated ids). *)

val parse_href : string -> target
(** [parse_href "d.xml#e5"] = [{doc = Some "d.xml"; fragment = "e5"}];
    [parse_href "#e5"] = [{doc = None; fragment = "e5"}]. *)

val pp_target : Format.formatter -> target -> unit
