(** Collections of linked XML documents — the paper's formal model
    (Section 2).

    A collection [X = (D, L)] holds a set of documents and the links between
    them.  Every element of every document gets a globally unique integer id
    (never reused), and the *element-level graph* [G_E(X)] — parent/child
    tree edges plus intra- and inter-document links — is maintained
    incrementally as documents are added and removed.

    Links are recognised from XLink/href/IDREF syntax (see {!Hopi_xml.Xlink})
    and resolved against the current document universe; references to
    documents that are not (yet) present stay *pending* and resolve
    automatically when the target document is added. *)

type t

type link_kind = Tree | Intra | Inter

type element_info = {
  el_id : int;
  el_tag : string;
  el_doc : int;  (** owning document id *)
  el_parent : int option;  (** parent in the element tree *)
  el_pre : int;  (** preorder rank within the document *)
  el_post : int;  (** postorder rank within the document *)
  el_anc : int;  (** #ancestors in the element tree, including itself *)
  el_desc : int;  (** #descendants in the element tree, including itself *)
}

val create : unit -> t

(** {1 Documents} *)

val add_document : t -> name:string -> Hopi_xml.Xml_tree.t -> int
(** Returns the new document id.
    @raise Invalid_argument if a document with this name already exists. *)

val add_document_xml : t -> name:string -> string -> (int, Hopi_xml.Xml_parser.error) result
(** Parse and add. *)

val remove_document : t -> int -> unit
(** Removes the document, its elements and all incident links.  Inter-document
    links *into* the removed document become pending again, so re-adding a
    document with the same name restores them.
    @raise Not_found for an unknown document id. *)

val n_docs : t -> int

val doc_ids : t -> int list

val doc_name : t -> int -> string

val doc_root_element : t -> int -> int
(** Element id of the document's root. *)

val find_doc : t -> string -> int option

val doc_of_element : t -> int -> int
(** The document mapping function [doc] of the paper. *)

val elements_of_doc : t -> int -> int list

val n_elements_of_doc : t -> int -> int

(** {1 Elements} *)

val n_elements : t -> int

val element_info : t -> int -> element_info

val tag_of : t -> int -> string

val attrs_of : t -> int -> (string * string) list
(** The element's XML attributes as parsed. *)

val text_of : t -> int -> string
(** The element's immediate text content (not including descendants). *)

val children : t -> int -> int list
(** Child elements in document order. *)

val subtree_elements : t -> int -> int list
(** The element and all its tree descendants, in preorder. *)

val elements_with_tag : t -> string -> int list

val iter_elements : t -> (int -> unit) -> unit

(** {1 Graph and links} *)

val element_graph : t -> Hopi_graph.Digraph.t
(** The live element-level graph [G_E(X)].  Callers must not mutate it. *)

val inter_links : t -> (int * int) list
(** The set [L] of inter-document links (element-id pairs). *)

val intra_links_of_doc : t -> int -> (int * int) list

val n_inter_links : t -> int

val n_links : t -> int
(** [|L(X)|]: inter- plus intra-document links. *)

val pending_links : t -> int
(** Number of unresolved (dangling) link references. *)

val add_element : t -> doc:int -> parent:int -> tag:string -> int
(** Incremental node insertion: a fresh element as a child of [parent].
    Pre/post ranks of the document are renumbered. *)

val add_subtree : t -> doc:int -> parent:int -> Hopi_xml.Xml_tree.t -> int list
(** Graft a parsed XML fragment under [parent]: elements are created in
    preorder (the returned list), id attributes register for fragment
    resolution, and the fragment's link references resolve like those of a
    new document (unresolvable ones stay pending). *)

val remove_subtree : t -> int -> int list
(** Remove an element and its tree descendants (returned in preorder, as
    they were).  Links incident to removed elements are dropped; incoming
    inter-document links become pending again when restorable.
    @raise Invalid_argument when applied to a document root — use
    {!remove_document}. *)

val add_link : t -> int -> int -> link_kind
(** Incremental edge insertion between two existing elements; returns the
    kind it was classified as ([Intra] or [Inter]).
    @raise Invalid_argument for a tree edge or unknown elements. *)

val remove_link : t -> int -> int -> unit
(** Removes an intra- or inter-document link.
    @raise Invalid_argument when no such link exists. *)

val serialized_size : t -> int
(** Total size in bytes of all documents when serialised — the "size" column
    of the paper's Table 1. *)
