(** A small inverted index over element text, for the IR-style content
    conditions of the XXL search engine the paper's introduction motivates
    (ranked queries like [//~book//author] combined with content terms).

    Terms are lowercased maximal alphanumeric runs of the elements'
    immediate text. *)

type t

val build : Collection.t -> t

val elements_with_term : t -> string -> int list
(** Elements whose immediate text contains the (lowercased) term. *)

val subtree_contains : t -> Collection.t -> int -> string -> bool
(** Does the element's subtree (within its document tree) contain the term?
    Uses pre/post containment against the posting list. *)

val n_terms : t -> int

val tokenize : string -> string list
(** Exposed for tests. *)
