module Digraph = Hopi_graph.Digraph
module Ihs = Hopi_util.Int_hashset

type t = {
  graph : Digraph.t;
  sources : Ihs.t;
  targets : Ihs.t;
  links : (int * int) list;
}

let is_tree_ancestor c v x =
  let iv = Collection.element_info c v and ix = Collection.element_info c x in
  iv.Collection.el_doc = ix.Collection.el_doc
  && iv.Collection.el_pre <= ix.Collection.el_pre
  && iv.Collection.el_post >= ix.Collection.el_post

let all_links c =
  let intra =
    List.concat_map (fun did -> Collection.intra_links_of_doc c did) (Collection.doc_ids c)
  in
  List.rev_append (Collection.inter_links c) intra

let of_collection c =
  let links = all_links c in
  let graph = Digraph.create () in
  let sources = Ihs.create () and targets = Ihs.create () in
  List.iter
    (fun (u, v) ->
      Ihs.add sources u;
      Ihs.add targets v;
      Digraph.add_edge graph u v)
    links;
  (* connect link targets to link sources of the same document when the
     target is a tree ancestor-or-self of the source *)
  let by_doc = Hashtbl.create 64 in
  let bucket did =
    match Hashtbl.find_opt by_doc did with
    | Some b -> b
    | None ->
      let b = (ref [], ref []) in
      Hashtbl.add by_doc did b;
      b
  in
  Ihs.iter
    (fun s ->
      let srcs, _ = bucket (Collection.doc_of_element c s) in
      srcs := s :: !srcs)
    sources;
  Ihs.iter
    (fun tg ->
      let _, tgts = bucket (Collection.doc_of_element c tg) in
      tgts := tg :: !tgts)
    targets;
  Hashtbl.iter
    (fun _ (srcs, tgts) ->
      List.iter
        (fun v ->
          List.iter
            (fun x -> if v <> x && is_tree_ancestor c v x then Digraph.add_edge graph v x)
            !srcs)
        !tgts)
    by_doc;
  { graph; sources; targets; links }

type annotation = { a : int; d : int }

let annotate c t ~max_depth =
  let is_link =
    let h = Hashtbl.create (List.length t.links) in
    List.iter (fun l -> Hashtbl.replace h l ()) t.links;
    fun u v -> Hashtbl.mem h (u, v)
  in
  let anc x = (Collection.element_info c x).Collection.el_anc in
  let desc x = (Collection.element_info c x).Collection.el_desc in
  let result = Hashtbl.create (Digraph.n_nodes t.graph) in
  (* Bounded BFS accumulating [desc] of link targets forward and [anc] of
     link sources backward, as described in Section 4.3. *)
  let traverse iter_next edge_of x gain0 gain =
    let total = ref gain0 in
    let seen = Ihs.create () in
    let q = Queue.create () in
    Ihs.add seen x;
    Queue.add (x, 0) q;
    while not (Queue.is_empty q) do
      let u, du = Queue.pop q in
      if du < max_depth then
        iter_next t.graph u (fun v ->
            if not (Ihs.mem seen v) then begin
              Ihs.add seen v;
              let eu, ev = edge_of u v in
              if is_link eu ev then total := !total + gain v;
              Queue.add (v, du + 1) q
            end)
    done;
    !total
  in
  Digraph.iter_nodes t.graph (fun x ->
      let d = traverse Digraph.iter_succ (fun u v -> (u, v)) x (desc x) desc in
      let a = traverse Digraph.iter_pred (fun u v -> (v, u)) x (anc x) anc in
      Hashtbl.replace result x { a; d });
  result
