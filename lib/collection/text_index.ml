module Ihs = Hopi_util.Int_hashset

type t = { postings : (string, Ihs.t) Hashtbl.t }

let tokenize s =
  let terms = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      terms := Buffer.contents buf :: !terms;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char buf ch
      | 'A' .. 'Z' -> Buffer.add_char buf (Char.lowercase_ascii ch)
      | _ -> flush ())
    s;
  flush ();
  List.rev !terms

let build c =
  let postings = Hashtbl.create 256 in
  Collection.iter_elements c (fun e ->
      List.iter
        (fun term ->
          let bucket =
            match Hashtbl.find_opt postings term with
            | Some b -> b
            | None ->
              let b = Ihs.create ~initial:4 () in
              Hashtbl.add postings term b;
              b
          in
          Ihs.add bucket e)
        (tokenize (Collection.text_of c e)));
  { postings }

let elements_with_term t term =
  match Hashtbl.find_opt t.postings (String.lowercase_ascii term) with
  | Some b -> Ihs.to_list b
  | None -> []

let subtree_contains t c e term =
  match Hashtbl.find_opt t.postings (String.lowercase_ascii term) with
  | None -> false
  | Some b ->
    let found = ref false in
    (try
       Ihs.iter
         (fun d ->
           if Skeleton.is_tree_ancestor c e d then begin
             found := true;
             raise Exit
           end)
         b
     with Exit -> ());
    !found

let n_terms t = Hashtbl.length t.postings
