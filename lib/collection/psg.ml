module Digraph = Hopi_graph.Digraph
module Ihs = Hopi_util.Int_hashset

type t = {
  graph : Digraph.t;
  sources : Ihs.t;
  targets : Ihs.t;
  link_edges : (int * int) list;
}

let build c (p : Partitioning.t) ~reaches_within_partition =
  let graph = Digraph.create () in
  let sources = Ihs.create () and targets = Ihs.create () in
  List.iter
    (fun (u, v) ->
      Ihs.add sources u;
      Ihs.add targets v;
      Digraph.add_edge graph u v)
    p.Partitioning.cross_links;
  (* intra-partition connections from link targets to link sources *)
  let by_part_src = Hashtbl.create 16 and by_part_tgt = Hashtbl.create 16 in
  let push h k x =
    let l = Option.value ~default:[] (Hashtbl.find_opt h k) in
    Hashtbl.replace h k (x :: l)
  in
  Ihs.iter (fun s -> push by_part_src (Partitioning.part_of_element p c s) s) sources;
  Ihs.iter (fun t -> push by_part_tgt (Partitioning.part_of_element p c t) t) targets;
  Hashtbl.iter
    (fun part tgts ->
      match Hashtbl.find_opt by_part_src part with
      | None -> ()
      | Some srcs ->
        List.iter
          (fun t ->
            List.iter
              (fun s ->
                if t <> s && reaches_within_partition t s then Digraph.add_edge graph t s)
              srcs)
          tgts)
    by_part_tgt;
  { graph; sources; targets; link_edges = p.Partitioning.cross_links }
