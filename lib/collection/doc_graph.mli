(** The document-level graph [G_D(X)] (Section 2): one node per document, an
    edge [(d_i, d_j)] when some link connects an element of [d_i] to an
    element of [d_j].  Nodes are weighted with the document's element count;
    edges carry a weight used by the partitioners — by default the number of
    links between the two documents, or any per-link weight supplied by the
    caller (the A*D / A+D schemes of Section 4.3). *)

type t = {
  graph : Hopi_graph.Digraph.t;  (** nodes are document ids *)
  node_weight : (int, int) Hashtbl.t;  (** document id -> #elements *)
  edge_weight : (int * int, float) Hashtbl.t;
}

val of_collection :
  ?link_weight:(int * int -> float) -> Collection.t -> t
(** [link_weight (u,v)] is the weight contributed by the element-level link
    [(u,v)]; per-document-pair weights are the sums.  Default: 1 per link. *)

val edge_weight : t -> int -> int -> float

val node_weight : t -> int -> int

val total_node_weight : t -> int
