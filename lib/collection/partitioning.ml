module Digraph = Hopi_graph.Digraph
module Ihs = Hopi_util.Int_hashset

type t = {
  n : int;
  part_of_doc : (int, int) Hashtbl.t;
  docs_of_part : int list array;
  cross_links : (int * int) list;
}

let make c ~part_of_doc ~n =
  let docs_of_part = Array.make (max n 1) [] in
  List.iter
    (fun did ->
      match Hashtbl.find_opt part_of_doc did with
      | Some p when p >= 0 && p < n ->
        docs_of_part.(p) <- did :: docs_of_part.(p)
      | Some p ->
        invalid_arg (Printf.sprintf "Partitioning.make: partition %d out of range" p)
      | None ->
        invalid_arg (Printf.sprintf "Partitioning.make: document %d unassigned" did))
    (Collection.doc_ids c);
  let cross_links =
    List.filter
      (fun (u, v) ->
        let pu = Hashtbl.find part_of_doc (Collection.doc_of_element c u)
        and pv = Hashtbl.find part_of_doc (Collection.doc_of_element c v) in
        pu <> pv)
      (Collection.inter_links c)
  in
  { n; part_of_doc; docs_of_part; cross_links }

let singleton_per_doc c =
  let part_of_doc = Hashtbl.create (Collection.n_docs c) in
  let n = ref 0 in
  List.iter
    (fun did ->
      Hashtbl.replace part_of_doc did !n;
      incr n)
    (List.sort compare (Collection.doc_ids c));
  make c ~part_of_doc ~n:!n

let whole_collection c =
  let part_of_doc = Hashtbl.create (Collection.n_docs c) in
  List.iter (fun did -> Hashtbl.replace part_of_doc did 0) (Collection.doc_ids c);
  make c ~part_of_doc ~n:1

let part_of_element t c eid = Hashtbl.find t.part_of_doc (Collection.doc_of_element c eid)

let element_subgraph t c p =
  let keep = Ihs.create () in
  List.iter
    (fun did -> List.iter (fun e -> Ihs.add keep e) (Collection.elements_of_doc c did))
    t.docs_of_part.(p);
  Digraph.induced_subgraph (Collection.element_graph c) keep

let check t c =
  let seen = Ihs.create () in
  Array.iteri
    (fun p docs ->
      List.iter
        (fun did ->
          if Ihs.mem seen did then
            invalid_arg (Printf.sprintf "Partitioning.check: document %d in two partitions" did);
          Ihs.add seen did;
          if Hashtbl.find_opt t.part_of_doc did <> Some p then
            invalid_arg "Partitioning.check: inconsistent part_of_doc")
        docs)
    t.docs_of_part;
  List.iter
    (fun did ->
      if not (Ihs.mem seen did) then
        invalid_arg (Printf.sprintf "Partitioning.check: document %d missing" did))
    (Collection.doc_ids c);
  List.iter
    (fun (u, v) ->
      if part_of_element t c u = part_of_element t c v then
        invalid_arg "Partitioning.check: non-crossing link recorded as crossing")
    t.cross_links
