(** The skeleton graph [S(X)] (Definition 2 of the paper).

    Nodes are the elements that are sources or targets of links; edges are
    all links [L(X)] plus, for each link target [v] and link source [x] in
    the same document with [v →* x] in the element *tree*, an edge [(v,x)].

    The skeleton graph is used to compute the connection-aware edge weights
    of Section 4.3: each node [x] is annotated with its element-tree
    ancestor/descendant counts [anc(x)]/[desc(x)], and the global counts
    [A(x)]/[D(x)] are approximated by breadth-first traversals bounded to
    paths of a configurable length. *)

type t = {
  graph : Hopi_graph.Digraph.t;  (** nodes are element ids *)
  sources : Hopi_util.Int_hashset.t;  (** elements that are link sources *)
  targets : Hopi_util.Int_hashset.t;  (** elements that are link targets *)
  links : (int * int) list;  (** the link edges, i.e. [L(X)] *)
}

val of_collection : Collection.t -> t

val is_tree_ancestor : Collection.t -> int -> int -> bool
(** [is_tree_ancestor c v x]: [v →* x] in the element tree of their common
    document (pre/post interval containment); [false] when the documents
    differ. *)

type annotation = { a : int;  (** approximated global #ancestors *)
                    d : int  (** approximated global #descendants *) }

val annotate : Collection.t -> t -> max_depth:int -> (int, annotation) Hashtbl.t
(** Bounded traversal approximation of [A(x)] and [D(x)] for every skeleton
    node (Section 4.3). *)
