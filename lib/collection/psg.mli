(** The partition-level skeleton graph (Definition 1 of the paper).

    Given a partitioning [P] with cross-partition links [L_P], the PSG has as
    nodes the sources and targets of cross-partition links, and as edges the
    links [L_P] plus an edge [(t, s)] whenever a link target [t] and a link
    source [s] lie in the same partition and [t ⇝ s] *within* that partition
    — connectivity that the per-partition 2-hop covers already answer, so it
    is supplied as an oracle. *)

type t = {
  graph : Hopi_graph.Digraph.t;
  sources : Hopi_util.Int_hashset.t;  (** sources of cross-partition links *)
  targets : Hopi_util.Int_hashset.t;  (** targets of cross-partition links *)
  link_edges : (int * int) list;
      (** the [L_P] edges (source → target); all other PSG edges are
          within-partition connections (target → source) *)
}

val build :
  Collection.t ->
  Partitioning.t ->
  reaches_within_partition:(int -> int -> bool) ->
  t
(** [reaches_within_partition t s] must answer whether [t ⇝ s] using only
    nodes of their (common) partition. *)
