module Digraph = Hopi_graph.Digraph
module Ihs = Hopi_util.Int_hashset
module Xml_tree = Hopi_xml.Xml_tree
module Xlink = Hopi_xml.Xlink

type link_kind = Tree | Intra | Inter

type element_info = {
  el_id : int;
  el_tag : string;
  el_doc : int;
  el_parent : int option;
  el_pre : int;
  el_post : int;
  el_anc : int;
  el_desc : int;
}

type elem = {
  e_id : int;
  e_tag : string;
  e_attrs : (string * string) list;
  e_text : string;
  e_doc : int;
  e_parent : int option;
  mutable e_children : int list;  (* reverse insertion order *)
  mutable e_pre : int;
  mutable e_post : int;
  e_anc : int;
  mutable e_desc : int;
}

type doc = {
  d_name : string;
  d_root : int;
  mutable d_elements : int list;  (* reverse preorder of creation *)
  d_id_map : (string, int) Hashtbl.t;
  mutable d_intra : (int * int) list;
  d_size : int;
}

(* An unresolved link reference: [p_src] element points at element
   [p_frag] (by id attribute; "" = root) of document [p_doc_name]. *)
type pending = { p_src : int; p_doc_name : string; p_frag : string }

type t = {
  mutable next_el : int;
  mutable next_doc : int;
  docs : (int, doc) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  els : (int, elem) Hashtbl.t;
  graph : Digraph.t;
  tags : (string, Ihs.t) Hashtbl.t;
  inter : (int * int, pending option) Hashtbl.t;
      (* resolved inter-document links; the payload allows restoring the
         reference as pending when the target document is removed *)
  mutable pend : pending list;
}

let create () =
  {
    next_el = 0;
    next_doc = 0;
    docs = Hashtbl.create 64;
    by_name = Hashtbl.create 64;
    els = Hashtbl.create 1024;
    graph = Digraph.create ~initial:1024 ();
    tags = Hashtbl.create 64;
    inter = Hashtbl.create 256;
    pend = [];
  }

let elem t id =
  match Hashtbl.find_opt t.els id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Collection: unknown element %d" id)

let doc t id =
  match Hashtbl.find_opt t.docs id with
  | Some d -> d
  | None -> raise Not_found

(* concatenated immediate text children of an element *)
let direct_text (x : Xml_tree.t) =
  let buf = Buffer.create 16 in
  List.iter
    (function
      | Xml_tree.Text s -> Buffer.add_string buf s
      | Xml_tree.Element _ -> ())
    x.Xml_tree.children;
  Buffer.contents buf

let tag_bucket t tag =
  match Hashtbl.find_opt t.tags tag with
  | Some s -> s
  | None ->
    let s = Ihs.create () in
    Hashtbl.add t.tags tag s;
    s

(* {1 Link resolution} *)

let resolve_target t (p : pending) =
  match Hashtbl.find_opt t.by_name p.p_doc_name with
  | None -> None
  | Some did ->
    let d = doc t did in
    if p.p_frag = "" then Some d.d_root
    else Hashtbl.find_opt d.d_id_map p.p_frag

(* Install a resolved link [src -> dst]; duplicates (including tree edges)
   are skipped so that a later [remove_link] can never delete a tree edge. *)
let install_link t (p : pending) dst =
  let src = p.p_src in
  if src <> dst && not (Digraph.mem_edge t.graph src dst) then begin
    let es = elem t src and ed = elem t dst in
    Digraph.add_edge t.graph src dst;
    if es.e_doc = ed.e_doc then begin
      let d = doc t es.e_doc in
      d.d_intra <- (src, dst) :: d.d_intra
    end
    else Hashtbl.replace t.inter (src, dst) (Some p)
  end

let try_resolve_pending t =
  let still = ref [] in
  List.iter
    (fun p ->
      if Hashtbl.mem t.els p.p_src then
        match resolve_target t p with
        | Some dst -> install_link t p dst
        | None -> still := p :: !still)
    t.pend;
  t.pend <- List.rev !still

(* {1 Adding documents} *)

let add_document t ~name root =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Collection.add_document: duplicate name %S" name);
  let did = t.next_doc in
  t.next_doc <- t.next_doc + 1;
  let id_map = Hashtbl.create 16 in
  let elements = ref [] in
  let refs = ref [] in
  (* pre/post counters within this document *)
  let pre = ref 0 and post = ref 0 in
  let rec walk parent_id depth (x : Xml_tree.t) =
    let eid = t.next_el in
    t.next_el <- t.next_el + 1;
    let e =
      {
        e_id = eid;
        e_tag = x.Xml_tree.tag;
        e_attrs = x.Xml_tree.attrs;
        e_text = direct_text x;
        e_doc = did;
        e_parent = parent_id;
        e_children = [];
        e_pre = !pre;
        e_post = 0;
        e_anc = depth;
        e_desc = 1;
      }
    in
    incr pre;
    Hashtbl.add t.els eid e;
    elements := eid :: !elements;
    Digraph.add_node t.graph eid;
    Ihs.add (tag_bucket t x.Xml_tree.tag) eid;
    (match parent_id with
     | Some p ->
       let pe = elem t p in
       pe.e_children <- eid :: pe.e_children;
       Digraph.add_edge t.graph p eid
     | None -> ());
    (match Xml_tree.attr x "id" with
     | Some v -> if not (Hashtbl.mem id_map v) then Hashtbl.add id_map v eid
     | None -> ());
    List.iter
      (fun (tgt : Xlink.target) ->
        let doc_name = Option.value ~default:name tgt.Xlink.doc in
        refs := { p_src = eid; p_doc_name = doc_name; p_frag = tgt.Xlink.fragment } :: !refs)
      (Xlink.targets_of_element x);
    let desc =
      List.fold_left
        (fun acc -> function
          | Xml_tree.Element c -> acc + walk (Some eid) (depth + 1) c
          | Xml_tree.Text _ -> acc)
        1 x.Xml_tree.children
    in
    e.e_desc <- desc;
    e.e_post <- !post;
    incr post;
    desc
  in
  let root_desc = walk None 1 root in
  ignore root_desc;
  let root_el =
    match List.rev !elements with
    | r :: _ -> r
    | [] -> assert false
  in
  let d =
    {
      d_name = name;
      d_root = root_el;
      d_elements = !elements;
      d_id_map = id_map;
      d_intra = [];
      d_size = String.length (Xml_tree.to_string root);
    }
  in
  Hashtbl.add t.docs did d;
  Hashtbl.add t.by_name name did;
  (* resolve this document's own references, then retry older pending ones
     (they may point into the new document) *)
  t.pend <- List.rev_append !refs t.pend;
  try_resolve_pending t;
  did

let add_document_xml t ~name src =
  match Hopi_xml.Xml_parser.parse_string src with
  | Error e -> Error e
  | Ok root -> Ok (add_document t ~name root)

(* {1 Removing documents} *)

let remove_document t did =
  let d = doc t did in
  let in_doc eid = match Hashtbl.find_opt t.els eid with
    | Some e -> e.e_doc = did
    | None -> false
  in
  (* inter-document links touching the removed document *)
  let to_remove = ref [] in
  Hashtbl.iter
    (fun (u, v) spec ->
      if in_doc u || in_doc v then to_remove := ((u, v), spec) :: !to_remove)
    t.inter;
  List.iter
    (fun ((u, v), spec) ->
      Hashtbl.remove t.inter (u, v);
      (* a link from a surviving document into the removed one becomes
         pending again so re-insertion of the document restores it *)
      if (not (in_doc u)) && in_doc v then
        match spec with
        | Some p -> t.pend <- p :: t.pend
        | None -> ())
    !to_remove;
  (* pending references originating in the removed document *)
  t.pend <- List.filter (fun p -> not (in_doc p.p_src)) t.pend;
  (* elements *)
  List.iter
    (fun eid ->
      let e = elem t eid in
      (match Hashtbl.find_opt t.tags e.e_tag with
       | Some s -> Ihs.remove s eid
       | None -> ());
      Digraph.remove_node t.graph eid;
      Hashtbl.remove t.els eid)
    d.d_elements;
  Hashtbl.remove t.docs did;
  Hashtbl.remove t.by_name d.d_name

(* {1 Accessors} *)

let n_docs t = Hashtbl.length t.docs

let doc_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.docs []

let doc_name t did = (doc t did).d_name

let doc_root_element t did = (doc t did).d_root

let find_doc t name = Hashtbl.find_opt t.by_name name

let doc_of_element t eid = (elem t eid).e_doc

let elements_of_doc t did = List.rev (doc t did).d_elements

let n_elements_of_doc t did = List.length (doc t did).d_elements

let n_elements t = Hashtbl.length t.els

let element_info t eid =
  let e = elem t eid in
  {
    el_id = e.e_id;
    el_tag = e.e_tag;
    el_doc = e.e_doc;
    el_parent = e.e_parent;
    el_pre = e.e_pre;
    el_post = e.e_post;
    el_anc = e.e_anc;
    el_desc = e.e_desc;
  }

let tag_of t eid = (elem t eid).e_tag

let attrs_of t eid = (elem t eid).e_attrs

let text_of t eid = (elem t eid).e_text

let children t eid = List.rev (elem t eid).e_children

let subtree_elements t eid =
  let acc = ref [] in
  let rec go id =
    acc := id :: !acc;
    List.iter go (List.rev (elem t id).e_children)
  in
  go eid;
  List.rev !acc

let elements_with_tag t tag =
  match Hashtbl.find_opt t.tags tag with
  | Some s -> Ihs.to_list s
  | None -> []

let iter_elements t f = Hashtbl.iter (fun id _ -> f id) t.els

let element_graph t = t.graph

let inter_links t = Hashtbl.fold (fun k _ acc -> k :: acc) t.inter []

let intra_links_of_doc t did = (doc t did).d_intra

let n_inter_links t = Hashtbl.length t.inter

let n_links t =
  Hashtbl.fold (fun _ d acc -> acc + List.length d.d_intra) t.docs (n_inter_links t)

let pending_links t = List.length t.pend

(* {1 Incremental element/link updates} *)

let renumber_doc t d =
  let pre = ref 0 and post = ref 0 in
  let rec walk eid =
    let e = elem t eid in
    e.e_pre <- !pre;
    incr pre;
    let desc =
      List.fold_left (fun acc c -> acc + walk c) 1 (List.rev e.e_children)
    in
    e.e_desc <- desc;
    e.e_post <- !post;
    incr post;
    desc
  in
  ignore (walk d.d_root)

let add_element t ~doc:did ~parent ~tag =
  let d = doc t did in
  let pe = elem t parent in
  if pe.e_doc <> did then
    invalid_arg "Collection.add_element: parent not in that document";
  let eid = t.next_el in
  t.next_el <- t.next_el + 1;
  let e =
    {
      e_id = eid;
      e_tag = tag;
      e_attrs = [];
      e_text = "";
      e_doc = did;
      e_parent = Some parent;
      e_children = [];
      e_pre = 0;
      e_post = 0;
      e_anc = pe.e_anc + 1;
      e_desc = 1;
    }
  in
  Hashtbl.add t.els eid e;
  d.d_elements <- eid :: d.d_elements;
  pe.e_children <- eid :: pe.e_children;
  Digraph.add_edge t.graph parent eid;
  Ihs.add (tag_bucket t tag) eid;
  renumber_doc t d;
  eid

let add_link t u v =
  let eu = elem t u and ev = elem t v in
  if u = v then invalid_arg "Collection.add_link: self link";
  if Digraph.mem_edge t.graph u v then
    invalid_arg "Collection.add_link: edge already present";
  Digraph.add_edge t.graph u v;
  if eu.e_doc = ev.e_doc then begin
    let d = doc t eu.e_doc in
    d.d_intra <- (u, v) :: d.d_intra;
    Intra
  end
  else begin
    (* record a restorable spec when the target carries an id attribute;
       otherwise the link is dropped if its target document is removed *)
    let frag =
      let dd = doc t ev.e_doc in
      if dd.d_root = v then Some ""
      else
        Hashtbl.fold
          (fun k eid acc -> if eid = v && acc = None then Some k else acc)
          dd.d_id_map None
    in
    let spec =
      Option.map
        (fun f -> { p_src = u; p_doc_name = (doc t ev.e_doc).d_name; p_frag = f })
        frag
    in
    Hashtbl.replace t.inter (u, v) spec;
    Inter
  end

let remove_link t u v =
  let eu = elem t u and ev = elem t v in
  if eu.e_doc = ev.e_doc then begin
    let d = doc t eu.e_doc in
    if not (List.mem (u, v) d.d_intra) then
      invalid_arg "Collection.remove_link: not an intra-document link";
    d.d_intra <- List.filter (fun l -> l <> (u, v)) d.d_intra;
    Digraph.remove_edge t.graph u v
  end
  else begin
    if not (Hashtbl.mem t.inter (u, v)) then
      invalid_arg "Collection.remove_link: not an inter-document link";
    Hashtbl.remove t.inter (u, v);
    Digraph.remove_edge t.graph u v
  end

let add_subtree t ~doc:did ~parent root =
  let d = doc t did in
  let pe = elem t parent in
  if pe.e_doc <> did then
    invalid_arg "Collection.add_subtree: parent not in that document";
  let created = ref [] in
  let refs = ref [] in
  let rec walk parent_el depth (x : Xml_tree.t) =
    let eid = t.next_el in
    t.next_el <- t.next_el + 1;
    let e =
      {
        e_id = eid;
        e_tag = x.Xml_tree.tag;
        e_attrs = x.Xml_tree.attrs;
        e_text = direct_text x;
        e_doc = did;
        e_parent = Some parent_el.e_id;
        e_children = [];
        e_pre = 0;
        e_post = 0;
        e_anc = depth;
        e_desc = 1;
      }
    in
    Hashtbl.add t.els eid e;
    created := eid :: !created;
    d.d_elements <- eid :: d.d_elements;
    parent_el.e_children <- eid :: parent_el.e_children;
    Digraph.add_edge t.graph parent_el.e_id eid;
    Ihs.add (tag_bucket t x.Xml_tree.tag) eid;
    (match Xml_tree.attr x "id" with
     | Some v -> if not (Hashtbl.mem d.d_id_map v) then Hashtbl.add d.d_id_map v eid
     | None -> ());
    List.iter
      (fun (tgt : Xlink.target) ->
        let doc_name = Option.value ~default:d.d_name tgt.Xlink.doc in
        refs := { p_src = eid; p_doc_name = doc_name; p_frag = tgt.Xlink.fragment } :: !refs)
      (Xlink.targets_of_element x);
    List.iter
      (function Xml_tree.Element cx -> walk e (depth + 1) cx | Xml_tree.Text _ -> ())
      x.Xml_tree.children
  in
  walk pe (pe.e_anc + 1) root;
  renumber_doc t d;
  (* resolve the fragment's references, plus older pending ones that may
     point at the new elements *)
  t.pend <- List.rev_append !refs t.pend;
  try_resolve_pending t;
  List.rev !created

let remove_subtree t eid =
  let e = elem t eid in
  if e.e_parent = None then
    invalid_arg "Collection.remove_subtree: cannot remove a document root";
  let d = doc t e.e_doc in
  let removed = subtree_elements t eid in
  let in_sub =
    let h = Hashtbl.create (List.length removed) in
    List.iter (fun x -> Hashtbl.replace h x ()) removed;
    fun x -> Hashtbl.mem h x
  in
  (* inter-document links touching removed elements *)
  let to_remove = ref [] in
  Hashtbl.iter
    (fun (u, v) spec ->
      if in_sub u || in_sub v then to_remove := ((u, v), spec) :: !to_remove)
    t.inter;
  List.iter
    (fun ((u, v), spec) ->
      Hashtbl.remove t.inter (u, v);
      if (not (in_sub u)) && in_sub v then
        match spec with
        | Some p -> t.pend <- p :: t.pend
        | None -> ())
    !to_remove;
  (* intra-document links of this (and only this) document *)
  d.d_intra <- List.filter (fun (u, v) -> not (in_sub u || in_sub v)) d.d_intra;
  (* pending references originating in the subtree *)
  t.pend <- List.filter (fun p -> not (in_sub p.p_src)) t.pend;
  (* id-attribute registrations pointing into the subtree *)
  let dead_ids =
    Hashtbl.fold (fun k v acc -> if in_sub v then k :: acc else acc) d.d_id_map []
  in
  List.iter (Hashtbl.remove d.d_id_map) dead_ids;
  (* detach from the parent, drop the elements *)
  (match e.e_parent with
   | Some p ->
     let pe = elem t p in
     pe.e_children <- List.filter (fun x -> x <> eid) pe.e_children
   | None -> ());
  List.iter
    (fun x ->
      let ex = elem t x in
      (match Hashtbl.find_opt t.tags ex.e_tag with
       | Some s -> Ihs.remove s x
       | None -> ());
      Digraph.remove_node t.graph x;
      Hashtbl.remove t.els x)
    removed;
  d.d_elements <- List.filter (fun x -> not (in_sub x)) d.d_elements;
  renumber_doc t d;
  removed

let serialized_size t = Hashtbl.fold (fun _ d acc -> acc + d.d_size) t.docs 0
