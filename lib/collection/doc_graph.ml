module Digraph = Hopi_graph.Digraph

type t = {
  graph : Digraph.t;
  node_weight : (int, int) Hashtbl.t;
  edge_weight : (int * int, float) Hashtbl.t;
}

let of_collection ?(link_weight = fun _ -> 1.0) c =
  let graph = Digraph.create ~initial:(Collection.n_docs c) () in
  let node_weight = Hashtbl.create (Collection.n_docs c) in
  let edge_weight = Hashtbl.create 64 in
  List.iter
    (fun did ->
      Digraph.add_node graph did;
      Hashtbl.replace node_weight did (Collection.n_elements_of_doc c did))
    (Collection.doc_ids c);
  List.iter
    (fun (u, v) ->
      let du = Collection.doc_of_element c u
      and dv = Collection.doc_of_element c v in
      Digraph.add_edge graph du dv;
      let w = link_weight (u, v) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt edge_weight (du, dv)) in
      Hashtbl.replace edge_weight (du, dv) (prev +. w))
    (Collection.inter_links c);
  { graph; node_weight; edge_weight }

let edge_weight t u v = Option.value ~default:0.0 (Hashtbl.find_opt t.edge_weight (u, v))

let node_weight t d = Option.value ~default:0 (Hashtbl.find_opt t.node_weight d)

let total_node_weight t = Hashtbl.fold (fun _ w acc -> acc + w) t.node_weight 0
