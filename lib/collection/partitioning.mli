(** Partitionings of a collection (Section 2): disjoint sets of documents
    [P_1..P_m] plus the set [L_P] of element-level links that cross
    partitions. *)

type t = {
  n : int;  (** number of partitions *)
  part_of_doc : (int, int) Hashtbl.t;  (** document id -> partition id *)
  docs_of_part : int list array;  (** partition id -> document ids *)
  cross_links : (int * int) list;  (** element-level links between partitions *)
}

val make : Collection.t -> part_of_doc:(int, int) Hashtbl.t -> n:int -> t
(** Classifies every inter-document link as internal or crossing.
    Every document of the collection must be assigned. *)

val singleton_per_doc : Collection.t -> t
(** The "naive" partitioning of the paper's Table 2 row [single]: one
    document per partition. *)

val whole_collection : Collection.t -> t
(** Everything in one partition (no cross links). *)

val part_of_element : t -> Collection.t -> int -> int

val element_subgraph : t -> Collection.t -> int -> Hopi_graph.Digraph.t
(** The element-level graph of one partition: tree edges, intra-document
    links and inter-document links that stay inside the partition. *)

val check : t -> Collection.t -> unit
(** Validates the partitioning invariants; raises [Invalid_argument]. *)
