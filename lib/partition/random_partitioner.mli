(** The EDBT'04 baseline partitioner (Section 3.3 step 1): grow partitions
    until the sum of node weights (element counts) reaches a conservative
    limit chosen so that each partition's transitive closure can be computed
    in memory.  The paper's Table 2 rows P5..P50 use this partitioner with
    size limits of [x · 10^4] nodes. *)

val partition :
  ?seed:int ->
  max_elements:int ->
  Hopi_collection.Collection.t ->
  Hopi_collection.Doc_graph.t ->
  Hopi_collection.Partitioning.t
(** A document larger than [max_elements] gets a partition of its own. *)
