module Collection = Hopi_collection.Collection

let partition ?seed ~max_elements c dg =
  let current = ref 0 in
  Grow.run ?seed c dg
    ~fresh_partition:(fun () -> current := 0)
    ~admits:(fun d -> !current + Collection.n_elements_of_doc c d <= max_elements)
    ~added:(fun d -> current := !current + Collection.n_elements_of_doc c d)
