module Skeleton = Hopi_collection.Skeleton
module Doc_graph = Hopi_collection.Doc_graph

type scheme = Links | A_times_D | A_plus_D

let scheme_name = function
  | Links -> "links"
  | A_times_D -> "A*D"
  | A_plus_D -> "A+D"

let all_schemes = [ Links; A_times_D; A_plus_D ]

let link_weight ?(max_depth = 8) c scheme =
  match scheme with
  | Links -> fun _ -> 1.0
  | A_times_D | A_plus_D ->
    let skel = Skeleton.of_collection c in
    let ann = Skeleton.annotate c skel ~max_depth in
    let a u =
      match Hashtbl.find_opt ann u with
      | Some x -> float_of_int x.Skeleton.a
      | None -> 1.0
    in
    let d v =
      match Hashtbl.find_opt ann v with
      | Some x -> float_of_int x.Skeleton.d
      | None -> 1.0
    in
    if scheme = A_times_D then fun (u, v) -> a u *. d v
    else fun (u, v) -> a u +. d v

let doc_graph ?max_depth c scheme =
  Doc_graph.of_collection ~link_weight:(link_weight ?max_depth c scheme) c
