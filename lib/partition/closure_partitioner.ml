module Collection = Hopi_collection.Collection
module Digraph = Hopi_graph.Digraph
module Closure = Hopi_graph.Closure

(* The admission test adds the candidate document's elements (and all edges
   among elements already present) to a working element graph, recounts the
   closure, and rolls back if the budget is exceeded.  Counting uses the
   SCC/bitset path of [Closure.count_connections], so no per-node successor
   sets are materialised. *)

let partition ?seed ~max_connections c dg =
  let work = ref (Digraph.create ()) in
  let add_doc g d =
    let eg = Collection.element_graph c in
    List.iter
      (fun e ->
        Digraph.add_node g e;
        Digraph.iter_succ eg e (fun v -> if Digraph.mem_node g v then Digraph.add_edge g e v);
        Digraph.iter_pred eg e (fun u -> if Digraph.mem_node g u then Digraph.add_edge g u e))
      (Collection.elements_of_doc c d)
  in
  let remove_doc g d =
    List.iter (fun e -> Digraph.remove_node g e) (Collection.elements_of_doc c d)
  in
  Grow.run ?seed c dg
    ~fresh_partition:(fun () -> work := Digraph.create ())
    ~admits:(fun d ->
      let g = !work in
      add_doc g d;
      if Closure.count_connections g <= max_connections then true
      else begin
        remove_doc g d;
        false
      end)
    ~added:(fun d ->
      (* the admission test already inserted accepted candidates; only the
         always-accepted seed document still needs inserting *)
      let g = !work in
      match Collection.elements_of_doc c d with
      | e :: _ when not (Digraph.mem_node g e) -> add_doc g d
      | _ -> ())
