(** Shared greedy growth loop for document-level partitioners.  Not part of
    the public API surface; used by {!Random_partitioner} and
    {!Closure_partitioner}. *)

val run :
  ?seed:int ->
  ?skip_budget:int ->
  Hopi_collection.Collection.t ->
  Hopi_collection.Doc_graph.t ->
  fresh_partition:(unit -> unit) ->
  admits:(int -> bool) ->
  added:(int -> unit) ->
  Hopi_collection.Partitioning.t
(** [admits doc] is asked before each candidate document joins the current
    partition; [added doc] reports acceptance (the seed document of each
    partition is always accepted); [fresh_partition ()] announces that a new
    partition was started.  [skip_budget] rejected candidates are tolerated
    per partition before it is closed. *)
