(** The new closure-size-aware partitioner (Section 4.3): while a partition
    grows, the transitive closure of its element-level graph is tracked, and
    the partition is closed when the closure reaches the configured memory
    budget (expressed in connections).  Compared to the node-count limit
    this packs far more connections into each partition cover and reduces
    cross-partition links, and it yields partitions of similar closure size
    — the paper's Table 2 rows N10..N100 with limits of [x · 10^5]
    connections. *)

val partition :
  ?seed:int ->
  max_connections:int ->
  Hopi_collection.Collection.t ->
  Hopi_collection.Doc_graph.t ->
  Hopi_collection.Partitioning.t
(** A document whose own closure exceeds [max_connections] gets a partition
    of its own. *)
