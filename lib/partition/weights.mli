(** Edge-weight schemes for partitioning the document-level graph
    (Section 4.3 of the paper).

    - [Links]: weight of a document edge = number of links between the two
      documents (the EDBT'04 default).
    - [A_times_D]: each link [(u,v)] weighs [A(u) * D(v)] — the number of
      element connections made over this link.
    - [A_plus_D]: each link weighs [A(u) + D(v)] — the number of elements
      connected over this link.

    [A]/[D] are the (approximated) global ancestor/descendant counts from
    the skeleton-graph annotation. *)

type scheme = Links | A_times_D | A_plus_D

val scheme_name : scheme -> string

val all_schemes : scheme list

val link_weight :
  ?max_depth:int -> Hopi_collection.Collection.t -> scheme -> (int * int -> float)
(** Returns the per-link weight function to feed into
    {!Hopi_collection.Doc_graph.of_collection}.  [max_depth] bounds the
    skeleton-graph traversals (default 8). *)

val doc_graph :
  ?max_depth:int ->
  Hopi_collection.Collection.t ->
  scheme ->
  Hopi_collection.Doc_graph.t
(** Convenience: document-level graph under the given scheme. *)
