(* Shared greedy partition-growth loop used by both partitioners.

   A partition starts from a (pseudo-random) seed document and grows by
   repeatedly pulling in the unassigned document with the largest total
   link weight to the current partition, keeping linked documents together
   and the weight of cross-partition edges low.  The partitioners differ
   only in their admission test. *)

module Collection = Hopi_collection.Collection
module Doc_graph = Hopi_collection.Doc_graph
module Partitioning = Hopi_collection.Partitioning
module Digraph = Hopi_graph.Digraph
module Ihs = Hopi_util.Int_hashset
module Splitmix = Hopi_util.Splitmix

(* [admits] is consulted with the candidate document *before* it is added;
   [added] notifies acceptance so the admission state can be updated.
   [skip_budget] failed candidates are tolerated before the partition is
   closed. *)
let run ?(seed = 17) ?(skip_budget = 5) c (dg : Doc_graph.t)
    ~(fresh_partition : unit -> unit) ~(admits : int -> bool) ~(added : int -> unit) =
  let rng = Splitmix.create seed in
  let docs = Array.of_list (List.sort compare (Collection.doc_ids c)) in
  Splitmix.shuffle rng docs;
  let assigned = Hashtbl.create (Array.length docs) in
  let part_of_doc = Hashtbl.create (Array.length docs) in
  let n_parts = ref 0 in
  let weight_between d d' =
    Doc_graph.edge_weight dg d d' +. Doc_graph.edge_weight dg d' d
  in
  Array.iter
    (fun seed_doc ->
      if not (Hashtbl.mem assigned seed_doc) then begin
        let pid = !n_parts in
        incr n_parts;
        fresh_partition ();
        let assign d =
          Hashtbl.replace assigned d ();
          Hashtbl.replace part_of_doc d pid;
          added d
        in
        (* The seed is always admitted: a partition holds at least one
           document, even when the document alone exceeds the budget. *)
        ignore (admits seed_doc);
        assign seed_doc;
        (* frontier: unassigned neighbours scored by link weight to part *)
        let score = Hashtbl.create 16 in
        let update_frontier d =
          let consider nd =
            if (not (Hashtbl.mem assigned nd)) && nd <> d then begin
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt score nd) in
              Hashtbl.replace score nd (prev +. weight_between d nd)
            end
          in
          Digraph.iter_succ dg.Doc_graph.graph d consider;
          Digraph.iter_pred dg.Doc_graph.graph d consider
        in
        update_frontier seed_doc;
        let failures = ref 0 in
        let rejected = Ihs.create () in
        let rec grow () =
          if !failures <= skip_budget then begin
            (* best-scored candidate not yet rejected for this partition *)
            let best = ref None in
            Hashtbl.iter
              (fun d s ->
                if (not (Hashtbl.mem assigned d)) && not (Ihs.mem rejected d) then
                  match !best with
                  | Some (_, s') when s' >= s -> ()
                  | _ -> best := Some (d, s))
              score;
            match !best with
            | None -> ()
            | Some (d, _) ->
              if admits d then begin
                assign d;
                Hashtbl.remove score d;
                update_frontier d;
                grow ()
              end
              else begin
                incr failures;
                Ihs.add rejected d;
                grow ()
              end
          end
        in
        grow ()
      end)
    docs;
  Partitioning.make c ~part_of_doc ~n:!n_parts
