(** The baseline HOPI is measured against (Section 7.2): the materialised
    reflexive-transitive closure stored as an index-organized table with a
    forward and a backward index — four integers per connection, exactly the
    paper's accounting of 1,379,969,480 integers for the DBLP closure.

    Queries are single index probes (faster than the cover's
    merge-intersection); the price is the quadratic-ish space. *)

type t

val create : Pager.t -> t
(** The pager must be fresh: page 0 is reserved for the {!Catalog}. *)

val pager : t -> Pager.t

val save : t -> unit
(** Write the catalog and {!Pager.commit} (atomic, like
    {!Cover_store.save}). *)

val open_pager : Pager.t -> t
(** Re-attach to a store saved earlier.
    @raise Storage_error.Storage_error on a bad catalog. *)

val load : t -> Hopi_graph.Closure.t -> unit
(** Bulk-insert every connection (and its backward-index row) of a
    computed closure. *)

val connected : t -> int -> int -> bool
(** One forward-index probe.  Reflexive for any node the closure saw. *)

val descendants : t -> int -> Hopi_util.Int_hashset.t
(** Forward-index range scan; includes the node itself. *)

val ancestors : t -> int -> Hopi_util.Int_hashset.t
(** Backward-index range scan; includes the node itself. *)

val n_connections : t -> int

val stored_integers : t -> int
(** 4 per connection (row + backward index). *)
