let size = 4096

type t = Bytes.t

let create () = Bytes.make size '\000'

let get_u8 = Bytes.get_uint8

let set_u8 = Bytes.set_uint8

let get_u16 = Bytes.get_uint16_le

let set_u16 = Bytes.set_uint16_le

let get_i32 p off = Int32.to_int (Bytes.get_int32_le p off)

let set_i32 p off v =
  if v > Int32.to_int Int32.max_int || v < Int32.to_int Int32.min_int then
    invalid_arg (Printf.sprintf "Page.set_i32: %d out of 32-bit range" v);
  Bytes.set_int32_le p off (Int32.of_int v)
