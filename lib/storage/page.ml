module Crc32 = Hopi_util.Crc32

let size = 4096

let header_bytes = 8

let payload_off = header_bytes

type t = Bytes.t

let create () = Bytes.make size '\000'

let get_u8 = Bytes.get_uint8

let set_u8 = Bytes.set_uint8

let get_u16 = Bytes.get_uint16_le

let set_u16 = Bytes.set_uint16_le

let get_i32 p off = Int32.to_int (Bytes.get_int32_le p off)

let set_i32 p off v =
  if v > Int32.to_int Int32.max_int || v < Int32.to_int Int32.min_int then
    invalid_arg (Printf.sprintf "Page.set_i32: %d out of 32-bit range" v);
  Bytes.set_int32_le p off (Int32.of_int v)

(* {1 Checksum header: [0..3] payload CRC-32, [4] written flag, [5..7]
   reserved} *)

let checksum p = Crc32.digest p ~pos:payload_off ~len:(size - payload_off)

let stamp p =
  Bytes.set_int32_le p 0 (checksum p);
  set_u8 p 4 1

let all_zero p =
  let rec go i = i >= size || (Bytes.unsafe_get p i = '\000' && go (i + 1)) in
  go 0

let verify p =
  match get_u8 p 4 with
  | 1 -> if Bytes.get_int32_le p 0 = checksum p then `Ok else `Corrupt
  | 0 -> if all_zero p then `Fresh else `Corrupt
  | _ -> `Corrupt
