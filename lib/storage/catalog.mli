(** The catalog page: page 0 of a persistent index file records the magic
    number, the format version, the distance flag and the root/length of
    every B+-tree, so that a {!Cover_store} can be reopened from disk. *)

type entry = { root : int; length : int }

type t = {
  with_dist : bool;
  trees : entry array;  (** fixed order, see {!Cover_store} *)
}

val magic : int

val n_trees : int
(** = 5: lin.fwd, lin.bwd, lout.fwd, lout.bwd, nodes. *)

val write : Pager.t -> t -> unit
(** Writes page 0 (which must already be allocated). *)

val read : Pager.t -> t
(** @raise Failure on a bad magic number or version. *)
