(** The catalog page: page 0 of a persistent index file records the magic
    number, the format version, the store kind, the distance flag and the
    root/length of every B+-tree, so that a {!Cover_store} or a
    {!Closure_store} can be reopened from disk. *)

type kind =
  | Cover  (** LIN/LOUT tables + node registry: {!cover_trees} trees *)
  | Closure  (** materialised closure table: {!closure_trees} trees *)

type entry = { root : int; length : int }

type t = {
  kind : kind;
  with_dist : bool;
  trees : entry array;  (** fixed order per kind, see the stores *)
}

val magic : int

val version : int

val cover_trees : int
(** = 5: lin.fwd, lin.bwd, lout.fwd, lout.bwd, nodes. *)

val closure_trees : int
(** = 2: fwd, bwd. *)

val write : Pager.t -> t -> unit
(** Writes page 0 (which must already be allocated). *)

val read : Pager.t -> t
(** @raise Storage_error.Storage_error — [Truncated] when the store has no
    page 0, [Bad_magic] / [Bad_version] / [Bad_catalog] on a page that is
    not a valid catalog. *)

val expect : kind -> t -> unit
(** @raise Storage_error.Storage_error [(Bad_catalog _)] when the catalog
    holds a different store kind or tree arity. *)
