(** Virtual file system under the {!Pager}.

    Everything the storage engine does to stable storage goes through one
    of these records of operations, so tests can substitute a
    fault-injecting implementation (torn writes, dropped un-fsynced data,
    crash-at-every-step — see [test/fault_vfs.ml]) without touching the
    engine.  Two implementations ship here: {!real} over [Unix] file
    descriptors, and {!memory}, a private in-process file system used by
    the [Memory] pager backend (and as the substrate of crash tests).

    All operations raise {!Storage_error.Storage_error} on failure. *)

type file = {
  read : Bytes.t -> off:int -> pos:int -> len:int -> int;
      (** [read buf ~off ~pos ~len] reads up to [len] bytes from file
          offset [off] into [buf] at [pos]; returns the number of bytes
          read, [0] at end-of-file.  May return short counts — use
          {!read_full} to loop. *)
  write : Bytes.t -> off:int -> pos:int -> len:int -> unit;
      (** Write exactly [len] bytes from [buf.[pos]] at file offset [off],
          extending the file if needed. *)
  sync : unit -> unit;  (** Make all written data durable (fsync). *)
  truncate : int -> unit;
  size : unit -> int;
  close : unit -> unit;
}

type t = {
  open_file : string -> create:bool -> file;
      (** [create:true] creates-or-truncates; [create:false] raises
          [File_not_found] when the path does not exist. *)
  exists : string -> bool;
  remove : string -> unit;
  list_dir : string -> string list;
      (** Names (without the directory prefix) of the files in a
          directory, sorted; an unreadable or missing directory lists as
          empty.  Used by {!Spill.cleanup_dir} to find orphaned temp
          files after a crash. *)
}

val real : t
(** The operating system's file system. *)

val memory : unit -> t
(** A fresh private in-memory file system; files persist across
    [open_file]/[close] for the lifetime of this value. *)

val read_full : file -> Bytes.t -> off:int -> pos:int -> len:int -> int
(** Loop {!field-file.read} until [len] bytes or end-of-file; returns the
    number of bytes actually read. *)
