module Counter = Hopi_obs.Counter
module Registry = Hopi_obs.Registry

let log = Logs.Src.create "hopi.storage.pager" ~doc:"Buffer-managed page store"

module Log = (val Logs.src_log log : Logs.LOG)

(* Process-wide counters across all pager instances; the per-instance
   [stats] record below stays the source of truth for a single store. *)

let m_page_reads =
  Registry.counter "hopi_storage_page_reads_total"
    ~help:"Pages read from the backing store"

let m_page_writes =
  Registry.counter "hopi_storage_page_writes_total"
    ~help:"Pages written back to the backing store"

let m_cache_hits =
  Registry.counter "hopi_storage_cache_hits_total"
    ~help:"Buffer-pool cache hits"

let m_cache_misses =
  Registry.counter "hopi_storage_cache_misses_total"
    ~help:"Buffer-pool cache misses"

let m_evictions =
  Registry.counter "hopi_storage_evictions_total"
    ~help:"Buffer-pool evictions"

let m_pages_allocated =
  Registry.counter "hopi_storage_pages_allocated_total"
    ~help:"Pages allocated (including recycled free-list pages)"

type backend = Memory | File of string

type slot = {
  page : Page.t;
  mutable dirty : bool;
  mutable stamp : int;
  mutable pins : int;
}

type t = {
  pool_pages : int;
  cache : (int, slot) Hashtbl.t;
  (* Memory backend stores evicted pages here; File backend writes them to fd *)
  store : (int, Page.t) Hashtbl.t;
  fd : Unix.file_descr option;
  mutable next_page : int;
  mutable free_list : int list;
  mutable clock : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
}

let create ?(pool_pages = 256) backend =
  let fd =
    match backend with
    | Memory -> None
    | File path ->
      Some (Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o600)
  in
  {
    pool_pages = max pool_pages 8;
    cache = Hashtbl.create 64;
    store = Hashtbl.create 64;
    fd;
    next_page = 0;
    free_list = [];
    clock = 0;
    cache_hits = 0;
    cache_misses = 0;
    evictions = 0;
    disk_reads = 0;
    disk_writes = 0;
  }

let open_existing ?(pool_pages = 256) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let size = (Unix.fstat fd).Unix.st_size in
  {
    pool_pages = max pool_pages 8;
    cache = Hashtbl.create 64;
    store = Hashtbl.create 64;
    fd = Some fd;
    next_page = (size + Page.size - 1) / Page.size;
    free_list = [];
    clock = 0;
    cache_hits = 0;
    cache_misses = 0;
    evictions = 0;
    disk_reads = 0;
    disk_writes = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let write_back t id page =
  t.disk_writes <- t.disk_writes + 1;
  Counter.incr m_page_writes;
  match t.fd with
  | None -> Hashtbl.replace t.store id (Bytes.copy page)
  | Some fd ->
    ignore (Unix.lseek fd (id * Page.size) Unix.SEEK_SET);
    let n = Unix.write fd page 0 Page.size in
    assert (n = Page.size)

let read_from_store t id =
  t.disk_reads <- t.disk_reads + 1;
  Counter.incr m_page_reads;
  match t.fd with
  | None -> (
    match Hashtbl.find_opt t.store id with
    | Some p -> Bytes.copy p
    | None -> Page.create ())
  | Some fd ->
    let page = Page.create () in
    ignore (Unix.lseek fd (id * Page.size) Unix.SEEK_SET);
    let rec fill off =
      if off < Page.size then begin
        let n = Unix.read fd page off (Page.size - off) in
        if n = 0 then () (* sparse page never written: zeros *)
        else fill (off + n)
      end
    in
    fill 0;
    page

let evict_one t =
  (* LRU by stamp, skipping pinned slots; if everything is pinned the pool
     temporarily grows instead of evicting *)
  let victim = ref None in
  Hashtbl.iter
    (fun id slot ->
      if slot.pins = 0 then
        match !victim with
        | Some (_, s) when s.stamp <= slot.stamp -> ()
        | _ -> victim := Some (id, slot))
    t.cache;
  match !victim with
  | None -> ()
  | Some (id, slot) ->
    if slot.dirty then write_back t id slot.page;
    Hashtbl.remove t.cache id;
    t.evictions <- t.evictions + 1;
    Counter.incr m_evictions

let cache_insert t id page =
  if Hashtbl.length t.cache >= t.pool_pages then evict_one t;
  let slot = { page; dirty = false; stamp = tick t; pins = 0 } in
  Hashtbl.replace t.cache id slot;
  slot

let alloc t =
  Counter.incr m_pages_allocated;
  match t.free_list with
  | id :: rest ->
    t.free_list <- rest;
    (* recycle: present a zeroed page *)
    (match Hashtbl.find_opt t.cache id with
     | Some slot ->
       Bytes.fill slot.page 0 (Bytes.length slot.page) '\000';
       slot.dirty <- true;
       slot.stamp <- tick t
     | None ->
       let slot = cache_insert t id (Page.create ()) in
       slot.dirty <- true);
    id
  | [] ->
    let id = t.next_page in
    t.next_page <- t.next_page + 1;
    let slot = cache_insert t id (Page.create ()) in
    slot.dirty <- true;
    id

let free t id =
  if id < 0 || id >= t.next_page then invalid_arg "Pager.free: bad page id";
  t.free_list <- id :: t.free_list

let n_pages t = t.next_page

let slot_of t id =
  if id < 0 || id >= t.next_page then
    invalid_arg (Printf.sprintf "Pager.read: page %d out of [0,%d)" id t.next_page);
  match Hashtbl.find_opt t.cache id with
  | Some slot ->
    t.cache_hits <- t.cache_hits + 1;
    Counter.incr m_cache_hits;
    slot.stamp <- tick t;
    slot
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    Counter.incr m_cache_misses;
    let page = read_from_store t id in
    cache_insert t id page

let read t id = (slot_of t id).page

let pin t id =
  let slot = slot_of t id in
  slot.pins <- slot.pins + 1;
  slot.page

let unpin t id =
  match Hashtbl.find_opt t.cache id with
  | Some slot when slot.pins > 0 -> slot.pins <- slot.pins - 1
  | Some _ -> invalid_arg "Pager.unpin: page not pinned"
  | None -> invalid_arg "Pager.unpin: page not resident"

let mark_dirty t id =
  match Hashtbl.find_opt t.cache id with
  | Some slot -> slot.dirty <- true
  | None -> invalid_arg "Pager.mark_dirty: page not resident"

let flush t =
  Hashtbl.iter
    (fun id slot ->
      if slot.dirty then begin
        write_back t id slot.page;
        slot.dirty <- false
      end)
    t.cache

type stats = {
  pages : int;
  free_pages : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  disk_reads : int;
  disk_writes : int;
}

let stats t =
  {
    pages = t.next_page;
    free_pages = List.length t.free_list;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    evictions = t.evictions;
    disk_reads = t.disk_reads;
    disk_writes = t.disk_writes;
  }

let close t =
  flush t;
  Log.info (fun m ->
      m "pager closed: %d pages, %d hits / %d misses, %d evictions" t.next_page
        t.cache_hits t.cache_misses t.evictions);
  match t.fd with
  | Some fd -> Unix.close fd
  | None -> ()

let size_bytes t = t.next_page * Page.size
