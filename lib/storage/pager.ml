module Counter = Hopi_obs.Counter
module Registry = Hopi_obs.Registry

let log = Logs.Src.create "hopi.storage.pager" ~doc:"Buffer-managed page store"

module Log = (val Logs.src_log log : Logs.LOG)

(* Process-wide counters across all pager instances; the per-instance
   [stats] record below stays the source of truth for a single store. *)

let m_page_reads =
  Registry.counter "hopi_storage_page_reads_total"
    ~help:"Pages read from the backing store"

let m_page_writes =
  Registry.counter "hopi_storage_page_writes_total"
    ~help:"Pages written back to the backing store"

let m_cache_hits =
  Registry.counter "hopi_storage_cache_hits_total"
    ~help:"Buffer-pool cache hits"

let m_cache_misses =
  Registry.counter "hopi_storage_cache_misses_total"
    ~help:"Buffer-pool cache misses"

let m_evictions =
  Registry.counter "hopi_storage_evictions_total"
    ~help:"Buffer-pool evictions"

let m_pages_allocated =
  Registry.counter "hopi_storage_pages_allocated_total"
    ~help:"Pages allocated (including recycled free-list pages)"

let m_checksum_failures =
  Registry.counter "hopi_storage_checksum_failures_total"
    ~help:"Pages rejected because their CRC-32 header failed verification"

let m_journal_replays =
  Registry.counter "hopi_storage_journal_replays_total"
    ~help:"Hot rollback journals replayed on open (crash recoveries)"

let m_journal_pages =
  Registry.counter "hopi_storage_journal_pages_total"
    ~help:"Original page images written to rollback journals"

let m_fsyncs =
  Registry.counter "hopi_storage_fsyncs_total"
    ~help:"Sync points issued (journal, store and recovery fsyncs)"

let m_commits =
  Registry.counter "hopi_storage_commits_total"
    ~help:"Atomic commits (checkpointed saves)"

type backend = Memory | File of string

type slot = {
  page : Page.t;
  mutable dirty : bool;
  mutable stamp : int;
  mutable pins : int;
}

type t = {
  pool_pages : int;
  cache : (int, slot) Hashtbl.t;
  vfs : Vfs.t;
  file : Vfs.file;
  journal_path : string;
  do_fsync : bool;
  mutable journal : Vfs.file option;
  mutable journal_off : int;
  mutable journal_unsynced : bool;
  journaled : (int, unit) Hashtbl.t;  (* page ids already journaled this txn *)
  mutable committed_pages : int;  (* store size at the last commit *)
  mutable next_page : int;
  mutable free_list : int list;
  mutable clock : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable fsyncs : int;
  mutable journaled_pages : int;
}

let journal_path_of path = path ^ "-journal"

let mk ~pool_pages ~fsync ~vfs ~file ~path ~next_page =
  {
    pool_pages = max pool_pages 8;
    cache = Hashtbl.create 64;
    vfs;
    file;
    journal_path = journal_path_of path;
    do_fsync = fsync;
    journal = None;
    journal_off = 0;
    journal_unsynced = false;
    journaled = Hashtbl.create 16;
    committed_pages = next_page;
    next_page;
    free_list = [];
    clock = 0;
    cache_hits = 0;
    cache_misses = 0;
    evictions = 0;
    disk_reads = 0;
    disk_writes = 0;
    fsyncs = 0;
    journaled_pages = 0;
  }

let create_vfs ?(pool_pages = 256) ?(fsync = true) ~vfs path =
  (* a stale journal belongs to the store being truncated away — it must
     never be replayed over the new one *)
  if vfs.Vfs.exists (journal_path_of path) then vfs.Vfs.remove (journal_path_of path);
  let file = vfs.Vfs.open_file path ~create:true in
  mk ~pool_pages ~fsync ~vfs ~file ~path ~next_page:0

let create ?pool_pages ?fsync backend =
  match backend with
  | Memory -> create_vfs ?pool_pages ?fsync ~vfs:(Vfs.memory ()) "mem.db"
  | File path -> create_vfs ?pool_pages ?fsync ~vfs:Vfs.real path

let open_vfs ?(pool_pages = 256) ?(fsync = true) ~vfs path =
  (match
     Journal.rollback ~vfs ~path ~journal_path:(journal_path_of path) ~fsync
   with
  | `No_journal -> ()
  | `Discarded ->
    Log.info (fun m -> m "%s: discarded an empty hot journal" path)
  | `Rolled_back n ->
    Counter.incr m_journal_replays;
    if fsync then Counter.incr m_fsyncs;
    Log.info (fun m -> m "%s: rolled back %d page(s) from a hot journal" path n));
  let file = vfs.Vfs.open_file path ~create:false in
  let size = file.Vfs.size () in
  if size mod Page.size <> 0 then begin
    file.Vfs.close ();
    Storage_error.raise_error
      (Truncated (Printf.sprintf "%s: %d bytes is not a whole number of pages" path size))
  end;
  mk ~pool_pages ~fsync ~vfs ~file ~path ~next_page:(size / Page.size)

let open_existing ?pool_pages ?fsync path = open_vfs ?pool_pages ?fsync ~vfs:Vfs.real path

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* {1 Journal discipline}

   Invariant: before any write reaches the main file, a journal with a
   durable header exists (so recovery can truncate newly appended pages),
   and the original image of any committed page being overwritten is a
   durable journal record. *)

let sync_journal t j =
  if t.journal_unsynced then begin
    if t.do_fsync then begin
      j.Vfs.sync ();
      t.fsyncs <- t.fsyncs + 1;
      Counter.incr m_fsyncs
    end;
    t.journal_unsynced <- false
  end

let ensure_journal t =
  match t.journal with
  | Some j -> j
  | None ->
    let j = t.vfs.Vfs.open_file t.journal_path ~create:true in
    Journal.create j ~n_pages:t.committed_pages;
    t.journal_off <- Journal.header_size;
    t.journal_unsynced <- true;
    t.journal <- Some j;
    j

let journal_page t id =
  if id < t.committed_pages && not (Hashtbl.mem t.journaled id) then begin
    let j = ensure_journal t in
    (* the on-disk image is still the committed original, because pages are
       journaled before their first overwrite *)
    let orig = Page.create () in
    ignore (Vfs.read_full t.file orig ~off:(id * Page.size) ~pos:0 ~len:Page.size);
    Journal.append j ~off:t.journal_off ~page_id:id orig;
    t.journal_off <- t.journal_off + Journal.record_size;
    t.journal_unsynced <- true;
    t.journaled_pages <- t.journaled_pages + 1;
    Counter.incr m_journal_pages;
    Hashtbl.replace t.journaled id ()
  end

(* Write one page to the main file, checksum stamped.  Assumes the journal
   discipline for [id] has already been honoured. *)
let write_main t id page =
  t.disk_writes <- t.disk_writes + 1;
  Counter.incr m_page_writes;
  Page.stamp page;
  t.file.Vfs.write page ~off:(id * Page.size) ~pos:0 ~len:Page.size

let write_back t id page =
  journal_page t id;
  let j = ensure_journal t in
  sync_journal t j;
  write_main t id page

let read_from_store t id =
  t.disk_reads <- t.disk_reads + 1;
  Counter.incr m_page_reads;
  (* per-request attribution: the serving layer snapshots this domain's
     cell around each query (see Hopi_obs.Reqtrace) *)
  Hopi_obs.Reqtrace.Local.note_pager_read ();
  let page = Page.create () in
  ignore (Vfs.read_full t.file page ~off:(id * Page.size) ~pos:0 ~len:Page.size);
  (match Page.verify page with
  | `Ok | `Fresh -> ()
  | `Corrupt ->
    Counter.incr m_checksum_failures;
    Storage_error.raise_error (Checksum { page = id }));
  page

let evict_one t =
  (* LRU by stamp, skipping pinned slots; if everything is pinned the pool
     temporarily grows instead of evicting *)
  let victim = ref None in
  Hashtbl.iter
    (fun id slot ->
      if slot.pins = 0 then
        match !victim with
        | Some (_, s) when s.stamp <= slot.stamp -> ()
        | _ -> victim := Some (id, slot))
    t.cache;
  match !victim with
  | None -> ()
  | Some (id, slot) ->
    if slot.dirty then write_back t id slot.page;
    Hashtbl.remove t.cache id;
    t.evictions <- t.evictions + 1;
    Counter.incr m_evictions

let cache_insert t id page =
  if Hashtbl.length t.cache >= t.pool_pages then evict_one t;
  let slot = { page; dirty = false; stamp = tick t; pins = 0 } in
  Hashtbl.replace t.cache id slot;
  slot

let alloc t =
  Counter.incr m_pages_allocated;
  match t.free_list with
  | id :: rest ->
    t.free_list <- rest;
    (* recycle: present a zeroed page *)
    (match Hashtbl.find_opt t.cache id with
     | Some slot ->
       Bytes.fill slot.page 0 (Bytes.length slot.page) '\000';
       slot.dirty <- true;
       slot.stamp <- tick t
     | None ->
       let slot = cache_insert t id (Page.create ()) in
       slot.dirty <- true);
    id
  | [] ->
    let id = t.next_page in
    t.next_page <- t.next_page + 1;
    let slot = cache_insert t id (Page.create ()) in
    slot.dirty <- true;
    id

let free t id =
  if id < 0 || id >= t.next_page then invalid_arg "Pager.free: bad page id";
  t.free_list <- id :: t.free_list

let n_pages t = t.next_page

let slot_of t id =
  if id < 0 || id >= t.next_page then
    invalid_arg (Printf.sprintf "Pager.read: page %d out of [0,%d)" id t.next_page);
  match Hashtbl.find_opt t.cache id with
  | Some slot ->
    t.cache_hits <- t.cache_hits + 1;
    Counter.incr m_cache_hits;
    slot.stamp <- tick t;
    slot
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    Counter.incr m_cache_misses;
    let page = read_from_store t id in
    cache_insert t id page

let read t id = (slot_of t id).page

let pin t id =
  let slot = slot_of t id in
  slot.pins <- slot.pins + 1;
  slot.page

let unpin t id =
  match Hashtbl.find_opt t.cache id with
  | Some slot when slot.pins > 0 -> slot.pins <- slot.pins - 1
  | Some _ -> invalid_arg "Pager.unpin: page not pinned"
  | None -> invalid_arg "Pager.unpin: page not resident"

let mark_dirty t id =
  match Hashtbl.find_opt t.cache id with
  | Some slot -> slot.dirty <- true
  | None -> invalid_arg "Pager.mark_dirty: page not resident"

let dirty_slots t =
  Hashtbl.fold (fun id slot acc -> if slot.dirty then (id, slot) :: acc else acc)
    t.cache []

let flush t =
  List.iter
    (fun (id, slot) ->
      write_back t id slot.page;
      slot.dirty <- false)
    (dirty_slots t)

let sync_main t =
  if t.do_fsync then begin
    t.file.Vfs.sync ();
    t.fsyncs <- t.fsyncs + 1;
    Counter.incr m_fsyncs
  end

let commit t =
  let dirty = dirty_slots t in
  if dirty <> [] || t.journal <> None then begin
    (* 1. journal the originals of every committed page about to change,
       then make the whole journal durable with one sync *)
    List.iter (fun (id, _) -> journal_page t id) dirty;
    if dirty <> [] then begin
      let j = ensure_journal t in
      sync_journal t j
    end;
    (* 2. write the new state *)
    List.iter
      (fun (id, slot) ->
        write_main t id slot.page;
        slot.dirty <- false)
      dirty;
    (* 3. make it durable *)
    sync_main t;
    (* 4. commit point: drop the journal *)
    (match t.journal with
    | Some j ->
      j.Vfs.close ();
      t.journal <- None
    | None -> ());
    if t.vfs.Vfs.exists t.journal_path then t.vfs.Vfs.remove t.journal_path;
    Hashtbl.reset t.journaled;
    t.journal_unsynced <- false;
    t.committed_pages <- t.next_page;
    Counter.incr m_commits
  end

let verify_pages t =
  let bad = ref [] in
  let page = Page.create () in
  for id = t.next_page - 1 downto 0 do
    Bytes.fill page 0 Page.size '\000';
    ignore (Vfs.read_full t.file page ~off:(id * Page.size) ~pos:0 ~len:Page.size);
    match Page.verify page with
    | `Ok | `Fresh -> ()
    | `Corrupt -> bad := id :: !bad
  done;
  !bad

type stats = {
  pages : int;
  free_pages : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  disk_reads : int;
  disk_writes : int;
  fsyncs : int;
  journaled_pages : int;
}

let stats t =
  {
    pages = t.next_page;
    free_pages = List.length t.free_list;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    evictions = t.evictions;
    disk_reads = t.disk_reads;
    disk_writes = t.disk_writes;
    fsyncs = t.fsyncs;
    journaled_pages = t.journaled_pages;
  }

let close t =
  commit t;
  Log.info (fun m ->
      m "pager closed: %d pages, %d hits / %d misses, %d evictions, %d fsyncs"
        t.next_page t.cache_hits t.cache_misses t.evictions t.fsyncs);
  t.file.Vfs.close ()

let size_bytes t = t.next_page * Page.size
