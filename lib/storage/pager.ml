module Counter = Hopi_obs.Counter
module Gauge = Hopi_obs.Gauge
module Registry = Hopi_obs.Registry

let log = Logs.Src.create "hopi.storage.pager" ~doc:"Buffer-managed page store"

module Log = (val Logs.src_log log : Logs.LOG)

(* Process-wide counters across all pager instances; the per-instance
   [stats] record below stays the source of truth for a single store. *)

let m_page_reads =
  Registry.counter "hopi_storage_page_reads_total"
    ~help:"Pages read from the backing store"

let m_page_writes =
  Registry.counter "hopi_storage_page_writes_total"
    ~help:"Pages written back to the backing store"

let m_cache_hits =
  Registry.counter "hopi_storage_cache_hits_total"
    ~help:"Buffer-pool cache hits"

let m_cache_misses =
  Registry.counter "hopi_storage_cache_misses_total"
    ~help:"Buffer-pool cache misses"

let m_evictions =
  Registry.counter "hopi_storage_evictions_total"
    ~help:"Buffer-pool evictions"

let m_pages_allocated =
  Registry.counter "hopi_storage_pages_allocated_total"
    ~help:"Pages allocated (including recycled free-list pages)"

let m_checksum_failures =
  Registry.counter "hopi_storage_checksum_failures_total"
    ~help:"Pages rejected because their CRC-32 header failed verification"

let m_journal_replays =
  Registry.counter "hopi_storage_journal_replays_total"
    ~help:"Hot rollback journals replayed on open (crash recoveries)"

let m_journal_pages =
  Registry.counter "hopi_storage_journal_pages_total"
    ~help:"Original page images written to rollback journals"

let m_fsyncs =
  Registry.counter "hopi_storage_fsyncs_total"
    ~help:"Sync points issued (journal, store and recovery fsyncs)"

let m_commits =
  Registry.counter "hopi_storage_commits_total"
    ~help:"Atomic commits (checkpointed saves)"

(* Shared read-pool counters are deliberately separate from the private
   buffer-pool counters above: the private series is what builders and
   writers do, the shared series is what the serving read path does, and
   attributing one to the other is exactly the confusion the shared pool
   exists to remove. *)

let m_shared_hits =
  Registry.counter "hopi_storage_shared_pool_hits_total"
    ~help:"Shared read-pool hits (serving snapshots, all domains)"

let m_shared_misses =
  Registry.counter "hopi_storage_shared_pool_misses_total"
    ~help:"Shared read-pool misses (each one is a page read off the store)"

let m_shared_evictions =
  Registry.counter "hopi_storage_shared_pool_evictions_total"
    ~help:"Pages evicted from shared read pools to stay within budget"

let g_shared_pages =
  Registry.gauge "hopi_storage_shared_pool_pages"
    ~help:"Pages resident across all shared read pools"

type backend = Memory | File of string

(* {1 Shared read-only page pool}

   A sharded-lock LRU over verified page images, shared by every domain
   (and every snapshot generation) serving reads from immutable store
   files.  Entries are immutable [Page.t] buffers: eviction merely drops
   the table reference, so a reader holding a page across an eviction
   keeps a valid image — there is no write-back and no mutation, which is
   what makes lock-free page *use* safe under a locked page *lookup*.

   Keys pack (tag, page id); a tag is allocated per attached pager, so
   several files — or several generations of the same file — share one
   pool without colliding, and closing a pager drops exactly its pages. *)

module Read_pool = struct
  type entry = {
    key : int;
    page : Page.t;
    mutable prev : entry option; (* towards MRU *)
    mutable next : entry option; (* towards LRU *)
  }

  type shard = {
    mu : Mutex.t;
    tbl : (int, entry) Hashtbl.t;
    mutable mru : entry option;
    mutable lru : entry option;
    mutable resident : int;
    cap : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  type t = {
    shards : shard array;
    mask : int;
    tag_mu : Mutex.t;
    mutable next_tag : int;
  }

  type stats = {
    capacity : int;
    resident : int;
    hits : int;
    misses : int;
    evictions : int;
  }

  let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

  let create ?(shards = 16) ~pages () =
    let n = next_pow2 (max 1 shards) 1 in
    (* per-shard budget, floored at one page so every shard can hold the
       page it is asked for; tiny pools (tests) are honoured as given *)
    let cap = max 1 (pages / n) in
    {
      shards =
        Array.init n (fun _ ->
            { mu = Mutex.create (); tbl = Hashtbl.create 64; mru = None;
              lru = None; resident = 0; cap; hits = 0; misses = 0;
              evictions = 0 });
      mask = n - 1;
      tag_mu = Mutex.create ();
      next_tag = 0;
    }

  let fresh_tag t =
    Mutex.lock t.tag_mu;
    let g = t.next_tag in
    t.next_tag <- g + 1;
    Mutex.unlock t.tag_mu;
    g

  (* page ids are i32 in every tree, so 32 bits of id is generous *)
  let key_of ~tag id = (tag lsl 32) lor id

  let tag_of key = key lsr 32

  (* splitmix finaliser so consecutive page ids spread across shards *)
  let mix k =
    let h = k lxor (k lsr 31) in
    let h = h * 0x2545F4914F6CDD1D in
    h lxor (h lsr 29)

  let shard_of t key = t.shards.(mix key land t.mask)

  let with_shard s f =
    Mutex.lock s.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

  (* list surgery — caller holds the shard mutex *)

  let unlink s e =
    (match e.prev with Some p -> p.next <- e.next | None -> s.mru <- e.next);
    (match e.next with Some n -> n.prev <- e.prev | None -> s.lru <- e.prev);
    e.prev <- None;
    e.next <- None

  let push_front s e =
    e.prev <- None;
    e.next <- s.mru;
    (match s.mru with Some m -> m.prev <- Some e | None -> s.lru <- Some e);
    s.mru <- Some e

  let drop s e =
    unlink s e;
    Hashtbl.remove s.tbl e.key;
    s.resident <- s.resident - 1;
    Gauge.decr g_shared_pages

  let find t key =
    let s = shard_of t key in
    with_shard s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some e ->
          s.hits <- s.hits + 1;
          Counter.incr m_shared_hits;
          unlink s e;
          push_front s e;
          Some e.page
        | None ->
          s.misses <- s.misses + 1;
          Counter.incr m_shared_misses;
          None)

  (* like [find] but without metrics or promotion: the re-check under the
     attached pager's I/O lock after a raced miss *)
  let peek t key =
    let s = shard_of t key in
    with_shard s (fun () ->
        Option.map (fun e -> e.page) (Hashtbl.find_opt s.tbl key))

  let add t key page =
    let s = shard_of t key in
    with_shard s (fun () ->
        if not (Hashtbl.mem s.tbl key) then begin
          let e = { key; page; prev = None; next = None } in
          Hashtbl.add s.tbl key e;
          push_front s e;
          s.resident <- s.resident + 1;
          Gauge.incr g_shared_pages;
          while s.resident > s.cap do
            match s.lru with
            | None -> s.resident <- s.cap (* unreachable *)
            | Some victim ->
              drop s victim;
              s.evictions <- s.evictions + 1;
              Counter.incr m_shared_evictions
          done
        end)

  (* reclaim every page a closing pager cached *)
  let drop_tag t tag =
    Array.iter
      (fun s ->
        with_shard s (fun () ->
            let mine =
              Hashtbl.fold
                (fun key e acc -> if tag_of key = tag then e :: acc else acc)
                s.tbl []
            in
            List.iter (drop s) mine))
      t.shards

  let stats t =
    Array.fold_left
      (fun acc s ->
        with_shard s (fun () ->
            {
              capacity = acc.capacity + s.cap;
              resident = acc.resident + s.resident;
              hits = acc.hits + s.hits;
              misses = acc.misses + s.misses;
              evictions = acc.evictions + s.evictions;
            }))
      { capacity = 0; resident = 0; hits = 0; misses = 0; evictions = 0 }
      t.shards
end

type slot = {
  page : Page.t;
  mutable dirty : bool;
  mutable stamp : int;
  mutable pins : int;
}

(* [Shared] pagers are read-only views over an immutable committed file:
   page lookups go to the [Read_pool], misses are read (and CRC-verified)
   under [io_mu] — the one Vfs file handle positions with lseek+read, so
   concurrent miss reads must not interleave on it — and every write-side
   entry point is a programming error. *)
type mode =
  | Private
  | Shared of { pool : Read_pool.t; tag : int; io_mu : Mutex.t }

type t = {
  mode : mode;
  pool_pages : int;
  cache : (int, slot) Hashtbl.t;
  vfs : Vfs.t;
  file : Vfs.file;
  journal_path : string;
  do_fsync : bool;
  mutable journal : Vfs.file option;
  mutable journal_off : int;
  mutable journal_unsynced : bool;
  journaled : (int, unit) Hashtbl.t;  (* page ids already journaled this txn *)
  mutable committed_pages : int;  (* store size at the last commit *)
  mutable next_page : int;
  mutable free_list : int list;
  mutable clock : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable evictions : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable fsyncs : int;
  mutable journaled_pages : int;
}

let journal_path_of path = path ^ "-journal"

let mk ?(mode = Private) ~pool_pages ~fsync ~vfs ~file ~path ~next_page () =
  {
    mode;
    pool_pages = max pool_pages 8;
    cache = Hashtbl.create 64;
    vfs;
    file;
    journal_path = journal_path_of path;
    do_fsync = fsync;
    journal = None;
    journal_off = 0;
    journal_unsynced = false;
    journaled = Hashtbl.create 16;
    committed_pages = next_page;
    next_page;
    free_list = [];
    clock = 0;
    cache_hits = 0;
    cache_misses = 0;
    evictions = 0;
    disk_reads = 0;
    disk_writes = 0;
    fsyncs = 0;
    journaled_pages = 0;
  }

let create_vfs ?(pool_pages = 256) ?(fsync = true) ~vfs path =
  (* a stale journal belongs to the store being truncated away — it must
     never be replayed over the new one *)
  if vfs.Vfs.exists (journal_path_of path) then vfs.Vfs.remove (journal_path_of path);
  let file = vfs.Vfs.open_file path ~create:true in
  mk ~pool_pages ~fsync ~vfs ~file ~path ~next_page:0 ()

let create ?pool_pages ?fsync backend =
  match backend with
  | Memory -> create_vfs ?pool_pages ?fsync ~vfs:(Vfs.memory ()) "mem.db"
  | File path -> create_vfs ?pool_pages ?fsync ~vfs:Vfs.real path

let open_mode ?mode ~pool_pages ~fsync ~vfs path =
  (match
     Journal.rollback ~vfs ~path ~journal_path:(journal_path_of path) ~fsync
   with
  | `No_journal -> ()
  | `Discarded ->
    Log.info (fun m -> m "%s: discarded an empty hot journal" path)
  | `Rolled_back n ->
    Counter.incr m_journal_replays;
    if fsync then Counter.incr m_fsyncs;
    Log.info (fun m -> m "%s: rolled back %d page(s) from a hot journal" path n));
  let file = vfs.Vfs.open_file path ~create:false in
  let size = file.Vfs.size () in
  if size mod Page.size <> 0 then begin
    file.Vfs.close ();
    Storage_error.raise_error
      (Truncated (Printf.sprintf "%s: %d bytes is not a whole number of pages" path size))
  end;
  mk ?mode ~pool_pages ~fsync ~vfs ~file ~path ~next_page:(size / Page.size) ()

let open_vfs ?(pool_pages = 256) ?(fsync = true) ~vfs path =
  open_mode ~pool_pages ~fsync ~vfs path

let open_existing ?pool_pages ?fsync path = open_vfs ?pool_pages ?fsync ~vfs:Vfs.real path

let open_shared_vfs ?(fsync = true) ~vfs ~pool path =
  let mode =
    Shared { pool; tag = Read_pool.fresh_tag pool; io_mu = Mutex.create () }
  in
  (* pool_pages is irrelevant in shared mode (the private cache is never
     consulted) but [mk] still wants a sane floor *)
  open_mode ~mode ~pool_pages:8 ~fsync ~vfs path

let open_shared ?fsync ~pool path = open_shared_vfs ?fsync ~vfs:Vfs.real ~pool path

let read_only t = match t.mode with Private -> false | Shared _ -> true

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* {1 Journal discipline}

   Invariant: before any write reaches the main file, a journal with a
   durable header exists (so recovery can truncate newly appended pages),
   and the original image of any committed page being overwritten is a
   durable journal record. *)

let sync_journal t j =
  if t.journal_unsynced then begin
    if t.do_fsync then begin
      j.Vfs.sync ();
      t.fsyncs <- t.fsyncs + 1;
      Counter.incr m_fsyncs
    end;
    t.journal_unsynced <- false
  end

let ensure_journal t =
  match t.journal with
  | Some j -> j
  | None ->
    let j = t.vfs.Vfs.open_file t.journal_path ~create:true in
    Journal.create j ~n_pages:t.committed_pages;
    t.journal_off <- Journal.header_size;
    t.journal_unsynced <- true;
    t.journal <- Some j;
    j

let journal_page t id =
  if id < t.committed_pages && not (Hashtbl.mem t.journaled id) then begin
    let j = ensure_journal t in
    (* the on-disk image is still the committed original, because pages are
       journaled before their first overwrite *)
    let orig = Page.create () in
    ignore (Vfs.read_full t.file orig ~off:(id * Page.size) ~pos:0 ~len:Page.size);
    Journal.append j ~off:t.journal_off ~page_id:id orig;
    t.journal_off <- t.journal_off + Journal.record_size;
    t.journal_unsynced <- true;
    t.journaled_pages <- t.journaled_pages + 1;
    Counter.incr m_journal_pages;
    Hashtbl.replace t.journaled id ()
  end

(* Write one page to the main file, checksum stamped.  Assumes the journal
   discipline for [id] has already been honoured. *)
let write_main t id page =
  t.disk_writes <- t.disk_writes + 1;
  Counter.incr m_page_writes;
  Page.stamp page;
  t.file.Vfs.write page ~off:(id * Page.size) ~pos:0 ~len:Page.size

let write_back t id page =
  journal_page t id;
  let j = ensure_journal t in
  sync_journal t j;
  write_main t id page

let read_from_store t id =
  t.disk_reads <- t.disk_reads + 1;
  Counter.incr m_page_reads;
  (* per-request attribution: the serving layer snapshots this domain's
     cell around each query (see Hopi_obs.Reqtrace) *)
  Hopi_obs.Reqtrace.Local.note_pager_read ();
  let page = Page.create () in
  ignore (Vfs.read_full t.file page ~off:(id * Page.size) ~pos:0 ~len:Page.size);
  (match Page.verify page with
  | `Ok | `Fresh -> ()
  | `Corrupt ->
    Counter.incr m_checksum_failures;
    Storage_error.raise_error (Checksum { page = id }));
  page

let evict_one t =
  (* LRU by stamp, skipping pinned slots; if everything is pinned the pool
     temporarily grows instead of evicting *)
  let victim = ref None in
  Hashtbl.iter
    (fun id slot ->
      if slot.pins = 0 then
        match !victim with
        | Some (_, s) when s.stamp <= slot.stamp -> ()
        | _ -> victim := Some (id, slot))
    t.cache;
  match !victim with
  | None -> ()
  | Some (id, slot) ->
    if slot.dirty then write_back t id slot.page;
    Hashtbl.remove t.cache id;
    t.evictions <- t.evictions + 1;
    Counter.incr m_evictions

let cache_insert t id page =
  if Hashtbl.length t.cache >= t.pool_pages then evict_one t;
  let slot = { page; dirty = false; stamp = tick t; pins = 0 } in
  Hashtbl.replace t.cache id slot;
  slot

let require_private t what =
  match t.mode with
  | Private -> ()
  | Shared _ -> invalid_arg ("Pager." ^ what ^ ": pager is a read-only shared view")

let alloc t =
  require_private t "alloc";
  Counter.incr m_pages_allocated;
  match t.free_list with
  | id :: rest ->
    t.free_list <- rest;
    (* recycle: present a zeroed page *)
    (match Hashtbl.find_opt t.cache id with
     | Some slot ->
       Bytes.fill slot.page 0 (Bytes.length slot.page) '\000';
       slot.dirty <- true;
       slot.stamp <- tick t
     | None ->
       let slot = cache_insert t id (Page.create ()) in
       slot.dirty <- true);
    id
  | [] ->
    let id = t.next_page in
    t.next_page <- t.next_page + 1;
    let slot = cache_insert t id (Page.create ()) in
    slot.dirty <- true;
    id

let free t id =
  require_private t "free";
  if id < 0 || id >= t.next_page then invalid_arg "Pager.free: bad page id";
  t.free_list <- id :: t.free_list

let n_pages t = t.next_page

let slot_of t id =
  if id < 0 || id >= t.next_page then
    invalid_arg (Printf.sprintf "Pager.read: page %d out of [0,%d)" id t.next_page);
  match Hashtbl.find_opt t.cache id with
  | Some slot ->
    t.cache_hits <- t.cache_hits + 1;
    Counter.incr m_cache_hits;
    slot.stamp <- tick t;
    slot
  | None ->
    t.cache_misses <- t.cache_misses + 1;
    Counter.incr m_cache_misses;
    let page = read_from_store t id in
    cache_insert t id page

(* shared mode: probe the pool lock-free of I/O, serialise miss reads on
   [io_mu] (the single Vfs handle is not positionally safe across domains)
   and re-check under it so a raced miss fills exactly once *)
let read_shared t pool tag io_mu id =
  if id < 0 || id >= t.next_page then
    invalid_arg (Printf.sprintf "Pager.read: page %d out of [0,%d)" id t.next_page);
  let key = Read_pool.key_of ~tag id in
  match Read_pool.find pool key with
  | Some page -> page
  | None ->
    Mutex.lock io_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock io_mu) @@ fun () ->
    (match Read_pool.peek pool key with
    | Some page -> page
    | None ->
      let page = read_from_store t id in
      Read_pool.add pool key page;
      page)

let read t id =
  match t.mode with
  | Private -> (slot_of t id).page
  | Shared { pool; tag; io_mu } -> read_shared t pool tag io_mu id

let pin t id =
  match t.mode with
  | Private ->
    let slot = slot_of t id in
    slot.pins <- slot.pins + 1;
    slot.page
  | Shared _ ->
    (* nothing mutates or recycles shared pages, so a pin is just a read *)
    read t id

let unpin t id =
  match t.mode with
  | Shared _ -> ()
  | Private ->
    (match Hashtbl.find_opt t.cache id with
    | Some slot when slot.pins > 0 -> slot.pins <- slot.pins - 1
    | Some _ -> invalid_arg "Pager.unpin: page not pinned"
    | None -> invalid_arg "Pager.unpin: page not resident")

let mark_dirty t id =
  require_private t "mark_dirty";
  match Hashtbl.find_opt t.cache id with
  | Some slot -> slot.dirty <- true
  | None -> invalid_arg "Pager.mark_dirty: page not resident"

let dirty_slots t =
  Hashtbl.fold (fun id slot acc -> if slot.dirty then (id, slot) :: acc else acc)
    t.cache []

let flush t =
  require_private t "flush";
  List.iter
    (fun (id, slot) ->
      write_back t id slot.page;
      slot.dirty <- false)
    (dirty_slots t)

let sync_main t =
  if t.do_fsync then begin
    t.file.Vfs.sync ();
    t.fsyncs <- t.fsyncs + 1;
    Counter.incr m_fsyncs
  end

let commit t =
  require_private t "commit";
  let dirty = dirty_slots t in
  if dirty <> [] || t.journal <> None then begin
    (* 1. journal the originals of every committed page about to change,
       then make the whole journal durable with one sync *)
    List.iter (fun (id, _) -> journal_page t id) dirty;
    if dirty <> [] then begin
      let j = ensure_journal t in
      sync_journal t j
    end;
    (* 2. write the new state *)
    List.iter
      (fun (id, slot) ->
        write_main t id slot.page;
        slot.dirty <- false)
      dirty;
    (* 3. make it durable *)
    sync_main t;
    (* 4. commit point: drop the journal *)
    (match t.journal with
    | Some j ->
      j.Vfs.close ();
      t.journal <- None
    | None -> ());
    if t.vfs.Vfs.exists t.journal_path then t.vfs.Vfs.remove t.journal_path;
    Hashtbl.reset t.journaled;
    t.journal_unsynced <- false;
    t.committed_pages <- t.next_page;
    Counter.incr m_commits
  end

let verify_pages t =
  let scan () =
    let bad = ref [] in
    let page = Page.create () in
    for id = t.next_page - 1 downto 0 do
      Bytes.fill page 0 Page.size '\000';
      ignore (Vfs.read_full t.file page ~off:(id * Page.size) ~pos:0 ~len:Page.size);
      match Page.verify page with
      | `Ok | `Fresh -> ()
      | `Corrupt -> bad := id :: !bad
    done;
    !bad
  in
  match t.mode with
  | Private -> scan ()
  | Shared { io_mu; _ } ->
    (* the raw file scan must not interleave with concurrent miss reads *)
    Mutex.lock io_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock io_mu) scan

type stats = {
  pages : int;
  free_pages : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  disk_reads : int;
  disk_writes : int;
  fsyncs : int;
  journaled_pages : int;
}

let stats t =
  match t.mode with
  | Private ->
    {
      pages = t.next_page;
      free_pages = List.length t.free_list;
      cache_hits = t.cache_hits;
      cache_misses = t.cache_misses;
      evictions = t.evictions;
      disk_reads = t.disk_reads;
      disk_writes = t.disk_writes;
      fsyncs = t.fsyncs;
      journaled_pages = t.journaled_pages;
    }
  | Shared { pool; _ } ->
    (* hit/miss/eviction numbers are pool-wide (the pool is the cache);
       disk_reads is this pager's own, updated under its io_mu *)
    let p = Read_pool.stats pool in
    {
      pages = t.next_page;
      free_pages = 0;
      cache_hits = p.Read_pool.hits;
      cache_misses = p.Read_pool.misses;
      evictions = p.Read_pool.evictions;
      disk_reads = t.disk_reads;
      disk_writes = 0;
      fsyncs = 0;
      journaled_pages = 0;
    }

let close t =
  (match t.mode with
  | Private -> commit t
  | Shared { pool; tag; _ } -> Read_pool.drop_tag pool tag);
  Log.info (fun m ->
      m "pager closed: %d pages, %d hits / %d misses, %d evictions, %d fsyncs"
        t.next_page t.cache_hits t.cache_misses t.evictions t.fsyncs);
  t.file.Vfs.close ()

let size_bytes t = t.next_page * Page.size
