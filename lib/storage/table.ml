type t = { fwd : Btree.t; bwd : Btree.t }

let create pager = { fwd = Btree.create pager; bwd = Btree.create pager }

let of_trees ~fwd ~bwd = { fwd; bwd }

let trees t = (t.fwd, t.bwd)

let insert t ~id ~label ~dist =
  let added = Btree.insert t.fwd (id, label, dist) in
  if added then ignore (Btree.insert t.bwd (label, id, dist));
  added

let delete t ~id ~label ~dist =
  let removed = Btree.delete t.fwd (id, label, dist) in
  if removed then ignore (Btree.delete t.bwd (label, id, dist));
  removed

let delete_all_of_id t id =
  let rows = ref [] in
  Btree.iter_prefix1 t.fwd id (fun k -> rows := k :: !rows);
  List.iter
    (fun (id, label, dist) -> ignore (delete t ~id ~label ~dist))
    !rows;
  List.length !rows

let delete_all_of_label t label =
  let rows = ref [] in
  Btree.iter_prefix1 t.bwd label (fun k -> rows := k :: !rows);
  List.iter
    (fun (label, id, dist) -> ignore (delete t ~id ~label ~dist))
    !rows;
  List.length !rows

let mem t ~id ~label =
  let found = ref false in
  Btree.iter_prefix2 t.fwd id label (fun _ -> found := true);
  !found

let find_dist t ~id ~label =
  let best = ref None in
  Btree.iter_prefix2 t.fwd id label (fun (_, _, d) ->
      match !best with
      | Some b when b <= d -> ()
      | _ -> best := Some d);
  !best

let iter_by_id t id f =
  Btree.iter_prefix1 t.fwd id (fun (_, label, dist) -> f ~label ~dist)

let iter_by_label t label f =
  Btree.iter_prefix1 t.bwd label (fun (_, id, dist) -> f ~id ~dist)

let length t = Btree.length t.fwd
