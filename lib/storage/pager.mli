(** Page manager with a bounded buffer pool and crash-safe storage.

    Pages live in a {!Vfs} file (a real file, or a private in-memory file
    system for the [Memory] backend) with an LRU-evicted write-back cache
    in front.  Durability discipline (see DESIGN.md, Storage durability):

    - every page carries a CRC-32 header ({!Page.stamp}) written at
      write-back and verified on every cache miss — a flipped byte
      anywhere in a persisted page raises [Storage_error (Checksum _)];
    - all writes between two {!commit}s form a transaction protected by a
      rollback {!Journal}: the original image of any committed page is
      journaled and fsynced before the page is first overwritten, so a
      crash at *any* point rolls back to the last committed state;
    - {!commit} is the atomic save: journal, write back, fsync the store,
      then delete the journal (the commit point);
    - opening a store ({!open_existing} / {!open_vfs}) first recovers from
      a hot journal left by a crash.

    [fsync:false] trades power-loss durability for speed: the journal is
    still written (process crashes still recover) but nothing is synced. *)

type backend =
  | Memory  (** pages live in a private in-memory file system *)
  | File of string  (** pages are stored in this file (created/truncated) *)

type t

(** A shared, sharded-lock, read-only page pool for immutable snapshots.

    One pool is probed by every domain (and every generation) serving
    reads from committed store files, so a page any domain faulted in is
    warm for all of them — the fix for the cold-read anti-scaling of
    per-domain private pools (see DESIGN.md, Shared read path).  Entries
    are immutable verified page images: eviction drops the table
    reference only, so readers holding a page across an eviction keep a
    valid image.  Metrics: [hopi_storage_shared_pool_hits_total] /
    [_misses_total] / [_evictions_total] and the
    [hopi_storage_shared_pool_pages] gauge — a series deliberately
    disjoint from the private buffer-pool counters, so serving reads and
    writer/builder traffic attribute separately. *)
module Read_pool : sig
  type t

  type stats = {
    capacity : int;  (** page budget across all shards *)
    resident : int;  (** pages currently held *)
    hits : int;
    misses : int;
    evictions : int;
  }

  val create : ?shards:int -> pages:int -> unit -> t
  (** [shards] (default 16) is rounded up to a power of two; [pages] is
      the total page budget, split evenly across shards (each shard keeps
      at least one page, so tiny budgets round up to one per shard). *)

  val stats : t -> stats
end

type stats = {
  pages : int;  (** pages allocated *)
  free_pages : int;  (** currently on the free list *)
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  disk_reads : int;
  disk_writes : int;
  fsyncs : int;  (** sync points issued (0 when [fsync:false]) *)
  journaled_pages : int;  (** original images saved to the rollback journal *)
}

val create : ?pool_pages:int -> ?fsync:bool -> backend -> t
(** [pool_pages] (default 256) bounds the buffer pool; [fsync] (default
    [true]) controls whether sync points hit the disk.  A [File] backend
    is created or truncated (any stale journal is deleted); use
    {!open_existing} to reopen a page file. *)

val create_vfs : ?pool_pages:int -> ?fsync:bool -> vfs:Vfs.t -> string -> t
(** Like [create (File path)] but on an explicit {!Vfs} (used by the
    fault-injection tests). *)

val open_existing : ?pool_pages:int -> ?fsync:bool -> string -> t
(** Open a page file written earlier, rolling back a hot journal first if
    the last session crashed mid-transaction.
    @raise Storage_error.Storage_error — [File_not_found] on missing
    files, [Truncated] on a file that is not a whole number of pages,
    [Journal_corrupt]/[Io] on unrecoverable journals. *)

val open_vfs : ?pool_pages:int -> ?fsync:bool -> vfs:Vfs.t -> string -> t
(** Like {!open_existing} on an explicit {!Vfs}. *)

val open_shared : ?fsync:bool -> pool:Read_pool.t -> string -> t
(** Open a committed page file as a {e read-only shared view}: page
    fetches probe (and fill) [pool] instead of a private buffer pool, so
    any number of domains sharing one pager — or several pagers over one
    pool — serve from one warm set of pages.  Miss reads are serialised
    per pager (the underlying file handle is not positionally safe across
    domains) and CRC-verified before they enter the pool, exactly like a
    private-pool miss.  A hot journal is still rolled back first.

    The returned pager accepts {!read}/{!pin}/{!unpin}, the
    introspection functions and {!close}; every write-side operation
    ({!alloc}, {!free}, {!mark_dirty}, {!flush}, {!commit}) raises
    [Invalid_argument].  {!close} releases the file and drops exactly
    this pager's pages from the pool.
    @raise Storage_error.Storage_error as {!open_existing}. *)

val open_shared_vfs : ?fsync:bool -> vfs:Vfs.t -> pool:Read_pool.t -> string -> t
(** {!open_shared} on an explicit {!Vfs} (fault-injection tests). *)

val read_only : t -> bool
(** Was this pager opened with {!open_shared}? *)

val alloc : t -> int
(** Allocate a zeroed page (reusing freed pages first); returns its id. *)

val free : t -> int -> unit
(** Return a page to the free list for reuse by later {!alloc}s. *)

val n_pages : t -> int

val read : t -> int -> Page.t
(** Fetch a page (through the cache).  The caller may mutate the returned
    bytes from {!Page.payload_off} up (the header below it belongs to the
    pager) but must call {!mark_dirty} afterwards, and must not touch the
    pager (alloc/read of other pages) between mutation and {!mark_dirty} —
    use {!pin} when holding a page across other pager calls.
    @raise Storage_error.Storage_error [(Checksum _)] when the on-disk
    image fails verification. *)

val pin : t -> int -> Page.t
(** Like {!read}, but the page cannot be evicted until {!unpin}.  Pins
    nest. *)

val unpin : t -> int -> unit

val mark_dirty : t -> int -> unit

val flush : t -> unit
(** Write back all dirty pages (under the journal discipline).  This is
    *not* a commit point: a crash after [flush] still rolls back to the
    last {!commit}. *)

val commit : t -> unit
(** Atomically make the current state the new committed state: journal the
    originals of every dirty committed page, fsync the journal, write all
    dirty pages back, fsync the store, then delete the journal.  A crash
    anywhere inside [commit] recovers to either the previous or the new
    committed state, never a mixture. *)

val verify_pages : t -> int list
(** Checksum-verify every page image directly from the backing file
    (bypassing the cache); returns the ids of corrupt pages.  Used by
    [hopi verify-store]. *)

val stats : t -> stats
(** For a shared read-only view, [cache_hits]/[cache_misses]/[evictions]
    report the {e pool-wide} numbers (the pool is the cache) and the
    write-side fields are 0; [disk_reads] is this pager's own. *)

val close : t -> unit
(** {!commit} and release the backing file.  A shared read-only view has
    nothing to commit: it releases the file and evicts its pages from the
    shared pool. *)

val size_bytes : t -> int
(** Total size of the page store. *)
