(** Page manager with a bounded buffer pool.

    Pages live either fully in memory or in a backing file, with an
    LRU-evicted write-back cache in front — enough machinery to make the
    index behave like the database-resident structure of the paper and to
    account for page I/O in benchmarks. *)

type backend =
  | Memory  (** all pages stay in the process (still bounded-cache-accounted) *)
  | File of string  (** pages are spilled to this file *)

type t

type stats = {
  pages : int;  (** pages allocated *)
  free_pages : int;  (** currently on the free list *)
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  disk_reads : int;
  disk_writes : int;
}

val create : ?pool_pages:int -> backend -> t
(** [pool_pages] (default 256) bounds the buffer pool.  A [File] backend is
    truncated; use {!open_existing} to reopen a page file. *)

val open_existing : ?pool_pages:int -> string -> t
(** Open a page file written earlier; the page count is derived from the
    file size.  @raise Sys_error on missing files. *)

val alloc : t -> int
(** Allocate a zeroed page (reusing freed pages first); returns its id. *)

val free : t -> int -> unit
(** Return a page to the free list for reuse by later {!alloc}s. *)

val n_pages : t -> int

val read : t -> int -> Page.t
(** Fetch a page (through the cache).  The caller may mutate the returned
    bytes but must call {!mark_dirty} afterwards, and must not touch the
    pager (alloc/read of other pages) between mutation and {!mark_dirty} —
    use {!pin} when holding a page across other pager calls. *)

val pin : t -> int -> Page.t
(** Like {!read}, but the page cannot be evicted until {!unpin}.  Pins
    nest. *)

val unpin : t -> int -> unit

val mark_dirty : t -> int -> unit

val flush : t -> unit
(** Write back all dirty pages. *)

val stats : t -> stats

val close : t -> unit
(** Flush and release the backing file (if any). *)

val size_bytes : t -> int
(** Total size of the page store. *)
