(** Page manager with a bounded buffer pool and crash-safe storage.

    Pages live in a {!Vfs} file (a real file, or a private in-memory file
    system for the [Memory] backend) with an LRU-evicted write-back cache
    in front.  Durability discipline (see DESIGN.md, Storage durability):

    - every page carries a CRC-32 header ({!Page.stamp}) written at
      write-back and verified on every cache miss — a flipped byte
      anywhere in a persisted page raises [Storage_error (Checksum _)];
    - all writes between two {!commit}s form a transaction protected by a
      rollback {!Journal}: the original image of any committed page is
      journaled and fsynced before the page is first overwritten, so a
      crash at *any* point rolls back to the last committed state;
    - {!commit} is the atomic save: journal, write back, fsync the store,
      then delete the journal (the commit point);
    - opening a store ({!open_existing} / {!open_vfs}) first recovers from
      a hot journal left by a crash.

    [fsync:false] trades power-loss durability for speed: the journal is
    still written (process crashes still recover) but nothing is synced. *)

type backend =
  | Memory  (** pages live in a private in-memory file system *)
  | File of string  (** pages are stored in this file (created/truncated) *)

type t

type stats = {
  pages : int;  (** pages allocated *)
  free_pages : int;  (** currently on the free list *)
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  disk_reads : int;
  disk_writes : int;
  fsyncs : int;  (** sync points issued (0 when [fsync:false]) *)
  journaled_pages : int;  (** original images saved to the rollback journal *)
}

val create : ?pool_pages:int -> ?fsync:bool -> backend -> t
(** [pool_pages] (default 256) bounds the buffer pool; [fsync] (default
    [true]) controls whether sync points hit the disk.  A [File] backend
    is created or truncated (any stale journal is deleted); use
    {!open_existing} to reopen a page file. *)

val create_vfs : ?pool_pages:int -> ?fsync:bool -> vfs:Vfs.t -> string -> t
(** Like [create (File path)] but on an explicit {!Vfs} (used by the
    fault-injection tests). *)

val open_existing : ?pool_pages:int -> ?fsync:bool -> string -> t
(** Open a page file written earlier, rolling back a hot journal first if
    the last session crashed mid-transaction.
    @raise Storage_error.Storage_error — [File_not_found] on missing
    files, [Truncated] on a file that is not a whole number of pages,
    [Journal_corrupt]/[Io] on unrecoverable journals. *)

val open_vfs : ?pool_pages:int -> ?fsync:bool -> vfs:Vfs.t -> string -> t
(** Like {!open_existing} on an explicit {!Vfs}. *)

val alloc : t -> int
(** Allocate a zeroed page (reusing freed pages first); returns its id. *)

val free : t -> int -> unit
(** Return a page to the free list for reuse by later {!alloc}s. *)

val n_pages : t -> int

val read : t -> int -> Page.t
(** Fetch a page (through the cache).  The caller may mutate the returned
    bytes from {!Page.payload_off} up (the header below it belongs to the
    pager) but must call {!mark_dirty} afterwards, and must not touch the
    pager (alloc/read of other pages) between mutation and {!mark_dirty} —
    use {!pin} when holding a page across other pager calls.
    @raise Storage_error.Storage_error [(Checksum _)] when the on-disk
    image fails verification. *)

val pin : t -> int -> Page.t
(** Like {!read}, but the page cannot be evicted until {!unpin}.  Pins
    nest. *)

val unpin : t -> int -> unit

val mark_dirty : t -> int -> unit

val flush : t -> unit
(** Write back all dirty pages (under the journal discipline).  This is
    *not* a commit point: a crash after [flush] still rolls back to the
    last {!commit}. *)

val commit : t -> unit
(** Atomically make the current state the new committed state: journal the
    originals of every dirty committed page, fsync the journal, write all
    dirty pages back, fsync the store, then delete the journal.  A crash
    anywhere inside [commit] recovers to either the previous or the new
    committed state, never a mixture. *)

val verify_pages : t -> int list
(** Checksum-verify every page image directly from the backing file
    (bypassing the cache); returns the ids of corrupt pages.  Used by
    [hopi verify-store]. *)

val stats : t -> stats

val close : t -> unit
(** {!commit} and release the backing file. *)

val size_bytes : t -> int
(** Total size of the page store. *)
