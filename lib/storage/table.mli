(** Index-organized tables with a forward and a backward composite index —
    the storage shape of the paper's LIN and LOUT tables (Section 3.4):

    {v CREATE TABLE LIN(ID NUMBER(10), INID NUMBER(10) [, DIST NUMBER(10)]) v}

    The forward index is keyed [(id, label, dist)], the backward index
    [(label, id, dist)]; both are index-organized B+-trees, so the backward
    index doubles the stored data exactly as the paper notes. *)

type t

val create : Pager.t -> t

val of_trees : fwd:Btree.t -> bwd:Btree.t -> t
(** Re-attach to persisted trees (see {!Catalog}). *)

val trees : t -> Btree.t * Btree.t
(** (forward, backward) — for catalog persistence. *)

val insert : t -> id:int -> label:int -> dist:int -> bool
(** [false] when the identical row already existed. *)

val delete : t -> id:int -> label:int -> dist:int -> bool

val delete_all_of_id : t -> int -> int
(** Remove every row with this [id]; returns how many were removed. *)

val delete_all_of_label : t -> int -> int

val mem : t -> id:int -> label:int -> bool
(** Any distance. *)

val find_dist : t -> id:int -> label:int -> int option
(** Smallest distance stored for this (id, label) pair. *)

val iter_by_id : t -> int -> (label:int -> dist:int -> unit) -> unit
(** Rows in label order — a forward-index range scan. *)

val iter_by_label : t -> int -> (id:int -> dist:int -> unit) -> unit
(** Rows in id order — a backward-index range scan. *)

val length : t -> int
(** Number of rows (entries). *)
