module Ihs = Hopi_util.Int_hashset

type t = { pgr : Pager.t; table : Table.t }

let create pgr =
  (* page 0 is the catalog *)
  let catalog_page = Pager.alloc pgr in
  assert (catalog_page = 0);
  { pgr; table = Table.create pgr }

let save t =
  let entry tree = { Catalog.root = Btree.root tree; length = Btree.length tree } in
  let fwd, bwd = Table.trees t.table in
  Catalog.write t.pgr
    { Catalog.kind = Catalog.Closure; with_dist = false; trees = [| entry fwd; entry bwd |] };
  Pager.commit t.pgr

let open_pager pgr =
  let cat = Catalog.read pgr in
  Catalog.expect Catalog.Closure cat;
  let tree i =
    let e = cat.Catalog.trees.(i) in
    Btree.of_root pgr ~root:e.Catalog.root ~length:e.Catalog.length
  in
  { pgr; table = Table.of_trees ~fwd:(tree 0) ~bwd:(tree 1) }

let pager t = t.pgr

let load t clo =
  Hopi_graph.Closure.iter_pairs clo (fun u v ->
      ignore (Table.insert t.table ~id:u ~label:v ~dist:0))

let connected t u v = Table.mem t.table ~id:u ~label:v

let descendants t u =
  let acc = Ihs.create () in
  Table.iter_by_id t.table u (fun ~label ~dist:_ -> Ihs.add acc label);
  acc

let ancestors t v =
  let acc = Ihs.create () in
  Table.iter_by_label t.table v (fun ~id ~dist:_ -> Ihs.add acc id);
  acc

let n_connections t = Table.length t.table

let stored_integers t = 4 * Table.length t.table
