module Ihs = Hopi_util.Int_hashset

type t = { table : Table.t }

let create pgr = { table = Table.create pgr }

let load t clo =
  Hopi_graph.Closure.iter_pairs clo (fun u v ->
      ignore (Table.insert t.table ~id:u ~label:v ~dist:0))

let connected t u v = Table.mem t.table ~id:u ~label:v

let descendants t u =
  let acc = Ihs.create () in
  Table.iter_by_id t.table u (fun ~label ~dist:_ -> Ihs.add acc label);
  acc

let ancestors t v =
  let acc = Ihs.create () in
  Table.iter_by_label t.table v (fun ~id ~dist:_ -> Ihs.add acc id);
  acc

let n_connections t = Table.length t.table

let stored_integers t = 4 * Table.length t.table
