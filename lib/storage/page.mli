(** Fixed-size pages with little-endian integer accessors.

    The storage engine replays the paper's database-backed design (Oracle
    index-organized tables, Section 3.4) with its own page/B+-tree stack;
    this module is the byte-level layer. *)

val size : int
(** Page size in bytes (4096). *)

type t = Bytes.t

val create : unit -> t

val get_u8 : t -> int -> int

val set_u8 : t -> int -> int -> unit

val get_u16 : t -> int -> int

val set_u16 : t -> int -> int -> unit

val get_i32 : t -> int -> int
(** Signed 32-bit little-endian. *)

val set_i32 : t -> int -> int -> unit
(** @raise Invalid_argument when the value exceeds 32-bit range. *)
