(** Fixed-size pages with little-endian integer accessors.

    The storage engine replays the paper's database-backed design (Oracle
    index-organized tables, Section 3.4) with its own page/B+-tree stack;
    this module is the byte-level layer.

    The first {!header_bytes} bytes of every page belong to the pager, not
    to the page's user: bytes [0..3] hold a CRC-32 of the payload (stamped
    at write-back, verified on every cache miss), byte [4] is an
    initialization flag (0 = never written, 1 = checksummed), bytes [5..7]
    are reserved.  Structures built on pages (B+-tree nodes, the catalog)
    lay out their content from {!payload_off} up. *)

val size : int
(** Page size in bytes (4096). *)

val header_bytes : int
(** Bytes reserved at the front of every page for the checksum header (8). *)

val payload_off : int
(** First byte offset usable by page content (= {!header_bytes}). *)

type t = Bytes.t

val create : unit -> t

val get_u8 : t -> int -> int

val set_u8 : t -> int -> int -> unit

val get_u16 : t -> int -> int

val set_u16 : t -> int -> int -> unit

val get_i32 : t -> int -> int
(** Signed 32-bit little-endian. *)

val set_i32 : t -> int -> int -> unit
(** @raise Invalid_argument when the value exceeds 32-bit range. *)

(** {1 Checksum header} *)

val stamp : t -> unit
(** Recompute the payload CRC into the header and set the written flag;
    called by the pager immediately before every write-back. *)

val verify : t -> [ `Ok | `Fresh | `Corrupt ]
(** [`Ok]: written flag set and CRC matches.  [`Fresh]: the whole page is
    zero (a never-written page read back as a hole).  [`Corrupt]:
    anything else — a flipped payload byte, a flipped CRC byte, a flipped
    flag, or a torn write. *)
