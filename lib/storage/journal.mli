(** The rollback journal behind atomic saves.

    Before the pager overwrites a page that belongs to the last committed
    state — or writes anything at all within a transaction — it records
    the page's *original* on-disk image here and fsyncs, so that a crash
    at any later point can be rolled back to the committed state.  The
    commit point is the journal's removal (exactly SQLite's rollback-
    journal discipline); {!rollback} is run on every open and restores the
    pre-transaction state from a left-over ("hot") journal.

    On-disk format: a 16-byte header (magic, version, committed page
    count, header CRC) followed by fixed-size records of
    [page id ∥ CRC ∥ page image].  Each record carries its own CRC-32 over
    id and image, so replay stops at the first torn or corrupt record —
    which is always safe, because a record is made durable before the
    page it protects is ever overwritten. *)

val magic : int

val version : int

val header_size : int

val record_size : int

val create : Vfs.file -> n_pages:int -> unit
(** Write the header for a transaction that starts with [n_pages]
    committed pages (rollback truncates the store back to that size).
    Does not sync; the pager syncs before its first main-file write. *)

val append : Vfs.file -> off:int -> page_id:int -> Page.t -> unit
(** Append one original-page record at journal offset [off] (which must be
    [header_size + k * record_size]).  Does not sync. *)

val rollback :
  vfs:Vfs.t -> path:string -> journal_path:string -> fsync:bool ->
  [ `No_journal | `Rolled_back of int | `Discarded ]
(** Recover [path] from a hot journal, if one exists.  [`Rolled_back n]
    restored [n] pages and truncated the store to its committed size;
    [`Discarded] means the journal's header never became durable (so the
    store was never touched) and it was simply deleted.  The journal is
    removed in every non-[`No_journal] case. *)
