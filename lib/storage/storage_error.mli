(** Typed failures of the storage engine.

    Every error path of the pager, journal, catalog and stores raises
    {!Storage_error}; corruption is always *rejected* with one of these —
    never silently returned as data (see DESIGN.md, Storage durability). *)

type t =
  | File_not_found of string
  | Io of string  (** underlying I/O failure (wrapped [Unix] error or injected fault) *)
  | Truncated of string  (** file shorter than the structure it must hold *)
  | Bad_magic of { got : int; expected : int }
  | Bad_version of { got : int; expected : int }
  | Bad_catalog of string  (** catalog page is well-formed but inconsistent *)
  | Checksum of { page : int }  (** page failed CRC/flag verification *)
  | Journal_corrupt of string

exception Storage_error of t

val raise_error : t -> 'a

val to_string : t -> string
