(* Generation manifest — see the interface for the protocol.  The file is
   a one-page pager store of its own (magic "HGEN"), so commits ride the
   same journal machinery as every other store and the crash matrix in
   test/test_crash.ml can drive publish/rollback through fault_vfs. *)

module E = Storage_error

type t = { live : int; previous : int; tip : int }

let magic = 0x4847454E (* "HGEN" *)

let version = 1

let po = Page.payload_off

(* layout from [po]: [+0..3] magic, [+4..7] version, [+8..11] live,
   [+12..15] previous, [+16..19] tip *)

let path ~base = base ^ ".gens"

let gen_path ~base k = if k = 0 then base else Printf.sprintf "%s.gen%d" base k

let exists ?(vfs = Vfs.real) ~base () = vfs.Vfs.exists (path ~base)

let validate m =
  if m.tip < 0 || m.live < 0 || m.previous < 0 || m.live > m.tip
     || m.previous > m.tip
  then
    E.raise_error
      (Bad_catalog
         (Printf.sprintf "implausible generation manifest live=%d previous=%d tip=%d"
            m.live m.previous m.tip))

let write_page pager m =
  validate m;
  if Pager.n_pages pager < 1 then ignore (Pager.alloc pager);
  let page = Pager.read pager 0 in
  Page.set_i32 page (po + 0) magic;
  Page.set_i32 page (po + 4) version;
  Page.set_i32 page (po + 8) m.live;
  Page.set_i32 page (po + 12) m.previous;
  Page.set_i32 page (po + 16) m.tip;
  Pager.mark_dirty pager 0

let parse pager =
  if Pager.n_pages pager < 1 then
    E.raise_error (Truncated "generation manifest has no page");
  let page = Pager.read pager 0 in
  let got_magic = Page.get_i32 page (po + 0) in
  if got_magic <> magic then
    E.raise_error (Bad_magic { got = got_magic; expected = magic });
  let got_version = Page.get_i32 page (po + 4) in
  if got_version <> version then
    E.raise_error (Bad_version { got = got_version; expected = version });
  let m =
    { live = Page.get_i32 page (po + 8);
      previous = Page.get_i32 page (po + 12);
      tip = Page.get_i32 page (po + 16) }
  in
  validate m;
  m

let read_file ?(vfs = Vfs.real) ?(fsync = false) p =
  let pager = Pager.open_vfs ~pool_pages:4 ~fsync ~vfs p in
  Fun.protect ~finally:(fun () -> Pager.close pager) (fun () -> parse pager)

let read ?(vfs = Vfs.real) ~base () = read_file ~vfs (path ~base)

let commit ?(vfs = Vfs.real) ?(fsync = true) ~base m =
  validate m;
  let p = path ~base in
  let pager =
    if vfs.Vfs.exists p then Pager.open_vfs ~pool_pages:4 ~fsync ~vfs p
    else Pager.create_vfs ~pool_pages:4 ~fsync ~vfs p
  in
  Fun.protect ~finally:(fun () -> Pager.close pager) (fun () -> write_page pager m)

let publish ?(vfs = Vfs.real) ?(fsync = true) ?(pool_pages = 256) ~base ~load () =
  let m = read ~vfs ~base () in
  let g = m.tip + 1 in
  (* Pager.create truncates a stale half-written file and deletes its
     stale journal, so a previously crashed publish cannot pollute this
     one. *)
  let pager = Pager.create_vfs ~pool_pages ~fsync ~vfs (gen_path ~base g) in
  load pager;
  Pager.close pager;
  let m' = { live = g; previous = m.live; tip = g } in
  commit ~vfs ~fsync ~base m';
  m'

let rollback ?(vfs = Vfs.real) ?(fsync = true) ~base () =
  let m = read ~vfs ~base () in
  if m.previous = m.live then m
  else begin
    let m' = { m with live = m.previous; previous = m.live } in
    commit ~vfs ~fsync ~base m';
    m'
  end

(* The size the manifest file has actually reached on stable storage —
   used to distinguish "first commit never completed" (shorter than one
   page; fresh pages are not journal-protected) from real corruption. *)
let durable_size vfs p =
  let f = vfs.Vfs.open_file p ~create:false in
  Fun.protect ~finally:(fun () -> f.Vfs.close ()) (fun () -> f.Vfs.size ())

let remove_if_exists vfs p = if vfs.Vfs.exists p then vfs.Vfs.remove p

let recover ?(vfs = Vfs.real) ~base () =
  let p = path ~base in
  if not (vfs.Vfs.exists p) then None
  else
    match read ~vfs ~base () with
    | m ->
      let stray = gen_path ~base (m.tip + 1) in
      remove_if_exists vfs stray;
      remove_if_exists vfs (stray ^ "-journal");
      Some m
    | exception E.Storage_error _ when durable_size vfs p < Page.size ->
      remove_if_exists vfs p;
      remove_if_exists vfs (p ^ "-journal");
      None
