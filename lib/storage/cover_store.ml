module Ihs = Hopi_util.Int_hashset
module Cover = Hopi_twohop.Cover
module Dist_cover = Hopi_twohop.Dist_cover

type t = {
  pgr : Pager.t;
  mutable lin : Table.t;
  mutable lout : Table.t;
  mutable nodes : Btree.t;  (* registry: (id, 0, 0) *)
  mutable with_dist : bool;
}

let create pgr =
  (* page 0 is the catalog *)
  let catalog_page = Pager.alloc pgr in
  assert (catalog_page = 0);
  { pgr; lin = Table.create pgr; lout = Table.create pgr; nodes = Btree.create pgr;
    with_dist = false }

let save t =
  let entry tree =
    { Catalog.root = Btree.root tree; length = Btree.length tree }
  in
  let lin_fwd, lin_bwd = Table.trees t.lin in
  let lout_fwd, lout_bwd = Table.trees t.lout in
  Catalog.write t.pgr
    {
      Catalog.kind = Catalog.Cover;
      with_dist = t.with_dist;
      trees = [| entry lin_fwd; entry lin_bwd; entry lout_fwd; entry lout_bwd;
                 entry t.nodes |];
    };
  Pager.commit t.pgr

let open_pager pgr =
  let cat = Catalog.read pgr in
  Catalog.expect Catalog.Cover cat;
  let tree i =
    let e = cat.Catalog.trees.(i) in
    Btree.of_root pgr ~root:e.Catalog.root ~length:e.Catalog.length
  in
  {
    pgr;
    lin = Table.of_trees ~fwd:(tree 0) ~bwd:(tree 1);
    lout = Table.of_trees ~fwd:(tree 2) ~bwd:(tree 3);
    nodes = tree 4;
    with_dist = cat.Catalog.with_dist;
  }

let pager t = t.pgr

let add_node t v = ignore (Btree.insert t.nodes (v, 0, 0))

let mem_node t v = Btree.mem t.nodes (v, 0, 0)

let with_dist t = t.with_dist

let iter_nodes t f = Btree.iter_all t.nodes (fun (v, _, _) -> f v)

let iter_lin t v f = Table.iter_by_id t.lin v (fun ~label ~dist -> f ~center:label ~dist)

let iter_lout t u f = Table.iter_by_id t.lout u (fun ~label ~dist -> f ~center:label ~dist)

let iter_in_by_center t w f = Table.iter_by_label t.lin w (fun ~id ~dist -> f ~node:id ~dist)

let iter_out_by_center t w f = Table.iter_by_label t.lout w (fun ~id ~dist -> f ~node:id ~dist)

let insert_in t ~node ~center ~dist =
  if node <> center then begin
    add_node t node;
    ignore (Table.insert t.lin ~id:node ~label:center ~dist);
    if dist > 0 then t.with_dist <- true
  end

let insert_out t ~node ~center ~dist =
  if node <> center then begin
    add_node t node;
    ignore (Table.insert t.lout ~id:node ~label:center ~dist);
    if dist > 0 then t.with_dist <- true
  end

let load_cover t cover =
  Cover.iter_nodes cover (fun v ->
      add_node t v;
      Cover.iter_lin cover v (fun w -> insert_in t ~node:v ~center:w ~dist:0);
      Cover.iter_lout cover v (fun w -> insert_out t ~node:v ~center:w ~dist:0))

let load_dist_cover t cover =
  Dist_cover.iter_nodes cover (fun v ->
      add_node t v;
      Dist_cover.iter_lin cover v (fun w d -> insert_in t ~node:v ~center:w ~dist:d);
      Dist_cover.iter_lout cover v (fun w d -> insert_out t ~node:v ~center:w ~dist:d))

(* {1 Bulk loading}

   Sort all rows of a table up front, then hand the sorted streams to
   {!Btree.bulk_load} — every page is written once, in key order, instead
   of the per-entry root-to-leaf descents (and the eviction storm) of
   {!load_cover}.  Plain covers pack each (node, center) row into one
   OCaml int so the sorts are cheap monomorphic int sorts; the same array
   is repacked in place for the backward index.  Trees are built in the
   catalog's slot order so the page layout is deterministic. *)

let int_cmp (x : int) y = compare x y

let pack_bits = 31  (* components are i32-bounded; covers hold ids >= 0 *)

let pack_mask = (1 lsl pack_bits) - 1

let pack a b =
  if a < 0 || a > pack_mask || b < 0 || b > pack_mask then
    invalid_arg (Printf.sprintf "Cover_store: id out of range (%d, %d)" a b);
  (a lsl pack_bits) lor b

let require_fresh t =
  let lin_fwd, lin_bwd = Table.trees t.lin in
  let lout_fwd, lout_bwd = Table.trees t.lout in
  let roots = [ lin_fwd; lin_bwd; lout_fwd; lout_bwd; t.nodes ] in
  if List.exists (fun tr -> Btree.length tr > 0) roots then
    invalid_arg "Cover_store: bulk load requires a freshly created store";
  (* recycle the empty roots [create] allocated: the bulk loader writes
     whole new trees and the pager reuses these pages first *)
  List.iter (fun tr -> Pager.free t.pgr (Btree.root tr)) roots

let tree_of_packed pgr a =
  let i = ref 0 in
  Btree.bulk_load pgr ~next:(fun () ->
      if !i >= Array.length a then None
      else begin
        let x = a.(!i) in
        incr i;
        Some (x lsr pack_bits, x land pack_mask, 0)
      end)

(* swap the two packed halves in place (fwd rows -> bwd rows) *)
let swap_repack a =
  Array.iteri (fun j x -> a.(j) <- ((x land pack_mask) lsl pack_bits) lor (x lsr pack_bits)) a

let packed_rows cover nodes ~cardinal ~iter =
  let total = Array.fold_left (fun acc v -> acc + cardinal cover v) 0 nodes in
  let a = Array.make total 0 in
  let i = ref 0 in
  Array.iter
    (fun v ->
      iter cover v (fun w ->
          a.(!i) <- pack v w;
          incr i))
    nodes;
  Array.sort int_cmp a;
  a

let sorted_nodes n iter =
  let a = Array.make n 0 in
  let i = ref 0 in
  iter (fun v ->
      a.(!i) <- v;
      incr i);
  Array.sort int_cmp a;
  a

let tree_of_nodes pgr nodes =
  let i = ref 0 in
  Btree.bulk_load pgr ~next:(fun () ->
      if !i >= Array.length nodes then None
      else begin
        let v = nodes.(!i) in
        incr i;
        Some (v, 0, 0)
      end)

let bulk_table pgr rows =
  let fwd = tree_of_packed pgr rows in
  swap_repack rows;
  Array.sort int_cmp rows;
  let bwd = tree_of_packed pgr rows in
  Table.of_trees ~fwd ~bwd

let bulk_load_cover t cover =
  require_fresh t;
  let nodes = sorted_nodes (Cover.n_nodes cover) (Cover.iter_nodes cover) in
  let lin =
    packed_rows cover nodes ~cardinal:Cover.lin_cardinal ~iter:Cover.iter_lin
  in
  t.lin <- bulk_table t.pgr lin;
  let lout =
    packed_rows cover nodes ~cardinal:Cover.lout_cardinal ~iter:Cover.iter_lout
  in
  t.lout <- bulk_table t.pgr lout;
  t.nodes <- tree_of_nodes t.pgr nodes

let bulk_load_dist_cover t cover =
  require_fresh t;
  let nodes = sorted_nodes (Dist_cover.n_nodes cover) (Dist_cover.iter_nodes cover) in
  let key_cmp (a1, b1, c1) (a2, b2, c2) =
    let c = int_cmp a1 a2 in
    if c <> 0 then c
    else
      let c = int_cmp b1 b2 in
      if c <> 0 then c else int_cmp c1 c2
  in
  let rows_of iter =
    let buf = Hopi_util.Dyn_array.create () in
    Array.iter
      (fun v -> iter cover v (fun w d -> Hopi_util.Dyn_array.push buf (v, w, d)))
      nodes;
    let a =
      Array.init (Hopi_util.Dyn_array.length buf) (Hopi_util.Dyn_array.get buf)
    in
    Array.sort key_cmp a;
    a
  in
  let tree_of rows =
    let i = ref 0 in
    Btree.bulk_load t.pgr ~next:(fun () ->
        if !i >= Array.length rows then None
        else begin
          let k = rows.(!i) in
          incr i;
          Some k
        end)
  in
  let table_of rows =
    let fwd = tree_of rows in
    let bwd_rows = Array.map (fun (v, w, d) -> (w, v, d)) rows in
    Array.sort key_cmp bwd_rows;
    let bwd = tree_of bwd_rows in
    Table.of_trees ~fwd ~bwd
  in
  let any_dist rows = Array.exists (fun (_, _, d) -> d > 0) rows in
  let lin = rows_of Dist_cover.iter_lin in
  t.lin <- table_of lin;
  if any_dist lin then t.with_dist <- true;
  let lout = rows_of Dist_cover.iter_lout in
  t.lout <- table_of lout;
  if any_dist lout then t.with_dist <- true;
  t.nodes <- tree_of_nodes t.pgr nodes

let remove_node t v =
  ignore (Table.delete_all_of_id t.lin v);
  ignore (Table.delete_all_of_id t.lout v);
  ignore (Btree.delete t.nodes (v, 0, 0))

let remove_label t w =
  ignore (Table.delete_all_of_label t.lin w);
  ignore (Table.delete_all_of_label t.lout w)

(* Merge-intersection of LOUT(u) and LIN(v) rows (both scans are ordered by
   label), exactly the paper's join on LOUT.OUTID = LIN.INID. *)
let merge_min t u v =
  let out_rows = ref [] and in_rows = ref [] in
  Table.iter_by_id t.lout u (fun ~label ~dist -> out_rows := (label, dist) :: !out_rows);
  Table.iter_by_id t.lin v (fun ~label ~dist -> in_rows := (label, dist) :: !in_rows);
  let rec merge best xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> best
    | (wx, dx) :: xs', (wy, dy) :: ys' ->
      if wx < wy then merge best xs' ys
      else if wy < wx then merge best xs ys'
      else begin
        let d = dx + dy in
        let best = match best with Some b when b <= d -> Some b | _ -> Some d in
        merge best xs' ys'
      end
  in
  (* rows were accumulated in reverse (descending) order: re-reverse *)
  merge None (List.rev !out_rows) (List.rev !in_rows)

let min_distance t u v =
  if not (mem_node t u && mem_node t v) then None
  else if u = v then Some 0
  else begin
    let candidates =
      List.filter_map Fun.id
        [
          (* compensating queries for the implicit self-entries *)
          Table.find_dist t.lout ~id:u ~label:v;  (* center w = v *)
          Table.find_dist t.lin ~id:v ~label:u;  (* center w = u *)
          merge_min t u v;
        ]
    in
    match candidates with
    | [] -> None
    | ds -> Some (List.fold_left min max_int ds)
  end

let connected t u v = min_distance t u v <> None

let descendants t u =
  let acc = Ihs.create () in
  if mem_node t u then begin
    Ihs.add acc u;
    let via_center w =
      Ihs.add acc w;
      Table.iter_by_label t.lin w (fun ~id ~dist:_ -> Ihs.add acc id)
    in
    via_center u;
    Table.iter_by_id t.lout u (fun ~label ~dist:_ -> via_center label)
  end;
  acc

let ancestors t v =
  let acc = Ihs.create () in
  if mem_node t v then begin
    Ihs.add acc v;
    let via_center w =
      Ihs.add acc w;
      Table.iter_by_label t.lout w (fun ~id ~dist:_ -> Ihs.add acc id)
    in
    via_center v;
    Table.iter_by_id t.lin v (fun ~label ~dist:_ -> via_center label)
  end;
  acc

let n_entries t = Table.length t.lin + Table.length t.lout

let stored_integers t =
  let per_entry = if t.with_dist then 6 else 4 in
  per_entry * n_entries t

let n_nodes t = Btree.length t.nodes
