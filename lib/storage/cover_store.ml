module Ihs = Hopi_util.Int_hashset
module Cover = Hopi_twohop.Cover
module Dist_cover = Hopi_twohop.Dist_cover

type t = {
  pgr : Pager.t;
  lin : Table.t;
  lout : Table.t;
  nodes : Btree.t;  (* registry: (id, 0, 0) *)
  mutable with_dist : bool;
}

let create pgr =
  (* page 0 is the catalog *)
  let catalog_page = Pager.alloc pgr in
  assert (catalog_page = 0);
  { pgr; lin = Table.create pgr; lout = Table.create pgr; nodes = Btree.create pgr;
    with_dist = false }

let save t =
  let entry tree =
    { Catalog.root = Btree.root tree; length = Btree.length tree }
  in
  let lin_fwd, lin_bwd = Table.trees t.lin in
  let lout_fwd, lout_bwd = Table.trees t.lout in
  Catalog.write t.pgr
    {
      Catalog.kind = Catalog.Cover;
      with_dist = t.with_dist;
      trees = [| entry lin_fwd; entry lin_bwd; entry lout_fwd; entry lout_bwd;
                 entry t.nodes |];
    };
  Pager.commit t.pgr

let open_pager pgr =
  let cat = Catalog.read pgr in
  Catalog.expect Catalog.Cover cat;
  let tree i =
    let e = cat.Catalog.trees.(i) in
    Btree.of_root pgr ~root:e.Catalog.root ~length:e.Catalog.length
  in
  {
    pgr;
    lin = Table.of_trees ~fwd:(tree 0) ~bwd:(tree 1);
    lout = Table.of_trees ~fwd:(tree 2) ~bwd:(tree 3);
    nodes = tree 4;
    with_dist = cat.Catalog.with_dist;
  }

let pager t = t.pgr

let add_node t v = ignore (Btree.insert t.nodes (v, 0, 0))

let mem_node t v = Btree.mem t.nodes (v, 0, 0)

let with_dist t = t.with_dist

let iter_nodes t f = Btree.iter_all t.nodes (fun (v, _, _) -> f v)

let iter_lin t v f = Table.iter_by_id t.lin v (fun ~label ~dist -> f ~center:label ~dist)

let iter_lout t u f = Table.iter_by_id t.lout u (fun ~label ~dist -> f ~center:label ~dist)

let iter_in_by_center t w f = Table.iter_by_label t.lin w (fun ~id ~dist -> f ~node:id ~dist)

let iter_out_by_center t w f = Table.iter_by_label t.lout w (fun ~id ~dist -> f ~node:id ~dist)

let insert_in t ~node ~center ~dist =
  if node <> center then begin
    add_node t node;
    ignore (Table.insert t.lin ~id:node ~label:center ~dist);
    if dist > 0 then t.with_dist <- true
  end

let insert_out t ~node ~center ~dist =
  if node <> center then begin
    add_node t node;
    ignore (Table.insert t.lout ~id:node ~label:center ~dist);
    if dist > 0 then t.with_dist <- true
  end

let load_cover t cover =
  Cover.iter_nodes cover (fun v ->
      add_node t v;
      Cover.iter_lin cover v (fun w -> insert_in t ~node:v ~center:w ~dist:0);
      Cover.iter_lout cover v (fun w -> insert_out t ~node:v ~center:w ~dist:0))

let load_dist_cover t cover =
  Dist_cover.iter_nodes cover (fun v ->
      add_node t v;
      Dist_cover.iter_lin cover v (fun w d -> insert_in t ~node:v ~center:w ~dist:d);
      Dist_cover.iter_lout cover v (fun w d -> insert_out t ~node:v ~center:w ~dist:d))

let remove_node t v =
  ignore (Table.delete_all_of_id t.lin v);
  ignore (Table.delete_all_of_id t.lout v);
  ignore (Btree.delete t.nodes (v, 0, 0))

let remove_label t w =
  ignore (Table.delete_all_of_label t.lin w);
  ignore (Table.delete_all_of_label t.lout w)

(* Merge-intersection of LOUT(u) and LIN(v) rows (both scans are ordered by
   label), exactly the paper's join on LOUT.OUTID = LIN.INID. *)
let merge_min t u v =
  let out_rows = ref [] and in_rows = ref [] in
  Table.iter_by_id t.lout u (fun ~label ~dist -> out_rows := (label, dist) :: !out_rows);
  Table.iter_by_id t.lin v (fun ~label ~dist -> in_rows := (label, dist) :: !in_rows);
  let rec merge best xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> best
    | (wx, dx) :: xs', (wy, dy) :: ys' ->
      if wx < wy then merge best xs' ys
      else if wy < wx then merge best xs ys'
      else begin
        let d = dx + dy in
        let best = match best with Some b when b <= d -> Some b | _ -> Some d in
        merge best xs' ys'
      end
  in
  (* rows were accumulated in reverse (descending) order: re-reverse *)
  merge None (List.rev !out_rows) (List.rev !in_rows)

let min_distance t u v =
  if not (mem_node t u && mem_node t v) then None
  else if u = v then Some 0
  else begin
    let candidates =
      List.filter_map Fun.id
        [
          (* compensating queries for the implicit self-entries *)
          Table.find_dist t.lout ~id:u ~label:v;  (* center w = v *)
          Table.find_dist t.lin ~id:v ~label:u;  (* center w = u *)
          merge_min t u v;
        ]
    in
    match candidates with
    | [] -> None
    | ds -> Some (List.fold_left min max_int ds)
  end

let connected t u v = min_distance t u v <> None

let descendants t u =
  let acc = Ihs.create () in
  if mem_node t u then begin
    Ihs.add acc u;
    let via_center w =
      Ihs.add acc w;
      Table.iter_by_label t.lin w (fun ~id ~dist:_ -> Ihs.add acc id)
    in
    via_center u;
    Table.iter_by_id t.lout u (fun ~label ~dist:_ -> via_center label)
  end;
  acc

let ancestors t v =
  let acc = Ihs.create () in
  if mem_node t v then begin
    Ihs.add acc v;
    let via_center w =
      Ihs.add acc w;
      Table.iter_by_label t.lout w (fun ~id ~dist:_ -> Ihs.add acc id)
    in
    via_center v;
    Table.iter_by_id t.lin v (fun ~label ~dist:_ -> via_center label)
  end;
  acc

let n_entries t = Table.length t.lin + Table.length t.lout

let stored_integers t =
  let per_entry = if t.with_dist then 6 else 4 in
  per_entry * n_entries t

let n_nodes t = Btree.length t.nodes
