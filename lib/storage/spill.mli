(** External-memory sorting of integer entries: sorted runs with a shared
    memory budget, spill to VFS temp files, k-way deduplicating merge.

    The build pipeline's join stage (see [Join_psg]) packs each LIN/LOUT
    entry into one non-negative OCaml [int] and feeds the packed entries
    through a sorter: pool workers append into per-task {!type-run}
    builders; whenever the resident bytes across all live runs exceed the
    sorter's budget, the offending run is sorted, deduplicated and spilled
    to a [hopi-spill-*] temp file through the configured {!Vfs}.  {!merged}
    then streams the globally sorted, deduplicated union of all finished
    runs — the canonical order that makes stores byte-identical regardless
    of job count, budget, or where run boundaries fell.

    Entries must be non-negative (they are serialized as 8-byte
    little-endian words and [min_int] is used as a merge sentinel).
    Run builders are single-owner; one sorter may be fed from many domains
    concurrently.  Spill I/O is serialized on an internal mutex. *)

(** {1 Settings} *)

type settings = {
  vfs : Vfs.t;  (** File system spill files are written through. *)
  dir : string;  (** Directory for spill temp files. *)
  budget_bytes : int;
      (** Resident-entry budget shared by all runs of a sorter; a run that
          pushes the total past this spills immediately.  [max_int] never
          spills. *)
}

val settings : ?vfs:Vfs.t -> ?dir:string -> ?budget_bytes:int -> unit -> settings
(** Defaults: {!Vfs.real}, [Filename.get_temp_dir_name ()], no budget. *)

val temp_prefix : string
(** ["hopi-spill-"] — the name prefix of every spill temp file. *)

(** {1 Sorting} *)

type sorter

val sorter : settings -> tag:string -> sorter
(** A fresh sorter.  [tag] distinguishes this sorter's temp files (e.g.
    ["lout"] vs ["lin"]). *)

type run
(** A per-task run builder.  Not domain-safe: each pool task builds its
    own. *)

val run : sorter -> run

val add : run -> int -> unit
(** Append one entry (need not be sorted or unique).  Checks the shared
    budget every few hundred entries and spills this run when over. *)

val finish : run -> unit
(** Sort and deduplicate the run, then either retain it in memory or — if
    the sorter is over budget — spill it.  The builder must not be used
    afterwards. *)

val merged : sorter -> (int -> unit) -> unit
(** [merged t f] calls [f] on every distinct entry across all finished
    runs, in ascending order.  Call at most once, after all runs have
    finished; spilled runs are streamed back through buffered reads. *)

(** {1 Lifecycle} *)

val close : sorter -> unit
(** Remove this sorter's temp files and drop retained runs.  Idempotent;
    call from a [Fun.protect] finalizer so a failed build leaves no
    temps behind. *)

type stats = {
  runs : int;  (** Finished non-empty runs. *)
  spilled_runs : int;
  spilled_bytes : int;
  entries : int;  (** Entries added, before deduplication. *)
  peak_resident_bytes : int;  (** High-water mark of in-memory entry bytes. *)
}

val stats : sorter -> stats

val cleanup_dir : ?vfs:Vfs.t -> string -> int
(** Remove every [hopi-spill-*] file in a directory and return how many
    were found.  Recovery/housekeeping for temps orphaned by a crash —
    only safe when no build is writing spills there. *)
