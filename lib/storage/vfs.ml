type file = {
  read : Bytes.t -> off:int -> pos:int -> len:int -> int;
  write : Bytes.t -> off:int -> pos:int -> len:int -> unit;
  sync : unit -> unit;
  truncate : int -> unit;
  size : unit -> int;
  close : unit -> unit;
}

type t = {
  open_file : string -> create:bool -> file;
  exists : string -> bool;
  remove : string -> unit;
  list_dir : string -> string list;
}

let read_full f buf ~off ~pos ~len =
  let rec go pos len total =
    if len = 0 then total
    else
      let n = f.read buf ~off:(off + total) ~pos ~len in
      if n = 0 then total else go (pos + n) (len - n) (total + n)
  in
  go pos len 0

(* {1 Real file system} *)

let io fmt = Printf.ksprintf (fun m -> Storage_error.raise_error (Io m)) fmt

let wrap op path f =
  try f ()
  with Unix.Unix_error (e, _, _) -> io "%s %s: %s" op path (Unix.error_message e)

let real =
  let open_file path ~create =
    let flags =
      if create then [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] else [ Unix.O_RDWR ]
    in
    let fd =
      try Unix.openfile path flags 0o600
      with
      | Unix.Unix_error (Unix.ENOENT, _, _) ->
        Storage_error.raise_error (File_not_found path)
      | Unix.Unix_error (e, _, _) -> io "open %s: %s" path (Unix.error_message e)
    in
    {
      read =
        (fun buf ~off ~pos ~len ->
          wrap "read" path (fun () ->
              ignore (Unix.lseek fd off Unix.SEEK_SET);
              Unix.read fd buf pos len));
      write =
        (fun buf ~off ~pos ~len ->
          wrap "write" path (fun () ->
              ignore (Unix.lseek fd off Unix.SEEK_SET);
              let rec go pos len =
                if len > 0 then begin
                  let n = Unix.write fd buf pos len in
                  go (pos + n) (len - n)
                end
              in
              go pos len));
      sync = (fun () -> wrap "fsync" path (fun () -> Unix.fsync fd));
      truncate = (fun n -> wrap "truncate" path (fun () -> Unix.ftruncate fd n));
      size = (fun () -> wrap "stat" path (fun () -> (Unix.fstat fd).Unix.st_size));
      close = (fun () -> wrap "close" path (fun () -> Unix.close fd));
    }
  in
  {
    open_file;
    exists = Sys.file_exists;
    remove =
      (fun path ->
        try Unix.unlink path
        with
        | Unix.Unix_error (Unix.ENOENT, _, _) ->
          Storage_error.raise_error (File_not_found path)
        | Unix.Unix_error (e, _, _) -> io "unlink %s: %s" path (Unix.error_message e));
    list_dir =
      (fun dir ->
        match Sys.readdir dir with
        | entries -> List.sort compare (Array.to_list entries)
        | exception Sys_error _ -> []);
  }

(* {1 In-memory file system} *)

type mem_file = { mutable data : Bytes.t; mutable len : int }

let mem_reserve f n =
  if n > Bytes.length f.data then begin
    let cap = max n (max 4096 (2 * Bytes.length f.data)) in
    let data = Bytes.make cap '\000' in
    Bytes.blit f.data 0 data 0 f.len;
    f.data <- data
  end

let mem_ops f =
  {
    read =
      (fun buf ~off ~pos ~len ->
        if off >= f.len then 0
        else begin
          let n = min len (f.len - off) in
          Bytes.blit f.data off buf pos n;
          n
        end);
    write =
      (fun buf ~off ~pos ~len ->
        mem_reserve f (off + len);
        (* extending past the previous end leaves a zero-filled hole, like a
           sparse file *)
        Bytes.blit buf pos f.data off len;
        f.len <- max f.len (off + len));
    sync = (fun () -> ());
    truncate =
      (fun n ->
        if n < f.len then Bytes.fill f.data n (f.len - n) '\000';
        f.len <- n);
    size = (fun () -> f.len);
    close = (fun () -> ());
  }

let memory () =
  let files : (string, mem_file) Hashtbl.t = Hashtbl.create 4 in
  {
    open_file =
      (fun path ~create ->
        match Hashtbl.find_opt files path with
        | Some f ->
          if create then begin
            Bytes.fill f.data 0 f.len '\000';
            f.len <- 0
          end;
          mem_ops f
        | None ->
          if not create then Storage_error.raise_error (File_not_found path);
          let f = { data = Bytes.create 0; len = 0 } in
          Hashtbl.replace files path f;
          mem_ops f);
    exists = (fun path -> Hashtbl.mem files path);
    remove =
      (fun path ->
        if not (Hashtbl.mem files path) then
          Storage_error.raise_error (File_not_found path);
        Hashtbl.remove files path);
    list_dir =
      (fun dir ->
        Hashtbl.fold
          (fun path _ acc ->
            if Filename.dirname path = dir then Filename.basename path :: acc
            else acc)
          files []
        |> List.sort compare);
  }
