(** Page-backed B+-trees over composite 32-bit integer keys.

    A key is a triple [(a, b, c)] compared lexicographically, and is the
    whole record — the trees are index-organized, exactly like the paper's
    LIN/LOUT tables whose primary key is the concatenation of all columns
    (Section 3.4).  The forward index on LIN is a tree keyed
    [(id, inid, dist)]; the backward index re-keys the same rows as
    [(inid, id, dist)].

    Deletion rebalances: an under-full node (below a quarter of capacity)
    merges with a sibling when the combined content fits and borrows a slot
    otherwise; freed pages return to the pager's free list for reuse —
    document deletions (Section 6) therefore do not leak space. *)

type t

type key = int * int * int

val create : Pager.t -> t

val root : t -> int
(** Current root page id (changes when the root splits). *)

val of_root : Pager.t -> root:int -> length:int -> t
(** Re-attach to a tree stored earlier (see {!Catalog}). *)

val insert : t -> key -> bool
(** [true] when the key was new. *)

val bulk_load : Pager.t -> next:(unit -> key option) -> t
(** Build a tree bottom-up from a strictly ascending key stream: leaves
    are written left-to-right to capacity and chained, internal nodes are
    stitched over them — no per-key descent, every page written once.
    [next] is polled until it returns [None]; an empty stream yields an
    empty tree.  The result supports the full API, including later
    {!insert}/{!delete}.
    @raise Invalid_argument on an out-of-range component or a stream that
    is not strictly ascending. *)

val delete : t -> key -> bool
(** [true] when the key was present. *)

val mem : t -> key -> bool

val length : t -> int

val iter_from : t -> key -> (key -> bool) -> unit
(** [iter_from t lo f] visits keys [>= lo] in order while [f] returns
    [true]. *)

val iter_prefix1 : t -> int -> (key -> unit) -> unit
(** All keys with first component equal to the argument. *)

val iter_prefix2 : t -> int -> int -> (key -> unit) -> unit

val iter_all : t -> (key -> unit) -> unit

val min_i32 : int
(** Smallest storable component value. *)

val max_i32 : int
