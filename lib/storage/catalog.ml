type entry = { root : int; length : int }

type t = { with_dist : bool; trees : entry array }

let magic = 0x484F5049 (* "HOPI" *)

let version = 1

let n_trees = 5

let write pager t =
  if Array.length t.trees <> n_trees then invalid_arg "Catalog.write: arity";
  let page = Pager.read pager 0 in
  Page.set_i32 page 0 magic;
  Page.set_i32 page 4 version;
  Page.set_i32 page 8 (if t.with_dist then 1 else 0);
  Array.iteri
    (fun i e ->
      let off = 12 + (i * 8) in
      Page.set_i32 page off e.root;
      Page.set_i32 page (off + 4) e.length)
    t.trees;
  Pager.mark_dirty pager 0

let read pager =
  let page = Pager.read pager 0 in
  if Page.get_i32 page 0 <> magic then failwith "Catalog.read: bad magic";
  if Page.get_i32 page 4 <> version then failwith "Catalog.read: unsupported version";
  let with_dist = Page.get_i32 page 8 <> 0 in
  let trees =
    Array.init n_trees (fun i ->
        let off = 12 + (i * 8) in
        { root = Page.get_i32 page off; length = Page.get_i32 page (off + 4) })
  in
  { with_dist; trees }
