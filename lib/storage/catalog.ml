module E = Storage_error

type kind = Cover | Closure

type entry = { root : int; length : int }

type t = { kind : kind; with_dist : bool; trees : entry array }

let magic = 0x484F5049 (* "HOPI" *)

(* version 2: checksummed page headers, catalog gained kind + arity *)
let version = 2

let cover_trees = 5

let closure_trees = 2

let po = Page.payload_off

(* layout from [po]: [+0..3] magic, [+4..7] version, [+8..11] kind,
   [+12..15] with_dist, [+16..19] n_trees, entries of 8 bytes from [+20] *)

let kind_code = function Cover -> 0 | Closure -> 1

let arity = function Cover -> cover_trees | Closure -> closure_trees

let max_trees = (Page.size - po - 20) / 8

let write pager t =
  if Array.length t.trees <> arity t.kind then invalid_arg "Catalog.write: arity";
  let page = Pager.read pager 0 in
  Page.set_i32 page (po + 0) magic;
  Page.set_i32 page (po + 4) version;
  Page.set_i32 page (po + 8) (kind_code t.kind);
  Page.set_i32 page (po + 12) (if t.with_dist then 1 else 0);
  Page.set_i32 page (po + 16) (Array.length t.trees);
  Array.iteri
    (fun i e ->
      let off = po + 20 + (i * 8) in
      Page.set_i32 page off e.root;
      Page.set_i32 page (off + 4) e.length)
    t.trees;
  Pager.mark_dirty pager 0

let read pager =
  if Pager.n_pages pager < 1 then
    E.raise_error (Truncated "store has no catalog page");
  let page = Pager.read pager 0 in
  let got_magic = Page.get_i32 page (po + 0) in
  if got_magic <> magic then E.raise_error (Bad_magic { got = got_magic; expected = magic });
  let got_version = Page.get_i32 page (po + 4) in
  if got_version <> version then
    E.raise_error (Bad_version { got = got_version; expected = version });
  let kind =
    match Page.get_i32 page (po + 8) with
    | 0 -> Cover
    | 1 -> Closure
    | k -> E.raise_error (Bad_catalog (Printf.sprintf "unknown store kind %d" k))
  in
  let with_dist = Page.get_i32 page (po + 12) <> 0 in
  let n_trees = Page.get_i32 page (po + 16) in
  if n_trees < 1 || n_trees > max_trees then
    E.raise_error (Bad_catalog (Printf.sprintf "implausible tree count %d" n_trees));
  if n_trees <> arity kind then
    E.raise_error
      (Bad_catalog
         (Printf.sprintf "tree count %d does not match the store kind (want %d)"
            n_trees (arity kind)));
  let n_pages = Pager.n_pages pager in
  let trees =
    Array.init n_trees (fun i ->
        let off = po + 20 + (i * 8) in
        let e = { root = Page.get_i32 page off; length = Page.get_i32 page (off + 4) } in
        if e.root < 0 || e.root >= n_pages then
          E.raise_error
            (Bad_catalog (Printf.sprintf "tree %d root %d outside [0,%d)" i e.root n_pages));
        if e.length < 0 then
          E.raise_error (Bad_catalog (Printf.sprintf "tree %d has negative length" i));
        e)
  in
  { kind; with_dist; trees }

let expect kind t =
  if t.kind <> kind then
    E.raise_error
      (Bad_catalog
         (Printf.sprintf "this is a %s store, not a %s store"
            (match t.kind with Cover -> "cover" | Closure -> "closure")
            (match kind with Cover -> "cover" | Closure -> "closure")))
