(** A 2-hop cover persisted in LIN/LOUT tables, with the paper's SQL
    statements expressed as index operations (Sections 3.4 and 5.1).

    Reachability:
    {v SELECT COUNT( * ) FROM LIN, LOUT
       WHERE LOUT.ID = :u AND LIN.ID = :v AND LOUT.OUTID = LIN.INID v}
    is a merge-intersection of two forward-index range scans, plus the
    "simple additional queries" compensating for the omitted self-entries.

    Distance:
    {v SELECT MIN(LOUT.DIST + LIN.DIST) FROM LIN, LOUT WHERE ... v}
    is the same merge keeping the minimum sum. *)

type t

val create : Pager.t -> t
(** The pager must be fresh: page 0 is reserved for the {!Catalog}. *)

val pager : t -> Pager.t

val save : t -> unit
(** Write the catalog and {!Pager.commit}: the save is atomic — a crash at
    any point leaves a file that reopens to either the previous committed
    state or this one.  After [save] the page file can be reopened with
    {!open_pager}. *)

val open_pager : Pager.t -> t
(** Re-attach to a store saved earlier (e.g. a pager from
    {!Pager.open_existing}).  The pager's free-page list is not persisted,
    so pages freed before the save are not reused after reopening (they are
    reclaimed by the next offline rebuild).
    @raise Storage_error.Storage_error on a bad catalog. *)

(** {1 Loading} *)

val load_cover : t -> Hopi_twohop.Cover.t -> unit
(** Store a plain cover (all distances 0), one row-level insert at a
    time.  Prefer {!bulk_load_cover} on a fresh store. *)

val load_dist_cover : t -> Hopi_twohop.Dist_cover.t -> unit

val bulk_load_cover : t -> Hopi_twohop.Cover.t -> unit
(** Store a plain cover by sorting all LIN/LOUT rows up front and handing
    the sorted streams to {!Btree.bulk_load}: every page is written once,
    in key order, with no per-entry descents.  The resulting store answers
    queries identically to {!load_cover} (see the [bulk store matches
    row-at-a-time store] differential in [test/test_storage.ml]), and its
    page layout is deterministic for a given cover.
    @raise Invalid_argument unless the store was freshly {!create}d. *)

val bulk_load_dist_cover : t -> Hopi_twohop.Dist_cover.t -> unit
(** {!bulk_load_cover} for distance-aware covers. *)

(** {1 Row-level maintenance} *)

val add_node : t -> int -> unit

val remove_node : t -> int -> unit
(** Drops the node's rows in both tables (but not rows of other nodes that
    name it as a label — use {!remove_label} for that). *)

val remove_label : t -> int -> unit

val insert_in : t -> node:int -> center:int -> dist:int -> unit

val insert_out : t -> node:int -> center:int -> dist:int -> unit

(** {1 Queries} *)

val mem_node : t -> int -> bool
(** Is this node in the store's node registry?  Nodes are registered by
    {!load_cover}/{!load_dist_cover}/{!add_node} and by label insertion. *)

val with_dist : t -> bool
(** [true] when any stored label entry carries a non-zero distance (the
    DIST column variant of Section 5.1). *)

val iter_nodes : t -> (int -> unit) -> unit
(** Every registered node id, in ascending order — a full scan of the node
    registry.  Used by {!Hopi_serve.Snapshot} to freeze the node set in
    memory at open time. *)

val iter_lin : t -> int -> (center:int -> dist:int -> unit) -> unit
(** [iter_lin t v f] visits the LIN rows of node [v] — its [Lin] label set
    — in ascending [(center, dist)] order (a forward-index range scan).
    The serving layer materialises these scans into cached arrays. *)

val iter_lout : t -> int -> (center:int -> dist:int -> unit) -> unit
(** [iter_lout t u f]: the LOUT rows of node [u], like {!iter_lin}. *)

val iter_in_by_center : t -> int -> (node:int -> dist:int -> unit) -> unit
(** [iter_in_by_center t w f] visits every node that names [w] in its [Lin]
    set, in ascending node order (a backward-index range scan) — the rows
    enumerated when answering a descendants query through center [w]. *)

val iter_out_by_center : t -> int -> (node:int -> dist:int -> unit) -> unit
(** Dual of {!iter_in_by_center} for LOUT (ancestors direction). *)

val connected : t -> int -> int -> bool

val min_distance : t -> int -> int -> int option

val descendants : t -> int -> Hopi_util.Int_hashset.t

val ancestors : t -> int -> Hopi_util.Int_hashset.t

(** {1 Statistics} *)

val n_entries : t -> int
(** Label entries across LIN and LOUT (the paper's cover size |L|). *)

val stored_integers : t -> int
(** Integers kept on pages: 2 per entry per direction ⇒ 4·entries without
    distances, 6·entries with (cf. the paper's 5,159,720 number). *)

val n_nodes : t -> int
