type t =
  | File_not_found of string
  | Io of string
  | Truncated of string
  | Bad_magic of { got : int; expected : int }
  | Bad_version of { got : int; expected : int }
  | Bad_catalog of string
  | Checksum of { page : int }
  | Journal_corrupt of string

exception Storage_error of t

let raise_error e = raise (Storage_error e)

let to_string = function
  | File_not_found p -> Printf.sprintf "file not found: %s" p
  | Io msg -> Printf.sprintf "I/O error: %s" msg
  | Truncated what -> Printf.sprintf "truncated: %s" what
  | Bad_magic { got; expected } ->
    Printf.sprintf "bad magic number 0x%08x (expected 0x%08x)" got expected
  | Bad_version { got; expected } ->
    Printf.sprintf "unsupported format version %d (expected %d)" got expected
  | Bad_catalog msg -> Printf.sprintf "bad catalog: %s" msg
  | Checksum { page } -> Printf.sprintf "checksum mismatch on page %d" page
  | Journal_corrupt msg -> Printf.sprintf "corrupt journal: %s" msg

let () =
  Printexc.register_printer (function
    | Storage_error e -> Some ("Storage_error: " ^ to_string e)
    | _ -> None)
