module Registry = Hopi_obs.Registry
module Histogram = Hopi_obs.Histogram

(* {1 Metrics} *)

let m_runs =
  Registry.counter "hopi_spill_runs_total"
    ~help:"Sorted runs spilled to temp files by external sorters"

let m_bytes =
  Registry.counter "hopi_spill_bytes_total"
    ~help:"Bytes written to spill temp files"

let h_fanin =
  Registry.histogram "hopi_spill_merge_fanin"
    ~help:"Number of runs (in-memory + spilled) merged per sorter"

let m_merge_passes =
  Registry.counter "hopi_spill_merge_passes_total"
    ~help:"Intermediate merge passes folding spilled runs below the fan-in cap"

(* {1 Settings} *)

type settings = { vfs : Vfs.t; dir : string; budget_bytes : int }

let settings ?(vfs = Vfs.real) ?dir ?(budget_bytes = max_int) () =
  let dir = match dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  { vfs; dir; budget_bytes = max 0 budget_bytes }

let temp_prefix = "hopi-spill-"

(* {1 Sorter} *)

type spilled = { path : string; bytes : int }

type sorter = {
  s : settings;
  tag : string;
  mu : Mutex.t;
  mutable seq : int;
  mutable spills : spilled list;
  mutable mem_runs : int array list;
  mutable mem_bytes : int;  (* bytes retained in [mem_runs]; under [mu] *)
  resident : int Atomic.t;  (* in-memory entry bytes across all live runs *)
  peak : int Atomic.t;
  n_entries : int Atomic.t;
  n_runs : int Atomic.t;
  n_spilled : int Atomic.t;
  spilled_bytes : int Atomic.t;
  mutable closed : bool;
}

let sorter s ~tag =
  {
    s;
    tag;
    mu = Mutex.create ();
    seq = 0;
    spills = [];
    mem_runs = [];
    mem_bytes = 0;
    resident = Atomic.make 0;
    peak = Atomic.make 0;
    n_entries = Atomic.make 0;
    n_runs = Atomic.make 0;
    n_spilled = Atomic.make 0;
    spilled_bytes = Atomic.make 0;
    closed = false;
  }

let rec update_peak a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_peak a v

let note_resident t delta =
  let now = Atomic.fetch_and_add t.resident delta + delta in
  if delta > 0 then update_peak t.peak now;
  now

(* Sort the first [len] entries of [buf] ascending and return the
   deduplicated prefix as a fresh array.  Radix-sorting pays off well
   before the budget-check chunk size, so small runs are the only ones
   that take the comparison path. *)
let sort_dedup buf len =
  let a = Array.sub buf 0 len in
  if len < 256 then Array.sort (fun (x : int) y -> compare x y) a
  else Hopi_util.Radix_sort.sort a;
  let m = ref 0 in
  for i = 0 to len - 1 do
    if !m = 0 || a.(i) <> a.(!m - 1) then begin
      a.(!m) <- a.(i);
      incr m
    end
  done;
  if !m = len then a else Array.sub a 0 !m

(* {2 Spill file format: 8-byte little-endian entries, no header} *)

let entry_bytes = 8

let io_chunk = 8192  (* entries per serialized write (64 KiB) *)

let write_run t a =
  (* serialize + write under the sorter mutex: the VFS implementations are
     not domain-safe, and spill throughput is disk-bound anyway *)
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let name = Printf.sprintf "%s%d-%s-%d.run" temp_prefix (Unix.getpid ()) t.tag t.seq in
  t.seq <- t.seq + 1;
  let path = Filename.concat t.s.dir name in
  let file = t.s.vfs.Vfs.open_file path ~create:true in
  Fun.protect ~finally:(fun () -> file.Vfs.close ()) @@ fun () ->
  let n = Array.length a in
  let buf = Bytes.create (min n io_chunk * entry_bytes) in
  let off = ref 0 in
  let i = ref 0 in
  while !i < n do
    let k = min io_chunk (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_le buf (j * entry_bytes) (Int64.of_int a.(!i + j))
    done;
    file.Vfs.write buf ~off:!off ~pos:0 ~len:(k * entry_bytes);
    off := !off + (k * entry_bytes);
    i := !i + k
  done;
  let bytes = n * entry_bytes in
  t.spills <- { path; bytes } :: t.spills;
  Atomic.incr t.n_spilled;
  ignore (Atomic.fetch_and_add t.spilled_bytes bytes);
  Hopi_obs.Counter.incr m_runs;
  Hopi_obs.Counter.add m_bytes bytes

(* {2 Run builders} *)

type run = {
  owner : sorter;
  mutable buf : int array;
  mutable len : int;
  mutable reported : int;  (* bytes of [buf] already counted in [resident] *)
}

let report_chunk = 512  (* entries between resident-budget checks *)

let run t = { owner = t; buf = Array.make 1024 0; len = 0; reported = 0 }

(* Sort, dedup and spill the run's buffer, releasing its resident bytes. *)
let spill r =
  (* entries leaving the buffer here never reach [finish]'s accounting *)
  ignore (Atomic.fetch_and_add r.owner.n_entries r.len);
  let a = sort_dedup r.buf r.len in
  write_run r.owner a;
  ignore (note_resident r.owner (-r.reported));
  r.reported <- 0;
  r.len <- 0;
  if Array.length r.buf > 65536 then r.buf <- Array.make 1024 0

let add r v =
  if r.len = Array.length r.buf then begin
    let nbuf = Array.make (2 * r.len) 0 in
    Array.blit r.buf 0 nbuf 0 r.len;
    r.buf <- nbuf
  end;
  r.buf.(r.len) <- v;
  r.len <- r.len + 1;
  let unreported = (r.len * entry_bytes) - r.reported in
  if unreported >= report_chunk * entry_bytes then begin
    let now = note_resident r.owner unreported in
    r.reported <- r.reported + unreported;
    if now > r.owner.s.budget_bytes && r.len > 0 then spill r
  end

let finish r =
  let t = r.owner in
  ignore (Atomic.fetch_and_add t.n_entries r.len);
  if r.len > 0 then begin
    Atomic.incr t.n_runs;
    let a = sort_dedup r.buf r.len in
    let bytes = Array.length a * entry_bytes in
    let now = note_resident t (bytes - r.reported) in
    r.reported <- bytes;
    if now > t.s.budget_bytes then begin
      write_run t a;
      ignore (note_resident t (-bytes))
    end
    else begin
      Mutex.lock t.mu;
      t.mem_runs <- a :: t.mem_runs;
      t.mem_bytes <- t.mem_bytes + bytes;
      Mutex.unlock t.mu
    end;
    r.reported <- 0;
    r.len <- 0;
    r.buf <- [||]
  end
  else if r.reported > 0 then begin
    ignore (note_resident t (-r.reported));
    r.reported <- 0
  end

(* {2 Merge} *)

type file_src = {
  file : Vfs.file;
  size : int;
  mutable off : int;  (* file offset of the first unread byte *)
  buf : Bytes.t;
  mutable pos : int;  (* next entry offset within [buf] *)
  mutable avail : int;  (* valid bytes in [buf] *)
}

type src = Mem of { arr : int array; mutable idx : int } | File of file_src

let refill g =
  let len = min (Bytes.length g.buf) (g.size - g.off) in
  if len <= 0 then false
  else begin
    let n = Vfs.read_full g.file g.buf ~off:g.off ~pos:0 ~len in
    if n < len then
      Storage_error.raise_error
        (Io (Printf.sprintf "short read from spill file (%d < %d)" n len));
    g.off <- g.off + n;
    g.pos <- 0;
    g.avail <- n;
    true
  end

(* current entry of source [s]; caller guarantees one is available *)
let current = function
  | Mem m -> m.arr.(m.idx)
  | File g -> Int64.to_int (Bytes.get_int64_le g.buf g.pos)

(* advance source [s]; returns false when exhausted *)
let advance = function
  | Mem m ->
    m.idx <- m.idx + 1;
    m.idx < Array.length m.arr
  | File g ->
    g.pos <- g.pos + entry_bytes;
    g.pos < g.avail || refill g

(* Fast path when nothing spilled: concatenate the (already sorted and
   per-run deduplicated) resident runs, radix-sort once, dedup on the fly.
   Linear passes beat the heap's per-entry sift for in-memory data; the
   output is the same canonical stream the heap would produce. *)
let merged_resident mem f =
  let total = List.fold_left (fun acc a -> acc + Array.length a) 0 mem in
  let all = Array.make total 0 in
  let off = ref 0 in
  List.iter
    (fun a ->
      Array.blit a 0 all !off (Array.length a);
      off := !off + Array.length a)
    mem;
  Hopi_util.Radix_sort.sort all;
  let last = ref min_int in
  for i = 0 to total - 1 do
    let v = all.(i) in
    if v <> !last then begin
      f v;
      last := v
    end
  done

let open_spill t sp =
  let file = t.s.vfs.Vfs.open_file sp.path ~create:false in
  let buf = Bytes.create (io_chunk * entry_bytes) in
  { file; size = sp.bytes; off = 0; buf; pos = 0; avail = 0 }

(* Deduplicating k-way merge of [srcs]; calls [f] on every distinct entry
   ascending. *)
let heap_merge srcs f =
  let n = Array.length srcs in
  if n > 0 then begin
    (* binary min-heap of source indexes keyed by their current entry *)
    let heap = Array.init n Fun.id in
    let size = ref n in
    let key i = current srcs.(heap.(i)) in
    let swap i j =
      let x = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- x
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = if l < !size && key l < key i then l else i in
      let m = if r < !size && key r < key m then r else m in
      if m <> i then begin
        swap i m;
        sift_down m
      end
    in
    for i = (n / 2) - 1 downto 0 do
      sift_down i
    done;
    let last = ref min_int in
    while !size > 0 do
      let s = srcs.(heap.(0)) in
      let v = current s in
      if v <> !last then begin
        f v;
        last := v
      end;
      if advance s then sift_down 0
      else begin
        heap.(0) <- heap.(!size - 1);
        decr size;
        sift_down 0
      end
    done
  end

(* How many spilled runs one merge reads concurrently.  A tiny budget can
   produce tens of thousands of runs — far past any fd limit if the merge
   opened them all at once — so the final merge is preceded by
   intermediate passes that each fold [max_fanin] runs into one. *)
let max_fanin = 64

(* One intermediate pass: merge [batch] into a single new temp file,
   remove the inputs, and return the combined run's record. *)
let merge_pass t batch =
  let files = List.map (open_spill t) batch in
  Fun.protect ~finally:(fun () -> List.iter (fun g -> g.file.Vfs.close ()) files)
  @@ fun () ->
  let srcs =
    Array.of_list
      (List.filter_map
         (fun g -> if g.size > 0 && refill g then Some (File g) else None)
         files)
  in
  Mutex.lock t.mu;
  let name =
    Printf.sprintf "%s%d-%s-%d.run" temp_prefix (Unix.getpid ()) t.tag t.seq
  in
  t.seq <- t.seq + 1;
  let path = Filename.concat t.s.dir name in
  Mutex.unlock t.mu;
  let out = t.s.vfs.Vfs.open_file path ~create:true in
  Fun.protect ~finally:(fun () -> out.Vfs.close ()) @@ fun () ->
  let buf = Bytes.create (io_chunk * entry_bytes) in
  let off = ref 0 and n = ref 0 in
  let flush () =
    if !n > 0 then begin
      out.Vfs.write buf ~off:!off ~pos:0 ~len:(!n * entry_bytes);
      off := !off + (!n * entry_bytes);
      n := 0
    end
  in
  heap_merge srcs (fun v ->
      if !n = io_chunk then flush ();
      Bytes.set_int64_le buf (!n * entry_bytes) (Int64.of_int v);
      incr n);
  flush ();
  Hopi_obs.Counter.incr m_merge_passes;
  let combined = { path; bytes = !off } in
  (* the combined run replaces its inputs everywhere — including in
     [t.spills], so an abandoning [close] still removes the right files *)
  Mutex.lock t.mu;
  t.spills <- combined :: List.filter (fun sp -> not (List.memq sp batch)) t.spills;
  Mutex.unlock t.mu;
  List.iter
    (fun sp ->
      try t.s.vfs.Vfs.remove sp.path with Storage_error.Storage_error _ -> ())
    batch;
  combined

let rec take_at_most n = function
  | [] -> ([], [])
  | l when n = 0 -> ([], l)
  | x :: tl ->
    let a, b = take_at_most (n - 1) tl in
    (x :: a, b)

let merged_spilled t f mem spills =
  (* fold runs until one merge can read everything within the fan-in cap *)
  let spills = ref spills in
  while List.length !spills > max_fanin do
    let batch, rest = take_at_most max_fanin !spills in
    spills := rest @ [ merge_pass t batch ]
  done;
  let files = List.map (open_spill t) !spills in
  Fun.protect ~finally:(fun () -> List.iter (fun g -> g.file.Vfs.close ()) files)
  @@ fun () ->
  let srcs =
    List.filter_map
      (fun a -> if Array.length a = 0 then None else Some (Mem { arr = a; idx = 0 }))
      mem
    @ List.filter_map
        (fun g -> if g.size > 0 && refill g then Some (File g) else None)
        files
    |> Array.of_list
  in
  Histogram.observe h_fanin (Array.length srcs);
  heap_merge srcs f

let merged t f =
  Mutex.lock t.mu;
  let mem = t.mem_runs and spills = List.rev t.spills in
  Mutex.unlock t.mu;
  if spills = [] then begin
    let runs = List.filter (fun a -> Array.length a > 0) mem in
    Histogram.observe h_fanin (List.length runs);
    if runs <> [] then merged_resident runs f
  end
  else merged_spilled t f mem spills

(* {2 Lifecycle and stats} *)

let close t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun sp ->
        try t.s.vfs.Vfs.remove sp.path
        with Storage_error.Storage_error _ -> ())
      t.spills;
    t.spills <- [];
    t.mem_runs <- [];
    ignore (note_resident t (-t.mem_bytes));
    t.mem_bytes <- 0
  end

type stats = {
  runs : int;
  spilled_runs : int;
  spilled_bytes : int;
  entries : int;
  peak_resident_bytes : int;
}

let stats t =
  {
    runs = Atomic.get t.n_runs;
    spilled_runs = Atomic.get t.n_spilled;
    spilled_bytes = Atomic.get t.spilled_bytes;
    entries = Atomic.get t.n_entries;
    peak_resident_bytes = Atomic.get t.peak;
  }

(* {1 Orphan cleanup} *)

let is_temp name =
  String.length name >= String.length temp_prefix
  && String.sub name 0 (String.length temp_prefix) = temp_prefix

let cleanup_dir ?(vfs = Vfs.real) dir =
  List.fold_left
    (fun n name ->
      if is_temp name then begin
        (try vfs.Vfs.remove (Filename.concat dir name)
         with Storage_error.Storage_error _ -> ());
        n + 1
      end
      else n)
    0 (vfs.Vfs.list_dir dir)
