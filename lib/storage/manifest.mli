(** The generation manifest: the one-page commit point of a generational
    store family.

    A live index directory holds a family of immutable store files — the
    base file (generation 0) plus [base.gen<k>] siblings published by
    later flips — and this manifest, [base.gens], which records which
    member is being served:

    - [live]: the generation queries must be answered from;
    - [previous]: the generation [live] flipped away from, retained as the
      rollback target;
    - [tip]: the highest generation ever published (the next flip writes
      [tip + 1]).

    The manifest is itself a single-page {!Pager} file, so updating it
    inherits the journaled-commit discipline: a crash at any point of
    {!publish} or {!rollback} recovers (on the next {!recover}) to a
    manifest naming either the old or the new generation in full — never a
    mixture, because store files are only ever written {e before} the
    manifest commit that makes them reachable.  The {!Vfs} layer has no
    atomic rename, and this module is why none is needed.

    All functions take [?vfs] (default {!Vfs.real}) so the fault-injection
    harness can crash them at every operation. *)

type t = { live : int; previous : int; tip : int }

val path : base:string -> string
(** [path ~base] is the manifest file of the family rooted at the store
    path [base] (currently [base ^ ".gens"]). *)

val gen_path : base:string -> int -> string
(** The store file of generation [k]: [base] itself for [k = 0],
    [base.gen<k>] otherwise. *)

val exists : ?vfs:Vfs.t -> base:string -> unit -> bool

val read : ?vfs:Vfs.t -> base:string -> unit -> t
(** Read the committed manifest (rolling back a hot journal first).
    @raise Storage_error.Storage_error when missing or corrupt. *)

val read_file : ?vfs:Vfs.t -> ?fsync:bool -> string -> t
(** {!read} addressed by the manifest file itself rather than the family
    base — used by [hopi verify-store] when pointed at a [.gens] file. *)

val commit : ?vfs:Vfs.t -> ?fsync:bool -> base:string -> t -> unit
(** Atomically replace the manifest contents (creating the file on first
    use).  Validates the triple ([0 <= live, previous <= tip]). *)

val publish :
  ?vfs:Vfs.t ->
  ?fsync:bool ->
  ?pool_pages:int ->
  base:string ->
  load:(Pager.t -> unit) ->
  unit ->
  t
(** Publish generation [tip + 1]: create its store file on a fresh pager,
    run [load] to fill and save it (e.g. [Cover_store.load_cover] +
    [save]), then commit a manifest with [live = tip + 1] and [previous]
    set to the old live generation.  The manifest commit is the atomic
    flip point; until it completes, a crash leaves the old manifest
    intact and at worst a stray half-written [tip + 1] file that
    {!recover} deletes. *)

val rollback : ?vfs:Vfs.t -> ?fsync:bool -> base:string -> unit -> t
(** Swap [live] and [previous] (a no-op when they are equal): serving
    returns to the pre-flip generation.  [tip] is untouched, so the next
    {!publish} still writes [tip + 1] — rolling back never reuses a
    generation number. *)

val recover : ?vfs:Vfs.t -> base:string -> unit -> t option
(** Crash recovery at open time.  Rolls back a hot manifest journal,
    deletes a stray [tip + 1] store file left by an interrupted
    {!publish}, and returns the committed manifest.  Returns [None] when
    the manifest is absent — including the one legitimate torn state, a
    crash inside the very first {!commit} before any page was durable (the
    partial file is removed); a manifest that ever completed a commit is
    journal-protected and re-raises its corruption instead. *)
