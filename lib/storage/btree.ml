type key = int * int * int

let min_i32 = Int32.to_int Int32.min_int

let max_i32 = Int32.to_int Int32.max_int

(* Page layouts, all offsets relative to [Page.payload_off] (the pager's
   checksum header occupies the bytes below it; see .mli):
   leaf:     [+0]=0 [+2..3]=nkeys [+4..7]=next_leaf(i32, -1 none); entries
             of 12 bytes (3 x i32) from offset +8; capacity 339
   internal: [+0]=1 [+2..3]=nkeys [+4..7]=child0(i32); slots of 16 bytes
             (key 12 + right child 4) from offset +8; capacity 254 *)

let po = Page.payload_off

let leaf_header = po + 8

let leaf_entry = 12

(* one slot is reserved so a node may hold capacity+1 entries for the
   instant between insertion and split *)
let leaf_capacity = ((Page.size - leaf_header) / leaf_entry) - 1

let int_header = po + 8

let int_slot = 16

let int_capacity = ((Page.size - int_header) / int_slot) - 1

type t = { pager : Pager.t; mutable root : int; mutable length : int }

let is_leaf page = Page.get_u8 page po = 0

let nkeys page = Page.get_u16 page (po + 2)

let set_nkeys page n = Page.set_u16 page (po + 2) n

let next_leaf page = Page.get_i32 page (po + 4)

let set_next_leaf page v = Page.set_i32 page (po + 4) v

let leaf_key page i =
  let off = leaf_header + (i * leaf_entry) in
  (Page.get_i32 page off, Page.get_i32 page (off + 4), Page.get_i32 page (off + 8))

let set_leaf_key page i (a, b, c) =
  let off = leaf_header + (i * leaf_entry) in
  Page.set_i32 page off a;
  Page.set_i32 page (off + 4) b;
  Page.set_i32 page (off + 8) c

let int_child page i =
  if i = 0 then Page.get_i32 page (po + 4)
  else Page.get_i32 page (int_header + ((i - 1) * int_slot) + 12)

let set_int_child page i v =
  if i = 0 then Page.set_i32 page (po + 4) v
  else Page.set_i32 page (int_header + ((i - 1) * int_slot) + 12) v

let int_key page i =
  let off = int_header + (i * int_slot) in
  (Page.get_i32 page off, Page.get_i32 page (off + 4), Page.get_i32 page (off + 8))

let set_int_key page i (a, b, c) =
  let off = int_header + (i * int_slot) in
  Page.set_i32 page off a;
  Page.set_i32 page (off + 4) b;
  Page.set_i32 page (off + 8) c

let key_compare (a1, b1, c1) (a2, b2, c2) =
  let c = compare (a1 : int) a2 in
  if c <> 0 then c
  else
    let c = compare (b1 : int) b2 in
    if c <> 0 then c else compare (c1 : int) c2

let create pager =
  let root = Pager.alloc pager in
  let page = Pager.read pager root in
  Page.set_u8 page po 0;
  set_nkeys page 0;
  set_next_leaf page (-1);
  Pager.mark_dirty pager root;
  { pager; root; length = 0 }

let root t = t.root

let of_root pager ~root ~length = { pager; root; length }

(* First index i in [0,n) with key(i) >= k, else n. *)
let lower_bound get page n k =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_compare (get page mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to descend into for key [k]: number of separators <= k. *)
let descend_index page k =
  let n = nkeys page in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_compare (int_key page mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf t pid k =
  let page = Pager.read t.pager pid in
  if is_leaf page then pid
  else find_leaf t (int_child page (descend_index page k)) k

let mem t k =
  let pid = find_leaf t t.root k in
  let page = Pager.read t.pager pid in
  let n = nkeys page in
  let i = lower_bound leaf_key page n k in
  i < n && key_compare (leaf_key page i) k = 0

(* {1 Insertion} *)

type split = No_split | Split of key * int  (* separator, new right page *)

let leaf_insert t pid k =
  let page = Pager.read t.pager pid in
  let n = nkeys page in
  let i = lower_bound leaf_key page n k in
  if i < n && key_compare (leaf_key page i) k = 0 then (false, No_split)
  else begin
    (* shift right *)
    for j = n downto i + 1 do
      set_leaf_key page j (leaf_key page (j - 1))
    done;
    set_leaf_key page i k;
    set_nkeys page (n + 1);
    Pager.mark_dirty t.pager pid;
    if n + 1 <= leaf_capacity then (true, No_split)
    else begin
      (* split in half; right gets the upper part *)
      let total = n + 1 in
      let left_n = total / 2 in
      let right_n = total - left_n in
      let page = Pager.pin t.pager pid in
      let rid = Pager.alloc t.pager in
      let right = Pager.pin t.pager rid in
      Page.set_u8 right po 0;
      set_nkeys right right_n;
      set_next_leaf right (next_leaf page);
      for j = 0 to right_n - 1 do
        set_leaf_key right j (leaf_key page (left_n + j))
      done;
      set_nkeys page left_n;
      set_next_leaf page rid;
      Pager.mark_dirty t.pager pid;
      Pager.mark_dirty t.pager rid;
      let sep = leaf_key right 0 in
      Pager.unpin t.pager pid;
      Pager.unpin t.pager rid;
      (true, Split (sep, rid))
    end
  end

let internal_insert_slot t pid sep rid =
  let page = Pager.read t.pager pid in
  let n = nkeys page in
  let i = lower_bound int_key page n sep in
  for j = n downto i + 1 do
    set_int_key page j (int_key page (j - 1));
    set_int_child page (j + 1) (int_child page j)
  done;
  set_int_key page i sep;
  set_int_child page (i + 1) rid;
  set_nkeys page (n + 1);
  Pager.mark_dirty t.pager pid;
  if n + 1 <= int_capacity then No_split
  else begin
    (* split: middle key moves up *)
    let total = n + 1 in
    let mid = total / 2 in
    let page = Pager.pin t.pager pid in
    let up = int_key page mid in
    let new_id = Pager.alloc t.pager in
    let right = Pager.pin t.pager new_id in
    Page.set_u8 right po 1;
    let right_n = total - mid - 1 in
    set_nkeys right right_n;
    set_int_child right 0 (int_child page (mid + 1));
    for j = 0 to right_n - 1 do
      set_int_key right j (int_key page (mid + 1 + j));
      set_int_child right (j + 1) (int_child page (mid + 2 + j))
    done;
    set_nkeys page mid;
    Pager.mark_dirty t.pager pid;
    Pager.mark_dirty t.pager new_id;
    Pager.unpin t.pager pid;
    Pager.unpin t.pager new_id;
    Split (up, new_id)
  end

let rec insert_rec t pid k =
  let page = Pager.read t.pager pid in
  if is_leaf page then leaf_insert t pid k
  else begin
    let ci = descend_index page k in
    let child = int_child page ci in
    let added, split = insert_rec t child k in
    match split with
    | No_split -> (added, No_split)
    | Split (sep, rid) -> (added, internal_insert_slot t pid sep rid)
  end

let insert t k =
  let (a, b, c) = k in
  let check v =
    if v < min_i32 || v > max_i32 then
      invalid_arg (Printf.sprintf "Btree.insert: component %d out of 32-bit range" v)
  in
  check a; check b; check c;
  let added, split = insert_rec t t.root k in
  (match split with
   | No_split -> ()
   | Split (sep, rid) ->
     let new_root = Pager.alloc t.pager in
     let page = Pager.read t.pager new_root in
     Page.set_u8 page po 1;
     set_nkeys page 1;
     set_int_child page 0 t.root;
     set_int_key page 0 sep;
     set_int_child page 1 rid;
     Pager.mark_dirty t.pager new_root;
     t.root <- new_root);
  if added then t.length <- t.length + 1;
  added

(* {1 Deletion with rebalancing}

   A node is considered underfull below a quarter of its capacity; an
   underfull child merges with a sibling when the combined content fits,
   and borrows one slot otherwise.  The root collapses when an internal
   root runs out of keys; freed pages return to the pager's free list. *)

let min_leaf_keys = leaf_capacity / 4

let min_int_keys = int_capacity / 4

(* Merge or borrow between children [ci] and [ci+1] of internal node
   [parent_id]; the separator between them is parent key [ci]. *)
let rebalance_children t parent_id ci =
  let parent = Pager.pin t.pager parent_id in
  let left_id = int_child parent ci and right_id = int_child parent (ci + 1) in
  let left = Pager.pin t.pager left_id and right = Pager.pin t.pager right_id in
  let finish () =
    Pager.mark_dirty t.pager parent_id;
    Pager.mark_dirty t.pager left_id;
    Pager.mark_dirty t.pager right_id;
    Pager.unpin t.pager parent_id;
    Pager.unpin t.pager left_id;
    Pager.unpin t.pager right_id
  in
  let remove_separator () =
    (* drop parent key [ci] and child pointer [ci+1] *)
    let pn = nkeys parent in
    for j = ci to pn - 2 do
      set_int_key parent j (int_key parent (j + 1));
      set_int_child parent (j + 1) (int_child parent (j + 2))
    done;
    set_nkeys parent (pn - 1)
  in
  if is_leaf left then begin
    let nl = nkeys left and nr = nkeys right in
    if nl + nr <= leaf_capacity then begin
      (* merge right into left *)
      for j = 0 to nr - 1 do
        set_leaf_key left (nl + j) (leaf_key right j)
      done;
      set_nkeys left (nl + nr);
      set_next_leaf left (next_leaf right);
      remove_separator ();
      finish ();
      Pager.free t.pager right_id
    end
    else if nl < nr then begin
      (* borrow the right sibling's first key *)
      set_leaf_key left nl (leaf_key right 0);
      set_nkeys left (nl + 1);
      for j = 0 to nr - 2 do
        set_leaf_key right j (leaf_key right (j + 1))
      done;
      set_nkeys right (nr - 1);
      set_int_key parent ci (leaf_key right 0);
      finish ()
    end
    else begin
      (* borrow the left sibling's last key *)
      for j = nr downto 1 do
        set_leaf_key right j (leaf_key right (j - 1))
      done;
      set_leaf_key right 0 (leaf_key left (nl - 1));
      set_nkeys right (nr + 1);
      set_nkeys left (nl - 1);
      set_int_key parent ci (leaf_key right 0);
      finish ()
    end
  end
  else begin
    let nl = nkeys left and nr = nkeys right in
    let sep = int_key parent ci in
    if nl + 1 + nr <= int_capacity then begin
      (* merge: left keys ++ separator ++ right keys *)
      set_int_key left nl sep;
      set_int_child left (nl + 1) (int_child right 0);
      for j = 0 to nr - 1 do
        set_int_key left (nl + 1 + j) (int_key right j);
        set_int_child left (nl + 2 + j) (int_child right (j + 1))
      done;
      set_nkeys left (nl + 1 + nr);
      remove_separator ();
      finish ();
      Pager.free t.pager right_id
    end
    else if nl < nr then begin
      (* rotate left: separator comes down to left, right key 0 goes up *)
      set_int_key left nl sep;
      set_int_child left (nl + 1) (int_child right 0);
      set_nkeys left (nl + 1);
      set_int_key parent ci (int_key right 0);
      set_int_child right 0 (int_child right 1);
      for j = 0 to nr - 2 do
        set_int_key right j (int_key right (j + 1));
        set_int_child right (j + 1) (int_child right (j + 2))
      done;
      set_nkeys right (nr - 1);
      finish ()
    end
    else begin
      (* rotate right: separator comes down to right, left's last key goes up *)
      for j = nr downto 1 do
        set_int_key right j (int_key right (j - 1));
        set_int_child right (j + 1) (int_child right j)
      done;
      set_int_child right 1 (int_child right 0);
      set_int_key right 0 sep;
      set_int_child right 0 (int_child left nl);
      set_nkeys right (nr + 1);
      set_int_key parent ci (int_key left (nl - 1));
      set_nkeys left (nl - 1);
      finish ()
    end
  end

(* returns (removed, child is underfull) *)
let rec delete_rec t pid k =
  let page = Pager.read t.pager pid in
  if is_leaf page then begin
    let n = nkeys page in
    let i = lower_bound leaf_key page n k in
    if i < n && key_compare (leaf_key page i) k = 0 then begin
      for j = i to n - 2 do
        set_leaf_key page j (leaf_key page (j + 1))
      done;
      set_nkeys page (n - 1);
      Pager.mark_dirty t.pager pid;
      (true, n - 1 < min_leaf_keys)
    end
    else (false, false)
  end
  else begin
    let ci = descend_index page k in
    let child = int_child page ci in
    let removed, under = delete_rec t child k in
    if under then begin
      let n = nkeys (Pager.read t.pager pid) in
      (* rebalance child [ci] with a sibling: prefer the left one *)
      if ci > 0 then rebalance_children t pid (ci - 1)
      else if n > 0 then rebalance_children t pid 0;
      let page = Pager.read t.pager pid in
      (removed, nkeys page < min_int_keys)
    end
    else (removed, false)
  end

let delete t k =
  let removed, _ = delete_rec t t.root k in
  if removed then begin
    t.length <- t.length - 1;
    (* collapse an empty internal root *)
    let page = Pager.read t.pager t.root in
    if (not (is_leaf page)) && nkeys page = 0 then begin
      let old = t.root in
      t.root <- int_child page 0;
      Pager.free t.pager old
    end
  end;
  removed

let length t = t.length

(* {1 Bulk loading}

   Bottom-up construction from a strictly ascending key stream: leaves are
   filled left-to-right to capacity and chained, then internal levels are
   stitched over the first keys of their children (the same separator
   convention leaf splits use), up to a single root.  No per-key descent,
   no splits, every page written exactly once. *)

let m_bulk_pages =
  Hopi_obs.Registry.counter "hopi_storage_btree_bulk_pages_total"
    ~help:"Pages written by bottom-up B+-tree bulk loads"

let m_bulk_loads =
  Hopi_obs.Registry.counter "hopi_storage_btree_bulk_loads_total"
    ~help:"Bottom-up B+-tree bulk loads"

let bulk_load pager ~next =
  let pages = ref 0 in
  let alloc () =
    incr pages;
    Pager.alloc pager
  in
  let pending = ref (next ()) in
  let length = ref 0 in
  let last = ref None in
  (* consume the head of the stream, validating range and order *)
  let take () =
    match !pending with
    | None -> None
    | Some ((a, b, c) as k) ->
      let check v =
        if v < min_i32 || v > max_i32 then
          invalid_arg
            (Printf.sprintf "Btree.bulk_load: component %d out of 32-bit range" v)
      in
      check a;
      check b;
      check c;
      (match !last with
      | Some p when key_compare p k >= 0 ->
        invalid_arg "Btree.bulk_load: stream not strictly ascending"
      | _ -> ());
      last := Some k;
      pending := next ();
      incr length;
      Some k
  in
  (* leaf level: (first key, page id) per leaf, in key order *)
  let leaves = Hopi_util.Dyn_array.create () in
  let first_pid = alloc () in
  let rec fill pid =
    let page = Pager.pin pager pid in
    Page.set_u8 page po 0;
    let n = ref 0 in
    let continue_ = ref true in
    while !continue_ && !n < leaf_capacity do
      match take () with
      | None -> continue_ := false
      | Some k ->
        if !n = 0 then Hopi_util.Dyn_array.push leaves (k, pid);
        set_leaf_key page !n k;
        incr n
    done;
    set_nkeys page !n;
    if !pending = None then begin
      set_next_leaf page (-1);
      Pager.mark_dirty pager pid;
      Pager.unpin pager pid
    end
    else begin
      let rid = alloc () in
      set_next_leaf page rid;
      Pager.mark_dirty pager pid;
      Pager.unpin pager pid;
      fill rid
    end
  in
  fill first_pid;
  (* internal levels: group up to [int_capacity + 1] children per node,
     sizes balanced so no node is left with a single child *)
  let build_level children =
    let n = Array.length children in
    let max_fanout = int_capacity + 1 in
    let k = (n + max_fanout - 1) / max_fanout in
    let base = n / k and extra = n mod k in
    let out = Array.make k children.(0) in
    let idx = ref 0 in
    for g = 0 to k - 1 do
      let sz = base + if g < extra then 1 else 0 in
      let pid = alloc () in
      let page = Pager.pin pager pid in
      Page.set_u8 page po 1;
      set_nkeys page (sz - 1);
      let fk, cpid = children.(!idx) in
      set_int_child page 0 cpid;
      for j = 1 to sz - 1 do
        let sk, spid = children.(!idx + j) in
        set_int_key page (j - 1) sk;
        set_int_child page j spid
      done;
      Pager.mark_dirty pager pid;
      Pager.unpin pager pid;
      out.(g) <- (fk, pid);
      idx := !idx + sz
    done;
    out
  in
  let rec up children =
    if Array.length children = 1 then snd children.(0) else up (build_level children)
  in
  let root =
    if Hopi_util.Dyn_array.length leaves <= 1 then first_pid
    else
      up
        (Array.init
           (Hopi_util.Dyn_array.length leaves)
           (Hopi_util.Dyn_array.get leaves))
  in
  Hopi_obs.Counter.add m_bulk_pages !pages;
  Hopi_obs.Counter.incr m_bulk_loads;
  { pager; root; length = !length }

(* {1 Scans} *)

let iter_from t lo f =
  let pid = ref (find_leaf t t.root lo) in
  let continue_ = ref true in
  let started = ref false in
  while !continue_ && !pid >= 0 do
    let page = Pager.read t.pager !pid in
    let n = nkeys page in
    let start = if !started then 0 else lower_bound leaf_key page n lo in
    started := true;
    let i = ref start in
    while !continue_ && !i < n do
      if not (f (leaf_key page !i)) then continue_ := false;
      incr i
    done;
    if !continue_ then pid := next_leaf page
  done

let iter_prefix1 t a f =
  iter_from t (a, min_i32, min_i32) (fun ((a', _, _) as k) ->
      if a' = a then begin
        f k;
        true
      end
      else false)

let iter_prefix2 t a b f =
  iter_from t (a, b, min_i32) (fun ((a', b', _) as k) ->
      if a' = a && b' = b then begin
        f k;
        true
      end
      else false)

let iter_all t f =
  iter_from t (min_i32, min_i32, min_i32) (fun k ->
      f k;
      true)
