module Crc32 = Hopi_util.Crc32

let magic = 0x484A524E (* "HJRN" *)

let version = 1

(* header: [0..3] magic, [4..7] version, [8..11] committed page count,
   [12..15] CRC-32 of bytes [0..11] *)
let header_size = 16

(* record: [0..3] page id, [4..7] CRC-32 of id+image, [8..] page image *)
let record_size = 8 + Page.size

let create file ~n_pages =
  let h = Bytes.make header_size '\000' in
  Bytes.set_int32_le h 0 (Int32.of_int magic);
  Bytes.set_int32_le h 4 (Int32.of_int version);
  Bytes.set_int32_le h 8 (Int32.of_int n_pages);
  Bytes.set_int32_le h 12 (Crc32.digest h ~pos:0 ~len:12);
  file.Vfs.write h ~off:0 ~pos:0 ~len:header_size

let record_crc buf =
  (* skip the CRC field itself (bytes 4..7) *)
  Crc32.finish
    (Crc32.update (Crc32.update Crc32.init buf ~pos:0 ~len:4) buf ~pos:8
       ~len:Page.size)

let append file ~off ~page_id page =
  let r = Bytes.create record_size in
  Bytes.set_int32_le r 0 (Int32.of_int page_id);
  Bytes.blit page 0 r 8 Page.size;
  Bytes.set_int32_le r 4 (record_crc r);
  file.Vfs.write r ~off ~pos:0 ~len:record_size

(* {1 Recovery} *)

let read_header file =
  let h = Bytes.make header_size '\000' in
  if Vfs.read_full file h ~off:0 ~pos:0 ~len:header_size < header_size then None
  else if Bytes.get_int32_le h 12 <> Crc32.digest h ~pos:0 ~len:12 then None
  else if Int32.to_int (Bytes.get_int32_le h 0) <> magic then None
  else if Int32.to_int (Bytes.get_int32_le h 4) <> version then None
  else Some (Int32.to_int (Bytes.get_int32_le h 8))

let rollback ~vfs ~path ~journal_path ~fsync =
  if not (vfs.Vfs.exists journal_path) then `No_journal
  else begin
    let j = vfs.Vfs.open_file journal_path ~create:false in
    let result =
      match read_header j with
      | None ->
        (* the header never became durable, so no page of the main file was
           ever overwritten: the journal is garbage from a crash during its
           own creation *)
        `Discarded
      | Some n_pages when not (vfs.Vfs.exists path) ->
        (* a journal for a store that never materialised *)
        ignore n_pages;
        `Discarded
      | Some n_pages ->
        let main = vfs.Vfs.open_file path ~create:false in
        let r = Bytes.create record_size in
        let restored = ref 0 in
        let off = ref header_size in
        let continue_ = ref true in
        while !continue_ do
          if Vfs.read_full j r ~off:!off ~pos:0 ~len:record_size < record_size then
            continue_ := false (* torn tail: its page was never overwritten *)
          else begin
            let id = Int32.to_int (Bytes.get_int32_le r 0) in
            if Bytes.get_int32_le r 4 <> record_crc r || id < 0 || id >= n_pages
            then continue_ := false
            else begin
              main.Vfs.write r ~off:(id * Page.size) ~pos:8 ~len:Page.size;
              incr restored;
              off := !off + record_size
            end
          end
        done;
        main.Vfs.truncate (n_pages * Page.size);
        if fsync then main.Vfs.sync ();
        main.Vfs.close ();
        `Rolled_back !restored
    in
    j.Vfs.close ();
    vfs.Vfs.remove journal_path;
    result
  end
