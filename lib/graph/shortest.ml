type t = (int, (int, int) Hashtbl.t) Hashtbl.t

let all_pairs g =
  let t = Hashtbl.create (Digraph.n_nodes g) in
  Digraph.iter_nodes g (fun v -> Hashtbl.replace t v (Traversal.bfs_distances g v));
  t

let dist t u v =
  match Hashtbl.find_opt t u with
  | None -> None
  | Some d -> Hashtbl.find_opt d v

let iter_from t u f =
  match Hashtbl.find_opt t u with
  | None -> ()
  | Some d -> Hashtbl.iter f d
