type t = { scc : Scc.t; dag : Digraph.t }

let compute g =
  let scc = Scc.compute g in
  let dag = Digraph.create ~initial:scc.Scc.count () in
  for c = 0 to scc.Scc.count - 1 do
    Digraph.add_node dag c
  done;
  Digraph.iter_edges g (fun u v ->
      let cu = Scc.component_of scc u and cv = Scc.component_of scc v in
      if cu <> cv then Digraph.add_edge dag cu cv);
  { scc; dag }
