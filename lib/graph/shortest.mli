(** Unweighted shortest-path distances.

    The distance-aware cover (Section 5 of the paper) needs all-pairs
    shortest distances within a partition: a center [w] may only cover
    [(u,v)] when [d(u,w) + d(w,v) = d(u,v)]. *)

type t

val all_pairs : Digraph.t -> t
(** BFS from every node; O(V·(V+E)). *)

val dist : t -> int -> int -> int option
(** [dist t u v] is the length of a shortest path, [Some 0] iff [u = v]
    (and [u] is a node), [None] if unreachable. *)

val iter_from : t -> int -> (int -> int -> unit) -> unit
(** [iter_from t u f] calls [f v d] for every [v] reachable from [u]. *)
