(** Reflexive and transitive closure [C(G) = (V, T(G))].

    The closure is the input of the 2-hop-cover computation (Section 3.2 of
    the paper).  It is computed over the SCC condensation with bitset
    successor sets, so cyclic graphs are handled and the cost is
    O(#components²/w + |T|) rather than repeated BFS.

    Connection counts always include the reflexive pairs [(v,v)], matching
    the paper's definition of [C(G)]. *)

type t

val compute : Digraph.t -> t

val compute_bounded : Digraph.t -> max_connections:int -> t option
(** [None] when |T(G)| would exceed the budget — used by the closure-aware
    partitioner to grow partitions until the closure fills the configured
    memory (Section 4.3). *)

val count_connections : Digraph.t -> int
(** |T(G)| including reflexive pairs, without materialising per-node sets. *)

val n_connections : t -> int

val n_nodes : t -> int

val mem : t -> int -> int -> bool
(** [mem c u v] iff [u ⇝ v] (reflexively: [mem c v v] for any node [v]). *)

val succs : t -> int -> Hopi_util.Int_set.t
(** Descendants of a node, including itself ([Cout] in the paper). *)

val preds : t -> int -> Hopi_util.Int_set.t
(** Ancestors of a node, including itself ([Cin] in the paper). *)

val iter_nodes : t -> (int -> unit) -> unit

val iter_pairs : t -> (int -> int -> unit) -> unit
(** All connections, including reflexive ones. *)

val nodes : t -> int list

val restrict : t -> keep:(int -> bool) -> t
(** Closure of the subgraph induced on [keep] *assuming* [keep] is
    closed under "is on a path between kept nodes" — used for tests. *)
