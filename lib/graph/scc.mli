(** Strongly connected components (Kosaraju's algorithm, iterative). *)

type t = {
  component : (int, int) Hashtbl.t;  (** node -> component id (0-based) *)
  members : int array array;  (** component id -> member nodes *)
  count : int;
}

val compute : Digraph.t -> t

val component_of : t -> int -> int
(** @raise Not_found for nodes not in the graph. *)
