module Ihs = Hopi_util.Int_hashset

type adj = { out : Ihs.t; inc : Ihs.t }

type t = { nodes : (int, adj) Hashtbl.t; mutable n_edges : int }

let create ?(initial = 16) () = { nodes = Hashtbl.create initial; n_edges = 0 }

let adj_of t v =
  match Hashtbl.find_opt t.nodes v with
  | Some a -> a
  | None ->
    let a = { out = Ihs.create ~initial:4 (); inc = Ihs.create ~initial:4 () } in
    Hashtbl.add t.nodes v a;
    a

let add_node t v = ignore (adj_of t v)

let mem_node t v = Hashtbl.mem t.nodes v

let mem_edge t u v =
  match Hashtbl.find_opt t.nodes u with
  | None -> false
  | Some a -> Ihs.mem a.out v

let add_edge t u v =
  let au = adj_of t u in
  if not (Ihs.mem au.out v) then begin
    let av = adj_of t v in
    Ihs.add au.out v;
    Ihs.add av.inc u;
    t.n_edges <- t.n_edges + 1
  end

let remove_edge t u v =
  match Hashtbl.find_opt t.nodes u with
  | None -> ()
  | Some au ->
    if Ihs.mem au.out v then begin
      Ihs.remove au.out v;
      (match Hashtbl.find_opt t.nodes v with
       | Some av -> Ihs.remove av.inc u
       | None -> ());
      t.n_edges <- t.n_edges - 1
    end

let remove_node t v =
  match Hashtbl.find_opt t.nodes v with
  | None -> ()
  | Some a ->
    Ihs.iter (fun w -> remove_edge t v w) (Ihs.copy a.out);
    Ihs.iter (fun u -> remove_edge t u v) (Ihs.copy a.inc);
    Hashtbl.remove t.nodes v

let n_nodes t = Hashtbl.length t.nodes

let n_edges t = t.n_edges

let succ t v =
  match Hashtbl.find_opt t.nodes v with
  | None -> []
  | Some a -> Ihs.to_list a.out

let pred t v =
  match Hashtbl.find_opt t.nodes v with
  | None -> []
  | Some a -> Ihs.to_list a.inc

let iter_succ t v f =
  match Hashtbl.find_opt t.nodes v with
  | None -> ()
  | Some a -> Ihs.iter f a.out

let iter_pred t v f =
  match Hashtbl.find_opt t.nodes v with
  | None -> ()
  | Some a -> Ihs.iter f a.inc

let out_degree t v =
  match Hashtbl.find_opt t.nodes v with
  | None -> 0
  | Some a -> Ihs.cardinal a.out

let in_degree t v =
  match Hashtbl.find_opt t.nodes v with
  | None -> 0
  | Some a -> Ihs.cardinal a.inc

let iter_nodes t f = Hashtbl.iter (fun v _ -> f v) t.nodes

let iter_edges t f =
  Hashtbl.iter (fun u a -> Ihs.iter (fun v -> f u v) a.out) t.nodes

let nodes t =
  let acc = ref [] in
  iter_nodes t (fun v -> acc := v :: !acc);
  !acc

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  !acc

let copy t =
  let g = create ~initial:(n_nodes t) () in
  iter_nodes t (fun v -> add_node g v);
  iter_edges t (fun u v -> add_edge g u v);
  g

let induced_subgraph t keep =
  let g = create ~initial:(Ihs.cardinal keep) () in
  Ihs.iter (fun v -> if mem_node t v then add_node g v) keep;
  Ihs.iter
    (fun u -> iter_succ t u (fun v -> if Ihs.mem keep v then add_edge g u v))
    keep;
  g

let transpose t =
  let g = create ~initial:(n_nodes t) () in
  iter_nodes t (fun v -> add_node g v);
  iter_edges t (fun u v -> add_edge g v u);
  g

let pp ppf t =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges@," (n_nodes t) (n_edges t);
  let ns = List.sort compare (nodes t) in
  List.iter
    (fun v ->
      let ss = List.sort compare (succ t v) in
      if ss <> [] then
        Format.fprintf ppf "%d -> %a@," v
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             Format.pp_print_int)
          ss)
    ns;
  Format.fprintf ppf "@]"
