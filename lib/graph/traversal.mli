(** Graph traversals: BFS/DFS reachability, used throughout for oracles,
    separation tests and partial-closure recomputation. *)

val reachable : Digraph.t -> int list -> Hopi_util.Int_hashset.t
(** Multi-source forward reachability (sources included). *)

val reachable_backward : Digraph.t -> int list -> Hopi_util.Int_hashset.t
(** Multi-source backward reachability (sources included). *)

val reachable_avoiding :
  Digraph.t -> avoid:(int -> bool) -> int list -> Hopi_util.Int_hashset.t
(** Forward reachability that never enters a node satisfying [avoid];
    sources satisfying [avoid] are skipped. *)

val bfs_distances : Digraph.t -> int -> (int, int) Hashtbl.t
(** Unweighted shortest-path distances from one source (distance 0 to
    itself).  Only reachable nodes appear in the table. *)

val bfs_distances_bounded : Digraph.t -> int -> max_depth:int -> (int, int) Hashtbl.t
(** Like {!bfs_distances} but stops expanding beyond [max_depth] hops. *)

val is_reachable : Digraph.t -> int -> int -> bool
(** BFS oracle [u ⇝ v] (true when [u = v] and [u] is a node). *)

val topological_order : Digraph.t -> int list option
(** Kahn's algorithm; [None] if the graph has a cycle. *)

val dfs_postorder : Digraph.t -> int list
(** Postorder over all nodes (iterative, any component order). *)
