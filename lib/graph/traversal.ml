module Ihs = Hopi_util.Int_hashset

let reachable_generic iter_next g sources ~avoid =
  let seen = Ihs.create () in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if Digraph.mem_node g s && (not (avoid s)) && not (Ihs.mem seen s) then begin
        Ihs.add seen s;
        Queue.add s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    iter_next g u (fun v ->
        if (not (avoid v)) && not (Ihs.mem seen v) then begin
          Ihs.add seen v;
          Queue.add v q
        end)
  done;
  seen

let no_avoid _ = false

let reachable g sources = reachable_generic Digraph.iter_succ g sources ~avoid:no_avoid

let reachable_backward g sources =
  reachable_generic Digraph.iter_pred g sources ~avoid:no_avoid

let reachable_avoiding g ~avoid sources =
  reachable_generic Digraph.iter_succ g sources ~avoid

let bfs_distances_bounded g src ~max_depth =
  let dist = Hashtbl.create 64 in
  if Digraph.mem_node g src then begin
    Hashtbl.add dist src 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let du = Hashtbl.find dist u in
      if du < max_depth then
        Digraph.iter_succ g u (fun v ->
            if not (Hashtbl.mem dist v) then begin
              Hashtbl.add dist v (du + 1);
              Queue.add v q
            end)
    done
  end;
  dist

let bfs_distances g src = bfs_distances_bounded g src ~max_depth:max_int

let is_reachable g u v =
  if not (Digraph.mem_node g u && Digraph.mem_node g v) then false
  else if u = v then true
  else begin
    let seen = Ihs.create () in
    let q = Queue.create () in
    Ihs.add seen u;
    Queue.add u q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let x = Queue.pop q in
      Digraph.iter_succ g x (fun y ->
          if y = v then found := true
          else if not (Ihs.mem seen y) then begin
            Ihs.add seen y;
            Queue.add y q
          end)
    done;
    !found
  end

let topological_order g =
  let indeg = Hashtbl.create (Digraph.n_nodes g) in
  Digraph.iter_nodes g (fun v -> Hashtbl.replace indeg v (Digraph.in_degree g v));
  let q = Queue.create () in
  Hashtbl.iter (fun v d -> if d = 0 then Queue.add v q) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    incr count;
    Digraph.iter_succ g u (fun v ->
        let d = Hashtbl.find indeg v - 1 in
        Hashtbl.replace indeg v d;
        if d = 0 then Queue.add v q)
  done;
  if !count = Digraph.n_nodes g then Some (List.rev !order) else None

let dfs_postorder g =
  let seen = Ihs.create () in
  let post = ref [] in
  let visit root =
    (* Iterative DFS with an explicit stack of (node, remaining successors). *)
    let stack = ref [ (root, Digraph.succ g root) ] in
    Ihs.add seen root;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, next) :: rest -> (
        match next with
        | [] ->
          post := v :: !post;
          stack := rest
        | w :: ws ->
          stack := (v, ws) :: rest;
          if not (Ihs.mem seen w) then begin
            Ihs.add seen w;
            stack := (w, Digraph.succ g w) :: !stack
          end)
    done
  in
  Digraph.iter_nodes g (fun v -> if not (Ihs.mem seen v) then visit v);
  List.rev !post
