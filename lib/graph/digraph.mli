(** Mutable directed graphs over integer node identifiers.

    Node ids are arbitrary (not necessarily dense) non-negative integers —
    element ids are global across an XML collection, and subgraphs (partitions,
    skeleton graphs) reuse the original ids.  Edges are unlabelled and stored
    at most once; parallel edges collapse. *)

type t

val create : ?initial:int -> unit -> t

val add_node : t -> int -> unit
(** Idempotent. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds nodes [u], [v] as needed; idempotent. *)

val remove_edge : t -> int -> int -> unit

val remove_node : t -> int -> unit
(** Removes the node and all incident edges. *)

val mem_node : t -> int -> bool

val mem_edge : t -> int -> int -> bool

val n_nodes : t -> int

val n_edges : t -> int

val succ : t -> int -> int list
(** Successors; [] for unknown nodes. *)

val pred : t -> int -> int list

val iter_succ : t -> int -> (int -> unit) -> unit

val iter_pred : t -> int -> (int -> unit) -> unit

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_nodes : t -> (int -> unit) -> unit

val iter_edges : t -> (int -> int -> unit) -> unit

val nodes : t -> int list

val edges : t -> (int * int) list

val copy : t -> t

val induced_subgraph : t -> Hopi_util.Int_hashset.t -> t
(** Subgraph on the given nodes with all edges between them. *)

val transpose : t -> t

val pp : Format.formatter -> t -> unit
