(** Condensation: the DAG of strongly connected components. *)

type t = {
  scc : Scc.t;
  dag : Digraph.t;  (** nodes are component ids *)
}

val compute : Digraph.t -> t
