type t = {
  component : (int, int) Hashtbl.t;
  members : int array array;
  count : int;
}

let compute g =
  let order = Traversal.dfs_postorder g in
  let gt = Digraph.transpose g in
  let component = Hashtbl.create (Digraph.n_nodes g) in
  let members = ref [] in
  let count = ref 0 in
  (* Process nodes in reverse postorder on the transpose. *)
  List.iter
    (fun root ->
      if not (Hashtbl.mem component root) then begin
        let cid = !count in
        incr count;
        let comp = ref [] in
        let stack = ref [ root ] in
        Hashtbl.add component root cid;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | v :: rest ->
            stack := rest;
            comp := v :: !comp;
            Digraph.iter_succ gt v (fun w ->
                if not (Hashtbl.mem component w) then begin
                  Hashtbl.add component w cid;
                  stack := w :: !stack
                end)
        done;
        members := Array.of_list !comp :: !members
      end)
    (List.rev order);
  { component; members = Array.of_list (List.rev !members); count = !count }

let component_of t v = Hashtbl.find t.component v
