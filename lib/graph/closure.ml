module Int_set = Hopi_util.Int_set
module Bitset = Hopi_util.Bitset

type t = {
  succs : (int, Int_set.t) Hashtbl.t;  (* node -> descendants incl self *)
  preds : (int, Int_set.t) Hashtbl.t;  (* node -> ancestors incl self *)
  n_connections : int;
}

(* Reachability over the condensation: comp id -> bitset of reachable comp
   ids (including itself).  Components are processed in reverse topological
   order so successors are finished first. *)
let comp_reach (cond : Condensation.t) =
  let n = cond.scc.Scc.count in
  let reach = Array.make (max n 1) (Bitset.create 0) in
  let order =
    match Traversal.topological_order cond.dag with
    | Some o -> o
    | None -> assert false (* a condensation is a DAG *)
  in
  List.iter
    (fun c ->
      let b = Bitset.create n in
      Bitset.set b c;
      Digraph.iter_succ cond.dag c (fun c' ->
          ignore (Bitset.union_into ~dst:b reach.(c')));
      reach.(c) <- b)
    (List.rev order);
  reach

let count_connections g =
  let cond = Condensation.compute g in
  let reach = comp_reach cond in
  let sizes = Array.map Array.length cond.scc.Scc.members in
  let total = ref 0 in
  for c = 0 to cond.scc.Scc.count - 1 do
    let reachable_nodes = Bitset.fold (fun c' acc -> acc + sizes.(c')) reach.(c) 0 in
    total := !total + (sizes.(c) * reachable_nodes)
  done;
  !total

let build_tables g cond reach =
  let n = cond.Condensation.scc.Scc.count in
  let members = cond.Condensation.scc.Scc.members in
  (* Per component: sorted array of all reachable nodes. *)
  let comp_succ_nodes = Array.make (max n 1) [||] in
  for c = 0 to n - 1 do
    let total = Bitset.fold (fun c' acc -> acc + Array.length members.(c')) reach.(c) 0 in
    let a = Array.make total 0 in
    let i = ref 0 in
    Bitset.iter
      (fun c' ->
        Array.iter
          (fun v ->
            a.(!i) <- v;
            incr i)
          members.(c'))
      reach.(c);
    Array.sort compare a;
    comp_succ_nodes.(c) <- a
  done;
  let succs = Hashtbl.create (Digraph.n_nodes g) in
  let preds = Hashtbl.create (Digraph.n_nodes g) in
  let n_connections = ref 0 in
  Digraph.iter_nodes g (fun v ->
      let c = Scc.component_of cond.Condensation.scc v in
      let s = Int_set.of_sorted_array_unsafe comp_succ_nodes.(c) in
      Hashtbl.replace succs v s;
      n_connections := !n_connections + Int_set.cardinal s);
  (* Invert for ancestors. *)
  let pred_acc = Hashtbl.create (Digraph.n_nodes g) in
  Digraph.iter_nodes g (fun v -> Hashtbl.replace pred_acc v (ref []));
  Hashtbl.iter
    (fun u s ->
      Int_set.iter
        (fun v ->
          let r = Hashtbl.find pred_acc v in
          r := u :: !r)
        s)
    succs;
  Hashtbl.iter (fun v r -> Hashtbl.replace preds v (Int_set.of_list !r)) pred_acc;
  { succs; preds; n_connections = !n_connections }

let compute g =
  let cond = Condensation.compute g in
  let reach = comp_reach cond in
  build_tables g cond reach

let compute_bounded g ~max_connections =
  if count_connections g > max_connections then None else Some (compute g)

let n_connections t = t.n_connections

let n_nodes t = Hashtbl.length t.succs

let succs t v =
  match Hashtbl.find_opt t.succs v with
  | Some s -> s
  | None -> Int_set.empty

let preds t v =
  match Hashtbl.find_opt t.preds v with
  | Some s -> s
  | None -> Int_set.empty

let mem t u v = Int_set.mem v (succs t u)

let iter_nodes t f = Hashtbl.iter (fun v _ -> f v) t.succs

let iter_pairs t f =
  Hashtbl.iter (fun u s -> Int_set.iter (fun v -> f u v) s) t.succs

let nodes t = Hashtbl.fold (fun v _ acc -> v :: acc) t.succs []

let restrict t ~keep =
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  let n = ref 0 in
  Hashtbl.iter
    (fun v s ->
      if keep v then begin
        let s' = Int_set.filter keep s in
        Hashtbl.replace succs v s';
        n := !n + Int_set.cardinal s'
      end)
    t.succs;
  Hashtbl.iter
    (fun v s -> if keep v then Hashtbl.replace preds v (Int_set.filter keep s))
    t.preds;
  { succs; preds; n_connections = !n }
