(** A FliX-style hybrid connection index (the paper's future work, citing
    R. Schenkel, "FliX: A flexible framework for indexing complex XML
    document collections", DataX 2004).

    Instead of covering the whole element-level graph, the collection is
    split into its natural tree fragments (the documents), indexed by
    pre/post-order intervals, and a 2-hop cover is built only for the
    *skeleton graph* — the elements that are sources or targets of links
    (Definition 2 of the paper).  A connection test decomposes as

    {v u ⇝ v  ⟺  (same document ∧ pre/post containment)
             ∨  ∃ link source s ∈ doc(u), link target t ∈ doc(v):
                  u →tree* s  ∧  s ⇝ t in S(X)  ∧  t →tree* v v}

    which is exact because every cross-document (or link-using) path
    alternates tree-descent segments with link jumps, and consecutive
    jumps are connected by skeleton edges.

    The skeleton cover is typically orders of magnitude smaller than the
    full HOPI cover; the price is a per-query loop over the candidate
    sources above [u] and targets above [v].  The [flix] bench target
    quantifies the trade-off. *)

type t

type stats = {
  skeleton_nodes : int;
  skeleton_edges : int;
  cover_entries : int;  (** entries of the skeleton cover *)
  build_seconds : float;
}

val build : Hopi_collection.Collection.t -> t

val stats : t -> stats

val connected : t -> int -> int -> bool
(** Reachability over the element-level graph, answered from tree
    intervals plus the skeleton cover. *)

val size : t -> int
(** Cover entries of the skeleton cover (the tree intervals are free —
    they reuse the collection's pre/post numbering). *)
