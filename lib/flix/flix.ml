module Collection = Hopi_collection.Collection
module Skeleton = Hopi_collection.Skeleton
module Closure = Hopi_graph.Closure
module Digraph = Hopi_graph.Digraph
module Cover = Hopi_twohop.Cover
module Builder = Hopi_twohop.Builder
module Ihs = Hopi_util.Int_hashset
module Timer = Hopi_util.Timer

type stats = {
  skeleton_nodes : int;
  skeleton_edges : int;
  cover_entries : int;
  build_seconds : float;
}

type t = {
  c : Collection.t;
  cover : Cover.t;
  sources_by_doc : (int, int list) Hashtbl.t;
  targets_by_doc : (int, int list) Hashtbl.t;
  stats : stats;
}

let group_by_doc c nodes =
  let h = Hashtbl.create 64 in
  Ihs.iter
    (fun e ->
      let d = Collection.doc_of_element c e in
      Hashtbl.replace h d (e :: Option.value ~default:[] (Hashtbl.find_opt h d)))
    nodes;
  h

let build c =
  let t0 = Timer.start () in
  let skel = Skeleton.of_collection c in
  let clo = Closure.compute skel.Skeleton.graph in
  (* the hybrid only ever asks source ⇝ target, so the cover only needs to
     answer those pairs (the same observation as the paper's H̄ cover) *)
  let pairs = ref [] in
  Ihs.iter
    (fun s ->
      Hopi_util.Int_set.iter
        (fun x -> if Ihs.mem skel.Skeleton.targets x then pairs := (s, x) :: !pairs)
        (Closure.succs clo s))
    skel.Skeleton.sources;
  let cover, _ = Builder.build ~only_pairs:!pairs clo in
  let stats =
    {
      skeleton_nodes = Digraph.n_nodes skel.Skeleton.graph;
      skeleton_edges = Digraph.n_edges skel.Skeleton.graph;
      cover_entries = Cover.size cover;
      build_seconds = Timer.elapsed_s t0;
    }
  in
  {
    c;
    cover;
    sources_by_doc = group_by_doc c skel.Skeleton.sources;
    targets_by_doc = group_by_doc c skel.Skeleton.targets;
    stats;
  }

let stats t = t.stats

let size t = t.stats.cover_entries

let connected t u v =
  let c = t.c in
  let known e =
    match Collection.element_info c e with
    | (_ : Collection.element_info) -> true
    | exception Invalid_argument _ -> false
  in
  if not (known u && known v) then false
  else begin
    let du = Collection.doc_of_element c u and dv = Collection.doc_of_element c v in
    (* tree-only path within one document *)
    (du = dv && Skeleton.is_tree_ancestor c u v)
    ||
    (* tree-descend to a link source, skeleton hops, tree-descend to v *)
    let sources = Option.value ~default:[] (Hashtbl.find_opt t.sources_by_doc du) in
    let targets = Option.value ~default:[] (Hashtbl.find_opt t.targets_by_doc dv) in
    let reachable_sources =
      List.filter (fun s -> Skeleton.is_tree_ancestor c u s) sources
    in
    reachable_sources <> []
    &&
    let covering_targets =
      List.filter (fun tg -> Skeleton.is_tree_ancestor c tg v) targets
    in
    List.exists
      (fun s -> List.exists (fun tg -> Cover.connected t.cover s tg) covering_targets)
      reachable_sources
  end
