(** Path expressions with wildcards — the query class HOPI accelerates
    (Section 1.1): XPath-style steps over the descendant axis of the
    element graph (which includes links), e.g.

    - [//book//author] — classic wildcard path
    - [//~book//author] — with ontology-based tag similarity ([~], as in
      the XXL search engine)
    - [/bib/book/title] — child-axis steps
    - [//article//*] — any-tag steps
    - [//article[//cite][/year]//author] — branching paths: existential
      predicates relative to the step's element
    - [//article[//title["xml"]]//author] — IR-style content conditions *)

type axis =
  | Child  (** [/]: parent-child tree edge *)
  | Descendant  (** [//]: reachability along edges and links *)

type test =
  | Tag of string
  | Similar of string  (** [~tag]: ontology-similar tags *)
  | Any  (** [*] *)

type step = {
  axis : axis;
  test : test;
  predicates : pred list;
      (** existential filters: the element must satisfy every bracketed
          condition *)
}

and pred =
  | Path of t
      (** [//book[//author]]: a relative path with at least one match *)
  | Contains of string
      (** [//title["xml"]]: the element's subtree text contains the term *)

and t = step list

val parse : string -> (t, string) result
(** @return [Error msg] on syntax errors (empty steps, bad characters). *)

val parse_exn : string -> t

val to_string : t -> string
(** Inverse of {!parse}. *)
