(** Scoring for ranked path-query results (Section 5.1): a match combines
    per-step tag similarity with a distance decay — an [author] that is a
    child or grandchild of a [book] outranks one that is far away. *)

val distance_score : int -> float
(** [1 / (1 + d)]; 1.0 for distance 0. *)

val combine : float -> float -> float
(** Multiplicative score aggregation. *)

type 'a ranked = { item : 'a; score : float }

val top_k : int -> 'a ranked list -> 'a ranked list
(** Best-first, stable for equal scores. *)
