(** A miniature tag ontology with pairwise similarities, as used by the XXL
    search engine for [~tag] conditions (e.g. the ontological similarity of
    [book] to [monography] or [publication], Section 5.1). *)

type t

val empty : t

val create : (string * string * float) list -> t
(** Symmetric similarity pairs; similarity of a tag to itself is always 1. *)

val add : t -> string -> string -> float -> t
(** [add t a b sim] records the symmetric similarity [sim] for the pair
    [(a, b)], replacing any earlier value. *)

val similarity : t -> string -> string -> float
(** In [0,1]; 0 when unrelated. *)

val expand : t -> string -> threshold:float -> (string * float) list
(** All tags with similarity ≥ threshold, including the tag itself (1.0),
    best first. *)

val publications : t
(** A small built-in ontology for the bibliographic examples. *)
