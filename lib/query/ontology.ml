module Smap = Map.Make (String)

type t = float Smap.t Smap.t

let empty = Smap.empty

let add t a b sim =
  let ins x y t =
    let m = Option.value ~default:Smap.empty (Smap.find_opt x t) in
    Smap.add x (Smap.add y sim m) t
  in
  ins a b (ins b a t)

let create pairs = List.fold_left (fun t (a, b, s) -> add t a b s) empty pairs

let similarity t a b =
  if a = b then 1.0
  else
    match Smap.find_opt a t with
    | None -> 0.0
    | Some m -> Option.value ~default:0.0 (Smap.find_opt b m)

let expand t tag ~threshold =
  let related =
    match Smap.find_opt tag t with
    | None -> []
    | Some m -> Smap.fold (fun b s acc -> if s >= threshold then (b, s) :: acc else acc) m []
  in
  (tag, 1.0) :: List.sort (fun (_, a) (_, b) -> compare b a) related

let publications =
  create
    [
      ("book", "monography", 0.9);
      ("book", "publication", 0.7);
      ("article", "publication", 0.8);
      ("article", "paper", 0.9);
      ("inproceedings", "article", 0.7);
      ("inproceedings", "paper", 0.8);
      ("author", "writer", 0.9);
      ("author", "creator", 0.7);
      ("author", "editor", 0.5);
      ("title", "ti", 0.8);
      ("cite", "ref", 0.8);
      ("booktitle", "venue", 0.8);
      ("year", "date", 0.7);
    ]
