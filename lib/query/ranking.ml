let distance_score d = 1.0 /. (1.0 +. float_of_int d)

let combine = ( *. )

type 'a ranked = { item : 'a; score : float }

let top_k k l =
  let sorted = List.stable_sort (fun a b -> compare b.score a.score) l in
  List.filteri (fun i _ -> i < k) sorted
