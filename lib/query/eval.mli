(** Index-backed evaluation of path expressions.

    Descendant steps ([//]) are answered with the HOPI cover — one
    reachability test per candidate pair instead of a graph traversal —
    and optionally refined with shortest-path distances from the
    distance-aware cover for ranking.  Child steps use the element tree.

    [eval_naive] evaluates the same query by BFS over the element graph and
    is used as the correctness oracle and query-time baseline. *)

type match_ = {
  path : int list;  (** one element per step, in query order *)
  score : float;
}

type options = {
  ontology : Ontology.t;
  similarity_threshold : float;  (** minimum tag similarity for [~] steps (0.5) *)
  use_distance : bool;  (** multiply in a distance decay per [//] step *)
  max_distance : int option;
      (** limited-length paths (Section 5.1): a [//] step only matches
          within this many edges *)
  max_results : int;
}

val default_options : options

val eval : ?options:options -> Hopi_core.Hopi.t -> Path_expr.t -> match_ list
(** Ranked matches, best first. *)

val eval_naive : ?options:options -> Hopi_core.Hopi.t -> Path_expr.t -> match_ list
(** Same result set computed without the index (BFS per pair). *)
