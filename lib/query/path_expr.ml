type axis = Child | Descendant

type test = Tag of string | Similar of string | Any

type step = { axis : axis; test : test; predicates : pred list }

and pred = Path of t | Contains of string

and t = step list

let is_tag_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.' || ch = ':'

let rec parse s =
  let n = String.length s in
  (* parse the [expr]... predicates after a test; returns (preds, next) *)
  let rec predicates acc i =
    if i < n && s.[i] = '[' then begin
      (* find the matching close bracket (brackets nest) *)
      let depth = ref 1 and j = ref (i + 1) in
      while !depth > 0 && !j < n do
        (match s.[!j] with
         | '[' -> incr depth
         | ']' -> decr depth
         | _ -> ());
        if !depth > 0 then incr j
      done;
      if !depth > 0 then Error "unterminated '['"
      else begin
        let inner = String.sub s (i + 1) (!j - i - 1) in
        let li = String.length inner in
        if li >= 2 && inner.[0] = '\"' && inner.[li - 1] = '\"' then
          predicates (Contains (String.sub inner 1 (li - 2)) :: acc) (!j + 1)
        else
          match parse inner with
          | Error msg -> Error (Printf.sprintf "in predicate %S: %s" inner msg)
          | Ok expr -> predicates (Path expr :: acc) (!j + 1)
      end
    end
    else Ok (List.rev acc, i)
  in
  let rec steps acc i =
    if i >= n then Ok (List.rev acc)
    else if s.[i] <> '/' then Error (Printf.sprintf "expected '/' at position %d" i)
    else begin
      let axis, j =
        if i + 1 < n && s.[i + 1] = '/' then (Descendant, i + 2) else (Child, i + 1)
      in
      if j >= n then Error "trailing slash"
      else begin
        let tilde = s.[j] = '~' in
        let j = if tilde then j + 1 else j in
        let finish test k =
          match predicates [] k with
          | Error msg -> Error msg
          | Ok (preds, k') -> steps ({ axis; test; predicates = preds } :: acc) k'
        in
        if j < n && s.[j] = '*' then
          if tilde then Error "'~*' is not a valid test" else finish Any (j + 1)
        else begin
          let k = ref j in
          while !k < n && is_tag_char s.[!k] do
            incr k
          done;
          if !k = j then Error (Printf.sprintf "empty step at position %d" j)
          else begin
            let tag = String.sub s j (!k - j) in
            finish (if tilde then Similar tag else Tag tag) !k
          end
        end
      end
    end
  in
  if n = 0 then Error "empty expression" else steps [] 0

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Path_expr.parse: " ^ msg)

let rec to_string t =
  let buf = Buffer.create 32 in
  List.iter
    (fun { axis; test; predicates } ->
      Buffer.add_string buf (match axis with Child -> "/" | Descendant -> "//");
      (match test with
       | Tag tag -> Buffer.add_string buf tag
       | Similar tag ->
         Buffer.add_char buf '~';
         Buffer.add_string buf tag
       | Any -> Buffer.add_char buf '*');
      List.iter
        (fun p ->
          Buffer.add_char buf '[';
          (match p with
           | Path e -> Buffer.add_string buf (to_string e)
           | Contains term ->
             Buffer.add_char buf '\"';
             Buffer.add_string buf term;
             Buffer.add_char buf '\"');
          Buffer.add_char buf ']')
        predicates)
    t;
  Buffer.contents buf
