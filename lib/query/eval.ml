module Collection = Hopi_collection.Collection
module Hopi = Hopi_core.Hopi
module Traversal = Hopi_graph.Traversal
module Dist_cover = Hopi_twohop.Dist_cover
module Cover = Hopi_twohop.Cover
module Timer = Hopi_util.Timer
module Counter = Hopi_obs.Counter
module Histogram = Hopi_obs.Histogram
module Trace = Hopi_obs.Trace
module Registry = Hopi_obs.Registry

let log = Logs.Src.create "hopi.query.eval" ~doc:"Path-expression evaluation"

module Log = (val Logs.src_log log : Logs.LOG)

let m_evals =
  Registry.counter "hopi_query_evals_total" ~help:"Path expressions evaluated"

let m_matches =
  Registry.counter "hopi_query_matches_total" ~help:"Matches returned"

let m_reach_tests =
  Registry.counter "hopi_query_reach_tests_total"
    ~help:"Index reachability probes during evaluation"

let m_candidates =
  Registry.counter "hopi_query_candidates_total"
    ~help:"Step candidates considered (label probes)"

let h_query_ns =
  Registry.histogram "hopi_query_duration_ns" ~help:"Query evaluation time"

let h_label_entries =
  Registry.histogram "hopi_query_label_entries"
    ~help:"Lout(u) + Lin(v) label entries scanned per reachability probe"

type match_ = { path : int list; score : float }

type options = {
  ontology : Ontology.t;
  similarity_threshold : float;
  use_distance : bool;
  max_distance : int option;
  max_results : int;
}

let default_options =
  {
    ontology = Ontology.publications;
    similarity_threshold = 0.5;
    use_distance = false;
    max_distance = None;
    max_results = 100;
  }

(* Candidate elements for one step test, with their tag scores. *)
let candidates opts c (test : Path_expr.test) =
  let cands =
    match test with
    | Path_expr.Tag tag ->
      List.map (fun e -> (e, 1.0)) (Collection.elements_with_tag c tag)
    | Path_expr.Similar tag ->
      List.concat_map
        (fun (tag', sim) ->
          List.map (fun e -> (e, sim)) (Collection.elements_with_tag c tag'))
        (Ontology.expand opts.ontology tag ~threshold:opts.similarity_threshold)
    | Path_expr.Any ->
      let acc = ref [] in
      Collection.iter_elements c (fun e -> acc := (e, 1.0) :: !acc);
      !acc
  in
  Counter.add m_candidates (List.length cands);
  cands

(* partial match: reversed element path + score *)
let eval_generic ?descendants ~reaches ~dist opts idx (expr : Path_expr.t) =
  let c = Hopi.collection idx in
  let is_child u v =
    (Collection.element_info c v).Collection.el_parent = Some u
  in
  (* existential predicates: does a relative path match, anchored at [e]?
     memoised per (element, predicate) because the same element appears in
     many partial matches *)
  let pred_cache : (int * Path_expr.pred, bool) Hashtbl.t = Hashtbl.create 64 in
  let text = lazy (Hopi.text_index idx) in
  let rec predicates_hold e (step : Path_expr.step) =
    List.for_all
      (fun p ->
        let key = (e, p) in
        match Hashtbl.find_opt pred_cache key with
        | Some r -> r
        | None ->
          let r =
            match p with
            | Path_expr.Path expr -> anchored_nonempty e expr
            | Path_expr.Contains term ->
              Hopi_collection.Text_index.subtree_contains (Lazy.force text) c e term
          in
          Hashtbl.add pred_cache key r;
          r)
      step.Path_expr.predicates
  and anchored_nonempty anchor (pexpr : Path_expr.t) =
    let finals =
      List.fold_left
        (fun partials step -> step_partials partials step)
        (Some [ ([ anchor ], 1.0) ])
        pexpr
    in
    match finals with
    | Some (_ :: _) -> true
    | _ -> false
  and step_partials partials (step : Path_expr.step) =
    let cands = candidates opts c step.Path_expr.test in
    match partials with
    | None ->
      (* first step: [/x] anchors at document roots, [//x] anywhere *)
      let keep =
        match step.Path_expr.axis with
        | Path_expr.Descendant -> fun _ -> true
        | Path_expr.Child ->
          fun e -> (Collection.element_info c e).Collection.el_parent = None
      in
      Some
        (List.filter_map
           (fun (e, s) ->
             if keep e && predicates_hold e step then Some ([ e ], s) else None)
           cands)
    | Some ps ->
      (* two physical plans for a step: filter the tag candidates by a
         reachability test each, or enumerate the descendant set and keep
         the tag matches.  Enumeration wins when the candidate set is large
         and the reachable neighbourhood is small. *)
      let scored_test =
        match step.Path_expr.test with
        | Path_expr.Tag tag -> fun e -> if Collection.tag_of c e = tag then Some 1.0 else None
        | Path_expr.Any -> fun _ -> Some 1.0
        | Path_expr.Similar tag ->
          let sims = Hashtbl.create 8 in
          List.iter
            (fun (t, s) -> if not (Hashtbl.mem sims t) then Hashtbl.add sims t s)
            (Ontology.expand opts.ontology tag
               ~threshold:opts.similarity_threshold);
          fun e -> Hashtbl.find_opt sims (Collection.tag_of c e)
      in
      let use_enumeration =
        descendants <> None
        && step.Path_expr.axis = Path_expr.Descendant
        && List.length cands > 64
      in
      Some
        (List.concat_map
           (fun (path, score) ->
             let last = List.hd path in
             let step_candidates =
               if use_enumeration then begin
                 let desc = (Option.get descendants) last in
                 Hopi_util.Int_hashset.fold
                   (fun e acc ->
                     match scored_test e with
                     | Some s when e <> last -> (e, s) :: acc
                     | _ -> acc)
                   desc []
               end
               else cands
             in
             List.filter_map
               (fun (e, tag_score) ->
                 match step.Path_expr.axis with
                 | Path_expr.Child ->
                   if is_child last e && predicates_hold e step then
                     Some (e :: path, score *. tag_score)
                   else None
                 | Path_expr.Descendant ->
                   if e <> last && reaches last e && predicates_hold e step then begin
                     let keep =
                       match opts.max_distance with
                       | None -> true
                       | Some bound -> (
                         match dist last e with
                         | Some d -> d <= bound
                         | None -> false)
                     in
                     if keep then begin
                       let s = score *. tag_score in
                       let s =
                         if opts.use_distance then
                           match dist last e with
                           | Some d -> s *. Ranking.distance_score d
                           | None -> s
                         else s
                       in
                       Some (e :: path, s)
                     end
                     else None
                   end
                   else None)
               step_candidates)
           ps)
  in
  let finals = List.fold_left step_partials None expr in
  let ranked =
    List.map
      (fun (path, score) -> { Ranking.item = List.rev path; score })
      (Option.value ~default:[] finals)
  in
  List.map
    (fun r -> { path = r.Ranking.item; score = r.Ranking.score })
    (Ranking.top_k opts.max_results ranked)

let finish_eval t0 matches =
  Histogram.observe h_query_ns (Int64.to_int (Timer.elapsed_ns t0));
  Counter.add m_matches (List.length matches);
  Trace.add "matches" (List.length matches);
  Log.debug (fun m -> m "query returned %d matches" (List.length matches));
  matches

let eval ?(options = default_options) idx expr =
  Counter.incr m_evals;
  Trace.with_span "query.eval" @@ fun () ->
  let t0 = Timer.start () in
  let dist =
    if options.use_distance || options.max_distance <> None then
      let d = Hopi.distance_index idx in
      fun u v -> Dist_cover.dist d u v
    else fun _ _ -> None
  in
  let cover = Hopi.cover idx in
  let reaches u v =
    Counter.incr m_reach_tests;
    Histogram.observe h_label_entries
      (Cover.lout_cardinal cover u + Cover.lin_cardinal cover v);
    Hopi.connected idx u v
  in
  finish_eval t0
    (eval_generic
       ~descendants:(fun u -> Hopi.descendants idx u)
       ~reaches ~dist options idx expr)

let eval_naive ?(options = default_options) idx expr =
  Counter.incr m_evals;
  Trace.with_span "query.eval_naive" @@ fun () ->
  let t0 = Timer.start () in
  let g = Collection.element_graph (Hopi.collection idx) in
  (* one BFS per distinct source, memoised across candidate pairs *)
  let cache = Hashtbl.create 64 in
  let distances u =
    match Hashtbl.find_opt cache u with
    | Some d -> d
    | None ->
      let d = Traversal.bfs_distances g u in
      Hashtbl.add cache u d;
      d
  in
  let reaches u v = Hashtbl.mem (distances u) v in
  let dist u v = Hashtbl.find_opt (distances u) v in
  finish_eval t0 (eval_generic ~reaches ~dist options idx expr)
