(** Growable arrays (OCaml 5.1 predates [Dynarray] in the stdlib). *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a dynamic array holding [n] copies of [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t

val clear : 'a t -> unit

val is_empty : 'a t -> bool
