(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.

    Used by the storage engine for page checksums and journal-record
    checksums; table-driven, allocation-free after the first call. *)

val digest : Bytes.t -> pos:int -> len:int -> int32
(** Checksum of [len] bytes starting at [pos]. *)

val init : int32
(** Initial running state for incremental use (not a valid digest). *)

val update : int32 -> Bytes.t -> pos:int -> len:int -> int32
(** Fold more bytes into a running state. *)

val finish : int32 -> int32
(** Turn a running state into the final digest. *)
