type 'a t = (float * 'a) Dyn_array.t

let create () = Dyn_array.create ()

let length = Dyn_array.length

let is_empty t = Dyn_array.length t = 0

let swap t i j =
  let x = Dyn_array.get t i in
  Dyn_array.set t i (Dyn_array.get t j);
  Dyn_array.set t j x

let prio_at t i = fst (Dyn_array.get t i)

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if prio_at t i > prio_at t parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Dyn_array.length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && prio_at t l > prio_at t !best then best := l;
  if r < n && prio_at t r > prio_at t !best then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let push t ~prio x =
  Dyn_array.push t (prio, x);
  sift_up t (Dyn_array.length t - 1)

let pop_max t =
  let n = Dyn_array.length t in
  if n = 0 then None
  else begin
    let top = Dyn_array.get t 0 in
    swap t 0 (n - 1);
    ignore (Dyn_array.pop t);
    if Dyn_array.length t > 0 then sift_down t 0;
    Some top
  end

let peek_max t = if is_empty t then None else Some (Dyn_array.get t 0)

let clear = Dyn_array.clear
