let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

(* [Float.compare], not the polymorphic [compare]: the generic comparison
   goes through the runtime's structural-compare path on boxed floats and
   gives unspecified orderings in the presence of nan. *)
let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x ->
      ((if Float.compare x lo < 0 then x else lo),
       (if Float.compare x hi > 0 then x else hi)))
    (xs.(0), xs.(0)) xs

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

(* Five-number digest shared by bench reporting and the histogram exporter
   in [Hopi_obs]. *)
type summary = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let empty_summary = { n = 0; mean = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0; max = 0.0 }

let summary xs =
  let n = Array.length xs in
  if n = 0 then empty_summary
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    {
      n;
      mean = mean xs;
      p50 = percentile_sorted sorted 50.0;
      p95 = percentile_sorted sorted 95.0;
      p99 = percentile_sorted sorted 99.0;
      max = sorted.(n - 1);
    }
  end

(* A mutex-protected sample buffer for readings taken on several domains
   at once (per-partition cover times from pool workers).  [summary] runs
   the exact digest above over a snapshot, so no sample is lost and no
   torn float is ever read — the lock is per recording, which is fine for
   per-item (not per-operation) granularity. *)
module Recorder = struct
  type t = { mu : Mutex.t; mutable samples : float list; mutable n : int }

  let create () = { mu = Mutex.create (); samples = []; n = 0 }

  let record t x =
    Mutex.lock t.mu;
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    Mutex.unlock t.mu

  let count t =
    Mutex.lock t.mu;
    let n = t.n in
    Mutex.unlock t.mu;
    n

  let snapshot t =
    Mutex.lock t.mu;
    let xs = Array.of_list t.samples in
    Mutex.unlock t.mu;
    xs

  let reset t =
    Mutex.lock t.mu;
    t.samples <- [];
    t.n <- 0;
    Mutex.unlock t.mu

  let summary t = summary (snapshot t)
end

let z_98 = 2.3263

let proportion_ci_upper ~successes ~samples ~z =
  if samples <= 0 then 1.0
  else begin
    let n = float_of_int samples in
    let p = float_of_int successes /. n in
    let upper = p +. (z *. sqrt (p *. (1.0 -. p) /. n)) in
    Float.min 1.0 (Float.max 0.0 upper)
  end
