let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let z_98 = 2.3263

let proportion_ci_upper ~successes ~samples ~z =
  if samples <= 0 then 1.0
  else begin
    let n = float_of_int samples in
    let p = float_of_int successes /. n in
    let upper = p +. (z *. sqrt (p *. (1.0 -. p) /. n)) in
    Float.min 1.0 (Float.max 0.0 upper)
  end
