(** Immutable sets of integers backed by sorted arrays.

    Optimised for the access pattern of 2-hop-cover labels: sets are built
    once (or in large batches) and then intersected many times.  Membership
    is [O(log n)]; intersection and union are linear merges. *)

type t

val empty : t

val singleton : int -> t

val of_list : int list -> t
(** Duplicates are removed. *)

val of_sorted_array_unsafe : int array -> t
(** The array must be strictly increasing; it is used without copying. *)

val to_list : t -> int list

val to_array : t -> int array
(** Returns a fresh array in increasing order. *)

val cardinal : t -> int

val is_empty : t -> bool

val mem : int -> t -> bool

val add : int -> t -> t

val remove : int -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val inter_is_empty : t -> t -> bool
(** [inter_is_empty a b] avoids materialising the intersection. *)

val choose_inter : t -> t -> int option
(** First (smallest) common element, if any. *)

val subset : t -> t -> bool

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val exists : (int -> bool) -> t -> bool

val for_all : (int -> bool) -> t -> bool

val filter : (int -> bool) -> t -> t

val min_elt : t -> int
(** @raise Not_found on the empty set. *)

val max_elt : t -> int
(** @raise Not_found on the empty set. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
