(** Monotonic timing helpers (CLOCK_MONOTONIC; durations can never be
    negative, unlike [Unix.gettimeofday] under NTP adjustment). *)

type t
(** An opaque monotonic timestamp. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock, from an arbitrary origin.  Reading
    the clock does not allocate, so this is safe on metric hot paths. *)

val start : unit -> t

val elapsed_ns : t -> int64
(** Nanoseconds since [start]; clamped at zero. *)

val elapsed_s : t -> float
(** Seconds since [start]; clamped at zero. *)

val ns_of_s : float -> int
(** Seconds to integer nanoseconds (for histogram samples); clamps negative
    inputs to 0. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its duration in seconds. *)

val pp_duration : Format.formatter -> float -> unit
(** Human-readable seconds, e.g. ["820.8s"] or ["3.2ms"]. *)
