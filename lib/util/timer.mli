(** Wall-clock timing helpers for the benchmark harness. *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its wall-clock duration in
    seconds. *)

val pp_duration : Format.formatter -> float -> unit
(** Human-readable seconds, e.g. ["820.8s"] or ["3.2ms"]. *)
