(** Monotonic timing helpers (CLOCK_MONOTONIC; durations can never be
    negative, unlike [Unix.gettimeofday] under NTP adjustment). *)

type t
(** An opaque monotonic timestamp. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock, from an arbitrary origin.  Reading
    the clock does not allocate, so this is safe on metric hot paths. *)

val start : unit -> t

val elapsed_ns : t -> int64
(** Nanoseconds since [start]; clamped at zero. *)

val elapsed_s : t -> float
(** Seconds since [start]; clamped at zero. *)

val ns_of_s : float -> int
(** Seconds to integer nanoseconds (for histogram samples); clamps negative
    inputs to 0. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its duration in seconds. *)

val pp_duration : Format.formatter -> float -> unit
(** Human-readable seconds, e.g. ["820.8s"] or ["3.2ms"]. *)

(** Atomic duration accumulator, safe to feed from concurrent pool workers
    (no lost updates, unlike a [float ref]).  Summing every worker's item
    time gives a phase's CPU time; CPU / wall is its parallel speedup. *)
module Acc : sig
  type t

  val create : unit -> t

  val add_ns : t -> int64 -> unit
  (** Negative durations clamp to zero. *)

  val add_s : t -> float -> unit

  val total_ns : t -> int

  val total_s : t -> float

  val reset : t -> unit

  val timed : t -> (unit -> 'a) -> 'a
  (** Run [f] and add its duration (also on exceptions). *)
end
