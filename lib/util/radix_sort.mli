(** LSD radix sort for non-negative integers.

    The build pipeline's external sorter ([Hopi_storage.Spill]) and the
    cover's grouped batch inserts sort millions of packed entries; counting
    passes over 16-bit digits beat a comparison sort by the [log n]
    indirect-compare factor.  The pass count adapts to the largest value
    present, so arrays of small packed ids sort in two or three linear
    passes. *)

val sort : int array -> unit
(** Sort the array ascending, in place.  O(n) scratch.

    @raise Invalid_argument on a negative entry. *)

val sort_prefix : int array -> int -> unit
(** [sort_prefix a len] sorts [a.(0..len-1)] ascending in place, ignoring
    the tail.

    @raise Invalid_argument on a negative entry in the prefix. *)
