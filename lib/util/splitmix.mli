(** Deterministic splitmix64 pseudo-random generator.

    All synthetic workloads are seeded so that every experiment is exactly
    reproducible across runs and machines, independent of the state of the
    stdlib [Random] module. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto-distributed sample; used for power-law citation out-degrees. *)

val pick : t -> 'a array -> 'a
(** Uniform choice.  @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** An independent generator (for concurrent substreams). *)
