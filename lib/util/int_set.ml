type t = int array
(* invariant: strictly increasing *)

let empty : t = [||]

let singleton x = [| x |]

let of_sorted_array_unsafe a = a

let of_list l =
  match List.sort_uniq compare l with
  | [] -> empty
  | l -> Array.of_list l

let to_list = Array.to_list

let to_array t = Array.copy t

let cardinal = Array.length

let is_empty t = Array.length t = 0

(* Binary search: index of [x] in [t], or [None]. *)
let find_index t x =
  let lo = ref 0 and hi = ref (Array.length t - 1) in
  let res = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.(mid) in
    if v = x then begin
      res := Some mid;
      lo := !hi + 1
    end
    else if v < x then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem x t = find_index t x <> None

(* Index of the first element >= x (= length if none). *)
let lower_bound t x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let add x t =
  let i = lower_bound t x in
  let n = Array.length t in
  if i < n && t.(i) = x then t
  else begin
    let r = Array.make (n + 1) x in
    Array.blit t 0 r 0 i;
    Array.blit t i r (i + 1) (n - i);
    r
  end

let remove x t =
  match find_index t x with
  | None -> t
  | Some i ->
    let n = Array.length t in
    let r = Array.make (n - 1) 0 in
    Array.blit t 0 r 0 i;
    Array.blit t (i + 1) r i (n - 1 - i);
    r

let union a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let r = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin r.(!k) <- x; incr i end
      else if y < x then begin r.(!k) <- y; incr j end
      else begin r.(!k) <- x; incr i; incr j end;
      incr k
    done;
    while !i < na do r.(!k) <- a.(!i); incr i; incr k done;
    while !j < nb do r.(!k) <- b.(!j); incr j; incr k done;
    if !k = na + nb then r else Array.sub r 0 !k
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then empty
  else begin
    let r = Array.make (min na nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then incr i
      else if y < x then incr j
      else begin r.(!k) <- x; incr k; incr i; incr j end
    done;
    if !k = 0 then empty else Array.sub r 0 !k
  end

let diff a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then empty
  else if nb = 0 then a
  else begin
    let r = Array.make na 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na do
      let x = a.(!i) in
      while !j < nb && b.(!j) < x do incr j done;
      if !j >= nb || b.(!j) <> x then begin r.(!k) <- x; incr k end;
      incr i
    done;
    if !k = na then a else if !k = 0 then empty else Array.sub r 0 !k
  end

let choose_inter a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then None
    else
      let x = a.(i) and y = b.(j) in
      if x < y then go (i + 1) j
      else if y < x then go i (j + 1)
      else Some x
  in
  go 0 0

let inter_is_empty a b = choose_inter a b = None

let subset a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else
      let x = a.(i) and y = b.(j) in
      if x = y then go (i + 1) (j + 1)
      else if y < x then go i (j + 1)
      else false
  in
  go 0 0

let iter f t = Array.iter f t

let fold f t acc = Array.fold_left (fun acc x -> f x acc) acc t

let exists f t = Array.exists f t

let for_all f t = Array.for_all f t

let filter f t =
  let r = Array.of_seq (Seq.filter f (Array.to_seq t)) in
  if Array.length r = Array.length t then t else r

let min_elt t = if Array.length t = 0 then raise Not_found else t.(0)

let max_elt t =
  let n = Array.length t in
  if n = 0 then raise Not_found else t.(n - 1)

let equal a b = a = b

let compare = compare

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (to_list t)
