(** A fixed-size pool of worker domains for data-parallel phases.

    [create ~jobs] spawns [jobs - 1] worker domains that sleep on a
    condition variable between submissions; the submitting domain itself
    participates as the [jobs]-th worker, so a pool of size 1 spawns
    nothing and every operation degrades to a plain sequential loop.

    Work is always an indexed range [0 .. n-1].  Items are handed out
    through an atomic cursor in chunks (default 1 — partition covers are
    few and heavy; pass a larger [chunk] for many tiny items), so uneven
    item costs balance automatically.  Results of {!parallel_map} land at
    their own index: output order is deterministic and independent of
    which domain ran which item, which is what makes the parallel build
    bit-identical to the sequential one.

    If an item raises, the first exception (and its backtrace) wins,
    remaining unstarted items are skipped, and the exception is re-raised
    in the submitting domain once the range is drained.

    Discipline: one submission at a time per pool (the build pipeline runs
    its phases sequentially and parallelises inside each).  A nested
    submission from inside a worker item runs sequentially on that worker
    rather than deadlocking. *)

type t

val create : jobs:int -> t
(** [jobs] is the total parallelism including the caller; clamped to
    [>= 1].  [create ~jobs:1] spawns no domains. *)

val jobs : t -> int

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  The pool must be idle. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

val parallel_iter : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_iter t n f] runs [f 0 .. f (n-1)], each exactly once, on the
    pool's domains.  Returns when all items finished. *)

val parallel_map : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_map t n f] is [[| f 0; ...; f (n-1) |]] computed on the
    pool's domains; slot [i] always holds [f i]. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f a] is [Array.map f a] on the pool's domains. *)
