type t = (int, unit) Hashtbl.t

let create ?(initial = 16) () = Hashtbl.create initial

let add t x = if not (Hashtbl.mem t x) then Hashtbl.add t x ()

let remove t x = Hashtbl.remove t x

let mem t x = Hashtbl.mem t x

let cardinal = Hashtbl.length

let is_empty t = Hashtbl.length t = 0

let iter f t = Hashtbl.iter (fun x () -> f x) t

let fold f t acc = Hashtbl.fold (fun x () acc -> f x acc) t acc

let to_list t = fold List.cons t []

let to_int_set t =
  let a = Array.make (cardinal t) 0 in
  let i = ref 0 in
  iter (fun x -> a.(!i) <- x; incr i) t;
  Array.sort compare a;
  Int_set.of_sorted_array_unsafe a

let of_int_set s =
  let t = create ~initial:(max 16 (Int_set.cardinal s)) () in
  Int_set.iter (fun x -> add t x) s;
  t

let add_int_set t s = Int_set.iter (fun x -> add t x) s

let clear = Hashtbl.clear

let copy = Hashtbl.copy
