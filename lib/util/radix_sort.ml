(* LSD radix sort over non-negative ints, 16-bit digits.  The build
   pipeline sorts tens of millions of packed (node, center) entries per
   run; a comparison sort pays ~[log n] indirect compare calls per entry
   where counting passes pay a handful of array reads and writes.  The
   number of passes adapts to the largest value actually present, so
   small-id workloads (the common case: both packed halves are far below
   2^31) sort in two or three passes. *)

let digit_bits = 16

let n_buckets = 1 lsl digit_bits

let digit_mask = n_buckets - 1

let sort_prefix a len =
  if len > 1 then begin
    let max_v = ref 0 in
    for i = 0 to len - 1 do
      if a.(i) < 0 then invalid_arg "Radix_sort.sort: negative entry";
      if a.(i) > !max_v then max_v := a.(i)
    done;
    let scratch = Array.make len 0 in
    let count = Array.make n_buckets 0 in
    let src = ref a and dst = ref scratch in
    let shift = ref 0 in
    while !max_v lsr !shift > 0 do
      Array.fill count 0 n_buckets 0;
      let s = !src and d = !dst and sh = !shift in
      for i = 0 to len - 1 do
        let dg = (s.(i) lsr sh) land digit_mask in
        count.(dg) <- count.(dg) + 1
      done;
      let acc = ref 0 in
      for dg = 0 to n_buckets - 1 do
        let c = count.(dg) in
        count.(dg) <- !acc;
        acc := !acc + c
      done;
      for i = 0 to len - 1 do
        let v = s.(i) in
        let dg = (v lsr sh) land digit_mask in
        d.(count.(dg)) <- v;
        count.(dg) <- count.(dg) + 1
      done;
      src := d;
      dst := s;
      shift := sh + digit_bits
    done;
    (* an odd number of passes leaves the sorted data in [scratch] *)
    if !src != a then Array.blit !src 0 a 0 len
  end

let sort a = sort_prefix a (Array.length a)
