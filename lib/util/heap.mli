(** Polymorphic binary max-heaps keyed by [float] priority.

    The 2-hop-cover builder uses a heap of candidate center nodes with
    *lazily maintained* priorities (Section 3.2 of the paper): entries are
    popped, their priority re-validated, and pushed back when stale.  The
    heap therefore only needs [push] and [pop_max]. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> prio:float -> 'a -> unit

val pop_max : 'a t -> (float * 'a) option

val peek_max : 'a t -> (float * 'a) option

val clear : 'a t -> unit
