(** Mutable hash sets of integers.

    Used where label sets are grown incrementally (cover construction,
    incremental maintenance) before being frozen into {!Int_set.t}. *)

type t

val create : ?initial:int -> unit -> t

val add : t -> int -> unit

val remove : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int

val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_int_set : t -> Int_set.t

val of_int_set : Int_set.t -> t

val add_int_set : t -> Int_set.t -> unit

val to_list : t -> int list
(** Unordered. *)

val clear : t -> unit

val copy : t -> t
