(* Fixed-size domain pool.

   Workers sleep on [cond] between submissions.  A submission publishes a
   [job] under the mutex and bumps [epoch]; a worker that wakes up runs the
   job whose epoch it has not seen yet, so a worker that oversleeps an
   entire job simply waits for the next one (it must never touch a drained
   job's results).  Completion is counted per *item*, not per worker: the
   submitter waits until [completed = n], which is exact regardless of how
   many workers ever woke up.

   Item functions run outside the mutex; only the atomic cursor is shared,
   fetched in [chunk]-sized strides. *)

type job = {
  fn : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

type t = {
  size : int;
  mu : Mutex.t;
  cond : Condition.t; (* both "new job" and "items finished" *)
  mutable job : job option; (* protected by [mu] *)
  mutable epoch : int; (* protected by [mu]; bumped per submission *)
  mutable stop : bool; (* protected by [mu] *)
  mutable workers : unit Domain.t list;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

(* True while the current domain is executing pool items: a nested
   submission from inside an item falls back to a sequential loop instead
   of deadlocking on [job <> None]. *)
let in_item : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let run_items t job =
  let flag = Domain.DLS.get in_item in
  flag := true;
  let rec go () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.n then begin
      let stop_ = min job.n (start + job.chunk) in
      for i = start to stop_ - 1 do
        if Atomic.get t.failure = None then
          try job.fn i
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set t.failure None (Some (e, bt)))
      done;
      ignore (Atomic.fetch_and_add job.completed (stop_ - start));
      go ()
    end
  in
  Fun.protect go ~finally:(fun () -> flag := false)

let worker t =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mu;
    while (not t.stop) && (t.job = None || t.epoch = !seen) do
      Condition.wait t.cond t.mu
    done;
    if t.stop then begin
      Mutex.unlock t.mu;
      running := false
    end
    else begin
      seen := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.mu;
      run_items t job;
      Mutex.lock t.mu;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu
    end
  done

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      mu = Mutex.create ();
      cond = Condition.create ();
      job = None;
      epoch = 0;
      stop = false;
      workers = [];
      failure = Atomic.make None;
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.size

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect (fun () -> f t) ~finally:(fun () -> shutdown t)

let sequential n fn =
  for i = 0 to n - 1 do
    fn i
  done

let parallel_iter t ?(chunk = 1) n fn =
  if n <= 0 then ()
  else if t.size = 1 || n = 1 || !(Domain.DLS.get in_item) then sequential n fn
  else begin
    let job =
      { fn; n; chunk = max 1 chunk; next = Atomic.make 0; completed = Atomic.make 0 }
    in
    Atomic.set t.failure None;
    Mutex.lock t.mu;
    if t.job <> None then begin
      Mutex.unlock t.mu;
      invalid_arg "Hopi_util.Pool: concurrent submissions on one pool"
    end;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    run_items t job;
    Mutex.lock t.mu;
    while Atomic.get job.completed < job.n do
      Condition.wait t.cond t.mu
    done;
    t.job <- None;
    Mutex.unlock t.mu;
    match Atomic.get t.failure with
    | Some (e, bt) ->
      Atomic.set t.failure None;
      Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_map t ?chunk n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_iter t ?chunk n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* parallel_iter ran every index *))
      results
  end

let map_array t ?chunk f a = parallel_map t ?chunk (Array.length a) (fun i -> f a.(i))
