(* Monotonic timing.

   [Unix.gettimeofday] is wall-clock time: it jumps backwards under NTP
   adjustment or manual clock changes, which would make span durations and
   bench numbers negative.  We read CLOCK_MONOTONIC instead, through the
   [@@noalloc] stub of bechamel's monotonic_clock library, so taking a
   timestamp never allocates.

   Fallback: on a platform where the stub cannot read a monotonic clock it
   reports 0, in which case every duration degenerates to 0 rather than
   going negative; [elapsed_ns] additionally clamps at zero so no caller
   can ever observe a negative duration. *)

type t = int64 (* nanoseconds since an arbitrary (boot-time) origin *)

let now_ns () : int64 = Monotonic_clock.now ()

let start = now_ns

let elapsed_ns t =
  let d = Int64.sub (now_ns ()) t in
  if Int64.compare d 0L < 0 then 0L else d

let elapsed_s t = Int64.to_float (elapsed_ns t) *. 1e-9

let ns_of_s s = if s <= 0.0 then 0 else int_of_float (s *. 1e9)

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed_s t)

let pp_duration ppf s =
  if s < 0.001 then Format.fprintf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1fms" (s *. 1e3)
  else Format.fprintf ppf "%.1fs" s

(* Shared duration accumulator: one [Atomic.fetch_and_add] per recording,
   so pool workers timing their own items never lose an update (a plain
   [float ref] would drop concurrent read-modify-writes).  The total is the
   phase's CPU time; total / wall time is the phase's parallel speedup. *)
module Acc = struct
  type nonrec t = int Atomic.t (* nanoseconds *)

  let create () = Atomic.make 0

  let add_ns t ns =
    let ns = Int64.to_int ns in
    ignore (Atomic.fetch_and_add t (if ns < 0 then 0 else ns))

  let add_s t s = ignore (Atomic.fetch_and_add t (ns_of_s s))

  let total_ns t = Atomic.get t

  let total_s t = float_of_int (Atomic.get t) *. 1e-9

  let reset t = Atomic.set t 0

  let timed t f =
    let t0 = start () in
    Fun.protect f ~finally:(fun () -> add_ns t (elapsed_ns t0))
end
