type t = float

let now () = Unix.gettimeofday ()

let start = now

let elapsed_s t = now () -. t

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed_s t)

let pp_duration ppf s =
  if s < 0.001 then Format.fprintf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1fms" (s *. 1e3)
  else Format.fprintf ppf "%.1fs" s
