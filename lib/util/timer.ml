(* Monotonic timing.

   [Unix.gettimeofday] is wall-clock time: it jumps backwards under NTP
   adjustment or manual clock changes, which would make span durations and
   bench numbers negative.  We read CLOCK_MONOTONIC instead, through the
   [@@noalloc] stub of bechamel's monotonic_clock library, so taking a
   timestamp never allocates.

   Fallback: on a platform where the stub cannot read a monotonic clock it
   reports 0, in which case every duration degenerates to 0 rather than
   going negative; [elapsed_ns] additionally clamps at zero so no caller
   can ever observe a negative duration. *)

type t = int64 (* nanoseconds since an arbitrary (boot-time) origin *)

let now_ns () : int64 = Monotonic_clock.now ()

let start = now_ns

let elapsed_ns t =
  let d = Int64.sub (now_ns ()) t in
  if Int64.compare d 0L < 0 then 0L else d

let elapsed_s t = Int64.to_float (elapsed_ns t) *. 1e-9

let ns_of_s s = if s <= 0.0 then 0 else int_of_float (s *. 1e9)

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed_s t)

let pp_duration ppf s =
  if s < 0.001 then Format.fprintf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1fms" (s *. 1e3)
  else Format.fprintf ppf "%.1fs" s
