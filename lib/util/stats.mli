(** Descriptive statistics and the confidence interval used by the
    distance-aware density estimator (Section 5.2 of the paper). *)

val mean : float array -> float

val stddev : float array -> float
(** Sample standard deviation; 0 for fewer than two samples. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation.
    @raise Invalid_argument on an empty array. *)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}
(** Five-number digest shared by bench reporting and the histogram
    exporter in [Hopi_obs]. *)

val empty_summary : summary
(** The all-zero summary of an empty sample. *)

val summary : float array -> summary
(** Exact digest of a sample; [empty_summary] for an empty array. *)

(** Mutex-protected sample collector for readings produced concurrently on
    several domains (e.g. per-partition cover times from pool workers): no
    recording is lost, and {!Recorder.summary} digests a consistent
    snapshot. *)
module Recorder : sig
  type t

  val create : unit -> t

  val record : t -> float -> unit

  val count : t -> int

  val snapshot : t -> float array
  (** Fresh array; order unspecified. *)

  val summary : t -> summary

  val reset : t -> unit
end

val proportion_ci_upper : successes:int -> samples:int -> z:float -> float
(** Upper bound of the Wald confidence interval for a proportion, clamped to
    [0,1].  The paper samples at most 13,600 candidate edges and takes the
    upper bound of the 98% interval ([z] = 2.33) as the density estimate. *)

val z_98 : float
(** z-value for a two-sided 98% confidence interval. *)
