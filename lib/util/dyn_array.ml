type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dyn_array: index %d out of [0,%d)" i t.len)

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let nd = Array.make ncap x in
  Array.blit t.data 0 nd 0 t.len;
  t.data <- nd

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dyn_array.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let last t =
  if t.len = 0 then invalid_arg "Dyn_array.last: empty";
  t.data.(t.len - 1)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let to_array t = Array.sub t.data 0 t.len

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let clear t = t.len <- 0

let is_empty t = t.len = 0
