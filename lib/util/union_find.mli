(** Union-find over integer keys (path compression + union by size). *)

type t

val create : unit -> t

val find : t -> int -> int
(** Representative; unseen keys are their own singleton class. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val classes : t -> (int, int list) Hashtbl.t
(** Representative -> members, for every key ever touched. *)
