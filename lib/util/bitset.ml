type t = { words : Bytes.t; capacity : int }

let bits_per_word = 8

let create n =
  let nwords = (n + bits_per_word - 1) / bits_per_word in
  { words = Bytes.make (max nwords 1) '\000'; capacity = n }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let set t i =
  check t i;
  let w = i / 8 and b = i mod 8 in
  Bytes.unsafe_set t.words w
    (Char.chr (Char.code (Bytes.unsafe_get t.words w) lor (1 lsl b)))

let unset t i =
  check t i;
  let w = i / 8 and b = i mod 8 in
  Bytes.unsafe_set t.words w
    (Char.chr (Char.code (Bytes.unsafe_get t.words w) land lnot (1 lsl b) land 0xff))

let get t i =
  check t i;
  let w = i / 8 and b = i mod 8 in
  Char.code (Bytes.unsafe_get t.words w) land (1 lsl b) <> 0

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  let changed = ref false in
  let n = Bytes.length dst.words in
  for w = 0 to n - 1 do
    let d = Char.code (Bytes.unsafe_get dst.words w) in
    let s = Char.code (Bytes.unsafe_get src.words w) in
    let u = d lor s in
    if u <> d then begin
      changed := true;
      Bytes.unsafe_set dst.words w (Char.unsafe_chr u)
    end
  done;
  !changed

let inter_cardinal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let n = ref 0 in
  for w = 0 to Bytes.length a.words - 1 do
    let x =
      Char.code (Bytes.unsafe_get a.words w)
      land Char.code (Bytes.unsafe_get b.words w)
    in
    !n + popcount_byte (Char.unsafe_chr x) |> fun v -> n := v
  done;
  !n

let iter f t =
  let n = Bytes.length t.words in
  for w = 0 to n - 1 do
    let c = Char.code (Bytes.unsafe_get t.words w) in
    if c <> 0 then
      for b = 0 to 7 do
        if c land (1 lsl b) <> 0 then f ((w * 8) + b)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_int_set t =
  let a = Array.make (cardinal t) 0 in
  let i = ref 0 in
  iter (fun x -> a.(!i) <- x; incr i) t;
  Int_set.of_sorted_array_unsafe a

let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words
