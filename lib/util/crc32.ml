(* Table-driven CRC-32 with the reflected IEEE polynomial, the same
   checksum the zip/png family uses.  The running state is kept
   pre-inverted, so [update] composes and [finish] applies the final
   complement. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xFFFFFFFFl

let update state buf ~pos ~len =
  let table = Lazy.force table in
  let c = ref state in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get buf i) in
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int byte)) 0xFFl) in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let finish state = Int32.logxor state 0xFFFFFFFFl

let digest buf ~pos ~len = finish (update init buf ~pos ~len)
