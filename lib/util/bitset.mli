(** Fixed-capacity bit sets over a dense domain [0 .. capacity-1].

    The transitive-closure computation represents successor sets as bitsets
    over the (partition-local) node domain, so that closing a partition is a
    sequence of word-level unions. *)

type t

val create : int -> t
(** [create n] is the empty set over domain [0..n-1]. *)

val capacity : t -> int

val set : t -> int -> unit

val unset : t -> int -> unit

val get : t -> int -> bool

val cardinal : t -> int

val union_into : dst:t -> t -> bool
(** [union_into ~dst src] adds all elements of [src] to [dst]; returns
    [true] iff [dst] changed.  Capacities must match. *)

val inter_cardinal : t -> t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_int_set : t -> Int_set.t

val copy : t -> t

val clear : t -> unit

val equal : t -> t -> bool
