type t = {
  parent : (int, int) Hashtbl.t;
  size : (int, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 64; size = Hashtbl.create 64 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None ->
    Hashtbl.replace t.parent x x;
    Hashtbl.replace t.size x 1;
    x
  | Some p when p = x -> x
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let sa = Hashtbl.find t.size ra and sb = Hashtbl.find t.size rb in
    let big, small = if sa >= sb then (ra, rb) else (rb, ra) in
    Hashtbl.replace t.parent small big;
    Hashtbl.replace t.size big (sa + sb)
  end

let same t a b = find t a = find t b

let classes t =
  let acc = Hashtbl.create 16 in
  Hashtbl.iter
    (fun x _ ->
      let r = find t x in
      let l = Option.value ~default:[] (Hashtbl.find_opt acc r) in
      Hashtbl.replace acc r (x :: l))
    t.parent;
  acc
