(* A gauge: an instantaneous integer level that can move in both
   directions (resident pages, live partitions, queue depth).  Same
   lock-free, allocation-free recording discipline as [Counter]. *)

type t = { name : string; help : string; value : int Atomic.t }

let make ~name ~help = { name; help; value = Atomic.make 0 }

let set t v = Atomic.set t.value v

let add t n = ignore (Atomic.fetch_and_add t.value n)

let sub t n = ignore (Atomic.fetch_and_add t.value (-n))

let incr t = add t 1

let decr t = sub t 1

let get t = Atomic.get t.value

let reset t = Atomic.set t.value 0

let name t = t.name

let help t = t.help
