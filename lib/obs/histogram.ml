(* A fixed log2-scale histogram over non-negative integer samples
   (nanoseconds, entry counts, label sizes).

   Bucket [i] counts samples [v] with [upper_bound (i-1) < v <= upper_bound i]
   where [upper_bound i = 2^i]; bucket 0 holds everything <= 1 (including
   clamped non-positive samples) and the last bucket is unbounded.  The
   bucket count is fixed at creation so [observe] is an index computation
   (branchless bit probing, no loop-carried refs) plus three
   [Atomic.fetch_and_add]s and a CAS loop for the exact maximum — no
   allocation on the hot path, safe from any domain. *)

let n_buckets = 63

type t = {
  name : string;
  help : string;
  buckets : int Atomic.t array; (* length [n_buckets] *)
  sum : int Atomic.t;
  count : int Atomic.t;
  maximum : int Atomic.t;
}

let make ~name ~help =
  {
    name;
    help;
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    sum = Atomic.make 0;
    count = Atomic.make 0;
    maximum = Atomic.make 0;
  }

(* Inclusive upper bound of bucket [i]; the last bucket absorbs the rest. *)
let upper_bound i = if i >= n_buckets - 1 then max_int else 1 lsl i

(* Smallest [i] with [v <= 2^i], i.e. ceil(log2 v); allocation-free. *)
let bucket_of_value v =
  if v <= 1 then 0
  else begin
    let v = v - 1 in
    let r5 = if v lsr 32 <> 0 then 32 else 0 in
    let v = v lsr r5 in
    let r4 = if v lsr 16 <> 0 then 16 else 0 in
    let v = v lsr r4 in
    let r3 = if v lsr 8 <> 0 then 8 else 0 in
    let v = v lsr r3 in
    let r2 = if v lsr 4 <> 0 then 4 else 0 in
    let v = v lsr r2 in
    let r1 = if v lsr 2 <> 0 then 2 else 0 in
    let v = v lsr r1 in
    let r0 = if v lsr 1 <> 0 then 1 else 0 in
    let i = r5 + r4 + r3 + r2 + r1 + r0 + 1 in
    if i > n_buckets - 1 then n_buckets - 1 else i
  end

let rec update_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_max a v

let observe t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of_value v) 1);
  ignore (Atomic.fetch_and_add t.sum v);
  ignore (Atomic.fetch_and_add t.count 1);
  update_max t.maximum v

let count t = Atomic.get t.count

let sum t = Atomic.get t.sum

let max_value t = Atomic.get t.maximum

let bucket_counts t = Array.map Atomic.get t.buckets

let reset t =
  Array.iter (fun a -> Atomic.set a 0) t.buckets;
  Atomic.set t.sum 0;
  Atomic.set t.count 0;
  Atomic.set t.maximum 0

let name t = t.name

let help t = t.help

(* Approximate distribution digest from the buckets (counts are read
   non-atomically with respect to each other, which is fine for reporting).
   A percentile resolves to the upper bound of the bucket the rank falls
   into, except in the last populated bucket where the exact tracked
   maximum is tighter. *)
let summary t : Hopi_util.Stats.summary =
  let counts = bucket_counts t in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Hopi_util.Stats.empty_summary
  else begin
    let maximum = max_value t in
    let percentile p =
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      let rank = if rank < 1 then 1 else rank in
      let rec go i cum =
        if i >= n_buckets then float_of_int maximum
        else begin
          let cum = cum + counts.(i) in
          if cum >= rank then
            let ub = upper_bound i in
            float_of_int (if ub > maximum then maximum else ub)
          else go (i + 1) cum
        end
      in
      go 0 0
    in
    {
      Hopi_util.Stats.n = total;
      mean = float_of_int (sum t) /. float_of_int total;
      p50 = percentile 50.0;
      p95 = percentile 95.0;
      p99 = percentile 99.0;
      max = float_of_int maximum;
    }
  end
