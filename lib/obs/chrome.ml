(* Chrome trace-event exporter over the span tree.

   Emits the JSON Array/Object format understood by chrome://tracing and
   Perfetto (ui.perfetto.dev): one complete event (ph "X") per span, with
   [ts]/[dur] in microseconds relative to the earliest recorded root, the
   opening domain as the thread lane, and the span's counters in [args].
   Nesting is positional — Perfetto stacks events on the same lane by
   their time ranges, which is exactly what the hierarchical span tree
   encodes — so the 3.2s [join.psg.apply] phase shows up as a visually
   inspectable flame chart instead of a printed table.

   Schema per event:
     {"name":S,"cat":"hopi","ph":"X","ts":F,"dur":F,"pid":1,"tid":N,
      "args":{"exclusive_us":F,<counter>:N,...}}
   plus one metadata event (ph "M") naming the process and each lane. *)

let pid = 1

let add_us b ns =
  (* microseconds with nanosecond resolution; always finite *)
  Buffer.add_string b (Printf.sprintf "%.3f" (float_of_int ns /. 1e3))

let rec emit_span b ~base first (sp : Trace.span) =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_string b {|{"name":|};
  Export.escape_string b sp.Trace.name;
  Buffer.add_string b {|,"cat":"hopi","ph":"X","ts":|};
  add_us b (sp.Trace.start_ns - base);
  Buffer.add_string b {|,"dur":|};
  add_us b sp.Trace.duration_ns;
  Buffer.add_string b (Printf.sprintf {|,"pid":%d,"tid":%d,"args":{"exclusive_us":|} pid sp.Trace.tid);
  add_us b (Trace.exclusive_ns sp);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      Export.escape_string b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    (Trace.counters sp);
  Buffer.add_string b "}}";
  List.iter (emit_span b ~base first) (Trace.children sp)

let emit_metadata b first ~tid ~meta_name ~value =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_string b
    (Printf.sprintf {|{"name":"%s","ph":"M","pid":%d,"tid":%d,"args":{"name":|} meta_name pid tid);
  Export.escape_string b value;
  Buffer.add_string b "}}"

let rec span_tids acc (sp : Trace.span) =
  let acc = if List.mem sp.Trace.tid acc then acc else sp.Trace.tid :: acc in
  List.fold_left span_tids acc (Trace.children sp)

let to_json () =
  let roots = Trace.roots () in
  let base =
    List.fold_left (fun acc sp -> min acc sp.Trace.start_ns) max_int roots
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"traceEvents":[|};
  let first = ref true in
  emit_metadata b first ~tid:0 ~meta_name:"process_name" ~value:"hopi";
  List.iter
    (fun tid ->
      emit_metadata b first ~tid ~meta_name:"thread_name"
        ~value:(Printf.sprintf "domain %d" tid))
    (List.sort compare (List.fold_left span_tids [] roots));
  List.iter (emit_span b ~base first) roots;
  Buffer.add_string b {|],"displayTimeUnit":"ms"}|};
  Buffer.contents b

let n_events () =
  let rec count sp = 1 + List.fold_left (fun acc c -> acc + count c) 0 (Trace.children sp) in
  List.fold_left (fun acc sp -> acc + count sp) 0 (Trace.roots ())

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ());
      output_char oc '\n')
