(* A monotonically increasing counter.  [incr]/[add] compile to a single
   [Atomic.fetch_and_add] on an immediate int: lock-free, allocation-free,
   and safe to call concurrently from any domain (the multi-domain
   partition-cover workers in [Hopi_core.Build] record through these). *)

type t = { name : string; help : string; value : int Atomic.t }

let make ~name ~help = { name; help; value = Atomic.make 0 }

let incr t = ignore (Atomic.fetch_and_add t.value 1)

let add t n = ignore (Atomic.fetch_and_add t.value n)

let get t = Atomic.get t.value

let reset t = Atomic.set t.value 0

let name t = t.name

let help t = t.help
