(* Latency SLOs over a histogram.

   An SLO couples a duration histogram with configurable p50/p95/p99
   targets and publishes both sides as gauges, so a scrape (or a
   BENCH_*.json diff) can see observed-vs-target at a glance:

     hopi_slo_<name>_p50_ns / _p95_ns / _p99_ns          observed
     hopi_slo_<name>_p50_target_ns / ...                 configured (0 = unset)
     hopi_slo_<name>_ok                                  1 iff every set target holds
     hopi_slo_<name>_breaches_total                      updates that found a miss

   [update] recomputes the digest from the histogram; callers decide the
   cadence (Reqtrace refreshes every few hundred requests and at dump
   time, so the gauges are cheap to keep and never scanned per query). *)

type t = {
  name : string;
  hist : Histogram.t;
  observed : Gauge.t array; (* p50, p95, p99 *)
  targets : Gauge.t array; (* same order; 0 = no target configured *)
  g_ok : Gauge.t;
  m_breaches : Counter.t;
}

let percentile_labels = [| "p50"; "p95"; "p99" |]

let create ~name ~hist =
  let g suffix help = Registry.gauge (Printf.sprintf "hopi_slo_%s_%s" name suffix) ~help in
  {
    name;
    hist;
    observed =
      Array.map
        (fun p -> g (p ^ "_ns") (Printf.sprintf "Observed %s latency" p))
        percentile_labels;
    targets =
      Array.map
        (fun p -> g (p ^ "_target_ns") (Printf.sprintf "Configured %s latency target (0 = unset)" p))
        percentile_labels;
    g_ok = g "ok" "1 when every configured latency target holds, else 0";
    m_breaches =
      Registry.counter
        (Printf.sprintf "hopi_slo_%s_breaches_total" name)
        ~help:"SLO updates that found at least one latency target missed";
  }

let name t = t.name

let set_targets ?p50_ns ?p95_ns ?p99_ns t =
  let set i = function None -> () | Some ns -> Gauge.set t.targets.(i) (max 0 ns) in
  set 0 p50_ns;
  set 1 p95_ns;
  set 2 p99_ns

(* Recompute observed percentiles and the ok/breach verdict.  An empty
   histogram meets every target (there is nothing to be slow yet).
   Returns whether all configured targets hold. *)
let update t =
  let s = Histogram.summary t.hist in
  let observed = [| s.Hopi_util.Stats.p50; s.Hopi_util.Stats.p95; s.Hopi_util.Stats.p99 |] in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      let v = if Float.is_finite v then int_of_float v else 0 in
      Gauge.set t.observed.(i) v;
      let target = Gauge.get t.targets.(i) in
      if target > 0 && s.Hopi_util.Stats.n > 0 && v > target then ok := false)
    observed;
  Gauge.set t.g_ok (if !ok then 1 else 0);
  if not !ok then Counter.incr t.m_breaches;
  !ok

let met t = Gauge.get t.g_ok = 1
