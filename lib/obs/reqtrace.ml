(* Per-request tracing for the serving path.

   Every query evaluated by [Hopi_serve.Batch] gets a request id and a
   record of what serving it cost: latency, label-cache hits/misses,
   label sets probed, and pages read off the store.  Attribution works
   without any per-request plumbing through the storage stack: the
   instrumented layers bump *domain-local* cells ([Local] below) next to
   their process-wide counters, and because one query runs entirely on
   one pool domain, the cell deltas between [start] and [finish] belong
   to exactly that request.

   [finish] feeds three consumers:
   - per-query-kind latency histograms
     [hopi_serve_query_kind_<kind>_duration_ns] (the per-kind breakdown
     the paper's evaluation tables need);
   - the [serve_query] {!Slo} (p50/p95/p99 gauges against configurable
     targets), refreshed every [slo_update_every] requests;
   - a bounded ring of slow-query samples ([slowlog]) for any request at
     or above the threshold, with an explain-style dump ([pp_slowlog]).

   The fast path (request below the threshold) is two clock reads, a
   4-slot array snapshot and one histogram observe — no locks. *)

module Timer = Hopi_util.Timer

(* {1 Domain-local attribution cells} *)

module Local = struct
  let n_slots = 4

  let pager_reads = 0

  let cache_hits = 1

  let cache_misses = 2

  let labels_probed = 3

  let key : int array Domain.DLS.key = Domain.DLS.new_key (fun () -> Array.make n_slots 0)

  let bump slot =
    let a = Domain.DLS.get key in
    a.(slot) <- a.(slot) + 1

  (* called by [Hopi_storage.Pager] on every page read off the backing store *)
  let note_pager_read () = bump pager_reads

  (* called by [Hopi_serve.Label_cache.find] *)
  let note_cache_hit () = bump cache_hits

  let note_cache_miss () = bump cache_misses

  (* called by [Hopi_serve.Snapshot] per label-set fetch *)
  let note_label_probe () = bump labels_probed

  let snapshot () = Array.copy (Domain.DLS.get key)
end

(* {1 Request records} *)

type sample = {
  id : int;
  kind : string;
  query : string;
  answer : string;
  latency_ns : int;
  cache_hits : int;
  cache_misses : int;
  labels_probed : int;
  pager_reads : int;
  conn : int;  (* connection id when served over a socket; 0 = local *)
  queue_wait_ns : int;  (* admission-queue wait before evaluation began *)
}

type token = { t0 : Timer.t; base : int array }

let next_id = Atomic.make 0

let start () = { t0 = Timer.start (); base = Local.snapshot () }

(* {1 Per-kind histograms}

   One histogram per query kind, resolved through the registry on first
   sight of the kind and memoized in a per-domain table so the hot path
   never touches the registry mutex. *)

let kind_hist_key : (string, Histogram.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let kind_histogram kind =
  let tbl = Domain.DLS.get kind_hist_key in
  match Hashtbl.find_opt tbl kind with
  | Some h -> h
  | None ->
    let h =
      Registry.histogram
        (Printf.sprintf "hopi_serve_query_kind_%s_duration_ns" kind)
        ~help:(Printf.sprintf "Service time of %s queries" kind)
    in
    Hashtbl.add tbl kind h;
    h

(* {1 SLO} *)

let overall_hist =
  Registry.histogram "hopi_serve_query_duration_ns" ~help:"Per-query service time"

let slo = Slo.create ~name:"serve_query" ~hist:overall_hist

(* refresh cadence for the SLO gauges (must be a power of two) *)
let slo_update_every = 256

(* {1 Slow-query log} *)

let m_slow =
  Registry.counter "hopi_serve_slow_queries_total"
    ~help:"Queries at or above the slow-query threshold"

(* max_int = disabled; [--slow-ms 0] records every query *)
let slow_threshold_ns = Atomic.make max_int

let set_slow_threshold_ns ns = Atomic.set slow_threshold_ns (max 0 ns)

let disable_slowlog () = Atomic.set slow_threshold_ns max_int

let slow_threshold () = Atomic.get slow_threshold_ns

let slowlog_mu = Mutex.create ()

let default_slowlog_capacity = 128

let slowlog_cap = ref default_slowlog_capacity

let slowlog_ring : sample option array ref = ref (Array.make default_slowlog_capacity None)

let slowlog_next = ref 0 (* ring slot the next sample lands in *)

let slowlog_seen = ref 0 (* samples ever pushed (ring may have dropped some) *)

let set_slowlog_capacity n =
  Mutex.protect slowlog_mu (fun () ->
      let n = max 1 n in
      slowlog_cap := n;
      slowlog_ring := Array.make n None;
      slowlog_next := 0;
      slowlog_seen := 0)

let slowlog_push s =
  Counter.incr m_slow;
  Mutex.protect slowlog_mu (fun () ->
      !slowlog_ring.(!slowlog_next) <- Some s;
      slowlog_next := (!slowlog_next + 1) mod !slowlog_cap;
      incr slowlog_seen)

(* Newest first.  [slowlog_seen] may exceed the capacity — then the ring
   holds only the most recent [slowlog_cap] samples (drop-oldest). *)
let slowlog () =
  Mutex.protect slowlog_mu (fun () ->
      let ring = !slowlog_ring and cap = !slowlog_cap in
      let n = min !slowlog_seen cap in
      List.init n (fun i ->
          match ring.((!slowlog_next - 1 - i + (2 * cap)) mod cap) with
          | Some s -> s
          | None -> assert false (* slots below [seen] are always filled *)))

(* samples ever pushed, including ones the ring has since dropped *)
let slowlog_total () = Mutex.protect slowlog_mu (fun () -> !slowlog_seen)

let reset_slowlog () =
  Mutex.protect slowlog_mu (fun () ->
      Array.fill !slowlog_ring 0 !slowlog_cap None;
      slowlog_next := 0;
      slowlog_seen := 0)

(* {1 Finishing a request} *)

(* [query]/[answer] are thunks so the rendered text is only materialised
   for requests that actually enter the slow log.  Returns the latency so
   the caller can feed its own aggregate histogram without a second clock
   read.  [conn]/[queue_wait_ns] attribute socket-served requests to their
   connection and the time they spent queued before evaluation; both
   default to 0 for locally evaluated queries. *)
let finish ?(conn = 0) ?(queue_wait_ns = 0) tok ~kind ~query ~answer =
  let latency_ns = Int64.to_int (Timer.elapsed_ns tok.t0) in
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  Histogram.observe (kind_histogram kind) latency_ns;
  Histogram.observe overall_hist latency_ns;
  if id land (slo_update_every - 1) = 0 then ignore (Slo.update slo);
  if latency_ns >= Atomic.get slow_threshold_ns then begin
    let cur = Domain.DLS.get Local.key in
    let delta slot = cur.(slot) - tok.base.(slot) in
    slowlog_push
      {
        id;
        kind;
        query = query ();
        answer = answer ();
        latency_ns;
        cache_hits = delta Local.cache_hits;
        cache_misses = delta Local.cache_misses;
        labels_probed = delta Local.labels_probed;
        pager_reads = delta Local.pager_reads;
        conn;
        queue_wait_ns;
      }
  end;
  latency_ns

(* {1 Explain-style dump} *)

let pp_sample ppf s =
  let secs = float_of_int s.latency_ns *. 1e-9 in
  Format.fprintf ppf "#%d %-5s %a  %s -> %s@." s.id s.kind Timer.pp_duration secs
    s.query s.answer;
  if s.conn <> 0 || s.queue_wait_ns > 0 then
    Format.fprintf ppf "      conn #%d · queued %a@." s.conn Timer.pp_duration
      (float_of_int s.queue_wait_ns *. 1e-9);
  Format.fprintf ppf "      cache %d hit%s / %d miss%s · %d label set%s probed · %d page read%s@."
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.cache_misses
    (if s.cache_misses = 1 then "" else "es")
    s.labels_probed
    (if s.labels_probed = 1 then "" else "s")
    s.pager_reads
    (if s.pager_reads = 1 then "" else "s")

let pp_slowlog ppf () =
  let entries = slowlog () in
  let threshold = Atomic.get slow_threshold_ns in
  if threshold = max_int then
    Format.fprintf ppf "slowlog: disabled (serve --slow-ms N to enable)@."
  else
    Format.fprintf ppf "slowlog: %d recorded, showing newest %d (threshold %a)@."
      (slowlog_total ()) (List.length entries) Timer.pp_duration
      (float_of_int threshold *. 1e-9);
  List.iter (pp_sample ppf) entries
