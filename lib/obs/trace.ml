(* Lightweight span tracer.

   [with_span "build.join" f] times [f] on the monotonic clock and records
   the span into a per-domain stack (domain-local storage, so concurrent
   domains each build their own tree without synchronisation).  A span
   closing with no parent becomes a completed root in a mutex-protected
   global list; [roots ()] returns completed roots in completion order.

   [add key n] attaches an integer counter to the innermost open span of
   the calling domain ("entries", "partitions", ...) — the hierarchical
   timing tree therefore carries the phase statistics next to the phase
   timings, which is exactly what the paper's per-phase evaluation tables
   (Section 7) need.

   Spans are deliberately coarse (per phase, not per operation): opening
   one allocates a small record, so hot loops should record into
   [Counter]/[Histogram] instead and let the enclosing span aggregate. *)

type span = {
  name : string;
  start_ns : int; (* monotonic clock at open; Chrome-trace [ts] source *)
  tid : int; (* opening domain's id; Chrome-trace lane *)
  mutable duration_ns : int;
  mutable counters : (string * int) list; (* accumulated; unordered *)
  mutable children : span list; (* reverse completion order while open *)
}

let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let roots_mu = Mutex.create ()

let completed_roots : span list ref = ref []

(* Root retention is bounded so a long-running server cannot grow span
   memory without limit: past the cap the oldest completed roots are
   dropped (and counted).  Open spans and children are never touched. *)
let default_max_roots = 512

let max_roots = ref default_max_roots

let n_roots = ref 0

let n_dropped = ref 0

let set_max_roots n = Mutex.protect roots_mu (fun () -> max_roots := max 1 n)

let dropped () = Mutex.protect roots_mu (fun () -> !n_dropped)

(* keep the newest [n] of a newest-first list — caller holds [roots_mu] *)
let truncate_roots n =
  if !n_roots > n then begin
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    completed_roots := take n !completed_roots;
    n_dropped := !n_dropped + (!n_roots - n);
    n_roots := n
  end

let with_span name f =
  let stack = Domain.DLS.get stack_key in
  let sp =
    { name; start_ns = Int64.to_int (Hopi_util.Timer.now_ns ());
      tid = (Domain.self () :> int); duration_ns = 0; counters = [];
      children = [] }
  in
  stack := sp :: !stack;
  let t0 = Hopi_util.Timer.start () in
  Fun.protect f ~finally:(fun () ->
      sp.duration_ns <- Int64.to_int (Hopi_util.Timer.elapsed_ns t0);
      (match !stack with
       | top :: rest when top == sp -> stack := rest
       | _ -> () (* unbalanced exit via an inner exception: leave as-is *));
      match !stack with
      | parent :: _ -> parent.children <- sp :: parent.children
      | [] ->
        Mutex.lock roots_mu;
        completed_roots := sp :: !completed_roots;
        incr n_roots;
        truncate_roots !max_roots;
        Mutex.unlock roots_mu)

let add key n =
  match !(Domain.DLS.get stack_key) with
  | [] -> ()
  | sp :: _ -> (
    match List.assoc_opt key sp.counters with
    | Some v -> sp.counters <- (key, v + n) :: List.remove_assoc key sp.counters
    | None -> sp.counters <- (key, n) :: sp.counters)

let current_span_name () =
  match !(Domain.DLS.get stack_key) with
  | [] -> None
  | sp :: _ -> Some sp.name

let children sp = List.rev sp.children

let counters sp = List.sort (fun (a, _) (b, _) -> String.compare a b) sp.counters

(* Self time: total minus the time attributed to child spans. *)
let exclusive_ns sp =
  let inner = List.fold_left (fun acc c -> acc + c.duration_ns) 0 sp.children in
  let ex = sp.duration_ns - inner in
  if ex < 0 then 0 else ex

let roots () =
  Mutex.lock roots_mu;
  let r = List.rev !completed_roots in
  Mutex.unlock roots_mu;
  r

(* Drop completed roots (and the drop statistics).  Call between
   experiments, outside any open span (open spans on any domain are
   unaffected but will complete into the new epoch). *)
let reset () =
  Mutex.lock roots_mu;
  completed_roots := [];
  n_roots := 0;
  n_dropped := 0;
  Mutex.unlock roots_mu

let rec pp_span ?(indent = 0) ppf sp =
  let secs ns = float_of_int ns *. 1e-9 in
  Format.fprintf ppf "%s%-*s %a" (String.make indent ' ')
    (max 1 (32 - indent))
    sp.name Hopi_util.Timer.pp_duration (secs sp.duration_ns);
  if sp.children <> [] then
    Format.fprintf ppf "  (self %a)" Hopi_util.Timer.pp_duration
      (secs (exclusive_ns sp));
  List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) (counters sp);
  Format.fprintf ppf "@.";
  List.iter (pp_span ~indent:(indent + 2) ppf) (children sp)

let pp ppf () = List.iter (pp_span ppf) (roots ())
