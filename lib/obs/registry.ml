(* The process-wide metric registry.

   Instrumented modules create their metrics once at module-initialisation
   time through the factory functions below; recording afterwards touches
   only the metric's own atomics, never the registry.  Registration is the
   cold path and takes a mutex so concurrent domains cannot race the table;
   re-registering a name returns the existing metric, so the factories are
   idempotent (module init order and repeated linking don't matter).

   Naming convention: [hopi_<layer>_<metric>], with counter names suffixed
   [_total] and duration histograms suffixed [_duration_ns] (see
   DESIGN.md, Observability). *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

let mu = Mutex.create ()

let tbl : (string, metric) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let mismatch name =
  invalid_arg
    (Printf.sprintf "Hopi_obs.Registry: %S already registered with another type" name)

let counter ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Counter c) -> c
      | Some _ -> mismatch name
      | None ->
        let c = Counter.make ~name ~help in
        Hashtbl.add tbl name (Counter c);
        c)

let gauge ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Gauge g) -> g
      | Some _ -> mismatch name
      | None ->
        let g = Gauge.make ~name ~help in
        Hashtbl.add tbl name (Gauge g);
        g)

let histogram ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Histogram h) -> h
      | Some _ -> mismatch name
      | None ->
        let h = Histogram.make ~name ~help in
        Hashtbl.add tbl name (Histogram h);
        h)

let find name = with_lock (fun () -> Hashtbl.find_opt tbl name)

(* All registered metrics, sorted by name for stable exports. *)
let metrics () =
  with_lock (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) tbl [])
  |> List.sort (fun a b ->
         let name = function
           | Counter c -> Counter.name c
           | Gauge g -> Gauge.name g
           | Histogram h -> Histogram.name h
         in
         String.compare (name a) (name b))

(* Zero every metric's value; registrations are kept.  The bench harness
   calls this between experiments so each BENCH_*.json is a clean delta. *)
let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Counter.reset c
          | Gauge g -> Gauge.reset g
          | Histogram h -> Histogram.reset h)
        tbl)
