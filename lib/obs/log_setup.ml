(* Shared [Logs] initialisation.

   The CLI, the bench harness and the examples all report through the same
   reporter, so every [Logs.Src] declared in lib/ (hopi.build,
   hopi.maintenance, hopi.join.psg, hopi.query.eval, hopi.storage.pager, ...)
   is visible from every entry point instead of only from `hopi -v`. *)

let setup ?(verbose = false) () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))
