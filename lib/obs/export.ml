(* Exporters over the registry and the span store.

   Three formats, one source of truth:
   - [pp]: human-readable dump (CLI `hopi metrics`, verbose logs);
   - [to_json]: machine-readable snapshot — the schema shared by
     `hopi build --metrics` and the bench harness's BENCH_<experiment>.json
     files, so perf numbers are diffable across PRs;
   - [prometheus]: Prometheus text exposition format for scraping.

   JSON schema:
   {
     "metrics": {
       "<name>": {"type":"counter","value":N}
                | {"type":"gauge","value":N}
                | {"type":"histogram","count":N,"sum":N,"mean":F,
                   "p50":F,"p95":F,"p99":F,"max":N,
                   "buckets":[{"le":N,"count":N}, ...]}   (non-empty buckets)
     },
     "spans": [ {"name":S,"duration_ns":N,"exclusive_ns":N,
                 "counters":{"k":N,...},"children":[...]} ... ]
   } *)

(* {1 A minimal JSON writer} — the toolchain has no JSON library baked in,
   and the subset we emit (objects, arrays, strings, ints, floats) is small
   enough to write by hand. *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no nan/inf literal — "%g" would emit them verbatim and break
   every consumer, so non-finite values degrade to [null]. *)
let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.6g" f)

let comma_sep b emit xs =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      emit x)
    xs

(* {1 JSON} *)

let json_of_metric b (m : Registry.metric) =
  match m with
  | Registry.Counter c ->
    Buffer.add_string b {|{"type":"counter","value":|};
    Buffer.add_string b (string_of_int (Counter.get c));
    Buffer.add_char b '}'
  | Registry.Gauge g ->
    Buffer.add_string b {|{"type":"gauge","value":|};
    Buffer.add_string b (string_of_int (Gauge.get g));
    Buffer.add_char b '}'
  | Registry.Histogram h ->
    let s = Histogram.summary h in
    Buffer.add_string b
      (Printf.sprintf {|{"type":"histogram","count":%d,"sum":%d,"mean":|}
         (Histogram.count h) (Histogram.sum h));
    add_float b s.Hopi_util.Stats.mean;
    Buffer.add_string b {|,"p50":|};
    add_float b s.Hopi_util.Stats.p50;
    Buffer.add_string b {|,"p95":|};
    add_float b s.Hopi_util.Stats.p95;
    Buffer.add_string b {|,"p99":|};
    add_float b s.Hopi_util.Stats.p99;
    Buffer.add_string b
      (Printf.sprintf {|,"max":%d,"buckets":[|} (Histogram.max_value h));
    let counts = Histogram.bucket_counts h in
    let nonempty = ref [] in
    Array.iteri
      (fun i n -> if n > 0 then nonempty := (Histogram.upper_bound i, n) :: !nonempty)
      counts;
    comma_sep b
      (fun (le, n) ->
        Buffer.add_string b (Printf.sprintf {|{"le":%d,"count":%d}|} le n))
      (List.rev !nonempty);
    Buffer.add_string b "]}"

let metric_name = function
  | Registry.Counter c -> Counter.name c
  | Registry.Gauge g -> Gauge.name g
  | Registry.Histogram h -> Histogram.name h

let rec json_of_span b (sp : Trace.span) =
  Buffer.add_string b {|{"name":|};
  escape_string b sp.Trace.name;
  Buffer.add_string b
    (Printf.sprintf {|,"duration_ns":%d,"exclusive_ns":%d,"counters":{|}
       sp.Trace.duration_ns (Trace.exclusive_ns sp));
  comma_sep b
    (fun (k, v) ->
      escape_string b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    (Trace.counters sp);
  Buffer.add_string b {|},"children":[|};
  comma_sep b (json_of_span b) (Trace.children sp);
  Buffer.add_string b "]}"

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"metrics":{|};
  comma_sep
    b
    (fun m ->
      escape_string b (metric_name m);
      Buffer.add_char b ':';
      json_of_metric b m)
    (Registry.metrics ());
  Buffer.add_string b {|},"spans":[|};
  comma_sep b (json_of_span b) (Trace.roots ());
  Buffer.add_string b "]}";
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ());
      output_char oc '\n')

(* {1 Prometheus text exposition format} *)

(* HELP text is a single line in the exposition format: backslashes and
   newlines must be escaped or the metric that follows is unparsable. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus () =
  let b = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun m ->
      match m with
      | Registry.Counter c ->
        header (Counter.name c) (Counter.help c) "counter";
        Buffer.add_string b
          (Printf.sprintf "%s %d\n" (Counter.name c) (Counter.get c))
      | Registry.Gauge g ->
        header (Gauge.name g) (Gauge.help g) "gauge";
        Buffer.add_string b (Printf.sprintf "%s %d\n" (Gauge.name g) (Gauge.get g))
      | Registry.Histogram h ->
        let name = Histogram.name h in
        header name (Histogram.help h) "histogram";
        let counts = Histogram.bucket_counts h in
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            cum := !cum + n;
            (* only materialise boundaries up to the last non-empty bucket *)
            if n > 0 then
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name
                   (Histogram.upper_bound i) !cum))
          counts;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name (Histogram.count h));
        Buffer.add_string b (Printf.sprintf "%s_sum %d\n" name (Histogram.sum h));
        Buffer.add_string b
          (Printf.sprintf "%s_count %d\n" name (Histogram.count h)))
    (Registry.metrics ());
  Buffer.contents b

(* {1 Human-readable} *)

let pp ppf () =
  Format.fprintf ppf "metrics:@.";
  List.iter
    (fun m ->
      match m with
      | Registry.Counter c ->
        Format.fprintf ppf "  %-48s %d@." (Counter.name c) (Counter.get c)
      | Registry.Gauge g ->
        Format.fprintf ppf "  %-48s %d@." (Gauge.name g) (Gauge.get g)
      | Registry.Histogram h ->
        let s = Histogram.summary h in
        Format.fprintf ppf
          "  %-48s count=%d sum=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d@."
          (Histogram.name h) (Histogram.count h) (Histogram.sum h)
          s.Hopi_util.Stats.mean s.Hopi_util.Stats.p50 s.Hopi_util.Stats.p95
          s.Hopi_util.Stats.p99 (Histogram.max_value h))
    (Registry.metrics ());
  if Trace.roots () <> [] then begin
    Format.fprintf ppf "spans:@.";
    Trace.pp ppf ()
  end
