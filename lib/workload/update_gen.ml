module Splitmix = Hopi_util.Splitmix
module Collection = Hopi_collection.Collection

type op =
  | Delete_doc of string
  | Reinsert_doc of string * string
  | Add_link of string * string

let pick_docs ~seed ~n c =
  let rng = Splitmix.create seed in
  let docs = Array.of_list (List.sort compare (Collection.doc_ids c)) in
  Splitmix.shuffle rng docs;
  Array.to_list (Array.sub docs 0 (min n (Array.length docs)))

let deletion_trace ~seed ~n_ops c =
  List.map (fun did -> Delete_doc (Collection.doc_name c did)) (pick_docs ~seed ~n:n_ops c)

let churn_trace ~seed ~n_ops regen c =
  let rng = Splitmix.create (seed + 1) in
  let victims = pick_docs ~seed ~n:(max 1 (n_ops / 2)) c in
  let doc_index name =
    (* names are "<prefix><i>.xml" *)
    let base = Filename.remove_extension name in
    let digits = String.to_seq base |> Seq.filter (fun ch -> ch >= '0' && ch <= '9') in
    int_of_string (String.of_seq digits)
  in
  List.concat_map
    (fun did ->
      let name = Collection.doc_name c did in
      let ops = [ Delete_doc name; Reinsert_doc (name, regen (doc_index name)) ] in
      if Splitmix.float rng 1.0 < 0.2 then
        ops @ [ Add_link (name, Collection.doc_name c (Splitmix.pick rng (Array.of_list (List.sort compare (Collection.doc_ids c))))) ]
      else ops)
    victims
