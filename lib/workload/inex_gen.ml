module Splitmix = Hopi_util.Splitmix

type config = { n_docs : int; seed : int; avg_elements : int }

let default ~n_docs = { n_docs; seed = 2003; avg_elements = 180 }

let doc_name i = Printf.sprintf "inex%d.xml" i

let section_tags = [| "sec"; "ss1"; "ss2" |]

let inline_tags = [| "p"; "ip1"; "it"; "b"; "ref" |]

let words =
  [| "retrieval"; "evaluation"; "element"; "relevance"; "assessment"; "topic";
     "structure"; "markup"; "corpus" |]

let document_xml cfg i =
  let rng = Splitmix.create (cfg.seed + (i * 104729)) in
  let buf = Buffer.create 4096 in
  let adds = Buffer.add_string buf in
  (* budget-driven recursive tree: front matter + body of nested sections *)
  let budget = ref (cfg.avg_elements / 2 + Splitmix.int rng (max cfg.avg_elements 2)) in
  let text () = Splitmix.pick rng words in
  adds (Printf.sprintf "<article id=\"r\">\n<fm><ti>%s %d</ti><au>%s</au></fm>\n<bdy>\n"
          (text ()) i (text ()));
  budget := !budget - 5;
  let rec section depth =
    if !budget > 0 then begin
      let tag = section_tags.(min depth (Array.length section_tags - 1)) in
      decr budget;
      adds (Printf.sprintf "<%s><st>%s</st>\n" tag (text ()));
      decr budget;
      let n_parts = 1 + Splitmix.int rng 6 in
      for _ = 1 to n_parts do
        if !budget > 0 then begin
          if depth < 2 && Splitmix.float rng 1.0 < 0.3 then section (depth + 1)
          else begin
            decr budget;
            let tag = Splitmix.pick rng inline_tags in
            adds (Printf.sprintf "<%s>%s</%s>\n" tag (text ()) tag)
          end
        end
      done;
      adds (Printf.sprintf "</%s>\n" tag)
    end
  in
  while !budget > 0 do
    section 0
  done;
  adds "</bdy>\n</article>";
  Buffer.contents buf

let generate cfg =
  let c = Hopi_collection.Collection.create () in
  for i = 0 to cfg.n_docs - 1 do
    match
      Hopi_collection.Collection.add_document_xml c ~name:(doc_name i)
        (document_xml cfg i)
    with
    | Ok _ -> ()
    | Error e ->
      failwith
        (Format.asprintf "Inex_gen: generated invalid XML for %s: %a" (doc_name i)
           Hopi_xml.Xml_parser.pp_error e)
  done;
  c
