(* Seeded query workloads (see the interface).  The Zipf sampler inverts
   the cumulative distribution with a binary search over a precomputed
   table — O(m) setup, O(log m) per draw, exact for any finite rank
   count. *)

module Splitmix = Hopi_util.Splitmix

let uniform_pairs ~seed ~nodes ~n =
  if Array.length nodes = 0 then invalid_arg "Query_gen.uniform_pairs: no nodes";
  let rng = Splitmix.create seed in
  Array.init n (fun _ -> (Splitmix.pick rng nodes, Splitmix.pick rng nodes))

let zipf_cdf ~theta m =
  let cdf = Array.make m 0.0 in
  let total = ref 0.0 in
  for rank = 0 to m - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (rank + 1)) theta);
    cdf.(rank) <- !total
  done;
  (* normalise so the last slot is exactly 1 *)
  let z = !total in
  Array.map (fun c -> c /. z) cdf

let default_theta = 1.1

let zipf_pairs ~theta ~seed ~nodes ~n =
  let m = Array.length nodes in
  if m = 0 then invalid_arg "Query_gen.zipf_pairs: no nodes";
  if theta <= 0.0 then invalid_arg "Query_gen.zipf_pairs: theta <= 0";
  let cdf = zipf_cdf ~theta m in
  let rng = Splitmix.create seed in
  let draw () =
    let u = Splitmix.float rng 1.0 in
    (* first rank whose cumulative mass reaches u *)
    let lo = ref 0 and hi = ref (m - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    nodes.(!lo)
  in
  Array.init n (fun _ -> (draw (), draw ()))
