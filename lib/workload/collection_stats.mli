(** Collection features as reported in the paper's Table 1. *)

type t = {
  n_docs : int;
  n_elements : int;
  n_links : int;  (** intra + inter *)
  n_inter_links : int;
  size_bytes : int;  (** serialised size of all documents *)
}

val of_collection : Hopi_collection.Collection.t -> t

val pp_row : name:string -> Format.formatter -> t -> unit
(** One Table 1 row: [name  #docs  #els  #links  size]. *)
