(** Deterministic reachability-query workloads for the serving layer.

    Real query traffic is rarely uniform: a few hot elements (landing
    pages, survey articles, hub publications) attract most probes.  The
    serving benchmarks therefore measure two source/target distributions
    over the same node population:

    - {!uniform_pairs} — every node equally likely; the worst case for a
      label cache (no reuse beyond chance);
    - {!zipf_pairs} — node ranks drawn from a Zipf law with exponent
      [theta] ({!default_theta} is the classic web-traffic ballpark); the hot
      head makes cache hit rates — and therefore warm throughput —
      representative of skewed production workloads.

    Both are seeded {!Hopi_util.Splitmix} streams: equal seeds yield equal
    workloads across runs and machines. *)

val uniform_pairs : seed:int -> nodes:int array -> n:int -> (int * int) array
(** [n] (source, target) pairs drawn uniformly (with replacement) from
    [nodes].  @raise Invalid_argument on an empty [nodes]. *)

val default_theta : float
(** 1.1 — mildly skewed, the classic web-traffic ballpark. *)

val zipf_pairs :
  theta:float -> seed:int -> nodes:int array -> n:int -> (int * int) array
(** [n] pairs whose source and target ranks are independent Zipf([theta])
    draws over [nodes] (rank 0 = [nodes.(0)] is the hottest; shuffle the
    array first if rank order should not follow node order).
    @raise Invalid_argument on an empty [nodes] or [theta <= 0]. *)
