module Collection = Hopi_collection.Collection

type t = {
  n_docs : int;
  n_elements : int;
  n_links : int;
  n_inter_links : int;
  size_bytes : int;
}

let of_collection c =
  {
    n_docs = Collection.n_docs c;
    n_elements = Collection.n_elements c;
    n_links = Collection.n_links c;
    n_inter_links = Collection.n_inter_links c;
    size_bytes = Collection.serialized_size c;
  }

let pp_size ppf bytes =
  if bytes >= 1_048_576 then Format.fprintf ppf "%.1fMB" (float_of_int bytes /. 1_048_576.0)
  else if bytes >= 1024 then Format.fprintf ppf "%.1fKB" (float_of_int bytes /. 1024.0)
  else Format.fprintf ppf "%dB" bytes

let pp_row ~name ppf t =
  let size = Format.asprintf "%a" pp_size t.size_bytes in
  Format.fprintf ppf "%-8s %8d %10d %8d %10s" name t.n_docs t.n_elements t.n_links size
