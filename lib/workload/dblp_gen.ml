module Splitmix = Hopi_util.Splitmix

type config = {
  n_docs : int;
  seed : int;
  avg_citations : float;
  citation_alpha : float;
  forward_fraction : float;
  intra_link_prob : float;
}

let default ~n_docs =
  {
    n_docs;
    seed = 20050405;  (* ICDE 2005 *)
    avg_citations = 4.1;
    citation_alpha = 2.0;
    forward_fraction = 0.05;
    intra_link_prob = 0.2;
  }

let doc_name i = Printf.sprintf "pub%d.xml" i

let first_names = [| "Ralf"; "Anja"; "Gerhard"; "Edith"; "Haim"; "Tova"; "Roy"; "Jennifer" |]

let last_names =
  [| "Schenkel"; "Theobald"; "Weikum"; "Cohen"; "Kaplan"; "Milo"; "Goldman"; "Widom" |]

let venues = [| "ICDE"; "VLDB"; "SIGMOD"; "EDBT"; "SODA"; "PODS" |]

let words =
  [| "index"; "xml"; "reachability"; "cover"; "query"; "graph"; "path"; "search";
     "ranking"; "distance"; "update"; "partition" |]

(* Citation targets: zero-inflated power-law out-degree (a third of the
   publications cite nothing inside the collection, as in real bibliographic
   subsets — this also drives the fraction of documents that separate the
   document-level graph, Section 7.3), preferring nearby earlier
   publications, with a small fraction of forward references. *)
let zero_citation_fraction = 0.35

let citations_of rng cfg i =
  if Splitmix.float rng 1.0 < zero_citation_fraction then []
  else begin
    let k =
      let raw = Splitmix.pareto rng ~alpha:cfg.citation_alpha ~xmin:1.0 in
      let mean_pareto = cfg.citation_alpha /. (cfg.citation_alpha -. 1.0) in
      int_of_float
        (raw /. mean_pareto *. cfg.avg_citations /. (1.0 -. zero_citation_fraction))
    in
    let k = min k 40 in
  let targets = ref [] in
  for _ = 1 to k do
    if Splitmix.float rng 1.0 < cfg.forward_fraction then begin
      (* forward reference *)
      if i + 1 < cfg.n_docs then
        targets := (i + 1 + Splitmix.int rng (cfg.n_docs - i - 1)) :: !targets
    end
    else if i > 0 then begin
      (* backward, biased to recent: square the uniform draw *)
      let u = Splitmix.float rng 1.0 in
      let back = 1 + int_of_float (u *. u *. float_of_int (min i 200)) in
      targets := max 0 (i - back) :: !targets
    end
    done;
    List.sort_uniq compare (List.filter (fun j -> j <> i) !targets)
  end

let document_xml cfg i =
  let rng = Splitmix.create (cfg.seed + (i * 7919)) in
  let buf = Buffer.create 1024 in
  let adds = Buffer.add_string buf in
  let title () =
    let n = 2 + Splitmix.int rng 4 in
    String.concat " " (List.init n (fun _ -> Splitmix.pick rng words))
  in
  adds (Printf.sprintf "<article id=\"r\" key=\"conf/%s/p%d\">\n"
          (Splitmix.pick rng venues) i);
  adds (Printf.sprintf "  <title id=\"t\">%s</title>\n" (title ()));
  let n_authors = 1 + Splitmix.int rng 3 in
  adds "  <authors>\n";
  for a = 0 to n_authors - 1 do
    adds (Printf.sprintf "    <author id=\"a%d\">%s %s</author>\n" a
            (Splitmix.pick rng first_names) (Splitmix.pick rng last_names))
  done;
  adds "  </authors>\n";
  adds (Printf.sprintf "  <year>%d</year>\n" (1990 + Splitmix.int rng 15));
  adds (Printf.sprintf "  <pages>%d-%d</pages>\n" (1 + Splitmix.int rng 500)
          (501 + Splitmix.int rng 500));
  adds (Printf.sprintf "  <booktitle>%s</booktitle>\n" (Splitmix.pick rng venues));
  let cites = citations_of rng cfg i in
  if cites <> [] then begin
    adds "  <citations>\n";
    List.iteri
      (fun k j ->
        (* most citations point at the cited document's root element;
           IDREF-style intra-document links reference the first author *)
        if Splitmix.float rng 1.0 < cfg.intra_link_prob then
          adds (Printf.sprintf "    <cite id=\"c%d\" xlink:href=\"%s#r\" idref=\"a0\"/>\n"
                  k (doc_name j))
        else
          adds (Printf.sprintf "    <cite id=\"c%d\" xlink:href=\"%s#r\"/>\n" k
                  (doc_name j)))
      cites;
    adds "  </citations>\n"
  end;
  adds "</article>";
  Buffer.contents buf

let generate cfg =
  let c = Hopi_collection.Collection.create () in
  for i = 0 to cfg.n_docs - 1 do
    match
      Hopi_collection.Collection.add_document_xml c ~name:(doc_name i)
        (document_xml cfg i)
    with
    | Ok _ -> ()
    | Error e ->
      failwith
        (Format.asprintf "Dblp_gen: generated invalid XML for %s: %a" (doc_name i)
           Hopi_xml.Xml_parser.pp_error e)
  done;
  c
