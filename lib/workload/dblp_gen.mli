(** Synthetic DBLP-like collection (see DESIGN.md, substitutions).

    The paper's DBLP subset has 6,210 publications (one XML document each,
    ~27 elements on average) and 25,368 citation XLinks (~4 per document).
    This generator reproduces those structural properties: one
    bibliographic-record tree per publication, power-law citation
    out-degrees, citations mostly to earlier publications (plus a
    configurable fraction of forward references that exercise pending-link
    resolution), and occasional intra-document IDREFs. *)

type config = {
  n_docs : int;
  seed : int;
  avg_citations : float;  (** mean citation out-degree (paper ≈ 4.1) *)
  citation_alpha : float;  (** Pareto shape for out-degrees (2.0) *)
  forward_fraction : float;  (** citations to later documents (0.05) *)
  intra_link_prob : float;  (** probability of an intra-document IDREF (0.2) *)
}

val default : n_docs:int -> config

val doc_name : int -> string
(** ["pub<i>.xml"]. *)

val document_xml : config -> int -> string
(** The XML text of the i-th publication (deterministic in [config]). *)

val generate : config -> Hopi_collection.Collection.t
(** Builds the full collection by parsing every generated document. *)
