(** Synthetic INEX-like collection: deep article trees *without* any
    inter-document links (the paper's INEX collection is tree-structured:
    12,232 documents, ~986 elements each, no links between documents).
    With no links, every document separates the document-level graph, so
    the optimized deletion algorithm always applies (Section 7.3). *)

type config = {
  n_docs : int;
  seed : int;
  avg_elements : int;  (** target mean elements per document *)
}

val default : n_docs:int -> config

val doc_name : int -> string

val document_xml : config -> int -> string

val generate : config -> Hopi_collection.Collection.t
