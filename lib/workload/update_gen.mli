(** Update traces for the maintenance experiments (Section 7.3): sequences
    of document deletions / re-insertions / modifications and link edits
    over a generated collection. *)

type op =
  | Delete_doc of string  (** by document name *)
  | Reinsert_doc of string * string  (** name, XML text *)
  | Add_link of string * string  (** source doc name -> target doc name (root) *)

val deletion_trace :
  seed:int -> n_ops:int -> Hopi_collection.Collection.t -> op list
(** Random document deletions (documents chosen uniformly). *)

val churn_trace :
  seed:int -> n_ops:int -> (int -> string) -> Hopi_collection.Collection.t -> op list
(** Alternating deletions and re-insertions of the same documents; the
    function regenerates the XML of document [i] (e.g.
    [Dblp_gen.document_xml cfg]). *)
