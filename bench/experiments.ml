(* One experiment per evaluation artifact of the paper (see DESIGN.md §4 and
   EXPERIMENTS.md).  Absolute numbers are measured on scaled-down synthetic
   collections; each experiment prints the paper's reference values next to
   the measured ones so the *shape* (who wins, by what factor) is auditable. *)

open Bench_common
module Collection = Hopi_collection.Collection
module Partitioning = Hopi_collection.Partitioning
module Cover = Hopi_twohop.Cover
module Dist_cover = Hopi_twohop.Dist_cover
module Dist_builder = Hopi_twohop.Dist_builder
module Verify = Hopi_twohop.Verify
module Weights = Hopi_partition.Weights
module Pager = Hopi_storage.Pager
module Cover_store = Hopi_storage.Cover_store
module Stats = Hopi_workload.Collection_stats
module Dblp = Hopi_workload.Dblp_gen
module Inex = Hopi_workload.Inex_gen
module Timer = Hopi_util.Timer
module Splitmix = Hopi_util.Splitmix
open Hopi_core

(* {1 Table 1: collection features} *)

let table1 (s : scale) =
  section "Table 1: features of the XML collections";
  let dblp = dblp_collection s.dblp_docs in
  let inex = inex_collection s.inex_docs in
  let row name c =
    let st = Stats.of_collection c in
    [
      name;
      string_of_int st.Stats.n_docs;
      string_of_int st.Stats.n_elements;
      string_of_int st.Stats.n_inter_links;
      Fmt.str "%.1fMB" (float_of_int st.Stats.size_bytes /. 1_048_576.0);
    ]
  in
  print_table
    [ "coll."; "#docs"; "#els"; "#links"; "size" ]
    [
      row "DBLP" dblp;
      [ "(paper"; "6,210"; "168,991"; "25,368"; "13.2MB)" ];
      row "INEX" inex;
      [ "(paper"; "12,232"; "12,061,348"; "408,085"; "534MB)" ];
    ];
  note "DBLP: one document per publication, citation XLinks; INEX: trees, no links.";
  note "paper rows are the full-size originals; measured rows are the scaled generators."

(* {1 Section 7.2 narrative: unpartitioned cover vs divide & conquer} *)

let closure_experiment (s : scale) =
  section "7.2 (text): transitive closure and the unpartitioned baseline";
  let c = dblp_collection s.small_docs in
  let tc = total_closure c in
  note "collection: %d docs, %d elements" (Collection.n_docs c) (Collection.n_elements c);
  note "transitive closure: %d connections (paper: 344,992,370)" tc;
  (* actually materialise the closure in the storage engine *)
  let closure_pager = Pager.create ~pool_pages:512 Pager.Memory in
  let cstore = Hopi_storage.Closure_store.create closure_pager in
  Hopi_storage.Closure_store.load cstore
    (Hopi_graph.Closure.compute (Collection.element_graph c));
  note "materialised closure + backward index: %d integers on %d pages (paper: 1,379,969,480 integers)"
    (Hopi_storage.Closure_store.stored_integers cstore)
    (Pager.n_pages closure_pager);
  let flat, t_flat =
    Timer.time (fun () -> Build.build { Config.default with partitioner = Config.Whole } c)
  in
  let flat_size = Cover.size flat.Build.cover in
  note "";
  note "unpartitioned 2-hop cover: %d entries in %s  (compression %.1fx)" flat_size
    (seconds t_flat)
    (float_of_int tc /. float_of_int flat_size);
  note "  (paper: 1,289,930 entries, 45h23m, ~80GB RAM, compression ~267x)";
  let dc_config =
    {
      Config.baseline_edbt04 with
      partitioner = Config.Random_nodes (max 1 (Collection.n_elements c / 10));
    }
  in
  let dc, t_dc = Timer.time (fun () -> Build.build dc_config c) in
  let dc_size = Cover.size dc.Build.cover in
  note "old divide & conquer:       %d entries in %s  (compression %.1fx)" dc_size
    (seconds t_dc)
    (float_of_int tc /. float_of_int dc_size);
  note "  (paper: 15,976,677 entries, 3h10m, compression 21.6x)";
  note "";
  note "shape check: flat compresses ~%.0fx better but is ~%.0fx slower to build"
    (float_of_int dc_size /. float_of_int flat_size)
    (t_flat /. Float.max t_dc 1e-9)

(* {1 Table 2: build time and size across configurations} *)

let table2_configs c =
  let els = Collection.n_elements c in
  let tc = total_closure c in
  let pct whole p = max 1 (whole * p / 100) in
  [
    (* the paper's baseline: old partitioner + old incremental join *)
    ("baseline", Config.{ baseline_edbt04 with partitioner = Random_nodes (pct els 10) });
    (* Px: old partitioner (element-count limit at x% of elements), new join *)
    ("P5", Config.{ default with partitioner = Random_nodes (pct els 5); weight_scheme = Weights.Links });
    ("P10", Config.{ default with partitioner = Random_nodes (pct els 10); weight_scheme = Weights.Links });
    ("P20", Config.{ default with partitioner = Random_nodes (pct els 20); weight_scheme = Weights.Links });
    ("P50", Config.{ default with partitioner = Random_nodes (pct els 50); weight_scheme = Weights.Links });
    (* one document per partition *)
    ("single", Config.{ default with partitioner = Singleton });
    (* Nx: new closure-aware partitioner (connection limit at x‰ of the
       total closure), new join, connection-based weights *)
    ("N10", Config.{ default with partitioner = Closure_aware (pct tc 1) });
    ("N25", Config.{ default with partitioner = Closure_aware (max 1 (tc * 25 / 10000)) });
    ("N50", Config.{ default with partitioner = Closure_aware (pct tc 5 / 10) });
    ("N100", Config.{ default with partitioner = Closure_aware (pct tc 1 * 10) });
  ]

let table2 (s : scale) =
  section "Table 2: index build time and size per configuration";
  let c = dblp_collection s.dblp_docs in
  let tc = total_closure c in
  note "DBLP scale: %d docs, %d elements, closure %d connections"
    (Collection.n_docs c) (Collection.n_elements c) tc;
  note "Px = old partitioner at x%% of elements + PSG join;";
  note "Nx = closure-aware partitioner at x/1000 of the closure + PSG join;";
  note "baseline = old partitioner + old incremental join (EDBT'04).";
  let baseline_time = ref None in
  let rows =
    List.map
      (fun (name, config) ->
        let r, t = Timer.time (fun () -> Build.build config c) in
        if name = "baseline" then baseline_time := Some t;
        let size = Cover.size r.Build.cover in
        [
          name;
          seconds t;
          string_of_int size;
          Fmt.str "%.1f" (float_of_int tc /. float_of_int size);
          string_of_int r.Build.partitioning.Partitioning.n;
          (match !baseline_time with
           | Some bt when name <> "baseline" -> Fmt.str "%.1fx" (bt /. Float.max t 1e-9)
           | _ -> "-");
        ])
      (table2_configs c)
  in
  print_table [ "algorithm"; "time"; "size"; "compr."; "parts"; "speedup" ] rows;
  note "";
  note "paper (DBLP, Table 2): baseline 11,400s/15.98M entries (21.6x);";
  note "  P5 820.8s/9.98M (34.6x); P10 1,198.2s/10.00M; P20 2,286.8s/11.65M;";
  note "  P50 7,835.8s/12.03M; single 22,778s/12.38M (27.9x);";
  note "  N10 1,359.7s/10.00M (34.5x); N25 2,368.3s/10.60M; N50 3,635.8s/10.27M;";
  note "  N100 6,118.9s/12.78M (27.0x).";
  note "shape: new join beats the baseline by ~an order of magnitude in time and";
  note "  reduces the cover; mid-size partitions beat both tiny and huge ones."

(* {1 Section 4.2: center preselection} *)

let preselect (s : scale) =
  section "4.2 (text): preselecting cross-link targets as centers";
  let c = dblp_collection s.dblp_docs in
  let run p =
    let r, t =
      Timer.time (fun () ->
          Build.build { Config.default with preselect_link_targets = p } c)
    in
    (Cover.size r.Build.cover, t)
  in
  let with_size, with_t = run true in
  let without_size, without_t = run false in
  print_table
    [ "preselection"; "size"; "time" ]
    [
      [ "on"; string_of_int with_size; seconds with_t ];
      [ "off"; string_of_int without_size; seconds without_t ];
    ];
  note "paper: preselection decreased the cover by ~10,000 entries (marginal).";
  note "measured delta: %d entries" (without_size - with_size)

(* {1 Section 4.3: edge-weight schemes} *)

let weights (s : scale) =
  section "4.3 (text): edge weights for partitioning (links vs A*D vs A+D)";
  let c = dblp_collection s.dblp_docs in
  let tc = total_closure c in
  let rows =
    List.map
      (fun scheme ->
        let config =
          { Config.default with weight_scheme = scheme }
        in
        let r, t = Timer.time (fun () -> Build.build config c) in
        [
          Weights.scheme_name scheme;
          seconds t;
          string_of_int (Cover.size r.Build.cover);
          Fmt.str "%.1f" (float_of_int tc /. float_of_int (Cover.size r.Build.cover));
          string_of_int (List.length r.Build.partitioning.Partitioning.cross_links);
        ])
      Weights.all_schemes
  in
  print_table [ "weights"; "time"; "size"; "compr."; "cross-links" ] rows;
  note "paper: the new partitioner with A*D weights matched the old partitioner;";
  note "  other combinations were 'not as good'."

(* {1 Section 5: distance-aware index} *)

let distance (s : scale) =
  section "5: distance-aware cover (space overhead + sampling ablation)";
  let c = dblp_collection (max 5 (s.small_docs / 2)) in
  let g = Collection.element_graph c in
  note "collection: %d elements" (Collection.n_elements c);
  let plain, t_plain =
    Timer.time (fun () ->
        let clo = Hopi_graph.Closure.compute g in
        let cover, _ = Hopi_twohop.Builder.build clo in
        cover)
  in
  let (dist_sampled, st_sampled), t_sampled =
    Timer.time (fun () -> Dist_builder.build ~exact_threshold:0 g)
  in
  let (dist_exact, _), t_exact =
    Timer.time (fun () -> Dist_builder.build ~exact_threshold:max_int g)
  in
  let mismatches = List.length (Verify.dist_cover_vs_graph dist_sampled g) in
  print_table
    [ "cover"; "entries"; "build"; "overhead" ]
    [
      [ "plain"; string_of_int (Cover.size plain); seconds t_plain; "1.00x" ];
      [
        "dist (sampled E)";
        string_of_int (Dist_cover.size dist_sampled);
        seconds t_sampled;
        Fmt.str "%.2fx"
          (float_of_int (Dist_cover.size dist_sampled) /. float_of_int (Cover.size plain));
      ];
      [
        "dist (exact E)";
        string_of_int (Dist_cover.size dist_exact);
        seconds t_exact;
        Fmt.str "%.2fx"
          (float_of_int (Dist_cover.size dist_exact) /. float_of_int (Cover.size plain));
      ];
    ];
  note "sampled-density estimates used for %d center candidates (cap %d samples, 98%% CI)"
    st_sampled.Dist_builder.sampled_nodes Dist_builder.max_samples;
  note "distance answers verified against BFS: %d mismatches" mismatches;
  note "paper: low space overhead for including distance information";
  (* storage representation with DIST column *)
  let pager = Pager.create ~pool_pages:128 Pager.Memory in
  let store = Cover_store.create pager in
  Cover_store.load_dist_cover store dist_sampled;
  note "stored with DIST column: %d integers on %d pages"
    (Cover_store.stored_integers store)
    (Pager.n_pages pager)

(* {1 Section 7.3: index maintenance} *)

let maintenance (s : scale) =
  section "7.3: incremental maintenance (separation test, deletions, inserts)";
  (* non-separating deletions recompute a partial closure without divide &
     conquer (exactly as in the paper, Section 7.3), which dominates the
     runtime — the maintenance workload therefore runs at a reduced size *)
  let cfg = Dblp.default ~n_docs:(max 5 (s.small_docs * 3 / 5)) in
  let c = Dblp.generate cfg in
  (* fraction of separating documents + test time over the whole collection *)
  let docs = List.sort compare (Collection.doc_ids c) in
  let test_times = ref [] in
  let separating =
    List.filter
      (fun d ->
        let r, t = Timer.time (fun () -> Maintenance.separates c d) in
        test_times := t :: !test_times;
        r)
      docs
  in
  let frac = float_of_int (List.length separating) /. float_of_int (List.length docs) in
  note "DBLP %d docs: %.0f%% separate the collection (paper: ~60%%)"
    (List.length docs) (100.0 *. frac);
  note "separation test: avg %.2fms (paper: 2s on the full collection)"
    (1000.0 *. Hopi_util.Stats.mean (Array.of_list !test_times));
  (* deletions on a live index *)
  let idx = Hopi.create c in
  let rng = Splitmix.create 7 in
  let sep_times = ref [] and gen_times = ref [] and gen_recomp = ref [] in
  let deletions = 12 in
  for _ = 1 to deletions do
    let live = Array.of_list (List.sort compare (Collection.doc_ids (Hopi.collection idx))) in
    let victim = Splitmix.pick rng live in
    let st = Hopi.remove_document idx victim in
    if st.Maintenance.separating then sep_times := st.Maintenance.delete_seconds :: !sep_times
    else begin
      gen_times := st.Maintenance.delete_seconds :: !gen_times;
      gen_recomp := float_of_int st.Maintenance.recomputed_nodes :: !gen_recomp
    end
  done;
  let avg l = Hopi_util.Stats.mean (Array.of_list l) in
  note "";
  note "deleted %d random documents from the live index:" deletions;
  if !sep_times <> [] then
    note "  separating (fast path):    %d deletions, avg %.0fms (paper: ~13s)"
      (List.length !sep_times) (1000.0 *. avg !sep_times);
  if !gen_times <> [] then begin
    note "  non-separating (general):  %d deletions, avg %.1fs, avg %.0f nodes recomputed"
      (List.length !gen_times) (avg !gen_times) (avg !gen_recomp);
    note "  (paper: sometimes costlier than a rebuild — up to 5%% of the closure recomputed)"
  end;
  (* insertions: put fresh documents back in *)
  let ins_times = ref [] in
  for i = 0 to 5 do
    let name = Dblp.doc_name (cfg.Dblp.n_docs + i) in
    let xml = Dblp.document_xml cfg (cfg.Dblp.n_docs + i) in
    let _, t =
      Timer.time (fun () ->
          match Hopi.insert_document_xml idx ~name xml with
          | Ok id -> id
          | Error _ -> assert false)
    in
    ins_times := t :: !ins_times
  done;
  note "  document insertion:        avg %.0fms (new partition + incremental merge)"
    (1000.0 *. avg !ins_times);
  (* INEX: no links -> every document separates *)
  let inex = inex_collection s.inex_docs in
  let all_sep = List.for_all (fun d -> Maintenance.separates inex d) (Collection.doc_ids inex) in
  note "";
  note "INEX (%d docs, no links): every document separates: %b (paper: 100%%)"
    (Collection.n_docs inex) all_sep

(* {1 Section 7.2: INEX cover} *)

let inex_experiment (s : scale) =
  section "7.2 (text): INEX cover size";
  let c = inex_collection s.inex_docs in
  note "INEX scale: %d docs, %d elements (tree-only)" (Collection.n_docs c)
    (Collection.n_elements c);
  let r, t = Timer.time (fun () -> Build.build Config.default c) in
  let size = Cover.size r.Build.cover in
  let per_node = float_of_int size /. float_of_int (Collection.n_elements c) in
  note "cover: %d entries in %s -> %.2f entries per node" size (seconds t) per_node;
  note "paper: 33,701,084 entries in ~4h, <3 entries per node";
  note "shape check: entries per node below 3: %b" (per_node < 3.0)

(* {1 Extension: FliX-style hybrid index (paper §8 future work)} *)

let flix (s : scale) =
  section "extension: FliX hybrid (tree intervals + skeleton cover) vs full HOPI";
  (* the skeleton cover is built flat (no divide & conquer), so this
     extension runs at a reduced scale *)
  let c = dblp_collection (s.dblp_docs / 2) in
  let hopi, t_hopi = Timer.time (fun () -> Hopi.create c) in
  let fx, t_flix = Timer.time (fun () -> Hopi_flix.Flix.build c) in
  let st = Hopi_flix.Flix.stats fx in
  note "collection: %d elements, %d links; skeleton: %d nodes, %d edges"
    (Collection.n_elements c) (Collection.n_links c) st.Hopi_flix.Flix.skeleton_nodes
    st.Hopi_flix.Flix.skeleton_edges;
  (* query latency over random pairs *)
  let rng = Splitmix.create 3 in
  let els =
    let acc = ref [] in
    Collection.iter_elements c (fun e -> acc := e :: !acc);
    Array.of_list !acc
  in
  let n_queries = 20_000 in
  let pairs =
    Array.init n_queries (fun _ -> (Splitmix.pick rng els, Splitmix.pick rng els))
  in
  let agree = ref true in
  let bench_queries f =
    let _, t =
      Timer.time (fun () -> Array.iter (fun (u, v) -> ignore (f u v)) pairs)
    in
    1e9 *. t /. float_of_int n_queries
  in
  let hopi_ns = bench_queries (Hopi.connected hopi) in
  let flix_ns = bench_queries (Hopi_flix.Flix.connected fx) in
  Array.iter
    (fun (u, v) ->
      if Hopi.connected hopi u v <> Hopi_flix.Flix.connected fx u v then agree := false)
    pairs;
  print_table
    [ "index"; "entries"; "build"; "ns/query" ]
    [
      [ "HOPI (full)"; string_of_int (Hopi.size hopi); seconds t_hopi;
        Fmt.str "%.0f" hopi_ns ];
      [ "FliX hybrid"; string_of_int (Hopi_flix.Flix.size fx); seconds t_flix;
        Fmt.str "%.0f" flix_ns ];
    ];
  note "answers agree on all %d random pairs: %b" n_queries !agree;
  note "the hybrid keeps ~%.1f%% of the entries at ~%.1fx the query latency"
    (100.0 *. float_of_int (Hopi_flix.Flix.size fx) /. float_of_int (Hopi.size hopi))
    (flix_ns /. Float.max hopi_ns 1e-9)

(* {1 Ablation: PSG H̄ strategies} *)

let psg_strategies (s : scale) =
  section "ablation: PSG join H̄ strategies (per-source BFS vs recursive partitioning)";
  let c = dblp_collection s.dblp_docs in
  let run name joiner =
    let config =
      { Config.default with partitioner = Config.Random_nodes 400; joiner }
    in
    let r, t = Timer.time (fun () -> Build.build config c) in
    [ name; seconds t; string_of_int (Cover.size r.Build.cover) ]
  in
  print_table
    [ "H̄ strategy"; "time"; "size" ]
    [
      run "per-source BFS" Config.Psg;
      run "partitioned (1k conns)" (Config.Psg_partitioned 1_000);
      run "partitioned (100k conns)" (Config.Psg_partitioned 100_000);
    ];
  note "both strategies produce identical covers; the recursion bounds the";
  note "memory of the PSG closure at some extra bookkeeping cost (Section 4.1)."

(* {1 Parallel per-partition covers (Section 4.3)} *)

let parallel (s : scale) =
  section "4.3 (text): concurrent per-partition cover computation";
  let c = dblp_collection s.dblp_docs in
  let cores = Domain.recommended_domain_count () in
  note "this machine reports %d recommended domain(s)" cores;
  let run jobs =
    let config =
      { Config.default with partitioner = Config.Closure_aware 20_000; jobs }
    in
    let r, t = Timer.time (fun () -> Build.build config c) in
    [ string_of_int jobs; seconds t; Fmt.str "%.2f" r.Build.cover_seconds;
      string_of_int (Cover.size r.Build.cover) ]
  in
  print_table
    [ "jobs"; "total"; "covers phase"; "size" ]
    [ run 1; run 2; run 4 ];
  note "paper: the closure-aware partitioner yields partitions of similar";
  note "  closure size, so n CPUs give a speedup close to n for the cover";
  note "  phase (the old partitioner is limited by its largest partition).";
  if cores = 1 then
    note "NOTE: only one core is available here, so no speedup is observable."

(* {1 Parallel build: jobs=1 vs jobs=N (Section 4.3 + domain pool)} *)

(* a cheap structural fingerprint of a cover: equal fingerprints over the
   canonical (node-sorted, label-sorted) form attest the jobs=1 and jobs=N
   builds produced the same cover *)
let cover_fingerprint cover =
  List.sort compare (Cover.nodes cover)
  |> List.fold_left
       (fun acc v ->
         let labels =
           ( Hopi_util.Int_set.to_list (Cover.lin cover v),
             Hopi_util.Int_set.to_list (Cover.lout cover v) )
         in
         (acc * 1_000_003) lxor Hashtbl.hash (v, labels))
       0

let parallel_build (s : scale) =
  section "parallel build: jobs=1 vs jobs=N, spill tier, bulk store write";
  (* 3x the documents of the other experiments gives ~10x the join work of
     the earlier revision of this experiment — enough that the pipeline
     phases (join.psg.sort/merge/bulk) dominate the build and the
     constrained-memory tier below pushes real volume through spill files *)
  let c = dblp_collection (3 * s.dblp_docs) in
  let cores = Domain.recommended_domain_count () in
  note "collection: %d docs, %d elements" (Collection.n_docs c)
    (Collection.n_elements c);
  note "this machine reports %d recommended domain(s); measuring jobs=%d" cores
    s.jobs;
  let config ?build_mem_mb jobs =
    { Config.default with partitioner = Config.Closure_aware 20_000; jobs;
      build_mem_mb }
  in
  let row label cfg =
    let r, t = Timer.time (fun () -> Build.build cfg c) in
    let speedup cpu wall = cpu /. Float.max 1e-9 wall in
    ( r, t,
      [
        label; seconds t; seconds r.Build.cover_seconds;
        Fmt.str "%.2fx" (speedup r.Build.cover_cpu_seconds r.Build.cover_seconds);
        seconds r.Build.join_seconds;
        Fmt.str "%.2fx" (speedup r.Build.join_cpu_seconds r.Build.join_seconds);
        string_of_int r.Build.spilled_runs;
        string_of_int (Cover.size r.Build.cover);
      ] )
  in
  let jn = max 2 s.jobs in
  let r1, t1, row1 = row "1" (config 1) in
  let rn, tn, rown = row (string_of_int jn) (config jn) in
  (* the larger-than-RAM tier: an 8 MiB budget against a join entry stream
     two orders of magnitude larger forces the pipeline's sorted runs
     through temp files.  (A zero budget — spill on every 512-entry check —
     is the pathological worst case; the determinism suites cover it, but
     benching it would measure tiny-run overhead, not spill throughput.) *)
  let rs, ts, rowspill =
    row (Fmt.str "%d, mem=8MiB" jn) (config ~build_mem_mb:8 jn)
  in
  print_table
    [ "jobs"; "total"; "covers"; "cover speedup"; "join"; "join speedup";
      "spilled runs"; "size" ]
    [ row1; rown; rowspill ];
  let f1 = cover_fingerprint r1.Build.cover
  and fn = cover_fingerprint rn.Build.cover
  and fs = cover_fingerprint rs.Build.cover in
  if Cover.size r1.Build.cover <> Cover.size rn.Build.cover || f1 <> fn then
    failwith "parallel build produced a different cover than the sequential one";
  if Cover.size r1.Build.cover <> Cover.size rs.Build.cover || f1 <> fs then
    failwith "constrained-memory build produced a different cover";
  if rs.Build.spilled_runs = 0 then
    failwith "constrained-memory tier did not spill any runs";
  if rn.Build.spilled_runs <> 0 then
    failwith "unconstrained build spilled";
  note "covers are identical (size %d, fingerprint %x) across jobs and budgets"
    (Cover.size r1.Build.cover) f1;
  note "spill tier: %d runs, %.1f MiB through temp files" rs.Build.spilled_runs
    (float_of_int rs.Build.spilled_bytes /. 1048576.0);
  (* store write: the cover through Btree.bulk_load (leaves left-to-right,
     no per-key descent), as `hopi build --store` writes it *)
  let vfs = Hopi_storage.Vfs.memory () in
  let pager = Hopi_storage.Pager.create_vfs ~pool_pages:256 ~vfs "bench-store.db" in
  let store = Hopi_storage.Cover_store.create pager in
  let (), t_store =
    Timer.time (fun () ->
        Hopi_storage.Cover_store.bulk_load_cover store r1.Build.cover;
        Hopi_storage.Cover_store.save store)
  in
  note "bulk store write: %s for %d entries" (seconds t_store)
    (Hopi_storage.Cover_store.n_entries store);
  Hopi_storage.Pager.close pager;
  let g name v = Hopi_obs.Gauge.set (Hopi_obs.Registry.gauge name) v in
  let ms t = int_of_float (1000.0 *. t) in
  g "bench_build_total_ms_jobs1" (ms t1);
  g "bench_build_total_ms_jobsN" (ms tn);
  g "bench_build_join_ms_jobsN" (ms rn.Build.join_seconds);
  g "bench_build_spill_tier_total_ms" (ms ts);
  g "bench_build_store_write_ms" (ms t_store);
  if cores = 1 then
    note "NOTE: only one core is available here, so no speedup is observable."

(* {1 Ablation: lazy priority queue (Section 3.2)} *)

let lazy_queue (s : scale) =
  section "ablation: lazy priority queue vs recomputing every density each round";
  let c = dblp_collection (max 5 (s.small_docs / 3)) in
  let g = Collection.element_graph c in
  let clo = Hopi_graph.Closure.compute g in
  note "collection: %d elements, closure %d connections" (Collection.n_elements c)
    (Hopi_graph.Closure.n_connections clo);
  let (lazy_cover, lazy_stats), t_lazy =
    Timer.time (fun () -> Hopi_twohop.Builder.build clo)
  in
  let (eager_cover, eager_stats), t_eager =
    Timer.time (fun () -> Hopi_twohop.Builder.build_eager clo)
  in
  print_table
    [ "variant"; "time"; "size"; "densest computations" ]
    [
      [ "lazy queue (paper)"; seconds t_lazy; string_of_int (Cover.size lazy_cover);
        string_of_int lazy_stats.Hopi_twohop.Builder.recomputations ];
      [ "recompute all"; seconds t_eager; string_of_int (Cover.size eager_cover);
        string_of_int eager_stats.Hopi_twohop.Builder.recomputations ];
    ];
  note "the paper's lazy queue needs ~%.0fx fewer densest-subgraph computations"
    (float_of_int eager_stats.Hopi_twohop.Builder.recomputations
    /. Float.max 1.0 (float_of_int lazy_stats.Hopi_twohop.Builder.recomputations))

(* {1 Storage durability: atomic save latency, fsync cost, crash recovery} *)

let storage_durability (s : scale) =
  section "storage durability: atomic save latency, fsync cost, crash recovery";
  let c = dblp_collection (max 5 (s.small_docs / 2)) in
  let r = Build.build Config.default c in
  let cover = r.Build.cover in
  note "collection: %d elements, cover %d entries" (Collection.n_elements c)
    (Cover.size cover);
  (* initial save (all pages fresh: nothing to journal) and an incremental
     save (committed pages get journaled first), on a real file *)
  let row fsync =
    let path = Filename.temp_file "hopi_dur" ".db" in
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists path then Sys.remove path;
        if Sys.file_exists (path ^ "-journal") then Sys.remove (path ^ "-journal"))
      (fun () ->
        let pager = Pager.create ~pool_pages:256 ~fsync (Pager.File path) in
        let store = Cover_store.create pager in
        Cover_store.load_cover store cover;
        let (), t_initial = Timer.time (fun () -> Cover_store.save store) in
        for i = 0 to 499 do
          Cover_store.insert_in store ~node:(1_000_000 + i) ~center:(i mod 50) ~dist:0
        done;
        let st0 = Pager.stats pager in
        let (), t_incr = Timer.time (fun () -> Cover_store.save store) in
        let st1 = Pager.stats pager in
        let pages = Pager.n_pages pager in
        Pager.close pager;
        [
          (if fsync then "on" else "off");
          Fmt.str "%.1fms" (1000.0 *. t_initial);
          Fmt.str "%.1fms" (1000.0 *. t_incr);
          string_of_int st1.Pager.fsyncs;
          string_of_int (st1.Pager.journaled_pages - st0.Pager.journaled_pages);
          string_of_int pages;
        ])
  in
  print_table
    [ "fsync"; "initial save"; "incr save"; "fsyncs"; "journaled"; "pages" ]
    [ row true; row false ];
  note "fsync=off still journals (process-crash-safe) but issues no sync points.";
  (* recovery latency: crash an incremental save just before its commit
     point (journal at its fattest), then time the rollback on reopen *)
  let module Fv = Hopi_fault_vfs.Fault_vfs in
  let fv = Fv.create () in
  let vfs = Fv.vfs fv in
  let pager = Pager.create_vfs ~pool_pages:64 ~vfs "dur.db" in
  let store = Cover_store.create pager in
  Cover_store.load_cover store cover;
  Cover_store.save store;
  Pager.close pager;
  let mutate () =
    let pgr = Pager.open_vfs ~pool_pages:64 ~vfs "dur.db" in
    let st = Cover_store.open_pager pgr in
    for i = 0 to 499 do
      Cover_store.insert_in st ~node:(2_000_000 + i) ~center:(i mod 50) ~dist:0
    done;
    Cover_store.save st;
    Pager.close pgr
  in
  let s1 = Fv.snapshot fv in
  Fv.reset_ops fv;
  mutate ();
  let n_ops = Fv.op_count fv in
  Fv.restore fv s1;
  Fv.reset_ops fv;
  Fv.arm_crash fv ~op:(n_ops - 2) ~mode:Fv.Drop_unsynced ();
  (match mutate () with
  | () -> failwith "storage_durability: crash did not fire"
  | exception Fv.Crash -> ());
  let pgr, t_recover = Timer.time (fun () -> Pager.open_vfs ~pool_pages:64 ~vfs "dur.db") in
  let clean = Pager.verify_pages pgr = [] in
  let reopened = Cover_store.open_pager pgr in
  note "crash injected at op %d/%d of an incremental save;" (n_ops - 2) n_ops;
  note "journal rollback on reopen: %.2fms; %d pages verify clean: %b; %d entries"
    (1000.0 *. t_recover) (Pager.n_pages pgr) clean
    (Cover_store.n_entries reopened);
  if not clean then failwith "storage_durability: corruption after recovery"

(* {1 Serving: batch query throughput, cold vs warm label cache} *)

(* The serving layer's pitch is that a warm label cache turns every probe
   into two in-memory array merges, where a cold snapshot pays a B+-tree
   range scan per label set.  Measured here end to end: persist a cover,
   re-open it read-only, and push identical query batches through a cold
   (cache disabled) and a warm (cache pre-touched) snapshot at several
   pool sizes, on both a uniform and a Zipf-skewed workload.  Every
   answer is checked against a sequential, uncached Cover_store oracle. *)
let query_throughput (s : scale) =
  section "serving: batch query throughput, cold vs warm label cache";
  let module Serve = Hopi_serve in
  let module Query_gen = Hopi_workload.Query_gen in
  let module Pool = Hopi_util.Pool in
  let c = dblp_collection s.dblp_docs in
  let r = Build.build Config.default c in
  let path = Filename.temp_file "hopi_qtp" ".db" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ "-journal") then Sys.remove (path ^ "-journal"))
  @@ fun () ->
  (* persist exactly as [hopi build --store] would *)
  let pager = Pager.create ~pool_pages:512 ~fsync:false (Pager.File path) in
  let store = Cover_store.create pager in
  Cover_store.load_cover store r.Build.cover;
  Cover_store.save store;
  Pager.close pager;
  let nodes =
    let acc = ref [] in
    Collection.iter_elements c (fun e -> acc := e :: !acc);
    Array.of_list !acc
  in
  note "collection: %d elements, cover %d entries, stored at %s"
    (Array.length nodes) (Cover.size r.Build.cover) path;
  let n_q = max 2_000 (int_of_float (20_000.0 *. float_of_int s.dblp_docs /. 500.0)) in
  (* alternate reachability and distance probes over the same pair stream *)
  let queries_of pairs =
    Array.mapi
      (fun i (u, v) ->
        if i land 1 = 0 then Serve.Batch.Reach (u, v) else Serve.Batch.Dist (u, v))
      pairs
  in
  let workloads =
    [
      ("uniform", queries_of (Query_gen.uniform_pairs ~seed:11 ~nodes ~n:n_q));
      ( "zipf",
        queries_of
          (Query_gen.zipf_pairs ~theta:Query_gen.default_theta ~seed:12 ~nodes
             ~n:n_q) );
    ]
  in
  (* sequential, uncached oracle straight off the B+-trees *)
  let oracle queries =
    let pgr = Pager.open_existing ~pool_pages:256 path in
    Fun.protect ~finally:(fun () -> Pager.close pgr) @@ fun () ->
    let st = Cover_store.open_pager pgr in
    Array.map
      (fun q ->
        match q with
        | Serve.Batch.Reach (u, v) -> Serve.Batch.Bool (Cover_store.connected st u v)
        | Serve.Batch.Dist (u, v) ->
          Serve.Batch.Distance (Cover_store.min_distance st u v)
        | _ -> assert false)
      queries
  in
  let qps n t = float_of_int n /. Float.max t 1e-9 in
  let mismatches = ref 0 in
  let rows = ref [] in
  let jobs_list = [ 1; 2; 4 ] in
  (* cold qps per (workload, jobs), for the cold-scaling gauges below *)
  let cold_tbl = Hashtbl.create 8 in
  List.iter
    (fun (wname, queries) ->
      let expected = oracle queries in
      List.iter
        (fun jobs ->
          (* cold: caching disabled, every probe pays the B+-tree scans *)
          let cold_qps =
            let snap = Serve.Snapshot.open_file ~cache_mb:0 path in
            Fun.protect ~finally:(fun () -> Serve.Snapshot.close snap) @@ fun () ->
            Pool.with_pool ~jobs @@ fun pool ->
            let answers, t =
              Timer.time (fun () -> Serve.Batch.eval_batch ~pool snap queries)
            in
            if answers <> expected then incr mismatches;
            qps n_q t
          in
          (* warm: run the batch once to populate the cache, then measure *)
          let warm_qps, hit_pct =
            let snap = Serve.Snapshot.open_file ~cache_mb:64 path in
            Fun.protect ~finally:(fun () -> Serve.Snapshot.close snap) @@ fun () ->
            Pool.with_pool ~jobs @@ fun pool ->
            ignore (Serve.Batch.eval_batch ~pool snap queries);
            let h0 = Hopi_obs.Counter.get (Serve.Label_cache.hits ())
            and m0 = Hopi_obs.Counter.get (Serve.Label_cache.misses ()) in
            let answers, t =
              Timer.time (fun () -> Serve.Batch.eval_batch ~pool snap queries)
            in
            if answers <> expected then incr mismatches;
            let h = Hopi_obs.Counter.get (Serve.Label_cache.hits ()) - h0
            and m = Hopi_obs.Counter.get (Serve.Label_cache.misses ()) - m0 in
            (qps n_q t, 100 * h / max 1 (h + m))
          in
          let speedup = warm_qps /. Float.max cold_qps 1e-9 in
          let g name v =
            Hopi_obs.Gauge.set
              (Hopi_obs.Registry.gauge
                 (Printf.sprintf "bench_query_%s_%s_jobs%d" name wname jobs))
              v
          in
          g "cold_qps" (int_of_float cold_qps);
          g "warm_qps" (int_of_float warm_qps);
          g "warm_speedup_pct" (int_of_float (100.0 *. speedup));
          Hashtbl.replace cold_tbl (wname, jobs) cold_qps;
          rows :=
            [
              wname; string_of_int jobs;
              Fmt.str "%.0f" cold_qps; Fmt.str "%.0f" warm_qps;
              Fmt.str "%.2fx" speedup; Fmt.str "%d%%" hit_pct;
            ]
            :: !rows)
        jobs_list)
    workloads;
  print_table
    [ "workload"; "jobs"; "cold q/s"; "warm q/s"; "speedup"; "hit rate" ]
    (List.rev !rows);
  note "%d queries per batch (reach/dist alternating); cold = cache disabled," n_q;
  note "warm = same batch re-run after one priming pass; oracle = sequential";
  note "uncached Cover_store probes.";
  note "answer mismatches against the oracle: %d" !mismatches;
  if !mismatches > 0 then failwith "query_throughput: answers diverge from the oracle";
  (* the cold-scaling gate: cold throughput must not fall as reader
     domains are added — the shared read path's whole point.  Published
     as a percentage (jobs=4 cold qps / jobs=1 cold qps) so the bench
     regression gate can hold the line at > 100 on multi-core runners. *)
  List.iter
    (fun (wname, _) ->
      match
        ( Hashtbl.find_opt cold_tbl (wname, 1),
          Hashtbl.find_opt cold_tbl (wname, 4) )
      with
      | Some c1, Some c4 ->
        let pct = 100.0 *. c4 /. Float.max c1 1e-9 in
        Hopi_obs.Gauge.set
          (Hopi_obs.Registry.gauge
             (Printf.sprintf "bench_query_cold_scaling_pct_%s" wname))
          (int_of_float pct);
        note "cold scaling (%s): jobs=4 runs at %.0f%% of jobs=1" wname pct
      | _ -> ())
    workloads;
  if Domain.recommended_domain_count () < 4 then
    note
      "NOTE: %d core(s) available — cold-scaling percentages are not \
       meaningful here; the CI gate runs on a 4-core runner."
      (Domain.recommended_domain_count ())

(* {1 Live serving: generational flips under churn} *)

(* The zero-downtime pitch, measured end to end.  Three throughput numbers
   and a flip-latency distribution:
   - direct: batches on one pinned snapshot (the no-indirection ceiling);
   - generational: the same batches through acquire/release per batch;
   - churn: the same read loop while a writer domain applies link churn
     and flips generations continuously.
   The gap between direct and generational is the cost of the swap
   indirection; the gap to churn is what flips cost the read side. *)
let live_maintenance (s : scale) =
  section "live serving: generational store swap under churn";
  let module Serve = Hopi_serve in
  let module G = Serve.Generation in
  let module Manifest = Hopi_storage.Manifest in
  let module Pool = Hopi_util.Pool in
  let module Query_gen = Hopi_workload.Query_gen in
  let c = dblp_collection (max 40 (s.dblp_docs / 4)) in
  let idx = Hopi.create c in
  let base = Filename.temp_file "hopi_live" ".db" in
  Sys.remove base;
  Fun.protect
    ~finally:(fun () ->
      let rm p = if Sys.file_exists p then Sys.remove p in
      let m = Manifest.path ~base in
      rm m;
      rm (m ^ "-journal");
      for k = 0 to 64 do
        let p = Manifest.gen_path ~base k in
        rm p;
        rm (p ^ "-journal")
      done)
  @@ fun () ->
  let gen = G.create ~fsync:false ~cache_mb:32 ~retain:0 ~base idx in
  Fun.protect ~finally:(fun () -> G.close gen) @@ fun () ->
  let nodes =
    let acc = ref [] in
    Collection.iter_elements c (fun e -> acc := e :: !acc);
    Array.of_list !acc
  in
  let n_q = 5_000 in
  let queries =
    Array.map
      (fun (u, v) -> Serve.Batch.Reach (u, v))
      (Query_gen.uniform_pairs ~seed:17 ~nodes ~n:n_q)
  in
  let qps n t = float_of_int n /. Float.max t 1e-9 in
  Pool.with_pool ~jobs:s.jobs @@ fun pool ->
  let direct_qps =
    let snap = G.acquire gen in
    Fun.protect ~finally:(fun () -> G.release gen snap) @@ fun () ->
    ignore (Serve.Batch.eval_batch ~pool snap queries);
    let _, t = Timer.time (fun () -> Serve.Batch.eval_batch ~pool snap queries) in
    qps n_q t
  in
  let gen_qps =
    ignore (G.with_snapshot gen (fun snap -> Serve.Batch.eval_batch ~pool snap queries));
    let _, t =
      Timer.time (fun () ->
          G.with_snapshot gen (fun snap -> Serve.Batch.eval_batch ~pool snap queries))
    in
    qps n_q t
  in
  (* churn: a writer domain applies link bursts and flips [n_flips] times
     while this domain keeps reading through acquire/release *)
  let n_flips = 10 in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Splitmix.create 23 in
        let stats = ref [] in
        for _ = 1 to n_flips do
          for _ = 1 to 8 do
            let u = nodes.(Splitmix.int rng (Array.length nodes))
            and v = nodes.(Splitmix.int rng (Array.length nodes)) in
            ignore (G.apply gen (G.Add_link (u, v)))
          done;
          let st = G.flip gen in
          stats := st :: !stats
        done;
        Atomic.set stop true;
        List.rev !stats)
  in
  let batches = ref 0 in
  let _, t_churn =
    Timer.time (fun () ->
        while not (Atomic.get stop) do
          ignore
            (G.with_snapshot gen (fun snap -> Serve.Batch.eval_batch ~pool snap queries));
          incr batches
        done)
  in
  let flip_stats = Domain.join writer in
  let churn_qps = qps (max 1 !batches * n_q) t_churn in
  let flip_ns = List.sort compare (List.map (fun st -> st.G.duration_ns) flip_stats) in
  let p50 = List.nth flip_ns (List.length flip_ns / 2) in
  let fmax = List.fold_left max 0 flip_ns in
  let dirtied = List.fold_left (fun a st -> a + st.G.dirtied) 0 flip_stats in
  let invalidated = List.fold_left (fun a st -> a + st.G.invalidated) 0 flip_stats in
  let g name v = Hopi_obs.Gauge.set (Hopi_obs.Registry.gauge name) v in
  g "bench_live_direct_qps" (int_of_float direct_qps);
  g "bench_live_gen_qps" (int_of_float gen_qps);
  g "bench_live_churn_qps" (int_of_float churn_qps);
  g "bench_live_flip_p50_ns" p50;
  g "bench_live_flip_max_ns" fmax;
  print_table
    [ "mode"; "q/s"; "vs direct" ]
    [
      [ "direct (pinned snapshot)"; Fmt.str "%.0f" direct_qps; "1.00x" ];
      [
        "generational (acquire/release)";
        Fmt.str "%.0f" gen_qps;
        Fmt.str "%.2fx" (gen_qps /. Float.max direct_qps 1e-9);
      ];
      [
        "under churn (writer flipping)";
        Fmt.str "%.0f" churn_qps;
        Fmt.str "%.2fx" (churn_qps /. Float.max direct_qps 1e-9);
      ];
    ];
  note "%d elements, %d reach queries per batch, jobs=%d" (Array.length nodes)
    n_q s.jobs;
  note "%d flips while serving: p50 %.2fms, max %.2fms; %d nodes dirtied, %d \
        cache entries invalidated"
    n_flips
    (float_of_int p50 /. 1e6)
    (float_of_int fmax /. 1e6)
    dirtied invalidated;
  note "final generation %d (tip %d), %d read batches completed during churn"
    (G.live gen) (G.tip gen) !batches;
  if G.live gen <> n_flips then failwith "live_maintenance: flips lost"

(* {1 Socket serving: scatter-gather over 1 vs K shards} *)

(* The networked path measured end to end: split the collection into 1
   and 4 shards, serve each over a Unix socket, and drive the same
   deterministic request streams from concurrent client domains.  The
   1-shard run prices the socket front-end itself (framing, admission,
   one router hop); the 4-shard run adds cross-shard scatter-gather and
   PSG routing on top.  Both answer streams must be identical — the
   differential lives in the test suite, but the bench re-checks it at
   bench scale for free. *)
let socket_throughput (s : scale) =
  section "serving: socket front-end, 1 vs K shards";
  let module Serve = Hopi_serve in
  let module Router = Serve.Router in
  let module Server = Serve.Server in
  let module Client = Serve.Client in
  let module Pool = Hopi_util.Pool in
  let c = dblp_collection (max 40 (s.dblp_docs / 4)) in
  let nodes =
    let acc = ref [] in
    Collection.iter_elements c (fun e -> acc := e :: !acc);
    Array.of_list !acc
  in
  let n = Array.length nodes in
  let n_clients = 3 in
  let n_batches =
    max 40 (int_of_float (120.0 *. float_of_int s.dblp_docs /. 500.0))
  in
  let batch_len = 64 in
  (* the same request stream per (client, batch) regardless of shard
     count, so answer streams are comparable across configurations *)
  let lines_for ~client ~batch =
    let rng = Splitmix.create ((client * 7919) + batch + 1) in
    List.init batch_len (fun i ->
        let u = nodes.(Splitmix.int rng n) and v = nodes.(Splitmix.int rng n) in
        if i land 1 = 0 then Printf.sprintf "reach %d %d" u v
        else Printf.sprintf "dist %d %d" u v)
  in
  let run_config k =
    let dir = Filename.temp_file "hopi_sockbench" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o700;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ())
    @@ fun () ->
    let stats, t_split =
      Timer.time (fun () -> Router.split ~fsync:false ~k ~dir c)
    in
    let r = Router.open_dir ~cache_mb:32 dir in
    Fun.protect ~finally:(fun () -> Router.close r) @@ fun () ->
    Pool.with_pool ~jobs:s.jobs @@ fun pool ->
    let eng = Router.engine r in
    let handler =
      {
        Server.eval =
          (fun ~ctx queries -> (0, Serve.Batch.eval_batch_engine ~ctx ~pool eng queries));
        control = (fun _ -> Error "bench server has no control plane");
      }
    in
    let srv = Server.create ~max_inflight:256 ~queue_depth:64 handler in
    let sock = Filename.concat dir "bench.sock" in
    ignore (Server.add_listener srv (Server.Unix_socket sock) : Unix.sockaddr);
    Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
    let busy = Atomic.make 0 in
    let run_client client () =
      let cl = Client.connect_unix sock in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      let lats = ref [] and answers = ref [] in
      for b = 1 to n_batches do
        let lines = lines_for ~client ~batch:b in
        let rec go () =
          let t0 = Timer.start () in
          match Client.request cl lines with
          | Ok (Client.Answers (_, a)) ->
            lats := Timer.elapsed_s t0 :: !lats;
            answers := List.rev_append a !answers
          | Ok (Client.Busy _) ->
            Atomic.incr busy;
            Unix.sleepf 0.001;
            go ()
          | Ok (Client.Refused m) -> failwith ("socket bench: refused: " ^ m)
          | Error e -> failwith ("socket bench: " ^ e)
        in
        go ()
      done;
      (!lats, List.rev !answers)
    in
    let per_client, t_wall =
      Timer.time (fun () ->
          let doms =
            List.init n_clients (fun i -> Domain.spawn (run_client i))
          in
          List.map Domain.join doms)
    in
    let total_lines = n_clients * n_batches * batch_len in
    let qps = float_of_int total_lines /. Float.max t_wall 1e-9 in
    let lats = List.sort compare (List.concat_map fst per_client) in
    let p95 =
      List.nth lats (min (List.length lats - 1) (95 * List.length lats / 100))
    in
    (stats, t_split, qps, p95, List.map snd per_client, Atomic.get busy)
  in
  let st1, split1, qps1, p95_1, answers1, busy1 = run_config 1 in
  let stk, splitk, qpsk, p95_k, answersk, busyk = run_config 4 in
  if answers1 <> answersk then
    failwith "socket_throughput: sharded answers diverge from 1-shard answers";
  let g name v = Hopi_obs.Gauge.set (Hopi_obs.Registry.gauge name) v in
  g "bench_socket_qps_shards1" (int_of_float qps1);
  g "bench_socket_qps_shards4" (int_of_float qpsk);
  g "bench_socket_p95_us_shards1" (int_of_float (p95_1 *. 1e6));
  g "bench_socket_p95_us_shards4" (int_of_float (p95_k *. 1e6));
  print_table
    [ "shards"; "split"; "q/s"; "p95 batch"; "busy"; "cross links"; "PSG pairs" ]
    [
      [
        string_of_int st1.Router.shards; seconds split1; Fmt.str "%.0f" qps1;
        Fmt.str "%.2fms" (p95_1 *. 1e3); string_of_int busy1;
        string_of_int st1.Router.cross_links; string_of_int st1.Router.psg_closure;
      ];
      [
        string_of_int stk.Router.shards; seconds splitk; Fmt.str "%.0f" qpsk;
        Fmt.str "%.2fms" (p95_k *. 1e3); string_of_int busyk;
        string_of_int stk.Router.cross_links; string_of_int stk.Router.psg_closure;
      ];
    ];
  note "%d elements; %d clients x %d batches x %d lines (reach/dist \
        alternating) per configuration"
    n n_clients n_batches batch_len;
  note "identical answer streams across shard counts: verified";
  note "scatter-gather at K=%d runs at %.0f%% of the 1-shard socket rate"
    stk.Router.shards
    (100.0 *. qpsk /. Float.max qps1 1e-9)

(* {1 Correctness gate} *)

let selfcheck (_ : scale) =
  section "self-check: covers are exact on reduced instances";
  let c = dblp_collection 40 in
  List.iter
    (fun (name, config) ->
      let r = Build.build config c in
      let ok = Verify.cover_vs_graph r.Build.cover (Collection.element_graph c) = [] in
      note "%-10s exact: %b" name ok;
      if not ok then failwith ("self-check failed for " ^ name))
    (table2_configs c);
  note "all configurations verified against BFS reachability."
