(* Query-latency micro-benchmarks (bechamel): reachability through the
   in-memory cover, through the paged LIN/LOUT store, and by naive BFS —
   the per-query speedup that motivates a connection index in the first
   place — plus distance lookups and descendant enumeration. *)

open Bechamel
open Toolkit
module Collection = Hopi_collection.Collection
module Cover = Hopi_twohop.Cover
module Traversal = Hopi_graph.Traversal
module Pager = Hopi_storage.Pager
module Cover_store = Hopi_storage.Cover_store
module Splitmix = Hopi_util.Splitmix
open Hopi_core

let make_tests (s : Bench_common.scale) =
  let c = Bench_common.dblp_collection (max 5 (s.Bench_common.small_docs / 2)) in
  let idx = Hopi.create c in
  let g = Collection.element_graph c in
  let store = Hopi.to_store idx (Pager.create ~pool_pages:256 Pager.Memory) in
  let cstore =
    let cs = Hopi_storage.Closure_store.create (Pager.create ~pool_pages:4096 Pager.Memory) in
    Hopi_storage.Closure_store.load cs (Hopi_graph.Closure.compute g);
    cs
  in
  let dstore =
    let st = Cover_store.create (Pager.create ~pool_pages:256 Pager.Memory) in
    Cover_store.load_dist_cover st (Hopi.distance_index idx);
    st
  in
  let rng = Splitmix.create 12345 in
  let els =
    let acc = ref [] in
    Collection.iter_elements c (fun e -> acc := e :: !acc);
    Array.of_list !acc
  in
  let n_pairs = 1024 in
  let pairs =
    Array.init n_pairs (fun _ -> (Splitmix.pick rng els, Splitmix.pick rng els))
  in
  let i = ref 0 in
  let next () =
    i := (!i + 1) land (n_pairs - 1);
    pairs.(!i)
  in
  let cover = Hopi.cover idx in
  Test.make_grouped ~name:"query"
    [
      Test.make ~name:"connected/cover" (Staged.stage (fun () ->
          let u, v = next () in
          ignore (Cover.connected cover u v)));
      Test.make ~name:"connected/store" (Staged.stage (fun () ->
          let u, v = next () in
          ignore (Cover_store.connected store u v)));
      Test.make ~name:"connected/bfs" (Staged.stage (fun () ->
          let u, v = next () in
          ignore (Traversal.is_reachable g u v)));
      Test.make ~name:"connected/closure-store" (Staged.stage (fun () ->
          let u, v = next () in
          ignore (Hopi_storage.Closure_store.connected cstore u v)));
      Test.make ~name:"min_distance/store" (Staged.stage (fun () ->
          let u, v = next () in
          ignore (Cover_store.min_distance dstore u v)));
      Test.make ~name:"descendants/cover" (Staged.stage (fun () ->
          let u, _ = next () in
          ignore (Cover.descendants cover u)));
    ]

(* Metric-recording overhead: a counter increment and a histogram sample
   must stay in the low-nanosecond range and allocate nothing, or the hot
   paths (reachability probes, page lookups) could not afford them. *)
let obs_overhead () =
  Bench_common.section "micro: observability recording overhead";
  let cnt =
    Hopi_obs.Registry.counter "hopi_micro_overhead_counter_total"
      ~help:"Micro-benchmark scratch counter"
  in
  let h =
    Hopi_obs.Registry.histogram "hopi_micro_overhead_histogram"
      ~help:"Micro-benchmark scratch histogram"
  in
  let n = 1_000_000 in
  for i = 1 to 1_000 do
    Hopi_obs.Counter.incr cnt;
    Hopi_obs.Histogram.observe h i
  done;
  let measure name f =
    let w0 = Gc.minor_words () in
    let t0 = Hopi_util.Timer.start () in
    f ();
    let ns = Int64.to_float (Hopi_util.Timer.elapsed_ns t0) in
    let words = Gc.minor_words () -. w0 in
    (name, ns /. float_of_int n, words /. float_of_int n)
  in
  let rows =
    [
      measure "counter.incr" (fun () ->
          for _ = 1 to n do
            Hopi_obs.Counter.incr cnt
          done);
      measure "histogram.observe" (fun () ->
          for i = 1 to n do
            Hopi_obs.Histogram.observe h i
          done);
    ]
  in
  Bench_common.print_table
    [ "benchmark"; "ns/op"; "minor words/op" ]
    (List.map
       (fun (name, ns, words) -> [ name; Fmt.str "%.1f" ns; Fmt.str "%.4f" words ])
       rows);
  List.iter
    (fun (name, _, words) ->
      (* a whole minor heap of slack for the measurement scaffolding itself;
         any per-op allocation would show up as >= 1.0 *)
      if words > 0.01 then
        failwith (Printf.sprintf "%s allocates %.4f words/op on the hot path" name words))
    rows;
  Bench_common.note "recording is allocation-free on the hot path."

let run (s : Bench_common.scale) =
  Bench_common.section "micro: query latency (bechamel)";
  obs_overhead ();
  let tests = make_tests s in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Bench_common.print_table
    [ "benchmark"; "ns/query" ]
    (List.map (fun (name, ns) -> [ name; Fmt.str "%.0f" ns ]) rows);
  Bench_common.note
    "the cover answers in microseconds where BFS needs a graph traversal."
