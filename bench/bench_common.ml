(* Shared plumbing for the experiment harness: scaled workloads, timing,
   and paper-style table printing. *)

module Collection = Hopi_collection.Collection
module Dblp = Hopi_workload.Dblp_gen
module Inex = Hopi_workload.Inex_gen
module Timer = Hopi_util.Timer

(* Scale 1.0 targets a laptop-friendly run (~minutes); the paper's own
   collections are ~15x (DBLP) / ~300x (INEX elements) larger.  [jobs] is
   the pool size experiments use when they exercise the parallel build. *)
type scale = { dblp_docs : int; inex_docs : int; small_docs : int; jobs : int }

let scale_of ?(jobs = 4) factor =
  let f n = max 5 (int_of_float (float_of_int n *. factor)) in
  { dblp_docs = f 500; inex_docs = f 60; small_docs = f 120; jobs = max 1 jobs }

let dblp_collection n = Dblp.generate (Dblp.default ~n_docs:n)

let inex_collection n = Inex.generate (Inex.default ~n_docs:n)

let section title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@."

let note fmt = Fmt.pr ("  " ^^ fmt ^^ "@.")

let seconds s = Fmt.str "%.1fs" s

(* simple fixed-width table printer *)
let print_table header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Fmt.pr "  ";
    List.iter2 (fun w cell -> Fmt.pr "%-*s  " w cell) widths row;
    Fmt.pr "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let total_closure c =
  Hopi_graph.Closure.count_connections (Collection.element_graph c)

(* Run one experiment with a clean metrics registry and span list, then
   snapshot both to BENCH_<name>.json so per-phase timings and counters can
   be compared across runs without scraping the printed tables. *)
let with_metrics name f =
  Hopi_obs.Registry.reset ();
  Hopi_obs.Trace.reset ();
  Fun.protect f ~finally:(fun () ->
      let path = Printf.sprintf "BENCH_%s.json" name in
      Hopi_obs.Export.write_json path;
      note "metrics snapshot: %s" path)
